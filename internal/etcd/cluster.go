package etcd

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ffdl/ffdl/internal/sim"
)

// Options configures a Cluster.
type Options struct {
	// Replicas is the cluster size; the paper deploys etcd 3-way
	// replicated. Defaults to 3.
	Replicas int
	// TickInterval is the Raft logical tick. Defaults to 5ms, giving
	// 50-100ms election timeouts — fast enough for tests, slow enough to
	// be stable on loaded CI machines.
	TickInterval time.Duration
	// Clock supplies time for lease deadlines. Defaults to the wall
	// clock.
	Clock sim.Clock
	// Seed makes election randomization deterministic in tests.
	Seed int64
	// SnapshotThreshold bounds per-node log length before compaction.
	SnapshotThreshold int
	// ProposalTimeout bounds how long a client call waits for commit.
	// Defaults to 5s.
	ProposalTimeout time.Duration
	// WatchHistory is the hard cap on retained watch events per replica
	// — the memory bound on the event log. A watcher resuming past the
	// retained window (see CompactRevisions) gets an EventResync instead
	// of a replay; it never sees a silent gap. Defaults to 1024.
	// See docs/watch-protocol.md ("etcd WatchStream" layer).
	WatchHistory int
	// CompactRevisions is the revision-based retention window for the
	// watch event log: events older than the last CompactRevisions
	// revisions are compacted away even while the WatchHistory entry cap
	// has room, and the retained log is persisted inside Raft snapshots
	// so Watch(fromRevision) replays across snapshot restore and leader
	// failover without forcing a resync. Defaults to 4096. A negative
	// value disables snapshot persistence of the log (retention falls
	// back to the in-memory ring buffer only, the pre-durability
	// behaviour kept for the watch-churn ablation).
	CompactRevisions int
	// WatchHealthInterval is the per-stream failure-detection tick: how
	// often an attached WatchStream audits its source replica for
	// isolation, stuckness or buffer overflow. It bounds failover
	// detection latency only — event delivery is pushed — so
	// long-virtual-horizon simulations may stretch it freely. Defaults
	// to TickInterval * 4.
	WatchHealthInterval time.Duration
}

func (o *Options) defaults() {
	if o.Replicas <= 0 {
		o.Replicas = 3
	}
	if o.TickInterval <= 0 {
		o.TickInterval = 5 * time.Millisecond
	}
	if o.Clock == nil {
		o.Clock = sim.NewRealClock()
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.SnapshotThreshold <= 0 {
		o.SnapshotThreshold = 4096
	}
	if o.ProposalTimeout <= 0 {
		o.ProposalTimeout = 5 * time.Second
	}
	if o.WatchHistory <= 0 {
		o.WatchHistory = 1024
	}
	if o.CompactRevisions == 0 {
		o.CompactRevisions = 4096
	}
	if o.WatchHealthInterval <= 0 {
		o.WatchHealthInterval = o.TickInterval * 4
	}
}

// Cluster is an in-process replicated etcd: n Raft nodes, each applying
// committed commands to its own storeState replica. Client operations are
// routed to the leader. Exactly-once application is guaranteed by
// request-ID deduplication in the state machine, so a retried proposal
// (e.g. across a leader change) never double-applies.
type Cluster struct {
	opts      Options
	transport *memTransport
	nodes     []*node
	states    []*storeState

	reqSeq  atomic.Uint64
	lastRev atomic.Uint64 // highest revision returned to any client
	mu      sync.Mutex
	waiters map[uint64]chan result
	applied map[uint64]result // request dedup cache (mirrors leader's view)

	// leaseCh wakes the lease-expiry loop when a Grant creates the
	// first lease (buffered; non-blocking send).
	leaseCh chan struct{}

	stopCh  chan struct{}
	stopped atomic.Bool
	wg      sync.WaitGroup
}

// anyLeases reports whether any replica's state machine tracks a live
// lease (replicas converge via Raft; checking all sides errs toward
// arming the expiry timer).
func (c *Cluster) anyLeases() bool {
	for _, st := range c.states {
		if st.leaseCount() > 0 {
			return true
		}
	}
	return false
}

// NewCluster boots a Raft cluster and waits for a leader.
func NewCluster(opts Options) (*Cluster, error) {
	opts.defaults()
	c := &Cluster{
		opts:      opts,
		transport: newMemTransport(),
		waiters:   make(map[uint64]chan result),
		applied:   make(map[uint64]result),
		leaseCh:   make(chan struct{}, 1),
		stopCh:    make(chan struct{}),
	}
	peers := make([]int, opts.Replicas)
	for i := range peers {
		peers[i] = i
	}
	rng := sim.NewRNG(opts.Seed)
	for i := 0; i < opts.Replicas; i++ {
		st := newStoreState(opts.Clock.Now, opts.WatchHistory, opts.CompactRevisions, opts.CompactRevisions >= 0)
		cfg := Config{
			ID: i, Peers: peers,
			SnapshotThreshold: opts.SnapshotThreshold,
			Snapshot:          st.snapshot,
			Restore:           func(data []byte, _ uint64) { st.restore(data) },
		}
		n := newNode(cfg, c.transport, rng.Stream(int64(i)), c.applier(st))
		c.nodes = append(c.nodes, n)
		c.states = append(c.states, st)
		c.transport.attach(n)
	}
	for _, n := range c.nodes {
		n.start(opts.TickInterval)
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.leaseExpiryLoop()
	}()
	if _, err := c.WaitLeader(10 * time.Second); err != nil {
		c.Stop()
		return nil, err
	}
	return c, nil
}

// applier builds the synchronous apply callback for one replica: decode
// the committed command, apply it to this node's state replica (with
// per-replica ReqID dedup so retried proposals never double-apply) and
// complete any client waiter for the request.
func (c *Cluster) applier(st *storeState) applyFunc {
	return func(a Applied) {
		var cmd command
		if err := gob.NewDecoder(bytes.NewReader(a.Data)).Decode(&cmd); err != nil {
			return
		}
		res := st.apply(&cmd)
		c.mu.Lock()
		if _, ok := c.applied[cmd.ReqID]; !ok {
			c.applied[cmd.ReqID] = res
		}
		w := c.waiters[cmd.ReqID]
		delete(c.waiters, cmd.ReqID)
		c.mu.Unlock()
		if w != nil {
			select {
			case w <- res:
			default:
			}
		}
	}
}

// leaseExpiryLoop revokes expired leases via consensus so all replicas
// delete lease-bound keys identically. The loop is event-aware: it only
// arms a clock timer while leases exist, waiting on the Grant signal
// otherwise — a lease-free cluster holds no recurring virtual-clock
// waiter, so an idle platform stays quiescent and simulated clocks can
// jump freely instead of being throttled to TickInterval*4 steps.
func (c *Cluster) leaseExpiryLoop() {
	for {
		if !c.anyLeases() {
			select {
			case <-c.stopCh:
				return
			case <-c.leaseCh:
			}
		}
		t := c.opts.Clock.NewTimer(c.opts.TickInterval * 4)
		select {
		case <-c.stopCh:
			t.Stop()
			return
		case <-t.C:
			li := c.leaderIndex()
			if li < 0 {
				continue
			}
			for _, id := range c.states[li].expiredLeases() {
				// Best-effort: a failed proposal retries next tick.
				c.propose(&command{Op: opExpireLease, Lease: id}) //nolint:errcheck
			}
		}
	}
}

// leaderIndex returns the current leader's index or -1.
func (c *Cluster) leaderIndex() int {
	for i, n := range c.nodes {
		if n.isLeader() && !c.transport.isIsolated(i) {
			return i
		}
	}
	return -1
}

// WaitLeader blocks until a leader is elected. The wait runs on the
// configured Clock so simulated-clock runs stay deterministic (a
// FakeClock needs its auto-advancer running).
func (c *Cluster) WaitLeader(timeout time.Duration) (int, error) {
	clk := c.opts.Clock
	deadline := clk.Now().Add(timeout)
	for clk.Now().Before(deadline) {
		if li := c.leaderIndex(); li >= 0 {
			return li, nil
		}
		clk.Sleep(c.opts.TickInterval)
	}
	return -1, fmt.Errorf("etcd: no leader within %v", timeout)
}

// propose encodes, replicates and waits for a command to commit and
// apply; it retries across leader changes using the same request ID so
// the state machine applies it exactly once.
func (c *Cluster) propose(cmd *command) (result, error) {
	if c.stopped.Load() {
		return result{}, ErrStopped
	}
	cmd.ReqID = c.reqSeq.Add(1)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(cmd); err != nil {
		return result{}, fmt.Errorf("etcd: encode command: %w", err)
	}
	data := buf.Bytes()

	ch := make(chan result, 1)
	c.mu.Lock()
	c.waiters[cmd.ReqID] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.waiters, cmd.ReqID)
		c.mu.Unlock()
	}()

	clk := c.opts.Clock
	deadline := clk.Now().Add(c.opts.ProposalTimeout)
	for {
		li := c.leaderIndex()
		if li >= 0 {
			if _, _, err := c.nodes[li].Propose(data); err == nil {
				// Wait for apply, but re-propose if leadership moves
				// before commit. A stoppable timer (not After) so a
				// FakeClock holds no stale waiters that would drag its
				// auto-advancer forward.
				t := clk.NewTimer(20 * c.opts.TickInterval)
				select {
				case res := <-ch:
					t.Stop()
					c.noteRev(res.rev)
					if res.err != nil {
						return res, res.err
					}
					return res, nil
				case <-t.C:
					// Check for dedup-applied result (another replica
					// applied and the waiter raced).
				case <-c.stopCh:
					t.Stop()
					return result{}, ErrStopped
				}
				c.mu.Lock()
				res, done := c.applied[cmd.ReqID]
				c.mu.Unlock()
				if done {
					c.noteRev(res.rev)
					return res, res.err
				}
			}
		}
		if clk.Now().After(deadline) {
			return result{}, ErrTimeout
		}
		clk.Sleep(c.opts.TickInterval)
	}
}

// opExpireLease revokes a lease due to TTL expiry (events surface as
// EventExpire rather than EventDelete).
const opExpireLease cmdOp = 99

// Put stores value under key, optionally bound to a lease.
func (c *Cluster) Put(key string, value []byte, lease int64) (uint64, error) {
	res, err := c.propose(&command{Op: opPut, Key: key, Value: value, Lease: lease})
	return res.rev, err
}

// Delete removes a key. It reports whether the key existed.
func (c *Cluster) Delete(key string) (bool, error) {
	res, err := c.propose(&command{Op: opDelete, Key: key})
	return res.ok, err
}

// DeletePrefix removes every key under prefix, returning whether any
// existed. FfDL uses this to erase a DL job's coordination state after it
// terminates (§3.2: "a DL job's data is erased after it terminates").
func (c *Cluster) DeletePrefix(prefix string) (bool, error) {
	res, err := c.propose(&command{Op: opDelete, Key: prefix, Prefix: true})
	return res.ok, err
}

// Grant creates a lease with the given TTL.
func (c *Cluster) Grant(ttl time.Duration) (int64, error) {
	res, err := c.propose(&command{Op: opGrantLease, TTL: ttl})
	if err == nil {
		// Arm the expiry loop (it holds no timer while lease-free).
		select {
		case c.leaseCh <- struct{}{}:
		default:
		}
	}
	return res.leaseID, err
}

// KeepAlive refreshes a lease's TTL.
func (c *Cluster) KeepAlive(id int64) error {
	_, err := c.propose(&command{Op: opKeepAlive, Lease: id})
	return err
}

// Revoke deletes a lease and all keys bound to it.
func (c *Cluster) Revoke(id int64) error {
	_, err := c.propose(&command{Op: opRevokeLease, Lease: id})
	return err
}

// CompareAndSwap puts value under key iff the key's current ModRevision
// equals expectRev (0 means the key must not exist). It reports whether
// the swap happened.
func (c *Cluster) CompareAndSwap(key string, expectRev uint64, value []byte) (bool, error) {
	res, err := c.propose(&command{
		Op: opTxnPut, Key: key, Value: value, CmpKey: key, CmpRev: expectRev,
	})
	return res.ok, err
}

// Get returns the value for key from the leader's replica.
func (c *Cluster) Get(key string) (KV, bool, error) {
	st, err := c.leaderState()
	if err != nil {
		return KV{}, false, err
	}
	kv, ok := st.get(key)
	return kv, ok, nil
}

// List returns all keys under prefix from the leader's replica.
func (c *Cluster) List(prefix string) ([]KV, error) {
	st, err := c.leaderState()
	if err != nil {
		return nil, err
	}
	return st.list(prefix), nil
}

// noteRev records the highest revision handed back to any client, which
// reads then use as a read-your-writes barrier.
func (c *Cluster) noteRev(rev uint64) {
	for {
		cur := c.lastRev.Load()
		if rev <= cur || c.lastRev.CompareAndSwap(cur, rev) {
			return
		}
	}
}

// leaderState returns the leader's replica once it has applied every
// revision previously acknowledged to a client. A proposal is
// acknowledged as soon as *some* replica applies it; waiting here closes
// the window in which the leader's own apply loop lags, guaranteeing
// read-your-writes for Get/List/Watch registration.
func (c *Cluster) leaderState() (*storeState, error) {
	li := c.leaderIndex()
	if li < 0 {
		var err error
		li, err = c.WaitLeader(c.opts.ProposalTimeout)
		if err != nil {
			return nil, err
		}
	}
	st := c.states[li]
	want := c.lastRev.Load()
	clk := c.opts.Clock
	deadline := clk.Now().Add(c.opts.ProposalTimeout)
	for st.revision() < want {
		if clk.Now().After(deadline) {
			return nil, ErrTimeout
		}
		clk.Sleep(c.opts.TickInterval / 2)
		// Leadership may move while we wait.
		if li2 := c.leaderIndex(); li2 >= 0 && li2 != li {
			li = li2
			st = c.states[li]
		}
	}
	return st, nil
}

// Isolate cuts a node off from the cluster (on=true), modeling a crash or
// partition; on=false heals it and the node catches up via replication.
func (c *Cluster) Isolate(id int, on bool) { c.transport.Isolate(id, on) }

// CutLink severs or heals the link between two members.
func (c *Cluster) CutLink(a, b int, on bool) { c.transport.CutLink(a, b, on) }

// Leader returns the current leader id, or -1.
func (c *Cluster) Leader() int { return c.leaderIndex() }

// SnapshotRestores returns the total number of snapshot restores applied
// across all replicas — the denominator of the watch-churn experiment's
// resyncs-per-restore metric.
func (c *Cluster) SnapshotRestores() uint64 {
	var n uint64
	for _, st := range c.states {
		n += st.restoreCount()
	}
	return n
}

// Replicas returns the cluster size.
func (c *Cluster) Replicas() int { return len(c.nodes) }

// StateEqual reports whether two replicas hold identical KV maps; used by
// invariant tests.
func (c *Cluster) StateEqual(a, b int) bool {
	ka := c.states[a].list("")
	kb := c.states[b].list("")
	if len(ka) != len(kb) {
		return false
	}
	for i := range ka {
		if ka[i].Key != kb[i].Key || !bytes.Equal(ka[i].Value, kb[i].Value) ||
			ka[i].ModRevision != kb[i].ModRevision {
			return false
		}
	}
	return true
}

// Stop terminates the cluster.
func (c *Cluster) Stop() {
	if !c.stopped.CompareAndSwap(false, true) {
		return
	}
	close(c.stopCh)
	for _, n := range c.nodes {
		n.stop()
	}
	c.transport.stop()
	c.wg.Wait()
}
