package etcd

import (
	"sync"
)

// memTransport delivers Raft messages between in-process nodes through
// per-node queues, preserving per-sender ordering. It supports fault
// injection: dropping a node's traffic (crash) and partitioning links.
type memTransport struct {
	mu       sync.Mutex
	nodes    map[int]*node
	queues   map[int]chan *Message
	isolated map[int]bool
	cut      map[[2]int]bool // unordered pair -> link down
	stopped  bool
	wg       sync.WaitGroup
}

func newMemTransport() *memTransport {
	return &memTransport{
		nodes:    make(map[int]*node),
		queues:   make(map[int]chan *Message),
		isolated: make(map[int]bool),
		cut:      make(map[[2]int]bool),
	}
}

// attach registers a node and starts its delivery pump.
func (t *memTransport) attach(n *node) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nodes[n.id] = n
	q := make(chan *Message, 1024)
	t.queues[n.id] = q
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		for m := range q {
			n.Step(m)
		}
	}()
}

func pairKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// Send implements Transport.
func (t *memTransport) Send(m *Message) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stopped || t.isolated[m.From] || t.isolated[m.To] || t.cut[pairKey(m.From, m.To)] {
		return
	}
	q := t.queues[m.To]
	if q == nil {
		return
	}
	select {
	case q <- m:
	default:
		// Queue overflow models a lossy network; Raft tolerates drops.
	}
}

// Isolate cuts all traffic to and from a node (models a crashed or
// partitioned member).
func (t *memTransport) Isolate(id int, on bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.isolated[id] = on
}

// isIsolated reports whether a node is currently cut off.
func (t *memTransport) isIsolated(id int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.isolated[id]
}

// CutLink severs the bidirectional link between two nodes.
func (t *memTransport) CutLink(a, b int, on bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cut[pairKey(a, b)] = on
}

// stop closes all queues after the nodes have stopped stepping.
func (t *memTransport) stop() {
	t.mu.Lock()
	if t.stopped {
		t.mu.Unlock()
		return
	}
	t.stopped = true
	for _, q := range t.queues {
		close(q)
	}
	t.mu.Unlock()
	t.wg.Wait()
}
