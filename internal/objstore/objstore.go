// Package objstore implements the cloud object storage service FfDL
// streams training data from and persists checkpoints/results to. It
// models the pieces of behaviour the paper's evaluation depends on:
//
//   - bucket/object CRUD with streaming reads,
//   - a shared-bandwidth model, so hundreds of concurrent jobs contend
//     for storage throughput exactly as in the §5.5 heavy-load scale test,
//   - an s3fs-like mount driver that exposes objects as files with
//     on-demand chunk streaming and an LRU cache reused across training
//     epochs and jobs (§3.7 "Mounted object store").
package objstore

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/ffdl/ffdl/internal/sim"
)

// Errors.
var (
	// ErrNoBucket reports an operation against a missing bucket.
	ErrNoBucket = errors.New("objstore: bucket not found")
	// ErrNoObject reports a read of a missing object.
	ErrNoObject = errors.New("objstore: object not found")
	// ErrBucketExists reports a duplicate bucket creation.
	ErrBucketExists = errors.New("objstore: bucket already exists")
	// ErrNoUpload reports an operation on an unknown multipart upload.
	ErrNoUpload = errors.New("objstore: multipart upload not found")
)

// Object is a stored blob with metadata.
type Object struct {
	Key      string
	Size     int64
	Modified time.Time
	ETag     string
}

// Service is an in-process object storage service.
type Service struct {
	mu      sync.RWMutex
	buckets map[string]*bucket
	clock   sim.Clock
	limiter *BandwidthLimiter

	uploads map[string]*multipart
	nextUp  int

	// Stats.
	bytesIn  int64
	bytesOut int64
}

type bucket struct {
	objects map[string]*blob
}

type blob struct {
	data     []byte
	modified time.Time
	etag     string
}

type multipart struct {
	bucket, key string
	parts       map[int][]byte
}

// Config configures a Service.
type Config struct {
	// Clock is used for timestamps and bandwidth throttling delays.
	// Defaults to the wall clock.
	Clock sim.Clock
	// AggregateBandwidth is the total storage throughput in bytes/sec
	// shared by all concurrent transfers; 0 disables throttling.
	AggregateBandwidth float64
}

// New returns an empty Service.
func New(cfg Config) *Service {
	if cfg.Clock == nil {
		cfg.Clock = sim.NewRealClock()
	}
	var lim *BandwidthLimiter
	if cfg.AggregateBandwidth > 0 {
		lim = NewBandwidthLimiter(cfg.Clock, cfg.AggregateBandwidth)
	}
	return &Service{
		buckets: make(map[string]*bucket),
		clock:   cfg.Clock,
		limiter: lim,
		uploads: make(map[string]*multipart),
	}
}

// Limiter exposes the shared bandwidth limiter (nil when unthrottled).
func (s *Service) Limiter() *BandwidthLimiter { return s.limiter }

// CreateBucket makes a new bucket.
func (s *Service) CreateBucket(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.buckets[name]; ok {
		return fmt.Errorf("%w: %s", ErrBucketExists, name)
	}
	s.buckets[name] = &bucket{objects: make(map[string]*blob)}
	return nil
}

// EnsureBucket creates the bucket if absent.
func (s *Service) EnsureBucket(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.buckets[name]; !ok {
		s.buckets[name] = &bucket{objects: make(map[string]*blob)}
	}
}

// DeleteBucket removes a bucket and its contents.
func (s *Service) DeleteBucket(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.buckets[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNoBucket, name)
	}
	delete(s.buckets, name)
	return nil
}

// Put stores an object, applying the bandwidth model to the transfer.
func (s *Service) Put(bucketName, key string, data []byte) error {
	if s.limiter != nil {
		s.limiter.Transfer(int64(len(data)))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucketName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoBucket, bucketName)
	}
	stored := make([]byte, len(data))
	copy(stored, data)
	b.objects[key] = &blob{
		data:     stored,
		modified: s.clock.Now(),
		etag:     fmt.Sprintf("%08x-%d", hashBytes(stored), len(stored)),
	}
	s.bytesIn += int64(len(data))
	return nil
}

// Get returns a full object copy.
func (s *Service) Get(bucketName, key string) ([]byte, error) {
	s.mu.RLock()
	b, ok := s.buckets[bucketName]
	if !ok {
		s.mu.RUnlock()
		return nil, fmt.Errorf("%w: %s", ErrNoBucket, bucketName)
	}
	o, ok := b.objects[key]
	if !ok {
		s.mu.RUnlock()
		return nil, fmt.Errorf("%w: %s/%s", ErrNoObject, bucketName, key)
	}
	out := make([]byte, len(o.data))
	copy(out, o.data)
	s.mu.RUnlock()
	if s.limiter != nil {
		s.limiter.Transfer(int64(len(out)))
	}
	s.mu.Lock()
	s.bytesOut += int64(len(out))
	s.mu.Unlock()
	return out, nil
}

// GetRange returns object bytes [off, off+n); n < 0 means to the end.
func (s *Service) GetRange(bucketName, key string, off, n int64) ([]byte, error) {
	s.mu.RLock()
	b, ok := s.buckets[bucketName]
	if !ok {
		s.mu.RUnlock()
		return nil, fmt.Errorf("%w: %s", ErrNoBucket, bucketName)
	}
	o, ok := b.objects[key]
	if !ok {
		s.mu.RUnlock()
		return nil, fmt.Errorf("%w: %s/%s", ErrNoObject, bucketName, key)
	}
	size := int64(len(o.data))
	if off < 0 || off > size {
		s.mu.RUnlock()
		return nil, fmt.Errorf("objstore: range start %d outside object of %d bytes", off, size)
	}
	end := size
	if n >= 0 && off+n < size {
		end = off + n
	}
	out := make([]byte, end-off)
	copy(out, o.data[off:end])
	s.mu.RUnlock()
	if s.limiter != nil {
		s.limiter.Transfer(int64(len(out)))
	}
	s.mu.Lock()
	s.bytesOut += int64(len(out))
	s.mu.Unlock()
	return out, nil
}

// Head returns object metadata without transferring the body.
func (s *Service) Head(bucketName, key string) (Object, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.buckets[bucketName]
	if !ok {
		return Object{}, fmt.Errorf("%w: %s", ErrNoBucket, bucketName)
	}
	o, ok := b.objects[key]
	if !ok {
		return Object{}, fmt.Errorf("%w: %s/%s", ErrNoObject, bucketName, key)
	}
	return Object{Key: key, Size: int64(len(o.data)), Modified: o.modified, ETag: o.etag}, nil
}

// List returns metadata for all objects under a key prefix, sorted by
// key. FfDL's checkpoint recovery lists a bucket to find the latest
// checkpoint (§3.8).
func (s *Service) List(bucketName, prefix string) ([]Object, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.buckets[bucketName]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoBucket, bucketName)
	}
	var out []Object
	for k, o := range b.objects {
		if strings.HasPrefix(k, prefix) {
			out = append(out, Object{Key: k, Size: int64(len(o.data)), Modified: o.modified, ETag: o.etag})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// Delete removes an object; deleting a missing object is a no-op, as in
// S3.
func (s *Service) Delete(bucketName, key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucketName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoBucket, bucketName)
	}
	delete(b.objects, key)
	return nil
}

// InitiateMultipart starts a multipart upload and returns its id. The
// paper's lessons-learned notes object stores lack append (§4); multipart
// is the idiom large results use instead.
func (s *Service) InitiateMultipart(bucketName, key string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.buckets[bucketName]; !ok {
		return "", fmt.Errorf("%w: %s", ErrNoBucket, bucketName)
	}
	s.nextUp++
	id := fmt.Sprintf("upload-%06d", s.nextUp)
	s.uploads[id] = &multipart{bucket: bucketName, key: key, parts: make(map[int][]byte)}
	return id, nil
}

// UploadPart stores one part (parts are 1-indexed, any order).
func (s *Service) UploadPart(uploadID string, partNum int, data []byte) error {
	if s.limiter != nil {
		s.limiter.Transfer(int64(len(data)))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	up, ok := s.uploads[uploadID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoUpload, uploadID)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	up.parts[partNum] = cp
	return nil
}

// CompleteMultipart assembles the parts in index order into the final
// object.
func (s *Service) CompleteMultipart(uploadID string) error {
	s.mu.Lock()
	up, ok := s.uploads[uploadID]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoUpload, uploadID)
	}
	delete(s.uploads, uploadID)
	nums := make([]int, 0, len(up.parts))
	for n := range up.parts {
		nums = append(nums, n)
	}
	sort.Ints(nums)
	var buf bytes.Buffer
	for _, n := range nums {
		buf.Write(up.parts[n])
	}
	b, ok := s.buckets[up.bucket]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoBucket, up.bucket)
	}
	data := buf.Bytes()
	b.objects[up.key] = &blob{
		data:     data,
		modified: s.clock.Now(),
		etag:     fmt.Sprintf("%08x-%d", hashBytes(data), len(data)),
	}
	s.bytesIn += int64(len(data))
	s.mu.Unlock()
	return nil
}

// Stats reports cumulative transfer volumes.
func (s *Service) Stats() (bytesIn, bytesOut int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bytesIn, s.bytesOut
}

func hashBytes(b []byte) uint32 {
	// FNV-1a.
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// Reader streams an object in chunks through the bandwidth model.
type Reader struct {
	svc         *Service
	bucket, key string
	off, size   int64
	chunk       int64
}

// NewReader opens a streaming reader over an object.
func (s *Service) NewReader(bucketName, key string) (*Reader, error) {
	meta, err := s.Head(bucketName, key)
	if err != nil {
		return nil, err
	}
	return &Reader{svc: s, bucket: bucketName, key: key, size: meta.Size, chunk: 1 << 20}, nil
}

var _ io.Reader = (*Reader)(nil)

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	if r.off >= r.size {
		return 0, io.EOF
	}
	want := int64(len(p))
	if want > r.chunk {
		want = r.chunk
	}
	data, err := r.svc.GetRange(r.bucket, r.key, r.off, want)
	if err != nil {
		return 0, err
	}
	n := copy(p, data)
	r.off += int64(n)
	return n, nil
}

// BandwidthLimiter models an aggregate-throughput storage/network
// backend: the more concurrent transfers, the slower each one goes. This
// is the mechanism behind Figure 5's observation that V100 jobs starting
// at peak load degrade 51% while earlier K80 batches degrade 6-8%.
type BandwidthLimiter struct {
	mu        sync.Mutex
	clock     sim.Clock
	bandwidth float64 // bytes/sec aggregate
	active    int
	peak      int
}

// NewBandwidthLimiter returns a limiter over the given aggregate
// bandwidth in bytes/sec.
func NewBandwidthLimiter(clock sim.Clock, bandwidth float64) *BandwidthLimiter {
	return &BandwidthLimiter{clock: clock, bandwidth: bandwidth}
}

// Transfer blocks for the modeled duration of moving size bytes given
// current contention.
func (l *BandwidthLimiter) Transfer(size int64) {
	d := l.Begin(size)
	l.clock.Sleep(d)
	l.End()
}

// Begin registers a transfer and returns its modeled duration; callers
// must pair it with End. Split form lets discrete-event simulations
// schedule the completion instead of sleeping.
func (l *BandwidthLimiter) Begin(size int64) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.active++
	if l.active > l.peak {
		l.peak = l.active
	}
	share := l.bandwidth / float64(l.active)
	return time.Duration(float64(size) / share * float64(time.Second))
}

// End deregisters a transfer.
func (l *BandwidthLimiter) End() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active > 0 {
		l.active--
	}
}

// Active returns the number of in-flight transfers.
func (l *BandwidthLimiter) Active() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.active
}

// Peak returns the maximum concurrent transfers observed.
func (l *BandwidthLimiter) Peak() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.peak
}
