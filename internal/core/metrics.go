package core

import (
	"strings"
	"sync"
	"time"
)

// LogLine is one collected learner log line.
type LogLine struct {
	JobID   string
	Learner int
	Time    time.Time
	Text    string
}

// MetricsService is the Training Metrics Service (§3.2): it collects
// per-job training logs (streamed by the log-collector helpers) into a
// searchable index — the role ElasticSearch/Kibana plays in the paper's
// deployment — and counts platform health metrics ("number of times
// microservices fail and recover, and frequency of connectivity
// issues").
type MetricsService struct {
	mu       sync.Mutex
	logs     map[string][]LogLine // jobID -> lines
	counters map[string]int64
	subs     map[string][]chan LogLine
}

// NewMetricsService returns an empty service.
func NewMetricsService() *MetricsService {
	return &MetricsService{
		logs:     make(map[string][]LogLine),
		counters: make(map[string]int64),
		subs:     make(map[string][]chan LogLine),
	}
}

// AppendLog ingests one log line and fans it out to streamers.
func (m *MetricsService) AppendLog(line LogLine) {
	m.mu.Lock()
	m.logs[line.JobID] = append(m.logs[line.JobID], line)
	subs := m.subs[line.JobID]
	m.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- line:
		default:
		}
	}
}

// Logs returns all lines for a job (copy).
func (m *MetricsService) Logs(jobID string) []LogLine {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]LogLine, len(m.logs[jobID]))
	copy(out, m.logs[jobID])
	return out
}

// SearchLogs returns a job's lines containing the substring — the
// "indexed ... for easy debugging" query path.
func (m *MetricsService) SearchLogs(jobID, substr string) []LogLine {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []LogLine
	for _, l := range m.logs[jobID] {
		if strings.Contains(l.Text, substr) {
			out = append(out, l)
		}
	}
	return out
}

// StreamLogs subscribes to a job's live log stream.
func (m *MetricsService) StreamLogs(jobID string) (<-chan LogLine, func()) {
	ch := make(chan LogLine, 256)
	m.mu.Lock()
	m.subs[jobID] = append(m.subs[jobID], ch)
	m.mu.Unlock()
	return ch, func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		subs := m.subs[jobID]
		for i, c := range subs {
			if c == ch {
				m.subs[jobID] = append(subs[:i], subs[i+1:]...)
				close(ch)
				return
			}
		}
	}
}

// Inc bumps a named counter ("api.restarts", "guardian.rollbacks", ...).
func (m *MetricsService) Inc(counter string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.counters[counter]++
}

// Counter reads a named counter.
func (m *MetricsService) Counter(counter string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[counter]
}

// Counters returns a snapshot of all counters.
func (m *MetricsService) Counters() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.counters))
	for k, v := range m.counters {
		out[k] = v
	}
	return out
}
