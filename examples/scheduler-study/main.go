// Scheduler study: demonstrates §3.5's scheduling deadlock live. The
// same oversubscribed workload runs twice — once with gang scheduling
// disabled (stock pod-at-a-time placement) and once with the BSA gang
// scheduler — and we count partially placed jobs and the GPUs they
// strand.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/ffdl/ffdl"
)

func main() {
	fmt.Println("=== without gang scheduling (stock pod-at-a-time) ===")
	run(false)
	fmt.Println()
	fmt.Println("=== with gang scheduling (BSA) ===")
	run(true)
}

func run(gang bool) {
	cfg := ffdl.Config{
		GangScheduling:  &gang,
		TimeCompression: 1, // jobs effectively run "forever" for this snapshot
		Seed:            1,
		// A slow scheduling pass lets all four jobs' pods accumulate in
		// the queue before placement, like the paper's concurrent
		// submission; the stock scheduler then binds them in shuffled
		// (nondeterministic) order.
		SchedulerInterval: 250 * time.Millisecond,
	}
	platform, err := ffdl.New(cfg)
	if err != nil {
		log.Fatalf("boot: %v", err)
	}
	defer platform.Stop()
	// 4 machines x 2 GPUs: room for exactly two 2Lx2G jobs.
	platform.AddNodes("k80", ffdl.K80, 4, 2)
	if err := platform.SeedDataset("datasets", "d/", 1<<20); err != nil {
		log.Fatalf("seed: %v", err)
	}

	client := platform.Client()
	ctx := context.Background()
	// Submit 4 synchronous jobs needing 2 learners x 2 GPUs each: total
	// demand 16 GPUs against 8 supplied.
	var jobIDs []string
	for i := 0; i < 4; i++ {
		id, err := client.Submit(ctx, ffdl.Manifest{
			Name: fmt.Sprintf("sync-job-%d", i), User: "study",
			Framework: ffdl.TensorFlow, Model: ffdl.ResNet50,
			Learners: 2, GPUsPerLearner: 2, GPUType: ffdl.K80,
			Iterations: 1_000_000,
			DataBucket: "datasets", DataPrefix: "d/",
		})
		if err != nil {
			log.Fatalf("submit: %v", err)
		}
		jobIDs = append(jobIDs, id)
	}
	// Let the scheduler settle.
	time.Sleep(900 * time.Millisecond)

	fully, partial, queued := 0, 0, 0
	deadlockedGPUs := 0
	for _, id := range jobIDs {
		bound := 0
		for _, pod := range platform.Kube.Store().ListPods("learner-" + id + "-") {
			if pod.Status.Node != "" {
				bound++
			}
		}
		switch bound {
		case 2:
			fully++
		case 0:
			queued++
		default:
			partial++
			deadlockedGPUs += bound * 2
		}
	}
	fmt.Printf("jobs fully scheduled: %d, fully queued: %d, PARTIALLY placed (deadlocked): %d\n",
		fully, queued, partial)
	alloc, capacity := platform.GPUUtilization()
	fmt.Printf("GPUs allocated: %d/%d, of which stranded by deadlocked learners: %d\n",
		alloc, capacity, deadlockedGPUs)
	if partial > 0 {
		fmt.Println("-> temporarily deadlocked learners hold GPUs but no job can make progress (paper §3.5)")
	} else {
		fmt.Println("-> every job is either fully running or fully queued: no stranded GPUs")
	}
	for _, id := range jobIDs {
		client.Terminate(ctx, id) //nolint:errcheck
	}
}
