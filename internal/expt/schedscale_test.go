package expt

import "testing"

// TestSchedulerScaleSublinear pins the acceptance criterion of the
// dirty-set + capacity-index work: with an identical gang workload, a
// 4x larger cluster must not cost meaningfully more scheduler work per
// pass — nodes-examined-per-pass stays roughly flat (sublinear), every
// pod still places, and the run is carried by events rather than
// resync full scans.
func TestSchedulerScaleSublinear(t *testing.T) {
	base := SchedScaleConfig{Gangs: 60, Seed: 7}
	results := SchedulerScaleSweep([]int{250, 1000}, base)
	small, large := results[0], results[1]

	for _, r := range results {
		if r.Placed != r.Pods {
			t.Fatalf("%d nodes: placed %d of %d pods", r.Nodes, r.Placed, r.Pods)
		}
		if r.Passes == 0 {
			t.Fatalf("%d nodes: no scheduling passes recorded", r.Nodes)
		}
		// Boot counts one full scan and the resync ticker (2s) may add
		// a few on a slow runner; the run must still be event-carried,
		// not resync-carried, so bound full scans by elapsed wall time
		// rather than a fixed constant.
		allowed := uint64(2 + r.WallSeconds/2)
		if r.FullScans > allowed {
			t.Errorf("%d nodes: %d full scans in %.1fs — run leaned on the resync safety net",
				r.Nodes, r.FullScans, r.WallSeconds)
		}
	}

	ratio := large.NodesExaminedPerPass / small.NodesExaminedPerPass
	if ratio > 2 {
		t.Fatalf("nodes-examined-per-pass grew %.2fx for 4x nodes (%.0f -> %.0f); want sublinear (<2x)",
			ratio, small.NodesExaminedPerPass, large.NodesExaminedPerPass)
	}
	t.Logf("4x nodes -> %.2fx examined/pass (%.0f -> %.0f), placement mean %.2fms -> %.2fms",
		ratio, small.NodesExaminedPerPass, large.NodesExaminedPerPass,
		small.MeanPlacementMs, large.MeanPlacementMs)
}
