package kube

import (
	"fmt"
	"sync"
	"time"

	"github.com/ffdl/ffdl/internal/obs"
	"github.com/ffdl/ffdl/internal/sched"
	"github.com/ffdl/ffdl/internal/sim"
)

// Runtime is a pod's containerized process: it runs until completion or
// until stop is closed (kill/eviction), returning an exit code.
// 0 means success; anything else marks the pod Failed.
type Runtime func(ctx *PodContext) int

// PodContext is handed to a pod's Runtime.
type PodContext struct {
	// Pod is a snapshot of the pod at start time.
	Pod *Pod
	// Node is the machine the pod runs on.
	Node string
	// Stop is closed when the pod is killed or its node dies.
	Stop <-chan struct{}
	// Cluster allows the process to observe cluster state (used by
	// learner processes to wait for their peers, mirroring distributed
	// frameworks blocking on worker rendezvous).
	Cluster *Cluster
	// Clock is the cluster clock.
	Clock sim.Clock
}

// Config parameterizes a Cluster.
type Config struct {
	// Clock drives all timing; defaults to the wall clock.
	Clock sim.Clock
	// RNG seeds scheduling randomness (BSA); defaults to seed 1.
	RNG *sim.RNG
	// PodPolicy places pods one at a time when gang scheduling is off or
	// for non-gang pods. Defaults to Spread (the Kubernetes default the
	// paper started from).
	PodPolicy sched.PodPolicy
	// GangPolicy, when non-nil, places gang pods atomically.
	GangPolicy sched.GangPolicy
	// SchedulerInterval is the scheduling loop period. Default 5ms.
	SchedulerInterval time.Duration
	// ResyncInterval is the controller reconcile period. Default 10ms.
	ResyncInterval time.Duration
	// HeartbeatInterval is the kubelet heartbeat period. Default 20ms.
	HeartbeatInterval time.Duration
	// NodeGracePeriod is how stale a heartbeat may be before the node is
	// marked NotReady and its pods evicted. Default 100ms.
	NodeGracePeriod time.Duration
	// StartDelay returns the container start latency for a pod type
	// (image pull + volume bind + container create). The Table 3
	// experiment configures the paper's observed values. Default: 1ms.
	StartDelay func(podType string) time.Duration
	// Obs, when non-nil, wires the control loops into the platform's
	// metrics registry: scheduling pass duration ("sched.pass"), nodes
	// examined per pass ("sched.pass_nodes") and controller reconcile
	// latency ("kube.reconcile"). Nil leaves the loops uninstrumented
	// at zero cost.
	Obs *obs.Registry
	// Tracer, when non-nil, records a "sched.bind" event on the owning
	// job's trace as each pod binds.
	Tracer *obs.Tracer
}

func (c *Config) defaults() {
	if c.Clock == nil {
		c.Clock = sim.NewRealClock()
	}
	if c.RNG == nil {
		c.RNG = sim.NewRNG(1)
	}
	if c.PodPolicy == nil {
		c.PodPolicy = sched.Spread{}
	}
	if c.SchedulerInterval <= 0 {
		c.SchedulerInterval = 5 * time.Millisecond
	}
	if c.ResyncInterval <= 0 {
		c.ResyncInterval = 10 * time.Millisecond
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 20 * time.Millisecond
	}
	if c.NodeGracePeriod <= 0 {
		c.NodeGracePeriod = 100 * time.Millisecond
	}
	if c.StartDelay == nil {
		c.StartDelay = func(string) time.Duration { return time.Millisecond }
	}
}

// Cluster is a running orchestrator instance.
type Cluster struct {
	cfg   Config
	store *Store

	mu       sync.Mutex
	runtimes map[string]Runtime
	kubelets map[string]*kubelet
	// podStops is keyed by pod UID, not name: a recreated pod (same
	// name, fresh UID) must never be able to overwrite — or be killed
	// through — a dying predecessor's stop channel.
	podStops map[uint64]*podStop

	stopCh chan struct{}
	// loopWG tracks the control loops (scheduler, controllers, node
	// controller, kubelet host). Stop waits for them before stopping
	// kubelets: only the kubelet host loop dispatches pod processes, so
	// after it exits no kubelet WaitGroup can grow and the
	// Add-after-Wait hazard is structurally impossible.
	loopWG sync.WaitGroup

	// deletionsByNodeFailure counts pods deleted by eviction, for the
	// Fig. 7/8 analytics.
	deletionsByNodeFailure int64
	totalDeletions         int64

	// schedStats is the scheduler loop's published work counters.
	schedMu    sync.Mutex
	schedStats SchedStats

	// Registry instrument handles, derived once at NewCluster; all nil
	// when Config.Obs is nil (nil instruments no-op for free).
	obsPass      *obs.Histogram // scheduling pass duration
	obsPassNodes *obs.Histogram // nodes examined per pass
	obsReconcile *obs.Histogram // controller reconcile latency
}

// NewCluster boots an orchestrator with no nodes.
func NewCluster(cfg Config) *Cluster {
	cfg.defaults()
	c := &Cluster{
		cfg:      cfg,
		store:    NewStore(),
		runtimes: make(map[string]Runtime),
		kubelets: make(map[string]*kubelet),
		podStops: make(map[uint64]*podStop),
		stopCh:   make(chan struct{}),
	}
	if cfg.Obs != nil {
		c.obsPass = cfg.Obs.Histogram("sched.pass")
		c.obsPassNodes = cfg.Obs.HistogramWith("sched.pass_nodes", obs.CountBuckets)
		c.obsReconcile = cfg.Obs.Histogram("kube.reconcile")
	}
	// Subscribe every control loop's watch before any loop goroutine
	// starts: a store write made right after NewCluster returns is then
	// guaranteed to reach all loops. (Without this, the scheduler's
	// initial resync could bind a pod before the kubelet host loop had
	// subscribed, and the bind event would be lost until its resync.)
	schedWatch := c.store.Watch("")
	ctrlWatch := c.store.Watch("")
	kubeletWatch := c.store.Watch(KindPod)
	c.loopWG.Add(4)
	go func() { defer c.loopWG.Done(); defer schedWatch.Cancel(); c.schedulerLoop(schedWatch) }()
	go func() { defer c.loopWG.Done(); defer ctrlWatch.Cancel(); c.controllerLoop(ctrlWatch) }()
	go func() { defer c.loopWG.Done(); c.nodeControllerLoop() }()
	go func() { defer c.loopWG.Done(); defer kubeletWatch.Cancel(); c.kubeletStartLoop(kubeletWatch.Events()) }()
	return c
}

// Store exposes the API-server state.
func (c *Cluster) Store() *Store { return c.store }

// Clock returns the cluster clock.
func (c *Cluster) Clock() sim.Clock { return c.cfg.Clock }

// RegisterRuntime installs a named pod process.
func (c *Cluster) RegisterRuntime(name string, r Runtime) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.runtimes[name] = r
}

func (c *Cluster) runtime(name string) Runtime {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.runtimes[name]
}

// AddNode registers a machine and starts its kubelet.
func (c *Cluster) AddNode(name, gpuType string, capacity sched.Resources) {
	now := c.cfg.Clock.Now()
	c.store.PutNode(&Node{
		Name: name, GPUType: gpuType, Capacity: capacity,
		Ready: true, LastHeartbeat: now,
	})
	kl := newKubelet(c, name)
	c.mu.Lock()
	c.kubelets[name] = kl
	c.mu.Unlock()
	kl.start()
}

// CrashNode simulates a machine failure: the kubelet halts (heartbeats
// stop, processes die). The node controller will notice and evict.
func (c *Cluster) CrashNode(name string) {
	c.mu.Lock()
	kl := c.kubelets[name]
	c.mu.Unlock()
	if kl != nil {
		kl.crash()
	}
}

// RestoreNode brings a crashed machine back.
func (c *Cluster) RestoreNode(name string) {
	c.mu.Lock()
	kl := c.kubelets[name]
	c.mu.Unlock()
	if kl != nil {
		kl.restore()
	}
	c.store.UpdateNode(name, func(n *Node) {
		n.Ready = true
		n.LastHeartbeat = c.cfg.Clock.Now()
	})
}

// CordonNode marks a node unschedulable (§5.5).
func (c *Cluster) CordonNode(name string) {
	c.store.UpdateNode(name, func(n *Node) { n.Cordoned = true })
}

// KillPod terminates a pod's process (kubectl delete-pod semantics); the
// owning controller will recreate it. It reports whether the pod existed.
func (c *Cluster) KillPod(name, reason string) bool {
	pod, exists := c.store.GetPod(name)
	if !exists {
		return false
	}
	c.mu.Lock()
	stop, ok := c.podStops[pod.UID]
	if ok {
		delete(c.podStops, pod.UID)
	}
	c.mu.Unlock()
	if ok {
		stop.close()
	}
	// Pods not yet running are failed directly (guarded by UID so the
	// kill can never land on a later incarnation of the name).
	c.store.UpdatePod(name, func(p *Pod) {
		if p.UID == pod.UID && !p.Terminated() && !ok {
			p.Status.Phase = PodFailed
			p.Status.Reason = reason
			p.Status.FinishedAt = c.cfg.Clock.Now()
		}
	})
	return true
}

// bindPod commits a scheduling decision to the store. The UID guard
// ensures the binding lands only on the intended incarnation and never
// on a pod that terminated (or was replaced) while the pass ran; it
// reports whether the pod was actually bound.
func (c *Cluster) bindPod(name string, uid uint64, nodeName string) bool {
	now := c.cfg.Clock.Now()
	bound := false
	c.store.UpdatePod(name, func(p *Pod) {
		if p.UID != uid || p.Terminated() || p.Status.Node != "" {
			return
		}
		p.Status.Node = nodeName
		p.Status.ScheduledAt = now
		bound = true
	})
	if bound {
		c.recordEvent(EventNormal, "Scheduled", KindPod, name, "", "bound to "+nodeName)
	}
	return bound
}

// DeletePod removes a pod object entirely, stopping its process first.
func (c *Cluster) DeletePod(name, reason string) {
	pod, exists := c.store.GetPod(name)
	c.mu.Lock()
	var stop *podStop
	var ok bool
	if exists {
		stop, ok = c.podStops[pod.UID]
		if ok {
			delete(c.podStops, pod.UID)
		}
	}
	c.totalDeletions++
	if reason == "NodeFailure" {
		c.deletionsByNodeFailure++
	}
	c.mu.Unlock()
	if ok {
		stop.close()
	}
	c.store.Delete(KindPod, name)
}

// DeletionStats reports (deletions due to node failure, total deletions).
func (c *Cluster) DeletionStats() (nodeFailure, total int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.deletionsByNodeFailure, c.totalDeletions
}

// Snapshot builds the scheduler's cluster state: node free = capacity
// minus demands of bound, non-terminated pods.
func (c *Cluster) Snapshot() *sched.ClusterState {
	nodes := c.store.ListNodes()
	pods := c.store.ListPods("")
	used := make(map[string]sched.Resources, len(nodes))
	podCount := make(map[string]int, len(nodes))
	for _, p := range pods {
		if p.Status.Node == "" || p.Terminated() {
			continue
		}
		used[p.Status.Node] = used[p.Status.Node].Add(p.Spec.Demand)
		podCount[p.Status.Node]++
	}
	out := make([]*sched.Node, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, &sched.Node{
			Name:          n.Name,
			GPUType:       n.GPUType,
			Capacity:      n.Capacity,
			Free:          n.Capacity.Sub(used[n.Name]),
			Unschedulable: !n.Schedulable(),
			Pods:          podCount[n.Name],
		})
	}
	return sched.NewClusterState(out)
}

// SchedStats returns a snapshot of the scheduler's work counters —
// passes, full-cluster scans, nodes examined, events filtered. The
// scale experiments read it to verify that scheduling cost tracks what
// changed rather than cluster size.
func (c *Cluster) SchedStats() SchedStats {
	c.schedMu.Lock()
	defer c.schedMu.Unlock()
	return c.schedStats
}

func (c *Cluster) publishSchedStats(s *SchedStats) {
	c.schedMu.Lock()
	c.schedStats = *s
	c.schedMu.Unlock()
}

// GPUUtilization returns (allocated, capacity) GPUs — the metric FfDL
// monitors for cluster sizing (§3.7).
func (c *Cluster) GPUUtilization() (allocated, capacity int) {
	cs := c.Snapshot()
	free, cap_ := cs.TotalGPUs()
	return cap_ - free, cap_
}

// Stop shuts the cluster down.
func (c *Cluster) Stop() {
	select {
	case <-c.stopCh:
		return
	default:
	}
	close(c.stopCh)
	// Control loops first: after they exit, no new pod process can be
	// dispatched onto a kubelet, so the kubelet WaitGroups below are
	// final.
	c.loopWG.Wait()
	c.mu.Lock()
	kls := make([]*kubelet, 0, len(c.kubelets))
	for _, kl := range c.kubelets {
		kls = append(kls, kl)
	}
	c.mu.Unlock()
	// Kubelets own their pods' stop channels: stopping them closes every
	// running pod's channel exactly once and unregisters it.
	for _, kl := range kls {
		kl.stop()
	}
	// Anything left was registered but never picked up by a kubelet.
	c.mu.Lock()
	stops := make([]*podStop, 0, len(c.podStops))
	for uid, stop := range c.podStops {
		stops = append(stops, stop)
		delete(c.podStops, uid)
	}
	c.mu.Unlock()
	for _, stop := range stops {
		stop.close()
	}
}

// podStop is an idempotently-closable kill signal for one pod process.
type podStop struct {
	ch   chan struct{}
	once sync.Once
}

func newPodStop() *podStop { return &podStop{ch: make(chan struct{})} }

func (p *podStop) close() { p.once.Do(func() { close(p.ch) }) }

// registerPodStop installs the kill channel for a starting pod
// incarnation; it returns false if the cluster is stopping. UIDs are
// unique, so registration can never clobber another incarnation.
func (c *Cluster) registerPodStop(uid uint64, stop *podStop) bool {
	select {
	case <-c.stopCh:
		return false
	default:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.podStops[uid] = stop
	return true
}

func (c *Cluster) unregisterPodStop(uid uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.podStops, uid)
}

func (c *Cluster) recordEvent(evType EventType, reason, kind, object, podType, msg string) {
	c.store.RecordEvent(Event{
		Time: c.cfg.Clock.Now(), Type: evType, Reason: reason,
		Kind: kind, Object: object, PodType: podType, Message: msg,
	})
}

// fmtPodName builds controller-owned pod names.
func fmtPodName(owner string, ordinal int) string {
	return fmt.Sprintf("%s-%d", owner, ordinal)
}
