package obs

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

func TestTracerSpanTree(t *testing.T) {
	tr := NewTracer(0)
	t0 := time.Unix(100, 0)
	tr.Begin("j1", t0)
	tr.Phase("j1", "QUEUED", t0)
	tr.Phase("j1", "PENDING", t0.Add(10*time.Millisecond))
	tr.Sub("j1", "lcm.deploy", t0.Add(12*time.Millisecond), t0.Add(15*time.Millisecond))
	tr.Phase("j1", "PROCESSING", t0.Add(20*time.Millisecond))
	tr.Finish("j1", "COMPLETED", t0.Add(50*time.Millisecond))

	trace, ok := tr.Trace("j1")
	if !ok {
		t.Fatal("trace missing")
	}
	root := trace.Root
	if root.Duration() != 50*time.Millisecond {
		t.Fatalf("root duration = %v, want 50ms", root.Duration())
	}
	names := make([]string, 0, len(root.Children))
	for _, c := range root.Children {
		names = append(names, c.Name)
	}
	want := []string{"QUEUED", "PENDING", "PROCESSING", "COMPLETED"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("phases = %v, want %v", names, want)
	}
	// Causal order: each phase starts when its predecessor ends.
	for i := 1; i < len(root.Children); i++ {
		prev, cur := root.Children[i-1], root.Children[i]
		if cur.Start.Before(prev.Start) {
			t.Fatalf("phase %s starts before %s", cur.Name, prev.Name)
		}
		if !prev.End.Equal(cur.Start) {
			t.Fatalf("phase %s ends at %v but %s starts at %v", prev.Name, prev.End, cur.Name, cur.Start)
		}
	}
	// The deploy sub-span nests under PENDING.
	pending := root.Children[1]
	if len(pending.Children) != 1 || pending.Children[0].Name != "lcm.deploy" {
		t.Fatalf("PENDING children = %+v, want one lcm.deploy span", pending.Children)
	}
	if d := pending.Children[0].Duration(); d != 3*time.Millisecond {
		t.Fatalf("lcm.deploy duration = %v, want 3ms", d)
	}
	// Post-finish mutations are ignored.
	tr.Phase("j1", "ZOMBIE", t0.Add(time.Hour))
	trace2, _ := tr.Trace("j1")
	if len(trace2.Root.Children) != 4 {
		t.Fatal("finished trace accepted a new phase")
	}
}

func TestTracerUnknownJobAndNil(t *testing.T) {
	tr := NewTracer(0)
	// Transitions for jobs the tracer never saw (another process's
	// writes surfacing via the change feed) are dropped, not invented.
	tr.Phase("ghost", "PENDING", time.Unix(0, 0))
	tr.Finish("ghost", "COMPLETED", time.Unix(1, 0))
	if _, ok := tr.Trace("ghost"); ok {
		t.Fatal("unknown job must not materialize a trace")
	}
	var nilT *Tracer
	nilT.Begin("x", time.Unix(0, 0))
	nilT.Phase("x", "PENDING", time.Unix(0, 0))
	nilT.Event("x", "sched.bind", time.Unix(0, 0))
	nilT.Finish("x", "COMPLETED", time.Unix(0, 0))
	if _, ok := nilT.Trace("x"); ok {
		t.Fatal("nil tracer must report no traces")
	}
}

func TestTracerEviction(t *testing.T) {
	tr := NewTracer(2)
	t0 := time.Unix(0, 0)
	tr.Begin("a", t0)
	tr.Begin("b", t0)
	tr.Begin("c", t0) // evicts a
	if _, ok := tr.Trace("a"); ok {
		t.Fatal("oldest trace not evicted")
	}
	if _, ok := tr.Trace("b"); !ok {
		t.Fatal("trace b missing")
	}
	if _, ok := tr.Trace("c"); !ok {
		t.Fatal("trace c missing")
	}
}

func TestChromeTrace(t *testing.T) {
	tr := NewTracer(0)
	t0 := time.Unix(100, 0)
	tr.Begin("j1", t0)
	tr.Phase("j1", "PENDING", t0)
	tr.Sub("j1", "etcd.propose", t0.Add(time.Millisecond), t0.Add(2*time.Millisecond))
	tr.Finish("j1", "COMPLETED", t0.Add(10*time.Millisecond))
	trace, _ := tr.Trace("j1")
	raw, err := trace.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	// root + PENDING + COMPLETED + sub-span
	if len(events) != 4 {
		t.Fatalf("chrome events = %d, want 4", len(events))
	}
	root := events[0]
	if root["ph"] != "X" || root["ts"].(float64) != 0 || root["dur"].(float64) != 10000 {
		t.Fatalf("root event = %v", root)
	}
	var sub map[string]any
	for _, e := range events {
		if e["name"] == "etcd.propose" {
			sub = e
		}
	}
	if sub == nil || sub["tid"].(float64) != 2 || sub["ts"].(float64) != 1000 || sub["dur"].(float64) != 1000 {
		t.Fatalf("sub event = %v", sub)
	}
}
