package sched

import (
	"fmt"
	"sort"
)

// PodPolicy places a single pod, Kubernetes-style: each pod of a job is
// considered independently, which is exactly what allows the partial
// placements and scheduling deadlocks of §3.5.
type PodPolicy interface {
	// Name identifies the policy.
	Name() string
	// PlacePod picks a node for the pod against the given state, or
	// explains why none fits. Implementations must not mutate cs.
	PlacePod(p *PodSpec, cs *ClusterState) (string, *Failure)
}

// GangPolicy places a whole job atomically.
type GangPolicy interface {
	// Name identifies the policy.
	Name() string
	// PlaceGang assigns every pod of the gang or fails without side
	// effects. Implementations may speculate on cs via
	// Checkpoint/Rollback but must leave it unchanged on return; the
	// caller applies the returned assignments.
	PlaceGang(g *Gang, cs *ClusterState) ([]Assignment, *Failure)
}

// Spread is the Kubernetes default placement: filter feasible nodes,
// prefer the least-allocated one (which spreads replicas across the
// cluster). The paper shows it fragments GPU clusters (§3.4, Fig. 3).
//
// Known scale limitation: Spread examines every feasible candidate on
// each placement. Its score mixes CPU and GPU fractions equally, so the
// capacity index's pack-preference order cannot prune the scan the way
// it does for Pack. That is fine for the baseline policy at paper scale;
// at thousands of nodes its per-placement cost is O(feasible nodes),
// made visible by kube's SchedStats.SpreadFullScans counter so a future
// change can justify (or skip) a spread-ordered index.
type Spread struct{}

var _ PodPolicy = Spread{}

// Name implements PodPolicy.
func (Spread) Name() string { return "spread" }

// PlacePod implements PodPolicy.
func (Spread) PlacePod(p *PodSpec, cs *ClusterState) (string, *Failure) {
	nodes, reason := cs.FeasibleNodes(p)
	if len(nodes) == 0 {
		return "", &Failure{Reason: reason, Message: fmt.Sprintf("pod %s: 0/%d nodes feasible", p.Name, len(cs.Nodes))}
	}
	best := nodes[0]
	bestScore := spreadScore(best)
	for _, n := range nodes[1:] {
		if s := spreadScore(n); s > bestScore || (s == bestScore && n.Name < best.Name) {
			best, bestScore = n, s
		}
	}
	return best.Name, nil
}

// spreadScore is higher for emptier nodes (LeastAllocated).
func spreadScore(n *Node) float64 {
	score := 0.0
	if n.Capacity.GPUs > 0 {
		score += float64(n.Free.GPUs) / float64(n.Capacity.GPUs)
	}
	if n.Capacity.MilliCPU > 0 {
		score += float64(n.Free.MilliCPU) / float64(n.Capacity.MilliCPU)
	}
	return score - 0.01*float64(n.Pods)
}

// Pack is FfDL's placement policy: prefer the most-allocated feasible
// node, cramming pods onto as few machines as possible and leaving whole
// nodes free for large jobs (§3.4).
type Pack struct{}

var _ PodPolicy = Pack{}

// Name implements PodPolicy.
func (Pack) Name() string { return "pack" }

// PlacePod implements PodPolicy. It queries the capacity index, whose
// per-type ordering is exactly Pack's preference (packOrderLess), so
// on a large cluster it examines only the handful of fullest
// candidates rather than every machine.
func (Pack) PlacePod(p *PodSpec, cs *ClusterState) (string, *Failure) {
	best, reason := cs.BestPacked(p)
	if best == nil {
		return "", &Failure{Reason: reason, Message: fmt.Sprintf("pod %s: 0/%d nodes feasible", p.Name, len(cs.Nodes))}
	}
	return best.Name, nil
}

// packScore is higher for fuller nodes (MostAllocated). It survives as
// BSA's scalar bias weight; the Pack policy itself selects via the
// packOrderLess preference the capacity index is sorted by.
func packScore(n *Node) float64 {
	score := 0.0
	if n.Capacity.GPUs > 0 {
		score += 1 - float64(n.Free.GPUs)/float64(n.Capacity.GPUs)
	}
	if n.Capacity.MilliCPU > 0 {
		score += 0.1 * (1 - float64(n.Free.MilliCPU)/float64(n.Capacity.MilliCPU))
	}
	return score
}

// GreedyGang adapts any PodPolicy into an all-or-nothing gang placement:
// it speculatively places each pod in turn and returns the full
// assignment only if every pod fits. This is the baseline gang scheduler
// the BSA variant is compared against.
type GreedyGang struct {
	// Pod is the per-pod policy used for each member.
	Pod PodPolicy
}

var _ GangPolicy = GreedyGang{}

// Name implements GangPolicy.
func (g GreedyGang) Name() string { return "gang-greedy-" + g.Pod.Name() }

// PlaceGang implements GangPolicy. The speculative placement runs
// under a ClusterState checkpoint (rolled back before returning) rather
// than on a full clone, so a failed attempt on a large cluster costs
// only the assignments it tried.
func (g GreedyGang) PlaceGang(gang *Gang, cs *ClusterState) ([]Assignment, *Failure) {
	mark := cs.Checkpoint()
	defer cs.Rollback(mark)
	// Place large pods first: best-fit-decreasing reduces failure on
	// tight clusters.
	order := podOrder(gang)
	out := make([]Assignment, 0, len(gang.Pods))
	for _, i := range order {
		p := &gang.Pods[i]
		nodeName, fail := g.Pod.PlacePod(p, cs)
		if fail != nil {
			fail.Message = fmt.Sprintf("gang %s: %s", gang.JobID, fail.Message)
			return nil, fail
		}
		cs.Assign(nodeName, p.Demand)
		out = append(out, Assignment{Pod: p.Name, Node: nodeName})
	}
	sortAssignments(gang, out)
	return out, nil
}

// podOrder returns pod indices sorted by descending GPU demand (stable).
func podOrder(g *Gang) []int {
	order := make([]int, len(g.Pods))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return g.Pods[order[a]].Demand.GPUs > g.Pods[order[b]].Demand.GPUs
	})
	return order
}

// sortAssignments restores the gang's declared pod order in the output.
func sortAssignments(g *Gang, as []Assignment) {
	pos := make(map[string]int, len(g.Pods))
	for i, p := range g.Pods {
		pos[p.Name] = i
	}
	sort.SliceStable(as, func(i, j int) bool { return pos[as[i].Pod] < pos[as[j].Pod] })
}
