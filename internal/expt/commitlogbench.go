package expt

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"github.com/ffdl/ffdl/internal/commitlog"
)

// The commitlog experiment: the repo's own measurement of the event
// substrate. It has two halves:
//
//  1. A crash/compaction torture smoke — commitlog.Torture run at CI
//     scale, so a durability regression (torn-tail mishandling, offset
//     reuse, a consumer cursor drifting off its acked commit) fails the
//     gate with a named invariant, not a flaky downstream test.
//
//  2. A replay-vs-resync retention micro-bench: the cost model behind
//     the status bus's commit log. A watcher that disconnects and
//     reconnects either replays its job's missed transitions from the
//     retained log (cost = the gap) or falls back to re-reading the
//     job's full durable record (cost = the whole history). The
//     ablation arm has no retained log and pays the refill on every
//     reconnect — the pre-commitlog behavior.

// CommitlogConfig parameterizes one -commitlog run.
type CommitlogConfig struct {
	// TortureOps / TortureCrashPoints size the torture half (defaults
	// 300 appends, 40 crash points — the full 200+ suite runs in `go
	// test ./internal/commitlog`).
	TortureOps         int
	TortureCrashPoints int
	// Events is the number of status transitions published across Jobs
	// in the retention half. Defaults 4000 over 64 jobs.
	Events int
	Jobs   int
	// Reconnects is how many disconnect/reconnect samples to take,
	// spread uniformly through the publish stream. Default 400.
	Reconnects int
	// MaxLag is the largest gap (in a job's transitions) a disconnected
	// watcher accumulates before reconnecting. Default 12.
	MaxLag int
	Seed   int64
}

func (c *CommitlogConfig) defaults() {
	if c.TortureOps <= 0 {
		c.TortureOps = 300
	}
	if c.TortureCrashPoints <= 0 {
		c.TortureCrashPoints = 40
	}
	if c.Events <= 0 {
		c.Events = 4000
	}
	if c.Jobs <= 0 {
		c.Jobs = 64
	}
	if c.Reconnects <= 0 {
		c.Reconnects = 400
	}
	if c.MaxLag <= 0 {
		c.MaxLag = 12
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// RetentionArm reports one arm of the replay-vs-resync comparison.
type RetentionArm struct {
	ReplayLog  bool `json:"replay_log"`
	Events     int  `json:"events"`
	Reconnects int  `json:"reconnects"`
	// Replays counts reconnects served from the retained log; Resyncs
	// counts those that fell back to the durable record.
	Replays int `json:"replays"`
	Resyncs int `json:"resyncs"`
	// RecordsReplayed / RecordsRefilled are the delivered-record costs
	// of each path: a replay delivers only the gap, a refill re-reads
	// the job's entire history.
	RecordsReplayed int `json:"records_replayed"`
	RecordsRefilled int `json:"records_refilled"`
	// RecordsPerReconnect is the average read cost of one reconnect.
	RecordsPerReconnect float64 `json:"records_per_reconnect"`
	WallSeconds         float64 `json:"wall_seconds"`
}

// CommitlogResult is the full -commitlog payload.
type CommitlogResult struct {
	Torture   commitlog.TortureResult `json:"torture"`
	Retention []RetentionArm          `json:"retention"`
}

// CommitlogRun runs both halves.
func CommitlogRun(cfg CommitlogConfig) (CommitlogResult, error) {
	cfg.defaults()
	dir, err := os.MkdirTemp("", "commitlog-torture-")
	if err != nil {
		return CommitlogResult{}, err
	}
	defer os.RemoveAll(dir) //nolint:errcheck // scratch cleanup
	torture, err := commitlog.Torture(commitlog.TortureConfig{
		Dir:         dir,
		Ops:         cfg.TortureOps,
		CrashPoints: cfg.TortureCrashPoints,
		Seed:        cfg.Seed,
	})
	if err != nil {
		return CommitlogResult{}, err
	}
	res := CommitlogResult{Torture: torture}
	for _, withLog := range []bool{true, false} {
		arm, err := retentionArm(cfg, withLog)
		if err != nil {
			return res, err
		}
		res.Retention = append(res.Retention, arm)
	}
	return res, nil
}

// retentionArm publishes the transition stream and samples reconnects
// against either the retained commit log (withLog) or the always-refill
// ablation.
func retentionArm(cfg CommitlogConfig, withLog bool) (RetentionArm, error) {
	arm := RetentionArm{ReplayLog: withLog, Events: cfg.Events}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Same shape as the status bus's log: keyed by job, compacting,
	// bounded retention.
	l, err := commitlog.Open(commitlog.NewMemStore(), commitlog.Options{
		SegmentRecords: 256,
		Compact:        true,
		MaxSegments:    8,
	})
	if err != nil {
		return arm, err
	}
	// seqs[j] is job j's durable history length — what a refill re-reads.
	seqs := make([]int, cfg.Jobs)
	every := cfg.Events / cfg.Reconnects
	if every < 1 {
		every = 1
	}
	start := time.Now()
	for i := 0; i < cfg.Events; i++ {
		job := rng.Intn(cfg.Jobs)
		seqs[job]++
		if _, err := l.AppendValue(fmt.Sprintf("job-%03d", job), seqs[job]); err != nil {
			return arm, err
		}
		if i%every != every-1 {
			continue
		}
		// One watcher reconnects, MaxLag-ish transitions behind its job.
		j := rng.Intn(cfg.Jobs)
		if seqs[j] == 0 {
			continue
		}
		lag := 1 + rng.Intn(cfg.MaxLag)
		from := seqs[j] - lag
		if from < 1 {
			from = 1
		}
		arm.Reconnects++
		var gap int
		served := false
		if withLog {
			gap, served = replayGap(l, fmt.Sprintf("job-%03d", j), from, seqs[j])
		}
		if served {
			arm.Replays++
			arm.RecordsReplayed += gap
		} else {
			// Refill: re-read the job's whole durable history.
			arm.Resyncs++
			arm.RecordsRefilled += seqs[j]
		}
	}
	arm.WallSeconds = time.Since(start).Seconds()
	if arm.Reconnects > 0 {
		arm.RecordsPerReconnect = float64(arm.RecordsReplayed+arm.RecordsRefilled) / float64(arm.Reconnects)
	}
	return arm, nil
}

// replayGap checks the retained log can serve job transitions [from,
// tail] contiguously — the statusBus.ReplayJob completeness rule — and
// returns the gap size.
func replayGap(l *commitlog.Log, key string, from, tail int) (int, bool) {
	last := from - 1
	for _, rec := range l.Records(0) {
		if rec.Key != key {
			continue
		}
		seq, isInt := rec.Value.(int)
		if !isInt || seq <= last {
			continue
		}
		if seq != last+1 {
			return 0, false
		}
		last = seq
	}
	if last < tail {
		return 0, false
	}
	return last - (from - 1), last >= from
}

// RenderCommitlog formats an already-computed result.
func RenderCommitlog(res CommitlogResult) *Table {
	t := &Table{
		Title: "Commit log: crash torture + replay-vs-resync retention cost",
		Header: []string{"Arm", "Events", "Reconnects", "Replays", "Resyncs",
			"Replayed", "Refilled", "Records/reconnect"},
	}
	name := map[bool]string{true: "replay log", false: "no log (ablation)"}
	for _, a := range res.Retention {
		t.Rows = append(t.Rows, []string{
			name[a.ReplayLog], fmt.Sprintf("%d", a.Events),
			fmt.Sprintf("%d", a.Reconnects), fmt.Sprintf("%d", a.Replays),
			fmt.Sprintf("%d", a.Resyncs), fmt.Sprintf("%d", a.RecordsReplayed),
			fmt.Sprintf("%d", a.RecordsRefilled), fmt.Sprintf("%.1f", a.RecordsPerReconnect),
		})
	}
	caption := fmt.Sprintf("Torture: %d crash points, %d violations (recovered %d-%d records).",
		res.Torture.CrashPoints, len(res.Torture.Violations),
		res.Torture.RecoveredMin, res.Torture.RecoveredMax)
	if len(res.Retention) == 2 {
		caption += fmt.Sprintf(" Retention: %.1f records/reconnect with the replay log vs %.1f without.",
			res.Retention[0].RecordsPerReconnect, res.Retention[1].RecordsPerReconnect)
	}
	t.Caption = caption
	return t
}
