package tenant

import (
	"errors"
	"fmt"

	"github.com/ffdl/ffdl/internal/mongo"
	"github.com/ffdl/ffdl/internal/sched"
)

// Collection is the MongoDB collection tenant records live in. Like job
// documents (§3.2), quotas are persisted before they take effect, so a
// platform restart reconstructs the registry from the store.
const Collection = "tenants"

// Registry is the durable tenant store. Reads come from MongoDB; update
// propagation rides the database's change feed (Watch), so every
// process tailing the feed — each platform's dispatcher — observes a
// quota write regardless of which API replica committed it, the same
// multi-writer posture the status bus takes (docs/watch-protocol.md,
// layer 3).
type Registry struct {
	db   *mongo.DB
	coll *mongo.Collection
}

// NewRegistry opens (creating if needed) the tenants collection.
func NewRegistry(db *mongo.DB) *Registry {
	return &Registry{db: db, coll: db.C(Collection)}
}

// Put installs or updates a tenant record.
func (r *Registry) Put(rec Record) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	return r.coll.Upsert(mongo.Filter{"_id": rec.User}, mongo.Update{
		Set: mongo.Doc{
			"user": rec.User,
			"tier": int(rec.Tier),
			"gpus": rec.GPUs,
		},
	})
}

// Get returns a tenant record. It swallows store errors — absent and
// unreadable look the same; callers that must tell a store outage apart
// from a missing record use Lookup.
func (r *Registry) Get(user string) (Record, bool) {
	rec, ok, _ := r.Lookup(user)
	return rec, ok
}

// Lookup returns a tenant record, distinguishing "no such record"
// (ok=false, nil error) from a store failure (err != nil, e.g. the
// primary is mid-failover) so admission paths can shed retryably
// instead of issuing a false "no tenant record" verdict.
func (r *Registry) Lookup(user string) (Record, bool, error) {
	doc, err := r.coll.FindOne(mongo.Filter{"_id": user})
	if err != nil {
		if errors.Is(err, mongo.ErrNotFound) {
			return Record{}, false, nil
		}
		return Record{}, false, err
	}
	rec, ok := docToRecord(doc)
	return rec, ok, nil
}

// List returns all tenant records, user-sorted.
func (r *Registry) List() []Record {
	docs := r.coll.Find(mongo.Filter{}, mongo.FindOpts{SortBy: "_id"})
	out := make([]Record, 0, len(docs))
	for _, d := range docs {
		if rec, ok := docToRecord(d); ok {
			out = append(out, rec)
		}
	}
	return out
}

// Watch opens a change stream over the tenants collection starting
// after oplog sequence fromSeq. The consumer contract is the
// mongo.ChangeStream one: strictly increasing Seq, full post-images,
// visible gaps — recover by re-reading List().
func (r *Registry) Watch(fromSeq uint64) *mongo.ChangeStream {
	return r.db.Watch(Collection, fromSeq)
}

// Seq returns the database's current oplog position, the natural
// fromSeq for a Watch that should only see future writes.
func (r *Registry) Seq() uint64 { return r.db.OplogLen() }

// Seed installs every stored quota into an admission controller — the
// level-triggered re-read the dispatcher runs at boot and on each
// resync tick.
func (r *Registry) Seed(a *sched.Admission) {
	for _, rec := range r.List() {
		a.SetQuota(rec.Quota())
	}
}

// docToRecord decodes a tenant document.
func docToRecord(d mongo.Doc) (Record, bool) {
	rec := Record{}
	rec.User, _ = d["user"].(string)
	if rec.User == "" {
		rec.User, _ = d["_id"].(string)
	}
	if rec.User == "" {
		return rec, false
	}
	switch v := d["tier"].(type) {
	case int:
		rec.Tier = sched.Tier(v)
	case int64:
		rec.Tier = sched.Tier(v)
	case float64:
		rec.Tier = sched.Tier(int(v))
	}
	switch v := d["gpus"].(type) {
	case int:
		rec.GPUs = v
	case int64:
		rec.GPUs = int(v)
	case float64:
		rec.GPUs = int(v)
	}
	return rec, true
}

// String renders a record for logs and CLI output.
func (r Record) String() string {
	return fmt.Sprintf("%s tier=%s gpus=%d", r.User, TierName(r.Tier), r.GPUs)
}
