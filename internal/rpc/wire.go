// Package rpc implements the lightweight RPC fabric the FfDL
// microservices communicate over. The paper's system uses gRPC; this
// stdlib-only equivalent provides the same coupling model: typed unary
// calls, server-streaming calls (used for watch/log streams), deadlines,
// and client-side load balancing across the replicas of a replicated
// microservice (the paper's Kubernetes "service" abstraction).
//
// Wire format: each connection carries length-prefixed binary frames in
// both directions (see appendFrame/readFrame); frame BODIES remain
// gob-encoded application messages, so the transport itself never needs
// type registration. Requests are multiplexed by ID, so one connection
// supports many concurrent in-flight calls, like HTTP/2 under gRPC.
package rpc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// frameKind discriminates wire frames.
type frameKind uint8

const (
	frameCall   frameKind = iota + 1 // client -> server: start a call
	frameData                        // payload (either direction)
	frameEnd                         // server -> client: call finished OK
	frameError                       // server -> client: call failed
	frameCancel                      // client -> server: abandon call
)

// frame is the unit of transmission. Body holds a gob-encoded message
// produced by the caller-side codec so the transport itself never needs
// type registration.
type frame struct {
	Kind   frameKind
	ID     uint64
	Method string
	Body   []byte
	Err    string
}

// Binary frame codec. Frames used to ride a per-connection gob stream;
// gob's per-frame reflective encode/decode (plus a fresh Body slice and
// header bookkeeping per frame) was the dominant per-call transport
// cost after PR 5 pooled the body buffers. The hand-rolled layout below
// is written by appendFrame into a reused per-connection buffer (zero
// allocations steady-state) and read by readFrame into a reused frame
// struct (allocations only for the fields a frame actually carries:
// the Body copy, and Method/Err when non-empty).
//
// Layout:
//
//	frameMagic | version | kind | uvarint ID |
//	uvarint len(Method) | Method | uvarint len(Err) | Err |
//	uvarint len(Body) | Body
//
// The magic and version bytes make every frame self-describing, so a
// future layout change (or a corrupted stream) is detected at the frame
// boundary instead of being misparsed. Length prefixes are bounded
// (maxMethodLen/maxErrLen/maxBodyLen) so a corrupt length cannot demand
// an absurd allocation; any violation surfaces as an error and the
// connection is torn down — never a panic (FuzzFrameCodecRoundtrip).
const (
	frameMagic   = 0xFC
	frameVersion = 1

	maxMethodLen = 1 << 12 // method names are short identifiers
	maxErrLen    = 1 << 20
	maxBodyLen   = 1 << 26
)

// Frame decode errors.
var (
	errFrameTruncated = errors.New("rpc: frame: truncated input")
	errFrameCorrupt   = errors.New("rpc: frame: corrupt input")
)

// appendFrame appends f's binary encoding to dst and returns the
// extended slice. Callers reuse dst across frames; the result is
// written to the connection before the next frame is encoded.
func appendFrame(dst []byte, f *frame) []byte {
	dst = append(dst, frameMagic, frameVersion, byte(f.Kind))
	dst = binary.AppendUvarint(dst, f.ID)
	dst = binary.AppendUvarint(dst, uint64(len(f.Method)))
	dst = append(dst, f.Method...)
	dst = binary.AppendUvarint(dst, uint64(len(f.Err)))
	dst = append(dst, f.Err...)
	dst = binary.AppendUvarint(dst, uint64(len(f.Body)))
	dst = append(dst, f.Body...)
	return dst
}

// readLimitedString reads a length-prefixed string field, enforcing
// max. Empty fields (the common case for Method and Err on data/end
// frames) allocate nothing.
func readLimitedString(br *bufio.Reader, max uint64) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", errFrameTruncated
	}
	if n > max {
		return "", fmt.Errorf("%w: field length %d exceeds %d", errFrameCorrupt, n, max)
	}
	if n == 0 {
		return "", nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(br, b); err != nil {
		return "", errFrameTruncated
	}
	return string(b), nil
}

// readFrame decodes the next frame from br into f, overwriting every
// field. The Body slice is freshly allocated (it outlives the read
// loop: it is handed to the in-flight call), Method/Err only when
// present.
func readFrame(br *bufio.Reader, f *frame) error {
	magic, err := br.ReadByte()
	if err != nil {
		return err // io.EOF passes through: clean close between frames
	}
	if magic != frameMagic {
		return fmt.Errorf("%w: bad magic 0x%02x", errFrameCorrupt, magic)
	}
	version, err := br.ReadByte()
	if err != nil {
		return errFrameTruncated
	}
	if version != frameVersion {
		return fmt.Errorf("%w: unknown frame version %d", errFrameCorrupt, version)
	}
	kind, err := br.ReadByte()
	if err != nil {
		return errFrameTruncated
	}
	f.Kind = frameKind(kind)
	if f.ID, err = binary.ReadUvarint(br); err != nil {
		return errFrameTruncated
	}
	if f.Method, err = readLimitedString(br, maxMethodLen); err != nil {
		return err
	}
	if f.Err, err = readLimitedString(br, maxErrLen); err != nil {
		return err
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return errFrameTruncated
	}
	if n > maxBodyLen {
		return fmt.Errorf("%w: body length %d exceeds %d", errFrameCorrupt, n, maxBodyLen)
	}
	if n == 0 {
		f.Body = nil
		return nil
	}
	f.Body = make([]byte, n)
	if _, err := io.ReadFull(br, f.Body); err != nil {
		return errFrameTruncated
	}
	return nil
}

// Error values surfaced to callers.
var (
	// ErrConnClosed reports that the underlying connection was closed
	// mid-call (e.g. the server crashed). Callers treat it as retryable.
	ErrConnClosed = errors.New("rpc: connection closed")
	// ErrNoEndpoints reports that a balanced client has no live replicas.
	ErrNoEndpoints = errors.New("rpc: no endpoints available")
	// ErrMethodNotFound reports a call to an unregistered method.
	ErrMethodNotFound = errors.New("rpc: method not found")
	// ErrCanceled reports that the call context was cancelled.
	ErrCanceled = errors.New("rpc: call canceled")
	// ErrStreamDone reports reading past the end of a server stream.
	ErrStreamDone = errors.New("rpc: stream done")
)

// RemoteError is an application error propagated from the server.
type RemoteError struct {
	Method  string
	Message string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("rpc: remote error from %s: %s", e.Method, e.Message)
}
