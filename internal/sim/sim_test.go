package sim

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

var origin = time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC)

func TestEngineOrdersEvents(t *testing.T) {
	e := NewEngine(origin)
	var got []int
	e.After(3*time.Second, func() { got = append(got, 3) })
	e.After(1*time.Second, func() { got = append(got, 1) })
	e.After(2*time.Second, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order = %v, want %v", got, want)
		}
	}
	if e.Now() != origin.Add(3*time.Second) {
		t.Fatalf("clock = %v, want %v", e.Now(), origin.Add(3*time.Second))
	}
}

func TestEngineSameInstantFIFO(t *testing.T) {
	e := NewEngine(origin)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(time.Second, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events fired out of order: %v", got)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(origin)
	fired := false
	ev := e.After(time.Second, func() { fired = true })
	if !e.Cancel(ev) {
		t.Fatal("Cancel returned false for pending event")
	}
	if e.Cancel(ev) {
		t.Fatal("Cancel returned true for already-cancelled event")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine(origin)
	count := 0
	for i := 1; i <= 5; i++ {
		e.After(time.Duration(i)*time.Minute, func() { count++ })
	}
	e.RunUntil(origin.Add(3 * time.Minute))
	if count != 3 {
		t.Fatalf("executed %d events before deadline, want 3", count)
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	if !e.Now().Equal(origin.Add(3 * time.Minute)) {
		t.Fatalf("clock = %v, want deadline", e.Now())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine(origin)
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			e.After(time.Second, recurse)
		}
	}
	e.After(time.Second, recurse)
	e.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if got, want := e.Now(), origin.Add(100*time.Second); !got.Equal(want) {
		t.Fatalf("clock = %v, want %v", got, want)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine(origin)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(origin.Add(-time.Second), func() {})
}

func TestFakeClockAdvance(t *testing.T) {
	c := NewFakeClock(origin)
	ch := c.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired before Advance")
	default:
	}
	c.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired early")
	default:
	}
	c.Advance(time.Second)
	select {
	case at := <-ch:
		if !at.Equal(origin.Add(10 * time.Second)) {
			t.Fatalf("fired at %v, want +10s", at)
		}
	default:
		t.Fatal("timer did not fire at deadline")
	}
}

func TestFakeClockSleepUnblocks(t *testing.T) {
	c := NewFakeClock(origin)
	done := make(chan struct{})
	go func() {
		c.Sleep(time.Minute)
		close(done)
	}()
	// Wait for the sleeper to register.
	for c.WaiterCount() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	c.Advance(time.Minute)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Sleep did not unblock after Advance")
	}
}

func TestFakeClockTicker(t *testing.T) {
	c := NewFakeClock(origin)
	tk := c.NewTicker(time.Second)
	defer tk.Stop()
	ticks := 0
	done := make(chan struct{})
	go func() {
		for range tk.C {
			ticks++
			if ticks == 3 {
				close(done)
				return
			}
		}
	}()
	for i := 0; i < 3; i++ {
		for c.WaiterCount() == 0 {
			time.Sleep(100 * time.Microsecond)
		}
		c.Advance(time.Second)
		time.Sleep(time.Millisecond)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatalf("got %d ticks, want 3", ticks)
	}
}

func TestFakeClockTimerStop(t *testing.T) {
	c := NewFakeClock(origin)
	tm := c.NewTimer(time.Second)
	if !tm.Stop() {
		t.Fatal("Stop returned false for pending timer")
	}
	if tm.Stop() {
		t.Fatal("Stop returned true twice")
	}
	c.Advance(2 * time.Second)
	select {
	case <-tm.C:
		t.Fatal("stopped timer fired")
	default:
	}
}

func TestFakeClockAutoAdvance(t *testing.T) {
	c := NewFakeClock(origin)
	c.StartAutoAdvance(200 * time.Microsecond)
	defer c.StopAutoAdvance()

	var wg sync.WaitGroup
	const n = 8
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.Sleep(time.Duration(i+1) * time.Hour)
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("auto-advance did not drain sleepers")
	}
	if got := c.Since(origin); got < n*time.Hour {
		t.Fatalf("virtual elapsed = %v, want >= %v", got, n*time.Hour)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestRNGStreamsIndependentOfOrder(t *testing.T) {
	// Child stream draws must depend only on (seed, id), not on how many
	// sibling streams were created.
	s1 := NewRNG(7).Stream(3)
	parent := NewRNG(7)
	s2 := parent.Stream(3)
	if s1.Float64() != s2.Float64() {
		t.Fatal("stream(3) differs between identical parents")
	}
}

func TestWeightedChoiceRespectsWeights(t *testing.T) {
	g := NewRNG(1)
	counts := [3]int{}
	weights := []float64{1, 2, 7}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[g.WeightedChoice(weights)]++
	}
	// Expect roughly 10% / 20% / 70%.
	checks := []struct{ got, want float64 }{
		{float64(counts[0]) / n, 0.1},
		{float64(counts[1]) / n, 0.2},
		{float64(counts[2]) / n, 0.7},
	}
	for i, ck := range checks {
		if ck.got < ck.want-0.02 || ck.got > ck.want+0.02 {
			t.Fatalf("weight %d frequency = %.3f, want ~%.2f", i, ck.got, ck.want)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	g := NewRNG(2)
	for _, mean := range []float64{0.5, 4, 20, 200} {
		sum := 0
		const n = 20000
		for i := 0; i < n; i++ {
			sum += g.Poisson(mean)
		}
		got := float64(sum) / n
		if got < mean*0.95 || got > mean*1.05 {
			t.Fatalf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	if got := h.Quantile(0.5); got != 50 {
		t.Fatalf("median = %v, want 50", got)
	}
	if got := h.Quantile(1.0); got != 100 {
		t.Fatalf("p100 = %v, want 100", got)
	}
	if got := h.Max(); got != 100 {
		t.Fatalf("max = %v, want 100", got)
	}
	if got := h.Mean(); got != 50.5 {
		t.Fatalf("mean = %v, want 50.5", got)
	}
}

func TestHistogramCDF(t *testing.T) {
	var h Histogram
	for _, v := range []float64{1, 1, 2, 4} {
		h.Add(v)
	}
	vals, probs := h.CDF()
	wantVals := []float64{1, 2, 4}
	wantProbs := []float64{0.5, 0.75, 1.0}
	if len(vals) != len(wantVals) {
		t.Fatalf("CDF lengths = %d, want %d", len(vals), len(wantVals))
	}
	for i := range vals {
		if vals[i] != wantVals[i] || probs[i] != wantProbs[i] {
			t.Fatalf("CDF = (%v,%v), want (%v,%v)", vals, probs, wantVals, wantProbs)
		}
	}
}

// Property: engine clock is monotonic regardless of the mixture of
// scheduled delays.
func TestEngineClockMonotonicProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine(origin)
		last := e.Now()
		ok := true
		for _, d := range delays {
			e.After(time.Duration(d)*time.Millisecond, func() {
				if e.Now().Before(last) {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram quantile is monotone in q and bounded by min/max.
func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, v := range raw {
			h.Add(float64(v))
		}
		prev := h.Quantile(0)
		for q := 0.1; q <= 1.0; q += 0.1 {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return h.Quantile(1) == h.Max() || h.N() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
