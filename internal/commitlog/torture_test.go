package commitlog

import (
	"strings"
	"testing"
)

// TestTortureCrashPoints is the PR's acceptance gate: the crash torture
// driver kills the file-backed store at >= 200 randomized crash points
// and every recovery invariant must hold at every one of them.
func TestTortureCrashPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("torture suite skipped in -short")
	}
	res, err := Torture(TortureConfig{
		Dir:         t.TempDir(),
		Ops:         300,
		CrashPoints: 220,
		Seed:        1,
	})
	if err != nil {
		t.Fatalf("Torture: %v", err)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("%d invariant violations:\n%s",
			len(res.Violations), strings.Join(res.Violations, "\n"))
	}
	if res.CrashPoints < 200 {
		t.Fatalf("only %d crash points, acceptance requires >= 200", res.CrashPoints)
	}
	if res.RecoveredMax == 0 {
		t.Fatal("no crash point recovered any records; crash draw is broken")
	}
	t.Logf("journal %d bytes, recovered %d..%d records across %d crash points",
		res.JournalBytes, res.RecoveredMin, res.RecoveredMax, res.CrashPoints)
}

// TestTortureWithCorruption re-runs a slice of the suite with bit-flips
// injected shortly before each crash point: recovery must still produce
// a clean prefix and a fully-acknowledged consumer cursor.
func TestTortureWithCorruption(t *testing.T) {
	if testing.Short() {
		t.Skip("torture suite skipped in -short")
	}
	res, err := Torture(TortureConfig{
		Dir:         t.TempDir(),
		Ops:         200,
		CrashPoints: 60,
		Seed:        2,
		Corrupt:     true,
	})
	if err != nil {
		t.Fatalf("Torture: %v", err)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("%d invariant violations under corruption:\n%s",
			len(res.Violations), strings.Join(res.Violations, "\n"))
	}
}
