package etcd

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestGroupCommitBatchesConcurrentProposals pins the tentpole property:
// K concurrent proposals are packed into fewer Raft entries than
// commands, every command still applies exactly once, and revisions
// stay per-command.
func TestGroupCommitBatchesConcurrentProposals(t *testing.T) {
	c := newTestCluster(t, Options{})
	const writers, perWriter = 16, 32
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("batch/w%d/k%d", w, i)
				if _, err := c.Put(key, []byte("v"), 0); err != nil {
					t.Errorf("Put %s: %v", key, err)
				}
			}
		}(w)
	}
	wg.Wait()

	st := c.Stats()
	if st.Commands < writers*perWriter {
		t.Fatalf("Commands = %d, want >= %d", st.Commands, writers*perWriter)
	}
	if st.Entries >= st.Commands {
		t.Fatalf("no batching: %d entries for %d commands", st.Entries, st.Commands)
	}
	if st.MaxBatch < 2 {
		t.Fatalf("MaxBatch = %d, want >= 2", st.MaxBatch)
	}
	// Every key exists exactly once with a distinct revision.
	kvs, err := c.List("batch/")
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != writers*perWriter {
		t.Fatalf("keys = %d, want %d", len(kvs), writers*perWriter)
	}
	seen := make(map[uint64]string, len(kvs))
	for _, kv := range kvs {
		if prev, dup := seen[kv.ModRevision]; dup {
			t.Fatalf("revision %d assigned to both %s and %s", kv.ModRevision, prev, kv.Key)
		}
		seen[kv.ModRevision] = kv.Key
	}
	// Followers learn the final commit index on the next append, so give
	// convergence a bounded grace window before comparing.
	deadline := time.Now().Add(5 * time.Second)
	for !c.StateEqual(0, 1) || !c.StateEqual(1, 2) {
		if time.Now().After(deadline) {
			t.Fatal("replicas diverged under batched load")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestUnbatchedAblationProposesPerCommand pins the ablation arm: one
// Raft entry per command, results identical.
func TestUnbatchedAblationProposesPerCommand(t *testing.T) {
	c := newTestCluster(t, Options{UnbatchedAblation: true})
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.Put(fmt.Sprintf("ab/k%d", i), []byte("v"), 0); err != nil {
				t.Errorf("Put: %v", err)
			}
		}(i)
	}
	wg.Wait()
	st := c.Stats()
	if st.MaxBatch != 0 {
		t.Fatalf("ablation built a batch envelope (MaxBatch=%d)", st.MaxBatch)
	}
	if st.Entries < uint64(n) {
		t.Fatalf("entries = %d, want >= %d (one per command)", st.Entries, n)
	}
	kvs, err := c.List("ab/")
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != n {
		t.Fatalf("keys = %d, want %d", len(kvs), n)
	}
}

// TestBatchedProposalsSurviveLeaderFailover exercises the re-enqueue
// retry path: proposals issued while the leader is isolated land
// exactly once after failover.
func TestBatchedProposalsSurviveLeaderFailover(t *testing.T) {
	c := newTestCluster(t, Options{})
	li, err := c.WaitLeader(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.Put(fmt.Sprintf("fo/k%d", i), []byte("v"), 0); err != nil {
				t.Errorf("Put during failover: %v", err)
			}
		}(i)
	}
	c.Isolate(li, true)
	wg.Wait()
	c.Isolate(li, false)
	kvs, err := c.List("fo/")
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 8 {
		t.Fatalf("keys = %d, want 8", len(kvs))
	}
}

// TestLeaseArmRaceExpiryStillFires hammers the Grant→expiry window that
// used to be racy (the expiry loop could check anyLeases before the
// grant applied, then miss the Grant-side wake): every short lease must
// still expire and delete its key. The arm now rides the apply path.
func TestLeaseArmRaceExpiryStillFires(t *testing.T) {
	c := newTestCluster(t, Options{})
	const leases = 20
	for i := 0; i < leases; i++ {
		id, err := c.Grant(10 * time.Millisecond)
		if err != nil {
			t.Fatalf("Grant %d: %v", i, err)
		}
		key := fmt.Sprintf("lease/k%d", i)
		if _, err := c.Put(key, []byte("x"), id); err != nil {
			t.Fatal(err)
		}
		// Let the expiry loop drain back to its lease-free wait between
		// grants so each iteration re-opens the arming window.
		deadline := time.Now().Add(2 * time.Second)
		for {
			if _, ok, _ := c.Get(key); !ok {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("lease %d never expired", i)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// TestWaitLeaderHoldsNoPollingWaiter pins the event-driven satellite: a
// WaitLeader call against a cluster that already has a leader returns
// without arming any clock timer (measured indirectly — it must return
// immediately even when invoked at high frequency).
func TestWaitLeaderHoldsNoPollingWaiter(t *testing.T) {
	c := newTestCluster(t, Options{})
	if _, err := c.WaitLeader(time.Second); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < 1000; i++ {
		if _, err := c.WaitLeader(time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if el := time.Since(start); el > 500*time.Millisecond {
		t.Fatalf("1000 WaitLeader calls with a stable leader took %v; the wait is not event-driven", el)
	}
}

// TestPutAllocBudgetOnIdleCluster pins the allocation budget of a
// single-key Put on an idle 3-node cluster so per-proposal costs cannot
// silently regress. The budget is deliberately generous (background
// heartbeats land in the count) but far below what a per-peer
// full-suffix resend or per-waiter polling would cost.
func TestPutAllocBudgetOnIdleCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting is load-sensitive")
	}
	c := newTestCluster(t, Options{})
	if _, err := c.Put("warm", []byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := c.Put("warm", []byte("x"), 0); err != nil {
			t.Fatal(err)
		}
	})
	// Measured ~51 allocs/op with the binary command codec (raft
	// messages, the 3 applies, timers and waiter machinery; encode is
	// one buffer, decode aliases it). The gob codec measured ~800 —
	// a regression back to per-entry reflective encoding, or to
	// full-suffix resends or per-waiter polling, blows this budget.
	if allocs > 150 {
		t.Fatalf("Put allocations = %.0f, budget 150", allocs)
	}
}

// TestGobCodecAblationStillCorrect pins the codec ablation arm: a
// cluster running gob-encoded Raft entries produces identical results,
// and its serial-Put allocation cost shows the codec delta the
// throughput experiment reports (sanity floor only — the point of the
// ablation is to measure, not to bound).
func TestGobCodecAblationStillCorrect(t *testing.T) {
	c := newTestCluster(t, Options{GobCodec: true})
	const writers, perWriter = 8, 16
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("gob/w%d/k%d", w, i)
				if _, err := c.Put(key, []byte("v"), 0); err != nil {
					t.Errorf("Put %s: %v", key, err)
				}
			}
		}(w)
	}
	wg.Wait()
	kvs, err := c.List("gob/")
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != writers*perWriter {
		t.Fatalf("keys = %d, want %d", len(kvs), writers*perWriter)
	}
}
