package core

import (
	"fmt"
	"sync"

	"github.com/ffdl/ffdl/internal/commitlog"
	"github.com/ffdl/ffdl/internal/mongo"
	"github.com/ffdl/ffdl/internal/obs"
	"github.com/ffdl/ffdl/internal/sim"
)

// StatusEvent is one job status transition published on the platform's
// status bus. Seq is the 1-based index of the transition in the job's
// MongoDB history — the stream's resume token — so subscribers can
// detect and refill gaps from the durable record: the bus is a latency
// optimization, MongoDB remains the source of truth (§3.2).
// See docs/watch-protocol.md ("core status bus" layer).
type StatusEvent struct {
	JobID  string
	Seq    int
	Status JobStatus
	Entry  StatusEntry
}

// statusBus fans job status transitions out to in-process subscribers:
// the LCM recovery loop (wakes on PENDING jobs instead of polling
// MongoDB) and the API replicas' WatchStatus streams. Delivery is
// best-effort with bounded buffers — a slow subscriber loses events and
// recovers from MongoDB via Seq gaps or a resync tick.
//
// The bus has two feeders: the direct path (setJobStatus publishes
// right after its MongoDB write) and the change-feed path (the
// platform tails the jobs collection's mongo change stream and
// republishes transitions it carries — the multi-replica fallback that
// delivers transitions committed by other API processes). Per-job Seq
// dedup below makes the two paths composable: whichever arrives first
// wins, the echo is dropped, and per-job order is preserved.
type statusBus struct {
	mu    sync.Mutex
	subs  map[int]*busSub
	nextS int
	// lastSeq is the highest Seq published per in-flight job, the
	// dedup cursor between the direct and change-feed paths. Entries
	// are removed at the terminal transition to bound the map; a late
	// duplicate terminal may therefore be republished, which
	// subscribers absorb by their own Seq cursors.
	lastSeq map[string]int
	// log retains recent published events on the platform's commit log
	// (internal/commitlog), keyed by job id with key-compaction: a
	// watcher that disconnects and comes back within the retained
	// window replays its job's missed transitions from here instead of
	// re-reading MongoDB (ReplayJob), and compaction keeps at least
	// every job's newest transition as older segments merge.
	log *commitlog.Log
	// persist encodes events into record payloads so the replay window
	// survives a process restart (DataDir platforms); off on MemStore,
	// where events ride the in-memory record Value.
	persist bool
}

type busSub struct {
	jobID string // "" subscribes to all jobs
	ch    chan StatusEvent
}

// newStatusBus opens the bus over the given replay-log store — a
// MemStore for the simulation default, a FileStore under DataDir for a
// durable platform, where the retained window (and therefore WatchStatus
// replay-on-reconnect) survives a full process restart. obsReg/clk wire
// the commit log's append/compaction instrumentation (nil obsReg runs
// the log uninstrumented).
func newStatusBus(store commitlog.SegmentStore, persist bool, obsReg *obs.Registry, clk sim.Clock) (*statusBus, error) {
	log, err := commitlog.Open(store, commitlog.Options{
		SegmentRecords: 256,
		Compact:        true,
		MaxSegments:    8,
		Obs:            obsReg,
		Clock:          clk,
	})
	if err != nil {
		return nil, fmt.Errorf("core: open status log: %w", err)
	}
	return &statusBus{subs: make(map[int]*busSub), lastSeq: make(map[string]int), log: log, persist: persist}, nil
}

// Subscribe registers for transitions of one job (or all jobs when
// jobID is ""). Cancel closes the channel.
func (b *statusBus) Subscribe(jobID string, buf int) (<-chan StatusEvent, func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextS++
	id := b.nextS
	s := &busSub{jobID: jobID, ch: make(chan StatusEvent, buf)}
	b.subs[id] = s
	return s.ch, func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if _, ok := b.subs[id]; ok {
			delete(b.subs, id)
			close(s.ch)
		}
	}
}

// Publish delivers ev to matching subscribers without blocking. Events
// at or below the job's published cursor are dropped, so the direct and
// change-feed paths never duplicate or reorder a job's transitions.
func (b *statusBus) Publish(ev StatusEvent) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ev.Seq <= b.lastSeq[ev.JobID] {
		return // already published by the other feeder
	}
	if ev.Status.Terminal() {
		delete(b.lastSeq, ev.JobID)
	} else {
		b.lastSeq[ev.JobID] = ev.Seq
	}
	// Record the transition in the replay log (keyed by job) before
	// fan-out, so a subscriber that misses the channel send can still
	// replay it. A durable bus encodes the event into the payload; a
	// failed append degrades to refill-from-MongoDB, never blocks a
	// transition.
	if b.persist {
		b.log.Append(ev.JobID, encodeStatusEvent(nil, ev)) //nolint:errcheck // replay is an optimization; MongoDB is the source of truth
	} else {
		b.log.AppendValue(ev.JobID, ev) //nolint:errcheck // unreachable on a MemStore
	}
	for _, s := range b.subs {
		if s.jobID != "" && s.jobID != ev.JobID {
			continue
		}
		select {
		case s.ch <- ev:
		default: // slow subscriber: it refills from MongoDB
		}
	}
}

// ReplayJob returns the retained transitions of jobID with Seq >=
// fromSeq. ok demands proof of completeness: at least one event, led
// by exactly fromSeq, with contiguous Seqs — so the caller can stream
// the replay as-is. Anything less (job unknown here, resume point
// compacted away, retention trimmed the tail) returns ok=false and the
// caller refills from MongoDB, which remains the source of truth.
func (b *statusBus) ReplayJob(jobID string, fromSeq int) (evs []StatusEvent, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	last := fromSeq - 1
	for _, rec := range b.log.Records(0) {
		if rec.Key != jobID {
			continue
		}
		ev, isEv := busEvent(rec)
		if !isEv || ev.Seq <= last {
			continue // duplicate (late terminal echo) or below the resume point
		}
		if ev.Seq != last+1 {
			return nil, false // hole: compaction or a lost publish
		}
		evs = append(evs, ev)
		last = ev.Seq
	}
	return evs, len(evs) > 0
}

// LatestJob returns whatever retained transitions of jobID the replay
// log still holds, in Seq order, without ReplayJob's completeness
// demand: the front may be truncated by compaction. This is degraded
// mode's read path — while the metadata store is unavailable the API
// serves status from here, flagged Degraded, rather than failing reads
// outright.
func (b *statusBus) LatestJob(jobID string) []StatusEvent {
	b.mu.Lock()
	defer b.mu.Unlock()
	var evs []StatusEvent
	last := 0
	for _, rec := range b.log.Records(0) {
		if rec.Key != jobID {
			continue
		}
		ev, isEv := busEvent(rec)
		if !isEv || ev.Seq <= last {
			continue // late terminal echo or compaction duplicate
		}
		evs = append(evs, ev)
		last = ev.Seq
	}
	return evs
}

// busEvent extracts the StatusEvent a log record carries: the in-memory
// Value on the MemStore path, decoded from the durable payload
// otherwise (records recovered from a reopened store carry no Value).
func busEvent(rec commitlog.Record) (StatusEvent, bool) {
	if ev, ok := rec.Value.(StatusEvent); ok {
		return ev, true
	}
	if len(rec.Payload) == 0 {
		return StatusEvent{}, false
	}
	ev, err := decodeStatusEvent(rec.Payload)
	return ev, err == nil
}

// statusFeedLoop tails the jobs collection's change stream and
// republishes each carried status transition on the bus. This is the
// bus's multi-replica fallback: a transition committed by another API
// process — whose in-process Publish this one cannot observe — still
// reaches local subscribers through the durable feed, so
// Client.WatchStatus keeps its exactly-once, in-order, seq-resumable
// contract when the API layer runs multi-replica. Locally-published
// transitions come back as echoes and are dropped by the bus's Seq
// dedup. Feed lag or drops are harmless for the same reason every bus
// gap is: subscribers refill from MongoDB by Seq.
func (p *Platform) statusFeedLoop(cs *mongo.ChangeStream) {
	for {
		select {
		case <-p.stopCh:
			return
		case ev, ok := <-cs.Events():
			if !ok {
				return
			}
			if ev.Doc == nil {
				continue // deletes carry no transition
			}
			rec := docToRecord(ev.Doc)
			if rec.ID == "" || len(rec.History) == 0 {
				continue
			}
			p.bus.Publish(StatusEvent{
				JobID:  rec.ID,
				Seq:    len(rec.History),
				Status: rec.Status,
				Entry:  rec.History[len(rec.History)-1],
			})
		}
	}
}
