// Command ffdl-cli is the user-facing CLI from Fig. 1: it talks to a
// running ffdl-server over REST.
//
//	ffdl-cli -server http://127.0.0.1:8080 submit -name train1 -user alice \
//	    -framework Caffe -model VGG-16 -learners 2 -gpus 1 -gputype K80 \
//	    -iterations 1000 -data datasets -prefix demo/
//	ffdl-cli status <jobID> [-follow]
//	ffdl-cli list [-user alice]
//	ffdl-cli logs <jobID> [-search iteration] [-follow [-from offset]]
//	ffdl-cli halt|resume|terminate <jobID>
//	ffdl-cli trace <jobID> [-chrome]
//	ffdl-cli metrics
//	ffdl-cli cluster
//	ffdl-cli quota get -user alice
//	ffdl-cli quota set -user alice -tier paid -gpus 8
//	ffdl-cli quota list
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	neturl "net/url"
	"os"

	"github.com/ffdl/ffdl"
	"github.com/ffdl/ffdl/internal/perf"
)

func main() {
	server := flag.String("server", "http://127.0.0.1:8080", "ffdl-server base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "submit":
		submit(*server, rest)
	case "status":
		needID(rest)
		fs := flag.NewFlagSet("status", flag.ExitOnError)
		follow := fs.Bool("follow", false, "stream status transitions until the job terminates")
		fs.Parse(rest[1:]) //nolint:errcheck
		if *follow {
			followStatus(*server + "/v1/jobs/" + rest[0] + "/watch")
			return
		}
		status(*server + "/v1/jobs/" + rest[0])
	case "list":
		fs := flag.NewFlagSet("list", flag.ExitOnError)
		user := fs.String("user", "", "filter by user")
		fs.Parse(rest) //nolint:errcheck
		get(*server + "/v1/jobs?user=" + *user)
	case "logs":
		needID(rest)
		fs := flag.NewFlagSet("logs", flag.ExitOnError)
		search := fs.String("search", "", "substring filter")
		follow := fs.Bool("follow", false, "stream lines live as learners emit them")
		from := fs.Uint64("from", 0, "with -follow: resume from this line offset")
		fs.Parse(rest[1:]) //nolint:errcheck
		url := *server + "/v1/jobs/" + rest[0] + "/logs"
		if *follow {
			followLogs(fmt.Sprintf("%s?follow=1&from=%d", url, *from))
			return
		}
		if *search != "" {
			url += "?search=" + neturl.QueryEscape(*search)
		}
		logs(url)
	case "halt", "resume", "terminate":
		needID(rest)
		post(*server + "/v1/jobs/" + rest[0] + "/" + cmd)
	case "trace":
		needID(rest)
		fs := flag.NewFlagSet("trace", flag.ExitOnError)
		chrome := fs.Bool("chrome", false, "emit Chrome trace-event JSON (load in chrome://tracing or Perfetto)")
		fs.Parse(rest[1:]) //nolint:errcheck
		url := *server + "/v1/jobs/" + rest[0] + "/trace"
		if *chrome {
			raw(url + "?format=chrome")
			return
		}
		get(url)
	case "metrics":
		raw(*server + "/v1/metrics")
	case "cluster":
		get(*server + "/v1/cluster")
	case "quota":
		quota(*server, rest)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ffdl-cli [-server URL] submit|status|list|logs|halt|resume|terminate|trace|metrics|cluster|quota ...")
	os.Exit(2)
}

// quota manages tenant quotas: get/set/list.
func quota(server string, rest []string) {
	if len(rest) == 0 {
		fmt.Fprintln(os.Stderr, "usage: ffdl-cli quota get|set|list ...")
		os.Exit(2)
	}
	switch rest[0] {
	case "get":
		fs := flag.NewFlagSet("quota get", flag.ExitOnError)
		user := fs.String("user", "", "tenant user")
		fs.Parse(rest[1:]) //nolint:errcheck
		if *user == "" {
			fmt.Fprintln(os.Stderr, "ffdl-cli: quota get needs -user")
			os.Exit(2)
		}
		get(server + "/v1/tenants/" + *user)
	case "set":
		fs := flag.NewFlagSet("quota set", flag.ExitOnError)
		user := fs.String("user", "", "tenant user")
		tier := fs.String("tier", "", "free or paid (omitted: keep the tenant's current tier)")
		gpus := fs.Int("gpus", -1, "GPU quota ceiling (omitted: keep the tenant's current quota)")
		fs.Parse(rest[1:]) //nolint:errcheck
		if *user == "" {
			fmt.Fprintln(os.Stderr, "ffdl-cli: quota set needs -user")
			os.Exit(2)
		}
		// Send only the flags that were given: the server merges them
		// with the existing record atomically, so a bare "-gpus" bump
		// never promotes a free tenant and a bare "-tier" change never
		// wipes the quota.
		patch := map[string]any{}
		if *tier != "" {
			patch["tier"] = *tier
		}
		if *gpus >= 0 {
			patch["gpus"] = *gpus
		}
		if len(patch) == 0 {
			fmt.Fprintln(os.Stderr, "ffdl-cli: quota set needs -tier and/or -gpus")
			os.Exit(2)
		}
		body, err := json.Marshal(patch)
		if err != nil {
			die(err)
		}
		req, err := http.NewRequest(http.MethodPut, server+"/v1/tenants/"+*user, bytes.NewReader(body))
		if err != nil {
			die(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			die(err)
		}
		defer resp.Body.Close()
		prettyPrint(resp.Body)
	case "list":
		get(server + "/v1/tenants")
	default:
		fmt.Fprintln(os.Stderr, "usage: ffdl-cli quota get|set|list ...")
		os.Exit(2)
	}
}

func needID(rest []string) {
	if len(rest) == 0 {
		fmt.Fprintln(os.Stderr, "ffdl-cli: job id required")
		os.Exit(2)
	}
}

func submit(server string, rest []string) {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	var m ffdl.Manifest
	fs.StringVar(&m.Name, "name", "", "job name")
	fs.StringVar(&m.User, "user", "", "owner")
	framework := fs.String("framework", "Caffe", "Caffe or TensorFlow")
	model := fs.String("model", "VGG-16", "VGG-16, Resnet-50 or InceptionV3")
	fs.IntVar(&m.Learners, "learners", 1, "number of learners")
	fs.IntVar(&m.GPUsPerLearner, "gpus", 1, "GPUs per learner")
	gpuType := fs.String("gputype", "K80", "K80, P100 or V100")
	fs.IntVar(&m.Iterations, "iterations", 1000, "training iterations")
	fs.IntVar(&m.CheckpointEvery, "checkpoint-every", 100, "checkpoint interval (iterations)")
	fs.StringVar(&m.DataBucket, "data", "datasets", "training data bucket")
	fs.StringVar(&m.DataPrefix, "prefix", "demo/", "training data key prefix")
	fs.StringVar(&m.ResultBucket, "results", "", "result bucket (default ffdl-results)")
	fs.StringVar(&m.Command, "command", "python train.py", "user training command")
	fs.Parse(rest) //nolint:errcheck
	m.Framework = perfFramework(*framework)
	m.Model = perfModel(*model)
	m.GPUType = perfGPU(*gpuType)

	body, err := json.Marshal(m)
	if err != nil {
		die(err)
	}
	resp, err := http.Post(server+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		die(err)
	}
	defer resp.Body.Close()
	io.Copy(os.Stdout, resp.Body) //nolint:errcheck
	fmt.Println()
}

func perfFramework(s string) perf.Framework {
	switch s {
	case "TensorFlow", "tensorflow", "tf":
		return ffdl.TensorFlow
	default:
		return ffdl.Caffe
	}
}

func perfModel(s string) perf.Model {
	switch s {
	case "Resnet-50", "resnet50", "resnet-50":
		return ffdl.ResNet50
	case "InceptionV3", "inceptionv3", "inception":
		return ffdl.InceptionV3
	default:
		return ffdl.VGG16
	}
}

func perfGPU(s string) perf.GPUType {
	switch s {
	case "P100", "p100":
		return ffdl.P100
	case "V100", "v100":
		return ffdl.V100
	default:
		return ffdl.K80
	}
}

func get(url string) {
	resp, err := http.Get(url)
	if err != nil {
		die(err)
	}
	defer resp.Body.Close()
	prettyPrint(resp.Body)
}

// raw streams a non-JSON (or pre-rendered JSON) body to stdout
// verbatim: the Prometheus text exposition and the Chrome trace-event
// payload are meant for files and scrapers, not re-indenting.
func raw(url string) {
	resp, err := http.Get(url)
	if err != nil {
		die(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		prettyPrint(resp.Body)
		os.Exit(1)
	}
	io.Copy(os.Stdout, resp.Body) //nolint:errcheck
}

func post(url string) {
	resp, err := http.Post(url, "application/json", nil)
	if err != nil {
		die(err)
	}
	defer resp.Body.Close()
	prettyPrint(resp.Body)
}

// status prints a job's status: the full JSON reply on stdout (the
// scriptable surface, unchanged from before queue positions existed)
// plus a one-line human summary on stderr — a queued job shows its
// dispatch position as QUEUED(pos=N).
func status(url string) {
	resp, err := http.Get(url)
	if err != nil {
		die(err)
	}
	defer resp.Body.Close()
	var raw json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		die(err)
	}
	var reply struct {
		JobID    string
		Status   string
		QueuePos int
	}
	if err := json.Unmarshal(raw, &reply); err == nil && reply.Status != "" {
		if reply.Status == string(ffdl.StatusQueued) && reply.QueuePos > 0 {
			fmt.Fprintf(os.Stderr, "%s: %s(pos=%d)\n", reply.JobID, reply.Status, reply.QueuePos)
		} else {
			fmt.Fprintf(os.Stderr, "%s: %s\n", reply.JobID, reply.Status)
		}
	}
	out, err := json.MarshalIndent(json.RawMessage(raw), "", "  ")
	if err != nil {
		die(err)
	}
	fmt.Println(string(out))
}

// followStatus streams the job's status transitions (NDJSON) and prints
// each as it arrives; the server ends the stream at a terminal status.
func followStatus(url string) {
	resp, err := http.Get(url)
	if err != nil {
		die(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		prettyPrint(resp.Body)
		os.Exit(1)
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var e ffdl.StatusEntry
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				return
			}
			die(err)
		}
		fmt.Printf("%s %-12s %s\n", e.Time.Format("15:04:05.000"), e.Status, e.Message)
	}
}

// followLogs streams a job's learner log lines (NDJSON) and prints
// each as it arrives, prefixed with its commit-log offset — the resume
// token: rerun with -from <last offset + 1> after a disconnect to pick
// up exactly where the stream left off.
func followLogs(url string) {
	resp, err := http.Get(url)
	if err != nil {
		die(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		prettyPrint(resp.Body)
		os.Exit(1)
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var l ffdl.LogLine
		if err := dec.Decode(&l); err != nil {
			if err == io.EOF {
				return
			}
			die(err)
		}
		fmt.Printf("%8d %s learner-%d %s\n", l.Offset, l.Time.Format("15:04:05.000"), l.Learner, l.Text)
	}
}

func logs(url string) {
	resp, err := http.Get(url)
	if err != nil {
		die(err)
	}
	defer resp.Body.Close()
	var lines []ffdl.LogLine
	if err := json.NewDecoder(resp.Body).Decode(&lines); err != nil {
		die(err)
	}
	for _, l := range lines {
		fmt.Printf("%s learner-%d %s\n", l.Time.Format("15:04:05.000"), l.Learner, l.Text)
	}
}

func prettyPrint(r io.Reader) {
	var v any
	if err := json.NewDecoder(r).Decode(&v); err != nil {
		die(err)
	}
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		die(err)
	}
	fmt.Println(string(out))
}

func die(err error) {
	fmt.Fprintf(os.Stderr, "ffdl-cli: %v\n", err)
	os.Exit(1)
}
