package core

import (
	"strings"
	"sync"
	"time"

	"github.com/ffdl/ffdl/internal/commitlog"
)

// LogLine is one collected learner log line. Offset is its position in
// the job's log — assigned by the Training Metrics Service at ingest,
// strictly increasing per job — and doubles as the resume token for
// followers: a client that reconnects (or outlives an API replica
// restart) asks for lines from its last offset + 1 and misses nothing.
type LogLine struct {
	JobID   string
	Learner int
	Offset  uint64
	Time    time.Time
	Text    string
}

// MetricsService is the Training Metrics Service (§3.2): it collects
// per-job training logs (streamed by the log-collector helpers) into a
// searchable index — the role ElasticSearch/Kibana plays in the paper's
// deployment — and counts platform health metrics ("number of times
// microservices fail and recover, and frequency of connectivity
// issues"). Each job's log rides the platform's commit log
// (internal/commitlog), which is what makes log streams offset-
// addressable and resumable rather than count-deduplicated.
type MetricsService struct {
	mu       sync.Mutex
	logs     map[string]*commitlog.Log // jobID -> line log
	counters map[string]int64
	subs     map[string][]chan LogLine
}

// NewMetricsService returns an empty service.
func NewMetricsService() *MetricsService {
	return &MetricsService{
		logs:     make(map[string]*commitlog.Log),
		counters: make(map[string]int64),
		subs:     make(map[string][]chan LogLine),
	}
}

// jobLogLocked returns (creating if needed) a job's line log.
func (m *MetricsService) jobLogLocked(jobID string) *commitlog.Log {
	if l, ok := m.logs[jobID]; ok {
		return l
	}
	l, err := commitlog.Open(commitlog.NewMemStore(), commitlog.Options{SegmentRecords: 1024})
	if err != nil {
		panic("core: job log open on empty store cannot fail: " + err.Error())
	}
	m.logs[jobID] = l
	return l
}

// AppendLog ingests one log line, assigns its offset, and fans it out
// to streamers.
func (m *MetricsService) AppendLog(line LogLine) {
	m.mu.Lock()
	l := m.jobLogLocked(line.JobID)
	// Mint the offset up front so the stored value carries it (m.mu
	// serializes appends per service, so NextOffset is exact).
	line.Offset = l.NextOffset()
	if _, err := l.AppendValue("", line); err != nil {
		m.mu.Unlock()
		return // unreachable on a MemStore; never half-publish
	}
	subs := m.subs[line.JobID]
	m.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- line:
		default:
		}
	}
}

// linesFrom decodes a job's retained lines with Offset >= from.
func (m *MetricsService) linesFrom(jobID string, from uint64) []LogLine {
	m.mu.Lock()
	l, ok := m.logs[jobID]
	m.mu.Unlock()
	if !ok {
		return nil
	}
	recs := l.Records(from)
	out := make([]LogLine, 0, len(recs))
	for _, rec := range recs {
		if line, isLine := rec.Value.(LogLine); isLine {
			out = append(out, line)
		}
	}
	return out
}

// Logs returns all lines for a job (copy).
func (m *MetricsService) Logs(jobID string) []LogLine {
	return m.linesFrom(jobID, 0)
}

// LogsFrom returns a job's lines with Offset >= from — the resumable
// read path under API.Logs.
func (m *MetricsService) LogsFrom(jobID string, from uint64) []LogLine {
	return m.linesFrom(jobID, from)
}

// SearchLogs returns a job's lines containing the substring — the
// "indexed ... for easy debugging" query path.
func (m *MetricsService) SearchLogs(jobID, substr string) []LogLine {
	all := m.linesFrom(jobID, 0)
	var out []LogLine
	for _, l := range all {
		if strings.Contains(l.Text, substr) {
			out = append(out, l)
		}
	}
	return out
}

// StreamLogs subscribes to a job's live log stream.
func (m *MetricsService) StreamLogs(jobID string) (<-chan LogLine, func()) {
	ch := make(chan LogLine, 256)
	m.mu.Lock()
	m.subs[jobID] = append(m.subs[jobID], ch)
	m.mu.Unlock()
	return ch, func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		subs := m.subs[jobID]
		for i, c := range subs {
			if c == ch {
				m.subs[jobID] = append(subs[:i], subs[i+1:]...)
				close(ch)
				return
			}
		}
	}
}

// Inc bumps a named counter ("api.restarts", "guardian.rollbacks", ...).
func (m *MetricsService) Inc(counter string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.counters[counter]++
}

// Counter reads a named counter.
func (m *MetricsService) Counter(counter string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[counter]
}

// Counters returns a snapshot of all counters.
func (m *MetricsService) Counters() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.counters))
	for k, v := range m.counters {
		out[k] = v
	}
	return out
}
