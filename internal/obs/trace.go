package obs

import (
	"encoding/json"
	"sync"
	"time"
)

// Span is one node of a job's trace tree. The root span covers the
// job's whole lifetime (submit to terminal status); its children are
// the lifecycle phases in causal order (QUEUED, PENDING, DEPLOYING,
// ...), and phase children are sub-operations recorded while that
// phase was current (lcm.deploy, etcd.propose, sched.bind). A span
// with a zero End is still open; an Event span has End == Start.
type Span struct {
	Name     string    `json:"name"`
	Start    time.Time `json:"start"`
	End      time.Time `json:"end,omitempty"`
	Children []*Span   `json:"children,omitempty"`
}

// Duration is the span's wall time (0 while open).
func (s *Span) Duration() time.Duration {
	if s == nil || s.End.IsZero() {
		return 0
	}
	return s.End.Sub(s.Start)
}

// Trace is one job's exported span tree.
type Trace struct {
	JobID string `json:"job_id"`
	Root  *Span  `json:"root"`
}

// chromeEvent is one Chrome trace-event ("X" complete event). ts/dur
// are microseconds; ts is relative to the trace root so the numbers
// stay small and Perfetto lays the trace out from zero.
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

// ChromeTrace renders the trace in Chrome trace-event JSON (an array of
// complete events), loadable in Perfetto / chrome://tracing. The job
// lifecycle (root + phases) lands on tid 1, sub-operation spans on
// tid 2.
func (t Trace) ChromeTrace() ([]byte, error) {
	if t.Root == nil {
		return []byte("[]"), nil
	}
	origin := t.Root.Start
	var events []chromeEvent
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		tid := 1
		if depth >= 2 {
			tid = 2
		}
		end := s.End
		if end.IsZero() {
			end = s.Start
		}
		events = append(events, chromeEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   float64(s.Start.Sub(origin).Nanoseconds()) / 1e3,
			Dur:  float64(end.Sub(s.Start).Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  tid,
		})
		for _, c := range s.Children {
			walk(c, depth+1)
		}
	}
	walk(t.Root, 0)
	return json.Marshal(events)
}

// jobTrace is the tracer's mutable per-job state.
type jobTrace struct {
	root  *Span
	phase *Span // currently open phase (child of root)
	done  bool
}

// Tracer records per-job lifecycle traces. All methods are nil-receiver
// safe no-ops, so a disabled platform calls them for free. Timestamps
// are supplied by callers from their own sim.Clock — the tracer never
// reads a clock — which keeps traces exact under sim.FakeClock and
// guarantees the root span's duration equals the job's status-history
// wall time (both are written from the same clock reads).
//
// Retention is bounded: once maxJobs traces are held, starting a new
// one evicts the oldest.
type Tracer struct {
	mu      sync.Mutex
	jobs    map[string]*jobTrace
	order   []string
	maxJobs int
}

// NewTracer returns a tracer retaining up to maxJobs job traces
// (default 4096 when maxJobs <= 0).
func NewTracer(maxJobs int) *Tracer {
	if maxJobs <= 0 {
		maxJobs = 4096
	}
	return &Tracer{jobs: make(map[string]*jobTrace), maxJobs: maxJobs}
}

// Begin starts a job's root span at the submit timestamp. A duplicate
// Begin for a live job is ignored.
func (t *Tracer) Begin(jobID string, at time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.jobs[jobID]; ok {
		return
	}
	for len(t.jobs) >= t.maxJobs && len(t.order) > 0 {
		delete(t.jobs, t.order[0])
		t.order = t.order[1:]
	}
	t.jobs[jobID] = &jobTrace{root: &Span{Name: "job " + jobID, Start: at}}
	t.order = append(t.order, jobID)
}

// Phase closes the current phase (if any) and opens a new one as a
// child of the root — one call per status transition. Unknown jobs are
// ignored (transitions observed for jobs submitted before this tracer
// existed, or already evicted).
func (t *Tracer) Phase(jobID, name string, at time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	jt, ok := t.jobs[jobID]
	if !ok || jt.done {
		return
	}
	if jt.phase != nil {
		jt.phase.End = at
	}
	jt.phase = &Span{Name: name, Start: at}
	jt.root.Children = append(jt.root.Children, jt.phase)
}

// Sub records a closed sub-operation span under the job's current
// phase (or directly under the root before the first phase).
func (t *Tracer) Sub(jobID, name string, start, end time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	jt, ok := t.jobs[jobID]
	if !ok || jt.done {
		return
	}
	parent := jt.root
	if jt.phase != nil {
		parent = jt.phase
	}
	parent.Children = append(parent.Children, &Span{Name: name, Start: start, End: end})
}

// Event records a zero-duration marker under the current phase.
func (t *Tracer) Event(jobID, name string, at time.Time) {
	t.Sub(jobID, name, at, at)
}

// Finish closes the job's trace at its terminal transition: the open
// phase ends, a zero-length terminal phase named name is appended, and
// the root span ends — so root.Duration() is exactly the submit→terminal
// wall time recorded in the job's status history.
func (t *Tracer) Finish(jobID, name string, at time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	jt, ok := t.jobs[jobID]
	if !ok || jt.done {
		return
	}
	if jt.phase != nil {
		jt.phase.End = at
	}
	jt.root.Children = append(jt.root.Children, &Span{Name: name, Start: at, End: at})
	jt.root.End = at
	jt.phase = nil
	jt.done = true
}

// Trace exports a deep copy of a job's span tree.
func (t *Tracer) Trace(jobID string) (Trace, bool) {
	if t == nil {
		return Trace{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	jt, ok := t.jobs[jobID]
	if !ok {
		return Trace{}, false
	}
	return Trace{JobID: jobID, Root: copySpan(jt.root)}, true
}

func copySpan(s *Span) *Span {
	out := &Span{Name: s.Name, Start: s.Start, End: s.End}
	for _, c := range s.Children {
		out.Children = append(out.Children, copySpan(c))
	}
	return out
}
