package etcd

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// benchCluster boots a 3-node cluster outside the timed section.
func benchCluster(b *testing.B, opts Options) *Cluster {
	b.Helper()
	if opts.TickInterval == 0 {
		opts.TickInterval = 2 * time.Millisecond
	}
	c, err := NewCluster(opts)
	if err != nil {
		b.Fatalf("NewCluster: %v", err)
	}
	b.Cleanup(c.Stop)
	return c
}

// benchPuts measures proposals/sec at the given concurrency.
func benchPuts(b *testing.B, opts Options, writers int) {
	c := benchCluster(b, opts)
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N / writers
	if per == 0 {
		per = 1
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := c.Put(fmt.Sprintf("bench/w%d", w), []byte("v"), 0); err != nil {
					b.Errorf("Put: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	b.StopTimer()
	st := c.Stats()
	if st.Entries > 0 {
		b.ReportMetric(float64(st.Commands)/float64(st.Entries), "cmds/entry")
	}
}

// BenchmarkEtcdPutSerial is the uncontended floor: batching cannot help
// a strictly serial writer.
func BenchmarkEtcdPutSerial(b *testing.B) { benchPuts(b, Options{}, 1) }

// BenchmarkEtcdPutConcurrent64 is the group-commit hot path: 64
// concurrent proposers share Raft entries.
func BenchmarkEtcdPutConcurrent64(b *testing.B) { benchPuts(b, Options{}, 64) }

// BenchmarkEtcdPutConcurrent64Unbatched is the ablation: the seed's
// entry-per-command + full-suffix fan-out path at the same concurrency.
func BenchmarkEtcdPutConcurrent64Unbatched(b *testing.B) {
	benchPuts(b, Options{UnbatchedAblation: true}, 64)
}
