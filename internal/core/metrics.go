package core

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/ffdl/ffdl/internal/commitlog"
	"github.com/ffdl/ffdl/internal/obs"
	"github.com/ffdl/ffdl/internal/sim"
)

// LogLine is one collected learner log line. Offset is its position in
// the job's log — assigned by the Training Metrics Service at ingest,
// strictly increasing per job — and doubles as the resume token for
// followers: a client that reconnects (or outlives an API replica
// restart) asks for lines from its last offset + 1 and misses nothing.
type LogLine struct {
	JobID   string
	Learner int
	Offset  uint64
	Time    time.Time
	Text    string
}

// MetricsService is the Training Metrics Service (§3.2): it collects
// per-job training logs (streamed by the log-collector helpers) into a
// searchable index — the role ElasticSearch/Kibana plays in the paper's
// deployment — and counts platform health metrics ("number of times
// microservices fail and recover, and frequency of connectivity
// issues"). Each job's log rides the platform's commit log
// (internal/commitlog), which is what makes log streams offset-
// addressable and resumable rather than count-deduplicated.
type MetricsService struct {
	mu   sync.Mutex
	logs map[string]*commitlog.Log // jobID -> line log
	// reg is the platform's unified metrics registry: the flat counter
	// map the service historically kept now lives there as obs.Counter
	// instruments under the dotted subsystem.name convention, so the
	// same counters appear on the GET /v1/metrics scrape. Inc/Counter/
	// Counters remain as thin views over it.
	reg  *obs.Registry
	subs map[string][]chan LogLine
	// obs/clock wire hot-path instrumentation into each job's commit
	// log as it opens (append latency, compaction counters); obs is nil
	// when the platform runs the DisableObs ablation.
	obs   *obs.Registry
	clock sim.Clock
	// dataDir/storeWrap are injected by NewPlatform when Config.DataDir
	// is set: each job's log then lives in its own FileStore directory
	// (<DataDir>/learner-logs/<jobID>), lines are encoded into record
	// payloads, and a reopened service lazily reopens existing dirs —
	// so offsets and consumer cursors survive a process restart.
	dataDir   string
	storeWrap StoreWrapper
}

// NewMetricsService returns an empty service whose counters live in
// the given registry (a private registry is created when nil).
func NewMetricsService(reg *obs.Registry) *MetricsService {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &MetricsService{
		logs: make(map[string]*commitlog.Log),
		reg:  reg,
		subs: make(map[string][]chan LogLine),
	}
}

// jobLogLocked returns (opening if needed) a job's line log. The error
// path is real only in durable mode (a FileStore that cannot recover);
// MemStore opens cannot fail.
func (m *MetricsService) jobLogLocked(jobID string) (*commitlog.Log, error) {
	if l, ok := m.logs[jobID]; ok {
		return l, nil
	}
	store, err := openLogStore(m.dataDir, dirLearnerLogs+"/"+jobID, m.storeWrap)
	if err != nil {
		return nil, err
	}
	l, err := commitlog.Open(store, commitlog.Options{
		SegmentRecords: 1024,
		Obs:            m.obs,
		Clock:          m.clock,
	})
	if err != nil {
		return nil, fmt.Errorf("core: open job log %s: %w", jobID, err)
	}
	m.logs[jobID] = l
	return l, nil
}

// jobLogForReadLocked resolves a job's log for a read path: an already
// open log, or a lazy reopen when the job's directory exists on disk
// (a recovered platform serving pre-restart logs). Unknown jobs return
// nil without littering DataDir with empty directories.
func (m *MetricsService) jobLogForReadLocked(jobID string) *commitlog.Log {
	if l, ok := m.logs[jobID]; ok {
		return l
	}
	if !hasLogDir(m.dataDir, dirLearnerLogs+"/"+jobID) {
		return nil
	}
	l, err := m.jobLogLocked(jobID)
	if err != nil {
		return nil
	}
	return l
}

// AppendLog ingests one log line, assigns its offset, and fans it out
// to streamers.
func (m *MetricsService) AppendLog(line LogLine) {
	m.mu.Lock()
	l, err := m.jobLogLocked(line.JobID)
	if err != nil {
		m.mu.Unlock()
		m.reg.Counter("metrics.log_open_errors").Inc()
		return
	}
	// Mint the offset up front so the stored value carries it (m.mu
	// serializes appends per service, so NextOffset is exact).
	line.Offset = l.NextOffset()
	if m.dataDir != "" {
		_, err = l.Append("", encodeLogLine(nil, line))
	} else {
		_, err = l.AppendValue("", line)
	}
	if err != nil {
		m.mu.Unlock()
		return // never half-publish
	}
	subs := m.subs[line.JobID]
	m.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- line:
		default:
		}
	}
}

// CommitLogCursor durably records a consumer's cursor on a job's log:
// next is the offset of the first line the consumer has not yet
// processed. The cursor rides the commit log's consumer-offset map, so
// on a DataDir platform it survives a full process restart (LogCursor
// recovers it) and pins retention — unconsumed lines are never trimmed
// out from under a registered consumer.
func (m *MetricsService) CommitLogCursor(jobID, consumer string, next uint64) error {
	m.mu.Lock()
	l, err := m.jobLogLocked(jobID)
	m.mu.Unlock()
	if err != nil {
		return err
	}
	return l.Commit(consumer, next)
}

// LogCursor returns a consumer's recorded cursor on a job's log
// (ok=false when the consumer or job is unknown).
func (m *MetricsService) LogCursor(jobID, consumer string) (uint64, bool) {
	m.mu.Lock()
	l := m.jobLogForReadLocked(jobID)
	m.mu.Unlock()
	if l == nil {
		return 0, false
	}
	return l.Committed(consumer)
}

// linesFrom decodes a job's retained lines with Offset >= from.
func (m *MetricsService) linesFrom(jobID string, from uint64) []LogLine {
	m.mu.Lock()
	l := m.jobLogForReadLocked(jobID)
	m.mu.Unlock()
	if l == nil {
		return nil
	}
	recs := l.Records(from)
	out := make([]LogLine, 0, len(recs))
	for _, rec := range recs {
		if line, isLine := logLineRec(rec); isLine {
			out = append(out, line)
		}
	}
	return out
}

// logLineRec extracts the LogLine a log record carries: the in-memory
// Value on the MemStore path, decoded from the durable payload
// otherwise (records recovered from a reopened store carry no Value).
func logLineRec(rec commitlog.Record) (LogLine, bool) {
	if line, ok := rec.Value.(LogLine); ok {
		return line, true
	}
	if len(rec.Payload) == 0 {
		return LogLine{}, false
	}
	line, err := decodeLogLine(rec.Payload)
	return line, err == nil
}

// Logs returns all lines for a job (copy).
func (m *MetricsService) Logs(jobID string) []LogLine {
	return m.linesFrom(jobID, 0)
}

// LogsFrom returns a job's lines with Offset >= from — the resumable
// read path under API.Logs.
func (m *MetricsService) LogsFrom(jobID string, from uint64) []LogLine {
	return m.linesFrom(jobID, from)
}

// SearchLogs returns a job's lines containing the substring — the
// "indexed ... for easy debugging" query path.
func (m *MetricsService) SearchLogs(jobID, substr string) []LogLine {
	all := m.linesFrom(jobID, 0)
	var out []LogLine
	for _, l := range all {
		if strings.Contains(l.Text, substr) {
			out = append(out, l)
		}
	}
	return out
}

// StreamLogs subscribes to a job's live log stream.
func (m *MetricsService) StreamLogs(jobID string) (<-chan LogLine, func()) {
	ch := make(chan LogLine, 256)
	m.mu.Lock()
	m.subs[jobID] = append(m.subs[jobID], ch)
	m.mu.Unlock()
	return ch, func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		subs := m.subs[jobID]
		for i, c := range subs {
			if c == ch {
				m.subs[jobID] = append(subs[:i], subs[i+1:]...)
				close(ch)
				return
			}
		}
	}
}

// Inc bumps a named counter ("api.restarts", "guardian.rollbacks", ...).
// Names follow the dotted subsystem.name convention (see internal/obs).
func (m *MetricsService) Inc(counter string) {
	m.reg.Counter(counter).Inc()
}

// Counter reads a named counter.
func (m *MetricsService) Counter(counter string) int64 {
	return m.reg.CounterValue(counter)
}

// Counters returns one consistent snapshot of every counter in the
// registry — the read path experiments use instead of torn per-name
// Counter calls.
func (m *MetricsService) Counters() map[string]int64 {
	return m.reg.CounterValues()
}
