package etcd

import (
	"sync"
	"sync/atomic"
)

// WatchStream is a resumable, fault-tolerant event stream over a key or
// prefix. It is the watch primitive the control plane builds on (§3.3,
// §3.8: components record state in etcd and other components watch it).
//
// Contract:
//
//   - Events arrive in revision order, with no revision delivered twice.
//   - The stream survives leader changes and replica crashes: it tracks
//     the last delivered revision and re-attaches to a live replica,
//     replaying the gap from the replica's retained event history.
//   - Replay works across snapshot restore: each replica's retained
//     event log (Options.CompactRevisions window, Options.WatchHistory
//     cap) is persisted inside Raft snapshots, so a stream re-attaching
//     to a freshly-restored replica still replays rather than resyncs.
//   - Buffers are bounded. If the consumer falls so far behind that the
//     gap cannot be replayed (history compacted), the stream delivers an
//     EventResync marker followed by the current state under the watched
//     key/prefix as EventPut events, then continues live. Consumers may
//     therefore miss intermediate transitions but always converge on
//     current state; anyone tracking deletions must re-list on resync.
//   - The channel closes when the stream is cancelled or the cluster
//     stops.
//
// The normative statement of this contract — and how it composes with
// the kube store watch and the status bus — is docs/watch-protocol.md.
type WatchStream struct {
	c      *Cluster
	key    string
	prefix bool

	ch       chan Event
	stopCh   chan struct{}
	stopOnce sync.Once
	lastRev  atomic.Uint64
	resyncs  atomic.Uint64
}

// attachment is one live registration of a stream on a replica.
type attachment struct {
	src     int
	st      *storeState
	w       *watcher
	backlog []Event
	cancel  func()
}

// Events returns the stream's delivery channel.
func (ws *WatchStream) Events() <-chan Event { return ws.ch }

// Cancel releases the stream; the Events channel is closed.
func (ws *WatchStream) Cancel() { ws.stopOnce.Do(func() { close(ws.stopCh) }) }

// LastRevision returns the revision of the last delivered event, for
// callers that persist their own resume cursor.
func (ws *WatchStream) LastRevision() uint64 { return ws.lastRev.Load() }

// Resyncs returns how many EventResync markers this stream has
// delivered — i.e. how often its consumer lost replayability and had to
// converge from synthesized current state.
func (ws *WatchStream) Resyncs() uint64 { return ws.resyncs.Load() }

// Watch streams events for key (prefix=false) or every key under it
// (prefix=true), starting at fromRevision (0 = events after the watch is
// registered). The watcher is registered before Watch returns, so a
// write issued afterwards is always observed. See WatchStream for the
// delivery contract.
func (c *Cluster) Watch(key string, prefix bool, fromRevision uint64) (*WatchStream, error) {
	// Barrier: wait until a leader replica has applied every revision
	// already acknowledged to clients, so "future events" cannot skip a
	// write the caller just made.
	if _, err := c.leaderState(); err != nil {
		return nil, err
	}
	ws := &WatchStream{
		c:      c,
		key:    key,
		prefix: prefix,
		ch:     make(chan Event, 128),
		stopCh: make(chan struct{}),
	}
	at, from, ok := ws.attach(fromRevision)
	if !ok {
		close(ws.ch)
		return nil, ErrStopped
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		ws.run(at, from)
	}()
	return ws, nil
}

// attach registers the stream on a live replica and returns the
// registration plus the normalized resume cursor. fromRev==0 is pinned
// to the registration-time revision so later re-attachments replay
// instead of silently skipping. Blocks until a replica is available;
// ok=false means the stream or cluster stopped first.
func (ws *WatchStream) attach(fromRev uint64) (attachment, uint64, bool) {
	c := ws.c
	for {
		if src, st := c.watchSource(); src >= 0 {
			st.mu.Lock()
			if fromRev == 0 {
				fromRev = st.rev + 1
			}
			st.mu.Unlock()
			w, backlog, cancel := st.addWatcherFrom(ws.key, ws.prefix, fromRev, 256)
			return attachment{src: src, st: st, w: w, backlog: backlog, cancel: cancel}, fromRev, true
		}
		if !ws.pause() {
			return attachment{}, fromRev, false
		}
	}
}

// run forwards events from the current attachment, re-attaching with
// replay whenever the source replica dies, is partitioned away, or this
// stream's buffer overflowed.
func (ws *WatchStream) run(at attachment, fromRev uint64) {
	defer close(ws.ch)
	c := ws.c
	for {
		ok := true
		for _, ev := range at.backlog {
			if !ws.deliver(ev, &fromRev) {
				at.cancel()
				return
			}
		}
		// The health ticker only bounds failure-detection latency; event
		// delivery itself is pushed.
		health := c.opts.Clock.NewTicker(c.opts.WatchHealthInterval)
		lastSrcRev := at.st.revision()
	stream:
		for {
			select {
			case <-ws.stopCh:
				ok = false
				break stream
			case <-c.stopCh:
				ok = false
				break stream
			case ev, open := <-at.w.ch:
				if !open {
					break stream // replica dropped us; re-attach
				}
				// An overflow means some event between the buffered ones
				// was dropped. Stop before advancing the cursor past the
				// gap: re-attaching replays from fromRev, so ev and
				// everything after it (including the dropped event) come
				// back in order. The drop sets the flag under the store
				// lock before any later event is enqueued, so this check
				// cannot miss a gap that precedes ev.
				if at.st.overflowOf(at.w) {
					break stream
				}
				if ev.Revision < fromRev {
					continue // duplicate across a re-attach
				}
				if !ws.deliver(ev, &fromRev) {
					ok = false
					break stream
				}
			case <-health.C:
				if at.st.overflowOf(at.w) {
					break stream // gap: re-attach with replay/resync
				}
				cur := at.st.revision()
				if c.transport.isIsolated(at.src) || ws.sourceStuck(at.src, cur, lastSrcRev) {
					break stream
				}
				lastSrcRev = cur
			}
		}
		health.Stop()
		at.cancel()
		if !ok {
			return
		}
		at, fromRev, ok = ws.attach(fromRev)
		if !ok {
			return
		}
	}
}

// sourceStuck reports whether the source replica stopped applying while
// the rest of the cluster made progress — e.g. a severed link that
// isIsolated cannot see.
func (ws *WatchStream) sourceStuck(src int, cur, last uint64) bool {
	c := ws.c
	if cur != last {
		return false
	}
	if li := c.leaderIndex(); li >= 0 && li != src {
		return c.states[li].revision() > cur
	}
	return false
}

// deliver blocks until the consumer accepts ev (or the stream ends) and
// advances the resume cursor.
func (ws *WatchStream) deliver(ev Event, fromRev *uint64) bool {
	select {
	case ws.ch <- ev:
		if ev.Type == EventResync {
			ws.resyncs.Add(1)
		}
		if ev.Revision >= *fromRev {
			*fromRev = ev.Revision + 1
		}
		ws.lastRev.Store(ev.Revision)
		return true
	case <-ws.stopCh:
		return false
	case <-ws.c.stopCh:
		return false
	}
}

// pause waits one tick before retrying attachment; it reports false when
// the stream should exit.
func (ws *WatchStream) pause() bool {
	t := ws.c.opts.Clock.NewTimer(ws.c.opts.TickInterval)
	defer t.Stop()
	select {
	case <-ws.stopCh:
		return false
	case <-ws.c.stopCh:
		return false
	case <-t.C:
		return true
	}
}

// watchSource picks the replica watches attach to: the current leader if
// one is reachable and caught up to every acknowledged write, else -1.
func (c *Cluster) watchSource() (int, *storeState) {
	li := c.leaderIndex()
	if li < 0 {
		return -1, nil
	}
	st := c.states[li]
	if st.revision() < c.lastRev.Load() {
		return -1, nil // still applying acknowledged writes; retry
	}
	return li, st
}
