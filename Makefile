GO ?= go

.PHONY: all fmt vet build test bench-smoke ci

all: build

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Perf gate: one iteration of the Table 7 / Fig. 5 scale experiment so a
# regression that breaks or grossly slows the benchmark path fails CI.
bench-smoke:
	$(GO) test -run=xxx -bench=BenchmarkTable7Figure5ScaleTest -benchtime=1x .

ci: fmt vet build test bench-smoke
