package sim

import (
	"container/heap"
	"time"
)

// Event is a unit of work scheduled on the Engine at a virtual time.
type Event struct {
	At  time.Time
	Fn  func()
	seq uint64
	idx int
}

// eventHeap orders events by (At, seq) so same-instant events fire in
// schedule order, keeping runs deterministic.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if !h[i].At.Equal(h[j].At) {
		return h[i].At.Before(h[j].At)
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator. It is used for
// the pure scheduling studies (Figures 3-8, Tables 7-8) where running a
// full multi-goroutine platform would be needlessly slow and
// nondeterministic. Engine is not safe for concurrent use; event handlers
// run on the caller's goroutine.
type Engine struct {
	now  time.Time
	heap eventHeap
	seq  uint64

	processed uint64
}

// NewEngine returns an Engine whose virtual clock starts at origin.
func NewEngine(origin time.Time) *Engine {
	return &Engine{now: origin}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events waiting to fire.
func (e *Engine) Pending() int { return len(e.heap) }

// At schedules fn to run at the absolute virtual time t. Scheduling in
// the past panics: it indicates a logic error in the caller.
func (e *Engine) At(t time.Time, fn func()) *Event {
	if t.Before(e.now) {
		panic("sim: scheduling event in the past")
	}
	e.seq++
	ev := &Event{At: t, Fn: fn, seq: e.seq}
	heap.Push(&e.heap, ev)
	return ev
}

// After schedules fn to run d after the current virtual time.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// Cancel removes a scheduled event. It reports whether the event was
// still pending.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.idx < 0 || ev.idx >= len(e.heap) || e.heap[ev.idx] != ev {
		return false
	}
	heap.Remove(&e.heap, ev.idx)
	return true
}

// Step executes the next pending event, advancing the clock to its
// deadline. It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := heap.Pop(&e.heap).(*Event)
	e.now = ev.At
	e.processed++
	ev.Fn()
	return true
}

// RunUntil executes events in order until the queue is empty or the next
// event lies beyond the deadline; the clock finishes at min(deadline,
// last event time) or at deadline if events remain.
func (e *Engine) RunUntil(deadline time.Time) {
	for len(e.heap) > 0 && !e.heap[0].At.After(deadline) {
		e.Step()
	}
	if e.now.Before(deadline) {
		e.now = deadline
	}
}

// Run executes events until the queue empties.
func (e *Engine) Run() {
	for e.Step() {
	}
}
