// Package chaos injects faults into a running platform, in the spirit of
// the chaos-engineering practice the paper's related work discusses and
// the fault classes its §5.6 failure analysis catalogs: worker-node
// crashes (hardware failures, OS updates, container daemon failures),
// pod kills, and flaky nodes that crash repeatedly.
package chaos

import (
	"sync"
	"time"

	"github.com/ffdl/ffdl/internal/kube"
	"github.com/ffdl/ffdl/internal/sim"
)

// Injector drives randomized faults against a kube cluster.
type Injector struct {
	cluster *kube.Cluster
	clock   sim.Clock
	rng     *sim.RNG

	// NodeMTBF is the per-node mean time between failures; zero
	// disables node crashes.
	NodeMTBF time.Duration
	// NodeRecovery is the mean time a crashed node stays down.
	NodeRecovery time.Duration
	// PodKillMTBF is the mean time between random pod kills across the
	// cluster; zero disables.
	PodKillMTBF time.Duration

	mu        sync.Mutex
	nodeCrash int64
	podKills  int64
	downNodes map[string]bool
	stopCh    chan struct{}
	wg        sync.WaitGroup
	stopOnce  sync.Once
	startOnce sync.Once
}

// NewInjector returns an injector bound to a cluster.
func NewInjector(c *kube.Cluster, rng *sim.RNG) *Injector {
	return &Injector{
		cluster:      c,
		clock:        c.Clock(),
		rng:          rng,
		NodeMTBF:     0,
		NodeRecovery: 200 * time.Millisecond,
		downNodes:    make(map[string]bool),
		stopCh:       make(chan struct{}),
	}
}

// Start launches the fault loops.
func (in *Injector) Start() {
	in.startOnce.Do(func() {
		if in.NodeMTBF > 0 {
			in.wg.Add(1)
			go func() {
				defer in.wg.Done()
				in.nodeLoop()
			}()
		}
		if in.PodKillMTBF > 0 {
			in.wg.Add(1)
			go func() {
				defer in.wg.Done()
				in.podLoop()
			}()
		}
	})
}

// Stop halts injection (crashed nodes are restored).
func (in *Injector) Stop() {
	in.stopOnce.Do(func() { close(in.stopCh) })
	in.wg.Wait()
	in.mu.Lock()
	defer in.mu.Unlock()
	for name := range in.downNodes {
		in.cluster.RestoreNode(name)
		delete(in.downNodes, name)
	}
}

// Stats reports (node crashes, pod kills) injected so far.
func (in *Injector) Stats() (nodeCrashes, podKills int64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.nodeCrash, in.podKills
}

// nodeLoop crashes random nodes at cluster-wide exponential intervals
// and restores them after a recovery delay.
func (in *Injector) nodeLoop() {
	for {
		nodes := in.cluster.Store().ListNodes()
		if len(nodes) == 0 {
			return
		}
		// Cluster-wide rate: MTBF per node / node count.
		mean := float64(in.NodeMTBF) / float64(len(nodes))
		in.mu.Lock()
		wait := time.Duration(in.rng.Exp(mean))
		in.mu.Unlock()
		select {
		case <-in.stopCh:
			return
		case <-in.clock.After(wait):
		}
		in.mu.Lock()
		var up []string
		for _, n := range nodes {
			if !in.downNodes[n.Name] {
				up = append(up, n.Name)
			}
		}
		if len(up) == 0 {
			in.mu.Unlock()
			continue
		}
		victim := up[in.rng.Intn(len(up))]
		in.downNodes[victim] = true
		in.nodeCrash++
		recovery := time.Duration(in.rng.Exp(float64(in.NodeRecovery)))
		in.mu.Unlock()

		in.cluster.CrashNode(victim)
		in.wg.Add(1)
		go func(name string, after time.Duration) {
			defer in.wg.Done()
			select {
			case <-in.stopCh:
				return
			case <-in.clock.After(after):
			}
			in.cluster.RestoreNode(name)
			in.mu.Lock()
			delete(in.downNodes, name)
			in.mu.Unlock()
		}(victim, recovery)
	}
}

// podLoop kills random running pods.
func (in *Injector) podLoop() {
	for {
		in.mu.Lock()
		wait := time.Duration(in.rng.Exp(float64(in.PodKillMTBF)))
		in.mu.Unlock()
		select {
		case <-in.stopCh:
			return
		case <-in.clock.After(wait):
		}
		var running []string
		for _, p := range in.cluster.Store().ListPods("") {
			if p.Status.Phase == kube.PodRunning {
				running = append(running, p.Name)
			}
		}
		if len(running) == 0 {
			continue
		}
		in.mu.Lock()
		victim := running[in.rng.Intn(len(running))]
		in.podKills++
		in.mu.Unlock()
		in.cluster.KillPod(victim, "ChaosKill")
	}
}
