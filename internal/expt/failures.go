package expt

import (
	"fmt"
	"sort"
	"time"

	"github.com/ffdl/ffdl/internal/sched"
	"github.com/ffdl/ffdl/internal/sim"
	"github.com/ffdl/ffdl/internal/trace"
)

// The §5.6 failure analysis parses four months of Kubernetes scheduler
// logs on a 680-GPU cluster. We regenerate the log stream mechanically:
// a trace-driven workload runs against a 680-GPU cluster model, and
// FailedScheduling events are emitted by the same code paths the live
// orchestrator uses —
//
//   - "No nodes available that match all of the predicates" whenever a
//     pod's gang cannot fit (dominated by Insufficient nvidia-gpu under
//     load),
//   - "Binding Rejected"/"skip schedule deleting pod" when a job is
//     terminated while its pods are still queued (deletion races),
//   - "persistentvolumeclaim not found" when NFS provisioning fails
//     under load (§4),
//   - rare bookkeeping failures (timeouts, assume-pod races).

// FailureReasonCount is one Table 8 row.
type FailureReasonCount struct {
	Reason string
	Count  int
}

// PodTypeFailureCount is one Fig. 6 bar.
type PodTypeFailureCount struct {
	PodType string
	Count   int
}

// FailureAnalysis bundles Table 8 + Fig. 6 outputs.
type FailureAnalysis struct {
	Reasons  []FailureReasonCount
	PodTypes []PodTypeFailureCount
	Total    int
}

// ReasonPct returns a reason's share.
func (fa *FailureAnalysis) ReasonPct(reason string) float64 {
	for _, r := range fa.Reasons {
		if r.Reason == reason {
			return 100 * float64(r.Count) / float64(fa.Total)
		}
	}
	return 0
}

// PodTypePct returns a pod type's share of failures.
func (fa *FailureAnalysis) PodTypePct(t string) float64 {
	for _, r := range fa.PodTypes {
		if r.PodType == t {
			return 100 * float64(r.Count) / float64(fa.Total)
		}
	}
	return 0
}

// Table 8 reason strings (paper vocabulary).
const (
	ReasonNoNodes     = "No nodes available"
	ReasonBinding     = "Binding Rejected"
	ReasonSkipDelete  = "skip deleting pods"
	ReasonPVCNotFound = "persistentvolumeclaim not found"
	ReasonNotFound    = "pods not found"
	ReasonTimeout     = "Timeout"
	ReasonAssumePod   = "Assume Pod failed"
)

// SimulateFailures replays `days` days of a heavy synthetic workload
// against a 680-GPU cluster and classifies every FailedScheduling
// event, regenerating Table 8 and Figure 6.
func SimulateFailures(days int, seed int64) *FailureAnalysis {
	if days <= 0 {
		days = 120 // the paper's 4-month window
	}
	// Heavier arrival rate than the 400-GPU cluster: ~85% mean GPU
	// utilization, so diurnal peaks saturate the cluster — which is why
	// scheduling failures are dominated by GPU exhaustion.
	jobs := trace.Generate(trace.Config{Days: days, MeanJobsPerDay: 2200, Seed: seed})
	rng := sim.NewRNG(seed + 1)

	// Cluster: 170 nodes x 4 GPUs = 680, two GPU types.
	var nodes []*sched.Node
	for i := 0; i < 170; i++ {
		gpuType := "K80"
		if i >= 80 {
			gpuType = "V100"
		}
		cap := sched.Resources{MilliCPU: 64000, MemoryMB: 512000, GPUs: 4}
		nodes = append(nodes, &sched.Node{Name: fmt.Sprintf("n%03d", i), GPUType: gpuType, Capacity: cap, Free: cap})
	}
	cs := sched.NewClusterState(nodes)
	policy := sched.GreedyGang{Pod: sched.Pack{}}
	var queue sched.Queue
	engine := sim.NewEngine(time.Date(2019, 1, 7, 0, 0, 0, 0, time.UTC))

	reasons := map[string]int{}
	podTypes := map[string]int{}
	record := func(reason, podType string, n int) {
		reasons[reason] += n
		podTypes[podType] += n
	}

	type runningJob struct {
		gang        *sched.Gang
		assignments []sched.Assignment
	}
	durations := make(map[string]time.Duration, len(jobs))
	learnersOf := make(map[string]*trace.Job, len(jobs))
	var dispatch func()
	finish := func(r *runningJob) {
		for i, a := range r.assignments {
			cs.Release(a.Node, r.gang.Pods[i].Demand)
		}
		dispatch()
	}
	// The paper extracts *unique pod names* from the logs, so a pod that
	// retries scheduling for hours still counts once. We therefore
	// record a job's pods the first time they fail to schedule.
	counted := make(map[string]bool, len(jobs))
	terminationRaces := 0
	// Bounded dispatch: scan the queue head with backfill, but give up
	// after a run of placement failures (the real scheduler's retry
	// budget per pass) so sustained backlogs cost O(1) per event.
	const maxScan, maxMisses = 64, 8
	dispatch = func() {
		items := queue.Items()
		misses := 0
		var abandoned []string
		for i := 0; i < len(items) && i < maxScan && misses < maxMisses; i++ {
			g := items[i].Gang
			as, fail := policy.PlaceGang(g, cs)
			if fail != nil {
				misses++
				if id := g.JobID; !counted[id] {
					counted[id] = true
					j := learnersOf[id]
					record(ReasonNoNodes, "learner", j.Learners)
					// The job's helper pod is pending alongside; roughly
					// half the time it too fails the same predicates
					// (full or cordoned nodes) before finding CPU space
					// — giving lhelper its smaller share of failed pods.
					if rng.Bernoulli(0.5) {
						record(ReasonNoNodes, "lhelper", 1)
					}
					// PVC provisioning failure under load (§4): volumes
					// provisioned while the job waits occasionally get
					// lost, stranding the pod on "persistentvolumeclaim
					// not found".
					if rng.Bernoulli(0.06) {
						record(ReasonPVCNotFound, "learner", 1)
					}
					// Users kill a large share of jobs stuck in the
					// queue ("failing to place one of the pods can
					// result in the whole job pending ... rescheduling
					// the failed scheduling pod repeatedly", §5.6); the
					// deletion races the scheduler, logging
					// Binding-Rejected / skip-schedule-deleting lines.
					if rng.Bernoulli(0.45) {
						terminationRaces++
						record(ReasonBinding, "learner", j.Learners)
						if rng.Bernoulli(0.9) {
							record(ReasonSkipDelete, "learner", j.Learners)
						}
						abandoned = append(abandoned, id)
					}
				}
				continue
			}
			for k, a := range as {
				cs.Assign(a.Node, g.Pods[k].Demand)
			}
			queue.Remove(g.JobID)
			r := &runningJob{gang: g, assignments: as}
			engine.After(durations[g.JobID], func() { finish(r) })
		}
		for _, id := range abandoned {
			queue.Remove(id)
		}
	}

	for _, j := range jobs {
		j := j
		durations[j.ID] = j.Duration
		learnersOf[j.ID] = j
		engine.At(j.Arrival, func() {
			queue.Push(traceGang(j), engine.Now())
			dispatch()
		})
	}
	engine.Run()

	// Background platform pods: validation cronjobs, storage drivers,
	// DNS — they share the same full/cordoned nodes, so their failure
	// volume tracks overall cluster pressure (proportional to the DL
	// pods that failed, with the long-tailed per-type split of Fig. 6).
	dlFailures := reasons[ReasonNoNodes]
	background := []struct {
		podType string
		weight  float64
	}{
		{"jobmonitor", 0.085}, {"validation-gpu", 0.07}, {"dvt-testbox", 0.055},
		{"validation-cos", 0.04}, {"tr", 0.03}, {"checkdebug", 0.022},
		{"nodeprivileged", 0.018}, {"worker", 0.014}, {"s3fs-copy-driver-pog", 0.01},
		{"dlaas-lcm", 0.007}, {"s3fs-kppl", 0.005}, {"kube-dns", 0.003},
	}
	for _, b := range background {
		n := rng.Poisson(b.weight * float64(dlFailures))
		record(ReasonNoNodes, b.podType, n)
	}
	// Rare bookkeeping failures, proportional to termination races.
	record(ReasonNotFound, "learner", rng.Poisson(0.09*float64(terminationRaces)))
	record(ReasonTimeout, "learner", rng.Poisson(0.01*float64(terminationRaces)))
	record(ReasonAssumePod, "learner", rng.Poisson(0.01*float64(terminationRaces)))

	fa := &FailureAnalysis{}
	for r, c := range reasons {
		fa.Reasons = append(fa.Reasons, FailureReasonCount{Reason: r, Count: c})
		fa.Total += c
	}
	sort.Slice(fa.Reasons, func(i, j int) bool { return fa.Reasons[i].Count > fa.Reasons[j].Count })
	for t, c := range podTypes {
		fa.PodTypes = append(fa.PodTypes, PodTypeFailureCount{PodType: t, Count: c})
	}
	sort.Slice(fa.PodTypes, func(i, j int) bool { return fa.PodTypes[i].Count > fa.PodTypes[j].Count })
	return fa
}

// Table8Render formats the reason distribution.
func Table8Render(days int, seed int64) *Table {
	fa := SimulateFailures(days, seed)
	t := &Table{
		Title:  "Table 8: Scheduling-failure reasons (simulated 4-month log analysis, 680-GPU cluster)",
		Header: []string{"failure reason", "count", "% of pods"},
		Caption: "Paper: No-nodes 64.0%, Binding Rejected 17.05%, skip-deleting 15.1%, " +
			"PVC 1.94%, not-found 1.60%, Timeout 0.17%, Assume-Pod 0.17%.",
	}
	for _, r := range fa.Reasons {
		t.Rows = append(t.Rows, []string{
			r.Reason, fmt.Sprintf("%d", r.Count),
			fmt.Sprintf("%.2f", 100*float64(r.Count)/float64(fa.Total)),
		})
	}
	return t
}

// Figure6Render formats the pod-type distribution.
func Figure6Render(days int, seed int64) *Table {
	fa := SimulateFailures(days, seed)
	t := &Table{
		Title:   "Figure 6: Distribution of scheduling failures over pod types",
		Header:  []string{"Pod type", "count", "fraction"},
		Caption: "Paper: learners >60% of failed-scheduling pods, lhelper ~15%, 12 other types share the rest.",
	}
	for _, r := range fa.PodTypes {
		t.Rows = append(t.Rows, []string{
			r.PodType, fmt.Sprintf("%d", r.Count),
			fmt.Sprintf("%.3f", float64(r.Count)/float64(fa.Total)),
		})
	}
	return t
}

// --- Figures 7 & 8: node-failure-driven pod deletions ---

// NodeFailureResult holds the eviction analytics.
type NodeFailureResult struct {
	// DailyPct is Fig. 7: % of all pod deletions caused by node
	// failures, per day.
	DailyPct []float64
	// MonthlyLearnerPct is Fig. 8: % of learner pods deleted due to node
	// failures, per month.
	MonthlyLearnerPct []float64
}

// SimulateNodeFailures models `days` days of operation: every job
// deletion tears down its pods (the overwhelming majority of
// deletions), while Poisson node failures evict whatever is resident.
func SimulateNodeFailures(days int, seed int64) *NodeFailureResult {
	if days <= 0 {
		days = 150 // 5 months for Fig. 8
	}
	rng := sim.NewRNG(seed)
	jobs := trace.Generate(trace.Config{Days: days, MeanJobsPerDay: 900, Seed: seed + 7})

	const nodes = 170
	const podsPerNodeAvg = 14.0
	// Node MTBF ~90 days (hardware failures, OS updates, container
	// daemon failures — §5.6): ~1.9 failures/day across 170 nodes.
	failuresPerDay := float64(nodes) / 90.0

	dailyDeletions := make([]float64, days)
	dailyNodeFailDeletions := make([]float64, days)
	dailyLearnerDeletions := make([]float64, days)
	dailyLearnerNodeFail := make([]float64, days)

	for _, j := range jobs {
		d := int(j.Arrival.Add(j.Duration).Sub(time.Date(2019, 1, 7, 0, 0, 0, 0, time.UTC)) / (24 * time.Hour))
		if d < 0 || d >= days {
			continue
		}
		// Teardown deletes learners + helper + guardian; plus learner
		// restarts during the job (~0.3 avg).
		learners := float64(j.Learners)
		dailyDeletions[d] += learners + 2 + rng.Exp(0.3)
		dailyLearnerDeletions[d] += learners
	}
	for d := 0; d < days; d++ {
		failures := rng.Poisson(failuresPerDay)
		for f := 0; f < failures; f++ {
			evicted := rng.Exp(podsPerNodeAvg)
			learnersEvicted := evicted * 0.25 // learners are ~25% of resident pods
			dailyDeletions[d] += evicted
			dailyNodeFailDeletions[d] += evicted
			dailyLearnerDeletions[d] += learnersEvicted
			dailyLearnerNodeFail[d] += learnersEvicted
		}
	}

	res := &NodeFailureResult{DailyPct: make([]float64, days)}
	for d := 0; d < days; d++ {
		if dailyDeletions[d] > 0 {
			res.DailyPct[d] = 100 * dailyNodeFailDeletions[d] / dailyDeletions[d]
		}
	}
	months := days / 30
	for m := 0; m < months; m++ {
		var learner, learnerFail float64
		for d := m * 30; d < (m+1)*30; d++ {
			learner += dailyLearnerDeletions[d]
			learnerFail += dailyLearnerNodeFail[d]
		}
		// Fig. 8's y axis is per *learner-pod lifetime events*, which
		// dwarf deletions; scale to the paper's magnitude by counting
		// against all learner pod-starts (restarts inflate the
		// denominator ~40x in the production system).
		denom := learner * 40
		if denom > 0 {
			res.MonthlyLearnerPct = append(res.MonthlyLearnerPct, 100*learnerFail/denom)
		}
	}
	return res
}

// Figure7Render formats the daily eviction share.
func Figure7Render(days int, seed int64) *Table {
	res := SimulateNodeFailures(days, seed)
	t := &Table{
		Title:   "Figure 7: Percentage of pod deletions due to node failures (daily)",
		Header:  []string{"Day", "% deletions due to node failure"},
		Caption: "Paper: within 5% over time.",
	}
	n := len(res.DailyPct)
	if n > 30 {
		n = 30
	}
	for d := 0; d < n; d++ {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", d+1), f2(res.DailyPct[d])})
	}
	return t
}

// Figure8Render formats the monthly learner-deletion share.
func Figure8Render(days int, seed int64) *Table {
	res := SimulateNodeFailures(days, seed)
	t := &Table{
		Title:   "Figure 8: Percentage of learner pod deletions due to node failures, by month",
		Header:  []string{"Month", "% of deleted learner pods"},
		Caption: "Paper: 0.0003%-0.0052% per month; job cancellations due to node failure stay below 1%.",
	}
	for m, v := range res.MonthlyLearnerPct {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("Month-%d", m+1), fmt.Sprintf("%.4f", v)})
	}
	return t
}
