package chaos

import (
	"sync"
	"time"

	"github.com/ffdl/ffdl/internal/etcd"
	"github.com/ffdl/ffdl/internal/sim"
)

// EtcdInjector drives coordination-layer chaos against an etcd cluster:
// replica outages long enough to force snapshot-restore rejoins, and
// leader failovers that force every watch stream to re-attach. It is
// the etcd counterpart of Injector, built for the watch-churn
// experiment's resyncs-per-restore measurement (docs/watch-protocol.md
// describes the contract under attack).
type EtcdInjector struct {
	c *etcd.Cluster
	// Timeout bounds each convergence wait, measured on the cluster's
	// own clock (virtual under FakeClock, so chaos waits are exact and
	// auto-advance keeps them fast). Defaults to 10s.
	Timeout time.Duration

	clock sim.Clock

	mu        sync.Mutex
	outages   int64
	failovers int64
	restores  uint64
}

// NewEtcdInjector returns an injector bound to a cluster, pacing its
// convergence waits on the cluster's clock.
func NewEtcdInjector(c *etcd.Cluster) *EtcdInjector {
	clock := c.Clock()
	if clock == nil {
		clock = sim.NewRealClock()
	}
	return &EtcdInjector{c: c, Timeout: 10 * time.Second, clock: clock}
}

// Stats reports (outage cycles, forced failovers, snapshot restores
// observed during outage cycles).
func (in *EtcdInjector) Stats() (outages, failovers int64, restores uint64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.outages, in.failovers, in.restores
}

// OutageCycle cuts one non-leader replica off, runs churn while it is
// isolated, then heals it and waits for it to converge with the leader.
// When churn writes enough to compact the leader's log past the victim,
// the rejoin goes through an InstallSnapshot; the return value reports
// the victim index and whether such a snapshot restore was observed.
func (in *EtcdInjector) OutageCycle(churn func()) (victim int, restored bool) {
	leader := in.c.Leader()
	if leader < 0 {
		return -1, false
	}
	victim = (leader + 1) % in.c.Replicas()
	before := in.c.SnapshotRestores()
	in.c.Isolate(victim, true)
	churn()
	in.c.Isolate(victim, false)
	deadline := in.clock.Now().Add(in.Timeout)
	for !in.converged(victim) && in.clock.Now().Before(deadline) {
		in.clock.Sleep(2 * time.Millisecond)
	}
	delta := in.c.SnapshotRestores() - before
	in.mu.Lock()
	in.outages++
	in.restores += delta
	in.mu.Unlock()
	return victim, delta > 0
}

// converged reports whether the victim's replica matches a live
// leader's state again.
func (in *EtcdInjector) converged(victim int) bool {
	l := in.c.Leader()
	return l >= 0 && l != victim && in.c.StateEqual(victim, l)
}

// ForceLeader bounces leadership until target leads, so that watch
// streams (which attach to the leader) must resume against it. Each
// bounce isolates the current leader, runs stale — a write that keeps
// the cut replica's log behind so it cannot immediately reclaim the
// term — and heals it. It reports whether target took leadership within
// the timeout.
func (in *EtcdInjector) ForceLeader(target int, stale func()) bool {
	deadline := in.clock.Now().Add(in.Timeout)
	for {
		cur := in.c.Leader()
		switch {
		case cur == target:
			return true
		case in.clock.Now().After(deadline):
			return false
		case cur < 0:
			in.clock.Sleep(2 * time.Millisecond)
			continue
		}
		in.c.Isolate(cur, true)
		stale() // commits on the majority side, staling cur's log
		// Evaluate the election while cur is still cut off: Leader()
		// ignores isolated replicas, so a healed node's stale
		// leadership claim cannot be misread as the outcome here.
		for in.c.Leader() < 0 && in.clock.Now().Before(deadline) {
			in.clock.Sleep(2 * time.Millisecond)
		}
		in.c.Isolate(cur, false)
		// The healed replica still claims its old term until the real
		// leader's first contact demotes it; wait that claim out so the
		// next evaluation (and the caller) read the true leader.
		for in.c.Leader() == cur && in.clock.Now().Before(deadline) {
			in.clock.Sleep(2 * time.Millisecond)
		}
		in.mu.Lock()
		in.failovers++
		in.mu.Unlock()
	}
}
