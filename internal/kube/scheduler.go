package kube

import (
	"fmt"
	"sort"

	"github.com/ffdl/ffdl/internal/sched"
	"github.com/ffdl/ffdl/internal/sim"
)

// schedulerLoop is the cluster scheduler. It is event-driven: a watch on
// the API-server store wakes it the moment a schedulable pod appears or
// capacity changes, so placement latency is bounded by event propagation
// rather than quantized by SchedulerInterval. The interval ticker remains
// only as a slow resync safety net against missed/dropped events.
//
// Without a GangPolicy it behaves like the stock Kubernetes scheduler —
// "it considers each of the learner pods individually" (§3.5) — binding
// whatever fits, which is what produces partial placements and
// temporarily deadlocked learners. With a GangPolicy, pods carrying gang
// information are bound all-or-nothing.
func (c *Cluster) schedulerLoop() {
	events, cancel := c.store.Watch("")
	defer cancel()
	ticker := c.cfg.Clock.NewTicker(c.cfg.SchedulerInterval)
	defer ticker.Stop()
	// waiting is true while a previous pass left pods unplaced (or held
	// back as an incomplete gang): only then do capacity-freeing events
	// (pod termination/deletion, node changes) warrant a new pass.
	waiting := true
	for {
		wake := false
		select {
		case <-c.stopCh:
			return
		case ev := <-events:
			wake = schedulerRelevant(ev, waiting)
			// Coalesce the burst: drain whatever is queued so one pass
			// covers it all.
			sim.Coalesce(events, func(ev WatchEvent) {
				wake = wake || schedulerRelevant(ev, waiting)
			})
		case <-ticker.C:
			wake = true
		}
		if wake {
			waiting = c.scheduleOnce()
		}
	}
}

// schedulerRelevant reports whether a store event can make a scheduling
// pass productive. New pods always can; freed capacity (terminated or
// deleted pods, node arrivals/changes) only matters when pods are
// waiting for space.
func schedulerRelevant(ev WatchEvent, waiting bool) bool {
	switch ev.Kind {
	case KindPod:
		if ev.Type == WatchAdded {
			return true
		}
		if ev.Type == WatchDeleted {
			return waiting
		}
		if p, ok := ev.Object.(*Pod); ok && p.Terminated() {
			return waiting
		}
		return false
	case KindNode:
		return waiting
	default:
		return false
	}
}

// scheduleOnce runs one scheduling pass. It reports whether any pending
// pod was left unplaced (so the event loop knows to watch for capacity).
func (c *Cluster) scheduleOnce() bool {
	pods := c.store.ListPods("")
	var pending []*Pod
	for _, p := range pods {
		if p.Status.Phase == PodPending && p.Status.Node == "" {
			pending = append(pending, p)
		}
	}
	if len(pending) == 0 {
		return false
	}
	cs := c.Snapshot()

	if c.cfg.GangPolicy != nil {
		c.scheduleGangs(pending, cs)
	} else {
		c.schedulePodAtATime(pending, cs)
	}
	for _, p := range pending {
		if cur, ok := c.store.GetPod(p.Name); ok && cur.Status.Node == "" && !cur.Terminated() {
			return true
		}
	}
	return false
}

// schedulePodAtATime is the stock behaviour: bind each pod greedily, in
// the nondeterministic order the paper blames for partial gang
// placements ("the order in which learner pods are queued by K8S for
// scheduling is non deterministic", §5.3).
func (c *Cluster) schedulePodAtATime(pending []*Pod, cs *sched.ClusterState) {
	c.cfg.RNG.Shuffle(len(pending), func(i, j int) { pending[i], pending[j] = pending[j], pending[i] })
	for _, p := range pending {
		spec := toSchedPod(p)
		nodeName, fail := c.cfg.PodPolicy.PlacePod(spec, cs)
		if fail != nil {
			c.recordEvent(EventWarning, "FailedScheduling", KindPod, p.Name, p.Spec.Type,
				fmt.Sprintf("%s: %s", fail.Reason, fail.Message))
			continue
		}
		cs.Assign(nodeName, p.Spec.Demand)
		c.bindPod(p.Name, nodeName)
	}
}

// scheduleGangs groups gang pods by JobID and binds complete gangs
// atomically; non-gang pods still bind one at a time.
func (c *Cluster) scheduleGangs(pending []*Pod, cs *sched.ClusterState) {
	gangs := make(map[string][]*Pod)
	var loose []*Pod
	for _, p := range pending {
		if p.Spec.GangSize > 0 && p.Spec.JobID != "" {
			gangs[p.Spec.JobID] = append(gangs[p.Spec.JobID], p)
		} else {
			loose = append(loose, p)
		}
	}
	// Deterministic order: by job id. (FCFS arrival ordering is enforced
	// by the FfDL dispatcher above this layer; within one pass order
	// only affects which gang grabs contended space first.)
	jobIDs := make([]string, 0, len(gangs))
	for id := range gangs {
		jobIDs = append(jobIDs, id)
	}
	sort.Strings(jobIDs)
	for _, id := range jobIDs {
		members := gangs[id]
		gangSize := members[0].Spec.GangSize
		bound := c.boundGangMembers(id)
		if len(members)+bound < gangSize {
			// Gang incomplete: pods still being instantiated; hold the
			// assignment (the paper's "reservation" corner case) by not
			// binding anyone yet.
			continue
		}
		g := &sched.Gang{JobID: id}
		for _, p := range members {
			g.Pods = append(g.Pods, *toSchedPod(p))
		}
		as, fail := c.cfg.GangPolicy.PlaceGang(g, cs)
		if fail != nil {
			c.recordEvent(EventWarning, "FailedScheduling", KindPod, members[0].Name,
				members[0].Spec.Type, fmt.Sprintf("%s: %s", fail.Reason, fail.Message))
			continue
		}
		for i, a := range as {
			cs.Assign(a.Node, g.Pods[i].Demand)
			c.bindPod(a.Pod, a.Node)
		}
	}
	c.schedulePodAtATime(loose, cs)
}

// boundGangMembers counts already-bound members of a gang (e.g. after a
// single member was restarted).
func (c *Cluster) boundGangMembers(jobID string) int {
	n := 0
	for _, p := range c.store.ListPods("") {
		if p.Spec.JobID == jobID && p.Spec.GangSize > 0 && p.Status.Node != "" && !p.Terminated() {
			n++
		}
	}
	return n
}

func (c *Cluster) bindPod(name, nodeName string) {
	now := c.cfg.Clock.Now()
	c.store.UpdatePod(name, func(p *Pod) {
		p.Status.Node = nodeName
		p.Status.ScheduledAt = now
	})
	c.recordEvent(EventNormal, "Scheduled", KindPod, name, "", "bound to "+nodeName)
}

func toSchedPod(p *Pod) *sched.PodSpec {
	return &sched.PodSpec{
		Name:    p.Name,
		JobID:   p.Spec.JobID,
		Demand:  p.Spec.Demand,
		GPUType: p.Spec.GPUType,
	}
}
