module github.com/ffdl/ffdl

go 1.24
