package mongo

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Oplog entry codec for durable (FileStore-backed) databases. MemStore
// oplogs carry each op as the record's in-memory Value and never cross
// a codec; a durable oplog must survive a process restart, so the op is
// encoded into the record's payload instead and decoded on recovery
// (commitlog record frames already checksum payloads, so the codec
// carries no CRC of its own).
//
// Layout: uvarint/varint integers, length-prefixed strings, and a
// one-byte type tag per document value. Doc values round-trip with
// their dynamic type preserved (int stays int, int64 stays int64, ...)
// because readers downstream switch on those types (jobdoc's getI,
// tenant quota docs). Value types outside the tagged set are rejected
// at encode time — loudly, at the write — rather than silently
// re-typed at recovery.

// Doc value type tags.
const (
	opvNil byte = iota
	opvString
	opvInt
	opvInt32
	opvInt64
	opvUint64
	opvFloat32
	opvFloat64
	opvBool
	opvDoc
	opvList // []any
	opvStrs // []string
)

var (
	errOpShort   = errors.New("mongo: truncated oplog entry")
	errOpTag     = errors.New("mongo: unknown oplog value tag")
	errOpLen     = errors.New("mongo: oplog entry length out of range")
	errOpEncType = errors.New("mongo: unencodable doc value type")
)

// maxOpLen bounds any single decoded length (matches the commit log's
// frame bound).
const maxOpLen = 1 << 26

// encodeOp appends the durable form of o to dst.
func encodeOp(dst []byte, o op) ([]byte, error) {
	dst = binary.AppendUvarint(dst, o.Seq)
	dst = appendOpString(dst, o.Kind)
	dst = appendOpString(dst, o.Coll)
	dst = appendOpString(dst, o.ID)
	if o.Doc == nil {
		return append(dst, opvNil), nil
	}
	return appendOpDoc(dst, o.Doc)
}

// decodeOp parses one durable oplog entry.
func decodeOp(data []byte) (op, error) {
	r := opReader{buf: data}
	var o op
	var err error
	if o.Seq, err = r.uvarint(); err != nil {
		return op{}, err
	}
	if o.Kind, err = r.str(); err != nil {
		return op{}, err
	}
	if o.Coll, err = r.str(); err != nil {
		return op{}, err
	}
	if o.ID, err = r.str(); err != nil {
		return op{}, err
	}
	v, err := r.value()
	if err != nil {
		return op{}, err
	}
	if v != nil {
		d, ok := v.(Doc)
		if !ok {
			return op{}, fmt.Errorf("%w: op document is %T", errOpTag, v)
		}
		o.Doc = d
	}
	if r.off != len(r.buf) {
		return op{}, fmt.Errorf("mongo: %d trailing bytes after oplog entry", len(r.buf)-r.off)
	}
	return o, nil
}

func appendOpString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendOpValue appends one tagged document value.
func appendOpValue(dst []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(dst, opvNil), nil
	case string:
		return appendOpString(append(dst, opvString), x), nil
	case int:
		return binary.AppendVarint(append(dst, opvInt), int64(x)), nil
	case int32:
		return binary.AppendVarint(append(dst, opvInt32), int64(x)), nil
	case int64:
		return binary.AppendVarint(append(dst, opvInt64), x), nil
	case uint64:
		return binary.AppendUvarint(append(dst, opvUint64), x), nil
	case float32:
		dst = append(dst, opvFloat32)
		return binary.BigEndian.AppendUint32(dst, math.Float32bits(x)), nil
	case float64:
		dst = append(dst, opvFloat64)
		return binary.BigEndian.AppendUint64(dst, math.Float64bits(x)), nil
	case bool:
		b := byte(0)
		if x {
			b = 1
		}
		return append(dst, opvBool, b), nil
	case Doc:
		return appendOpDoc(dst, x)
	case map[string]any:
		return appendOpDoc(dst, Doc(x))
	case []any:
		dst = append(dst, opvList)
		dst = binary.AppendUvarint(dst, uint64(len(x)))
		var err error
		for _, e := range x {
			if dst, err = appendOpValue(dst, e); err != nil {
				return nil, err
			}
		}
		return dst, nil
	case []string:
		dst = append(dst, opvStrs)
		dst = binary.AppendUvarint(dst, uint64(len(x)))
		for _, s := range x {
			dst = appendOpString(dst, s)
		}
		return dst, nil
	default:
		return nil, fmt.Errorf("%w: %T", errOpEncType, v)
	}
}

func appendOpDoc(dst []byte, d Doc) ([]byte, error) {
	dst = append(dst, opvDoc)
	dst = binary.AppendUvarint(dst, uint64(len(d)))
	var err error
	for k, v := range d {
		dst = appendOpString(dst, k)
		if dst, err = appendOpValue(dst, v); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// opReader is a bounds-checked cursor over an encoded op.
type opReader struct {
	buf []byte
	off int
}

func (r *opReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, errOpShort
	}
	r.off += n
	return v, nil
}

func (r *opReader) varint() (int64, error) {
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		return 0, errOpShort
	}
	r.off += n
	return v, nil
}

func (r *opReader) length() (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > maxOpLen {
		return 0, errOpLen
	}
	return int(v), nil
}

func (r *opReader) str() (string, error) {
	n, err := r.length()
	if err != nil {
		return "", err
	}
	if r.off+n > len(r.buf) {
		return "", errOpShort
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s, nil
}

func (r *opReader) byte() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, errOpShort
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

func (r *opReader) value() (any, error) {
	tag, err := r.byte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case opvNil:
		return nil, nil
	case opvString:
		return r.str()
	case opvInt:
		v, err := r.varint()
		return int(v), err
	case opvInt32:
		v, err := r.varint()
		return int32(v), err
	case opvInt64:
		return r.varint()
	case opvUint64:
		return r.uvarint()
	case opvFloat32:
		if r.off+4 > len(r.buf) {
			return nil, errOpShort
		}
		v := math.Float32frombits(binary.BigEndian.Uint32(r.buf[r.off:]))
		r.off += 4
		return v, nil
	case opvFloat64:
		if r.off+8 > len(r.buf) {
			return nil, errOpShort
		}
		v := math.Float64frombits(binary.BigEndian.Uint64(r.buf[r.off:]))
		r.off += 8
		return v, nil
	case opvBool:
		b, err := r.byte()
		return b != 0, err
	case opvDoc:
		n, err := r.length()
		if err != nil {
			return nil, err
		}
		d := make(Doc, n)
		for i := 0; i < n; i++ {
			k, err := r.str()
			if err != nil {
				return nil, err
			}
			v, err := r.value()
			if err != nil {
				return nil, err
			}
			d[k] = v
		}
		return d, nil
	case opvList:
		n, err := r.length()
		if err != nil {
			return nil, err
		}
		out := make([]any, 0, min(n, 4096))
		for i := 0; i < n; i++ {
			v, err := r.value()
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	case opvStrs:
		n, err := r.length()
		if err != nil {
			return nil, err
		}
		out := make([]string, 0, min(n, 4096))
		for i := 0; i < n; i++ {
			s, err := r.str()
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: 0x%02x", errOpTag, tag)
	}
}
