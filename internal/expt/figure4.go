package expt

import (
	"fmt"

	"github.com/ffdl/ffdl/internal/sched"
	"github.com/ffdl/ffdl/internal/sim"
)

// Figure4Workload names one of the three §5.3 workloads.
type Figure4Workload struct {
	Name           string
	Jobs           int
	Learners       int
	GPUsPerLearner int
}

// Figure4Workloads are the paper's three synthetic workloads: 50 jobs
// each of 2L×1G, 2L×2G and 4L×1G on 15 nodes × 4 K80 GPUs.
func Figure4Workloads() []Figure4Workload {
	return []Figure4Workload{
		{"50 jobs, 2 L x 1 GPU/L", 50, 2, 1},
		{"50 jobs, 2 L x 2 GPU/L", 50, 2, 2},
		{"50 jobs, 4 L x 1 GPU/L", 50, 4, 1},
	}
}

// Figure4Series is the empirical distribution for one workload/policy.
type Figure4Series struct {
	Workload string
	Gang     bool
	// Deadlocked accumulates per-run counts of temporarily deadlocked
	// learners; IdlePct accumulates per-run idle-GPU percentages.
	Deadlocked sim.Histogram
	IdlePct    sim.Histogram
}

// Figure4Result bundles all series.
type Figure4Result struct {
	Series []*Figure4Series
}

// Figure4 reproduces §5.3: each workload submits all jobs concurrently
// to a 60-GPU cluster; without gang scheduling the pod-at-a-time K8s
// scheduler (with the nondeterministic pod queue order the paper blames)
// binds partial gangs, producing temporarily deadlocked learners that
// hold idle GPUs. With the BSA gang scheduler both counts are zero by
// construction. Each configuration runs `runs` times (paper: 20).
func Figure4(runs int, seed int64) *Figure4Result {
	if runs <= 0 {
		runs = 20
	}
	res := &Figure4Result{}
	rng := sim.NewRNG(seed)
	for _, wl := range Figure4Workloads() {
		noGang := &Figure4Series{Workload: wl.Name}
		withGang := &Figure4Series{Workload: wl.Name, Gang: true}
		for run := 0; run < runs; run++ {
			d, idle := figure4Run(wl, false, rng.Stream(int64(run)))
			noGang.Deadlocked.Add(float64(d))
			noGang.IdlePct.Add(idle)
			d, idle = figure4Run(wl, true, rng.Stream(int64(1000+run)))
			withGang.Deadlocked.Add(float64(d))
			withGang.IdlePct.Add(idle)
		}
		res.Series = append(res.Series, noGang, withGang)
	}
	return res
}

// figure4Run performs one scheduling pass of a workload and returns the
// number of temporarily deadlocked learners and the percentage of idle
// GPUs they hold.
func figure4Run(wl Figure4Workload, gang bool, rng *sim.RNG) (deadlocked int, idleGPUPct float64) {
	// 15 machines x 4 K80 GPUs (60 GPUs).
	nodes := make([]*sched.Node, 15)
	for i := range nodes {
		cap := sched.Resources{MilliCPU: 64000, MemoryMB: 512000, GPUs: 4}
		nodes[i] = &sched.Node{Name: fmt.Sprintf("n%02d", i), GPUType: "K80", Capacity: cap, Free: cap}
	}
	cs := sched.NewClusterState(nodes)

	gangs := make([]*sched.Gang, wl.Jobs)
	for j := range gangs {
		g := &sched.Gang{JobID: fmt.Sprintf("job%02d", j)}
		for l := 0; l < wl.Learners; l++ {
			g.Pods = append(g.Pods, sched.PodSpec{
				Name:  fmt.Sprintf("job%02d-l%d", j, l),
				JobID: g.JobID,
				Demand: sched.Resources{
					MilliCPU: 4000 * int64(wl.GPUsPerLearner),
					MemoryMB: 24000 * int64(wl.GPUsPerLearner),
					GPUs:     wl.GPUsPerLearner,
				},
			})
		}
		gangs[j] = g
	}

	boundPerJob := make(map[string]int, wl.Jobs)
	if gang {
		// Gang scheduling: FCFS over jobs, all-or-nothing.
		policy := sched.NewBSA(rng)
		for _, g := range gangs {
			as, fail := policy.PlaceGang(g, cs)
			if fail != nil {
				continue // fully queued
			}
			for i, a := range as {
				cs.Assign(a.Node, g.Pods[i].Demand)
			}
			boundPerJob[g.JobID] = len(as)
		}
	} else {
		// Stock scheduler: individual pods in nondeterministic queue
		// order ("the order in which learner pods are queued by K8S for
		// scheduling is non deterministic", §5.3).
		type podRef struct {
			gang *sched.Gang
			idx  int
		}
		var pods []podRef
		for _, g := range gangs {
			for i := range g.Pods {
				pods = append(pods, podRef{g, i})
			}
		}
		rng.Shuffle(len(pods), func(i, j int) { pods[i], pods[j] = pods[j], pods[i] })
		policy := sched.Spread{}
		for _, pr := range pods {
			p := &pr.gang.Pods[pr.idx]
			nodeName, fail := policy.PlacePod(p, cs)
			if fail != nil {
				continue
			}
			cs.Assign(nodeName, p.Demand)
			boundPerJob[pr.gang.JobID]++
		}
	}

	idleGPUs := 0
	for _, g := range gangs {
		bound := boundPerJob[g.JobID]
		if bound > 0 && bound < len(g.Pods) {
			// Partially placed job: its bound learners are temporarily
			// deadlocked, holding GPUs without making progress.
			deadlocked += bound
			idleGPUs += bound * wl.GPUsPerLearner
		}
	}
	return deadlocked, 100 * float64(idleGPUs) / 60
}

// Figure4Render formats the two CDF panels.
func Figure4Render(runs int, seed int64) *Table {
	res := Figure4(runs, seed)
	t := &Table{
		Title: "Figure 4: temporarily deadlocked learners and idle GPUs, with and without gang scheduling",
		Header: []string{"Workload", "Scheduler", "P(deadlock=0)", "median deadlocked",
			"max deadlocked", "median idle GPU%", "max idle GPU%"},
		Caption: "Paper: without gang scheduling deadlocks occur ~60% of runs (up to ~46% idle GPUs); " +
			"with gang scheduling both are always zero.",
	}
	for _, s := range res.Series {
		name := "pod-at-a-time"
		if s.Gang {
			name = "gang (BSA)"
		}
		zeroProb := 0.0
		vals, probs := s.Deadlocked.CDF()
		if len(vals) > 0 && vals[0] == 0 {
			zeroProb = probs[0]
		}
		t.Rows = append(t.Rows, []string{
			s.Workload, name,
			f2(zeroProb),
			f1(s.Deadlocked.Quantile(0.5)), f1(s.Deadlocked.Max()),
			f1(s.IdlePct.Quantile(0.5)), f1(s.IdlePct.Max()),
		})
	}
	return t
}
