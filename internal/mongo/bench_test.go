package mongo

import (
	"fmt"
	"testing"
)

// seedJob inserts a job document with an n-entry status history.
func seedJob(b *testing.B, c *Collection, id string, n int) {
	b.Helper()
	hist := make([]any, n)
	for i := range hist {
		hist[i] = Doc{"status": "PROCESSING", "time": "t", "message": "m"}
	}
	if _, err := c.Insert(Doc{"_id": id, "status": "PROCESSING", "user": "alice", "history": hist}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMongoFindOneLongHistory measures the copy-on-write read
// path: fetching a job document dragging a 1000-entry history.
func BenchmarkMongoFindOneLongHistory(b *testing.B) {
	db := NewDB()
	c := db.C("jobs")
	seedJob(b, c, "j1", 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.FindOne(Filter{"_id": "j1"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMongoStatusAppend measures the status-transition write path
// (read + history push + oplog) on a long-history document.
func BenchmarkMongoStatusAppend(b *testing.B) {
	db := NewDB()
	c := db.C("jobs")
	seedJob(b, c, "j1", 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.UpdateOne(Filter{"_id": "j1"}, Update{
			Set:  Doc{"status": "PROCESSING"},
			Push: map[string]any{"history": Doc{"status": "PROCESSING", "i": i}},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMongoFindSortLimit measures an indexed-equality query with a
// sort and a small Limit over many matches: losers are sorted but never
// materialized.
func BenchmarkMongoFindSortLimit(b *testing.B) {
	db := NewDB()
	c := db.C("jobs")
	c.EnsureIndex("user")
	for i := 0; i < 1000; i++ {
		if _, err := c.Insert(Doc{
			"_id": fmt.Sprintf("j%04d", i), "user": "alice",
			"submitted": i, "history": make([]any, 32),
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		docs := c.Find(Filter{"user": "alice"}, FindOpts{SortBy: "submitted", Desc: true, Limit: 10})
		if len(docs) != 10 {
			b.Fatalf("got %d docs", len(docs))
		}
	}
}

// BenchmarkMongoFindCompiledFilter pins the win from compiling filters
// once per query: a multi-condition nested-path filter scanned over
// 1000 candidates, evaluated via the compiled form Find uses vs the
// interpreted per-candidate Filter.Matches it replaced (which re-split
// every dotted path for every candidate).
func BenchmarkMongoFindCompiledFilter(b *testing.B) {
	db := NewDB()
	c := db.C("jobs")
	for i := 0; i < 1000; i++ {
		if _, err := c.Insert(Doc{
			"_id": fmt.Sprintf("j%04d", i), "user": fmt.Sprintf("u%d", i%4),
			"status": Doc{"phase": "RUNNING", "retries": i % 8},
			"gpus":   i % 16,
		}); err != nil {
			b.Fatal(err)
		}
	}
	f := Filter{"status.phase": "RUNNING", "status.retries": Gte(2), "gpus": In(1, 3, 5, 7)}
	b.Run("Find", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if docs := c.Find(f, FindOpts{}); len(docs) == 0 {
				b.Fatal("no matches")
			}
		}
	})
	// Isolate matcher cost from clone/sort: run both matcher forms over
	// the stored documents directly.
	c.mu.RLock()
	docs := make([]Doc, 0, len(c.docs))
	for _, d := range c.docs {
		docs = append(docs, d)
	}
	c.mu.RUnlock()
	b.Run("MatchCompiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cf := f.compile() // once per query, amortized over the scan
			n := 0
			for _, d := range docs {
				if cf.matches(d) {
					n++
				}
			}
			if n == 0 {
				b.Fatal("no matches")
			}
		}
	})
	b.Run("MatchInterpreted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n := 0
			for _, d := range docs {
				if f.Matches(d) {
					n++
				}
			}
			if n == 0 {
				b.Fatal("no matches")
			}
		}
	})
}
