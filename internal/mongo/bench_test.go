package mongo

import (
	"fmt"
	"testing"
)

// seedJob inserts a job document with an n-entry status history.
func seedJob(b *testing.B, c *Collection, id string, n int) {
	b.Helper()
	hist := make([]any, n)
	for i := range hist {
		hist[i] = Doc{"status": "PROCESSING", "time": "t", "message": "m"}
	}
	if _, err := c.Insert(Doc{"_id": id, "status": "PROCESSING", "user": "alice", "history": hist}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMongoFindOneLongHistory measures the copy-on-write read
// path: fetching a job document dragging a 1000-entry history.
func BenchmarkMongoFindOneLongHistory(b *testing.B) {
	db := NewDB()
	c := db.C("jobs")
	seedJob(b, c, "j1", 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.FindOne(Filter{"_id": "j1"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMongoStatusAppend measures the status-transition write path
// (read + history push + oplog) on a long-history document.
func BenchmarkMongoStatusAppend(b *testing.B) {
	db := NewDB()
	c := db.C("jobs")
	seedJob(b, c, "j1", 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.UpdateOne(Filter{"_id": "j1"}, Update{
			Set:  Doc{"status": "PROCESSING"},
			Push: map[string]any{"history": Doc{"status": "PROCESSING", "i": i}},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMongoFindSortLimit measures an indexed-equality query with a
// sort and a small Limit over many matches: losers are sorted but never
// materialized.
func BenchmarkMongoFindSortLimit(b *testing.B) {
	db := NewDB()
	c := db.C("jobs")
	c.EnsureIndex("user")
	for i := 0; i < 1000; i++ {
		if _, err := c.Insert(Doc{
			"_id": fmt.Sprintf("j%04d", i), "user": "alice",
			"submitted": i, "history": make([]any, 32),
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		docs := c.Find(Filter{"user": "alice"}, FindOpts{SortBy: "submitted", Desc: true, Limit: 10})
		if len(docs) != 10 {
			b.Fatalf("got %d docs", len(docs))
		}
	}
}
