package resilience

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/ffdl/ffdl/internal/obs"
	"github.com/ffdl/ffdl/internal/sim"
)

var errBoom = errors.New("boom")

func TestClassifyMarkAndDefaults(t *testing.T) {
	if got := Classify(Mark(errBoom, Transient)); got != Transient {
		t.Fatalf("marked transient classified %v", got)
	}
	if got := Classify(Mark(errBoom, Terminal)); got != Terminal {
		t.Fatalf("marked terminal classified %v", got)
	}
	// Wrapping preserves the mark.
	wrapped := errors.Join(errors.New("outer"), Mark(errBoom, Transient))
	if got := Classify(wrapped); got != Transient {
		t.Fatalf("wrapped mark classified %v", got)
	}
	if got := Classify(context.Canceled); got != Ambiguous {
		t.Fatalf("canceled classified %v", got)
	}
	if got := Classify(errBoom); got != Ambiguous {
		t.Fatalf("unmarked classified %v", got)
	}
	if !errors.Is(Mark(errBoom, Transient), errBoom) {
		t.Fatal("Mark broke errors.Is")
	}
}

func TestBackoffCapAndDeterminism(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond, Mult: 2}
	want := []time.Duration{10, 20, 40, 80, 80}
	for i, w := range want {
		if got := b.delay(i, nil); got != w*time.Millisecond {
			t.Fatalf("delay(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
	// Same seed, same jittered schedule.
	bj := Backoff{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond, Mult: 2, Jitter: 0.5}
	a, c := sim.NewRNG(7), sim.NewRNG(7)
	for i := 0; i < 5; i++ {
		if d1, d2 := bj.delay(i, a), bj.delay(i, c); d1 != d2 {
			t.Fatalf("jitter not deterministic: %v vs %v", d1, d2)
		}
	}
}

// TestRetrySchedulingExactUnderFakeClock pins that Do's backoff waits are
// clock-driven: with a FakeClock and no auto-advance, the retry only
// proceeds when virtual time is advanced, and the elapsed virtual time
// equals the deterministic schedule exactly.
func TestRetrySchedulingExactUnderFakeClock(t *testing.T) {
	clock := sim.NewFakeClock(time.Unix(0, 0))
	clock.StartAutoAdvance(time.Millisecond)
	defer clock.StopAutoAdvance()
	p := NewPolicy(Options{
		Name:     "dep",
		Clock:    clock,
		Attempts: 3,
		Backoff:  Backoff{Base: 100 * time.Millisecond, Mult: 2},
	})
	start := clock.Now()
	calls := 0
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return Mark(errBoom, Transient)
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	// Two backoff waits: 100ms + 200ms of virtual time, exactly.
	if got := clock.Since(start); got != 300*time.Millisecond {
		t.Fatalf("virtual elapsed = %v, want 300ms", got)
	}
}

func TestTerminalErrorsDoNotRetry(t *testing.T) {
	p := NewPolicy(Options{Name: "dep", Attempts: 5})
	calls := 0
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return Mark(errBoom, Terminal)
	})
	if calls != 1 {
		t.Fatalf("terminal error retried: %d calls", calls)
	}
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v", err)
	}
}

func TestAmbiguousRetriedOnlyWhenIdempotent(t *testing.T) {
	calls := 0
	p := NewPolicy(Options{Name: "dep", Attempts: 3, Backoff: Backoff{Base: time.Microsecond}})
	_ = p.Do(context.Background(), func(context.Context) error { calls++; return errBoom })
	if calls != 1 {
		t.Fatalf("ambiguous retried on non-idempotent edge: %d calls", calls)
	}
	calls = 0
	p = NewPolicy(Options{Name: "dep", Attempts: 3, RetryAmbiguous: true, Backoff: Backoff{Base: time.Microsecond}})
	_ = p.Do(context.Background(), func(context.Context) error { calls++; return errBoom })
	if calls != 3 {
		t.Fatalf("ambiguous not retried on idempotent edge: %d calls", calls)
	}
}

// TestBreakerLifecycle walks closed → open (shedding) → half-open probe →
// closed on the policy clock, and checks the obs gauge/counters track it.
func TestBreakerLifecycle(t *testing.T) {
	clock := sim.NewFakeClock(time.Unix(0, 0))
	reg := obs.NewRegistry()
	p := NewPolicy(Options{
		Name:     "mongo",
		Clock:    clock,
		Attempts: 1,
		Obs:      reg,
		Breaker:  &BreakerConfig{Threshold: 3, OpenFor: time.Second},
	})
	fail := func(context.Context) error { return Mark(errBoom, Transient) }
	ok := func(context.Context) error { return nil }

	for i := 0; i < 3; i++ {
		if err := p.Do(context.Background(), fail); !errors.Is(err, errBoom) {
			t.Fatalf("attempt %d: %v", i, err)
		}
	}
	if got := p.BreakerState(); got != BreakerOpen {
		t.Fatalf("state after threshold failures = %v, want open", got)
	}
	if reg.Counter("resilience.breaker_opens_mongo").Value() != 1 {
		t.Fatal("breaker open not counted")
	}

	// Open: calls shed without invoking the op.
	calls := 0
	err := p.Do(context.Background(), func(context.Context) error { calls++; return nil })
	if calls != 0 || !IsShed(err) {
		t.Fatalf("open breaker: calls=%d err=%v", calls, err)
	}
	var se *ShedError
	if !errors.As(err, &se) || se.RetryAfter <= 0 {
		t.Fatalf("shed error lacks RetryAfter hint: %v", err)
	}
	if Classify(err) != Transient {
		t.Fatal("shed error must classify transient (retryable)")
	}
	if reg.Counter("resilience.shed").Value() != 1 {
		t.Fatal("shed not counted")
	}

	// Still open before OpenFor elapses; half-open after.
	clock.Advance(999 * time.Millisecond)
	if p.Ready() {
		t.Fatal("breaker ready before OpenFor elapsed")
	}
	clock.Advance(time.Millisecond)
	if got := p.BreakerState(); got != BreakerHalfOpen {
		t.Fatalf("state after OpenFor = %v, want half-open", got)
	}

	// A failing probe re-opens...
	if err := p.Do(context.Background(), fail); !errors.Is(err, errBoom) {
		t.Fatalf("probe: %v", err)
	}
	if got := p.BreakerState(); got != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	// ...and a successful probe after another window closes.
	clock.Advance(time.Second)
	if err := p.Do(context.Background(), ok); err != nil {
		t.Fatalf("probe: %v", err)
	}
	if got := p.BreakerState(); got != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
	if reg.Snapshot().Gauge("resilience.breaker_state_mongo") != int64(BreakerClosed) {
		t.Fatal("gauge does not track closed state")
	}
}

// TestBreakerTerminalErrorsCountAsContact pins that application-level
// errors (the dependency answered "no") reset the failure streak instead
// of tripping the breaker.
func TestBreakerTerminalErrorsCountAsContact(t *testing.T) {
	clock := sim.NewFakeClock(time.Unix(0, 0))
	p := NewPolicy(Options{
		Name:     "dep",
		Clock:    clock,
		Attempts: 1,
		Breaker:  &BreakerConfig{Threshold: 2, OpenFor: time.Second},
	})
	seq := []Class{Transient, Terminal, Transient, Terminal}
	for _, cl := range seq {
		_ = p.Do(context.Background(), func(context.Context) error { return Mark(errBoom, cl) })
	}
	if got := p.BreakerState(); got != BreakerClosed {
		t.Fatalf("interleaved terminal errors tripped breaker: %v", got)
	}
}

// TestDeadlineRescuesWedgedCall pins the core chaos property: an op stuck
// forever on a dead dependency is abandoned after the policy's virtual
// deadline, classified transient, with no FakeClock waiters leaked.
func TestDeadlineRescuesWedgedCall(t *testing.T) {
	clock := sim.NewFakeClock(time.Unix(0, 0))
	clock.StartAutoAdvance(time.Millisecond)
	defer clock.StopAutoAdvance()
	p := NewPolicy(Options{
		Name:     "lcm",
		Clock:    clock,
		Attempts: 2,
		Deadline: 5 * time.Second,
	})
	start := clock.Now()
	err := p.Do(context.Background(), func(ctx context.Context) error {
		<-ctx.Done() // wedged until the policy deadline cancels us
		return ctx.Err()
	})
	if err == nil || Classify(err) != Transient {
		t.Fatalf("wedged call: err=%v class=%v", err, Classify(err))
	}
	if got := clock.Since(start); got != 5*time.Second {
		t.Fatalf("rescued after %v virtual, want 5s", got)
	}
	deadlineWaiters := func() int {
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) && clock.WaiterCount() > 0 {
			time.Sleep(time.Millisecond)
		}
		return clock.WaiterCount()
	}
	if n := deadlineWaiters(); n != 0 {
		t.Fatalf("leaked %d clock waiters", n)
	}
}

func TestCallerCancelStopsRetries(t *testing.T) {
	clock := sim.NewFakeClock(time.Unix(0, 0))
	clock.StartAutoAdvance(time.Millisecond)
	defer clock.StopAutoAdvance()
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPolicy(Options{
		Name:     "dep",
		Clock:    clock,
		Attempts: 10,
		Backoff:  Backoff{Base: time.Second},
	})
	calls := 0
	err := p.Do(ctx, func(context.Context) error {
		calls++
		if calls == 2 {
			cancel()
		}
		return Mark(errBoom, Transient)
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v", err)
	}
	if calls != 2 {
		t.Fatalf("calls after cancel = %d, want 2", calls)
	}
}

func TestRetriesCounted(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewPolicy(Options{Name: "dep", Attempts: 4, Obs: reg, Backoff: Backoff{Base: time.Microsecond}})
	_ = p.Do(context.Background(), func(context.Context) error { return Mark(errBoom, Transient) })
	if got := reg.Counter("resilience.retries").Value(); got != 3 {
		t.Fatalf("resilience.retries = %d, want 3", got)
	}
}

func TestSuccessAfterRetries(t *testing.T) {
	clock := sim.NewFakeClock(time.Unix(0, 0))
	clock.StartAutoAdvance(time.Millisecond)
	defer clock.StopAutoAdvance()
	p := NewPolicy(Options{Name: "dep", Clock: clock, Attempts: 5, Backoff: Backoff{Base: time.Millisecond}})
	calls := 0
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return Mark(errBoom, Transient)
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestHalfOpenAdmitsSingleProbe(t *testing.T) {
	clock := sim.NewFakeClock(time.Unix(0, 0))
	p := NewPolicy(Options{
		Name:     "dep",
		Clock:    clock,
		Attempts: 1,
		Breaker:  &BreakerConfig{Threshold: 1, OpenFor: time.Second},
	})
	_ = p.Do(context.Background(), func(context.Context) error { return Mark(errBoom, Transient) })
	clock.Advance(time.Second)
	// First allow() enters half-open and takes the probe slot; a second
	// concurrent caller must be shed until the probe resolves.
	if !p.brk.allow() {
		t.Fatal("probe not admitted")
	}
	if p.brk.allow() {
		t.Fatal("second concurrent probe admitted in half-open")
	}
	p.brk.record(false)
	if got := p.BreakerState(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed", got)
	}
}
