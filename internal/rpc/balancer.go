package rpc

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"github.com/ffdl/ffdl/internal/obs"
	"github.com/ffdl/ffdl/internal/resilience"
	"github.com/ffdl/ffdl/internal/sim"
)

// Registry maps service names to the addresses of their live replicas,
// mirroring the Kubernetes service registry the paper's API instances
// register into ("dynamically registered into a K8S service registry that
// provides load balancing and fail-over support", §3.2).
type Registry struct {
	mu       sync.RWMutex
	services map[string][]string
	// obs holds the derived instrument handles every Balancer built over
	// this registry shares (atomic so SetObs can land after balancers
	// exist). Nil pointer = uninstrumented.
	obs atomic.Pointer[registryObs]
	// faults holds the chaos fault injector shared by every connection
	// dialed through this registry (atomic so chaos can install it on a
	// running platform). Nil pointer = clean transport.
	faults atomic.Pointer[Faults]
}

// SetFaults installs (or, with nil, removes) a per-link fault injector on
// every connection dialed through this registry's balancers.
func (r *Registry) SetFaults(f *Faults) {
	r.faults.Store(f)
}

// registryObs bundles the RPC instrumentation one SetObs call derives.
type registryObs struct {
	roundtrip *obs.Histogram
	calls     *obs.Counter
	clock     sim.Clock
}

// SetObs wires every Balancer built over this registry into the metrics
// registry: per-call roundtrip latency ("rpc.roundtrip") and a call
// counter ("rpc.calls"). A nil reg is a no-op, leaving calls
// uninstrumented at zero cost; a nil clk times with the real clock.
func (r *Registry) SetObs(reg *obs.Registry, clk sim.Clock) {
	if reg == nil {
		return
	}
	if clk == nil {
		clk = sim.NewRealClock()
	}
	r.obs.Store(&registryObs{
		roundtrip: reg.Histogram("rpc.roundtrip"),
		calls:     reg.Counter("rpc.calls"),
		clock:     clk,
	})
}

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry {
	return &Registry{services: make(map[string][]string)}
}

// Add registers a replica address under a service name.
func (r *Registry) Add(service, addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, a := range r.services[service] {
		if a == addr {
			return
		}
	}
	r.services[service] = append(r.services[service], addr)
}

// Remove deregisters a replica address.
func (r *Registry) Remove(service, addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	addrs := r.services[service]
	for i, a := range addrs {
		if a == addr {
			r.services[service] = append(addrs[:i], addrs[i+1:]...)
			return
		}
	}
}

// Lookup returns a copy of the replica addresses for a service.
func (r *Registry) Lookup(service string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	addrs := r.services[service]
	out := make([]string, len(addrs))
	copy(out, addrs)
	return out
}

// Balancer issues calls against a named service, rotating across replicas
// and failing over on connection errors. Connections are cached per
// address and re-established lazily after failures, which is how the
// platform survives microservice replica crashes (Table 3).
type Balancer struct {
	registry *Registry
	service  string
	policy   atomic.Pointer[resilience.Policy]

	mu    sync.Mutex
	conns map[string]*Conn
	next  int
}

// NewBalancer returns a Balancer for the given service name.
func NewBalancer(reg *Registry, service string) *Balancer {
	return &Balancer{registry: reg, service: service, conns: make(map[string]*Conn)}
}

// Use installs a resilience policy on this balancer: Call and Stream run
// their replica sweeps under the policy's retry budget, backoff,
// deadline and circuit breaker instead of the bare single-sweep
// failover. A nil policy restores the bare sweep.
func (b *Balancer) Use(p *resilience.Policy) { b.policy.Store(p) }

// Policy returns the installed resilience policy, if any.
func (b *Balancer) Policy() *resilience.Policy { return b.policy.Load() }

// conn returns a live connection to addr, dialing if needed.
func (b *Balancer) conn(addr string) (*Conn, error) {
	b.mu.Lock()
	if c, ok := b.conns[addr]; ok {
		b.mu.Unlock()
		return c, nil
	}
	b.mu.Unlock()
	c, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	c.addr = addr
	c.faults = &b.registry.faults
	b.mu.Lock()
	defer b.mu.Unlock()
	if existing, ok := b.conns[addr]; ok {
		c.Close()
		return existing, nil
	}
	b.conns[addr] = c
	return c, nil
}

func (b *Balancer) drop(addr string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if c, ok := b.conns[addr]; ok {
		c.Close()
		delete(b.conns, addr)
	}
}

// pick returns replica addresses in round-robin starting order.
func (b *Balancer) pick() []string {
	addrs := b.registry.Lookup(b.service)
	if len(addrs) == 0 {
		return nil
	}
	b.mu.Lock()
	start := b.next % len(addrs)
	b.next++
	b.mu.Unlock()
	ordered := make([]string, 0, len(addrs))
	ordered = append(ordered, addrs[start:]...)
	ordered = append(ordered, addrs[:start]...)
	return ordered
}

// retryable reports whether the error justifies trying another replica.
func retryable(err error) bool {
	return errors.Is(err, ErrConnClosed)
}

// ClassifyRPC maps transport errors to resilience classes: a closed
// connection or an empty registry is transient (the request never
// reached a handler), a remote application error is terminal (the
// dependency answered), and a canceled call is ambiguous (the handler
// may have run). It is the Classify function for every RPC-edge policy.
func ClassifyRPC(err error) resilience.Class {
	switch {
	case err == nil:
		return resilience.Terminal
	case errors.Is(err, ErrConnClosed), errors.Is(err, ErrNoEndpoints):
		return resilience.Transient
	case errors.Is(err, ErrCanceled):
		return resilience.Ambiguous
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return resilience.Terminal
	}
	return resilience.Classify(err)
}

// Call performs a unary RPC against any live replica, failing over on
// connection-level errors. Application errors are returned as-is. With a
// policy installed (Use), the whole replica sweep runs under its retry
// budget, backoff, deadline and breaker.
func (b *Balancer) Call(ctx context.Context, method string, arg, reply any) error {
	if ro := b.registry.obs.Load(); ro != nil {
		ro.calls.Inc()
		start := ro.clock.Now()
		defer func() { ro.roundtrip.ObserveDuration(ro.clock.Now().Sub(start)) }()
	}
	if p := b.policy.Load(); p != nil {
		return p.Do(ctx, func(ctx context.Context) error {
			return b.call(ctx, method, arg, reply)
		})
	}
	return b.call(ctx, method, arg, reply)
}

func (b *Balancer) call(ctx context.Context, method string, arg, reply any) error {
	addrs := b.pick()
	if len(addrs) == 0 {
		return ErrNoEndpoints
	}
	var lastErr error
	for _, addr := range addrs {
		c, err := b.conn(addr)
		if err != nil {
			lastErr = err
			continue
		}
		err = c.Call(ctx, method, arg, reply)
		if err == nil || !retryable(err) {
			return err
		}
		b.drop(addr)
		lastErr = err
	}
	if lastErr == nil {
		lastErr = ErrNoEndpoints
	}
	return lastErr
}

// Stream opens a server stream against any live replica. With a policy
// installed, establishing the stream runs under it (the established
// stream's Recv loop is the caller's to guard).
func (b *Balancer) Stream(ctx context.Context, method string, arg any) (*StreamReader, error) {
	if p := b.policy.Load(); p != nil {
		var sr *StreamReader
		// The stream deliberately binds to the caller's ctx, not the
		// policy's per-Do context: the policy guards establishment, but
		// the stream must outlive the Do call.
		err := p.Do(ctx, func(context.Context) error {
			var err error
			sr, err = b.stream(ctx, method, arg)
			return err
		})
		if err != nil {
			return nil, err
		}
		return sr, nil
	}
	return b.stream(ctx, method, arg)
}

func (b *Balancer) stream(ctx context.Context, method string, arg any) (*StreamReader, error) {
	addrs := b.pick()
	if len(addrs) == 0 {
		return nil, ErrNoEndpoints
	}
	var lastErr error
	for _, addr := range addrs {
		c, err := b.conn(addr)
		if err != nil {
			lastErr = err
			continue
		}
		sr, err := c.Stream(ctx, method, arg)
		if err == nil {
			return sr, nil
		}
		if !retryable(err) {
			return nil, err
		}
		b.drop(addr)
		lastErr = err
	}
	if lastErr == nil {
		lastErr = ErrNoEndpoints
	}
	return nil, lastErr
}

// Close releases all cached connections.
func (b *Balancer) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for addr, c := range b.conns {
		c.Close()
		delete(b.conns, addr)
	}
}
