package etcd

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ffdl/ffdl/internal/obs"
	"github.com/ffdl/ffdl/internal/sim"
)

// Options configures a Cluster.
type Options struct {
	// Replicas is the cluster size; the paper deploys etcd 3-way
	// replicated. Defaults to 3.
	Replicas int
	// TickInterval is the Raft logical tick. Defaults to 5ms, giving
	// 50-100ms election timeouts — fast enough for tests, slow enough to
	// be stable on loaded CI machines.
	TickInterval time.Duration
	// Clock supplies time for lease deadlines. Defaults to the wall
	// clock.
	Clock sim.Clock
	// Seed makes election randomization deterministic in tests.
	Seed int64
	// SnapshotThreshold bounds per-node log length before compaction.
	SnapshotThreshold int
	// ProposalTimeout bounds how long a client call waits for commit.
	// Defaults to 5s.
	ProposalTimeout time.Duration
	// WatchHistory is the hard cap on retained watch events per replica
	// — the memory bound on the event log. A watcher resuming past the
	// retained window (see CompactRevisions) gets an EventResync instead
	// of a replay; it never sees a silent gap. Defaults to 1024.
	// See docs/watch-protocol.md ("etcd WatchStream" layer).
	WatchHistory int
	// CompactRevisions is the revision-based retention window for the
	// watch event log: events older than the last CompactRevisions
	// revisions are compacted away even while the WatchHistory entry cap
	// has room, and the retained log is persisted inside Raft snapshots
	// so Watch(fromRevision) replays across snapshot restore and leader
	// failover without forcing a resync. Defaults to 4096. A negative
	// value disables snapshot persistence of the log (retention falls
	// back to the in-memory ring buffer only, the pre-durability
	// behaviour kept for the watch-churn ablation).
	CompactRevisions int
	// WatchHealthInterval is the per-stream failure-detection tick: how
	// often an attached WatchStream audits its source replica for
	// isolation, stuckness or buffer overflow. It bounds failover
	// detection latency only — event delivery is pushed — so
	// long-virtual-horizon simulations may stretch it freely. Defaults
	// to TickInterval * 4.
	WatchHealthInterval time.Duration
	// UnbatchedAblation restores the seed's proposal hot path for the
	// throughput ablation: one Raft entry per command and full-suffix
	// append fan-out (LegacyReplication) instead of group commit +
	// pipelined replication. Production configurations leave it false.
	// Results, ordering and the watch contract are identical either way
	// — only the per-operation cost differs.
	UnbatchedAblation bool
	// GobCodec keeps Raft entries in the seed's gob encoding instead of
	// the hand-rolled binary command codec — the codec ablation arm of
	// the throughput experiment. Decode always auto-detects the format
	// (see codec.go), so mixed-codec entries apply identically;
	// production configurations leave this false. Raft snapshots use
	// gob regardless: they are cold-path and their schema already
	// self-describes.
	GobCodec bool
	// Obs, when non-nil, wires the cluster into the platform's metrics
	// registry: propose→apply latency ("etcd.propose_apply") and
	// commands-per-entry batch sizes ("etcd.batch_size"). Nil leaves the
	// hot paths uninstrumented at zero cost.
	Obs *obs.Registry
}

func (o *Options) defaults() {
	if o.Replicas <= 0 {
		o.Replicas = 3
	}
	if o.TickInterval <= 0 {
		o.TickInterval = 5 * time.Millisecond
	}
	if o.Clock == nil {
		o.Clock = sim.NewRealClock()
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.SnapshotThreshold <= 0 {
		o.SnapshotThreshold = 4096
	}
	if o.ProposalTimeout <= 0 {
		o.ProposalTimeout = 5 * time.Second
	}
	if o.WatchHistory <= 0 {
		o.WatchHistory = 1024
	}
	if o.CompactRevisions == 0 {
		o.CompactRevisions = 4096
	}
	if o.WatchHealthInterval <= 0 {
		o.WatchHealthInterval = o.TickInterval * 4
	}
}

// Cluster is an in-process replicated etcd: n Raft nodes, each applying
// committed commands to its own storeState replica. Client operations are
// routed to the leader. Exactly-once application is guaranteed by
// request-ID deduplication in the state machine, so a retried proposal
// (e.g. across a leader change) never double-applies.
type Cluster struct {
	opts      Options
	transport *memTransport
	nodes     []*node
	states    []*storeState

	reqSeq  atomic.Uint64
	lastRev atomic.Uint64 // highest revision returned to any client
	mu      sync.Mutex
	waiters map[uint64]chan result
	applied map[uint64]result // request dedup cache (mirrors leader's view)

	// Group commit: propose() enqueues commands here and the batch loop
	// drains the queue into one batch envelope per Raft entry, so K
	// concurrent proposals cost one replication round instead of K.
	batchMu sync.Mutex
	batchQ  []*command
	batchCh chan struct{} // signal, buffered(1)

	// leaderSig is closed and replaced whenever any node gains or sheds
	// leadership (or the topology changes): the event-driven wake for
	// WaitLeader and the batch loop. A cluster with a stable leader
	// holds no polling waiter.
	leaderMu  sync.Mutex
	leaderSig chan struct{}

	// leaseCh wakes the lease-expiry loop when a lease grant is applied
	// (buffered; non-blocking send). Armed from the apply path so the
	// wake can never race ahead of the lease existing in any replica.
	leaseCh chan struct{}

	// Stats counters for the throughput experiment.
	statCommands atomic.Uint64 // client commands proposed
	statEntries  atomic.Uint64 // Raft entries proposed (batch envelopes)
	statMaxBatch atomic.Uint64 // largest commands-per-entry batch seen

	// Registry instrument handles, derived once at NewCluster; nil when
	// Options.Obs is nil (nil instruments no-op for free).
	obsPropose *obs.Histogram // propose→apply latency per client command
	obsBatch   *obs.Histogram // commands per Raft entry at flush

	stopCh  chan struct{}
	stopped atomic.Bool
	wg      sync.WaitGroup
}

// anyLeases reports whether any replica's state machine tracks a live
// lease (replicas converge via Raft; checking all sides errs toward
// arming the expiry timer).
func (c *Cluster) anyLeases() bool {
	for _, st := range c.states {
		if st.leaseCount() > 0 {
			return true
		}
	}
	return false
}

// NewCluster boots a Raft cluster and waits for a leader.
func NewCluster(opts Options) (*Cluster, error) {
	opts.defaults()
	c := &Cluster{
		opts:      opts,
		transport: newMemTransport(),
		waiters:   make(map[uint64]chan result),
		applied:   make(map[uint64]result),
		batchCh:   make(chan struct{}, 1),
		leaderSig: make(chan struct{}),
		leaseCh:   make(chan struct{}, 1),
		stopCh:    make(chan struct{}),
	}
	if opts.Obs != nil {
		c.obsPropose = opts.Obs.Histogram("etcd.propose_apply")
		c.obsBatch = opts.Obs.HistogramWith("etcd.batch_size", obs.CountBuckets)
	}
	peers := make([]int, opts.Replicas)
	for i := range peers {
		peers[i] = i
	}
	rng := sim.NewRNG(opts.Seed)
	for i := 0; i < opts.Replicas; i++ {
		st := newStoreState(opts.Clock.Now, opts.WatchHistory, opts.CompactRevisions, opts.CompactRevisions >= 0)
		cfg := Config{
			ID: i, Peers: peers,
			SnapshotThreshold: opts.SnapshotThreshold,
			Snapshot:          st.snapshot,
			Restore:           func(data []byte, _ uint64) { st.restore(data) },
			OnLeaderChange:    c.notifyLeadership,
			LegacyReplication: opts.UnbatchedAblation,
		}
		n := newNode(cfg, c.transport, rng.Stream(int64(i)), c.applier(st))
		c.nodes = append(c.nodes, n)
		c.states = append(c.states, st)
		c.transport.attach(n)
	}
	for _, n := range c.nodes {
		n.start(opts.TickInterval)
	}
	c.wg.Add(2)
	go func() {
		defer c.wg.Done()
		c.leaseExpiryLoop()
	}()
	go func() {
		defer c.wg.Done()
		c.batchLoop()
	}()
	if _, err := c.WaitLeader(10 * time.Second); err != nil {
		c.Stop()
		return nil, err
	}
	return c, nil
}

// applier builds the synchronous apply callback for one replica: decode
// the committed entry — either a single command or a group-commit batch
// envelope — apply each command in order to this node's state replica
// (with per-replica ReqID dedup so retried proposals never
// double-apply) and complete the client waiter for each request. The
// whole envelope lives in one Raft entry, so a batch is atomic with
// respect to replication and snapshotting; sub-commands still apply
// (and emit watch events) individually, at their own revisions.
//
// The decode target is a per-replica scratch command reused across
// entries (including its Batch backing array): applyFunc runs under the
// owning node's mutex, so there is never a concurrent decode into the
// same scratch, and the state machine copies everything it retains.
func (c *Cluster) applier(st *storeState) applyFunc {
	scratch := new(command)
	return func(a Applied) {
		if err := decodeCommand(a.Data, scratch); err != nil {
			return
		}
		if scratch.Op == opBatch {
			for i := range scratch.Batch {
				c.applyOne(st, &scratch.Batch[i])
			}
		} else {
			c.applyOne(st, scratch)
		}
		// One apply barrier broadcast per entry (not per sub-command):
		// wakes leaderState waiters for read-your-writes checks.
		st.signalApply()
	}
}

// applyOne applies a single command to one replica and fans the result
// back to its waiter.
func (c *Cluster) applyOne(st *storeState, cmd *command) {
	res := st.apply(cmd)
	if cmd.Op == opGrantLease && res.err == nil {
		// Arm the expiry loop from the apply path: by the time the wake
		// lands, the lease already exists in this replica's state, so
		// the loop's anyLeases() re-check cannot race to a stale false
		// and drop the only wake (the Grant-side arm used to run after
		// propose returned, outside the apply ordering).
		select {
		case c.leaseCh <- struct{}{}:
		default:
		}
	}
	c.mu.Lock()
	if _, ok := c.applied[cmd.ReqID]; !ok {
		c.applied[cmd.ReqID] = res
	}
	w := c.waiters[cmd.ReqID]
	delete(c.waiters, cmd.ReqID)
	c.mu.Unlock()
	if w != nil {
		select {
		case w <- res:
		default:
		}
	}
}

// leaseExpiryLoop revokes expired leases via consensus so all replicas
// delete lease-bound keys identically. The loop is event-aware: it only
// arms a clock timer while leases exist, waiting on the Grant signal
// otherwise — a lease-free cluster holds no recurring virtual-clock
// waiter, so an idle platform stays quiescent and simulated clocks can
// jump freely instead of being throttled to TickInterval*4 steps.
func (c *Cluster) leaseExpiryLoop() {
	for {
		if !c.anyLeases() {
			select {
			case <-c.stopCh:
				return
			case <-c.leaseCh:
			}
		}
		t := c.opts.Clock.NewTimer(c.opts.TickInterval * 4)
		select {
		case <-c.stopCh:
			t.Stop()
			return
		case <-t.C:
			li := c.leaderIndex()
			if li < 0 {
				continue
			}
			for _, id := range c.states[li].expiredLeases() {
				// Best-effort: a failed proposal retries next tick.
				c.propose(&command{Op: opExpireLease, Lease: id}) //nolint:errcheck
			}
		}
	}
}

// leaderIndex returns the current leader's index or -1. When a healed
// partition briefly leaves two nodes claiming leadership, the one with
// the higher term is the real leader — the deposed one just has not
// heard the new term yet — so routing prefers it instead of bouncing
// client traffic (and fault-injection tooling) off the stale claimant.
func (c *Cluster) leaderIndex() int {
	best, bestTerm := -1, uint64(0)
	for i, n := range c.nodes {
		if c.transport.isIsolated(i) {
			continue
		}
		if ok, term := n.leaderTerm(); ok && (best < 0 || term > bestTerm) {
			best, bestTerm = i, term
		}
	}
	return best
}

// notifyLeadership broadcasts a leadership / topology change to every
// event-driven waiter (WaitLeader, the batch loop, leaderState).
func (c *Cluster) notifyLeadership() {
	c.leaderMu.Lock()
	close(c.leaderSig)
	c.leaderSig = make(chan struct{})
	c.leaderMu.Unlock()
}

// leadershipSignal returns a channel that closes on the next leadership
// or topology change. Capture it BEFORE checking leaderIndex so a
// concurrent change cannot be missed.
func (c *Cluster) leadershipSignal() <-chan struct{} {
	c.leaderMu.Lock()
	defer c.leaderMu.Unlock()
	return c.leaderSig
}

// WaitLeader blocks until a leader is elected. Event-driven: the wait
// parks on the leadership-change broadcast rather than poll-sleeping,
// with an election-timeout-scale timer only as a safety net while
// leaderless (a cluster with a stable leader holds no waiter at all).
// Timers run on the configured Clock so simulated-clock runs stay
// deterministic, but the broadcast wake is clock-independent: a real
// election completing unsticks a stalled FakeClock waiter.
func (c *Cluster) WaitLeader(timeout time.Duration) (int, error) {
	clk := c.opts.Clock
	deadline := clk.Now().Add(timeout)
	for {
		sig := c.leadershipSignal()
		if li := c.leaderIndex(); li >= 0 {
			return li, nil
		}
		if !clk.Now().Before(deadline) {
			return -1, fmt.Errorf("etcd: no leader within %v", timeout)
		}
		t := clk.NewTimer(c.opts.TickInterval * electionTicksMax)
		select {
		case <-sig:
		case <-t.C:
			// Safety net: covers wake-free transitions such as an
			// isolation heal racing this registration.
		case <-c.stopCh:
			t.Stop()
			return -1, ErrStopped
		}
		t.Stop()
	}
}

// enqueue adds a command to the group-commit queue and signals the
// batch loop.
func (c *Cluster) enqueue(cmd *command) {
	c.batchMu.Lock()
	c.batchQ = append(c.batchQ, cmd)
	c.batchMu.Unlock()
	select {
	case c.batchCh <- struct{}{}:
	default:
	}
}

// batchLoop drains the proposal queue: everything queued while the
// previous Raft entry was being proposed is flushed as one batch
// envelope, so the commands-per-entry ratio adapts to load (1 when
// idle, large under bursts) with no added latency — there is no timer
// holding a batch open.
func (c *Cluster) batchLoop() {
	for {
		select {
		case <-c.stopCh:
			return
		case <-c.batchCh:
		}
		for {
			c.batchMu.Lock()
			q := c.batchQ
			c.batchQ = nil
			c.batchMu.Unlock()
			if len(q) == 0 {
				break
			}
			c.flush(q)
		}
	}
}

// flush encodes one drained queue into a single Raft entry — the
// command itself for a batch of one, a batch envelope otherwise — and
// proposes it to the leader.
func (c *Cluster) flush(q []*command) {
	c.obsBatch.Observe(float64(len(q)))
	for n := uint64(len(q)); ; {
		cur := c.statMaxBatch.Load()
		if n <= cur || c.statMaxBatch.CompareAndSwap(cur, n) {
			break
		}
	}
	var data []byte
	var err error
	if len(q) == 1 {
		data, err = encodeEntry(q[0], c.opts.GobCodec)
		if err != nil {
			c.failWaiter(q[0].ReqID, err)
			return
		}
	} else {
		env := command{Op: opBatch, Batch: make([]command, len(q))}
		for i, cmd := range q {
			env.Batch[i] = *cmd
		}
		data, err = encodeEntry(&env, c.opts.GobCodec)
		if err != nil {
			// A poison command must not take the batch down with it (or
			// keep re-landing in subsequent batches): re-encode each
			// command alone, fail exactly the unencodable ones, and
			// propose the rest as their own entries. (Only the gob arm
			// can fail; the binary codec is total over command values.)
			for _, cmd := range q {
				one, err := encodeEntry(cmd, c.opts.GobCodec)
				if err != nil {
					c.failWaiter(cmd.ReqID, err)
					continue
				}
				c.proposeEntry(one)
			}
			return
		}
	}
	c.proposeEntry(data)
}

// failWaiter completes a proposal's waiter with a terminal error and
// caches it so a raced re-enqueue check sees the same outcome.
func (c *Cluster) failWaiter(reqID uint64, err error) {
	res := result{err: err}
	c.mu.Lock()
	if _, ok := c.applied[reqID]; !ok {
		c.applied[reqID] = res
	}
	w := c.waiters[reqID]
	delete(c.waiters, reqID)
	c.mu.Unlock()
	if w != nil {
		select {
		case w <- res:
		default:
		}
	}
}

// proposeEntry hands one encoded entry to the current leader, parking
// on the leadership broadcast while no leader is reachable, then waits
// for the entry to apply (the group-commit pacing: commands arriving
// during the replication round accumulate into the next batch). Giving
// up (deadline or stop) is safe: every waiter re-enqueues its own
// command until its ProposalTimeout, and ReqID dedup keeps re-proposals
// exactly-once.
func (c *Cluster) proposeEntry(data []byte) {
	clk := c.opts.Clock
	deadline := clk.Now().Add(c.opts.ProposalTimeout)
	for {
		sig := c.leadershipSignal()
		if li := c.leaderIndex(); li >= 0 {
			if idx, _, err := c.nodes[li].Propose(data); err == nil {
				c.statEntries.Add(1)
				c.awaitApplied(li, idx, deadline)
				return
			}
		}
		if clk.Now().After(deadline) {
			return
		}
		t := clk.NewTimer(c.opts.TickInterval * electionTicksMax)
		select {
		case <-sig:
		case <-t.C:
		case <-c.stopCh:
			t.Stop()
			return
		}
		t.Stop()
	}
}

// awaitApplied parks on the proposing replica's apply barrier until it
// has applied through idx — the single-in-flight-entry window that
// makes group commit actually group: without it the batch loop drains
// the queue faster than proposals arrive and every entry carries one
// command. Bails on leadership movement or the deadline; command-level
// retry (propose's re-enqueue) owns correctness.
func (c *Cluster) awaitApplied(li int, idx uint64, deadline time.Time) {
	clk := c.opts.Clock
	st := c.states[li]
	for {
		sig := st.applyBarrier()
		if c.nodes[li].appliedAtLeast(idx) {
			return
		}
		if c.leaderIndex() != li || clk.Now().After(deadline) {
			return
		}
		// Safety-net timer only: the apply barrier is the wake path.
		t := clk.NewTimer(c.opts.TickInterval * 2)
		select {
		case <-sig:
		case <-t.C:
		case <-c.stopCh:
			t.Stop()
			return
		}
		t.Stop()
	}
}

// propose submits a command for group commit and waits for it to apply;
// it retries across leader changes by re-enqueueing under the same
// request ID so the state machine applies it exactly once.
func (c *Cluster) propose(cmd *command) (result, error) {
	if c.stopped.Load() {
		return result{}, ErrStopped
	}
	cmd.ReqID = c.reqSeq.Add(1)
	c.statCommands.Add(1)
	if c.obsPropose != nil {
		start := c.opts.Clock.Now()
		defer func() { c.obsPropose.ObserveDuration(c.opts.Clock.Now().Sub(start)) }()
	}
	ch := make(chan result, 1)
	c.mu.Lock()
	c.waiters[cmd.ReqID] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.waiters, cmd.ReqID)
		c.mu.Unlock()
	}()
	if c.opts.UnbatchedAblation {
		return c.proposeDirect(cmd, ch)
	}
	c.enqueue(cmd)

	clk := c.opts.Clock
	deadline := clk.Now().Add(c.opts.ProposalTimeout)
	for {
		// Wait for apply. A stoppable timer (not After) so a FakeClock
		// holds no stale waiters that would drag its auto-advancer
		// forward; the result arrives through ch independently of the
		// clock.
		t := clk.NewTimer(20 * c.opts.TickInterval)
		select {
		case res := <-ch:
			t.Stop()
			c.noteRev(res.rev)
			return res, res.err
		case <-t.C:
			// Check for dedup-applied result (another replica applied
			// and the waiter raced), then re-enqueue: leadership may
			// have moved before commit.
		case <-c.stopCh:
			t.Stop()
			return result{}, ErrStopped
		}
		c.mu.Lock()
		res, done := c.applied[cmd.ReqID]
		c.mu.Unlock()
		if done {
			c.noteRev(res.rev)
			return res, res.err
		}
		if clk.Now().After(deadline) {
			return result{}, ErrTimeout
		}
		c.enqueue(cmd)
	}
}

// proposeDirect is the seed's proposal hot path, kept verbatim for the
// unbatched ablation: every caller encodes its own command as its own
// Raft entry and proposes it directly, so concurrent callers overlap
// replication rounds exactly as they did before group commit (no
// queue, no pacing). Exactly-once still holds via ReqID dedup. The
// entry codec follows Options.GobCodec, so the batching and codec
// ablations compose orthogonally.
func (c *Cluster) proposeDirect(cmd *command, ch chan result) (result, error) {
	data, err := encodeEntry(cmd, c.opts.GobCodec)
	if err != nil {
		return result{}, err
	}
	clk := c.opts.Clock
	deadline := clk.Now().Add(c.opts.ProposalTimeout)
	for {
		li := c.leaderIndex()
		if li >= 0 {
			if _, _, err := c.nodes[li].Propose(data); err == nil {
				c.statEntries.Add(1)
				t := clk.NewTimer(20 * c.opts.TickInterval)
				select {
				case res := <-ch:
					t.Stop()
					c.noteRev(res.rev)
					return res, res.err
				case <-t.C:
					// Re-propose if leadership moved before commit.
				case <-c.stopCh:
					t.Stop()
					return result{}, ErrStopped
				}
				c.mu.Lock()
				res, done := c.applied[cmd.ReqID]
				c.mu.Unlock()
				if done {
					c.noteRev(res.rev)
					return res, res.err
				}
			}
		}
		if clk.Now().After(deadline) {
			return result{}, ErrTimeout
		}
		clk.Sleep(c.opts.TickInterval)
	}
}

// opExpireLease revokes a lease due to TTL expiry (events surface as
// EventExpire rather than EventDelete).
const opExpireLease cmdOp = 99

// opBatch marks a group-commit envelope: command.Batch carries the
// drained proposal queue, replicated as one Raft entry and applied
// in order.
const opBatch cmdOp = 98

// Put stores value under key, optionally bound to a lease.
func (c *Cluster) Put(key string, value []byte, lease int64) (uint64, error) {
	res, err := c.propose(&command{Op: opPut, Key: key, Value: value, Lease: lease})
	return res.rev, err
}

// Delete removes a key. It reports whether the key existed.
func (c *Cluster) Delete(key string) (bool, error) {
	res, err := c.propose(&command{Op: opDelete, Key: key})
	return res.ok, err
}

// DeletePrefix removes every key under prefix, returning whether any
// existed. FfDL uses this to erase a DL job's coordination state after it
// terminates (§3.2: "a DL job's data is erased after it terminates").
func (c *Cluster) DeletePrefix(prefix string) (bool, error) {
	res, err := c.propose(&command{Op: opDelete, Key: prefix, Prefix: true})
	return res.ok, err
}

// Grant creates a lease with the given TTL. The expiry loop (which
// holds no timer while lease-free) is armed from the apply path, not
// here: see applyOne.
func (c *Cluster) Grant(ttl time.Duration) (int64, error) {
	res, err := c.propose(&command{Op: opGrantLease, TTL: ttl})
	return res.leaseID, err
}

// KeepAlive refreshes a lease's TTL.
func (c *Cluster) KeepAlive(id int64) error {
	_, err := c.propose(&command{Op: opKeepAlive, Lease: id})
	return err
}

// Revoke deletes a lease and all keys bound to it.
func (c *Cluster) Revoke(id int64) error {
	_, err := c.propose(&command{Op: opRevokeLease, Lease: id})
	return err
}

// CompareAndSwap puts value under key iff the key's current ModRevision
// equals expectRev (0 means the key must not exist). It reports whether
// the swap happened.
func (c *Cluster) CompareAndSwap(key string, expectRev uint64, value []byte) (bool, error) {
	res, err := c.propose(&command{
		Op: opTxnPut, Key: key, Value: value, CmpKey: key, CmpRev: expectRev,
	})
	return res.ok, err
}

// Get returns the value for key from the leader's replica.
func (c *Cluster) Get(key string) (KV, bool, error) {
	st, err := c.leaderState()
	if err != nil {
		return KV{}, false, err
	}
	kv, ok := st.get(key)
	return kv, ok, nil
}

// List returns all keys under prefix from the leader's replica.
func (c *Cluster) List(prefix string) ([]KV, error) {
	st, err := c.leaderState()
	if err != nil {
		return nil, err
	}
	return st.list(prefix), nil
}

// noteRev records the highest revision handed back to any client, which
// reads then use as a read-your-writes barrier.
func (c *Cluster) noteRev(rev uint64) {
	for {
		cur := c.lastRev.Load()
		if rev <= cur || c.lastRev.CompareAndSwap(cur, rev) {
			return
		}
	}
}

// leaderState returns the leader's replica once it has applied every
// revision previously acknowledged to a client. A proposal is
// acknowledged as soon as *some* replica applies it; waiting here closes
// the window in which the leader's own apply loop lags, guaranteeing
// read-your-writes for Get/List/Watch registration. Event-driven: the
// wait parks on the replica's apply barrier (one broadcast per applied
// entry) instead of poll-sleeping; a caught-up leader returns without
// arming any timer.
func (c *Cluster) leaderState() (*storeState, error) {
	li := c.leaderIndex()
	if li < 0 {
		var err error
		li, err = c.WaitLeader(c.opts.ProposalTimeout)
		if err != nil {
			return nil, err
		}
	}
	st := c.states[li]
	want := c.lastRev.Load()
	clk := c.opts.Clock
	deadline := clk.Now().Add(c.opts.ProposalTimeout)
	for {
		sig := st.applyBarrier()
		if st.revision() >= want {
			return st, nil
		}
		if clk.Now().After(deadline) {
			return nil, ErrTimeout
		}
		// The timer is a safety net for leadership moving mid-wait (the
		// new leader's applies would not signal this replica's barrier).
		t := clk.NewTimer(c.opts.TickInterval * 2)
		select {
		case <-sig:
		case <-t.C:
		case <-c.stopCh:
			t.Stop()
			return nil, ErrStopped
		}
		t.Stop()
		if li2 := c.leaderIndex(); li2 >= 0 && li2 != li {
			li = li2
			st = c.states[li]
		}
	}
}

// Isolate cuts a node off from the cluster (on=true), modeling a crash or
// partition; on=false heals it and the node catches up via replication.
// Counts as a topology change for the leadership broadcast: healing can
// make an existing leader reachable again without any role transition.
func (c *Cluster) Isolate(id int, on bool) {
	c.transport.Isolate(id, on)
	c.notifyLeadership()
}

// CutLink severs or heals the link between two members.
func (c *Cluster) CutLink(a, b int, on bool) {
	c.transport.CutLink(a, b, on)
	c.notifyLeadership()
}

// Leader returns the current leader id, or -1.
func (c *Cluster) Leader() int { return c.leaderIndex() }

// Clock returns the clock the cluster runs on, so chaos harnesses can
// pace their convergence waits in the same (possibly virtual) time.
func (c *Cluster) Clock() sim.Clock { return c.opts.Clock }

// SnapshotRestores returns the total number of snapshot restores applied
// across all replicas — the denominator of the watch-churn experiment's
// resyncs-per-restore metric.
func (c *Cluster) SnapshotRestores() uint64 {
	var n uint64
	for _, st := range c.states {
		n += st.restoreCount()
	}
	return n
}

// Replicas returns the cluster size.
func (c *Cluster) Replicas() int { return len(c.nodes) }

// ClusterStats reports proposal and replication traffic totals since
// boot — the throughput experiment's batching-efficacy accounting.
type ClusterStats struct {
	// Commands is the number of client commands proposed.
	Commands uint64
	// Entries is the number of Raft entries those commands were packed
	// into (batch envelopes count once). Commands/Entries is the group
	// commit ratio; 1.0 means no batching happened (or the ablation).
	Entries uint64
	// MaxBatch is the largest commands-per-entry batch observed.
	MaxBatch uint64
	// AppendsSent / EntriesSent are append+snapshot messages and log
	// entries shipped across all nodes. Pipelined replication keeps
	// EntriesSent near Entries×(replicas-1); the legacy full-suffix
	// resend inflates it quadratically under concurrency.
	AppendsSent uint64
	EntriesSent uint64
}

// Stats returns the cluster's traffic counters.
func (c *Cluster) Stats() ClusterStats {
	s := ClusterStats{
		Commands: c.statCommands.Load(),
		Entries:  c.statEntries.Load(),
		MaxBatch: c.statMaxBatch.Load(),
	}
	for _, n := range c.nodes {
		m, e := n.trafficStats()
		s.AppendsSent += m
		s.EntriesSent += e
	}
	return s
}

// StateEqual reports whether two replicas hold identical KV maps; used by
// invariant tests.
func (c *Cluster) StateEqual(a, b int) bool {
	ka := c.states[a].list("")
	kb := c.states[b].list("")
	if len(ka) != len(kb) {
		return false
	}
	for i := range ka {
		if ka[i].Key != kb[i].Key || !bytes.Equal(ka[i].Value, kb[i].Value) ||
			ka[i].ModRevision != kb[i].ModRevision {
			return false
		}
	}
	return true
}

// Stop terminates the cluster.
func (c *Cluster) Stop() {
	if !c.stopped.CompareAndSwap(false, true) {
		return
	}
	close(c.stopCh)
	for _, n := range c.nodes {
		n.stop()
	}
	c.transport.stop()
	c.wg.Wait()
}
