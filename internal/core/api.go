package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"github.com/ffdl/ffdl/internal/mongo"
	"github.com/ffdl/ffdl/internal/obs"
	"github.com/ffdl/ffdl/internal/resilience"
	"github.com/ffdl/ffdl/internal/rpc"
	"github.com/ffdl/ffdl/internal/sched"
	"github.com/ffdl/ffdl/internal/sim"
	"github.com/ffdl/ffdl/internal/tenant"
)

// RPC message types (gob-encoded).

// SubmitArgs submits a job.
type SubmitArgs struct{ Manifest Manifest }

// SubmitReply returns the assigned job id.
type SubmitReply struct{ JobID string }

// JobArgs addresses one job.
type JobArgs struct{ JobID string }

// StatusReply returns status and history. QueuePos is the job's 1-based
// position in the tenant dispatch queue while Status is QUEUED (0
// otherwise, or when tenancy is disabled). Degraded marks a reply served
// from the status bus's replay window while the metadata store is
// unavailable: Status and History are the latest transitions the bus
// retains (History may be truncated at the front), and QueuePos is
// unavailable.
type StatusReply struct {
	JobID    string
	Status   JobStatus
	QueuePos int
	History  []StatusEntry
	Degraded bool
}

// TenantArgs addresses one tenant.
type TenantArgs struct{ User string }

// TenantReply returns one tenant record plus its live GPU usage.
type TenantReply struct {
	Tenant tenant.Record
	InUse  int
}

// TenantsReply lists tenant records.
type TenantsReply struct{ Tenants []tenant.Record }

// SetTenantArgs installs or updates a tenant record.
type SetTenantArgs struct{ Tenant tenant.Record }

// ListArgs filters jobs by user ("" = all).
type ListArgs struct{ User string }

// ListReply returns job records.
type ListReply struct{ Jobs []JobRecord }

// LogsArgs requests a job's logs; Follow streams live lines.
// FromOffset resumes from a line offset (LogLine.Offset): only lines
// with Offset >= FromOffset are delivered, so a follower can reconnect
// — across client retries or API replica restarts — without missing or
// duplicating lines.
type LogsArgs struct {
	JobID      string
	Follow     bool
	Search     string
	FromOffset uint64
}

// LogItem is one streamed log line; Line.Offset is the resume token.
type LogItem struct{ Line LogLine }

// WatchArgs opens a status watch stream from a history sequence number
// (1-based; FromSeq <= 1 streams the full history first).
type WatchArgs struct {
	JobID   string
	FromSeq int
}

// StatusItem is one streamed status transition. Seq is the transition's
// index in the job's history, letting clients resume across replica
// crashes without missing or duplicating transitions.
type StatusItem struct {
	Seq   int
	Entry StatusEntry
}

// MetricsArgs requests a metrics snapshot.
type MetricsArgs struct{}

// MetricsReply carries one consistent snapshot of every instrument in
// the platform registry (counters, gauges, histograms, collector-
// mirrored subsystem stats).
type MetricsReply struct{ Snapshot obs.Snapshot }

// TraceReply carries one job's trace span tree.
type TraceReply struct{ Trace obs.Trace }

// apiReplica is one instance of the API microservice. The paper runs
// these as a replica set behind the K8s service registry; here each
// replica is an RPC server registered into the shared Registry, with
// crash/restart modeling for Table 3.
type apiReplica struct {
	p     *Platform
	index int
	lcm   *rpc.Balancer

	srv  *rpc.Server
	addr string
}

func newAPIReplica(p *Platform, index int) (*apiReplica, error) {
	a := &apiReplica{p: p, index: index, lcm: rpc.NewBalancer(p.Registry, ServiceLCM)}
	a.lcm.Use(p.res.apiLCM)
	if err := a.listen(); err != nil {
		return nil, err
	}
	return a, nil
}

func (a *apiReplica) listen() error {
	srv := rpc.NewServer()
	srv.Register("API.Submit", SubmitArgs{}, a.handleSubmit)
	srv.Register("API.Status", JobArgs{}, a.handleStatus)
	srv.Register("API.List", ListArgs{}, a.handleList)
	srv.Register("API.Quota", TenantArgs{}, a.handleQuota)
	srv.Register("API.SetQuota", SetTenantArgs{}, a.handleSetQuota)
	srv.Register("API.Tenants", TenantArgs{}, a.handleTenants)
	srv.Register("API.Halt", JobArgs{}, a.control(controlHalt))
	srv.Register("API.Resume", JobArgs{}, a.control(controlResume))
	srv.Register("API.Terminate", JobArgs{}, a.control(controlTerminate))
	srv.Register("API.Metrics", MetricsArgs{}, a.handleMetrics)
	srv.Register("API.Trace", JobArgs{}, a.handleTrace)
	srv.RegisterStream("API.Logs", LogsArgs{}, a.handleLogs)
	srv.RegisterStream("API.Watch", WatchArgs{}, a.handleWatch)
	addr, err := srv.Listen()
	if err != nil {
		return fmt.Errorf("core: api replica %d: %w", a.index, err)
	}
	a.srv, a.addr = srv, addr
	a.p.Registry.Add(ServiceAPI, addr)
	return nil
}

// handleSubmit stores metadata durably BEFORE acknowledging: "the API
// layer stores all the metadata in MongoDB before acknowledging the
// request. This ensures that submitted jobs are never lost" (§3.2).
//
// With the tenant subsystem enabled, submissions are not gated here:
// any job from a registered tenant is accepted, persisted as QUEUED,
// and admitted later by the dispatcher — over-capacity work waits in
// the queue instead of being rejected (§3.6). Without it, the legacy
// Config.Admission gate still rejects over-capacity submits, but the
// footprint is only kept once the MongoDB insert succeeds, and Admit is
// idempotent per job ID, so API replica retries cannot double-count.
func (a *apiReplica) handleSubmit(_ context.Context, arg any) (any, error) {
	req := arg.(SubmitArgs)
	m := req.Manifest
	if err := m.Validate(); err != nil {
		return nil, err
	}
	status := StatusPending
	message := "job submitted"
	if a.p.Dispatcher != nil {
		// The tenant lookup rides the mongo edge policy like every other
		// metadata read: a store outage here must shed retryably, not
		// masquerade as "no tenant record".
		var known bool
		if err := a.p.mongoDo(func() error {
			var err error
			_, known, err = a.p.Tenants.Lookup(m.User)
			return err
		}); err != nil {
			if mongoOutageErr(err) {
				a.p.Metrics.Inc("api.degraded_sheds")
				return nil, degradedSubmitErr(err)
			}
			return nil, fmt.Errorf("core: tenant lookup: %w", err)
		}
		if !known {
			return nil, fmt.Errorf("core: user %q has no tenant record (set a quota first)", m.User)
		}
		status = StatusQueued
		message = "job queued for admission"
	}
	// Degraded mode sheds submissions up front: with the metadata store's
	// breaker open the insert below could only fail (or queue behind a
	// dead store), and the "never lost after acknowledge" contract (§3.2)
	// forbids acknowledging anything not durably persisted.
	if a.p.Degraded() {
		a.p.Metrics.Inc("api.degraded_sheds")
		return nil, degradedSubmitErr(fmt.Errorf("submission shed, breaker open"))
	}
	jobID := a.p.nextJobID()
	if adm := a.p.Admission; adm != nil && a.p.Dispatcher == nil {
		dec, err := adm.Admit(manifestGang(&m, jobID))
		if dec == sched.Reject {
			return nil, fmt.Errorf("core: admission rejected job: %w", err)
		}
	}
	now := a.p.clock.Now()
	doc := manifestToDoc(m)
	doc["_id"] = jobID
	doc["status"] = string(status)
	doc["submitted"] = now.Format(time.RFC3339Nano)
	doc["history"] = []any{map[string]any{
		"status": string(status), "time": now.Format(time.RFC3339Nano),
		"message": message,
	}}
	if err := a.p.mongoDo(func() error {
		_, err := a.p.Jobs.Insert(doc)
		return err
	}); err != nil {
		if adm := a.p.Admission; adm != nil && a.p.Dispatcher == nil {
			adm.Release(jobID) // keep accounting exact on failed persists
		}
		if mongoOutageErr(err) {
			a.p.Metrics.Inc("api.degraded_sheds")
			return nil, degradedSubmitErr(err)
		}
		return nil, fmt.Errorf("core: persist job: %w", err)
	}
	// Open the job's trace before the bus announcement: transitions
	// racing in behind the publish must find the root span in place.
	// The timestamps reuse the history[0] clock read, so the trace and
	// the durable history agree exactly.
	a.p.Tracer.Begin(jobID, now)
	a.p.Tracer.Phase(jobID, string(status), now)
	// Announce the new job on the status bus: the tenant dispatcher (for
	// QUEUED), the LCM recovery loop (for PENDING) and any WatchStatus
	// subscriber wake immediately.
	a.p.bus.Publish(StatusEvent{
		JobID:  jobID,
		Seq:    1,
		Status: status,
		Entry:  StatusEntry{Status: status, Time: now, Message: message},
	})
	if a.p.Dispatcher == nil {
		// Hand off to the LCM asynchronously; if every LCM replica is
		// down the LCM recovery loop will pick the job up from MongoDB
		// later. (Queued jobs reach the LCM through the dispatcher.)
		go a.deployWithRetry(jobID)
	}
	return SubmitReply{JobID: jobID}, nil
}

// handleQuota returns one tenant's record and live GPU usage.
func (a *apiReplica) handleQuota(_ context.Context, arg any) (any, error) {
	req := arg.(TenantArgs)
	if a.p.Tenants == nil {
		return nil, errTenancyDisabled
	}
	rec, ok := a.p.Tenants.Get(req.User)
	if !ok {
		return nil, fmt.Errorf("core: no tenant record for %q", req.User)
	}
	reply := TenantReply{Tenant: rec}
	if a.p.Admission != nil {
		reply.InUse = a.p.Admission.Usage(req.User)
	}
	return reply, nil
}

// handleSetQuota installs or updates a tenant record. The write lands
// in MongoDB first; dispatchers on every platform process observe it
// through the tenants change feed.
func (a *apiReplica) handleSetQuota(_ context.Context, arg any) (any, error) {
	req := arg.(SetTenantArgs)
	if a.p.Tenants == nil {
		return nil, errTenancyDisabled
	}
	if err := a.p.Tenants.Put(req.Tenant); err != nil {
		return nil, err
	}
	return TenantReply{Tenant: req.Tenant}, nil
}

// handleTenants lists all tenant records.
func (a *apiReplica) handleTenants(_ context.Context, arg any) (any, error) {
	if a.p.Tenants == nil {
		return nil, errTenancyDisabled
	}
	return TenantsReply{Tenants: a.p.Tenants.List()}, nil
}

var errTenancyDisabled = errors.New("core: tenancy is not enabled on this platform")

func (a *apiReplica) deployWithRetry(jobID string) {
	for attempt := 0; attempt < 50; attempt++ {
		err := a.lcm.Call(context.Background(), "LCM.Deploy", JobArgs{JobID: jobID}, nil)
		if err == nil {
			return
		}
		select {
		case <-a.p.stopCh:
			return
		case <-a.p.clock.After(a.p.cfg.PollInterval * 4):
		}
	}
}

func (a *apiReplica) handleStatus(_ context.Context, arg any) (any, error) {
	req := arg.(JobArgs)
	doc, err := a.p.findJob(req.JobID)
	if err != nil {
		// Graceful degradation: while the metadata store is unavailable,
		// serve the latest transitions the status bus retains (flagged
		// Degraded) instead of failing the read. Not-found and other
		// store answers surface as before.
		if mongoOutageErr(err) {
			if reply, ok := a.p.degradedStatus(req.JobID); ok {
				a.p.Metrics.Inc("api.degraded_reads")
				return reply, nil
			}
		}
		return nil, fmt.Errorf("core: job %s: %w", req.JobID, err)
	}
	rec := docToRecord(doc)
	reply := StatusReply{JobID: rec.ID, Status: rec.Status, History: rec.History}
	if rec.Status == StatusQueued && a.p.Dispatcher != nil {
		reply.QueuePos, _ = a.p.Dispatcher.Position(rec.ID)
	}
	return reply, nil
}

func (a *apiReplica) handleList(_ context.Context, arg any) (any, error) {
	req := arg.(ListArgs)
	filter := mongo.Filter{}
	if req.User != "" {
		filter["user"] = req.User
	}
	docs := a.p.Jobs.Find(filter, mongo.FindOpts{SortBy: "_id"})
	reply := ListReply{}
	for _, d := range docs {
		reply.Jobs = append(reply.Jobs, docToRecord(d))
	}
	return reply, nil
}

// handleMetrics returns one consistent snapshot of the platform's
// metrics registry — counters, gauges, latency histograms and the
// collector-mirrored subsystem stats. This is the RPC behind
// GET /v1/metrics and `ffdl-cli metrics`.
func (a *apiReplica) handleMetrics(_ context.Context, _ any) (any, error) {
	return MetricsReply{Snapshot: a.p.Obs.Snapshot()}, nil
}

// handleTrace returns a job's span tree. The live tracer is preferred —
// it carries sub-spans (etcd proposes, the LCM deploy) — but when the
// tracer missed the job (bounded retention evicted it, the platform
// runs DisableObs, or the job was submitted by another process) the
// tree is reconstructed from the job's durable status history, which
// carries the same lifecycle phases at the same timestamps.
func (a *apiReplica) handleTrace(_ context.Context, arg any) (any, error) {
	req := arg.(JobArgs)
	if t, ok := a.p.Tracer.Trace(req.JobID); ok {
		return TraceReply{Trace: t}, nil
	}
	rec, err := a.jobRecord(req.JobID)
	if err != nil {
		return nil, err
	}
	return TraceReply{Trace: traceFromHistory(rec)}, nil
}

// traceFromHistory rebuilds a job's phase-level trace from its status
// history: each history entry opens a phase child that closes when the
// next entry lands, and a terminal status closes the root — so the root
// duration still equals the submit→terminal wall time, matching what
// the live tracer records. Sub-spans are lost; they exist only in the
// tracer's memory.
func traceFromHistory(rec JobRecord) obs.Trace {
	t := obs.Trace{JobID: rec.ID}
	if len(rec.History) == 0 {
		return t
	}
	root := &obs.Span{Name: "job", Start: rec.History[0].Time}
	for i, h := range rec.History {
		sp := &obs.Span{Name: string(h.Status), Start: h.Time}
		if i+1 < len(rec.History) {
			sp.End = rec.History[i+1].Time
		} else if h.Status.Terminal() {
			sp.End = h.Time
		}
		root.Children = append(root.Children, sp)
	}
	last := rec.History[len(rec.History)-1]
	if last.Status.Terminal() {
		root.End = last.Time
	}
	t.Root = root
	return t
}

// control routes HALT/RESUME/TERMINATE through the LCM.
func (a *apiReplica) control(verb string) rpc.Handler {
	method := map[string]string{
		controlHalt:      "LCM.Halt",
		controlResume:    "LCM.Resume",
		controlTerminate: "LCM.Terminate",
	}[verb]
	return func(ctx context.Context, arg any) (any, error) {
		req := arg.(JobArgs)
		return nil, a.lcm.Call(ctx, method, req, nil)
	}
}

// handleLogs streams a job's collected logs; with Follow it keeps
// streaming live lines ("Reliable streaming of logs from the job,
// irrespective of the stage it is in", §2).
func (a *apiReplica) handleLogs(ctx context.Context, arg any, send func(any) error) error {
	req := arg.(LogsArgs)
	var live <-chan LogLine
	var cancel func()
	if req.Follow {
		// Subscribe before draining the backlog so no line is missed.
		live, cancel = a.p.Metrics.StreamLogs(req.JobID)
		defer cancel()
	}
	backlog := a.p.Metrics.LogsFrom(req.JobID, req.FromOffset)
	// next is the first undelivered line offset: the backlog/live seam
	// and any lines buffered on both sides dedup by offset, not by
	// counting.
	next := req.FromOffset
	for _, l := range backlog {
		if req.Search != "" && !strings.Contains(l.Text, req.Search) {
			next = l.Offset + 1
			continue
		}
		if err := send(LogItem{Line: l}); err != nil {
			return err
		}
		next = l.Offset + 1
	}
	if !req.Follow {
		return nil
	}
	for {
		select {
		case <-ctx.Done():
			return nil
		case l, ok := <-live:
			if !ok {
				return nil
			}
			if l.Offset < next {
				continue // already sent from the backlog
			}
			next = l.Offset + 1
			if req.Search != "" && !strings.Contains(l.Text, req.Search) {
				continue
			}
			if err := send(LogItem{Line: l}); err != nil {
				return err
			}
		}
	}
}

// handleWatch streams a job's status transitions in history order. The
// bus subscription is taken before the MongoDB backlog is read, so no
// transition can fall between backlog and live stream; any bus gap
// (slow subscriber, dropped event) is refilled from MongoDB, which
// remains the source of truth. The stream ends once the job reaches a
// terminal status.
func (a *apiReplica) handleWatch(ctx context.Context, arg any, send func(any) error) error {
	req := arg.(WatchArgs)
	next := req.FromSeq
	if next < 1 {
		next = 1
	}
	live, cancel := a.p.bus.Subscribe(req.JobID, 64)
	defer cancel()

	// refill streams everything the durable history holds from next on;
	// it is the recovery path for any bus shortfall (gap, dropped
	// terminal event) and the initial backlog. done=true ends the
	// stream at a terminal status.
	refill := func() (done bool, err error) {
		rec, err := a.jobRecord(req.JobID)
		if err != nil {
			// Degraded: the metadata store did not answer. The stream
			// survives on live bus events alone — Seq dedup keeps
			// delivery exactly-once — and the safety tick retries the
			// durable reconcile once the store heals. Store answers
			// (job deleted) still end the stream.
			if mongoOutageErr(err) {
				a.p.Metrics.Inc("watch.degraded_refills")
				return false, nil
			}
			return false, err
		}
		if next, err = sendHistoryFrom(rec, next, send); err != nil {
			return false, err
		}
		return rec.Status.Terminal(), nil
	}
	// Fast path: a reconnecting watcher whose resume point is still in
	// the bus's commit log replays from there — no MongoDB read. The
	// replay is only taken when provably complete (contiguous from
	// FromSeq); otherwise fall back to the durable refill.
	if evs, replayed := a.p.bus.ReplayJob(req.JobID, next); replayed {
		a.p.Metrics.Inc("watch.replays")
		for _, ev := range evs {
			if err := send(StatusItem{Seq: ev.Seq, Entry: ev.Entry}); err != nil {
				return err
			}
			next = ev.Seq + 1
			if ev.Status.Terminal() {
				return nil
			}
		}
	} else {
		a.p.Metrics.Inc("watch.refills")
		if done, err := refill(); err != nil || done {
			return err
		}
	}
	// Safety tick: the bus drops events for slow subscribers, and a
	// dropped *terminal* event has no successor to reveal the gap, so
	// the stream must periodically reconcile against MongoDB.
	ticker := a.p.clock.NewTicker(a.p.cfg.PollInterval * 10)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-ticker.C:
			if done, err := refill(); err != nil || done {
				return err
			}
		case ev, ok := <-live:
			if !ok {
				return nil
			}
			if ev.Seq < next {
				continue // already sent from the backlog
			}
			if ev.Seq > next {
				// Gap: the bus dropped events for us. The event that
				// revealed the gap was published after its MongoDB
				// write, so the refill includes it.
				if done, err := refill(); err != nil || done {
					return err
				}
				continue
			}
			if err := send(StatusItem{Seq: ev.Seq, Entry: ev.Entry}); err != nil {
				return err
			}
			next++
			if ev.Status.Terminal() {
				return nil
			}
		}
	}
}

func (a *apiReplica) jobRecord(jobID string) (JobRecord, error) {
	doc, err := a.p.findJob(jobID)
	if err != nil {
		return JobRecord{}, fmt.Errorf("core: job %s: %w", jobID, err)
	}
	return docToRecord(doc), nil
}

// sendHistoryFrom streams rec's history entries with sequence >= next
// and returns the next unsent sequence.
func sendHistoryFrom(rec JobRecord, next int, send func(any) error) (int, error) {
	for i := next - 1; i < len(rec.History); i++ {
		if err := send(StatusItem{Seq: i + 1, Entry: rec.History[i]}); err != nil {
			return next, err
		}
		next = i + 2
	}
	return next, nil
}

// crashAndRestart models a replica crash: the server drops all
// connections, deregisters, then comes back after the configured
// restart delay (Table 3: API 3-5s).
func (a *apiReplica) crashAndRestart() {
	a.p.Registry.Remove(ServiceAPI, a.addr)
	a.srv.Close()
	a.p.Metrics.Inc("api.crashes")
	a.p.wg.Add(1)
	go func() {
		defer a.p.wg.Done()
		a.p.clock.Sleep(a.p.cfg.APIRestartDelay)
		select {
		case <-a.p.stopCh:
			return
		default:
		}
		if err := a.listen(); err == nil {
			a.p.Metrics.Inc("api.restarts")
		}
	}()
}

func (a *apiReplica) stop() {
	a.p.Registry.Remove(ServiceAPI, a.addr)
	a.srv.Close()
}

// Client is the typed client for the FfDL API (the CLI in Fig. 1 talks
// to the same surface).
type Client struct {
	api   *rpc.Balancer
	clock sim.Clock
}

// NewClient returns a client over the given registry, using the wall
// clock for waits and reconnect backoff.
func NewClient(reg *rpc.Registry) *Client {
	return &Client{api: rpc.NewBalancer(reg, ServiceAPI), clock: sim.NewRealClock()}
}

// WithClock rebinds the client's waits to clk (a platform under a
// simulated clock hands its own clock to clients so WaitForStatus and
// watch reconnects do not stall virtual time). It returns the client.
func (c *Client) WithClock(clk sim.Clock) *Client {
	c.clock = clk
	return c
}

// WithResilience installs a client→api resilience policy on the
// client's balancer: transient call failures (every replica briefly
// down, a connection cut mid-dial) retry with backoff instead of
// surfacing. Platform.Client installs the platform's shared policy;
// external constructions may pass their own. It returns the client.
func (c *Client) WithResilience(p *resilience.Policy) *Client {
	c.api.Use(p)
	return c
}

// Submit submits a training job, returning its id.
func (c *Client) Submit(ctx context.Context, m Manifest) (string, error) {
	var reply SubmitReply
	if err := c.api.Call(ctx, "API.Submit", SubmitArgs{Manifest: m}, &reply); err != nil {
		return "", err
	}
	return reply.JobID, nil
}

// Status fetches a job's current status and history.
func (c *Client) Status(ctx context.Context, jobID string) (StatusReply, error) {
	var reply StatusReply
	err := c.api.Call(ctx, "API.Status", JobArgs{JobID: jobID}, &reply)
	return reply, err
}

// List returns jobs, optionally filtered by user.
func (c *Client) List(ctx context.Context, user string) ([]JobRecord, error) {
	var reply ListReply
	if err := c.api.Call(ctx, "API.List", ListArgs{User: user}, &reply); err != nil {
		return nil, err
	}
	return reply.Jobs, nil
}

// Halt checkpoints and stops a job (HALT/RESUME for hyperparameter
// tuning, §3.8).
func (c *Client) Halt(ctx context.Context, jobID string) error {
	return c.api.Call(ctx, "API.Halt", JobArgs{JobID: jobID}, nil)
}

// Resume restarts a halted job from its latest checkpoint.
func (c *Client) Resume(ctx context.Context, jobID string) error {
	return c.api.Call(ctx, "API.Resume", JobArgs{JobID: jobID}, nil)
}

// Terminate cancels a job.
func (c *Client) Terminate(ctx context.Context, jobID string) error {
	return c.api.Call(ctx, "API.Terminate", JobArgs{JobID: jobID}, nil)
}

// Quota returns a tenant's record plus its live GPU usage.
func (c *Client) Quota(ctx context.Context, user string) (tenant.Record, int, error) {
	var reply TenantReply
	if err := c.api.Call(ctx, "API.Quota", TenantArgs{User: user}, &reply); err != nil {
		return tenant.Record{}, 0, err
	}
	return reply.Tenant, reply.InUse, nil
}

// SetQuota installs or updates a tenant record. The quota takes effect
// for queued work as soon as the dispatcher observes the write on the
// tenants change feed — raising a quota can trigger preemption on
// behalf of a newly in-quota queued job.
func (c *Client) SetQuota(ctx context.Context, rec tenant.Record) error {
	return c.api.Call(ctx, "API.SetQuota", SetTenantArgs{Tenant: rec}, nil)
}

// Metrics fetches one consistent snapshot of the platform's metrics
// registry. Render it with Snapshot.Prom() for Prometheus text
// exposition, or inspect it programmatically.
func (c *Client) Metrics(ctx context.Context) (obs.Snapshot, error) {
	var reply MetricsReply
	err := c.api.Call(ctx, "API.Metrics", MetricsArgs{}, &reply)
	return reply.Snapshot, err
}

// Trace fetches a job's span tree: the lifecycle phases as children of
// one root span, with etcd-propose and LCM-deploy sub-spans when the
// live tracer recorded the job.
func (c *Client) Trace(ctx context.Context, jobID string) (obs.Trace, error) {
	var reply TraceReply
	err := c.api.Call(ctx, "API.Trace", JobArgs{JobID: jobID}, &reply)
	return reply.Trace, err
}

// Tenants lists all tenant records.
func (c *Client) Tenants(ctx context.Context) ([]tenant.Record, error) {
	var reply TenantsReply
	if err := c.api.Call(ctx, "API.Tenants", TenantArgs{}, &reply); err != nil {
		return nil, err
	}
	return reply.Tenants, nil
}

// Logs fetches a job's collected logs.
func (c *Client) Logs(ctx context.Context, jobID string) ([]LogLine, error) {
	return c.logs(ctx, LogsArgs{JobID: jobID})
}

// SearchLogs fetches log lines matching a substring.
func (c *Client) SearchLogs(ctx context.Context, jobID, substr string) ([]LogLine, error) {
	return c.logs(ctx, LogsArgs{JobID: jobID, Search: substr})
}

func (c *Client) logs(ctx context.Context, args LogsArgs) ([]LogLine, error) {
	sr, err := c.api.Stream(ctx, "API.Logs", args)
	if err != nil {
		return nil, err
	}
	defer sr.Close()
	var out []LogLine
	for {
		var item LogItem
		err := sr.Recv(&item)
		if errors.Is(err, rpc.ErrStreamDone) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, item.Line)
	}
}

// FollowLogs streams live logs until ctx is cancelled, invoking fn per
// line. Like WatchStatus, the stream transparently reconnects across
// API replica crashes, resuming from the last delivered line's offset —
// the job's log lives in the platform's commit log, not the replica —
// so no line is missed or duplicated end-to-end.
func (c *Client) FollowLogs(ctx context.Context, jobID string, fn func(LogLine)) error {
	return c.FollowLogsFrom(ctx, jobID, 0, fn)
}

// FollowLogsFrom is FollowLogs resuming from a line offset: only lines
// with Offset >= from are delivered. This is the CLI's end-to-end
// resume path — a follower that remembers the last printed offset can
// reconnect after its own restart, not just the replica's, without
// gaps or duplicates.
func (c *Client) FollowLogsFrom(ctx context.Context, jobID string, from uint64, fn func(LogLine)) error {
	next := from
	for {
		sr, err := c.api.Stream(ctx, "API.Logs", LogsArgs{JobID: jobID, Follow: true, FromOffset: next})
		if err == nil {
			err = c.forwardLogs(sr, &next, fn)
			sr.Close()
			if err == nil {
				return nil // server ended the stream or ctx fired
			}
		}
		if ctx.Err() != nil {
			return nil
		}
		// Replica crashed or stream broke: back off briefly, then
		// resume from the first undelivered offset.
		select {
		case <-ctx.Done():
			return nil
		case <-c.clock.After(watchRetryDelay):
		}
	}
}

// forwardLogs pumps one stream connection into fn, de-duplicating by
// line offset. A nil return means the stream ended cleanly.
func (c *Client) forwardLogs(sr *rpc.StreamReader, next *uint64, fn func(LogLine)) error {
	for {
		var item LogItem
		err := sr.Recv(&item)
		if errors.Is(err, rpc.ErrStreamDone) || errors.Is(err, rpc.ErrCanceled) {
			return nil
		}
		if err != nil {
			return err
		}
		if item.Line.Offset < *next {
			continue // duplicate across a reconnect
		}
		*next = item.Line.Offset + 1
		fn(item.Line)
	}
}

// watchRetryDelay paces stream reconnects after an API replica crash.
// Restart delays in this platform are milliseconds (Table 3 scales them
// up explicitly), so a few ms keeps failover latency negligible.
const watchRetryDelay = 5 * time.Millisecond

// WatchStatus streams a job's status transitions, in order and without
// duplicates, starting from the beginning of its history. The returned
// channel closes after the terminal transition is delivered (or when
// ctx/cancel fires); closure without a terminal entry means
// cancellation, never completion. The stream transparently reconnects
// across API replica crashes, resuming from the last delivered
// transition, so every transition is observed exactly once end-to-end —
// including transitions committed by other API replicas or processes,
// which reach every replica's status bus through the MongoDB change
// feed. This is the layer-4 contract of docs/watch-protocol.md.
func (c *Client) WatchStatus(ctx context.Context, jobID string) (<-chan StatusEntry, func(), error) {
	// Synchronous existence check so callers get an immediate error for
	// unknown jobs rather than a silently empty stream.
	if _, err := c.Status(ctx, jobID); err != nil {
		return nil, nil, err
	}
	wctx, cancel := context.WithCancel(ctx)
	out := make(chan StatusEntry, 16)
	go func() {
		defer close(out)
		next := 1
		for {
			sr, err := c.api.Stream(wctx, "API.Watch", WatchArgs{JobID: jobID, FromSeq: next})
			if err == nil {
				var terminal bool
				terminal, err = c.forwardWatch(wctx, sr, &next, out)
				sr.Close()
				if terminal {
					return
				}
			}
			if wctx.Err() != nil {
				return
			}
			// Replica crashed or stream broke: back off briefly, then
			// resume from the first undelivered transition.
			select {
			case <-wctx.Done():
				return
			case <-c.clock.After(watchRetryDelay):
			}
		}
	}()
	return out, cancel, nil
}

// forwardWatch pumps one stream connection into out, de-duplicating by
// sequence. It reports whether a terminal transition was delivered.
func (c *Client) forwardWatch(ctx context.Context, sr *rpc.StreamReader, next *int, out chan<- StatusEntry) (bool, error) {
	for {
		var item StatusItem
		err := sr.Recv(&item)
		if errors.Is(err, rpc.ErrStreamDone) || errors.Is(err, rpc.ErrCanceled) {
			return false, nil
		}
		if err != nil {
			return false, err
		}
		if item.Seq < *next {
			continue // duplicate across a reconnect
		}
		select {
		case out <- item.Entry:
			*next = item.Seq + 1
		case <-ctx.Done():
			return false, nil
		}
		if item.Entry.Status.Terminal() {
			return true, nil
		}
	}
}

// WaitForStatus blocks until the job's *current* status reaches the
// target (or any terminal status), returning the final observed
// status; past transitions the job has already moved beyond do not
// satisfy the wait. It rides the WatchStatus event stream, so reaction
// time is bounded by status propagation, not a poll interval; poll is
// only used as the fallback cadence (on the client's clock, never the
// wall clock) when the watch stream cannot be established.
func (c *Client) WaitForStatus(ctx context.Context, jobID string, target JobStatus, poll time.Duration) (JobStatus, error) {
	if reply, err := c.Status(ctx, jobID); err == nil {
		if reply.Status == target || reply.Status.Terminal() {
			return reply.Status, nil
		}
		ch, cancel, werr := c.WatchStatus(ctx, jobID)
		if werr == nil {
			defer cancel()
			// The stream replays the full history; skip what the
			// status read above already covered so only genuinely new
			// transitions are judged. A transition racing the two
			// calls lands at an index >= skip and is still seen.
			skip := len(reply.History)
			for e := range ch {
				if skip > 0 {
					skip--
					continue
				}
				if e.Status == target || e.Status.Terminal() {
					return e.Status, nil
				}
			}
			if ctx.Err() != nil {
				return "", ctx.Err()
			}
			// Channel closed without a decisive transition (should not
			// happen: streams end only at terminal); fall through to
			// polling.
		}
	}
	for {
		reply, err := c.Status(ctx, jobID)
		if err == nil {
			if reply.Status == target || reply.Status.Terminal() {
				return reply.Status, nil
			}
		}
		select {
		case <-ctx.Done():
			return "", ctx.Err()
		case <-c.clock.After(poll):
		}
	}
}
