package expt

import (
	"fmt"
	"time"

	"github.com/ffdl/ffdl/internal/sched"
	"github.com/ffdl/ffdl/internal/sim"
	"github.com/ffdl/ffdl/internal/trace"
)

// Figure3Result holds the Spread-vs-Pack trace replay outputs.
type Figure3Result struct {
	// Days is the trace length.
	Days int
	// ArrivalsByDay is Fig. 3(a).
	ArrivalsByDay []int
	// QueuedPctSpread / QueuedPctPack are Fig. 3(b): the percentage of
	// each day's arrivals that waited > 15 minutes for placement.
	QueuedPctSpread []float64
	QueuedPctPack   []float64
}

// MeanQueuedPct averages a daily series.
func MeanQueuedPct(s []float64) float64 {
	if len(s) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return sum / float64(len(s))
}

// Figure3 replays a synthetic 60-day production trace (400 GPUs: 180
// K80 + 220 V100) through Spread and Pack placement and counts jobs
// queued beyond the paper's 15-minute satisfaction threshold (§5.2).
// Both policies see the identical trace; only placement differs, so the
// gap isolates fragmentation.
func Figure3(cfg trace.Config) *Figure3Result {
	cfg.Days = max(cfg.Days, 1)
	jobs := trace.Generate(cfg)
	res := &Figure3Result{
		Days:          cfg.Days,
		ArrivalsByDay: trace.DailyCounts(jobs, traceStart(cfg), cfg.Days),
	}
	res.QueuedPctSpread = replayTrace(jobs, sched.Spread{}, cfg)
	res.QueuedPctPack = replayTrace(jobs, sched.Pack{}, cfg)
	return res
}

func traceStart(cfg trace.Config) time.Time {
	if cfg.Start.IsZero() {
		return time.Date(2019, 1, 7, 0, 0, 0, 0, time.UTC)
	}
	return cfg.Start
}

// productionNodes builds the 400-GPU production cluster of §5.2.
func productionNodes() []*sched.Node {
	var nodes []*sched.Node
	mk := func(n int, gpuType string, startIdx int) {
		for i := 0; i < n; i++ {
			cap := sched.Resources{MilliCPU: 64000, MemoryMB: 512000, GPUs: 4}
			nodes = append(nodes, &sched.Node{
				Name:     fmt.Sprintf("%s-%03d", gpuType, startIdx+i),
				GPUType:  gpuType,
				Capacity: cap, Free: cap,
			})
		}
	}
	mk(45, "K80", 0)  // 180 K80
	mk(55, "V100", 0) // 220 V100
	return nodes
}

// replayTrace is a discrete-event replay: arrivals enqueue gangs,
// completions free resources, and after every event the queue is
// re-dispatched in strict FCFS order. It returns the per-day percentage
// of jobs whose queue delay exceeded 15 minutes.
func replayTrace(jobs []*trace.Job, policy sched.PodPolicy, cfg trace.Config) []float64 {
	engine := sim.NewEngine(traceStart(cfg))
	cs := sched.NewClusterState(productionNodes())
	// Strict FCFS, as production FfDL dispatches (§3.6): a head-of-line
	// job blocked by fragmentation delays everything behind it, which is
	// exactly how Spread's fragmentation turns into multi-hour queueing.
	dispatcher := &sched.Dispatcher{Policy: sched.GreedyGang{Pod: policy}}
	var queue sched.Queue

	type runningJob struct {
		gang        *sched.Gang
		assignments []sched.Assignment
	}
	durations := make(map[string]time.Duration, len(jobs))
	queuedLong := make([]int, cfg.Days)
	arrivalsByDay := make([]int, cfg.Days)
	arrivalDay := make(map[string]int, len(jobs))
	longWaits := make(map[string]bool, len(jobs))
	start := traceStart(cfg)

	var dispatch func()
	finish := func(r *runningJob) {
		for i, a := range r.assignments {
			cs.Release(a.Node, r.gang.Pods[i].Demand)
		}
		dispatch()
	}
	dispatch = func() {
		placed, _ := dispatcher.Dispatch(&queue, cs, engine.Now())
		for _, pl := range placed {
			if pl.QueuedFor > 15*time.Minute {
				longWaits[pl.Gang.JobID] = true
			}
			r := &runningJob{gang: pl.Gang, assignments: pl.Assignments}
			engine.After(durations[pl.Gang.JobID], func() { finish(r) })
		}
	}

	for _, j := range jobs {
		j := j
		day := int(j.Arrival.Sub(start) / (24 * time.Hour))
		if day < 0 || day >= cfg.Days {
			continue
		}
		arrivalsByDay[day]++
		arrivalDay[j.ID] = day
		durations[j.ID] = j.Duration
		engine.At(j.Arrival, func() {
			queue.Push(traceGang(j), engine.Now())
			dispatch()
		})
	}
	// Periodic sweep: a queued job's >15-min fate must be decided even
	// if it never gets placed; sweep at day ends.
	for d := 1; d <= cfg.Days; d++ {
		engine.At(start.Add(time.Duration(d)*24*time.Hour), func() {
			now := engine.Now()
			for _, it := range queue.Items() {
				if now.Sub(it.Arrived) > 15*time.Minute {
					longWaits[it.Gang.JobID] = true
				}
			}
		})
	}
	engine.RunUntil(start.Add(time.Duration(cfg.Days) * 24 * time.Hour))

	for id, long := range longWaits {
		if long {
			if d, ok := arrivalDay[id]; ok {
				queuedLong[d]++
			}
		}
	}
	out := make([]float64, cfg.Days)
	for d := range out {
		if arrivalsByDay[d] > 0 {
			out[d] = 100 * float64(queuedLong[d]) / float64(arrivalsByDay[d])
		}
	}
	return out
}

// traceGang converts a trace job to a scheduler gang.
func traceGang(j *trace.Job) *sched.Gang {
	g := &sched.Gang{JobID: j.ID, User: "trace"}
	for i := 0; i < j.Learners; i++ {
		g.Pods = append(g.Pods, sched.PodSpec{
			Name:    fmt.Sprintf("%s-l%d", j.ID, i),
			JobID:   j.ID,
			GPUType: j.GPUType,
			Demand: sched.Resources{
				MilliCPU: 4000 * int64(j.GPUsPerLearner),
				MemoryMB: 24000 * int64(j.GPUsPerLearner),
				GPUs:     j.GPUsPerLearner,
			},
		})
	}
	return g
}

// Figure3Render formats both panels as tables.
func Figure3Render(cfg trace.Config) *Table {
	res := Figure3(cfg)
	t := &Table{
		Title:  "Figure 3: Spread vs. Pack on a synthetic production trace (400 GPUs)",
		Header: []string{"Day", "Arrivals", "% queued >15min (Spread)", "% queued >15min (Pack)"},
	}
	for d := 0; d < res.Days; d++ {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", d+1),
			fmt.Sprintf("%d", res.ArrivalsByDay[d]),
			f2(res.QueuedPctSpread[d]),
			f2(res.QueuedPctPack[d]),
		})
	}
	ratio := 0.0
	if m := MeanQueuedPct(res.QueuedPctPack); m > 0 {
		ratio = MeanQueuedPct(res.QueuedPctSpread) / m
	}
	t.Caption = fmt.Sprintf(
		"Mean queued>15min: Spread %.2f%%, Pack %.2f%% (%.1fx fewer with Pack; paper reports >3x).",
		MeanQueuedPct(res.QueuedPctSpread), MeanQueuedPct(res.QueuedPctPack), ratio)
	return t
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
