package etcd

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/ffdl/ffdl/internal/commitlog"
)

// KV is a key-value pair with MVCC metadata.
type KV struct {
	Key            string
	Value          []byte
	CreateRevision uint64
	ModRevision    uint64
	Lease          int64
}

// EventType classifies watch events.
type EventType int

// Watch event types.
const (
	EventPut EventType = iota + 1
	EventDelete
	EventExpire // lease expiry; a special delete, surfaced distinctly
	// EventResync marks a gap in the event stream: the watcher fell too
	// far behind (or resumed past the retained history) and intermediate
	// events were lost. It is followed by EventPut events synthesizing
	// the current state under the watched key/prefix; consumers that
	// track deletions must re-list on seeing it.
	EventResync
)

func (t EventType) String() string {
	switch t {
	case EventPut:
		return "PUT"
	case EventDelete:
		return "DELETE"
	case EventExpire:
		return "EXPIRE"
	case EventResync:
		return "RESYNC"
	default:
		return "UNKNOWN"
	}
}

// Event is delivered to watchers on every mutation under their key or
// prefix.
type Event struct {
	Type     EventType
	KV       KV
	Revision uint64
}

// command is the replicated state machine operation.
type command struct {
	Op        cmdOp
	Key       string
	Value     []byte
	Lease     int64
	TTL       time.Duration
	Prefix    bool
	CmpKey    string // txn: key whose ModRevision is compared
	CmpRev    uint64 // txn: expected ModRevision (0 = must not exist)
	ReqID     uint64 // for client response matching
	RequestBy int    // proposing node
	// Batch is the group-commit envelope payload (Op == opBatch): the
	// commands drained from the proposal queue, applied in order as one
	// atomically-replicated Raft entry.
	Batch []command
}

type cmdOp int

const (
	opPut cmdOp = iota + 1
	opDelete
	opGrantLease
	opRevokeLease
	opKeepAlive
	opTxnPut // put iff CmpKey's ModRevision == CmpRev
)

// result is the outcome of applying a command.
type result struct {
	rev     uint64
	ok      bool // txn comparison outcome
	leaseID int64
	err     error
}

// leaseRec tracks a granted lease.
type leaseRec struct {
	id       int64
	ttl      time.Duration
	deadline time.Time
	keys     map[string]struct{}
}

// storeState is the replicated state machine: an MVCC map plus leases.
// All mutations arrive through Raft apply, so replicas stay identical.
// Request-ID deduplication makes application exactly-once even when a
// client re-proposes across a leader change and both proposals commit.
type storeState struct {
	mu         sync.Mutex
	kv         map[string]KV
	rev        uint64
	leases     map[int64]*leaseRec
	nextL      int64
	watchers   map[int]*watcher
	nextW      int
	now        func() time.Time
	appliedReq map[uint64]result

	// hist retains recent events so a resuming watcher can replay from a
	// revision instead of re-listing. It rides the platform's commit
	// log (internal/commitlog): events append as records whose
	// in-memory Value is the Event, and revIdx maps each revision to
	// its first log offset so trims and replays land on revision
	// boundaries (multi-key deletes emit several events at one
	// revision; splitting them would corrupt a replay). Retention is
	// revision-window-based (compactRevs) with histCap as the hard
	// entry-count bound, enforced with TruncateBefore. A resume older
	// than the retained floor gets a resync instead. When persistHist
	// is set the retained log rides along in Raft snapshots, so replay
	// survives snapshot restore and leader failover.
	hist        *commitlog.Log
	revIdx      []revOff
	histCap     int
	compactRevs int
	persistHist bool
	// restores counts snapshot restores applied to this replica, for the
	// watch-churn experiment's resyncs-per-restore metric.
	restores uint64

	// applySig is closed and replaced after each applied Raft entry —
	// the event-driven barrier leaderState parks on instead of
	// poll-sleeping while the replica catches up to acknowledged writes.
	applySig chan struct{}
}

// watcher receives events for a key or prefix.
type watcher struct {
	id     int
	key    string
	prefix bool
	ch     chan Event
	closed bool
	// overflowed is set when an event could not be buffered; the owning
	// WatchStream notices and re-registers from its last revision,
	// getting a replay or resync instead of a silent gap.
	overflowed bool
}

// revOff maps a revision to the log offset of its first event.
type revOff struct {
	rev uint64
	off uint64
}

// newHistLog opens the in-memory event log watch history rides on.
// Compaction stays off: replay completeness within the retained window
// is the whole point, so retention is explicit TruncateBefore at
// revision boundaries rather than latest-per-key.
func newHistLog() *commitlog.Log {
	l, err := commitlog.Open(commitlog.NewMemStore(), commitlog.Options{SegmentRecords: 512})
	if err != nil {
		panic(fmt.Sprintf("etcd: hist log open on empty store cannot fail: %v", err))
	}
	return l
}

func newStoreState(now func() time.Time, histCap, compactRevs int, persistHist bool) *storeState {
	return &storeState{
		kv:          make(map[string]KV),
		leases:      make(map[int64]*leaseRec),
		watchers:    make(map[int]*watcher),
		now:         now,
		appliedReq:  make(map[uint64]result),
		hist:        newHistLog(),
		histCap:     histCap,
		compactRevs: compactRevs,
		persistHist: persistHist,
		applySig:    make(chan struct{}),
	}
}

// applyBarrier returns a channel that closes after the next applied
// entry. Capture it BEFORE checking revision() so a concurrent apply
// cannot be missed.
func (s *storeState) applyBarrier() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applySig
}

// signalApply broadcasts that an entry (possibly a whole batch) has
// been applied to this replica.
func (s *storeState) signalApply() {
	s.mu.Lock()
	close(s.applySig)
	s.applySig = make(chan struct{})
	s.mu.Unlock()
}

// apply executes a replicated command; deterministic across replicas.
// A command whose ReqID has already been applied returns the cached
// result without mutating state.
func (s *storeState) apply(c *command) result {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c.ReqID != 0 {
		if prev, ok := s.appliedReq[c.ReqID]; ok {
			return prev
		}
	}
	res := s.applyLocked(c)
	if c.ReqID != 0 {
		s.appliedReq[c.ReqID] = res
	}
	return res
}

func (s *storeState) applyLocked(c *command) result {
	switch c.Op {
	case opPut:
		return s.putLocked(c.Key, c.Value, c.Lease)
	case opDelete:
		return s.deleteLocked(c.Key, c.Prefix, EventDelete)
	case opGrantLease:
		s.nextL++
		id := s.nextL
		s.leases[id] = &leaseRec{
			id: id, ttl: c.TTL, deadline: s.now().Add(c.TTL),
			keys: make(map[string]struct{}),
		}
		return result{leaseID: id, ok: true, rev: s.rev}
	case opRevokeLease:
		return s.revokeLeaseLocked(c.Lease, EventDelete)
	case opKeepAlive:
		l, ok := s.leases[c.Lease]
		if !ok {
			return result{err: ErrLeaseNotFound}
		}
		l.deadline = s.now().Add(l.ttl)
		return result{ok: true, rev: s.rev, leaseID: l.id}
	case opTxnPut:
		cur, exists := s.kv[c.CmpKey]
		var curRev uint64
		if exists {
			curRev = cur.ModRevision
		}
		if curRev != c.CmpRev {
			return result{ok: false, rev: s.rev}
		}
		r := s.putLocked(c.Key, c.Value, c.Lease)
		r.ok = true
		return r
	case opExpireLease:
		return s.revokeLeaseLocked(c.Lease, EventExpire)
	default:
		return result{err: fmt.Errorf("etcd: unknown op %d", c.Op)}
	}
}

func (s *storeState) putLocked(key string, value []byte, lease int64) result {
	if lease != 0 {
		l, ok := s.leases[lease]
		if !ok {
			return result{err: ErrLeaseNotFound}
		}
		l.keys[key] = struct{}{}
	}
	s.rev++
	old, existed := s.kv[key]
	kv := KV{Key: key, Value: append([]byte(nil), value...), ModRevision: s.rev, Lease: lease}
	if existed {
		kv.CreateRevision = old.CreateRevision
		if old.Lease != 0 && old.Lease != lease {
			if l, ok := s.leases[old.Lease]; ok {
				delete(l.keys, key)
			}
		}
	} else {
		kv.CreateRevision = s.rev
	}
	s.kv[key] = kv
	s.notifyLocked(Event{Type: EventPut, KV: kv, Revision: s.rev})
	return result{rev: s.rev, ok: true}
}

func (s *storeState) deleteLocked(key string, prefix bool, typ EventType) result {
	var victims []string
	if prefix {
		for k := range s.kv {
			if strings.HasPrefix(k, key) {
				victims = append(victims, k)
			}
		}
		sort.Strings(victims)
	} else if _, ok := s.kv[key]; ok {
		victims = []string{key}
	}
	if len(victims) == 0 {
		return result{rev: s.rev, ok: false}
	}
	s.rev++
	for _, k := range victims {
		old := s.kv[k]
		delete(s.kv, k)
		if old.Lease != 0 {
			if l, ok := s.leases[old.Lease]; ok {
				delete(l.keys, k)
			}
		}
		s.notifyLocked(Event{Type: typ, KV: KV{Key: k, ModRevision: s.rev}, Revision: s.rev})
	}
	return result{rev: s.rev, ok: true}
}

func (s *storeState) revokeLeaseLocked(id int64, typ EventType) result {
	l, ok := s.leases[id]
	if !ok {
		return result{err: ErrLeaseNotFound}
	}
	keys := make([]string, 0, len(l.keys))
	for k := range l.keys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	delete(s.leases, id)
	for _, k := range keys {
		s.rev++
		delete(s.kv, k)
		s.notifyLocked(Event{Type: typ, KV: KV{Key: k, ModRevision: s.rev}, Revision: s.rev})
	}
	return result{rev: s.rev, ok: true}
}

func (s *storeState) notifyLocked(ev Event) {
	s.appendHistLocked(ev)
	for _, w := range s.watchers {
		if w.closed {
			continue
		}
		if !w.matches(ev.KV.Key) {
			continue
		}
		select {
		case w.ch <- ev:
		default:
			// Slow watcher: drop the event and mark the gap. The watch
			// stream layer re-registers from its last delivered revision
			// (replay from history, or resync if compacted), so no
			// consumer ever sees a silent hole.
			w.overflowed = true
		}
	}
}

func (w *watcher) matches(key string) bool {
	if w.prefix {
		return strings.HasPrefix(key, w.key)
	}
	return key == w.key
}

// appendHistLocked records an event and compacts the log: events older
// than the CompactRevisions window are dropped, and the WatchHistory
// entry cap bounds memory. Trims happen at revision boundaries so
// replay never starts mid-revision.
func (s *storeState) appendHistLocked(ev Event) {
	if s.histCap <= 0 {
		return
	}
	off, err := s.hist.AppendValue(ev.KV.Key, ev)
	if err != nil {
		return // unreachable on a MemStore
	}
	if n := len(s.revIdx); n == 0 || s.revIdx[n-1].rev != ev.Revision {
		s.revIdx = append(s.revIdx, revOff{rev: ev.Revision, off: off})
	}
	s.compactHistLocked()
}

// compactHistLocked trims the event log to the revision window and the
// entry cap. Both cuts land on revision boundaries (multi-key deletes
// emit several events at one revision; splitting them would corrupt a
// replay). Retained record counts are plain offset arithmetic: the
// history log never key-compacts, so offsets are contiguous.
func (s *storeState) compactHistLocked() {
	oldest, next := s.hist.OldestOffset(), s.hist.NextOffset()
	cutOff := oldest
	if s.compactRevs > 0 && s.rev > uint64(s.compactRevs) {
		floor := s.rev - uint64(s.compactRevs)
		// First revision past the window's floor; everything below its
		// offset is outside the replay window.
		i := sort.Search(len(s.revIdx), func(i int) bool { return s.revIdx[i].rev > floor })
		if i < len(s.revIdx) {
			cutOff = s.revIdx[i].off
		} else if len(s.revIdx) > 0 {
			cutOff = next // whole retained log is below the floor
		}
	}
	if retained := next - cutOff; retained > uint64(s.histCap) {
		target := next - uint64(s.histCap)
		// Round the cap cut up to the next revision boundary.
		i := sort.Search(len(s.revIdx), func(i int) bool { return s.revIdx[i].off >= target })
		if i < len(s.revIdx) {
			cutOff = s.revIdx[i].off
		} else {
			cutOff = next
		}
	}
	if cutOff <= oldest {
		return
	}
	if err := s.hist.TruncateBefore(cutOff); err != nil {
		return // unreachable on a MemStore
	}
	j := sort.Search(len(s.revIdx), func(i int) bool { return s.revIdx[i].off >= cutOff })
	s.revIdx = append(s.revIdx[:0], s.revIdx[j:]...)
}

// histReplayLocked returns the retained events with Revision >= fromRev
// that match w, or ok=false when fromRev predates the retained floor
// (the caller resyncs from current state instead).
func (s *storeState) histReplayLocked(w *watcher, fromRev uint64) (backlog []Event, ok bool) {
	if len(s.revIdx) == 0 || s.revIdx[0].rev > fromRev {
		return nil, false
	}
	i := sort.Search(len(s.revIdx), func(i int) bool { return s.revIdx[i].rev >= fromRev })
	if i == len(s.revIdx) {
		return nil, true // fromRev is past every retained event: nothing to replay
	}
	for _, rec := range s.hist.Records(s.revIdx[i].off) {
		if ev, isEv := rec.Value.(Event); isEv && ev.Revision >= fromRev && w.matches(ev.KV.Key) {
			backlog = append(backlog, ev)
		}
	}
	return backlog, true
}

// overflowOf reports and clears a watcher's overflow flag.
func (s *storeState) overflowOf(w *watcher) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	ov := w.overflowed
	w.overflowed = false
	return ov
}

// revision returns the replica's current revision.
func (s *storeState) revision() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rev
}

// get returns the KV for key.
func (s *storeState) get(key string) (KV, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	kv, ok := s.kv[key]
	return kv, ok
}

// list returns all KVs under prefix, key-sorted.
func (s *storeState) list(prefix string) []KV {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []KV
	for k, v := range s.kv {
		if strings.HasPrefix(k, prefix) {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// leaseCount returns the number of live leases.
func (s *storeState) leaseCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.leases)
}

// expiredLeases returns lease IDs past their deadline.
func (s *storeState) expiredLeases() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	var out []int64
	for id, l := range s.leases {
		if now.After(l.deadline) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// addWatcherFrom atomically registers a watcher and computes the backlog
// of events the caller needs to catch up from fromRev (inclusive).
// Holding the lock across both steps guarantees the backlog and the live
// stream are gap-free and non-overlapping. If fromRev predates the
// retained history, the backlog is instead an EventResync marker followed
// by the current state synthesized as puts.
func (s *storeState) addWatcherFrom(key string, prefix bool, fromRev uint64, buf int) (*watcher, []Event, func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextW++
	w := &watcher{id: s.nextW, key: key, prefix: prefix, ch: make(chan Event, buf)}
	s.watchers[w.id] = w

	var backlog []Event
	if fromRev > 0 && fromRev <= s.rev {
		replay, replayable := s.histReplayLocked(w, fromRev)
		if replayable {
			backlog = replay
		} else {
			// Compacted past fromRev: resync from current state.
			backlog = append(backlog, Event{Type: EventResync, Revision: s.rev})
			for k, kv := range s.kv {
				if w.matches(k) {
					backlog = append(backlog, Event{Type: EventPut, KV: kv, Revision: kv.ModRevision})
				}
			}
			sort.Slice(backlog[1:], func(i, j int) bool {
				return backlog[1+i].KV.Key < backlog[1+j].KV.Key
			})
		}
	}
	return w, backlog, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if !w.closed {
			w.closed = true
			delete(s.watchers, w.id)
			close(w.ch)
		}
	}
}

// snapshot serializes the KV map and leases for Raft compaction.
func (s *storeState) snapshot() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	var buf bytes.Buffer
	snap := storeSnapshot{
		KVs: make([]KV, 0, len(s.kv)), Rev: s.rev, NextLease: s.nextL,
	}
	for _, v := range s.kv {
		snap.KVs = append(snap.KVs, v)
	}
	sort.Slice(snap.KVs, func(i, j int) bool { return snap.KVs[i].Key < snap.KVs[j].Key })
	for _, l := range s.leases {
		ls := leaseSnapshot{ID: l.id, TTL: l.ttl, Deadline: l.deadline}
		for k := range l.keys {
			ls.Keys = append(ls.Keys, k)
		}
		sort.Strings(ls.Keys)
		snap.Leases = append(snap.Leases, ls)
	}
	sort.Slice(snap.Leases, func(i, j int) bool { return snap.Leases[i].ID < snap.Leases[j].ID })
	for id := range s.appliedReq {
		snap.Applied = append(snap.Applied, id)
	}
	sort.Slice(snap.Applied, func(i, j int) bool { return snap.Applied[i] < snap.Applied[j] })
	if s.persistHist {
		// The compacted event log rides along so a replica rebuilt from
		// this snapshot can still replay watches from old revisions. The
		// snapshot carries decoded events, not log segments — the gob
		// format predates the commit-log port and stays unchanged.
		for _, rec := range s.hist.Records(0) {
			if ev, ok := rec.Value.(Event); ok {
				snap.Hist = append(snap.Hist, ev)
			}
		}
	}
	if err := gob.NewEncoder(&buf).Encode(&snap); err != nil {
		panic(fmt.Sprintf("etcd: snapshot encode: %v", err)) // cannot fail for these types
	}
	return buf.Bytes()
}

func (s *storeState) restore(data []byte) {
	var snap storeSnapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.kv = make(map[string]KV, len(snap.KVs))
	for _, kv := range snap.KVs {
		s.kv[kv.Key] = kv
	}
	s.rev = snap.Rev
	s.nextL = snap.NextLease
	s.leases = make(map[int64]*leaseRec, len(snap.Leases))
	for _, ls := range snap.Leases {
		l := &leaseRec{id: ls.ID, ttl: ls.TTL, deadline: ls.Deadline, keys: make(map[string]struct{})}
		for _, k := range ls.Keys {
			l.keys[k] = struct{}{}
		}
		s.leases[l.id] = l
	}
	s.appliedReq = make(map[uint64]result, len(snap.Applied))
	for _, id := range snap.Applied {
		s.appliedReq[id] = result{}
	}
	// Adopt the snapshot's persisted event log: a watcher resuming
	// against this freshly-restored replica replays from its revision
	// instead of resyncing. Without persistence (CompactRevisions < 0)
	// the log is cleared and such a resume forces a resync. The replica
	// re-appends into a fresh commit log — offsets are replica-local,
	// revisions are the resume tokens that survive the restore.
	s.hist = newHistLog()
	s.revIdx = s.revIdx[:0]
	for _, ev := range snap.Hist {
		off, err := s.hist.AppendValue(ev.KV.Key, ev)
		if err != nil {
			break // unreachable on a MemStore
		}
		if n := len(s.revIdx); n == 0 || s.revIdx[n-1].rev != ev.Revision {
			s.revIdx = append(s.revIdx, revOff{rev: ev.Revision, off: off})
		}
	}
	s.compactHistLocked()
	s.restores++
}

// restoreCount returns how many snapshot restores this replica applied.
func (s *storeState) restoreCount() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.restores
}

type storeSnapshot struct {
	KVs       []KV
	Rev       uint64
	NextLease int64
	Leases    []leaseSnapshot
	Applied   []uint64
	// Hist is the compacted watch event log (empty when history
	// persistence is disabled).
	Hist []Event
}

type leaseSnapshot struct {
	ID       int64
	TTL      time.Duration
	Deadline time.Time
	Keys     []string
}

// Store errors.
var (
	// ErrLeaseNotFound reports an operation against an unknown or expired
	// lease.
	ErrLeaseNotFound = errors.New("etcd: lease not found")
	// ErrTimeout reports that a proposal did not commit in time.
	ErrTimeout = errors.New("etcd: proposal timed out")
	// ErrStopped reports use of a stopped cluster.
	ErrStopped = errors.New("etcd: cluster stopped")
)
