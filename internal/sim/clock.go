// Package sim provides the discrete-event simulation kernel used across
// the FfDL reproduction: a pluggable clock (real or virtual), an event
// engine with a priority queue for pure single-threaded simulations, and
// seeded random-variate generators for workload synthesis.
//
// The live platform (internal/core, internal/kube, internal/etcd) is
// written against the Clock interface so that tests and experiments can
// run days of simulated operation in milliseconds of wall time while
// remaining deterministic.
package sim

import (
	"sync"
	"time"
)

// Clock abstracts time so platform components can run on either the wall
// clock or a virtual clock under test/experiment control.
type Clock interface {
	// Now returns the current (possibly virtual) time.
	Now() time.Time
	// Sleep blocks until d has elapsed on this clock.
	Sleep(d time.Duration)
	// After returns a channel that receives the clock's time once d has
	// elapsed.
	After(d time.Duration) <-chan time.Time
	// NewTimer returns a timer that fires once after d.
	NewTimer(d time.Duration) *Timer
	// NewTicker returns a ticker that fires every d.
	NewTicker(d time.Duration) *Ticker
	// Since returns the elapsed time since t on this clock.
	Since(t time.Time) time.Duration
}

// Timer is a clock-agnostic analogue of time.Timer.
type Timer struct {
	// C receives the firing time.
	C <-chan time.Time

	stop func() bool
}

// Stop prevents the timer from firing. It reports whether it stopped the
// timer before it fired.
func (t *Timer) Stop() bool {
	if t.stop == nil {
		return false
	}
	return t.stop()
}

// Ticker is a clock-agnostic analogue of time.Ticker.
type Ticker struct {
	// C receives ticks.
	C <-chan time.Time

	stop func()
}

// Stop turns off the ticker.
func (t *Ticker) Stop() {
	if t.stop != nil {
		t.stop()
	}
}

// RealClock is a Clock backed by the time package.
type RealClock struct{}

var _ Clock = RealClock{}

// NewRealClock returns a Clock that reads the wall clock.
func NewRealClock() RealClock { return RealClock{} }

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (RealClock) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (RealClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Since implements Clock.
func (RealClock) Since(t time.Time) time.Duration { return time.Since(t) }

// NewTimer implements Clock.
func (RealClock) NewTimer(d time.Duration) *Timer {
	t := time.NewTimer(d)
	return &Timer{C: t.C, stop: t.Stop}
}

// NewTicker implements Clock.
func (RealClock) NewTicker(d time.Duration) *Ticker {
	t := time.NewTicker(d)
	return &Ticker{C: t.C, stop: t.Stop}
}

// waiter is a pending virtual-clock event: a timer, sleep or tick due at
// a deadline.
type waiter struct {
	at       time.Time
	ch       chan time.Time
	period   time.Duration // 0 for one-shot
	stopped  bool
	sequence uint64
}

// FakeClock is a manually-advanced virtual clock. All Sleep/After/Timer
// calls block until Advance (or the auto-advancer) moves virtual time past
// their deadline. The zero value is not usable; use NewFakeClock.
type FakeClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*waiter
	seq     uint64
	wake    chan struct{} // closed+replaced whenever waiter set changes

	autoQuit chan struct{}
	autoWG   sync.WaitGroup
}

var _ Clock = (*FakeClock)(nil)

// NewFakeClock returns a FakeClock starting at the given origin.
func NewFakeClock(origin time.Time) *FakeClock {
	return &FakeClock{now: origin, wake: make(chan struct{})}
}

// Now implements Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Since implements Clock.
func (c *FakeClock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

// Sleep implements Clock.
func (c *FakeClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-c.After(d)
}

// After implements Clock.
func (c *FakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.addWaiterLocked(d, 0).ch
}

// NewTimer implements Clock.
func (c *FakeClock) NewTimer(d time.Duration) *Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.addWaiterLocked(d, 0)
	return &Timer{C: w.ch, stop: func() bool { return c.stopWaiter(w) }}
}

// NewTicker implements Clock.
func (c *FakeClock) NewTicker(d time.Duration) *Ticker {
	if d <= 0 {
		panic("sim: non-positive ticker period")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.addWaiterLocked(d, d)
	return &Ticker{C: w.ch, stop: func() { c.stopWaiter(w) }}
}

func (c *FakeClock) addWaiterLocked(d, period time.Duration) *waiter {
	c.seq++
	w := &waiter{at: c.now.Add(d), ch: make(chan time.Time, 1), period: period, sequence: c.seq}
	if d <= 0 && period == 0 {
		w.ch <- c.now
		return w
	}
	c.waiters = append(c.waiters, w)
	c.signalLocked()
	return w
}

func (c *FakeClock) stopWaiter(w *waiter) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w.stopped {
		return false
	}
	w.stopped = true
	for i, x := range c.waiters {
		if x == w {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return true
		}
	}
	return false
}

func (c *FakeClock) signalLocked() {
	close(c.wake)
	c.wake = make(chan struct{})
}

// WaiterCount returns the number of goroutines currently blocked on this
// clock. Useful for quiescence detection in tests.
func (c *FakeClock) WaiterCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}

// Advance moves virtual time forward by d, firing every timer/sleep whose
// deadline is reached, in deadline order.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	target := c.now.Add(d)
	c.advanceToLocked(target)
	c.mu.Unlock()
}

// AdvanceToNext advances virtual time to the earliest pending deadline and
// fires it. It reports whether any waiter was pending.
func (c *FakeClock) AdvanceToNext() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.earliestLocked()
	if w == nil {
		return false
	}
	c.advanceToLocked(w.at)
	return true
}

func (c *FakeClock) earliestLocked() *waiter {
	var best *waiter
	for _, w := range c.waiters {
		if best == nil || w.at.Before(best.at) ||
			(w.at.Equal(best.at) && w.sequence < best.sequence) {
			best = w
		}
	}
	return best
}

func (c *FakeClock) advanceToLocked(target time.Time) {
	for {
		w := c.earliestLocked()
		if w == nil || w.at.After(target) {
			break
		}
		c.now = w.at
		// Deliver without blocking: channels are buffered (cap 1); a
		// ticker whose consumer is slow just drops the tick like
		// time.Ticker does.
		select {
		case w.ch <- c.now:
		default:
		}
		if w.period > 0 {
			w.at = w.at.Add(w.period)
		} else {
			c.removeLocked(w)
		}
	}
	if c.now.Before(target) {
		c.now = target
	}
	c.signalLocked()
}

func (c *FakeClock) removeLocked(w *waiter) {
	for i, x := range c.waiters {
		if x == w {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return
		}
	}
}

// StartAutoAdvance launches a background advancer that repeatedly waits
// for the system to quiesce (no waiter-set changes for the given real-time
// settle window) and then advances the clock to the next pending deadline.
// This lets ordinary goroutine-based services run against virtual time
// without manual stepping. Call StopAutoAdvance to halt it.
func (c *FakeClock) StartAutoAdvance(settle time.Duration) {
	c.mu.Lock()
	if c.autoQuit != nil {
		c.mu.Unlock()
		return
	}
	quit := make(chan struct{})
	c.autoQuit = quit
	c.mu.Unlock()

	c.autoWG.Add(1)
	go func() {
		defer c.autoWG.Done()
		for {
			select {
			case <-quit:
				return
			default:
			}
			c.mu.Lock()
			wake := c.wake
			pending := len(c.waiters) > 0
			c.mu.Unlock()
			if !pending {
				select {
				case <-wake:
				case <-quit:
					return
				}
				continue
			}
			// Wait for a settle window with no waiter-set changes, then
			// step to the next deadline.
			select {
			case <-wake:
				continue // activity: re-settle
			case <-quit:
				return
			case <-time.After(settle):
				c.AdvanceToNext()
			}
		}
	}()
}

// StopAutoAdvance halts the background advancer started by
// StartAutoAdvance.
func (c *FakeClock) StopAutoAdvance() {
	c.mu.Lock()
	quit := c.autoQuit
	c.autoQuit = nil
	c.mu.Unlock()
	if quit != nil {
		close(quit)
		c.autoWG.Wait()
	}
}
