package expt

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/ffdl/ffdl/internal/core"
	"github.com/ffdl/ffdl/internal/perf"
	"github.com/ffdl/ffdl/internal/sim"
)

// Table3Row reports the measured crash-recovery time band for one
// component.
type Table3Row struct {
	Component string
	Min, Max  time.Duration
	Mean      time.Duration
}

// table3Scale compresses the paper's second-scale restart delays by
// 250x so the experiment runs in real milliseconds; reported values are
// scaled back. The *measured* part — detection, reconciliation,
// rescheduling, container start sequencing — is exercised for real on
// the live platform. (Higher compression would let fixed goroutine
// scheduling overhead, amplified by the scale factor, distort the
// sub-2s Guardian band.)
const table3Scale = 250

// Table3 reproduces the §5.1 recovery-time table by crashing each
// component of a live platform `trials` times and measuring recovery:
//
//	API:      replica killed; recovery = replica re-registered.
//	LCM:      same for an LCM replica.
//	Guardian: pod killed; recovery = replacement guardian pod Running.
//	Helper:   pod killed; recovery = replacement helper pod Running.
//	Learner:  pod killed; recovery = replacement learner pod Running.
func Table3(trials int) ([]Table3Row, error) {
	if trials <= 0 {
		trials = 5
	}
	rng := sim.NewRNG(33)
	// Paper-calibrated component start latencies (scaled down 1000x).
	// StartDelay is called from concurrent kubelet pod-start goroutines
	// and sim.RNG is not thread-safe, so draws are serialized.
	var rngMu sync.Mutex
	startDelay := func(podType string) time.Duration {
		ms := func(lo, hi float64) time.Duration {
			rngMu.Lock()
			defer rngMu.Unlock()
			return time.Duration(rng.Uniform(lo, hi) * float64(time.Second) / table3Scale)
		}
		switch podType {
		case core.PodTypeGuardian:
			return ms(0.9, 1.7) // guardians are quick single-step creations
		case core.PodTypeHelper:
			return ms(2.6, 3.6)
		case core.PodTypeLearner:
			// "binding to the Object Storage Service and persistent NFS
			// volumes takes longer" (§5.1)
			return ms(9, 19)
		default:
			return ms(0.1, 0.3)
		}
	}
	p, err := core.NewPlatform(core.Config{
		Seed:            33,
		StartDelay:      startDelay,
		APIRestartDelay: time.Duration(3.8 * float64(time.Second) / table3Scale),
		LCMRestartDelay: time.Duration(4.8 * float64(time.Second) / table3Scale),
		TimeCompression: 1e-4,
		PollInterval:    time.Millisecond,
		// Production K8s reacts sub-second; at 1000x compression the
		// control loops must run at ~1ms or they dominate the
		// measurement.
		SchedulerInterval: time.Millisecond,
		ResyncInterval:    time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	defer p.Stop()
	p.AddNode("node0", "K80", 4, 32, 256<<10)
	p.AddNode("node1", "K80", 4, 32, 256<<10)
	p.Store.EnsureBucket("datasets")
	if err := p.Store.Put("datasets", "d/shard-0", make([]byte, 1<<20)); err != nil {
		return nil, err
	}
	client := p.Client()
	jobID, err := client.Submit(context.Background(), core.Manifest{
		Name: "recovery-probe", User: "expt",
		Framework: perf.Caffe, Model: perf.VGG16,
		Learners: 1, GPUsPerLearner: 1, GPUType: perf.K80,
		Iterations: 5_000_000, CheckpointEvery: 1000,
		DataBucket: "datasets", DataPrefix: "d/",
	})
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := client.WaitForStatus(ctx, jobID, core.StatusProcessing, time.Millisecond); err != nil {
		return nil, fmt.Errorf("expt: probe job never ran: %w", err)
	}

	measure := func(name string, crash func() (recovered func() bool)) (Table3Row, error) {
		row := Table3Row{Component: name}
		var total time.Duration
		for i := 0; i < trials; i++ {
			recovered := crash()
			start := time.Now()
			deadline := start.Add(30 * time.Second)
			for !recovered() {
				if time.Now().After(deadline) {
					return row, fmt.Errorf("expt: %s did not recover", name)
				}
				time.Sleep(100 * time.Microsecond)
			}
			d := time.Since(start) * table3Scale
			if i == 0 || d < row.Min {
				row.Min = d
			}
			if d > row.Max {
				row.Max = d
			}
			total += d
			// Let the platform settle between trials.
			time.Sleep(30 * time.Millisecond)
		}
		row.Mean = total / time.Duration(trials)
		return row, nil
	}

	// podRecovered detects a replacement pod Running. StatefulSet and
	// Deployment pods are recreated under the same name, so detection
	// uses the restart counter; Job pods (guardians) get a new attempt
	// name.
	podRecovered := func(prefix, victim string, victimRestarts int) func() bool {
		return func() bool {
			for _, pod := range p.Kube.Store().ListPods(prefix) {
				if pod.Status.Phase != "Running" {
					continue
				}
				if pod.Name != victim || pod.Status.Restarts > victimRestarts {
					return true
				}
			}
			return false
		}
	}

	var rows []Table3Row
	// Restart detection reads counters through one registry snapshot per
	// poll (Counters()), not per-name Counter calls, so a probe that ever
	// compares two counters sees one consistent instant.
	apiRow, err := measure("API", func() func() bool {
		before := p.Metrics.Counters()["api.restarts"]
		p.CrashAPI(0)
		return func() bool { return p.Metrics.Counters()["api.restarts"] > before }
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, apiRow)

	lcmRow, err := measure("LCM", func() func() bool {
		before := p.Metrics.Counters()["lcm.restarts"]
		p.CrashLCM(1)
		return func() bool { return p.Metrics.Counters()["lcm.restarts"] > before }
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, lcmRow)

	crashPod := func(prefix string) func() func() bool {
		return func() func() bool {
			pods := p.Kube.Store().ListPods(prefix)
			victim := ""
			restarts := 0
			for _, pod := range pods {
				if pod.Status.Phase == "Running" {
					victim = pod.Name
					restarts = pod.Status.Restarts
					break
				}
			}
			if victim != "" {
				p.Kube.KillPod(victim, "expt")
			}
			return podRecovered(prefix, victim, restarts)
		}
	}
	guardianRow, err := measure("Guardian", crashPod("guardian-"+jobID+"-attempt-"))
	if err != nil {
		return nil, err
	}
	rows = append(rows, guardianRow)

	helperRow, err := measure("Helper", crashPod("lhelper-"+jobID+"-"))
	if err != nil {
		return nil, err
	}
	rows = append(rows, helperRow)

	learnerRow, err := measure("Learner", crashPod("learner-"+jobID+"-"))
	if err != nil {
		return nil, err
	}
	rows = append(rows, learnerRow)

	client.Terminate(context.Background(), jobID) //nolint:errcheck
	return rows, nil
}

// Table3Render formats the measured recovery bands.
func Table3Render(trials int) (*Table, error) {
	rows, err := Table3(trials)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Table 3: Time taken to recover from crash failures, by component",
		Header: []string{"Component", "Time to recover (min-max)", "mean"},
		Caption: fmt.Sprintf("Paper: API 3-5s, LCM 4-6s, Guardian 1-2s, Helper 3-4s, Learner 10-20s. "+
			"Measured on the live platform with restart delays scaled %dx (reported unscaled).", table3Scale),
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Component,
			fmt.Sprintf("%.1fs-%.1fs", r.Min.Seconds(), r.Max.Seconds()),
			fmt.Sprintf("%.1fs", r.Mean.Seconds()),
		})
	}
	return t, nil
}
