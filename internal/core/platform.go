package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/ffdl/ffdl/internal/etcd"
	"github.com/ffdl/ffdl/internal/kube"
	"github.com/ffdl/ffdl/internal/mongo"
	"github.com/ffdl/ffdl/internal/nfs"
	"github.com/ffdl/ffdl/internal/objstore"
	"github.com/ffdl/ffdl/internal/obs"
	"github.com/ffdl/ffdl/internal/rpc"
	"github.com/ffdl/ffdl/internal/sched"
	"github.com/ffdl/ffdl/internal/sim"
	"github.com/ffdl/ffdl/internal/tenant"
)

// Pod type labels used across the platform (they key container start
// delays and the failure analytics of Table 8 / Fig. 6).
const (
	PodTypeLearner  = "learner"
	PodTypeHelper   = "lhelper"
	PodTypeGuardian = "jobmonitor"
)

// Service names in the RPC registry.
const (
	ServiceAPI = "ffdl-api"
	ServiceLCM = "ffdl-lcm"
)

// Config parameterizes a Platform.
type Config struct {
	// Clock drives everything; defaults to wall clock.
	Clock sim.Clock
	// Seed makes the platform deterministic where randomness is used.
	Seed int64

	// Replication factors. Defaults: 2 API, 2 LCM, 3 etcd.
	APIReplicas  int
	LCMReplicas  int
	EtcdReplicas int

	// GangScheduling enables the BSA gang scheduler (on by default, as
	// in production FfDL); Pack chooses packing placement for non-gang
	// pods (default true).
	GangScheduling *bool
	Pack           *bool

	// StartDelay gives the container start latency per pod type; the
	// defaults are milliseconds for fast tests. Table 3 configures
	// paper-scale values (guardian 1-2s, helper 3-4s, learner 10-20s).
	StartDelay func(podType string) time.Duration
	// APIRestartDelay / LCMRestartDelay model microservice replica
	// restart (Table 3: API 3-5s, LCM 4-6s).
	APIRestartDelay time.Duration
	LCMRestartDelay time.Duration

	// TimeCompression converts modeled learner seconds to real clock
	// time (0 = run training instantaneously).
	TimeCompression float64
	// RendezvousTimeout bounds learner peer-waiting.
	RendezvousTimeout time.Duration

	// PollInterval is the platform-internal control loop period.
	PollInterval time.Duration
	// SchedulerInterval / ResyncInterval / HeartbeatInterval /
	// NodeGracePeriod tune the kube control loops (defaulted by
	// internal/kube when zero). Long-virtual-horizon experiments on a
	// simulated clock stretch all of them so periodic safety nets do
	// not dominate the event count.
	SchedulerInterval time.Duration
	ResyncInterval    time.Duration
	HeartbeatInterval time.Duration
	NodeGracePeriod   time.Duration
	// DeployAttempts is the Guardian's rollback-retry budget ("repeated
	// for a (configurable) number of times before the Guardian gives
	// up", §3.3).
	DeployAttempts int

	// Admission, when non-nil, gates submissions by user quota. Without
	// Tenancy it acts as the legacy synchronous submit-time gate
	// (rejecting over-capacity work); with Tenancy it becomes the
	// tenant dispatcher's accounting controller. Footprints are
	// released on every terminal transition either way, driven from the
	// status bus so transitions committed by any writer are covered.
	Admission *sched.Admission

	// Tenancy, when non-nil, enables the multi-tenant subsystem
	// (internal/tenant): submissions are persisted as QUEUED and an
	// event-driven dispatcher admits them in FCFS order, preempting
	// free-tier and over-quota work for starved in-quota requests. If
	// Admission is nil a controller is created, with its cluster budget
	// tracked from kube node capacity.
	Tenancy *TenancyConfig

	// StorageBandwidth throttles the object store (bytes/sec aggregate);
	// 0 = unthrottled.
	StorageBandwidth float64

	// EtcdUnbatched runs the coordination store with group commit and
	// pipelined replication disabled (etcd.Options.UnbatchedAblation) —
	// the throughput experiment's ablation arm. Leave false.
	EtcdUnbatched bool

	// EtcdGobCodec makes the coordination store encode Raft entries with
	// gob instead of the hand-rolled binary codec
	// (etcd.Options.GobCodec) — the codec ablation arm of the throughput
	// experiment. Leave false.
	EtcdGobCodec bool

	// DataDir, when set, roots the platform's durable logs: the mongo
	// oplog, the status bus's replay window, and per-job learner logs
	// each open a commitlog.FileStore directory under it (see
	// durable.go for the layout) and are recovered on boot — job
	// documents, status history, log offsets, consumer cursors and
	// retained floors all survive a full process restart. Empty (the
	// default) keeps every log in memory.
	DataDir string

	// StoreWrapper, when non-nil, wraps each durable log's segment
	// store as it opens — the chaos harness's hook for injecting
	// FaultStore crash/corruption under the real file layout. Leave nil
	// in production configs.
	StoreWrapper StoreWrapper

	// DisableObs strips the observability layer's hot-path cost — the
	// ablation arm of expt.ObsOverhead. Subsystems are built with nil
	// instrument handles (every histogram observation and trace span
	// becomes a no-op; see internal/obs's cost model) and no per-job
	// tracer is kept. The metrics registry itself survives: platform
	// health counters (MetricsService.Inc) and the snapshot-time stats
	// collectors are product behavior and cost nothing between scrapes,
	// so GET /v1/metrics keeps working either way. Leave false.
	DisableObs bool
}

func (c *Config) defaults() {
	if c.Clock == nil {
		c.Clock = sim.NewRealClock()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.APIReplicas <= 0 {
		c.APIReplicas = 2
	}
	if c.LCMReplicas <= 0 {
		c.LCMReplicas = 2
	}
	if c.EtcdReplicas <= 0 {
		c.EtcdReplicas = 3
	}
	if c.GangScheduling == nil {
		t := true
		c.GangScheduling = &t
	}
	if c.Pack == nil {
		t := true
		c.Pack = &t
	}
	if c.StartDelay == nil {
		c.StartDelay = func(podType string) time.Duration {
			switch podType {
			case PodTypeLearner:
				return 10 * time.Millisecond
			case PodTypeHelper:
				return 3 * time.Millisecond
			case PodTypeGuardian:
				return 2 * time.Millisecond
			default:
				return time.Millisecond
			}
		}
	}
	if c.APIRestartDelay <= 0 {
		c.APIRestartDelay = 4 * time.Millisecond
	}
	if c.LCMRestartDelay <= 0 {
		c.LCMRestartDelay = 5 * time.Millisecond
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 3 * time.Millisecond
	}
	if c.DeployAttempts <= 0 {
		c.DeployAttempts = 3
	}
	if c.RendezvousTimeout <= 0 {
		c.RendezvousTimeout = 30 * time.Second
	}
}

// TenancyConfig parameterizes the multi-tenant subsystem.
type TenancyConfig struct {
	// Quotas seeds the tenant registry at boot; Client.SetQuota (and
	// PUT /v1/tenants/{user}) add or update records at runtime.
	Quotas []tenant.Record
	// DisablePreemption keeps starved in-quota heads waiting instead of
	// checkpointing victims (ablation; production FfDL preempts, §3.6).
	DisablePreemption bool
	// ResyncInterval overrides the dispatcher's safety-net tick
	// (default PollInterval * 10). It bounds recovery from dropped
	// events, never dispatch latency.
	ResyncInterval time.Duration
}

// jobResources is the in-memory handle set for one deployed job.
type jobResources struct {
	manifest Manifest
	volume   *nfs.Volume
	mount    *objstore.Mount
}

// Platform is a fully wired FfDL instance.
type Platform struct {
	cfg   Config
	clock sim.Clock
	rng   *sim.RNG

	Kube    *kube.Cluster
	Etcd    *etcd.Cluster
	Mongo   *mongo.DB
	Jobs    *mongo.Collection
	Store   *objstore.Service
	NFS     *nfs.Provisioner
	Metrics *MetricsService

	// Obs is the unified metrics registry (internal/obs): every
	// subsystem's instruments, the MetricsService counters, and the
	// snapshot-time stats collectors all live here. Always non-nil.
	// Tracer records per-job lifecycle span trees (nil when
	// Config.DisableObs strips the layer).
	Obs    *obs.Registry
	Tracer *obs.Tracer

	Registry *rpc.Registry

	// res holds the per-dependency-edge resilience policies (retry,
	// backoff, breaker — see resilience.go). One policy per edge, shared
	// by every caller, so each dependency has exactly one breaker.
	res *resilienceHub

	// Tenants and Dispatcher are the multi-tenant subsystem (nil unless
	// Config.Tenancy is set): the MongoDB-backed quota registry and the
	// event-driven admission queue over it. Admission is the shared
	// accounting controller (also set in legacy Config.Admission mode).
	Tenants    *tenant.Registry
	Dispatcher *tenant.Dispatcher
	Admission  *sched.Admission

	// bus fans out job status transitions to in-process subscribers
	// (LCM recovery, API WatchStatus streams); statusMu serializes
	// status writes so bus sequence numbers match MongoDB history.
	bus      *statusBus
	statusMu sync.Mutex

	mu        sync.Mutex
	apis      []*apiReplica
	lcms      []*lcmReplica
	resources map[string]*jobResources
	jobSeq    int

	stopCh chan struct{}
	wg     sync.WaitGroup
}

// NewPlatform boots a complete FfDL instance (etcd cluster, mongo,
// object store, NFS provisioner, kube orchestrator, API/LCM replicas,
// metrics service) with no worker nodes; call AddNode to add capacity.
func NewPlatform(cfg Config) (*Platform, error) {
	cfg.defaults()
	rng := sim.NewRNG(cfg.Seed)

	// One registry for everything; instruments is the handle subsystems
	// derive their hot-path instruments from and is nil under the
	// DisableObs ablation (nil handles are free no-ops).
	registry := obs.NewRegistry()
	instruments := registry
	var tracer *obs.Tracer
	if cfg.DisableObs {
		instruments = nil
	} else {
		tracer = obs.NewTracer(0)
	}

	etcdCluster, err := etcd.NewCluster(etcd.Options{
		Replicas: cfg.EtcdReplicas,
		Clock:    cfg.Clock,
		Seed:     cfg.Seed + 1,
		// Watch failure detection is a safety net like every other
		// resync tick, so it scales with the platform's poll interval
		// (and stretches with it in long-virtual-horizon simulations).
		WatchHealthInterval: cfg.PollInterval * 4,
		UnbatchedAblation:   cfg.EtcdUnbatched,
		GobCodec:            cfg.EtcdGobCodec,
		Obs:                 instruments,
	})
	if err != nil {
		return nil, fmt.Errorf("core: boot etcd: %w", err)
	}

	oplogStore, err := openLogStore(cfg.DataDir, dirMongoOplog, cfg.StoreWrapper)
	if err != nil {
		return nil, err
	}
	db, err := mongo.Open(oplogStore, mongo.Options{
		Persist: cfg.DataDir != "",
		Obs:     instruments,
		Clock:   cfg.Clock,
	})
	if err != nil {
		return nil, fmt.Errorf("core: open metadata store: %w", err)
	}
	jobs := db.C("jobs")
	jobs.EnsureIndex("user")
	jobs.EnsureIndex("status")

	// Recover the job-id sequence past every persisted job so a
	// reopened platform never re-mints an existing "training-%06d" id.
	jobSeq := 0
	for _, d := range jobs.Find(mongo.Filter{}, mongo.FindOpts{}) {
		id, _ := d["_id"].(string)
		var n int
		if _, err := fmt.Sscanf(id, "training-%d", &n); err == nil && n > jobSeq {
			jobSeq = n
		}
	}

	busStore, err := openLogStore(cfg.DataDir, dirStatusBus, cfg.StoreWrapper)
	if err != nil {
		return nil, err
	}
	bus, err := newStatusBus(busStore, cfg.DataDir != "", instruments, cfg.Clock)
	if err != nil {
		return nil, err
	}

	metrics := NewMetricsService(registry)
	metrics.dataDir = cfg.DataDir
	metrics.storeWrap = cfg.StoreWrapper
	metrics.obs = instruments
	metrics.clock = cfg.Clock

	store := objstore.New(objstore.Config{Clock: cfg.Clock, AggregateBandwidth: cfg.StorageBandwidth})
	prov := nfs.NewProvisioner(cfg.Clock, rng.Stream(2))
	// Platform tests run with fast provisioning; the §4 load-dependent
	// behaviour is exercised explicitly by chaos tests.
	prov.BaseLatency = time.Millisecond
	prov.LoadPenalty = 0

	var gang sched.GangPolicy
	var podPolicy sched.PodPolicy = sched.Spread{}
	if *cfg.Pack {
		podPolicy = sched.Pack{}
	}
	if *cfg.GangScheduling {
		gang = sched.NewBSA(rng.Stream(3))
	}
	kubeCluster := kube.NewCluster(kube.Config{
		Clock:             cfg.Clock,
		RNG:               rng.Stream(4),
		PodPolicy:         podPolicy,
		GangPolicy:        gang,
		StartDelay:        cfg.StartDelay,
		SchedulerInterval: cfg.SchedulerInterval,
		ResyncInterval:    cfg.ResyncInterval,
		HeartbeatInterval: cfg.HeartbeatInterval,
		NodeGracePeriod:   cfg.NodeGracePeriod,
		Obs:               instruments,
		Tracer:            tracer,
	})

	p := &Platform{
		cfg:       cfg,
		clock:     cfg.Clock,
		rng:       rng,
		Kube:      kubeCluster,
		Etcd:      etcdCluster,
		Mongo:     db,
		Jobs:      jobs,
		Store:     store,
		NFS:       prov,
		Metrics:   metrics,
		Obs:       registry,
		Tracer:    tracer,
		Registry:  rpc.NewRegistry(),
		res:       newResilienceHub(&cfg, instruments),
		bus:       bus,
		resources: make(map[string]*jobResources),
		jobSeq:    jobSeq,
		stopCh:    make(chan struct{}),
	}
	p.Registry.SetObs(instruments, cfg.Clock)
	registry.RegisterCollector(p.collectStats)
	p.registerRuntimes()

	// The status bus's multi-replica fallback: tail the jobs collection's
	// change stream so transitions committed by any writer — not just
	// this process's setJobStatus — reach local bus subscribers (see
	// statusFeedLoop). Start at the oplog head: pre-existing history is
	// served from MongoDB on demand, not replayed through the bus.
	feed := db.Watch("jobs", db.OplogLen())
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer feed.Cancel()
		p.statusFeedLoop(feed)
	}()

	p.Admission = cfg.Admission
	if cfg.Tenancy != nil {
		if err := p.startTenancy(cfg.Tenancy); err != nil {
			p.Stop()
			return nil, err
		}
	} else if p.Admission != nil {
		// Legacy synchronous gate: footprints are still released on
		// every terminal transition, driven from the status bus.
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.admissionAccountingLoop()
		}()
	}

	for i := 0; i < cfg.APIReplicas; i++ {
		a, err := newAPIReplica(p, i)
		if err != nil {
			p.Stop()
			return nil, err
		}
		p.apis = append(p.apis, a)
	}
	for i := 0; i < cfg.LCMReplicas; i++ {
		l, err := newLCMReplica(p, i)
		if err != nil {
			p.Stop()
			return nil, err
		}
		p.lcms = append(p.lcms, l)
	}
	return p, nil
}

// AddNode adds a worker machine to the cluster.
func (p *Platform) AddNode(name, gpuType string, gpus int, cpus int, memMB int64) {
	p.Kube.AddNode(name, gpuType, sched.Resources{
		MilliCPU: int64(cpus) * 1000, MemoryMB: memMB, GPUs: gpus,
	})
}

// Client returns a load-balanced client for the platform's API service,
// bound to the platform clock so waits run in simulated time, with the
// client→api resilience policy installed (transient replica failures
// are retried with backoff instead of surfacing to every caller).
func (p *Platform) Client() *Client {
	return NewClient(p.Registry).WithClock(p.clock).WithResilience(p.res.client)
}

// Clock returns the platform clock.
func (p *Platform) Clock() sim.Clock { return p.clock }

// nextJobID mints a job identifier.
func (p *Platform) nextJobID() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.jobSeq++
	return fmt.Sprintf("training-%06d", p.jobSeq)
}

// putResources registers a job's in-memory handles.
func (p *Platform) putResources(jobID string, r *jobResources) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.resources[jobID] = r
}

// getResources fetches a job's handles.
func (p *Platform) getResources(jobID string) (*jobResources, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	r, ok := p.resources[jobID]
	return r, ok
}

func (p *Platform) dropResources(jobID string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.resources, jobID)
}

// CrashAPI kills one API replica; it restarts after the configured
// delay (Table 3's API row). Returns false if the index is invalid.
func (p *Platform) CrashAPI(i int) bool {
	if i < 0 || i >= len(p.apis) {
		return false
	}
	p.apis[i].crashAndRestart()
	return true
}

// CrashLCM kills one LCM replica with automatic restart.
func (p *Platform) CrashLCM(i int) bool {
	if i < 0 || i >= len(p.lcms) {
		return false
	}
	p.lcms[i].crashAndRestart()
	return true
}

// Stop shuts the platform down.
func (p *Platform) Stop() {
	select {
	case <-p.stopCh:
		return
	default:
	}
	close(p.stopCh)
	if p.Dispatcher != nil {
		p.Dispatcher.Stop()
	}
	for _, a := range p.apis {
		a.stop()
	}
	for _, l := range p.lcms {
		l.stop()
	}
	p.Kube.Stop()
	p.Etcd.Stop()
	p.wg.Wait()
}

// collectStats mirrors every subsystem's Stats() accessors into the
// registry as snapshot-time gauges under the dotted naming convention.
// The accessors remain the programmatic views; this collector is what
// puts the same numbers on the GET /v1/metrics scrape with zero
// hot-path cost (it runs only when a snapshot is taken).
func (p *Platform) collectStats(set func(name string, v int64)) {
	ss := p.Kube.SchedStats()
	set("sched.passes", int64(ss.Passes))
	set("sched.full_scans", int64(ss.FullScans))
	set("sched.nodes_examined", int64(ss.NodesExamined))
	set("sched.pods_bound", int64(ss.PodsBound))
	set("sched.events_seen", int64(ss.EventsSeen))
	set("sched.events_ignored", int64(ss.EventsIgnored))
	set("sched.events_dropped", int64(ss.EventsDropped))
	set("sched.resyncs_skipped", int64(ss.ResyncsSkipped))
	set("sched.audits_clean", int64(ss.AuditsClean))
	set("sched.spread_full_scans", int64(ss.SpreadFullScans))

	es := p.Etcd.Stats()
	set("etcd.commands", int64(es.Commands))
	set("etcd.entries", int64(es.Entries))
	set("etcd.max_batch", int64(es.MaxBatch))
	set("etcd.appends_sent", int64(es.AppendsSent))
	set("etcd.entries_sent", int64(es.EntriesSent))

	alloc, capacity := p.Kube.GPUUtilization()
	set("kube.gpus_allocated", int64(alloc))
	set("kube.gpus_capacity", int64(capacity))

	bytesIn, bytesOut := p.Store.Stats()
	set("objstore.bytes_in", bytesIn)
	set("objstore.bytes_out", bytesOut)

	if d := p.Dispatcher; d != nil {
		ds := d.Stats()
		set("tenant.wakes", int64(ds.Wakes))
		set("tenant.passes", int64(ds.Passes))
		set("tenant.dispatched", int64(ds.Dispatched))
		set("tenant.resumed", int64(ds.Resumed))
		set("tenant.preempted", int64(ds.Preempted))
		set("tenant.requeued", int64(ds.Requeued))
		set("tenant.quota_events", int64(ds.QuotaEvents))
		set("tenant.resyncs", int64(ds.Resyncs))
		set("tenant.failed", int64(ds.Failed))
		set("tenant.queue_depth", int64(d.QueueDepth()))
	}
}

// tracedPut writes a job-scoped etcd key through the etcd edge policy,
// recording an etcd.propose sub-span on the job's trace under its
// current lifecycle phase. The span covers retries — that is the
// latency the job actually experienced.
func (p *Platform) tracedPut(jobID, key string, val []byte) (uint64, error) {
	var rev uint64
	put := func(context.Context) error {
		var err error
		rev, err = p.Etcd.Put(key, val, 0)
		return err
	}
	if p.Tracer == nil {
		return rev, p.res.etcd.Do(context.Background(), put)
	}
	start := p.clock.Now()
	err := p.res.etcd.Do(context.Background(), put)
	p.Tracer.Sub(jobID, "etcd.propose", start, p.clock.Now())
	return rev, err
}

// etcd key helpers.
func keyJobPrefix(jobID string) string { return "jobs/" + jobID + "/" }
func keyLearnerStatus(jobID string, ord int) string {
	return fmt.Sprintf("jobs/%s/learners/%d/status", jobID, ord)
}
func keyLearnerExit(jobID string, ord int) string {
	return fmt.Sprintf("jobs/%s/learners/%d/exit", jobID, ord)
}
func keyControl(jobID string) string { return "jobs/" + jobID + "/control" }
func keyDone(jobID string) string    { return "jobs/" + jobID + "/done" }

// Control verbs written to the job's etcd control key.
const (
	controlHalt      = "HALT"
	controlResume    = "RESUME"
	controlTerminate = "TERMINATE"
)

// kube object name helpers.
func guardianJobName(jobID string) string  { return "guardian-" + jobID }
func learnerSetName(jobID string) string   { return "learner-" + jobID }
func helperDeployName(jobID string) string { return "lhelper-" + jobID }
func netpolName(jobID string) string       { return "netpol-" + jobID }
