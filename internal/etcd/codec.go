package etcd

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"runtime"
	"time"
)

// allocSnapshot captures the global malloc counter for BenchCodec's
// allocs-per-op accounting (the non-testing analogue of ReportAllocs).
type allocSnapshot struct{ mallocs uint64 }

func (a *allocSnapshot) read() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	a.mallocs = ms.Mallocs
}

// Hand-rolled binary codec for replicated commands — the wire format of
// every Raft entry. Profiling pinned per-entry gob encode/decode as the
// floor of proposal cost (~800 allocs for a serial Put: a fresh encoder
// on the propose side plus a fresh decoder per replica, each paying
// reflection and type-descriptor work per entry). The binary form is
// append-style varint encoding: one exact-size buffer allocation on
// encode (the Raft log retains the entry, so the buffer cannot be
// pooled) and near-zero allocations on decode (values alias the entry
// buffer; only key strings are materialized).
//
// Layout (all integers varint/uvarint, strings and byte slices
// uvarint-length-prefixed):
//
//	cmdMagic | op | ReqID | Key | Value | Lease | TTL | flags |
//	CmpKey | CmpRev | RequestBy [| batch count | sub-commands...]
//
// The leading cmdMagic byte (0xE7) makes entries self-describing
// against gob: a gob stream for these types always begins with a
// message length whose first byte is either a small unsigned count
// (< 0x80) or a multi-byte-length marker near 0xFF, never 0xE7. Raft
// snapshots keep gob (storeSnapshot is cold-path), and the GobCodec
// ablation keeps whole entries in gob; decodeCommand dispatches on the
// first byte so a cluster can apply both forms interchangeably.
//
// Sub-commands of an opBatch envelope are encoded with the same field
// layout (no magic byte). Nesting is a single level: an opBatch inside
// a batch is rejected on decode, bounding recursion on corrupt input.
const cmdMagic = 0xE7

// Decode errors. Corrupt or truncated input always surfaces as an
// error — never a panic — pinned by FuzzCommandCodecRoundtrip.
var (
	errCodecTruncated = errors.New("etcd: codec: truncated input")
	errCodecCorrupt   = errors.New("etcd: codec: corrupt input")
)

// maxCodecLen bounds any single length prefix (key, value, batch
// count) so a corrupt entry cannot demand an absurd allocation before
// the truncation is noticed.
const maxCodecLen = 1 << 26

// commandFlag bits.
const flagPrefix = 1 << 0

// encodeCommand appends the binary encoding of cmd to dst and returns
// the extended slice. Pass a buffer sized by commandSize to encode with
// a single allocation.
func encodeCommand(dst []byte, cmd *command) []byte {
	dst = append(dst, cmdMagic)
	dst = appendCommandBody(dst, cmd)
	if cmd.Op == opBatch {
		dst = binary.AppendUvarint(dst, uint64(len(cmd.Batch)))
		for i := range cmd.Batch {
			dst = appendCommandBody(dst, &cmd.Batch[i])
		}
	}
	return dst
}

// appendCommandBody appends the fixed field layout shared by top-level
// commands and batch sub-commands.
func appendCommandBody(dst []byte, cmd *command) []byte {
	dst = binary.AppendUvarint(dst, uint64(cmd.Op))
	dst = binary.AppendUvarint(dst, cmd.ReqID)
	dst = binary.AppendUvarint(dst, uint64(len(cmd.Key)))
	dst = append(dst, cmd.Key...)
	dst = binary.AppendUvarint(dst, uint64(len(cmd.Value)))
	dst = append(dst, cmd.Value...)
	dst = binary.AppendVarint(dst, cmd.Lease)
	dst = binary.AppendVarint(dst, int64(cmd.TTL))
	var flags byte
	if cmd.Prefix {
		flags |= flagPrefix
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(len(cmd.CmpKey)))
	dst = append(dst, cmd.CmpKey...)
	dst = binary.AppendUvarint(dst, cmd.CmpRev)
	dst = binary.AppendVarint(dst, int64(cmd.RequestBy))
	return dst
}

// commandSize returns an upper bound on the encoded size of cmd, so
// encode buffers can be allocated exactly once.
func commandSize(cmd *command) int {
	// 1 magic + ~10 bytes per varint field (8 fields) + string/byte
	// payloads; generous per-field bound beats a second pass.
	n := 1 + commandBodySize(cmd)
	if cmd.Op == opBatch {
		n += binary.MaxVarintLen64
		for i := range cmd.Batch {
			n += commandBodySize(&cmd.Batch[i])
		}
	}
	return n
}

func commandBodySize(cmd *command) int {
	return 8*binary.MaxVarintLen64 + 1 + len(cmd.Key) + len(cmd.Value) + len(cmd.CmpKey)
}

// cmdReader walks an encoded command buffer.
type cmdReader struct {
	buf []byte
	off int
}

func (r *cmdReader) byte() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, errCodecTruncated
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

func (r *cmdReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, errCodecTruncated
	}
	r.off += n
	return v, nil
}

func (r *cmdReader) varint() (int64, error) {
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		return 0, errCodecTruncated
	}
	r.off += n
	return v, nil
}

// bytes returns a length-prefixed byte field ALIASING the underlying
// buffer — zero-copy, safe because Raft entries are immutable and the
// state machine copies values it retains (putLocked).
func (r *cmdReader) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > maxCodecLen {
		return nil, errCodecCorrupt
	}
	if uint64(len(r.buf)-r.off) < n {
		return nil, errCodecTruncated
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

// decodeCommandBody decodes one field-layout block into cmd.
func (r *cmdReader) decodeCommandBody(cmd *command, topLevel bool) error {
	op, err := r.uvarint()
	if err != nil {
		return err
	}
	cmd.Op = cmdOp(op)
	if cmd.Op == opBatch && !topLevel {
		return fmt.Errorf("%w: nested batch envelope", errCodecCorrupt)
	}
	if cmd.ReqID, err = r.uvarint(); err != nil {
		return err
	}
	key, err := r.bytes()
	if err != nil {
		return err
	}
	cmd.Key = string(key)
	val, err := r.bytes()
	if err != nil {
		return err
	}
	if len(val) == 0 {
		cmd.Value = nil
	} else {
		cmd.Value = val
	}
	if cmd.Lease, err = r.varint(); err != nil {
		return err
	}
	ttl, err := r.varint()
	if err != nil {
		return err
	}
	cmd.TTL = time.Duration(ttl)
	flags, err := r.byte()
	if err != nil {
		return err
	}
	cmd.Prefix = flags&flagPrefix != 0
	cmpKey, err := r.bytes()
	if err != nil {
		return err
	}
	cmd.CmpKey = string(cmpKey)
	if cmd.CmpRev, err = r.uvarint(); err != nil {
		return err
	}
	reqBy, err := r.varint()
	if err != nil {
		return err
	}
	cmd.RequestBy = int(reqBy)
	cmd.Batch = nil
	return nil
}

// decodeCommand decodes an encoded Raft entry into cmd, reusing cmd's
// Batch backing array when capacity allows (the applier passes a
// per-replica scratch command, so steady-state decode allocates only
// key strings). It dispatches on the leading byte: cmdMagic selects the
// binary layout, anything else falls back to gob — entries written by
// the GobCodec ablation (or by a cluster predating the codec) decode
// through the same call.
func decodeCommand(data []byte, cmd *command) error {
	if len(data) == 0 {
		return errCodecTruncated
	}
	if data[0] != cmdMagic {
		*cmd = command{}
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(cmd); err != nil {
			return fmt.Errorf("etcd: codec: gob fallback: %w", err)
		}
		return nil
	}
	r := cmdReader{buf: data, off: 1}
	scratch := cmd.Batch[:0]
	if err := r.decodeCommandBody(cmd, true); err != nil {
		return err
	}
	// Retain the caller's Batch backing array across single-command
	// decodes so a later batch decode into the same scratch struct can
	// reuse it.
	cmd.Batch = scratch
	if cmd.Op == opBatch {
		n, err := r.uvarint()
		if err != nil {
			return err
		}
		if n > maxCodecLen {
			return errCodecCorrupt
		}
		// Each sub-command is at least ~12 bytes; cheap sanity bound
		// before allocating.
		if n > uint64(len(data)) {
			return errCodecTruncated
		}
		if uint64(cap(scratch)) >= n {
			cmd.Batch = scratch[:n]
		} else {
			cmd.Batch = make([]command, n)
		}
		for i := range cmd.Batch {
			if err := r.decodeCommandBody(&cmd.Batch[i], false); err != nil {
				return err
			}
		}
	}
	if r.off != len(data) {
		return fmt.Errorf("%w: %d trailing bytes", errCodecCorrupt, len(data)-r.off)
	}
	return nil
}

// encodeEntry serializes one proposal (a single command or a batch
// envelope) for the Raft log using the cluster's configured codec: one
// exact-size allocation on the binary path, the seed's gob path under
// the GobCodec ablation.
func encodeEntry(cmd *command, gobCodec bool) ([]byte, error) {
	if gobCodec {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(cmd); err != nil {
			return nil, fmt.Errorf("etcd: encode command: %w", err)
		}
		return buf.Bytes(), nil
	}
	return encodeCommand(make([]byte, 0, commandSize(cmd)), cmd), nil
}

// CodecStats reports the codec microbenchmark used by the throughput
// experiment's JSON artifact: round-trips per second and allocations
// per encode+decode of a representative Put command.
type CodecStats struct {
	Codec       string  `json:"codec"`
	CmdsPerSec  float64 `json:"cmds_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// BenchCodec measures the configured entry codec over iters
// encode+decode round-trips of a representative Put command, without
// needing the testing package — ffdl-bench calls it to put the codec
// dimension into bench-throughput.json.
func BenchCodec(gobCodec bool, iters int) CodecStats {
	if iters <= 0 {
		iters = 1 << 14
	}
	cmd := command{
		Op: opPut, Key: "jobs/tp-000/status", Value: []byte("PROCESSING"),
		ReqID: 12345,
	}
	name := "binary"
	if gobCodec {
		name = "gob"
	}
	var scratch command
	var ms0, ms1 allocSnapshot
	ms0.read()
	start := time.Now()
	for i := 0; i < iters; i++ {
		data, err := encodeEntry(&cmd, gobCodec)
		if err != nil {
			panic(err) // cannot fail for this command shape
		}
		if err := decodeCommand(data, &scratch); err != nil {
			panic(err)
		}
	}
	wall := time.Since(start).Seconds()
	ms1.read()
	st := CodecStats{Codec: name}
	if wall > 0 {
		st.CmdsPerSec = float64(iters) / wall
	}
	st.AllocsPerOp = float64(ms1.mallocs-ms0.mallocs) / float64(iters)
	return st
}
