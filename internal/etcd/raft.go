// Package etcd implements the coordination store FfDL uses between the
// Guardian/LCM and the per-job controller: a Raft-replicated key-value
// store with revisions, leases (TTL'd keys) and per-key/prefix streaming
// watches — the three etcd features the paper calls out as the reason it
// was preferred over MongoDB for coordination (§3.2).
//
// The Raft implementation follows the Raft paper: randomized election
// timeouts, log replication with consistency checks, commitment only of
// current-term entries by counting replicas, and snapshot-based log
// compaction for lagging followers.
package etcd

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// role is a Raft server role.
type role int

const (
	follower role = iota + 1
	candidate
	leader
)

func (r role) String() string {
	switch r {
	case follower:
		return "follower"
	case candidate:
		return "candidate"
	case leader:
		return "leader"
	default:
		return "unknown"
	}
}

// entry is a Raft log entry.
type entry struct {
	Term  uint64
	Index uint64
	Data  []byte
}

// Message is the single Raft RPC envelope; Kind selects the semantics.
// Using one envelope keeps the in-memory transport trivial.
type Message struct {
	Kind MsgKind
	From int
	To   int
	Term uint64

	// RequestVote / response
	LastLogIndex uint64
	LastLogTerm  uint64
	VoteGranted  bool

	// AppendEntries / response
	PrevLogIndex uint64
	PrevLogTerm  uint64
	Entries      []entry
	LeaderCommit uint64
	Success      bool
	MatchIndex   uint64
	ConflictHint uint64 // follower's suggested nextIndex on rejection

	// InstallSnapshot
	SnapshotData  []byte
	SnapshotIndex uint64
	SnapshotTerm  uint64
}

// MsgKind discriminates Raft messages.
type MsgKind int

// Message kinds.
const (
	MsgVoteRequest MsgKind = iota + 1
	MsgVoteResponse
	MsgAppend
	MsgAppendResponse
	MsgSnapshot
	MsgSnapshotResponse
)

// Transport delivers messages between Raft peers. Implementations may
// drop, delay or partition traffic (see memTransport and internal/chaos).
type Transport interface {
	// Send delivers m to m.To asynchronously. Delivery may fail silently.
	Send(m *Message)
}

// Applied is a committed command handed to the state machine.
type Applied struct {
	Index uint64
	Term  uint64
	Data  []byte
}

// applyFunc consumes committed entries. It is invoked synchronously
// from the Raft node so that log compaction always snapshots a state
// machine that has fully caught up with lastApplied — an asynchronous
// hand-off here once produced snapshots that silently dropped the tail
// of the log on restoring followers.
type applyFunc func(Applied)

// Config parameterizes a Raft node.
type Config struct {
	// ID is this node's identity; Peers lists all cluster members
	// (including self).
	ID    int
	Peers []int
	// TickInterval is the logical clock period. Election timeouts are
	// 10-20 ticks; heartbeats every 3 ticks.
	TickInterval time.Duration
	// SnapshotThreshold triggers log compaction once the log exceeds this
	// many applied entries. Zero selects a default of 4096.
	SnapshotThreshold int
	// Snapshot captures state machine state for compaction; Restore
	// rebuilds it on InstallSnapshot. Both must be non-nil if
	// SnapshotThreshold > 0 entries will ever be exceeded.
	Snapshot func() []byte
	Restore  func(data []byte, index uint64)
	// OnLeaderChange, when non-nil, is invoked (with the node lock held)
	// whenever this node gains or sheds leadership. The Cluster uses it
	// to wake WaitLeader/propose waiters instead of having them poll.
	// The callback must not call back into the node.
	OnLeaderChange func()
	// LegacyReplication restores the seed's append-fanout behaviour:
	// every broadcast re-sends the full log suffix from nextIndex to
	// each peer, so K in-flight proposals cost O(K×peers) messages with
	// O(K²) entry copying. Kept for the throughput ablation; production
	// configurations leave it false and get pipelined replication (only
	// the unsent suffix ships, tracked per peer by sentIndex).
	LegacyReplication bool
}

// node is a single Raft server.
type node struct {
	mu sync.Mutex

	id    int
	peers []int
	role  role

	// Persistent state (kept in memory for the in-process cluster; the
	// paper's deployment persists it via etcd's WAL).
	currentTerm uint64
	votedFor    int // -1 when none
	log         []entry
	// snapshot state: log entries <= snapIndex are compacted away.
	snapIndex uint64
	snapTerm  uint64
	snapData  []byte

	commitIndex uint64
	lastApplied uint64

	// Leader state.
	nextIndex  map[int]uint64
	matchIndex map[int]uint64
	// sentIndex is the replication pipeline frontier: the highest log
	// index optimistically shipped to each peer. Appends send only
	// (sentIndex, lastIndex]; a rejection or a heartbeat probe that
	// fails resets it to nextIndex-1 and re-ships. Ignored under
	// LegacyReplication.
	sentIndex map[int]uint64

	votes map[int]bool

	// Replication traffic counters (under mu), exposed via Cluster.Stats
	// for the throughput experiment.
	msgsSent    uint64
	entriesSent uint64

	transport Transport
	applyFn   applyFunc

	electionElapsed  int
	heartbeatElapsed int
	electionTimeout  int // randomized per election, in ticks

	rng interface{ Intn(int) int }

	snapshotThreshold int
	snapshotFn        func() []byte
	restoreFn         func([]byte, uint64)
	onLeaderChange    func()
	legacyReplication bool

	stopped bool
	stopCh  chan struct{}
	tickWG  sync.WaitGroup

	// leaderHint is the last observed leader, for client redirection.
	leaderHint int
}

const (
	electionTicksMin = 10
	electionTicksMax = 20
	heartbeatTicks   = 3
)

// newNode constructs (but does not start) a Raft node.
func newNode(cfg Config, transport Transport, rng interface{ Intn(int) int }, apply applyFunc) *node {
	n := &node{
		id:                cfg.ID,
		peers:             append([]int(nil), cfg.Peers...),
		role:              follower,
		votedFor:          -1,
		transport:         transport,
		applyFn:           apply,
		rng:               rng,
		nextIndex:         make(map[int]uint64),
		matchIndex:        make(map[int]uint64),
		sentIndex:         make(map[int]uint64),
		snapshotThreshold: cfg.SnapshotThreshold,
		snapshotFn:        cfg.Snapshot,
		restoreFn:         cfg.Restore,
		onLeaderChange:    cfg.OnLeaderChange,
		legacyReplication: cfg.LegacyReplication,
		stopCh:            make(chan struct{}),
		leaderHint:        -1,
	}
	if n.snapshotThreshold == 0 {
		n.snapshotThreshold = 4096
	}
	n.resetElectionTimeout()
	return n
}

// start launches the tick loop.
func (n *node) start(tick time.Duration) {
	n.tickWG.Add(1)
	go func() {
		defer n.tickWG.Done()
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-n.stopCh:
				return
			case <-t.C:
				n.tick()
			}
		}
	}()
}

// stop halts the node.
func (n *node) stop() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	close(n.stopCh)
	n.mu.Unlock()
	n.tickWG.Wait()
}

func (n *node) resetElectionTimeout() {
	n.electionTimeout = electionTicksMin + n.rng.Intn(electionTicksMax-electionTicksMin+1)
	n.electionElapsed = 0
}

// --- log accessors (lock held) ---

func (n *node) lastIndex() uint64 {
	if len(n.log) == 0 {
		return n.snapIndex
	}
	return n.log[len(n.log)-1].Index
}

func (n *node) lastTerm() uint64 {
	if len(n.log) == 0 {
		return n.snapTerm
	}
	return n.log[len(n.log)-1].Term
}

// termAt returns the term of the entry at index, or (0,false) if the
// index has been compacted away or is beyond the log.
func (n *node) termAt(index uint64) (uint64, bool) {
	if index == 0 {
		return 0, true
	}
	if index == n.snapIndex {
		return n.snapTerm, true
	}
	if index < n.snapIndex || index > n.lastIndex() {
		return 0, false
	}
	return n.log[index-n.snapIndex-1].Term, true
}

func (n *node) entriesFrom(index uint64) []entry {
	if index > n.lastIndex() {
		return nil
	}
	if index <= n.snapIndex {
		return nil
	}
	src := n.log[index-n.snapIndex-1:]
	out := make([]entry, len(src))
	copy(out, src)
	return out
}

// tick advances logical time: followers/candidates count toward election
// timeouts, leaders toward heartbeats.
func (n *node) tick() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopped {
		return
	}
	switch n.role {
	case leader:
		n.heartbeatElapsed++
		if n.heartbeatElapsed >= heartbeatTicks {
			n.heartbeatElapsed = 0
			n.broadcastAppendLocked()
		}
	default:
		n.electionElapsed++
		if n.electionElapsed >= n.electionTimeout {
			n.campaignLocked()
		}
	}
}

// campaignLocked starts a new election.
func (n *node) campaignLocked() {
	n.role = candidate
	n.currentTerm++
	n.votedFor = n.id
	n.votes = map[int]bool{n.id: true}
	n.resetElectionTimeout()
	lastIdx, lastTerm := n.lastIndex(), n.lastTerm()
	for _, p := range n.peers {
		if p == n.id {
			continue
		}
		n.transport.Send(&Message{
			Kind: MsgVoteRequest, From: n.id, To: p, Term: n.currentTerm,
			LastLogIndex: lastIdx, LastLogTerm: lastTerm,
		})
	}
	if n.quorum(len(n.votes)) {
		n.becomeLeaderLocked()
	}
}

func (n *node) quorum(k int) bool { return k >= len(n.peers)/2+1 }

func (n *node) becomeLeaderLocked() {
	n.role = leader
	n.leaderHint = n.id
	n.heartbeatElapsed = 0
	for _, p := range n.peers {
		n.nextIndex[p] = n.lastIndex() + 1
		n.matchIndex[p] = 0
		n.sentIndex[p] = n.lastIndex()
	}
	n.matchIndex[n.id] = n.lastIndex()
	// Raft requires committing a no-op from the current term before the
	// leader can safely commit earlier-term entries.
	n.appendLocked(nil)
	n.broadcastAppendLocked()
	if n.onLeaderChange != nil {
		n.onLeaderChange()
	}
}

func (n *node) becomeFollowerLocked(term uint64, leaderID int) {
	wasLeader := n.role == leader
	n.role = follower
	n.currentTerm = term
	n.votedFor = -1
	if leaderID >= 0 {
		n.leaderHint = leaderID
	}
	n.resetElectionTimeout()
	if wasLeader && n.onLeaderChange != nil {
		n.onLeaderChange()
	}
}

// appendLocked appends a command to the leader's log and returns its index.
func (n *node) appendLocked(data []byte) uint64 {
	idx := n.lastIndex() + 1
	n.log = append(n.log, entry{Term: n.currentTerm, Index: idx, Data: data})
	n.matchIndex[n.id] = idx
	return idx
}

// Propose submits a command. It returns the prospective (index, term) or
// an error if this node is not the leader.
func (n *node) Propose(data []byte) (uint64, uint64, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopped {
		return 0, 0, fmt.Errorf("etcd: node %d stopped", n.id)
	}
	if n.role != leader {
		return 0, 0, &NotLeaderError{LeaderHint: n.leaderHint}
	}
	idx := n.appendLocked(data)
	term := n.currentTerm
	n.broadcastAppendLocked()
	// Single-node clusters commit immediately.
	n.maybeCommitLocked()
	return idx, term, nil
}

// NotLeaderError redirects clients to the current leader, mirroring etcd's
// leader-forwarding behaviour.
type NotLeaderError struct{ LeaderHint int }

// Error implements error.
func (e *NotLeaderError) Error() string {
	return fmt.Sprintf("etcd: not leader (hint %d)", e.LeaderHint)
}

func (n *node) broadcastAppendLocked() {
	for _, p := range n.peers {
		if p == n.id {
			continue
		}
		n.sendAppendLocked(p)
	}
}

// sendFrom computes the first index the next append to a peer should
// carry: nextIndex under legacy replication, else the pipeline frontier
// (everything up to sentIndex is already in flight and is not re-sent).
func (n *node) sendFrom(to int) uint64 {
	from := n.nextIndex[to]
	if !n.legacyReplication {
		if s := n.sentIndex[to] + 1; s > from {
			from = s
		}
	}
	if last := n.lastIndex(); from > last+1 {
		from = last + 1
	}
	return from
}

func (n *node) sendAppendLocked(to int) {
	if n.nextIndex[to] <= n.snapIndex {
		// Follower is too far behind: ship the snapshot.
		n.transport.Send(&Message{
			Kind: MsgSnapshot, From: n.id, To: to, Term: n.currentTerm,
			SnapshotData: n.snapData, SnapshotIndex: n.snapIndex, SnapshotTerm: n.snapTerm,
		})
		n.msgsSent++
		if n.sentIndex[to] < n.snapIndex {
			n.sentIndex[to] = n.snapIndex
		}
		return
	}
	from := n.sendFrom(to)
	prevIdx := from - 1
	prevTerm, ok := n.termAt(prevIdx)
	if !ok {
		// Frontier compacted away since the last send: fall back to the
		// snapshot path on the next heartbeat.
		n.sentIndex[to] = n.snapIndex
		return
	}
	entries := n.entriesFrom(from)
	// An empty append doubles as heartbeat and as a probe of the
	// pipeline frontier: if an in-flight append was lost, the follower
	// rejects prevIdx and the leader backs up and re-ships.
	n.transport.Send(&Message{
		Kind: MsgAppend, From: n.id, To: to, Term: n.currentTerm,
		PrevLogIndex: prevIdx, PrevLogTerm: prevTerm,
		Entries: entries, LeaderCommit: n.commitIndex,
	})
	n.msgsSent++
	n.entriesSent += uint64(len(entries))
	if last := n.lastIndex(); n.sentIndex[to] < last {
		n.sentIndex[to] = last
	}
}

// Step processes an incoming message.
func (n *node) Step(m *Message) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopped {
		return
	}
	if m.Term > n.currentTerm {
		leaderID := -1
		if m.Kind == MsgAppend || m.Kind == MsgSnapshot {
			leaderID = m.From
		}
		n.becomeFollowerLocked(m.Term, leaderID)
	}
	switch m.Kind {
	case MsgVoteRequest:
		n.handleVoteRequestLocked(m)
	case MsgVoteResponse:
		n.handleVoteResponseLocked(m)
	case MsgAppend:
		n.handleAppendLocked(m)
	case MsgAppendResponse:
		n.handleAppendResponseLocked(m)
	case MsgSnapshot:
		n.handleSnapshotLocked(m)
	case MsgSnapshotResponse:
		n.handleAppendResponseLocked(m)
	}
}

func (n *node) handleVoteRequestLocked(m *Message) {
	granted := false
	if m.Term >= n.currentTerm && (n.votedFor == -1 || n.votedFor == m.From) {
		// Candidate's log must be at least as up to date (§5.4.1).
		upToDate := m.LastLogTerm > n.lastTerm() ||
			(m.LastLogTerm == n.lastTerm() && m.LastLogIndex >= n.lastIndex())
		if upToDate {
			granted = true
			n.votedFor = m.From
			n.resetElectionTimeout()
		}
	}
	n.transport.Send(&Message{
		Kind: MsgVoteResponse, From: n.id, To: m.From,
		Term: n.currentTerm, VoteGranted: granted,
	})
}

func (n *node) handleVoteResponseLocked(m *Message) {
	if n.role != candidate || m.Term != n.currentTerm || !m.VoteGranted {
		return
	}
	n.votes[m.From] = true
	if n.quorum(len(n.votes)) {
		n.becomeLeaderLocked()
	}
}

func (n *node) handleAppendLocked(m *Message) {
	reject := func(hint uint64) {
		n.transport.Send(&Message{
			Kind: MsgAppendResponse, From: n.id, To: m.From,
			Term: n.currentTerm, Success: false, ConflictHint: hint,
		})
	}
	if m.Term < n.currentTerm {
		reject(0)
		return
	}
	// Valid leader for this term.
	if n.role != follower {
		n.becomeFollowerLocked(m.Term, m.From)
	}
	n.leaderHint = m.From
	n.resetElectionTimeout()

	prevTerm, ok := n.termAt(m.PrevLogIndex)
	if !ok || prevTerm != m.PrevLogTerm {
		// Fast backup: suggest the start of our last term run or our log
		// end, whichever is smaller.
		hint := n.lastIndex() + 1
		if ok && prevTerm != m.PrevLogTerm {
			hint = m.PrevLogIndex
			for hint > n.snapIndex+1 {
				t, ok2 := n.termAt(hint - 1)
				if !ok2 || t != prevTerm {
					break
				}
				hint--
			}
		}
		reject(hint)
		return
	}
	// Append new entries, truncating conflicts.
	for _, e := range m.Entries {
		t, ok := n.termAt(e.Index)
		switch {
		case !ok && e.Index > n.lastIndex():
			n.log = append(n.log, e)
		case ok && t != e.Term:
			// Conflict: delete this and all that follow, then append.
			n.log = n.log[:e.Index-n.snapIndex-1]
			n.log = append(n.log, e)
		case !ok:
			// Entry within compacted prefix: already applied; skip.
		}
	}
	if m.LeaderCommit > n.commitIndex {
		n.commitIndex = min64(m.LeaderCommit, n.lastIndex())
		n.applyCommittedLocked()
	}
	n.transport.Send(&Message{
		Kind: MsgAppendResponse, From: n.id, To: m.From,
		Term: n.currentTerm, Success: true, MatchIndex: n.lastIndex(),
	})
}

func (n *node) handleAppendResponseLocked(m *Message) {
	if n.role != leader || m.Term != n.currentTerm {
		return
	}
	if m.Success {
		if m.MatchIndex > n.matchIndex[m.From] {
			n.matchIndex[m.From] = m.MatchIndex
		}
		n.nextIndex[m.From] = n.matchIndex[m.From] + 1
		if n.sentIndex[m.From] < n.matchIndex[m.From] {
			n.sentIndex[m.From] = n.matchIndex[m.From]
		}
		n.maybeCommitLocked()
		if n.sendFrom(m.From) <= n.lastIndex() {
			n.sendAppendLocked(m.From)
		}
		return
	}
	// Rejected: back up nextIndex, rewind the pipeline frontier to it,
	// and re-ship the suffix.
	next := n.nextIndex[m.From]
	if m.ConflictHint > 0 && m.ConflictHint < next {
		n.nextIndex[m.From] = m.ConflictHint
	} else if next > 1 {
		n.nextIndex[m.From] = next - 1
	}
	n.sentIndex[m.From] = n.nextIndex[m.From] - 1
	n.sendAppendLocked(m.From)
}

func (n *node) handleSnapshotLocked(m *Message) {
	if m.Term < n.currentTerm {
		n.transport.Send(&Message{Kind: MsgSnapshotResponse, From: n.id, To: m.From, Term: n.currentTerm})
		return
	}
	n.leaderHint = m.From
	n.resetElectionTimeout()
	if m.SnapshotIndex <= n.snapIndex || m.SnapshotIndex <= n.lastApplied {
		// Stale snapshot.
		n.transport.Send(&Message{
			Kind: MsgSnapshotResponse, From: n.id, To: m.From,
			Term: n.currentTerm, Success: true, MatchIndex: n.lastIndex(),
		})
		return
	}
	n.snapIndex, n.snapTerm = m.SnapshotIndex, m.SnapshotTerm
	n.snapData = m.SnapshotData
	n.log = nil
	n.commitIndex = m.SnapshotIndex
	n.lastApplied = m.SnapshotIndex
	if n.restoreFn != nil {
		n.restoreFn(m.SnapshotData, m.SnapshotIndex)
	}
	n.transport.Send(&Message{
		Kind: MsgSnapshotResponse, From: n.id, To: m.From,
		Term: n.currentTerm, Success: true, MatchIndex: m.SnapshotIndex,
	})
}

// maybeCommitLocked advances commitIndex to the largest index replicated
// on a quorum whose entry is from the current term (§5.4.2).
func (n *node) maybeCommitLocked() {
	if n.role != leader {
		return
	}
	matches := make([]uint64, 0, len(n.peers))
	for _, p := range n.peers {
		matches = append(matches, n.matchIndex[p])
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i] > matches[j] })
	candidateIdx := matches[len(n.peers)/2]
	if candidateIdx <= n.commitIndex {
		return
	}
	if t, ok := n.termAt(candidateIdx); ok && t == n.currentTerm {
		n.commitIndex = candidateIdx
		n.applyCommittedLocked()
		// Propagate the new commit index promptly.
		n.broadcastAppendLocked()
	}
}

// applyCommittedLocked feeds committed entries to the apply channel and
// compacts the log when it grows past the snapshot threshold.
func (n *node) applyCommittedLocked() {
	for n.lastApplied < n.commitIndex {
		idx := n.lastApplied + 1
		if idx <= n.snapIndex {
			n.lastApplied = n.snapIndex
			continue
		}
		e := n.log[idx-n.snapIndex-1]
		n.lastApplied = idx
		if e.Data != nil && n.applyFn != nil {
			// Synchronous apply: by the time lastApplied advances, the
			// state machine reflects the entry, so snapshots taken at
			// lastApplied are exact.
			n.applyFn(Applied{Index: e.Index, Term: e.Term, Data: e.Data})
		}
	}
	if len(n.log) > n.snapshotThreshold && n.snapshotFn != nil {
		n.compactLocked()
	}
}

func (n *node) compactLocked() {
	// Compact up to lastApplied.
	if n.lastApplied <= n.snapIndex {
		return
	}
	term, ok := n.termAt(n.lastApplied)
	if !ok {
		return
	}
	n.snapData = n.snapshotFn()
	keep := n.entriesFrom(n.lastApplied + 1)
	n.snapIndex, n.snapTerm = n.lastApplied, term
	n.log = keep
}

// isLeader reports role and term for tests and client routing.
func (n *node) isLeader() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role == leader
}

// leaderTerm reports whether this node claims leadership, and at what
// term — the tiebreaker between a real leader and a healed stale one.
func (n *node) leaderTerm() (bool, uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role == leader, n.currentTerm
}

// trafficStats returns the append/snapshot messages and log entries this
// node has shipped, for the throughput experiment's fan-out accounting.
func (n *node) trafficStats() (msgs, entries uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.msgsSent, n.entriesSent
}

// appliedAtLeast reports whether this node's state machine has applied
// through idx — the group-commit pacing check.
func (n *node) appliedAtLeast(idx uint64) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lastApplied >= idx
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
