package core

import (
	"context"
	"fmt"
	"time"

	"github.com/ffdl/ffdl/internal/kube"
	"github.com/ffdl/ffdl/internal/mongo"
	"github.com/ffdl/ffdl/internal/obs"
	"github.com/ffdl/ffdl/internal/rpc"
	"github.com/ffdl/ffdl/internal/sched"
	"github.com/ffdl/ffdl/internal/tenant"
)

// This file wires the tenant subsystem (internal/tenant) into the
// platform: the dispatcher's Backend over MongoDB/LCM, and the event
// pumps that turn the platform's existing watch fabric into dispatcher
// wake-ups — job status transitions from the status bus, cluster
// capacity from the kube node watch, quota writes from the tenant
// registry's change feed (consumed inside the dispatcher itself). Each
// pump is an event path only; the dispatcher's resync tick re-reads the
// durable stores, so a dropped event delays work, never loses it.

// startTenancy boots the registry, admission controller and dispatcher.
func (p *Platform) startTenancy(tc *TenancyConfig) error {
	p.Tenants = tenant.NewRegistry(p.Mongo)
	for _, rec := range tc.Quotas {
		if err := p.Tenants.Put(rec); err != nil {
			return fmt.Errorf("core: seed tenant quota: %w", err)
		}
	}
	if p.Admission == nil {
		p.Admission = sched.NewAdmission(0)
	}
	resync := tc.ResyncInterval
	if resync <= 0 {
		resync = p.cfg.PollInterval * 10
	}
	var instruments *obs.Registry
	if !p.cfg.DisableObs {
		instruments = p.Obs
	}
	p.Dispatcher = tenant.NewDispatcher(tenant.Config{
		Clock:             p.clock,
		Backend:           &tenantBackend{p: p, lcm: newDispatchBalancer(p)},
		Registry:          p.Tenants,
		Admission:         p.Admission,
		ResyncInterval:    resync,
		DisablePreemption: tc.DisablePreemption,
		Obs:               instruments,
	})

	// Cluster capacity pump: the admission budget tracks total GPU
	// capacity, updated from node add/remove/resize watch events (the
	// same store watch the scheduler's freed-capacity wake rides).
	// Heartbeat-only node updates are filtered out by the capacity
	// comparison below.
	nodeWatch := p.Kube.Store().Watch(kube.KindNode)
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer nodeWatch.Cancel()
		p.nodeCapacityLoop(nodeWatch)
	}()

	// Status pump: QUEUED enqueues, HALTED releases/requeues victims,
	// RESUMED restores footprints, terminal transitions release and
	// free the budget. The bus sees transitions from every writer via
	// the jobs change feed, so this stays correct multi-replica.
	events, cancel := p.bus.Subscribe("", 256)
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer cancel()
		p.tenancyStatusPump(events)
	}()

	p.Dispatcher.Start()
	return nil
}

// nodeCapacityLoop folds node watch events into the admission budget.
func (p *Platform) nodeCapacityLoop(w *kube.StoreWatch) {
	apply := func() {
		_, capacity := p.Kube.GPUUtilization()
		if capacity == 0 {
			// Admission's 0 means "unlimited"; a nodeless cluster must
			// admit nothing until capacity actually appears.
			capacity = -1
		}
		p.Dispatcher.SetClusterGPUs(capacity)
	}
	apply()
	// Slow safety tick: node events are low-churn, but a dropped one
	// would otherwise leave the budget stale indefinitely.
	ticker := p.clock.NewTicker(p.cfg.PollInterval * 20)
	defer ticker.Stop()
	for {
		select {
		case <-p.stopCh:
			return
		case ev, ok := <-w.Events():
			if !ok {
				return
			}
			if !nodeCapacityChanged(ev) {
				continue // heartbeat or status-only churn
			}
			apply()
		case <-ticker.C:
			apply()
		}
	}
}

// nodeCapacityChanged reports whether a node event can move total GPU
// capacity.
func nodeCapacityChanged(ev kube.WatchEvent) bool {
	prev, _ := ev.Prev.(*kube.Node)
	next, _ := ev.Object.(*kube.Node)
	if prev == nil || next == nil {
		return true // add or delete
	}
	return prev.Capacity.GPUs != next.Capacity.GPUs
}

// tenancyStatusPump translates status-bus events into dispatcher notes.
func (p *Platform) tenancyStatusPump(events <-chan StatusEvent) {
	for {
		select {
		case <-p.stopCh:
			return
		case ev, ok := <-events:
			if !ok {
				return
			}
			switch {
			case ev.Status == StatusQueued:
				if j, err := p.tenantJob(ev.JobID); err == nil {
					p.Dispatcher.NoteQueued(j)
				}
			case ev.Status == StatusHalted:
				p.Dispatcher.NoteHalted(ev.JobID)
			case ev.Status == StatusResumed:
				p.clearPreempted(ev.JobID)
				if j, err := p.tenantJob(ev.JobID); err == nil {
					p.Dispatcher.NoteResumed(j)
				}
			case ev.Status.Terminal():
				p.clearPreempted(ev.JobID)
				p.Dispatcher.NoteTerminal(ev.JobID)
			}
		}
	}
}

// admissionAccountingLoop is the legacy-mode (Config.Admission without
// Tenancy) footprint accounting: release on every terminal transition
// and on HALT (the checkpoint frees the GPUs), restore on RESUME. It
// rides the status bus, so transitions committed by any replica or
// process are covered; Admit/Release idempotence absorbs duplicates.
func (p *Platform) admissionAccountingLoop() {
	events, cancel := p.bus.Subscribe("", 256)
	defer cancel()
	for {
		select {
		case <-p.stopCh:
			return
		case ev, ok := <-events:
			if !ok {
				return
			}
			switch {
			case ev.Status == StatusHalted:
				p.Admission.Release(ev.JobID)
			case ev.Status == StatusResumed:
				if j, err := p.tenantJob(ev.JobID); err == nil && j.Gang != nil {
					p.Admission.Admit(j.Gang) //nolint:errcheck // accounting restore
				}
			case ev.Status.Terminal():
				p.Admission.Release(ev.JobID)
			}
		}
	}
}

// tenantJob builds the dispatcher's view of a job from its document.
func (p *Platform) tenantJob(jobID string) (tenant.Job, error) {
	doc, err := p.Jobs.FindOne(mongo.Filter{"_id": jobID})
	if err != nil {
		return tenant.Job{}, err
	}
	return tenantJobFromDoc(doc), nil
}

func tenantJobFromDoc(doc mongo.Doc) tenant.Job {
	rec := docToRecord(doc)
	j := tenant.Job{
		ID:   rec.ID,
		User: rec.Manifest.User,
		Gang: manifestGang(&rec.Manifest, rec.ID),
	}
	if ts, ok := doc["submitted"].(string); ok {
		j.Submitted, _ = time.Parse(time.RFC3339Nano, ts)
	}
	return j
}

// clearPreempted drops the durable preemption marker once a victim has
// resumed or terminated.
func (p *Platform) clearPreempted(jobID string) {
	p.Jobs.UpdateOne(mongo.Filter{"_id": jobID, "preempted": true}, //nolint:errcheck // marker may not exist
		mongo.Update{Set: mongo.Doc{"preempted": false}})
}

// newDispatchBalancer builds the dispatcher's LCM balancer with the
// dispatcher→lcm resilience policy installed: preempt/resume signals
// retry transient LCM failures with backoff, and a dead LCM trips the
// edge's breaker so dispatch passes shed instead of piling goroutines
// behind it.
func newDispatchBalancer(p *Platform) *rpc.Balancer {
	b := rpc.NewBalancer(p.Registry, ServiceLCM)
	b.Use(p.res.dispatchLCM)
	return b
}

// tenantBackend implements tenant.Backend over the platform: MongoDB
// for durable job state, the LCM (via RPC, like any other client of the
// halt path) for preempt/resume.
type tenantBackend struct {
	p   *Platform
	lcm *rpc.Balancer
}

// Dispatch hands an admitted job to the LCM by moving it QUEUED →
// PENDING; the LCM recovery loop wakes on the PENDING bus event and
// creates the Guardian, exactly as for a directly submitted job. The
// transition is strict: a job that is no longer QUEUED (a stale bus
// echo re-enqueued it after a resync already dispatched it) errors
// instead of vacuously succeeding, so the dispatcher's dispatch and
// queue-delay accounting never double-counts.
func (b *tenantBackend) Dispatch(jobID string) error {
	if status, err := b.p.jobStatus(jobID); err != nil {
		return err
	} else if status != StatusQueued {
		return fmt.Errorf("core: job %s is %s, not QUEUED", jobID, status)
	}
	return b.p.setJobStatus(jobID, StatusPending, "admitted by tenant dispatcher")
}

// Preempt checkpoints and halts a running job through the existing LCM
// halt path (control verb in etcd, Guardian deletes the learner set,
// learners leave their checkpoint behind). The durable preempted marker
// is written first so a dispatcher restart still knows to requeue the
// victim when its HALTED transition lands.
func (b *tenantBackend) Preempt(jobID string) error {
	if err := b.p.Jobs.UpdateOne(mongo.Filter{"_id": jobID},
		mongo.Update{Set: mongo.Doc{"preempted": true}}); err != nil {
		return err
	}
	b.asyncLCM("LCM.Halt", jobID)
	return nil
}

// asyncLCM issues an LCM control RPC off the caller's goroutine. The
// dispatcher invokes Preempt/Resume while holding its mutex — with
// Position() (API status of queued jobs) and the status pump behind it
// — so a wedged LCM (e.g. blocked on an etcd quorum outage) must never
// stall dispatch or user-facing status reads. Outcomes are not needed
// synchronously: the halt/resume signals are level-triggered — the
// HALTED/RESUMED bus events report success, and the dispatcher's
// resync re-issues signals whose effect never appeared. The wall-clock
// timeout is a goroutine-liveness bound, not a modeled latency.
func (b *tenantBackend) asyncLCM(method, jobID string) {
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		b.lcm.Call(ctx, method, JobArgs{JobID: jobID}, nil) //nolint:errcheck // resync re-issues
	}()
}

// Resume restarts a halted victim from its latest checkpoint via the
// LCM (asynchronously — see asyncLCM). If the signal is lost, the
// victim stays HALTED with its preempted marker set, so the next
// resync requeues it and retries. The marker is cleared when the
// RESUMED transition lands (tenancyStatusPump), keeping it truthful if
// this call races a user terminate.
func (b *tenantBackend) Resume(jobID string) error {
	b.asyncLCM("LCM.Resume", jobID)
	return nil
}

// Fail permanently rejects a queued job.
func (b *tenantBackend) Fail(jobID, reason string) error {
	return b.p.setJobStatus(jobID, StatusFailed, "admission rejected: "+reason)
}

// Lookup fetches the dispatcher view from MongoDB.
func (b *tenantBackend) Lookup(jobID string) (tenant.Job, error) {
	return b.p.tenantJob(jobID)
}

// Phase maps the job status machine onto the dispatcher's phases.
func (b *tenantBackend) Phase(jobID string) (tenant.Phase, error) {
	status, err := b.p.jobStatus(jobID)
	if err != nil {
		return 0, err
	}
	switch {
	case status == StatusQueued:
		return tenant.PhaseQueued, nil
	case status == StatusHalted:
		return tenant.PhaseHalted, nil
	case status.Terminal():
		return tenant.PhaseTerminal, nil
	default:
		return tenant.PhaseRunning, nil
	}
}

// PendingWork lists, from MongoDB, the jobs awaiting the dispatcher:
// QUEUED submissions (FCFS order is restored from their submission
// timestamps) and preempted victims that have reached their checkpoint.
func (b *tenantBackend) PendingWork() (queued, preempted []tenant.Job) {
	for _, d := range b.p.Jobs.Find(mongo.Filter{"status": string(StatusQueued)}, mongo.FindOpts{SortBy: "_id"}) {
		queued = append(queued, tenantJobFromDoc(d))
	}
	for _, d := range b.p.Jobs.Find(mongo.Filter{
		"status": string(StatusHalted), "preempted": true,
	}, mongo.FindOpts{SortBy: "_id"}) {
		preempted = append(preempted, tenantJobFromDoc(d))
	}
	return queued, preempted
}
