package mongo

import (
	"errors"
	"testing"
	"time"
)

// TestSetUnavailableGatesOps pins the failover-window contract: erroring
// ops return ErrUnavailable, Find/Count return empty (level-triggered
// safe), and committed state is intact after heal.
func TestSetUnavailableGatesOps(t *testing.T) {
	db := NewDB()
	c := db.C("jobs")
	if _, err := c.Insert(Doc{"_id": "j1", "state": "queued"}); err != nil {
		t.Fatal(err)
	}

	db.SetUnavailable(true)
	if _, err := c.Insert(Doc{"_id": "j2"}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Insert: %v", err)
	}
	if _, err := c.FindOne(Filter{"_id": "j1"}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("FindOne: %v", err)
	}
	if err := c.UpdateOne(Filter{"_id": "j1"}, Update{Set: Doc{"state": "x"}}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("UpdateOne: %v", err)
	}
	if err := c.Upsert(Filter{"_id": "j3"}, Update{Set: Doc{"v": 1}}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Upsert: %v", err)
	}
	if err := c.DeleteOne(Filter{"_id": "j1"}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("DeleteOne: %v", err)
	}
	if got := c.Find(Filter{}, FindOpts{}); len(got) != 0 {
		t.Fatalf("Find during outage returned %d docs, want 0", len(got))
	}
	if got := c.Count(Filter{}); got != 0 {
		t.Fatalf("Count during outage = %d, want 0", got)
	}

	db.SetUnavailable(false)
	d, err := c.FindOne(Filter{"_id": "j1"})
	if err != nil || d["state"] != "queued" {
		t.Fatalf("after heal: doc=%v err=%v — outage must not lose committed state", d, err)
	}
}

// TestDropFeedNextCommitsButSkipsFanout pins the dropped change-feed
// batch fault: the write commits (oplog + collection agree) but live
// subscribers see a Seq gap.
func TestDropFeedNextCommitsButSkipsFanout(t *testing.T) {
	db := NewDB()
	c := db.C("jobs")
	cs := db.Watch("jobs", 0)
	defer cs.Cancel()

	if _, err := c.Insert(Doc{"_id": "a"}); err != nil {
		t.Fatal(err)
	}
	ev := recvEvent(t, cs)
	if ev.ID != "a" {
		t.Fatalf("first event %+v", ev)
	}

	db.DropFeedNext(1)
	if _, err := c.Insert(Doc{"_id": "b"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(Doc{"_id": "c"}); err != nil {
		t.Fatal(err)
	}
	// "b" is committed but its event was dropped: the next delivery is
	// "c", with a visible Seq gap for the consumer to react to.
	ev2 := recvEvent(t, cs)
	if ev2.ID != "c" {
		t.Fatalf("post-drop event %+v, want c", ev2)
	}
	if ev2.Seq != ev.Seq+2 {
		t.Fatalf("seq gap not visible: %d -> %d", ev.Seq, ev2.Seq)
	}
	if _, err := c.FindOne(Filter{"_id": "b"}); err != nil {
		t.Fatalf("dropped-feed write must still be committed: %v", err)
	}
	if db.OplogLen() != ev2.Seq {
		t.Fatalf("oplog len %d, want %d", db.OplogLen(), ev2.Seq)
	}
}

// TestSecondaryFreezeBuffersAndDrains pins the frozen/laggy secondary:
// no ops apply while frozen, and thawing drains the buffered backlog in
// order with no loss.
func TestSecondaryFreezeBuffersAndDrains(t *testing.T) {
	db := NewDB()
	c := db.C("jobs")
	if _, err := c.Insert(Doc{"_id": "a", "n": 1}); err != nil {
		t.Fatal(err)
	}
	sec := db.StartSecondary()
	defer sec.Stop()
	waitApplied(t, sec, 1)

	sec.Freeze(true)
	if _, err := c.Insert(Doc{"_id": "b", "n": 2}); err != nil {
		t.Fatal(err)
	}
	if err := c.UpdateOne(Filter{"_id": "a"}, Update{Set: Doc{"n": 10}}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if got := sec.Applied(); got != 1 {
		t.Fatalf("frozen secondary applied %d, want 1", got)
	}

	sec.Freeze(false)
	waitApplied(t, sec, 3)
	if sec.C("jobs").Len() != 2 {
		t.Fatalf("secondary has %d docs, want 2", sec.C("jobs").Len())
	}
	d, err := sec.C("jobs").FindOne(Filter{"_id": "a"})
	if err != nil || d["n"] != 10 {
		t.Fatalf("thawed secondary doc a = %v (err %v), want n=10", d, err)
	}
}

func recvEvent(t *testing.T, cs *ChangeStream) ChangeEvent {
	t.Helper()
	select {
	case ev := <-cs.Events():
		return ev
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for change event")
		return ChangeEvent{}
	}
}

func waitApplied(t *testing.T, s *Secondary, want uint64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if s.Applied() >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("secondary applied %d, want >= %d", s.Applied(), want)
}
