package core

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"github.com/ffdl/ffdl/internal/obs"
)

// TestJobTraceMatchesHistory pins the trace surface's core contract: a
// completed job's span tree is causally ordered (one phase child per
// status-history entry, each closing exactly where the next opens) and
// the root span's duration equals the submit→COMPLETED wall time
// recorded in the durable status history — both are written from the
// same clock reads.
func TestJobTraceMatchesHistory(t *testing.T) {
	p := newTestPlatform(t, nil)
	c := p.Client()
	jobID, err := c.Submit(context.Background(), testManifest())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitStatus(t, c, jobID, StatusCompleted, 20*time.Second)

	reply, err := c.Status(context.Background(), jobID)
	if err != nil {
		t.Fatal(err)
	}
	hist := reply.History
	tr, err := c.Trace(context.Background(), jobID)
	if err != nil {
		t.Fatalf("Trace: %v", err)
	}
	if tr.JobID != jobID || tr.Root == nil {
		t.Fatalf("trace = %+v, want root for %s", tr, jobID)
	}

	// Root covers submit→COMPLETED exactly.
	last := hist[len(hist)-1]
	if !tr.Root.Start.Equal(hist[0].Time) {
		t.Fatalf("root starts %v, history starts %v", tr.Root.Start, hist[0].Time)
	}
	if !tr.Root.End.Equal(last.Time) {
		t.Fatalf("root ends %v, history ends %v", tr.Root.End, last.Time)
	}
	if got, want := tr.Root.Duration(), last.Time.Sub(hist[0].Time); got != want {
		t.Fatalf("root duration %v, history wall time %v", got, want)
	}

	// One phase child per history entry, same statuses, contiguous:
	// each phase ends exactly where the next begins.
	if len(tr.Root.Children) != len(hist) {
		t.Fatalf("trace has %d phases, history has %d entries", len(tr.Root.Children), len(hist))
	}
	for i, ph := range tr.Root.Children {
		if ph.Name != string(hist[i].Status) {
			t.Fatalf("phase %d = %q, history says %q", i, ph.Name, hist[i].Status)
		}
		if !ph.Start.Equal(hist[i].Time) {
			t.Fatalf("phase %q starts %v, history entry at %v", ph.Name, ph.Start, hist[i].Time)
		}
		if i+1 < len(tr.Root.Children) && !ph.End.Equal(tr.Root.Children[i+1].Start) {
			t.Fatalf("phase %q ends %v but next phase starts %v", ph.Name, ph.End, tr.Root.Children[i+1].Start)
		}
	}

	// The hot paths recorded their sub-operations: the LCM deploy, at
	// least one job-keyed coordination write, and a scheduler binding.
	subs := map[string]int{}
	for _, ph := range tr.Root.Children {
		for _, sub := range ph.Children {
			name := sub.Name
			if strings.HasPrefix(name, "sched.bind") {
				name = "sched.bind"
			}
			subs[name]++
			if sub.End.Before(sub.Start) {
				t.Fatalf("sub-span %q ends before it starts", sub.Name)
			}
		}
	}
	for _, want := range []string{"lcm.deploy", "etcd.propose", "sched.bind"} {
		if subs[want] == 0 {
			t.Fatalf("no %q sub-span recorded (got %v)", want, subs)
		}
	}

	// The Chrome export is valid trace-event JSON laid out from ts 0.
	buf, err := tr.ChromeTrace()
	if err != nil {
		t.Fatalf("ChromeTrace: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf, &events); err != nil {
		t.Fatalf("ChromeTrace output not JSON: %v", err)
	}
	if len(events) < len(hist)+1 {
		t.Fatalf("ChromeTrace emitted %d events, want >= %d", len(events), len(hist)+1)
	}
	if ts, ok := events[0]["ts"].(float64); !ok || ts != 0 {
		t.Fatalf("root event ts = %v, want 0", events[0]["ts"])
	}
}

// TestTraceFallsBackToHistory: a DisableObs platform has no live
// tracer, so the trace endpoint reconstructs the phase tree from the
// job's status history — the root duration contract still holds.
func TestTraceFallsBackToHistory(t *testing.T) {
	p := newTestPlatform(t, func(cfg *Config) { cfg.DisableObs = true })
	c := p.Client()
	jobID, err := c.Submit(context.Background(), testManifest())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitStatus(t, c, jobID, StatusCompleted, 20*time.Second)

	reply, err := c.Status(context.Background(), jobID)
	if err != nil {
		t.Fatal(err)
	}
	hist := reply.History
	tr, err := c.Trace(context.Background(), jobID)
	if err != nil {
		t.Fatalf("Trace: %v", err)
	}
	if tr.Root == nil || len(tr.Root.Children) != len(hist) {
		t.Fatalf("fallback trace = %+v, want %d phases", tr.Root, len(hist))
	}
	if got, want := tr.Root.Duration(), hist[len(hist)-1].Time.Sub(hist[0].Time); got != want {
		t.Fatalf("fallback root duration %v, history wall time %v", got, want)
	}
}

// TestMetricsSnapshotAndProm: after a completed job the registry
// snapshot served over the API carries the product counters and the
// hot-path histograms, and renders as Prometheus text exposition.
func TestMetricsSnapshotAndProm(t *testing.T) {
	p := newTestPlatform(t, nil)
	c := p.Client()
	jobID, err := c.Submit(context.Background(), testManifest())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitStatus(t, c, jobID, StatusCompleted, 20*time.Second)

	snap, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	for _, name := range []string{"mongo.op_latency", "etcd.propose_apply", "sched.pass", "commitlog.append", "rpc.roundtrip"} {
		h, ok := snap.Histogram(name)
		if !ok || h.Count == 0 {
			t.Fatalf("histogram %q empty after a completed job (ok=%v count=%d)", name, ok, h.Count)
		}
		if p50, p99 := h.Quantile(0.50), h.Quantile(0.99); p50 < 0 || p99 < p50 {
			t.Fatalf("histogram %q quantiles inverted: p50=%v p99=%v", name, p50, p99)
		}
	}
	if len(snap.Counters) == 0 {
		t.Fatal("snapshot has no counters")
	}

	prom := snap.Prom()
	for _, want := range []string{"# TYPE ffdl_mongo_op_latency histogram", "ffdl_etcd_propose_apply", "_total"} {
		if !strings.Contains(prom, want) {
			t.Fatalf("Prom output missing %q:\n%s", want, prom)
		}
	}

	// The trace endpoint and the metrics endpoint share types with the
	// obs package — the snapshot round-trips through the RPC layer.
	var _ obs.Snapshot = snap
}
