package core

import (
	"context"
	"fmt"
	"time"

	"github.com/ffdl/ffdl/internal/kube"
	"github.com/ffdl/ffdl/internal/mongo"
	"github.com/ffdl/ffdl/internal/rpc"
	"github.com/ffdl/ffdl/internal/sched"
)

// lcmReplica is one Lifecycle Manager instance. "The LCM is responsible
// for the job from submission to completion or failure" (§3.3), but it
// delegates the multi-step deployment to a per-job Guardian (a K8s Job)
// so the LCM itself stays stateless and crash-tolerant.
type lcmReplica struct {
	p     *Platform
	index int

	srv  *rpc.Server
	addr string
}

func newLCMReplica(p *Platform, index int) (*lcmReplica, error) {
	l := &lcmReplica{p: p, index: index}
	if err := l.listen(); err != nil {
		return nil, err
	}
	if index == 0 {
		// One logical recovery loop: re-launch Guardians for PENDING
		// jobs whose deployment hand-off was lost (API crash between
		// persist and deploy). Every replica could run this safely —
		// guardian creation is idempotent — but one keeps logs quiet.
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			l.recoveryLoop()
		}()
	}
	return l, nil
}

func (l *lcmReplica) listen() error {
	srv := rpc.NewServer()
	srv.Register("LCM.Deploy", JobArgs{}, l.handleDeploy)
	srv.Register("LCM.Halt", JobArgs{}, l.handleControl(controlHalt))
	srv.Register("LCM.Resume", JobArgs{}, l.handleControl(controlResume))
	srv.Register("LCM.Terminate", JobArgs{}, l.handleTerminate)
	addr, err := srv.Listen()
	if err != nil {
		return fmt.Errorf("core: lcm replica %d: %w", l.index, err)
	}
	l.srv, l.addr = srv, addr
	l.p.Registry.Add(ServiceLCM, addr)
	return nil
}

// handleDeploy creates the job's Guardian: "The LCM simply instantiates
// this delegate called the Guardian with all the metadata of the DL
// job ... a K8S Job ... a very quick single step process" (§3.3).
func (l *lcmReplica) handleDeploy(_ context.Context, arg any) (any, error) {
	req := arg.(JobArgs)
	return nil, l.ensureGuardian(req.JobID)
}

func (l *lcmReplica) ensureGuardian(jobID string) error {
	doc, err := l.p.findJob(jobID)
	if err != nil {
		return fmt.Errorf("core: deploy unknown job %s: %w", jobID, err)
	}
	name := guardianJobName(jobID)
	if obj, exists := l.p.Kube.Store().Get(kube.KindJob, name); exists {
		j, ok := obj.(*kube.Job)
		if !ok || !j.Failed {
			return nil // idempotent: the guardian is alive (or finished)
		}
		// The guardian burned through its restart budget — a sustained
		// crash loop (chaos node/pod kills, a long store outage at pod
		// start) can exhaust any finite backoff — but the DL job is not
		// terminal, so nobody is left to drive it. Resurrect the
		// guardian with a fresh Job object rather than strand the job;
		// its steps are idempotent and roll back (§3.3), so a fresh
		// incarnation is always safe.
		rec := docToRecord(doc)
		if rec.Status.Terminal() || rec.Status == StatusHalted || rec.Status == StatusQueued {
			return nil
		}
		l.p.Kube.Store().Delete(kube.KindJob, name)
		l.p.Metrics.Inc("lcm.guardian_resurrections")
	}
	var deployStart time.Time
	if l.p.Tracer != nil {
		deployStart = l.p.clock.Now()
	}
	l.p.Kube.Store().Put(kube.KindJob, name, &kube.Job{
		Name:         name,
		BackoffLimit: 20, // guardians are cheap; keep retrying
		Template: kube.PodSpec{
			// "Guardians consume only a fraction of a CPU and need
			// little RAM" (§3.7).
			Demand:      sched.Resources{MilliCPU: 100, MemoryMB: 128},
			Runtime:     runtimeGuardian,
			RuntimeArgs: map[string]string{"job": jobID},
			Type:        PodTypeGuardian,
		},
	})
	if l.p.Tracer != nil {
		l.p.Tracer.Sub(jobID, "lcm.deploy", deployStart, l.p.clock.Now())
	}
	return nil
}

// handleControl writes HALT/RESUME to the job's etcd control key, where
// its Guardian observes it.
func (l *lcmReplica) handleControl(verb string) rpc.Handler {
	return func(_ context.Context, arg any) (any, error) {
		req := arg.(JobArgs)
		status, err := l.p.jobStatus(req.JobID)
		if err != nil {
			return nil, err
		}
		if status.Terminal() {
			return nil, fmt.Errorf("core: job %s already %s", req.JobID, status)
		}
		_, err = l.p.tracedPut(req.JobID, keyControl(req.JobID), []byte(verb))
		return nil, err
	}
}

// handleTerminate cancels a job at whatever stage it is in.
func (l *lcmReplica) handleTerminate(_ context.Context, arg any) (any, error) {
	req := arg.(JobArgs)
	status, err := l.p.jobStatus(req.JobID)
	if err != nil {
		return nil, err
	}
	if status.Terminal() {
		return nil, nil
	}
	if status == StatusQueued || status == StatusPending {
		// No guardian yet: cancel directly. (The tenant dispatcher
		// drops a canceled QUEUED job on the terminal bus event.)
		return nil, l.p.setJobStatus(req.JobID, StatusCanceled, "terminated by user before deployment")
	}
	_, err = l.p.tracedPut(req.JobID, keyControl(req.JobID), []byte(controlTerminate))
	return nil, err
}

// recoveryLoop re-deploys admitted jobs that have no Guardian. This is
// the "in the case of a failure that necessitates that the entire job
// be restarted, information stored in MongoDB can be used readily
// without the need for user intervention" path (§3.2). It wakes on the
// job-status event bus — a submitted job's PENDING event arrives the
// moment the API persists it — and only falls back to scanning MongoDB
// on a slow safety tick, covering bus drops and jobs submitted before
// this replica started.
//
// On a durable (DataDir) platform the scan covers every admitted,
// non-terminal, non-HALTED status, not just PENDING: on a cold process
// restart the reopened metadata store holds jobs that were DEPLOYING or
// PROCESSING when the process died — they lost their Guardians with the
// rest of the kube state, and only this scan brings them back. The
// wider scan is idempotent — ensureGuardian no-ops while the job's
// Guardian kube Job exists (kube keeps Job objects after success), and
// setJobStatus admits re-entrant DEPLOYING from every scanned state.
// HALTED stays excluded: a halted job resumes only on the user's RESUME
// verb; QUEUED stays excluded: admission belongs to the tenant
// dispatcher.
//
// Memory platforms scan the same statuses: their metadata store is born
// empty, so every mid-flight job the scan sees was admitted through
// this platform and normally still has its Guardian — making the scan a
// no-op — but a guardian whose kube Job exhausted its restart backoff
// (sustained chaos kill loops) is gone for good, and only this scan
// (via ensureGuardian's resurrection path) brings it back.
func (l *lcmReplica) recoveryLoop() {
	events, cancel := l.p.bus.Subscribe("", 256)
	defer cancel()
	ticker := l.p.clock.NewTicker(l.p.cfg.PollInterval * 10)
	defer ticker.Stop()
	recoverable := []JobStatus{
		StatusPending, StatusDeploying, StatusDownloading,
		StatusProcessing, StatusStoring, StatusResumed,
	}
	scan := func() {
		for _, st := range recoverable {
			// One indexed equality query per status keeps the scan off
			// the full-collection path (status is an indexed field).
			docs := l.p.Jobs.Find(mongo.Filter{"status": string(st)}, mongo.FindOpts{})
			for _, d := range docs {
				id, _ := d["_id"].(string)
				if id != "" {
					l.ensureGuardian(id) //nolint:errcheck // retried next wake
				}
			}
		}
	}
	scan() // catch anything persisted before the subscription
	for {
		select {
		case <-l.p.stopCh:
			return
		case ev := <-events:
			if ev.Status == StatusPending {
				l.ensureGuardian(ev.JobID) //nolint:errcheck // safety tick retries
			}
		case <-ticker.C:
			scan()
		}
	}
}

// crashAndRestart models an LCM replica crash (Table 3: LCM 4-6s).
func (l *lcmReplica) crashAndRestart() {
	l.p.Registry.Remove(ServiceLCM, l.addr)
	l.srv.Close()
	l.p.Metrics.Inc("lcm.crashes")
	l.p.wg.Add(1)
	go func() {
		defer l.p.wg.Done()
		l.p.clock.Sleep(l.p.cfg.LCMRestartDelay)
		select {
		case <-l.p.stopCh:
			return
		default:
		}
		if err := l.listen(); err == nil {
			l.p.Metrics.Inc("lcm.restarts")
		}
	}()
}

func (l *lcmReplica) stop() {
	l.p.Registry.Remove(ServiceLCM, l.addr)
	l.srv.Close()
}

// manifestGang converts a manifest to the scheduler's gang shape for
// admission accounting.
func manifestGang(m *Manifest, jobID string) *sched.Gang {
	g := &sched.Gang{JobID: jobID, User: m.User}
	for i := 0; i < m.Learners; i++ {
		g.Pods = append(g.Pods, sched.PodSpec{
			Name:    fmt.Sprintf("%s-l%d", jobID, i),
			JobID:   jobID,
			Demand:  m.LearnerDemand(),
			GPUType: string(m.GPUType),
		})
	}
	return g
}
