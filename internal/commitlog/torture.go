package commitlog

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
)

// Torture is the crash/compaction torture driver: it replays a
// recorded append+commit workload against the file-backed SegmentStore
// behind a FaultStore, kills the store at randomized crash points,
// reopens, and asserts the recovery guarantees the Log documents:
//
//   - the recovered log is a prefix of the reference workload, with
//     any torn tail truncated (never a silent mid-log gap);
//   - every registered consumer's recovered cursor is exactly its
//     newest fully-acknowledged Commit, and replaying from it yields
//     exactly the unprocessed suffix — no loss, no duplication;
//   - offsets are never reused: appends after recovery mint offsets
//     past everything the lost suffix had assigned.
//
// It is exported (rather than living in a _test file) so the
// commitlog-smoke CI gate and the ffdl-bench retention experiment can
// run it outside `go test`.

// TortureConfig parameterizes a torture run.
type TortureConfig struct {
	// Dir is the scratch root; each crash point runs in its own
	// subdirectory. Required.
	Dir string
	// Ops is the recorded workload length in appends (default 300).
	Ops int
	// CrashPoints is how many randomized crash points to kill at
	// (default 200). Points are drawn uniformly over the workload's
	// full byte journal.
	CrashPoints int
	// Seed drives the workload and the crash-point draw.
	Seed int64
	// Corrupt additionally flips bits shortly before each crash point,
	// modeling a torn sector whose tail is garbage rather than
	// missing. Recovery must still yield a clean prefix and a
	// fully-acknowledged consumer cursor (though not necessarily the
	// newest one — corruption may eat it).
	Corrupt bool
	// SegmentRecords overrides the log's segment bound (default 48, so
	// a short workload still seals several segments).
	SegmentRecords int
}

// TortureResult summarizes a run. Violations is empty on success; each
// entry pins one crash point's broken invariant.
type TortureResult struct {
	CrashPoints  int      `json:"crash_points"`
	JournalBytes int64    `json:"journal_bytes"`
	RecoveredMin int      `json:"recovered_min"` // fewest records any crash point recovered
	RecoveredMax int      `json:"recovered_max"`
	Violations   []string `json:"violations,omitempty"`
}

// tortureRef is the recorded reference workload: the appended records
// in order, plus the byte journal length of a crash-free run.
type tortureRef struct {
	recs    []Record
	journal int64
}

const tortureConsumer = "torture-consumer"

// tortureOpts returns the log options every torture run uses.
func tortureOpts(cfg *TortureConfig) Options {
	return Options{SegmentRecords: cfg.SegmentRecords, SegmentBytes: 1 << 20}
}

// runWorkload replays the deterministic workload against the log until
// an op fails (the injected crash) or the workload ends. It returns
// the sequence of fully-acknowledged consumer commits, newest last.
func runWorkload(l *Log, cfg *TortureConfig) (acked []uint64) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	reader := l.ReadFrom(0)
	payload := make([]byte, 0, 64)
	for i := 0; i < cfg.Ops; i++ {
		key := fmt.Sprintf("key-%02d", rng.Intn(24))
		payload = payload[:0]
		n := 8 + rng.Intn(48)
		for j := 0; j < n; j++ {
			payload = append(payload, byte(rng.Intn(256)))
		}
		if _, err := l.Append(key, payload); err != nil {
			return acked
		}
		// Every few appends the consumer catches up and durably
		// commits its cursor.
		if i%7 == 6 {
			for {
				if _, err := reader.Next(); err != nil {
					break
				}
			}
			if err := l.Commit(tortureConsumer, reader.Offset()); err != nil {
				return acked
			}
			acked = append(acked, reader.Offset())
		}
	}
	return acked
}

// record the crash-free reference: the full append sequence and the
// journal length crash points are drawn from.
func tortureReference(cfg *TortureConfig) (tortureRef, error) {
	dir := filepath.Join(cfg.Dir, "reference")
	fs, err := OpenFileStore(dir)
	if err != nil {
		return tortureRef{}, err
	}
	fault := NewFaultStore(fs, -1)
	l, err := Open(fault, tortureOpts(cfg))
	if err != nil {
		return tortureRef{}, err
	}
	runWorkload(l, cfg)
	return tortureRef{recs: l.Records(0), journal: fault.Written()}, nil
}

// Torture runs the full suite and returns the per-invariant verdicts.
func Torture(cfg TortureConfig) (TortureResult, error) {
	if cfg.Dir == "" {
		return TortureResult{}, fmt.Errorf("commitlog: torture: Dir is required")
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 300
	}
	if cfg.CrashPoints <= 0 {
		cfg.CrashPoints = 200
	}
	if cfg.SegmentRecords <= 0 {
		cfg.SegmentRecords = 48
	}
	ref, err := tortureReference(&cfg)
	if err != nil {
		return TortureResult{}, err
	}
	res := TortureResult{
		CrashPoints:  cfg.CrashPoints,
		JournalBytes: ref.journal,
		RecoveredMin: -1,
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	for i := 0; i < cfg.CrashPoints; i++ {
		crashAt := 1 + rng.Int63n(ref.journal)
		dir := filepath.Join(cfg.Dir, fmt.Sprintf("crash-%04d", i))
		recovered, violations := tortureOne(&cfg, &ref, dir, crashAt, rng)
		os.RemoveAll(dir) //nolint:errcheck // scratch cleanup; next run uses a fresh dir
		for _, v := range violations {
			res.Violations = append(res.Violations, fmt.Sprintf("crash@%d: %s", crashAt, v))
		}
		if res.RecoveredMin < 0 || recovered < res.RecoveredMin {
			res.RecoveredMin = recovered
		}
		if recovered > res.RecoveredMax {
			res.RecoveredMax = recovered
		}
	}
	if res.RecoveredMin < 0 {
		res.RecoveredMin = 0
	}
	return res, nil
}

// tortureOne crashes one run at crashAt, reopens, and checks every
// invariant. It returns the recovered record count and any violations.
func tortureOne(cfg *TortureConfig, ref *tortureRef, dir string, crashAt int64, rng *rand.Rand) (int, []string) {
	var violations []string
	fail := func(format string, args ...any) {
		violations = append(violations, fmt.Sprintf(format, args...))
	}
	fs, err := OpenFileStore(dir)
	if err != nil {
		return 0, []string{fmt.Sprintf("open file store: %v", err)}
	}
	fault := NewFaultStore(fs, crashAt)
	if cfg.Corrupt && crashAt > 2 {
		back := 1 + rng.Int63n(min64(40, crashAt-1))
		fault.CorruptAt(crashAt-back, 0x80|byte(rng.Intn(0x80)))
	}
	l, err := Open(fault, tortureOpts(cfg))
	if err != nil {
		// A crash during the very first segment create can legally
		// fail Open; recovery below must still work on the bytes.
		l = nil
	}
	var acked []uint64
	if l != nil {
		acked = runWorkload(l, cfg)
	}

	// "Restart": reopen the raw file store, no fault injection.
	rfs, err := OpenFileStore(dir)
	if err != nil {
		return 0, []string{fmt.Sprintf("reopen file store: %v", err)}
	}
	rl, err := Open(rfs, tortureOpts(cfg))
	if err != nil {
		return 0, []string{fmt.Sprintf("recovery open: %v", err)}
	}

	// Invariant 1: recovered records are a prefix of the reference.
	recs := rl.Records(0)
	if len(recs) > len(ref.recs) {
		fail("recovered %d records, reference has %d", len(recs), len(ref.recs))
	}
	for i := range recs {
		if i >= len(ref.recs) {
			break
		}
		want, got := ref.recs[i], recs[i]
		if got.Offset != want.Offset || got.Key != want.Key || !bytes.Equal(got.Payload, want.Payload) {
			fail("record %d diverges from reference: got (%d,%q), want (%d,%q)",
				i, got.Offset, got.Key, want.Offset, want.Key)
			break
		}
	}

	// Invariant 2: the recovered consumer cursor is a fully-acked
	// commit — the newest one unless corruption ate it.
	cur, registered := rl.Committed(tortureConsumer)
	switch {
	case !registered:
		if len(acked) > 0 && !cfg.Corrupt {
			fail("consumer lost: %d acked commits, none recovered", len(acked))
		}
	case !containsU64(acked, cur):
		fail("recovered cursor %d was never acked (acked=%v)", cur, acked)
	case !cfg.Corrupt && cur != acked[len(acked)-1]:
		fail("recovered cursor %d is not the newest acked commit %d", cur, acked[len(acked)-1])
	}

	// Invariant 3: exactly-once resume — replay from the cursor is
	// exactly the reference's unprocessed suffix of the recovered
	// prefix.
	if registered && cur <= endOffset(recs) {
		replay := rl.Records(cur)
		wantLen := 0
		for _, r := range ref.recs {
			if r.Offset >= cur && r.Offset <= endOffset(recs) && len(recs) > 0 {
				wantLen++
			}
		}
		if len(replay) != wantLen {
			fail("replay from %d: %d records, want %d", cur, len(replay), wantLen)
		}
	}

	// Invariant 4: no offset reuse — a post-recovery append mints an
	// offset past the recovered end AND past the consumer cursor.
	off, err := rl.Append("post-recovery", []byte("x"))
	if err != nil {
		fail("post-recovery append: %v", err)
	} else {
		if len(recs) > 0 && off <= endOffset(recs) {
			fail("offset %d reused (recovered end %d)", off, endOffset(recs))
		}
		if registered && off < cur {
			fail("offset %d minted below consumer cursor %d", off, cur)
		}
	}
	return len(recs), violations
}

// endOffset returns the last record's offset (0 for empty).
func endOffset(recs []Record) uint64 {
	if len(recs) == 0 {
		return 0
	}
	return recs[len(recs)-1].Offset
}

func containsU64(s []uint64, v uint64) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
