package commitlog

import (
	"errors"
	"sync"
)

// ErrCrashed reports a write issued after (or torn by) the injected
// crash point. The wrapped store is dead from that moment on; the
// torture driver reopens the inner store to model the post-crash
// restart.
var ErrCrashed = errors.New("commitlog: injected crash")

// FaultStore wraps a SegmentStore with crash and corruption injection
// for the torture suite. Its crash model is a linear write-order
// journal: every byte handed to Append/AppendOffsets is assigned a
// global sequence number in write order; a crash at byte N makes all
// bytes with sequence < N durable, tears the write containing N
// (its prefix lands, the rest is lost), and loses everything after.
// Atomic operations (Rewrite, RewriteOffsets, Create, Remove) either
// happen entirely before the crash point or not at all — they model
// temp-file-plus-rename, charging their full byte cost to the journal.
//
// CorruptAt additionally flips bits in chosen journal bytes as they
// are written, modeling a torn sector whose tail is garbage rather
// than missing.
type FaultStore struct {
	inner SegmentStore

	mu      sync.Mutex
	written int64 // journal position: bytes durably handed to inner
	crashAt int64 // crash point (<0 = never)
	dead    bool
	corrupt map[int64]byte // journal position -> XOR mask
}

// NewFaultStore wraps inner with a crash point at journal byte
// crashAt (crashAt < 0 never crashes).
func NewFaultStore(inner SegmentStore, crashAt int64) *FaultStore {
	return &FaultStore{inner: inner, crashAt: crashAt}
}

// CorruptAt flips mask into the byte at journal position pos when it
// is written.
func (f *FaultStore) CorruptAt(pos int64, mask byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.corrupt == nil {
		f.corrupt = make(map[int64]byte)
	}
	f.corrupt[pos] = mask
}

// Written returns the journal position: total bytes durably written.
// Running a workload with no crash point measures the journal length,
// from which torture crash points are drawn.
func (f *FaultStore) Written() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.written
}

// Crashed reports whether the crash point has been hit.
func (f *FaultStore) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dead
}

// admit charges n bytes to the journal, returning how many of them
// land durably and whether the crash fired. Corruption masks are
// applied to the admitted prefix.
func (f *FaultStore) admit(data []byte) (durable []byte, crashed bool) {
	n := int64(len(data))
	if f.dead {
		return nil, true
	}
	keep := n
	if f.crashAt >= 0 && f.written+n > f.crashAt {
		keep = f.crashAt - f.written
		if keep < 0 {
			keep = 0
		}
		f.dead = true
		crashed = true
	}
	durable = data[:keep]
	if len(f.corrupt) > 0 && keep > 0 {
		durable = append([]byte(nil), durable...)
		for pos, mask := range f.corrupt {
			if pos >= f.written && pos < f.written+keep {
				durable[pos-f.written] ^= mask
			}
		}
	}
	f.written += keep
	return durable, crashed
}

// admitAtomic charges n bytes and reports whether the whole operation
// lands before the crash point.
func (f *FaultStore) admitAtomic(n int64) (ok bool) {
	if f.dead {
		return false
	}
	if f.crashAt >= 0 && f.written+n > f.crashAt {
		f.dead = true
		return false
	}
	f.written += n
	return true
}

// Segments implements SegmentStore (reads are free: recovery reopens
// the inner store directly anyway).
func (f *FaultStore) Segments() ([]uint64, error) { return f.inner.Segments() }

// Load implements SegmentStore.
func (f *FaultStore) Load(base uint64) ([]byte, error) { return f.inner.Load(base) }

// LoadOffsets implements SegmentStore.
func (f *FaultStore) LoadOffsets() ([]byte, error) { return f.inner.LoadOffsets() }

// Create implements SegmentStore; atomic, zero-cost in the journal.
func (f *FaultStore) Create(base uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead {
		return ErrCrashed
	}
	return f.inner.Create(base)
}

// Append implements SegmentStore with torn-write injection.
func (f *FaultStore) Append(base uint64, data []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	durable, crashed := f.admit(data)
	var n int
	var err error
	if len(durable) > 0 {
		n, err = f.inner.Append(base, durable)
	}
	if crashed {
		return n, ErrCrashed
	}
	return n, err
}

// AppendOffsets implements SegmentStore with torn-write injection.
func (f *FaultStore) AppendOffsets(data []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	durable, crashed := f.admit(data)
	var n int
	var err error
	if len(durable) > 0 {
		n, err = f.inner.AppendOffsets(durable)
	}
	if crashed {
		return n, ErrCrashed
	}
	return n, err
}

// Rewrite implements SegmentStore; all-or-nothing.
func (f *FaultStore) Rewrite(base uint64, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.admitAtomic(int64(len(data))) {
		return ErrCrashed
	}
	return f.inner.Rewrite(base, data)
}

// RewriteOffsets implements SegmentStore; all-or-nothing.
func (f *FaultStore) RewriteOffsets(data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.admitAtomic(int64(len(data))) {
		return ErrCrashed
	}
	return f.inner.RewriteOffsets(data)
}

// Remove implements SegmentStore; atomic, zero-cost in the journal.
func (f *FaultStore) Remove(base uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead {
		return ErrCrashed
	}
	return f.inner.Remove(base)
}
