package kube

import (
	"sort"
	"strings"
	"sync"
)

// cloneObject deep-copies any stored object type.
func cloneObject(obj any) any {
	switch o := obj.(type) {
	case *Pod:
		return o.Clone()
	case *Node:
		return o.Clone()
	case *StatefulSet:
		return o.Clone()
	case *Deployment:
		return o.Clone()
	case *Job:
		return o.Clone()
	case *NetworkPolicy:
		c := *o
		return &c
	default:
		return obj
	}
}

// Store is the API-server state: typed object maps with watch streams.
// All reads return deep copies; all writes replace whole objects —
// the same interaction model controllers have with a real API server.
type Store struct {
	mu       sync.RWMutex
	objects  map[string]map[string]any // kind -> name -> object
	watchers []*storeWatcher
	nextW    int
	nextUID  uint64
	events   []Event
	// rev counts store mutations; every WatchEvent carries the revision
	// of the mutation it reports, so a consumer that folds events into
	// an incremental view can audit "am I current?" by comparing its
	// last folded revision against Revision().
	rev uint64
}

type storeWatcher struct {
	id     int
	kind   string // "" = all kinds
	ch     chan WatchEvent
	closed bool
	// dropped counts events discarded because this watcher's buffer was
	// full — the signal that its consumer's incremental view may have
	// drifted and needs a resync rebuild. Read via StoreWatch.
	dropped uint64
}

// Object kinds.
const (
	KindPod           = "Pod"
	KindNode          = "Node"
	KindStatefulSet   = "StatefulSet"
	KindDeployment    = "Deployment"
	KindJob           = "Job"
	KindNetworkPolicy = "NetworkPolicy"
)

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{objects: make(map[string]map[string]any)}
}

// Put creates or replaces an object. New pods default to the Pending
// phase and get a fresh UID, mirroring API-server defaulting.
func (s *Store) Put(kind, name string, obj any) {
	s.mu.Lock()
	if p, ok := obj.(*Pod); ok {
		if p.Status.Phase == "" {
			p.Status.Phase = PodPending
		}
		if p.UID == 0 {
			s.nextUID++
			p.UID = s.nextUID
		}
	}
	m, ok := s.objects[kind]
	if !ok {
		m = make(map[string]any)
		s.objects[kind] = m
	}
	old, existed := m[name]
	m[name] = cloneObject(obj)
	evType := WatchAdded
	var prev any
	if existed {
		evType = WatchModified
		prev = cloneObject(old)
	}
	s.notifyLocked(WatchEvent{Type: evType, Kind: kind, Name: name, Object: cloneObject(obj), Prev: prev})
	s.mu.Unlock()
}

// Get returns a deep copy of an object.
func (s *Store) Get(kind, name string) (any, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	obj, ok := s.objects[kind][name]
	if !ok {
		return nil, false
	}
	return cloneObject(obj), true
}

// Delete removes an object; it reports whether it existed.
func (s *Store) Delete(kind, name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.objects[kind]
	old, ok := m[name]
	if !ok {
		return false
	}
	delete(m, name)
	s.notifyLocked(WatchEvent{Type: WatchDeleted, Kind: kind, Name: name, Prev: cloneObject(old)})
	return true
}

// List returns deep copies of all objects of a kind whose name has the
// given prefix, name-sorted.
func (s *Store) List(kind, prefix string) []any {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.objects[kind]))
	for name := range s.objects[kind] {
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	out := make([]any, 0, len(names))
	for _, name := range names {
		out = append(out, cloneObject(s.objects[kind][name]))
	}
	return out
}

// StoreWatch is one subscription to the store's event stream. Delivery
// is best-effort per watcher: an event that cannot be buffered is
// dropped and counted (Dropped), never blocked on — which is why every
// consumer pairs its watch with a level-triggered resync safety net.
// See docs/watch-protocol.md ("kube store watch" layer).
type StoreWatch struct {
	s *Store
	w *storeWatcher
}

// Events returns the subscription's delivery channel.
func (sw *StoreWatch) Events() <-chan WatchEvent { return sw.w.ch }

// Dropped returns the number of events discarded for this watcher since
// the last TakeDropped. Nonzero means the consumer's incremental view
// may have silently drifted and must be rebuilt from a full listing.
func (sw *StoreWatch) Dropped() uint64 {
	sw.s.mu.RLock()
	defer sw.s.mu.RUnlock()
	return sw.w.dropped
}

// TakeDropped returns the dropped-events count and clears it; consumers
// call it at the start of a resync rebuild (the rebuild subsumes the
// counted gaps, while drops that land mid-rebuild stay counted for the
// next tick).
func (sw *StoreWatch) TakeDropped() uint64 {
	sw.s.mu.Lock()
	defer sw.s.mu.Unlock()
	d := sw.w.dropped
	sw.w.dropped = 0
	return d
}

// Cancel releases the watcher and closes its channel.
func (sw *StoreWatch) Cancel() {
	s := sw.s
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, x := range s.watchers {
		if x.id == sw.w.id {
			s.watchers = append(s.watchers[:i], s.watchers[i+1:]...)
			if !x.closed {
				x.closed = true
				close(x.ch)
			}
			return
		}
	}
}

// Watch subscribes to changes of one kind ("" = all).
func (s *Store) Watch(kind string) *StoreWatch {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextW++
	w := &storeWatcher{id: s.nextW, kind: kind, ch: make(chan WatchEvent, 512)}
	s.watchers = append(s.watchers, w)
	return &StoreWatch{s: s, w: w}
}

// Revision returns the store's mutation counter (the revision carried
// by the latest WatchEvent).
func (s *Store) Revision() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rev
}

func (s *Store) notifyLocked(ev WatchEvent) {
	s.rev++
	ev.Rev = s.rev
	for _, w := range s.watchers {
		if w.closed || (w.kind != "" && w.kind != ev.Kind) {
			continue
		}
		select {
		case w.ch <- ev:
		default:
			// Slow watcher: drop the event and count the gap so the
			// consumer's next resync tick knows its view drifted.
			w.dropped++
		}
	}
}

// RecordEvent appends a cluster event (FailedScheduling, Killing, ...).
func (s *Store) RecordEvent(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, ev)
}

// Events returns a copy of all recorded events, optionally filtered by
// reason.
func (s *Store) Events(reason string) []Event {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Event, 0, len(s.events))
	for _, ev := range s.events {
		if reason == "" || ev.Reason == reason {
			out = append(out, ev)
		}
	}
	return out
}

// --- typed convenience accessors ---

// GetPod returns a pod copy.
func (s *Store) GetPod(name string) (*Pod, bool) {
	obj, ok := s.Get(KindPod, name)
	if !ok {
		return nil, false
	}
	return obj.(*Pod), true
}

// PutPod stores a pod.
func (s *Store) PutPod(p *Pod) { s.Put(KindPod, p.Name, p) }

// ListPods lists pods by name prefix.
func (s *Store) ListPods(prefix string) []*Pod {
	objs := s.List(KindPod, prefix)
	out := make([]*Pod, len(objs))
	for i, o := range objs {
		out[i] = o.(*Pod)
	}
	return out
}

// GetNode returns a node copy.
func (s *Store) GetNode(name string) (*Node, bool) {
	obj, ok := s.Get(KindNode, name)
	if !ok {
		return nil, false
	}
	return obj.(*Node), true
}

// PutNode stores a node.
func (s *Store) PutNode(n *Node) { s.Put(KindNode, n.Name, n) }

// ListNodes lists all nodes.
func (s *Store) ListNodes() []*Node {
	objs := s.List(KindNode, "")
	out := make([]*Node, len(objs))
	for i, o := range objs {
		out[i] = o.(*Node)
	}
	return out
}

// UpdatePod applies fn to the stored pod under the store lock and
// republishes it; it reports whether the pod existed. This is the
// compare-free variant of the Kubernetes update-conflict loop, adequate
// because our controllers partition ownership of status fields.
func (s *Store) UpdatePod(name string, fn func(*Pod)) bool {
	s.mu.Lock()
	obj, ok := s.objects[KindPod][name]
	if !ok {
		s.mu.Unlock()
		return false
	}
	p := obj.(*Pod)
	prev := p.Clone()
	fn(p)
	s.notifyLocked(WatchEvent{Type: WatchModified, Kind: KindPod, Name: name, Object: p.Clone(), Prev: prev})
	s.mu.Unlock()
	return true
}

// UpdateNode applies fn to a stored node.
func (s *Store) UpdateNode(name string, fn func(*Node)) bool {
	s.mu.Lock()
	obj, ok := s.objects[KindNode][name]
	if !ok {
		s.mu.Unlock()
		return false
	}
	n := obj.(*Node)
	prev := n.Clone()
	fn(n)
	s.notifyLocked(WatchEvent{Type: WatchModified, Kind: KindNode, Name: name, Object: n.Clone(), Prev: prev})
	s.mu.Unlock()
	return true
}

// UpdateJob applies fn to a stored Job.
func (s *Store) UpdateJob(name string, fn func(*Job)) bool {
	s.mu.Lock()
	obj, ok := s.objects[KindJob][name]
	if !ok {
		s.mu.Unlock()
		return false
	}
	j := obj.(*Job)
	prev := j.Clone()
	fn(j)
	s.notifyLocked(WatchEvent{Type: WatchModified, Kind: KindJob, Name: name, Object: j.Clone(), Prev: prev})
	s.mu.Unlock()
	return true
}
