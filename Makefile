GO ?= go

.PHONY: all fmt vet build test race cover bench-smoke fuzz-smoke sched-scale-smoke watch-churn-smoke tenant-smoke throughput-smoke commitlog-smoke recovery-smoke obs-smoke chaos-smoke docs-check ci

all: build

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# -shuffle=on randomizes test order within each package, so hidden
# inter-test state (a leaked goroutine, a shared temp dir) surfaces in
# CI instead of in the field.
test:
	$(GO) test -shuffle=on ./...

# Race gate for the concurrency-heavy paths: the tenant dispatcher and
# the scheduler/admission package it drives, the event substrate (every
# subsystem appends to commit logs under concurrent readers), the core
# platform that fans its events out, the durable stores layered on
# the commit log (mongo oplog recovery, etcd watch history), the
# observability registry every hot path hammers concurrently, and the
# fault-injection + retry/breaker layers whose whole job is to mutate
# shared state from injector goroutines.
race:
	$(GO) vet ./internal/tenant/... ./internal/sched/... ./internal/commitlog/... ./internal/core/... ./internal/mongo/... ./internal/etcd/... ./internal/obs/... ./internal/chaos/... ./internal/resilience/...
	$(GO) test -race -short ./internal/tenant/... ./internal/sched/... ./internal/commitlog/... ./internal/core/... ./internal/mongo/... ./internal/etcd/... ./internal/obs/... ./internal/chaos/... ./internal/resilience/...

# Coverage artifact: a whole-repo coverprofile plus the per-function
# summary CI uploads (cover.out, cover.txt).
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tee cover.txt

# Perf gate: one iteration of the Table 7 / Fig. 5 scale experiment and
# of the scheduler scale experiment, so a regression that breaks or
# grossly slows either benchmark path fails CI.
bench-smoke:
	$(GO) test -run=xxx -bench='BenchmarkTable7Figure5ScaleTest|BenchmarkSchedulerScale' -benchtime=1x .

# Small-size scheduler scale sweep; emits the BENCH json artifact CI
# uploads (bench-sched.json).
sched-scale-smoke:
	$(GO) run ./cmd/ffdl-bench -sched-scale -sched-nodes 200,400 -json bench-sched.json

# Small watch-churn run (resyncs per snapshot restore, persisted event
# log vs ablation); emits the BENCH json artifact CI uploads
# (bench-watch.json).
watch-churn-smoke:
	$(GO) run ./cmd/ffdl-bench -watch-churn -churn-jobs 200 -churn-cycles 2 -json bench-watch.json

# Small multi-tenant run (queue delay + preemption, with vs without
# preemption); emits the BENCH json artifact CI uploads
# (bench-tenant.json).
tenant-smoke:
	$(GO) run ./cmd/ffdl-bench -tenant -tenant-iters 2 -json bench-tenant.json

# Fuzz gate for the hand-rolled wire codecs: a short coverage-guided
# run of each roundtrip fuzzer (etcd command entries, RPC frames,
# commit-log segments and consumer-offset maps). Corrupt or truncated
# input must error, never panic; go's fuzzer allows one -fuzz target
# per invocation, hence one run each.
fuzz-smoke:
	$(GO) test -run=xxx -fuzz=FuzzCommandCodecRoundtrip -fuzztime=10s ./internal/etcd
	$(GO) test -run=xxx -fuzz=FuzzFrameCodecRoundtrip -fuzztime=10s ./internal/rpc
	$(GO) test -run=xxx -fuzz=FuzzSegmentRecordRoundtrip -fuzztime=10s ./internal/commitlog
	$(GO) test -run=xxx -fuzz=FuzzOffsetMapDecode -fuzztime=10s ./internal/commitlog

# Small control-plane throughput run (submissions dispatched/sec +
# etcd proposals/sec + mongo ops/sec + codec round-trips/sec) across
# all three arms: group commit + binary entry codec, the gob-codec
# ablation, and the seed's unbatched + gob arm; emits the BENCH json
# artifact CI uploads (bench-throughput.json) — the perf trajectory
# baseline.
throughput-smoke:
	$(GO) run ./cmd/ffdl-bench -throughput -tp-submitters 32 -tp-jobs 64 -json bench-throughput.json

# Small commit-log run: a crash-torture smoke (any invariant violation
# fails the gate) plus the replay-vs-resync retention micro-bench;
# emits the BENCH json artifact CI uploads (bench-commitlog.json).
commitlog-smoke:
	$(GO) run ./cmd/ffdl-bench -commitlog -cl-crash 40 -cl-events 4000 -json bench-commitlog.json

# Small restart-the-world recovery run (reopen latency + what survives,
# FileStore DataDir vs the MemStore ablation); emits the BENCH json
# artifact CI uploads (bench-recovery.json).
recovery-smoke:
	$(GO) run ./cmd/ffdl-bench -recovery -rc-jobs 2 -rc-churn 3000 -json bench-recovery.json

# Observability gate: interleaved instrumented-vs-DisableObs throughput
# pairs; fails (exit 1) if the median overhead exceeds the 5% budget.
# Emits the BENCH json artifact CI uploads (bench-obs.json).
obs-smoke:
	$(GO) run ./cmd/ffdl-bench -obs-overhead -obs-submitters 16 -obs-jobs 32 -obs-pairs 3 -json bench-obs.json

# Chaos gate: the full soak — calm baseline arm, then every fault
# injector concurrent (node crashes, pod kills, etcd outages + snapshot
# restores, mongo failovers/feed drops/freezes, RPC drop/dup/delay,
# replica crash-restarts) — with hard invariants (every job terminal,
# watch exactly-once/in-order, admission conserved, log offsets
# monotone) and a chaos-vs-calm latency SLO. Any violation exits 1
# after writing the BENCH json artifact CI uploads (bench-chaos.json).
chaos-smoke:
	$(GO) run ./cmd/ffdl-bench -chaos-soak -soak-users 2 -soak-jobs 2 -soak-nodes 3 -json bench-chaos.json

# Docs drift gate: README.md must mention every example, and
# docs/architecture.md must cover every internal package, and the watch
# protocol spec must exist, cover all four watch layers, and be linked
# from the architecture doc and the README.
docs-check:
	@test -f README.md || { echo "README.md missing"; exit 1; }
	@test -f docs/architecture.md || { echo "docs/architecture.md missing"; exit 1; }
	@test -f docs/watch-protocol.md || { echo "docs/watch-protocol.md missing"; exit 1; }
	@ok=1; \
	for d in examples/*/; do \
		name=$$(basename $$d); \
		grep -q "examples/$$name" README.md || { echo "README.md does not mention examples/$$name"; ok=0; }; \
	done; \
	for d in internal/*/; do \
		pkg=$$(basename $$d); \
		grep -q "internal/$$pkg" docs/architecture.md || { echo "docs/architecture.md does not cover internal/$$pkg"; ok=0; }; \
	done; \
	for anchor in WatchStream "Store.Watch" "status bus" WatchStatus CompactRevisions TakeDropped "change feed" EventResync Dispatcher commitlog ReplayJob FollowLogs "retained floor" DataDir "survive a process restart"; do \
		grep -q "$$anchor" docs/watch-protocol.md || { echo "docs/watch-protocol.md does not cover '$$anchor'"; ok=0; }; \
	done; \
	for anchor in Durability DataDir mongo-oplog status-bus learner-logs "Recovery on open"; do \
		grep -q "$$anchor" docs/architecture.md || { echo "docs/architecture.md does not cover '$$anchor'"; ok=0; }; \
	done; \
	for anchor in Observability "subsystem.name" "/v1/metrics" "/v1/jobs/{id}/trace" DisableObs "obs-overhead"; do \
		grep -q "$$anchor" docs/architecture.md || { echo "docs/architecture.md does not cover '$$anchor'"; ok=0; }; \
	done; \
	for anchor in "watch.replays" "watch.refills"; do \
		grep -q "$$anchor" docs/watch-protocol.md || { echo "docs/watch-protocol.md does not cover '$$anchor'"; ok=0; }; \
	done; \
	grep -q "watch-protocol.md" docs/architecture.md || { echo "docs/architecture.md does not link watch-protocol.md"; ok=0; }; \
	grep -q "watch-protocol.md" README.md || { echo "README.md does not link watch-protocol.md"; ok=0; }; \
	[ $$ok -eq 1 ] || exit 1
	@echo "docs-check: README, architecture and watch-protocol docs are complete and linked"

ci: fmt vet build test race bench-smoke fuzz-smoke docs-check
