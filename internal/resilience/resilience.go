// Package resilience is the platform's unified fault-handling policy
// layer: every cross-subsystem dependency edge (api→lcm, dispatcher→lcm,
// core→mongo, core→etcd, client→api) drives its calls through one
// Policy instead of ad-hoc per-call-site retry loops. A policy combines
//
//   - error classification (transient / terminal / ambiguous),
//   - capped exponential backoff with deterministic jitter, driven by
//     sim.Clock so retry schedules are exact under FakeClock,
//   - a per-Do retry budget and an overall virtual-time deadline
//     (context.WithTimeout is wall-clock, so deadlines here are
//     clock.NewTimer-driven — a wedged dependency is rescued in
//     virtual time, which is what keeps chaos soaks fast and exact),
//   - and a per-dependency circuit breaker (closed → open → half-open)
//     that sheds load fast while the dependency is down instead of
//     queueing doomed work behind it.
//
// Observability: policies expose "resilience.retries" and
// "resilience.shed" counters plus a per-dependency
// "resilience.breaker_state_<name>" gauge (0 closed, 1 open, 2
// half-open) and "resilience.breaker_opens_<name>" trip counter on the
// platform registry (see internal/obs's naming convention).
package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/ffdl/ffdl/internal/obs"
	"github.com/ffdl/ffdl/internal/sim"
)

// Class buckets an error by how a caller should react to it.
type Class int

// Error classes. Ambiguous is the zero value: an unrecognized error may
// or may not have had a side effect, so only idempotent edges retry it.
const (
	// Ambiguous errors give no evidence either way (an unclassified
	// error, a canceled context): the operation may have executed.
	Ambiguous Class = iota
	// Transient errors are safe to retry: the dependency refused or
	// never received the work (connection closed, no endpoints, an
	// explicit unavailability error).
	Transient
	// Terminal errors are application outcomes — the dependency is
	// healthy and answered "no" (not found, validation, illegal
	// transition). Retrying cannot help.
	Terminal
)

// String names the class for logs and violation reports.
func (c Class) String() string {
	switch c {
	case Transient:
		return "transient"
	case Terminal:
		return "terminal"
	default:
		return "ambiguous"
	}
}

// classified wraps an error with an explicit class; it preserves the
// wrapped chain for errors.Is/As.
type classified struct {
	err   error
	class Class
}

func (c *classified) Error() string { return c.err.Error() }
func (c *classified) Unwrap() error { return c.err }

// Mark attaches a class to an error. Classify on the result (or on any
// error wrapping it) returns the attached class.
func Mark(err error, class Class) error {
	if err == nil {
		return nil
	}
	return &classified{err: err, class: class}
}

// Classify walks the wrapped chain of err looking for an explicit mark.
// Canceled or deadline-expired contexts are Ambiguous (the operation may
// have run); anything unmarked is Ambiguous too — the conservative
// default, retried only on edges that declare themselves idempotent.
func Classify(err error) Class {
	if err == nil {
		return Terminal // a nil "error" carries no retry signal
	}
	var c *classified
	if errors.As(err, &c) {
		return c.class
	}
	var sc interface{ Class() Class }
	if errors.As(err, &sc) {
		return sc.Class()
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return Ambiguous
	}
	return Ambiguous
}

// Backoff is a capped exponential backoff schedule. Delays are
// Base·Mult^attempt, capped at Cap, with ±Jitter fractional
// randomization from the policy's deterministic RNG (so two edges
// retrying against the same dead dependency do not synchronize into
// thundering herds, and a seeded run reproduces the exact schedule).
type Backoff struct {
	Base   time.Duration
	Cap    time.Duration
	Mult   float64
	Jitter float64
}

// delay computes the wait before retry #attempt (0-based).
func (b Backoff) delay(attempt int, rng *sim.RNG) time.Duration {
	base := b.Base
	if base <= 0 {
		base = time.Millisecond
	}
	mult := b.Mult
	if mult < 1 {
		mult = 2
	}
	d := float64(base)
	for i := 0; i < attempt; i++ {
		d *= mult
		if b.Cap > 0 && d >= float64(b.Cap) {
			d = float64(b.Cap)
			break
		}
	}
	if b.Cap > 0 && d > float64(b.Cap) {
		d = float64(b.Cap)
	}
	if b.Jitter > 0 && rng != nil {
		d *= 1 + b.Jitter*(2*rng.Float64()-1)
	}
	if d < 1 {
		d = 1
	}
	return time.Duration(d)
}

// BreakerState is a circuit breaker's position.
type BreakerState int

// Breaker states, in gauge encoding order.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String names the state for reports.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerConfig tunes a circuit breaker.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that trips the breaker
	// open. Default 5.
	Threshold int
	// OpenFor is how long the breaker stays open before admitting a
	// half-open probe, in the policy clock's time. Default 100ms.
	OpenFor time.Duration
	// ProbeSuccesses is how many consecutive half-open successes close
	// the breaker again. Default 1.
	ProbeSuccesses int
}

func (c *BreakerConfig) defaults() {
	if c.Threshold <= 0 {
		c.Threshold = 5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 100 * time.Millisecond
	}
	if c.ProbeSuccesses <= 0 {
		c.ProbeSuccesses = 1
	}
}

// breaker is a closed→open→half-open circuit breaker on the policy
// clock. Transient and ambiguous failures count against the threshold;
// terminal (application) errors count as contact — the dependency
// answered, so they reset the failure streak.
type breaker struct {
	cfg   BreakerConfig
	clock sim.Clock

	mu        sync.Mutex
	state     BreakerState
	fails     int
	successes int
	openedAt  time.Time
	probing   bool

	gauge *obs.Gauge
	opens *obs.Counter
}

// allow reports whether a call may proceed. In the open state it flips
// to half-open once OpenFor has elapsed, admitting exactly one probe at
// a time.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.clock.Since(b.openedAt) < b.cfg.OpenFor {
			return false
		}
		b.setStateLocked(BreakerHalfOpen)
		b.successes = 0
		b.probing = true
		return true
	default: // half-open: one probe in flight at a time
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// record folds one call outcome into the state machine.
func (b *breaker) record(failed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if failed {
		b.successes = 0
		b.fails++
		if b.state == BreakerHalfOpen || (b.state == BreakerClosed && b.fails >= b.cfg.Threshold) {
			b.setStateLocked(BreakerOpen)
			b.openedAt = b.clock.Now()
			b.fails = 0
			b.opens.Inc()
		}
		return
	}
	b.fails = 0
	if b.state == BreakerHalfOpen {
		b.successes++
		if b.successes >= b.cfg.ProbeSuccesses {
			b.setStateLocked(BreakerClosed)
		}
	}
}

func (b *breaker) setStateLocked(s BreakerState) {
	b.state = s
	b.gauge.Set(int64(s))
}

func (b *breaker) currentState() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	// Surface open→half-open eligibility without requiring a probe call
	// first, so "recovered enough to try" is observable.
	if b.state == BreakerOpen && b.clock.Since(b.openedAt) >= b.cfg.OpenFor {
		return BreakerHalfOpen
	}
	return b.state
}

// ShedError reports a call rejected without being attempted because the
// dependency's breaker is open. It classifies as Transient: the caller
// may retry later (degraded mode surfaces it as HTTP 503 + Retry-After).
type ShedError struct {
	// Dependency is the policy name whose breaker shed the call.
	Dependency string
	// RetryAfter is the remaining open window — a Retry-After hint.
	RetryAfter time.Duration
}

// Error implements error.
func (e *ShedError) Error() string {
	return fmt.Sprintf("resilience: %s breaker open, call shed (retry in %v)", e.Dependency, e.RetryAfter)
}

// Class marks sheds as transient for Classify.
func (e *ShedError) Class() Class { return Transient }

// IsShed reports whether err is (or wraps) a breaker shed.
func IsShed(err error) bool {
	var se *ShedError
	return errors.As(err, &se)
}

// Options configures a Policy.
type Options struct {
	// Name identifies the dependency edge ("core_mongo", "api_lcm", ...)
	// in instrument names and shed errors.
	Name string
	// Clock drives backoff waits and deadlines. Defaults to wall clock.
	Clock sim.Clock
	// Backoff is the retry schedule (zero value: 1ms base, doubling).
	Backoff Backoff
	// Attempts is the per-Do try budget (including the first). Default 3.
	Attempts int
	// Deadline bounds one whole Do in the policy clock's time, rescuing
	// calls wedged on a dependency that never answers (a dropped RPC
	// frame, a quorum-less etcd). 0 = no deadline.
	Deadline time.Duration
	// RetryAmbiguous retries Ambiguous-class errors too. Set it only on
	// idempotent edges, where re-executing a maybe-executed operation is
	// safe.
	RetryAmbiguous bool
	// Classify overrides the package Classify for this edge.
	Classify func(error) Class
	// Breaker enables a circuit breaker with the given tuning. Nil runs
	// the policy breaker-less (retry/backoff/deadline only).
	Breaker *BreakerConfig
	// Obs registers the policy's instruments; nil runs uninstrumented.
	Obs *obs.Registry
	// Seed makes backoff jitter deterministic. Default 1.
	Seed int64
}

// Policy is one dependency edge's resilience policy. Safe for
// concurrent use; a single Policy (and thus a single breaker) is shared
// by every caller of the same dependency.
type Policy struct {
	name           string
	clock          sim.Clock
	backoff        Backoff
	attempts       int
	deadline       time.Duration
	retryAmbiguous bool
	classify       func(error) Class
	brk            *breaker

	rngMu sync.Mutex
	rng   *sim.RNG

	retries *obs.Counter
	shed    *obs.Counter
}

// NewPolicy builds a policy from options.
func NewPolicy(o Options) *Policy {
	if o.Name == "" {
		o.Name = "dep"
	}
	if o.Clock == nil {
		o.Clock = sim.NewRealClock()
	}
	if o.Attempts <= 0 {
		o.Attempts = 3
	}
	if o.Classify == nil {
		o.Classify = Classify
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	p := &Policy{
		name:           o.Name,
		clock:          o.Clock,
		backoff:        o.Backoff,
		attempts:       o.Attempts,
		deadline:       o.Deadline,
		retryAmbiguous: o.RetryAmbiguous,
		classify:       o.Classify,
		rng:            sim.NewRNG(o.Seed),
		retries:        o.Obs.Counter("resilience.retries"),
		shed:           o.Obs.Counter("resilience.shed"),
	}
	if o.Breaker != nil {
		cfg := *o.Breaker
		cfg.defaults()
		p.brk = &breaker{
			cfg:   cfg,
			clock: o.Clock,
			gauge: o.Obs.Gauge("resilience.breaker_state_" + o.Name),
			opens: o.Obs.Counter("resilience.breaker_opens_" + o.Name),
		}
	}
	return p
}

// Name returns the policy's dependency-edge name.
func (p *Policy) Name() string { return p.name }

// BreakerState returns the breaker's current state (BreakerClosed for a
// breaker-less policy).
func (p *Policy) BreakerState() BreakerState {
	if p.brk == nil {
		return BreakerClosed
	}
	return p.brk.currentState()
}

// Ready reports whether a call would be admitted right now — false only
// while the breaker is open (degraded mode's fast-path check).
func (p *Policy) Ready() bool {
	if p.brk == nil {
		return true
	}
	return p.brk.currentState() != BreakerOpen
}

// shedError builds the ShedError for a breaker-open rejection.
func (p *Policy) shedError() error {
	retry := time.Millisecond
	if p.brk != nil {
		p.brk.mu.Lock()
		if rem := p.brk.cfg.OpenFor - p.clock.Since(p.brk.openedAt); rem > retry {
			retry = rem
		}
		p.brk.mu.Unlock()
	}
	p.shed.Inc()
	return &ShedError{Dependency: p.name, RetryAfter: retry}
}

// Do runs op under the policy: breaker admission, classification-driven
// retries with capped jittered backoff, a try budget, and a clock-driven
// overall deadline. The op's context is canceled when the deadline
// expires, so calls wedged inside the dependency are rescued in virtual
// time. The last error is returned when the budget or deadline runs out;
// a breaker-open rejection returns a *ShedError without invoking op.
func (p *Policy) Do(ctx context.Context, op func(context.Context) error) error {
	dctx := ctx
	var deadlineFired func() bool
	if p.deadline > 0 {
		var cancel context.CancelFunc
		dctx, cancel = context.WithCancel(ctx)
		defer cancel()
		timer := p.clock.NewTimer(p.deadline)
		defer timer.Stop()
		fired := make(chan struct{})
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-timer.C:
				close(fired)
				cancel()
			case <-stop:
			}
		}()
		deadlineFired = func() bool {
			select {
			case <-fired:
				return true
			default:
				return false
			}
		}
	}

	var lastErr error
	for attempt := 0; attempt < p.attempts; attempt++ {
		if err := dctx.Err(); err != nil {
			// Never return nil without a successful op: a caller whose
			// context died before the first attempt still gets an error.
			if lastErr == nil {
				lastErr = err
			}
			break
		}
		if p.brk != nil && !p.brk.allow() {
			return p.shedError()
		}
		err := op(dctx)
		class := p.classify(err)
		if deadlineFired != nil && deadlineFired() && ctx.Err() == nil && err != nil {
			// The policy deadline (not the caller) canceled the op: the
			// dependency never answered in time. That is a transient
			// dependency failure, whatever error the cancellation
			// surfaced as.
			class = Transient
			err = Mark(fmt.Errorf("resilience: %s deadline %v exceeded: %w", p.name, p.deadline, err), Transient)
		}
		if p.brk != nil {
			// Terminal errors are contact: the dependency answered.
			p.brk.record(err != nil && class != Terminal)
		}
		if err == nil || class == Terminal {
			return err
		}
		lastErr = err
		if class == Ambiguous && !p.retryAmbiguous {
			return err
		}
		if deadlineFired != nil && deadlineFired() {
			return lastErr
		}
		if attempt == p.attempts-1 {
			break
		}
		p.retries.Inc()
		p.rngMu.Lock()
		wait := p.backoff.delay(attempt, p.rng)
		p.rngMu.Unlock()
		t := p.clock.NewTimer(wait)
		select {
		case <-t.C:
		case <-dctx.Done():
			t.Stop()
			return lastErr
		}
	}
	return lastErr
}
