package kube

import (
	"fmt"
	"testing"
	"time"

	"github.com/ffdl/ffdl/internal/sched"
	"github.com/ffdl/ffdl/internal/sim"
)

// dirtySetCluster builds a cluster whose resync safety nets are
// effectively disabled, so any scheduler work observed is driven purely
// by the dirty-set event path.
func dirtySetCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	cfg.SchedulerInterval = time.Hour
	cfg.ResyncInterval = time.Hour
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = time.Millisecond
	}
	cfg.NodeGracePeriod = time.Hour
	c := NewCluster(cfg)
	t.Cleanup(c.Stop)
	return c
}

// waitHeartbeats blocks until the scheduler has observed (and filtered)
// at least n more heartbeat events than at the baseline.
func waitHeartbeats(t *testing.T, c *Cluster, base SchedStats, n uint64) {
	t.Helper()
	waitFor(t, fmt.Sprintf("%d filtered heartbeats", n), 5*time.Second, func() bool {
		return c.SchedStats().EventsIgnored >= base.EventsIgnored+n
	})
}

// TestHeartbeatsCauseNoSchedulerWork pins the dirty-set contract: node
// heartbeats are placement-irrelevant, so with no pending pods — and
// with pending pods that cannot fit — an arbitrary number of them must
// trigger zero scheduling passes and zero full-cluster scans.
func TestHeartbeatsCauseNoSchedulerWork(t *testing.T) {
	c := dirtySetCluster(t, Config{})
	for i := 0; i < 4; i++ {
		c.AddNode(fmt.Sprintf("node%d", i), "K80", gpuRes(4))
	}
	waitFor(t, "boot events drained", 3*time.Second, func() bool {
		return c.SchedStats().EventsSeen >= 4
	})

	// Phase 1: no pending pods.
	base := c.SchedStats()
	waitHeartbeats(t, c, base, 50)
	got := c.SchedStats()
	if got.Passes != base.Passes {
		t.Fatalf("heartbeats with no pending pods triggered %d passes", got.Passes-base.Passes)
	}
	if got.FullScans != base.FullScans {
		t.Fatalf("heartbeats triggered %d full-cluster scans", got.FullScans-base.FullScans)
	}
	if got.NodesExamined != base.NodesExamined {
		t.Fatalf("heartbeats examined %d nodes", got.NodesExamined-base.NodesExamined)
	}

	// Phase 2: a pending pod that cannot fit anywhere (demands more
	// GPUs than any machine has). Its arrival costs exactly one pass;
	// heartbeats after that must not retrigger it.
	c.Store().PutPod(&Pod{
		Name: "hungry",
		Spec: PodSpec{Demand: sched.Resources{GPUs: 64}, Type: "learner"},
	})
	waitFor(t, "FailedScheduling for hungry", 3*time.Second, func() bool {
		return len(c.Store().Events("FailedScheduling")) > 0
	})
	base = c.SchedStats()
	waitHeartbeats(t, c, base, 50)
	got = c.SchedStats()
	if got.Passes != base.Passes {
		t.Fatalf("heartbeats retried an unfittable pod %d times", got.Passes-base.Passes)
	}
	if got.FullScans != base.FullScans {
		t.Fatalf("heartbeats triggered %d full scans while a pod waited", got.FullScans-base.FullScans)
	}
	if got.NodesExamined != base.NodesExamined {
		t.Fatalf("heartbeats examined %d nodes while a pod waited", got.NodesExamined-base.NodesExamined)
	}
}

// TestFreedWrongGPUTypeDoesNotWake: capacity freed on a GPU type no
// waiting pod can use must not trigger a pass.
func TestFreedWrongGPUTypeDoesNotWake(t *testing.T) {
	c := dirtySetCluster(t, Config{})
	c.RegisterRuntime("block", blockUntilKilled)
	c.AddNode("k80-node", "K80", gpuRes(2))
	c.Store().PutPod(&Pod{Name: "hog", Spec: PodSpec{Demand: gpuRes(2), Runtime: "block"}})
	waitFor(t, "hog running", 3*time.Second, func() bool {
		p, ok := c.Store().GetPod("hog")
		return ok && p.Status.Phase == PodRunning
	})
	// A V100 pod can never land on this cluster; it waits typed.
	c.Store().PutPod(&Pod{
		Name: "v100-pod",
		Spec: PodSpec{Demand: gpuRes(1), GPUType: "V100", Type: "learner"},
	})
	waitFor(t, "FailedScheduling for v100-pod", 3*time.Second, func() bool {
		return len(c.Store().Events("FailedScheduling")) > 0
	})
	base := c.SchedStats()
	// Free K80 capacity: irrelevant to the V100 waiter.
	c.KillPod("hog", "test")
	waitFor(t, "hog terminated", 3*time.Second, func() bool {
		p, ok := c.Store().GetPod("hog")
		return ok && p.Terminated()
	})
	time.Sleep(20 * time.Millisecond) // allow any (wrong) pass to run
	got := c.SchedStats()
	if got.Passes != base.Passes {
		t.Fatalf("freed K80 capacity woke a V100-only waiter (%d extra passes)", got.Passes-base.Passes)
	}
	if p, _ := c.Store().GetPod("v100-pod"); p.Status.Node != "" {
		t.Fatal("v100 pod bound to a K80 node")
	}
}

// TestFreedCapacityWakesAndPlacesWaitingGang is the regression guard
// for the dirty-set: a whole gang waiting for space must still be woken
// and placed the moment matching capacity frees, with resync disabled.
func TestFreedCapacityWakesAndPlacesWaitingGang(t *testing.T) {
	c := dirtySetCluster(t, Config{GangPolicy: sched.NewBSA(sim.NewRNG(5))})
	c.RegisterRuntime("block", blockUntilKilled)
	c.AddNode("node0", "K80", gpuRes(2))
	c.Store().PutPod(&Pod{Name: "hog", Spec: PodSpec{Demand: gpuRes(2), Runtime: "block"}})
	waitFor(t, "hog running", 3*time.Second, func() bool {
		p, ok := c.Store().GetPod("hog")
		return ok && p.Status.Phase == PodRunning
	})
	for l := 0; l < 2; l++ {
		c.Store().PutPod(&Pod{
			Name: fmt.Sprintf("gang-l%d", l),
			Spec: PodSpec{Demand: gpuRes(1), GPUType: "K80", JobID: "gang",
				GangSize: 2, Runtime: "block", Type: "learner"},
		})
	}
	waitFor(t, "gang FailedScheduling", 3*time.Second, func() bool {
		return len(c.Store().Events("FailedScheduling")) > 0
	})
	c.KillPod("hog", "test")
	waitFor(t, "gang placed after capacity freed", 3*time.Second, func() bool {
		a, _ := c.Store().GetPod("gang-l0")
		b, _ := c.Store().GetPod("gang-l1")
		return a != nil && b != nil && a.Status.Node != "" && b.Status.Node != ""
	})
}

// TestSchedStatsCountBindings sanity-checks the published counters.
func TestSchedStatsCountBindings(t *testing.T) {
	c := testCluster(t, Config{})
	c.RegisterRuntime("quick", completeAfter(time.Millisecond))
	c.AddNode("node0", "K80", gpuRes(4))
	for i := 0; i < 3; i++ {
		c.Store().PutPod(&Pod{Name: fmt.Sprintf("p%d", i), Spec: PodSpec{Demand: gpuRes(1), Runtime: "quick"}})
	}
	waitFor(t, "all pods bound", 3*time.Second, func() bool {
		return c.SchedStats().PodsBound >= 3
	})
	st := c.SchedStats()
	if st.Passes == 0 || st.NodesExamined == 0 {
		t.Fatalf("stats not accounted: %+v", st)
	}
}
