// Command gen-fuzz-corpus regenerates the FuzzOffsetMapDecode seed
// corpus from real offsets.log files — written by the durable
// production paths under a DataDir and carried across a
// chaos.ProcessRestart — rather than hand-built frames, so the fuzzer
// starts from the exact byte shapes recovery actually reads. Run from
// the repo root:
//
//	go run ./tools/gen-fuzz-corpus
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"github.com/ffdl/ffdl/internal/chaos"
	"github.com/ffdl/ffdl/internal/commitlog"
	"github.com/ffdl/ffdl/internal/core"
)

func main() {
	outDir := filepath.Join("internal", "commitlog", "testdata", "fuzz", "FuzzOffsetMapDecode")
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	dataDir, err := os.MkdirTemp("", "ffdl-corpus-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dataDir) //nolint:errcheck

	// A learner log under the real DataDir layout: lines appended by the
	// metrics service, two follower cursors committed, then the whole
	// platform restarted and one cursor advanced — so the second
	// snapshot holds frames appended over a recovered map.
	r, err := chaos.NewProcessRestart(core.Config{
		Seed: 7, DataDir: dataDir,
		PollInterval: 2 * time.Millisecond,
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer r.Stop()
	p := r.Platform()
	for i := 1; i <= 50; i++ {
		p.Metrics.AppendLog(core.LogLine{
			JobID: "jobX", Time: time.Unix(int64(i), 0),
			Text: fmt.Sprintf("line-%03d", i),
		})
	}
	offsetsLog := filepath.Join(dataDir, "learner-logs", "jobX", "offsets.log")
	must(p.Metrics.CommitLogCursor("jobX", "cli-follower", 10))
	must(p.Metrics.CommitLogCursor("jobX", "archiver", 25))
	save(outDir, "learner-log-two-consumers", offsetsLog)
	p2, err := r.Restart()
	if err != nil {
		log.Fatal(err)
	}
	must(p2.Metrics.CommitLogCursor("jobX", "cli-follower", 30))
	save(outDir, "learner-log-post-restart", offsetsLog)

	// A map that has been through rewrite cycles (OffsetsRewriteEvery
	// collapses the append-only frames back to one).
	dir2, err := os.MkdirTemp("", "ffdl-corpus-rw-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir2) //nolint:errcheck
	fs, err := commitlog.OpenFileStore(dir2)
	if err != nil {
		log.Fatal(err)
	}
	l, err := commitlog.Open(fs, commitlog.Options{OffsetsRewriteEvery: 4})
	if err != nil {
		log.Fatal(err)
	}
	for i := 1; i <= 9; i++ {
		must(l.Commit("watch", uint64(i)))
	}
	save(outDir, "rewrite-cycle", filepath.Join(dir2, "offsets.log"))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// save snapshots one offsets.log into a go-fuzz seed corpus file.
func save(outDir, name, src string) {
	data, err := os.ReadFile(src)
	if err != nil {
		log.Fatalf("read %s: %v", src, err)
	}
	if len(data) == 0 {
		log.Fatalf("%s: empty offsets.log — nothing worth seeding", src)
	}
	body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
	dst := filepath.Join(outDir, name)
	if err := os.WriteFile(dst, []byte(body), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d offsets.log bytes)\n", dst, len(data))
}
