package sim

import (
	"math"
	"math/rand"
	"sort"
)

// RNG wraps a seeded random source with the variate generators needed by
// the workload and failure models. It is deliberately deterministic: the
// same seed reproduces the same trace, which the experiment harness relies
// on when comparing scheduling policies on identical workloads.
//
// RNG is not safe for concurrent use; derive per-goroutine streams with
// Stream.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Stream derives an independent child generator. Child streams are stable
// functions of (parent seed, id), so adding a consumer does not perturb
// the draws seen by existing consumers.
func (g *RNG) Stream(id int64) *RNG {
	// SplitMix64-style mixing of the id with a fresh seed drawn once.
	z := uint64(g.r.Int63()) + uint64(id)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return NewRNG(int64(z ^ (z >> 31)))
}

// Float64 returns a uniform draw in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform draw in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Uniform returns a uniform draw in [lo,hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Exp returns an exponential draw with the given mean.
func (g *RNG) Exp(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}

// LogNormal returns a draw from a log-normal distribution parameterized
// by the underlying normal's mu and sigma.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*g.r.NormFloat64())
}

// Normal returns a normal draw.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// Pareto returns a bounded Pareto draw with minimum xm and shape alpha.
func (g *RNG) Pareto(xm, alpha float64) float64 {
	u := g.r.Float64()
	for u == 0 {
		u = g.r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Poisson returns a Poisson draw with the given mean, using Knuth's
// method for small means and a normal approximation for large ones.
func (g *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		n := int(math.Round(g.Normal(mean, math.Sqrt(mean))))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= g.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Bernoulli reports true with probability p.
func (g *RNG) Bernoulli(p float64) bool { return g.r.Float64() < p }

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle permutes a slice in place.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// WeightedChoice returns an index drawn proportionally to weights. It
// panics if the weights are empty or sum to a non-positive value.
func (g *RNG) WeightedChoice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("sim: negative weight")
		}
		total += w
	}
	if len(weights) == 0 || total <= 0 {
		panic("sim: weighted choice over empty or zero-sum weights")
	}
	x := g.r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Histogram accumulates values and reports distribution summaries. It is
// used to build the CDFs in Figure 4 and the daily aggregates in Figure 3.
type Histogram struct {
	values []float64
	sorted bool
}

// Add records a value.
func (h *Histogram) Add(v float64) {
	h.values = append(h.values, v)
	h.sorted = false
}

// N returns the number of recorded values.
func (h *Histogram) N() int { return len(h.values) }

// Sum returns the sum of recorded values.
func (h *Histogram) Sum() float64 {
	s := 0.0
	for _, v := range h.values {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean, or 0 for an empty histogram.
func (h *Histogram) Mean() float64 {
	if len(h.values) == 0 {
		return 0
	}
	return h.Sum() / float64(len(h.values))
}

// Max returns the maximum recorded value, or 0 for an empty histogram.
func (h *Histogram) Max() float64 {
	m := 0.0
	for i, v := range h.values {
		if i == 0 || v > m {
			m = v
		}
	}
	return m
}

func (h *Histogram) sort() {
	if !h.sorted {
		sort.Float64s(h.values)
		h.sorted = true
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) using nearest-rank.
func (h *Histogram) Quantile(q float64) float64 {
	if len(h.values) == 0 {
		return 0
	}
	h.sort()
	idx := int(math.Ceil(q*float64(len(h.values)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.values) {
		idx = len(h.values) - 1
	}
	return h.values[idx]
}

// CDF returns the empirical distribution as (value, cumulative
// probability) pairs over the distinct recorded values.
func (h *Histogram) CDF() (values, probs []float64) {
	if len(h.values) == 0 {
		return nil, nil
	}
	h.sort()
	n := float64(len(h.values))
	for i := 0; i < len(h.values); {
		j := i
		for j < len(h.values) && h.values[j] == h.values[i] {
			j++
		}
		values = append(values, h.values[i])
		probs = append(probs, float64(j)/n)
		i = j
	}
	return values, probs
}
