package mongo

import (
	"fmt"
	"testing"
	"time"
)

// drainOne reads one change event or fails the test.
func drainOne(t *testing.T, cs *ChangeStream) ChangeEvent {
	t.Helper()
	select {
	case ev, ok := <-cs.Events():
		if !ok {
			t.Fatal("change stream closed")
		}
		return ev
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for change event")
	}
	panic("unreachable")
}

// TestWatchResumeBelowRetainedFloorSignalsResync pins the oplog
// truncation hazard: a consumer resuming from a token that predates the
// retained oplog floor must receive an explicit "resync" event as its
// FIRST delivery — never a silent Seq gap — and everything after the
// marker must be the contiguous retained history.
//
// (Before the commit-log port, the oplog dropped its older half in
// place once it exceeded 64k entries: a stale resume just started at
// the new floor and the consumer had no way to tell a trimmed history
// from a quiet one.)
func TestWatchResumeBelowRetainedFloorSignalsResync(t *testing.T) {
	db := NewDB()
	c := db.C("jobs")
	// Push the oplog well past its retention bound so the floor rises.
	const writes = 70_000
	for i := 0; i < writes; i++ {
		if _, err := c.Insert(Doc{"_id": fmt.Sprintf("j%d", i), "n": i}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if floor := db.OplogFloor(); floor <= 1 {
		t.Fatalf("retention never trimmed: floor %d after %d writes", floor, writes)
	}

	cs := db.Watch("", 1) // token 1 predates the retained floor
	defer cs.Cancel()

	first := drainOne(t, cs)
	if first.Kind != "resync" {
		t.Fatalf("first event after stale resume: Kind %q Seq %d, want explicit resync marker",
			first.Kind, first.Seq)
	}
	if first.Seq <= 1 {
		t.Fatalf("resync marker Seq %d does not advance the consumer past its stale token", first.Seq)
	}
	// After the marker the retained history replays contiguously: the
	// only Seq discontinuity a consumer can ever see is the one the
	// marker announces.
	prev := first.Seq
	for i := 0; i < 100; i++ {
		ev := drainOne(t, cs)
		if ev.Seq != prev+1 {
			t.Fatalf("silent gap after resync marker: Seq %d follows %d", ev.Seq, prev)
		}
		prev = ev.Seq
	}
}

// TestWatchReplayWithinRetentionIsGapless pins the other half of the
// contract: a resume token still within the retained oplog replays
// every retained write in order with contiguous Seqs — a slow change
// stream replays, it does not silently gap.
func TestWatchReplayWithinRetentionIsGapless(t *testing.T) {
	db := NewDB()
	c := db.C("jobs")
	const writes = 500
	for i := 0; i < writes; i++ {
		if _, err := c.Insert(Doc{"_id": fmt.Sprintf("j%d", i), "n": i}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	const from = 200
	cs := db.Watch("", from)
	defer cs.Cancel()
	prev := uint64(from)
	for i := 0; i < writes-from; i++ {
		ev := drainOne(t, cs)
		if ev.Kind == "resync" {
			t.Fatalf("resync signaled for in-retention resume from %d", from)
		}
		if ev.Seq != prev+1 {
			t.Fatalf("replay gap: Seq %d follows %d", ev.Seq, prev)
		}
		prev = ev.Seq
	}
}
