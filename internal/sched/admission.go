package sched

import (
	"fmt"
	"sort"
	"sync"
)

// Tier classifies users for admission control. The paper's AC component
// preempts free users under heavy load, and over-quota jobs when the
// quota's owner returns (§3.6).
type Tier int

// User tiers.
const (
	TierFree Tier = iota + 1
	TierPaid
)

// UserQuota is a user's GPU entitlement.
type UserQuota struct {
	User string
	Tier Tier
	// GPUs is the quota ceiling; usage beyond it is admitted only
	// opportunistically.
	GPUs int
}

// AdmitDecision is the outcome of admission control.
type AdmitDecision int

// Admission outcomes.
const (
	// AdmitInQuota admits a job within its user's quota.
	AdmitInQuota AdmitDecision = iota + 1
	// AdmitOverQuota admits a job beyond quota because other users'
	// entitlements are idle; such jobs are preemptible.
	AdmitOverQuota
	// Reject denies admission (unknown user or cluster exhausted).
	Reject
)

func (d AdmitDecision) String() string {
	switch d {
	case AdmitInQuota:
		return "admit"
	case AdmitOverQuota:
		return "admit-over-quota"
	case Reject:
		return "reject"
	default:
		return "unknown"
	}
}

// runningJob tracks an admitted job's GPU footprint.
type runningJob struct {
	jobID     string
	user      string
	gpus      int
	overQuota bool
	seq       uint64
}

// Admission implements quota-based admission control with preemption.
// It sits logically above FfDL (§3.6) and decides which jobs reach the
// scheduler queue at all.
//
// Entries are keyed by job ID and both Admit and Release are
// idempotent per job, so the controller stays correct when the same job
// is admitted or released more than once — an API client retrying a
// submit against another replica, a dispatcher re-admitting after a
// resync, or duplicate terminal events from the status bus.
type Admission struct {
	mu      sync.Mutex
	quotas  map[string]UserQuota
	usage   map[string]int // user -> GPUs held by running+queued jobs
	running map[string]*runningJob
	// ClusterGPUs caps aggregate admission; 0 = unlimited. Mutate via
	// SetClusterGPUs once the controller is shared across goroutines.
	ClusterGPUs int
	admitted    int // total GPUs admitted
	seq         uint64

	preemptions int64
}

// NewAdmission returns an empty controller.
func NewAdmission(clusterGPUs int) *Admission {
	return &Admission{
		quotas:      make(map[string]UserQuota),
		usage:       make(map[string]int),
		running:     make(map[string]*runningJob),
		ClusterGPUs: clusterGPUs,
	}
}

// SetQuota installs or updates a user's quota.
func (a *Admission) SetQuota(q UserQuota) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.quotas[q.User] = q
}

// Quota returns a user's quota, if one is installed.
func (a *Admission) Quota(user string) (UserQuota, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	q, ok := a.quotas[user]
	return q, ok
}

// SetClusterGPUs updates the aggregate admission cap. The tenant
// dispatcher tracks cluster capacity through this as nodes come and
// go. 0 keeps the legacy "unlimited" meaning; a negative value means
// *known-zero* capacity (a cluster that currently has no GPU nodes
// admits nothing) — without the distinction, losing the last node
// would flip the budget to unlimited.
func (a *Admission) SetClusterGPUs(n int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.ClusterGPUs = n
}

// clusterLimitLocked normalizes ClusterGPUs: -1 for unlimited, else
// the effective non-negative cap.
func (a *Admission) clusterLimitLocked() int {
	switch {
	case a.ClusterGPUs == 0:
		return -1 // unlimited
	case a.ClusterGPUs < 0:
		return 0 // known-zero capacity
	default:
		return a.ClusterGPUs
	}
}

// ClusterCap returns the aggregate admission cap (0 = unlimited).
func (a *Admission) ClusterCap() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ClusterGPUs
}

// AdmittedGPUs returns the total GPU footprint currently admitted.
func (a *Admission) AdmittedGPUs() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.admitted
}

// Holds reports whether the job currently holds an admitted footprint.
func (a *Admission) Holds(jobID string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	_, ok := a.running[jobID]
	return ok
}

// Usage returns the GPUs currently held by a user's admitted jobs.
func (a *Admission) Usage(user string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.usage[user]
}

// Preemptions returns the count of jobs preempted so far.
func (a *Admission) Preemptions() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.preemptions
}

// Admit decides whether a gang may enter the scheduling queue and
// registers its footprint when admitted. Admit is idempotent per job:
// re-admitting a job that already holds a footprint returns the
// original decision without double-counting, which is what keeps
// accounting correct across API replica retries and dispatcher resyncs.
func (a *Admission) Admit(g *Gang) (AdmitDecision, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if j, ok := a.running[g.JobID]; ok {
		if j.overQuota {
			return AdmitOverQuota, nil
		}
		return AdmitInQuota, nil
	}
	q, ok := a.quotas[g.User]
	if !ok {
		return Reject, fmt.Errorf("sched: user %q has no quota", g.User)
	}
	need := g.GPUDemand()
	if limit := a.clusterLimitLocked(); limit >= 0 && a.admitted+need > limit {
		return Reject, fmt.Errorf("sched: cluster GPU admission limit reached (%d/%d in use, %d requested)",
			a.admitted, limit, need)
	}
	over := a.usage[g.User]+need > q.GPUs
	a.seq++
	a.running[g.JobID] = &runningJob{
		jobID: g.JobID, user: g.User, gpus: need, overQuota: over, seq: a.seq,
	}
	a.usage[g.User] += need
	a.admitted += need
	if over {
		return AdmitOverQuota, nil
	}
	return AdmitInQuota, nil
}

// Release returns a finished (or preempted) job's footprint. Release
// is idempotent: releasing a job with no registered footprint — already
// released, never admitted, or preempted meanwhile — is a no-op, so
// duplicate terminal events cannot drive usage negative.
func (a *Admission) Release(jobID string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.releaseLocked(jobID)
}

func (a *Admission) releaseLocked(jobID string) {
	j, ok := a.running[jobID]
	if !ok {
		return
	}
	delete(a.running, jobID)
	a.usage[j.user] -= j.gpus
	a.admitted -= j.gpus
}

// PreemptFor selects victim jobs freeing at least needGPUs for an
// in-quota request by user. Victims are chosen in the paper's order:
// free-tier users' jobs first, then over-quota jobs (most recent first —
// the job that least "deserves" its resources). The selected jobs are
// released; the caller must actually stop them. It returns the victim
// job IDs, or nil if the demand cannot be met.
func (a *Admission) PreemptFor(user string, needGPUs int) []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	var candidates []*runningJob
	for _, j := range a.running {
		if j.user == user {
			continue
		}
		tier := a.quotas[j.user].Tier
		if tier == TierFree || j.overQuota {
			candidates = append(candidates, j)
		}
	}
	sort.Slice(candidates, func(i, j int) bool {
		ci, cj := candidates[i], candidates[j]
		fi := a.quotas[ci.user].Tier == TierFree
		fj := a.quotas[cj.user].Tier == TierFree
		if fi != fj {
			return fi // free tier first
		}
		return ci.seq > cj.seq // newest first
	})
	var victims []string
	freed := 0
	for _, j := range candidates {
		if freed >= needGPUs {
			break
		}
		victims = append(victims, j.jobID)
		freed += j.gpus
	}
	if freed < needGPUs {
		return nil
	}
	for _, id := range victims {
		a.releaseLocked(id)
	}
	a.preemptions += int64(len(victims))
	return victims
}
