// Package chaos injects faults into a running platform, in the spirit of
// the chaos-engineering practice the paper's related work discusses and
// the fault classes its §5.6 failure analysis catalogs: worker-node
// crashes (hardware failures, OS updates, container daemon failures),
// pod kills, and flaky nodes that crash repeatedly.
package chaos

import (
	"sync"
	"time"

	"github.com/ffdl/ffdl/internal/kube"
	"github.com/ffdl/ffdl/internal/sim"
)

// Injector drives randomized faults against a kube cluster.
type Injector struct {
	cluster *kube.Cluster
	clock   sim.Clock
	rng     *sim.RNG

	// NodeMTBF is the per-node mean time between failures; zero
	// disables node crashes.
	NodeMTBF time.Duration
	// NodeRecovery is the mean time a crashed node stays down.
	NodeRecovery time.Duration
	// PodKillMTBF is the mean time between random pod kills across the
	// cluster; zero disables.
	PodKillMTBF time.Duration

	mu        sync.Mutex
	nodeCrash int64
	podKills  int64
	downNodes map[string]bool
	// gens counts crashes per node. A restore timer armed for generation
	// g restores the node only if g is still current, so a node crashed
	// again before its restore fires (a crash-loop) is never restored
	// early by the stale timer or restored twice.
	gens      map[string]int
	stopCh    chan struct{}
	wg        sync.WaitGroup
	stopOnce  sync.Once
	startOnce sync.Once
}

// NewInjector returns an injector bound to a cluster.
func NewInjector(c *kube.Cluster, rng *sim.RNG) *Injector {
	return &Injector{
		cluster:      c,
		clock:        c.Clock(),
		rng:          rng,
		NodeMTBF:     0,
		NodeRecovery: 200 * time.Millisecond,
		downNodes:    make(map[string]bool),
		gens:         make(map[string]int),
		stopCh:       make(chan struct{}),
	}
}

// Start launches the fault loops.
func (in *Injector) Start() {
	in.startOnce.Do(func() {
		if in.NodeMTBF > 0 {
			in.wg.Add(1)
			go func() {
				defer in.wg.Done()
				in.nodeLoop()
			}()
		}
		if in.PodKillMTBF > 0 {
			in.wg.Add(1)
			go func() {
				defer in.wg.Done()
				in.podLoop()
			}()
		}
	})
}

// Stop halts injection (crashed nodes are restored).
func (in *Injector) Stop() {
	in.stopOnce.Do(func() { close(in.stopCh) })
	in.wg.Wait()
	in.mu.Lock()
	defer in.mu.Unlock()
	for name := range in.downNodes {
		in.cluster.RestoreNode(name)
		delete(in.downNodes, name)
	}
}

// Stats reports (node crashes, pod kills) injected so far.
func (in *Injector) Stats() (nodeCrashes, podKills int64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.nodeCrash, in.podKills
}

// nodeLoop crashes random nodes at cluster-wide exponential intervals
// and restores them after a recovery delay.
func (in *Injector) nodeLoop() {
	for {
		nodes := in.cluster.Store().ListNodes()
		if len(nodes) == 0 {
			return
		}
		// Cluster-wide rate: MTBF per node / node count.
		mean := float64(in.NodeMTBF) / float64(len(nodes))
		in.mu.Lock()
		wait := time.Duration(in.rng.Exp(mean))
		in.mu.Unlock()
		select {
		case <-in.stopCh:
			return
		case <-in.clock.After(wait):
		}
		in.mu.Lock()
		var up []string
		for _, n := range nodes {
			if !in.downNodes[n.Name] {
				up = append(up, n.Name)
			}
		}
		if len(up) == 0 {
			in.mu.Unlock()
			continue
		}
		victim := up[in.rng.Intn(len(up))]
		in.mu.Unlock()
		in.CrashNode(victim)
	}
}

// CrashNode crashes the named node through the injector's bookkeeping
// and arms a jittered restore timer. Crashing a node that is already
// down models a crash-loop: the crash generation advances, superseding
// the pending restore, so a flaky node is never double-restored (or
// restored early) by a stale timer.
func (in *Injector) CrashNode(name string) {
	in.mu.Lock()
	in.gens[name]++
	gen := in.gens[name]
	in.downNodes[name] = true
	in.nodeCrash++
	// Exponential jitter around NodeRecovery: a wave of simultaneous
	// crashes desynchronizes instead of restoring as a thundering herd.
	recovery := time.Duration(in.rng.Exp(float64(in.NodeRecovery)))
	in.mu.Unlock()

	in.cluster.CrashNode(name)
	in.wg.Add(1)
	go func() {
		defer in.wg.Done()
		select {
		case <-in.stopCh:
			return
		case <-in.clock.After(recovery):
		}
		in.mu.Lock()
		if in.gens[name] != gen || !in.downNodes[name] {
			// A newer crash owns this node now; its timer restores it.
			in.mu.Unlock()
			return
		}
		delete(in.downNodes, name)
		in.mu.Unlock()
		in.cluster.RestoreNode(name)
	}()
}

// podLoop kills random running pods.
func (in *Injector) podLoop() {
	for {
		in.mu.Lock()
		wait := time.Duration(in.rng.Exp(float64(in.PodKillMTBF)))
		in.mu.Unlock()
		select {
		case <-in.stopCh:
			return
		case <-in.clock.After(wait):
		}
		var running []string
		for _, p := range in.cluster.Store().ListPods("") {
			if p.Status.Phase == kube.PodRunning {
				running = append(running, p.Name)
			}
		}
		if len(running) == 0 {
			continue
		}
		in.mu.Lock()
		victim := running[in.rng.Intn(len(running))]
		in.podKills++
		in.mu.Unlock()
		in.cluster.KillPod(victim, "ChaosKill")
	}
}
