package rpc

import (
	"bufio"
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"reflect"
	"sync"
)

// Handler is a unary method: it decodes its argument from args into a
// value of the registered argument type and returns a reply.
type Handler func(ctx context.Context, arg any) (any, error)

// StreamHandler is a server-streaming method: it may call send any number
// of times before returning. A non-nil return is delivered to the client
// as the stream error.
type StreamHandler func(ctx context.Context, arg any, send func(any) error) error

// method bundles a handler with the concrete argument type used to decode
// incoming payloads, mirroring net/rpc's reflective decoding.
type method struct {
	argType reflect.Type
	unary   Handler
	stream  StreamHandler
}

// Server dispatches multiplexed calls from many connections. The zero
// value is not usable; use NewServer.
type Server struct {
	mu      sync.RWMutex
	methods map[string]*method
	conns   map[net.Conn]struct{}
	ln      net.Listener
	closed  bool
	wg      sync.WaitGroup

	// Intercept, when non-nil, runs before every dispatch; returning an
	// error aborts the call. Used for fault injection and auth checks.
	Intercept func(methodName string) error
}

// NewServer returns an empty Server.
func NewServer() *Server {
	return &Server{
		methods: make(map[string]*method),
		conns:   make(map[net.Conn]struct{}),
	}
}

// Register installs a unary handler. argProto is a value (typically a
// zero struct) whose concrete type incoming arguments are decoded into.
func (s *Server) Register(name string, argProto any, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.methods[name] = &method{argType: reflect.TypeOf(argProto), unary: h}
}

// RegisterStream installs a server-streaming handler.
func (s *Server) RegisterStream(name string, argProto any, h StreamHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.methods[name] = &method{argType: reflect.TypeOf(argProto), stream: h}
}

// Serve accepts connections on ln until the server is closed. It blocks;
// run it on its own goroutine.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrConnClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.RLock()
			closed := s.closed
			s.mu.RUnlock()
			if closed {
				return nil
			}
			return fmt.Errorf("rpc: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// Listen starts serving on a fresh loopback TCP listener and returns its
// address. It is the common way tests and the in-process platform boot a
// microservice replica.
func (s *Server) Listen() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("rpc: listen: %w", err)
	}
	go s.Serve(ln) //nolint:errcheck // lifetime tied to Close
	return ln.Addr().String(), nil
}

// Close stops the listener, terminates all open connections and waits for
// in-flight handlers to drain. It models a microservice crash/stop: calls
// in flight observe ErrConnClosed and the balancer fails over.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

// connState tracks per-connection call cancellation and the reused
// frame-encode buffer.
type connState struct {
	mu     sync.Mutex
	nc     net.Conn
	wbuf   []byte // reused frame-encode buffer, guarded by mu
	cancel map[uint64]context.CancelFunc
}

func (cs *connState) send(f *frame) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.wbuf = appendFrame(cs.wbuf[:0], f)
	_, err := cs.nc.Write(cs.wbuf)
	return err
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	cs := &connState{nc: conn, cancel: make(map[uint64]context.CancelFunc)}
	var wg sync.WaitGroup
	defer wg.Wait()
	// The frame struct is reused across reads; dispatch goroutines take
	// a copy (Body is freshly allocated per frame, so copies never
	// alias each other).
	var f frame
	for {
		if err := readFrame(br, &f); err != nil {
			// Connection closed or corrupted: cancel outstanding calls.
			cs.mu.Lock()
			for _, cancel := range cs.cancel {
				cancel()
			}
			cs.mu.Unlock()
			return
		}
		switch f.Kind {
		case frameCall:
			ctx, cancel := context.WithCancel(context.Background())
			cs.mu.Lock()
			cs.cancel[f.ID] = cancel
			cs.mu.Unlock()
			wg.Add(1)
			go func(f frame) {
				defer wg.Done()
				s.dispatch(ctx, cs, &f)
				cancel()
				cs.mu.Lock()
				delete(cs.cancel, f.ID)
				cs.mu.Unlock()
			}(f)
		case frameCancel:
			cs.mu.Lock()
			if cancel, ok := cs.cancel[f.ID]; ok {
				cancel()
			}
			cs.mu.Unlock()
		default:
			// Ignore unexpected frames; a well-behaved client never sends
			// them, and dropping beats tearing down a shared connection.
		}
	}
}

func (s *Server) dispatch(ctx context.Context, cs *connState, f *frame) {
	fail := func(err error) {
		cs.send(&frame{Kind: frameError, ID: f.ID, Err: err.Error()}) //nolint:errcheck
	}
	s.mu.RLock()
	m := s.methods[f.Method]
	intercept := s.Intercept
	s.mu.RUnlock()
	if m == nil {
		fail(fmt.Errorf("%w: %s", ErrMethodNotFound, f.Method))
		return
	}
	if intercept != nil {
		if err := intercept(f.Method); err != nil {
			fail(err)
			return
		}
	}
	arg, err := decodeAs(m.argType, f.Body)
	if err != nil {
		fail(fmt.Errorf("rpc: decode %s argument: %w", f.Method, err))
		return
	}
	if m.unary != nil {
		reply, err := m.unary(ctx, arg)
		if err != nil {
			fail(err)
			return
		}
		body, err := encode(reply)
		if err != nil {
			fail(fmt.Errorf("rpc: encode %s reply: %w", f.Method, err))
			return
		}
		if err := cs.send(&frame{Kind: frameData, ID: f.ID, Body: body}); err != nil {
			return
		}
		cs.send(&frame{Kind: frameEnd, ID: f.ID}) //nolint:errcheck
		return
	}
	send := func(msg any) error {
		if err := ctx.Err(); err != nil {
			return ErrCanceled
		}
		body, err := encode(msg)
		if err != nil {
			return fmt.Errorf("rpc: encode %s stream item: %w", f.Method, err)
		}
		return cs.send(&frame{Kind: frameData, ID: f.ID, Body: body})
	}
	if err := m.stream(ctx, arg, send); err != nil {
		fail(err)
		return
	}
	cs.send(&frame{Kind: frameEnd, ID: f.ID}) //nolint:errcheck
}

// encBufs pools the per-message encode scratch buffers on both wire
// directions (client argument encode, server reply/stream encode).
// Buffer growth is the dominant per-message allocation; pooling keeps a
// warmed buffer per P. The gob *encoders* themselves cannot be pooled
// across messages: a gob stream transmits each type descriptor only
// once per encoder, so a reused encoder would omit descriptors the
// fresh per-message decoder on the other side has never seen. The
// connection-level frame encoders (Conn.enc, connState.enc) are the
// reused ones — they live as long as the connection, matching the
// connection-level frame decoders.
var encBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// encode gob-encodes a single concrete value. A nil value encodes to an
// empty body, which decodes as a no-op on the receiving side.
func encode(v any) ([]byte, error) {
	if v == nil {
		return nil, nil
	}
	buf := encBufs.Get().(*bytes.Buffer)
	buf.Reset()
	if err := gob.NewEncoder(buf).EncodeValue(reflect.ValueOf(v)); err != nil {
		encBufs.Put(buf)
		return nil, err
	}
	// The frame retains the body past this call, so hand back an
	// exact-size copy and recycle the (grown) scratch buffer.
	out := append([]byte(nil), buf.Bytes()...)
	encBufs.Put(buf)
	return out, nil
}

// decodeAs decodes body into a fresh value of type t and returns it as a
// pointer-stripped interface matching how it was registered.
func decodeAs(t reflect.Type, body []byte) (any, error) {
	ptr := t.Kind() == reflect.Ptr
	base := t
	if ptr {
		base = t.Elem()
	}
	v := reflect.New(base)
	if err := gob.NewDecoder(bytes.NewReader(body)).DecodeValue(v); err != nil && err != io.EOF {
		return nil, err
	}
	if ptr {
		return v.Interface(), nil
	}
	return v.Elem().Interface(), nil
}

// decodeInto decodes body into the pointer dst.
func decodeInto(dst any, body []byte) error {
	return gob.NewDecoder(bytes.NewReader(body)).DecodeValue(reflect.ValueOf(dst))
}
