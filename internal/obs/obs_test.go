package obs

import (
	"strings"
	"testing"
	"time"

	"github.com/ffdl/ffdl/internal/sim"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("api.crashes")
	c2 := r.Counter("api.crashes")
	if c1 != c2 {
		t.Fatal("Counter did not return the same instrument for the same name")
	}
	c1.Inc()
	c1.Add(2)
	if got := r.CounterValue("api.crashes"); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	if got := r.CounterValue("missing"); got != 0 {
		t.Fatalf("missing counter = %d, want 0", got)
	}
	g := r.Gauge("sched.queue_depth")
	g.Set(7)
	if g2 := r.Gauge("sched.queue_depth"); g2.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g2.Value())
	}
	if h1, h2 := r.Histogram("rpc.roundtrip"), r.Histogram("rpc.roundtrip"); h1 != h2 {
		t.Fatal("Histogram did not return the same instrument for the same name")
	}
}

func TestNilRegistryAndInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	c.Inc()
	c.Add(5)
	g.Set(9)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	r.RegisterCollector(func(set func(string, int64)) { set("a", 1) })
	if s := r.Snapshot(); len(s.Counters) != 0 || len(s.Gauges) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	if r.CounterValues() != nil {
		t.Fatal("nil registry CounterValues must be nil")
	}
}

// TestObsAllocBudget pins the disabled (nil-instrument) hot path at
// zero allocations, and the enabled instruments at zero too — the
// layer's "free when idle" guarantee.
func TestObsAllocBudget(t *testing.T) {
	var nilC *Counter
	var nilG *Gauge
	var nilH *Histogram
	var nilT *Tracer
	at := time.Unix(0, 0)
	if n := testing.AllocsPerRun(1000, func() {
		nilC.Inc()
		nilG.Set(3)
		nilH.Observe(0.5)
		nilT.Phase("job", "PENDING", at)
		nilT.Sub("job", "etcd.propose", at, at)
	}); n != 0 {
		t.Fatalf("disabled path allocates %.1f per op, want 0", n)
	}
	r := NewRegistry()
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(3)
		h.Observe(0.5)
	}); n != 0 {
		t.Fatalf("enabled instruments allocate %.1f per op, want 0", n)
	}
}

// TestHistogramQuantilesUnderFakeClock drives a histogram from
// durations measured on a sim.FakeClock — the way subsystems observe
// virtual-time latencies — and checks the p50/p95/p99 estimates land
// in the right buckets.
func TestHistogramQuantilesUnderFakeClock(t *testing.T) {
	fc := sim.NewFakeClock(time.Unix(0, 0))
	r := NewRegistry()
	h := r.Histogram("tenant.queue_delay")
	// 90 observations of ~2ms, 9 of ~40ms, 1 of ~80s of virtual time.
	observe := func(d time.Duration, n int) {
		for i := 0; i < n; i++ {
			start := fc.Now()
			fc.Advance(d)
			h.ObserveDuration(fc.Now().Sub(start))
		}
	}
	observe(2*time.Millisecond, 90)
	observe(40*time.Millisecond, 9)
	observe(80*time.Second, 1)

	snap := r.Snapshot()
	p, ok := snap.Histogram("tenant.queue_delay")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if p.Count != 100 {
		t.Fatalf("count = %d, want 100", p.Count)
	}
	if p50 := p.Quantile(0.50); p50 < 1e-3 || p50 > 2.5e-3 {
		t.Fatalf("p50 = %v, want within the (1ms, 2.5ms] bucket", p50)
	}
	if p95 := p.Quantile(0.95); p95 < 25e-3 || p95 > 50e-3 {
		t.Fatalf("p95 = %v, want within the (25ms, 50ms] bucket", p95)
	}
	if p99 := p.Quantile(0.99); p99 < 25e-3 || p99 > 50e-3 {
		t.Fatalf("p99 = %v, want within the (25ms, 50ms] bucket", p99)
	}
	// The 80s outlier dominates only the very tail.
	if p999 := p.Quantile(0.999); p999 < 60 || p999 > 120 {
		t.Fatalf("p99.9 = %v, want within the (60s, 120s] bucket", p999)
	}
	wantSum := 90*0.002 + 9*0.040 + 80.0
	if diff := p.Sum - wantSum; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("sum = %v, want %v", p.Sum, wantSum)
	}
}

func TestHistogramMerge(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	h1 := r1.Histogram("rpc.roundtrip")
	h2 := r2.Histogram("rpc.roundtrip")
	for i := 0; i < 50; i++ {
		h1.Observe(0.002)
		h2.Observe(0.040)
	}
	p1, _ := r1.Snapshot().Histogram("rpc.roundtrip")
	p2, _ := r2.Snapshot().Histogram("rpc.roundtrip")
	m, ok := p1.Merge(p2)
	if !ok {
		t.Fatal("merge of identical layouts failed")
	}
	if m.Count != 100 {
		t.Fatalf("merged count = %d, want 100", m.Count)
	}
	if p50 := m.Quantile(0.50); p50 < 1e-3 || p50 > 2.5e-3 {
		t.Fatalf("merged p50 = %v, want in (1ms, 2.5ms]", p50)
	}
	if p95 := m.Quantile(0.95); p95 < 25e-3 || p95 > 50e-3 {
		t.Fatalf("merged p95 = %v, want in (25ms, 50ms]", p95)
	}
	// Mismatched layouts refuse to merge.
	other := r2.HistogramWith("etcd.batch_size", CountBuckets)
	other.Observe(4)
	po, _ := r2.Snapshot().Histogram("etcd.batch_size")
	if _, ok := p1.Merge(po); ok {
		t.Fatal("merge across different bucket layouts must fail")
	}
}

// TestPromGolden pins the exact Prometheus text exposition byte-for-
// byte: deterministic ordering, ffdl_ prefix, dot mangling, counter
// _total suffix, cumulative histogram buckets.
func TestPromGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("watch.replays").Add(3)
	r.Counter("api.crashes").Inc()
	r.Gauge("sched.queue_depth").Set(7)
	h := r.HistogramWith("etcd.batch_size", []float64{1, 4, 16})
	h.Observe(1)
	h.Observe(3)
	h.Observe(3)
	h.Observe(64)
	r.RegisterCollector(func(set func(string, int64)) { set("kube.pods_bound", 12) })

	got := r.Snapshot().Prom()
	want := strings.Join([]string{
		"# TYPE ffdl_api_crashes_total counter",
		"ffdl_api_crashes_total 1",
		"# TYPE ffdl_watch_replays_total counter",
		"ffdl_watch_replays_total 3",
		"# TYPE ffdl_kube_pods_bound gauge",
		"ffdl_kube_pods_bound 12",
		"# TYPE ffdl_sched_queue_depth gauge",
		"ffdl_sched_queue_depth 7",
		"# TYPE ffdl_etcd_batch_size histogram",
		`ffdl_etcd_batch_size_bucket{le="1.0"} 1`,
		`ffdl_etcd_batch_size_bucket{le="4.0"} 3`,
		`ffdl_etcd_batch_size_bucket{le="16.0"} 3`,
		`ffdl_etcd_batch_size_bucket{le="+Inf"} 4`,
		"ffdl_etcd_batch_size_sum 71.0",
		"ffdl_etcd_batch_size_count 4",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("Prometheus exposition drifted.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestCounterValuesSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.x").Add(1)
	r.Counter("b.y").Add(2)
	vals := r.CounterValues()
	if vals["a.x"] != 1 || vals["b.y"] != 2 || len(vals) != 2 {
		t.Fatalf("CounterValues = %v", vals)
	}
}
