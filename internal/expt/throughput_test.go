package expt

import (
	"testing"

	"github.com/ffdl/ffdl/internal/etcd"
)

// TestThroughputBatchingOutperformsAblation is the acceptance pin for
// the control-plane throughput work at (reduced) experiment scale:
// group commit actually groups (cmds/entry > 1 under concurrency, == 1
// in the ablation), every submission dispatches, and both the raw etcd
// proposal rate and the end-to-end dispatch rate beat the unbatched
// ablation. The full-size ≥2x criterion at 64 submitters is pinned by
// `make throughput-smoke` / `ffdl-bench -throughput`; the in-test
// threshold is looser so a loaded CI machine cannot flake it.
func TestThroughputBatchingOutperformsAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("boots two full platforms")
	}
	cfg := ThroughputConfig{Submitters: 16, Jobs: 32, EtcdOps: 64, MongoOps: 64, Seed: 7}
	batched, unbatched, err := ThroughputCompare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []ThroughputResult{batched, unbatched} {
		if r.Dispatched != r.Jobs {
			t.Fatalf("batched=%v dispatched %d/%d jobs", r.Batched, r.Dispatched, r.Jobs)
		}
		if r.EtcdProposalsPerSec <= 0 || r.MongoOpsPerSec <= 0 || r.DispatchedPerSec <= 0 {
			t.Fatalf("batched=%v has zero rates: %+v", r.Batched, r)
		}
	}
	if batched.EtcdCmdsPerEntry <= 1.5 {
		t.Fatalf("group commit did not group: %.2f cmds/entry", batched.EtcdCmdsPerEntry)
	}
	// The ablation proposes one entry per command; retries can only push
	// the ratio below 1 (extra entries), never above.
	if unbatched.EtcdCmdsPerEntry > 1.001 {
		t.Fatalf("ablation batched: %.2f cmds/entry", unbatched.EtcdCmdsPerEntry)
	}
	if batched.EtcdProposalsPerSec < 2*unbatched.EtcdProposalsPerSec {
		t.Fatalf("etcd proposals/sec: batched %.0f vs ablation %.0f, want >= 2x",
			batched.EtcdProposalsPerSec, unbatched.EtcdProposalsPerSec)
	}
	if batched.DispatchedPerSec < unbatched.DispatchedPerSec {
		t.Fatalf("dispatch rate: batched %.1f/s vs ablation %.1f/s — batching made the platform slower",
			batched.DispatchedPerSec, unbatched.DispatchedPerSec)
	}
}

// TestThroughputCodecMicrostage pins the codec dimension of the
// throughput artifact without booting a platform: the binary entry
// codec must beat the gob ablation on both round-trip rate and
// allocations for the representative Put command BenchCodec measures.
func TestThroughputCodecMicrostage(t *testing.T) {
	binary := etcd.BenchCodec(false, 1<<12)
	gob := etcd.BenchCodec(true, 1<<12)
	if binary.Codec != "binary" || gob.Codec != "gob" {
		t.Fatalf("codec labels: %q / %q", binary.Codec, gob.Codec)
	}
	if binary.CmdsPerSec <= 0 || gob.CmdsPerSec <= 0 {
		t.Fatalf("zero rates: binary %+v gob %+v", binary, gob)
	}
	if binary.AllocsPerOp >= gob.AllocsPerOp {
		t.Fatalf("binary codec allocs/op %.1f not below gob %.1f",
			binary.AllocsPerOp, gob.AllocsPerOp)
	}
}
