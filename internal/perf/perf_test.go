package perf

import (
	"testing"
	"testing/quick"
)

func TestPeakThroughputCalibration(t *testing.T) {
	// Table 4: VGG-16/Caffe saturated: P100 ≈ 66, V100 ≈ 107.5 img/s.
	cases := []struct {
		cfg      Config
		lo, hi   float64
		describe string
	}{
		{Config{Model: VGG16, Framework: Caffe, GPUType: P100, GPUsPerL: 1, Learners: 1, CPUThreads: 8},
			62, 70, "VGG/Caffe P100"},
		{Config{Model: VGG16, Framework: Caffe, GPUType: V100, GPUsPerL: 1, Learners: 1, CPUThreads: 8},
			102, 112, "VGG/Caffe V100"},
		// Table 6: TF V100 at 28 threads: Inception ≈ 224, RN50 ≈ 346,
		// VGG ≈ 216.
		{Config{Model: InceptionV3, Framework: TensorFlow, GPUType: V100, GPUsPerL: 1, Learners: 1, CPUThreads: 28},
			210, 240, "Inception/TF V100"},
		{Config{Model: ResNet50, Framework: TensorFlow, GPUType: V100, GPUsPerL: 1, Learners: 1, CPUThreads: 28},
			330, 370, "RN50/TF V100"},
		{Config{Model: VGG16, Framework: TensorFlow, GPUType: V100, GPUsPerL: 1, Learners: 1, CPUThreads: 28},
			205, 225, "VGG/TF V100"},
	}
	for _, tc := range cases {
		got := BareMetalThroughput(tc.cfg)
		if got < tc.lo || got > tc.hi {
			t.Errorf("%s throughput = %.1f, want in [%.0f, %.0f]", tc.describe, got, tc.lo, tc.hi)
		}
	}
}

func TestCaffeSaturatesEarlyTFLate(t *testing.T) {
	// Table 4: Caffe flat from 2→28 threads (<2% gain).
	caffe2 := cpuEfficiency(Caffe, 2)
	caffe28 := cpuEfficiency(Caffe, 28)
	if (caffe28-caffe2)/caffe2 > 0.02 {
		t.Fatalf("Caffe gained %.1f%% from 2→28 threads, want <2%%", 100*(caffe28-caffe2)/caffe2)
	}
	// Table 6: TF gains measurably from 16→28 threads (Inception +2.7%).
	tf16 := cpuEfficiency(TensorFlow, 16)
	tf28 := cpuEfficiency(TensorFlow, 28)
	gain := (tf28 - tf16) / tf16
	if gain < 0.005 || gain > 0.05 {
		t.Fatalf("TF 16→28 thread gain = %.2f%%, want 0.5-5%%", 100*gain)
	}
}

func TestGPUGenerationOrdering(t *testing.T) {
	for _, m := range []Model{VGG16, ResNet50, InceptionV3} {
		for _, fw := range []Framework{Caffe, TensorFlow} {
			base := Config{Model: m, Framework: fw, GPUsPerL: 1, Learners: 1, CPUThreads: 28}
			k80, p100, v100 := base, base, base
			k80.GPUType, p100.GPUType, v100.GPUType = K80, P100, V100
			tk, tp, tv := BareMetalThroughput(k80), BareMetalThroughput(p100), BareMetalThroughput(v100)
			if !(tk < tp && tp < tv) {
				t.Fatalf("%s/%s: K80=%.1f P100=%.1f V100=%.1f not ordered", m, fw, tk, tp, tv)
			}
		}
	}
}

func TestFfDLOverheadInPaperBand(t *testing.T) {
	// Table 1 reports 0.32%..5.35% across these 8 configs x 2 benchmarks.
	configs := []struct{ l, g int }{{1, 1}, {1, 2}, {1, 4}, {2, 1}, {2, 2}, {2, 4}, {4, 2}, {4, 4}}
	for _, bench := range []struct {
		m  Model
		fw Framework
	}{{VGG16, Caffe}, {InceptionV3, TensorFlow}} {
		for _, cf := range configs {
			c := Config{Model: bench.m, Framework: bench.fw, GPUType: K80, Learners: cf.l, GPUsPerL: cf.g, CPUThreads: 8}
			ov := FfDLOverhead(c)
			if ov < 0.002 || ov > 0.055 {
				t.Errorf("%s %s overhead = %.2f%%, outside paper band", bench.m, c, 100*ov)
			}
		}
	}
}

func TestOverheadGrowsWithDistribution(t *testing.T) {
	small := Config{Model: VGG16, Framework: Caffe, GPUType: K80, Learners: 1, GPUsPerL: 1, CPUThreads: 8}
	large := Config{Model: VGG16, Framework: Caffe, GPUType: K80, Learners: 4, GPUsPerL: 4, CPUThreads: 8}
	// Compare structural components without jitter by averaging over the
	// band: 4L×4G must exceed 1L×1G in expectation; with our
	// deterministic jitter just assert the actual values are ordered.
	if FfDLOverhead(large) <= FfDLOverhead(small) {
		t.Fatalf("overhead did not grow with distribution: %f vs %f",
			FfDLOverhead(large), FfDLOverhead(small))
	}
}

func TestDGXGapBands(t *testing.T) {
	// Table 2: 1-GPU gaps 3.3-7.9%, 2-GPU gaps 10.1-13.7%, all ≤ 15%.
	for _, m := range []Model{InceptionV3, ResNet50, VGG16} {
		c1 := Config{Model: m, Framework: TensorFlow, GPUType: P100, Learners: 1, GPUsPerL: 1, CPUThreads: 28}
		c2 := c1
		c2.GPUsPerL = 2
		g1, g2 := DGXGap(c1), DGXGap(c2)
		if g1 < 0.02 || g1 > 0.09 {
			t.Errorf("%s 1-GPU DGX gap = %.2f%%, want 2-9%%", m, 100*g1)
		}
		if g2 < 0.09 || g2 > 0.15 {
			t.Errorf("%s 2-GPU DGX gap = %.2f%%, want 9-15%%", m, 100*g2)
		}
		if g2 <= g1 {
			t.Errorf("%s: 2-GPU gap %.3f not larger than 1-GPU gap %.3f", m, g2, g1)
		}
	}
}

func TestTShirtSizesMatchTable5(t *testing.T) {
	want := map[string]struct{ cpu, mem int }{
		"1-K80":  {4, 24},
		"2-K80":  {8, 48},
		"4-K80":  {16, 96},
		"1-P100": {8, 24},
		"2-P100": {16, 48},
		"1-V100": {26, 24},
		"2-V100": {42, 48},
	}
	for _, size := range StandardSizes() {
		w, ok := want[size.Label()]
		if !ok {
			t.Errorf("unexpected size %s", size.Label())
			continue
		}
		if size.CPU != w.cpu || size.MemoryGB != w.mem {
			t.Errorf("%s = %d CPU / %d GB, want %d / %d",
				size.Label(), size.CPU, size.MemoryGB, w.cpu, w.mem)
		}
	}
}

func TestGPUUtilizationMatchesTable6Band(t *testing.T) {
	// Table 6 shows 86.8-98.7% utilization at 16-28 threads on V100.
	for _, m := range []Model{InceptionV3, ResNet50, VGG16} {
		for _, threads := range []int{16, 28} {
			c := Config{Model: m, Framework: TensorFlow, GPUType: V100, Learners: 1, GPUsPerL: 1, CPUThreads: threads}
			u := GPUUtilization(c)
			if u < 0.85 || u > 1.0 {
				t.Errorf("%s @%d threads utilization = %.1f%%, want 85-100%%", m, threads, 100*u)
			}
		}
	}
}

func TestStorageBoundThroughput(t *testing.T) {
	// Plenty of bandwidth: compute-bound.
	if got := StorageBoundThroughput(100, 1e12); got != 100 {
		t.Fatalf("unbound = %f", got)
	}
	// 1 MB/s share: ~9.3 img/s cap.
	got := StorageBoundThroughput(100, 1<<20)
	if got >= 100 || got < 5 || got > 15 {
		t.Fatalf("storage-bound throughput = %f", got)
	}
}

func TestSecondsPerEpoch(t *testing.T) {
	c := Config{Model: ResNet50, Framework: TensorFlow, GPUType: V100, Learners: 1, GPUsPerL: 1, CPUThreads: 28}
	s := SecondsPerEpoch(c, 1_300_000) // ImageNet1K
	// ≈ 1.3M / ~345 img/s ≈ 3800s.
	if s < 3000 || s > 5000 {
		t.Fatalf("epoch seconds = %.0f, want ~3800", s)
	}
	bad := Config{Model: ResNet50, Framework: TensorFlow, GPUType: V100}
	if got := SecondsPerEpoch(bad, 100); got <= 0 {
		t.Fatalf("invalid config should give +Inf, got %f", got)
	}
}

// Property: throughput is monotone in learners and GPUs (more hardware
// is never slower in aggregate).
func TestThroughputMonotoneProperty(t *testing.T) {
	f := func(l, g uint8) bool {
		learners := int(l%4) + 1
		gpus := int(g%4) + 1
		c1 := Config{Model: ResNet50, Framework: TensorFlow, GPUType: V100,
			Learners: learners, GPUsPerL: gpus, CPUThreads: 16}
		c2 := c1
		c2.Learners++
		c3 := c1
		c3.GPUsPerL++
		t1 := BareMetalThroughput(c1)
		return BareMetalThroughput(c2) > t1 && BareMetalThroughput(c3) > t1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: overhead and utilization stay in [0,1].
func TestOverheadBoundsProperty(t *testing.T) {
	models := []Model{VGG16, ResNet50, InceptionV3}
	fws := []Framework{Caffe, TensorFlow}
	gpus := []GPUType{K80, P100, V100}
	f := func(mi, fi, gi, l, g, th uint8) bool {
		c := Config{
			Model: models[mi%3], Framework: fws[fi%2], GPUType: gpus[gi%3],
			Learners: int(l%8) + 1, GPUsPerL: int(g%4) + 1, CPUThreads: int(th%32) + 1,
		}
		ov := FfDLOverhead(c)
		u := GPUUtilization(c)
		dg := DGXGap(c)
		return ov >= 0 && ov <= 1 && u >= 0 && u <= 1 && dg >= 0 && dg <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
