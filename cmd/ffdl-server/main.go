// Command ffdl-server boots a complete in-process FfDL platform (etcd
// cluster, metadata store, object storage, kube-like orchestrator, API
// and LCM replicas) plus a synthetic GPU cluster, and serves the
// training API over REST — the shape a self-hosted deployment of the
// paper's system exposes.
//
//	ffdl-server -listen :8080 -k80 4 -v100 2
//
// Endpoints:
//
//	POST /v1/jobs                submit a job (JSON manifest)
//	GET  /v1/jobs                list jobs (?user=)
//	GET  /v1/jobs/{id}           job status + history
//	GET  /v1/jobs/{id}/watch     stream status transitions (NDJSON, ends at terminal)
//	GET  /v1/jobs/{id}/logs      collected logs (?search=), or a live
//	                             NDJSON stream with ?follow=1&from=<offset>
//	                             (resumable by LogLine offset)
//	GET  /v1/jobs/{id}/trace     job trace span tree (JSON; ?format=chrome
//	                             emits Chrome trace-event JSON for
//	                             chrome://tracing / Perfetto)
//	POST /v1/jobs/{id}/halt      HALT (checkpoint + release GPUs)
//	POST /v1/jobs/{id}/resume    RESUME from latest checkpoint
//	POST /v1/jobs/{id}/terminate cancel
//	GET  /v1/metrics             platform metrics (Prometheus text exposition)
//	GET  /v1/cluster             GPU utilization
//	GET  /v1/tenants             list tenant quotas (with -tenancy)
//	GET  /v1/tenants/{user}      one tenant's quota + live GPU usage
//	PUT  /v1/tenants/{user}      set a quota: {"tier":"paid","gpus":8}
//
// With -tenancy, submissions from registered tenants are queued and
// admitted by the tenant dispatcher instead of being rejected at
// capacity; seed quotas with -quotas user:tier:gpus[,...] or set them
// at runtime over PUT /v1/tenants/{user}.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/ffdl/ffdl"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:8080", "HTTP listen address")
		k80     = flag.Int("k80", 4, "number of 4-GPU K80 nodes")
		p100    = flag.Int("p100", 0, "number of 4-GPU P100 nodes")
		v100    = flag.Int("v100", 0, "number of 4-GPU V100 nodes")
		speedup = flag.Float64("time-compression", 1e-3, "modeled-seconds to real-seconds factor for training")
		dataDir = flag.String("data-dir", "", "persist the metadata oplog, status-bus replay window and learner logs under this directory (empty = in-memory only); restarting with the same directory recovers jobs, logs and consumer cursors")
		tenancy = flag.Bool("tenancy", false, "enable the multi-tenant subsystem (queued admission + preemption)")
		quotas  = flag.String("quotas", "", "seed tenant quotas, user:tier:gpus[,...] (implies -tenancy)")
	)
	flag.Parse()

	cfg := ffdl.Config{TimeCompression: *speedup, DataDir: *dataDir}
	if *tenancy || *quotas != "" {
		tc := &ffdl.TenancyConfig{}
		for _, spec := range strings.Split(*quotas, ",") {
			if spec = strings.TrimSpace(spec); spec == "" {
				continue
			}
			rec, err := parseQuotaSpec(spec)
			if err != nil {
				log.Fatalf("ffdl-server: -quotas: %v", err)
			}
			tc.Quotas = append(tc.Quotas, rec)
		}
		cfg.Tenancy = tc
	}
	p, err := ffdl.New(cfg)
	if err != nil {
		log.Fatalf("ffdl-server: %v", err)
	}
	defer p.Stop()
	if *k80 > 0 {
		p.AddNodes("k80", ffdl.K80, *k80, 4)
	}
	if *p100 > 0 {
		p.AddNodes("p100", ffdl.P100, *p100, 4)
	}
	if *v100 > 0 {
		p.AddNodes("v100", ffdl.V100, *v100, 4)
	}
	if err := p.SeedDataset("datasets", "demo/", 8<<20); err != nil {
		log.Fatalf("ffdl-server: seed dataset: %v", err)
	}
	client := p.Client()

	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, code int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(v) //nolint:errcheck
	}
	fail := func(w http.ResponseWriter, code int, err error) {
		writeJSON(w, code, map[string]string{"error": err.Error()})
	}

	mux.HandleFunc("/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), 10*time.Second)
		defer cancel()
		switch r.Method {
		case http.MethodPost:
			var m ffdl.Manifest
			if err := json.NewDecoder(r.Body).Decode(&m); err != nil {
				fail(w, http.StatusBadRequest, err)
				return
			}
			id, err := client.Submit(ctx, m)
			if err != nil {
				if ffdl.IsDegraded(err) {
					// Read-only degraded mode: the submission was shed,
					// not rejected. Tell the client to retry.
					w.Header().Set("Retry-After", "1")
					fail(w, http.StatusServiceUnavailable, err)
					return
				}
				fail(w, http.StatusUnprocessableEntity, err)
				return
			}
			writeJSON(w, http.StatusCreated, map[string]string{"jobId": id})
		case http.MethodGet:
			jobs, err := client.List(ctx, r.URL.Query().Get("user"))
			if err != nil {
				fail(w, http.StatusInternalServerError, err)
				return
			}
			writeJSON(w, http.StatusOK, jobs)
		default:
			w.WriteHeader(http.StatusMethodNotAllowed)
		}
	})

	mux.HandleFunc("/v1/jobs/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
		parts := strings.SplitN(rest, "/", 2)
		jobID := parts[0]
		action := ""
		if len(parts) == 2 {
			action = parts[1]
		}
		if action == "watch" && r.Method == http.MethodGet {
			// Event-driven follow: transitions are pushed as they
			// happen (no poll loop); the stream ends when the job
			// reaches a terminal status or the client disconnects.
			ch, cancel, err := client.WatchStatus(r.Context(), jobID)
			if err != nil {
				fail(w, http.StatusNotFound, err)
				return
			}
			defer cancel()
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			flusher, _ := w.(http.Flusher)
			enc := json.NewEncoder(w)
			for e := range ch {
				if err := enc.Encode(e); err != nil {
					return
				}
				if flusher != nil {
					flusher.Flush()
				}
			}
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), 10*time.Second)
		defer cancel()
		switch {
		case action == "" && r.Method == http.MethodGet:
			reply, err := client.Status(ctx, jobID)
			if err != nil {
				fail(w, http.StatusNotFound, err)
				return
			}
			writeJSON(w, http.StatusOK, reply)
		case action == "trace" && r.Method == http.MethodGet:
			tr, err := client.Trace(ctx, jobID)
			if err != nil {
				fail(w, http.StatusNotFound, err)
				return
			}
			if r.URL.Query().Get("format") == "chrome" {
				buf, cerr := tr.ChromeTrace()
				if cerr != nil {
					fail(w, http.StatusInternalServerError, cerr)
					return
				}
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusOK)
				w.Write(buf) //nolint:errcheck
				return
			}
			writeJSON(w, http.StatusOK, tr)
		case action == "logs" && r.Method == http.MethodGet:
			if r.URL.Query().Get("follow") != "" {
				// Live follow: lines are pushed as NDJSON as learners
				// emit them. Each line carries its commit-log offset, so
				// a disconnected client resumes with ?from=<offset+1>
				// and misses nothing — the job's log outlives any API
				// replica. The stream runs until the client disconnects.
				var from uint64
				if s := r.URL.Query().Get("from"); s != "" {
					v, perr := strconv.ParseUint(s, 10, 64)
					if perr != nil {
						fail(w, http.StatusBadRequest, fmt.Errorf("bad from offset %q", s))
						return
					}
					from = v
				}
				w.Header().Set("Content-Type", "application/x-ndjson")
				w.WriteHeader(http.StatusOK)
				flusher, _ := w.(http.Flusher)
				enc := json.NewEncoder(w)
				client.FollowLogsFrom(r.Context(), jobID, from, func(l ffdl.LogLine) { //nolint:errcheck
					if enc.Encode(l) == nil && flusher != nil {
						flusher.Flush()
					}
				})
				return
			}
			var lines []ffdl.LogLine
			var err error
			if q := r.URL.Query().Get("search"); q != "" {
				lines, err = client.SearchLogs(ctx, jobID, q)
			} else {
				lines, err = client.Logs(ctx, jobID)
			}
			if err != nil {
				fail(w, http.StatusInternalServerError, err)
				return
			}
			writeJSON(w, http.StatusOK, lines)
		case r.Method == http.MethodPost:
			var err error
			switch action {
			case "halt":
				err = client.Halt(ctx, jobID)
			case "resume":
				err = client.Resume(ctx, jobID)
			case "terminate":
				err = client.Terminate(ctx, jobID)
			default:
				w.WriteHeader(http.StatusNotFound)
				return
			}
			if err != nil {
				fail(w, http.StatusConflict, err)
				return
			}
			writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
		default:
			w.WriteHeader(http.StatusMethodNotAllowed)
		}
	})

	mux.HandleFunc("/v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), 10*time.Second)
		defer cancel()
		snap, err := client.Metrics(ctx)
		if err != nil {
			fail(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, snap.Prom()) //nolint:errcheck
	})

	mux.HandleFunc("/v1/cluster", func(w http.ResponseWriter, r *http.Request) {
		alloc, capacity := p.GPUUtilization()
		writeJSON(w, http.StatusOK, map[string]int{"allocatedGPUs": alloc, "capacityGPUs": capacity})
	})

	mux.HandleFunc("/v1/tenants", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.WriteHeader(http.StatusMethodNotAllowed)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), 10*time.Second)
		defer cancel()
		recs, err := client.Tenants(ctx)
		if err != nil {
			fail(w, http.StatusConflict, err)
			return
		}
		out := make([]tenantWire, 0, len(recs))
		for _, rec := range recs {
			out = append(out, toWire(rec, -1))
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("/v1/tenants/", func(w http.ResponseWriter, r *http.Request) {
		user := strings.TrimPrefix(r.URL.Path, "/v1/tenants/")
		if user == "" {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), 10*time.Second)
		defer cancel()
		switch r.Method {
		case http.MethodGet:
			rec, inUse, err := client.Quota(ctx, user)
			if err != nil {
				fail(w, http.StatusNotFound, err)
				return
			}
			writeJSON(w, http.StatusOK, toWire(rec, inUse))
		case http.MethodPut:
			// Partial update: an omitted field keeps the tenant's
			// current value, so concurrent single-field updates (one
			// admin bumping -gpus, another changing -tier) cannot
			// silently revert each other through a client-side
			// read-modify-write.
			var in struct {
				Tier *string `json:"tier"`
				GPUs *int    `json:"gpus"`
			}
			if err := json.NewDecoder(r.Body).Decode(&in); err != nil {
				fail(w, http.StatusBadRequest, err)
				return
			}
			rec, _, err := client.Quota(ctx, user)
			if err != nil {
				// New tenant: both fields are required.
				if in.Tier == nil || in.GPUs == nil {
					fail(w, http.StatusBadRequest,
						fmt.Errorf("new tenant %q needs both tier and gpus", user))
					return
				}
				rec = ffdl.Tenant{User: user}
			}
			if in.Tier != nil {
				tier, err := ffdl.ParseTier(*in.Tier)
				if err != nil {
					fail(w, http.StatusBadRequest, err)
					return
				}
				rec.Tier = tier
			}
			if in.GPUs != nil {
				rec.GPUs = *in.GPUs
			}
			rec.User = user
			if err := client.SetQuota(ctx, rec); err != nil {
				fail(w, http.StatusConflict, err)
				return
			}
			writeJSON(w, http.StatusOK, toWire(rec, -1))
		default:
			w.WriteHeader(http.StatusMethodNotAllowed)
		}
	})

	fmt.Printf("ffdl-server listening on http://%s (GPUs: %d K80-node, %d P100-node, %d V100-node; dataset bucket \"datasets\" prefix \"demo/\"; tenancy %v)\n",
		*listen, *k80, *p100, *v100, cfg.Tenancy != nil)
	log.Fatal(http.ListenAndServe(*listen, mux))
}

// tenantWire is the JSON shape of a tenant record on the REST surface.
type tenantWire struct {
	User string `json:"user"`
	Tier string `json:"tier"`
	GPUs int    `json:"gpus"`
	// InUse is the tenant's live admitted GPU footprint (omitted where
	// not applicable, e.g. list responses).
	InUse *int `json:"inUse,omitempty"`
}

func toWire(rec ffdl.Tenant, inUse int) tenantWire {
	w := tenantWire{User: rec.User, Tier: ffdl.TierName(rec.Tier), GPUs: rec.GPUs}
	if inUse >= 0 {
		w.InUse = &inUse
	}
	return w
}

// parseQuotaSpec parses one -quotas entry of the form user:tier:gpus.
func parseQuotaSpec(spec string) (ffdl.Tenant, error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return ffdl.Tenant{}, fmt.Errorf("bad quota %q (want user:tier:gpus)", spec)
	}
	tier, err := ffdl.ParseTier(parts[1])
	if err != nil {
		return ffdl.Tenant{}, err
	}
	gpus, err := strconv.Atoi(parts[2])
	if err != nil || gpus < 0 {
		return ffdl.Tenant{}, fmt.Errorf("bad GPU count in quota %q", spec)
	}
	return ffdl.Tenant{User: parts[0], Tier: tier, GPUs: gpus}, nil
}
