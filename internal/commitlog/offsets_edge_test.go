package commitlog

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// Offset-map edge cases under the real file layout: the consumer-cursor
// "offsets.log" is the piece of recovery state that is rewritten in
// place (bounded by OffsetsRewriteEvery), so its boundaries and empty /
// ahead-of-log shapes each get a pin here.

// TestOffsetsRewriteExactBoundary pins the rewrite trigger at its exact
// edge: with OffsetsRewriteEvery = N, the Nth commit must collapse the
// offsets log to a single frame — not one commit later.
func TestOffsetsRewriteExactBoundary(t *testing.T) {
	fs, err := OpenFileStore(t.TempDir())
	if err != nil {
		t.Fatalf("OpenFileStore: %v", err)
	}
	const every = 4
	l, err := Open(fs, Options{OffsetsRewriteEvery: every})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 1; i < every; i++ {
		if err := l.Commit("c", uint64(i)); err != nil {
			t.Fatalf("Commit %d: %v", i, err)
		}
	}
	grown, _ := fs.LoadOffsets()
	// The boundary commit: the log must shrink to exactly one frame.
	if err := l.Commit("c", every); err != nil {
		t.Fatalf("boundary Commit: %v", err)
	}
	data, _ := fs.LoadOffsets()
	oneFrame := appendOffsetsFrame(nil, l.offGen, []offsetEntry{{name: "c", next: every}})
	if len(data) != len(oneFrame) {
		t.Fatalf("offsets log after boundary commit = %d bytes, want one frame (%d); pre-boundary size %d",
			len(data), len(oneFrame), len(grown))
	}
	if len(grown) <= len(data) {
		t.Fatalf("offsets log never grew before the boundary (%d bytes)", len(grown))
	}
	// The rewritten map must still recover the latest cursor.
	r, err := Open(fs, Options{OffsetsRewriteEvery: every})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if cur, ok := r.Committed("c"); !ok || cur != every {
		t.Fatalf("recovered cursor = (%d, %v), want (%d, true)", cur, ok, every)
	}
}

// TestReopenEmptyOffsetsLog: an offsets.log that exists but holds zero
// bytes (crashed before the first commit frame landed) must read as "no
// consumers", not an error — and committing afterwards works.
func TestReopenEmptyOffsetsLog(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenFileStore(dir)
	if err != nil {
		t.Fatalf("OpenFileStore: %v", err)
	}
	l, err := Open(fs, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 5; i++ {
		mustAppend(t, l, "k", []byte(fmt.Sprintf("v%d", i)))
	}
	if err := os.WriteFile(filepath.Join(dir, "offsets.log"), nil, 0o644); err != nil {
		t.Fatalf("truncate offsets.log: %v", err)
	}
	fs2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatalf("reopen store: %v", err)
	}
	r, err := Open(fs2, Options{})
	if err != nil {
		t.Fatalf("reopen with empty offsets.log: %v", err)
	}
	if got := r.Len(); got != 5 {
		t.Fatalf("reopened Len = %d, want 5", got)
	}
	if names := r.Consumers(); len(names) != 0 {
		t.Fatalf("empty offsets.log recovered consumers %v", names)
	}
	if err := r.Commit("c", 3); err != nil {
		t.Fatalf("Commit after empty-map recovery: %v", err)
	}
	if cur, ok := r.Committed("c"); !ok || cur != 3 {
		t.Fatalf("cursor = (%d, %v), want (3, true)", cur, ok)
	}
}

// TestReopenCursorPastLastRecord: a consumer cursor committed beyond
// the last surviving record (the acked records were torn away, or the
// producer crashed between commit and append) must survive reopen
// as-is, and offset allocation must resume at or past it — an offset a
// consumer already accounts for is never re-minted for a new record.
func TestReopenCursorPastLastRecord(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenFileStore(dir)
	if err != nil {
		t.Fatalf("OpenFileStore: %v", err)
	}
	l, err := Open(fs, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 5; i++ {
		mustAppend(t, l, "k", []byte(fmt.Sprintf("v%d", i)))
	}
	ahead := l.NextOffset() + 10
	if err := l.Commit("c", ahead); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	fs2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatalf("reopen store: %v", err)
	}
	r, err := Open(fs2, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if cur, ok := r.Committed("c"); !ok || cur != ahead {
		t.Fatalf("recovered cursor = (%d, %v), want (%d, true)", cur, ok, ahead)
	}
	off, err := r.Append("k", []byte("post"))
	if err != nil {
		t.Fatalf("post-recovery Append: %v", err)
	}
	if off < ahead {
		t.Fatalf("post-recovery append minted offset %d below the acked cursor %d", off, ahead)
	}
}

// TestFileStoreConcurrentChurn runs parallel appenders, readers, cursor
// commits and an explicit compaction tick against one FileStore-backed
// log — the -race exercise for the durable configuration the platform
// actually runs (segment roll + seal-time compaction + offsets rewrite
// all interleaving). Correctness checks are the log's own invariants:
// strictly increasing offsets per reader pass, and a reopen that agrees
// with the final in-memory state.
func TestFileStoreConcurrentChurn(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenFileStore(dir)
	if err != nil {
		t.Fatalf("OpenFileStore: %v", err)
	}
	opts := Options{SegmentRecords: 32, Compact: true, OffsetsRewriteEvery: 8}
	l, err := Open(fs, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}

	const (
		appenders   = 4
		perAppender = 200
	)
	var appendWG, churnWG sync.WaitGroup
	errCh := make(chan error, appenders+4)
	for a := 0; a < appenders; a++ {
		appendWG.Add(1)
		go func(a int) {
			defer appendWG.Done()
			for i := 0; i < perAppender; i++ {
				key := fmt.Sprintf("k%d", (a*perAppender+i)%8)
				if _, err := l.Append(key, []byte(fmt.Sprintf("a%d-%d", a, i))); err != nil {
					errCh <- fmt.Errorf("appender %d: %w", a, err)
					return
				}
			}
		}(a)
	}
	stop := make(chan struct{})
	// Readers: every observed pass must be strictly increasing.
	for r := 0; r < 2; r++ {
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				last := uint64(0)
				seen := false
				for _, rec := range l.Records(0) {
					if seen && rec.Offset <= last {
						errCh <- fmt.Errorf("reader saw offsets %d then %d", last, rec.Offset)
						return
					}
					last, seen = rec.Offset, true
				}
			}
		}()
	}
	// A consumer committing its cursor forward (offsets.log churn).
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := l.Commit("tail", l.NextOffset()); err != nil {
				errCh <- fmt.Errorf("commit: %w", err)
				return
			}
			if i%16 == 0 {
				time.Sleep(time.Millisecond)
			}
		}
	}()
	// The compaction tick.
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
				if err := l.Compact(); err != nil {
					errCh <- fmt.Errorf("compact: %w", err)
					return
				}
			}
		}
	}()

	// Wait for the appenders, then wind the churn down.
	appendersDone := make(chan struct{})
	go func() {
		appendWG.Wait()
		close(appendersDone)
	}()
	select {
	case err := <-errCh:
		close(stop)
		churnWG.Wait()
		t.Fatal(err)
	case <-time.After(60 * time.Second):
		close(stop)
		churnWG.Wait()
		t.Fatal("concurrent churn did not finish in 60s")
	case <-appendersDone:
	}
	close(stop)
	churnWG.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// One final, guaranteed cursor commit after the churn has wound
	// down: the churn committer races with the appenders and may never
	// be scheduled before they finish, so the reopen check below can't
	// rely on it having produced a frame.
	if err := l.Commit("tail", l.NextOffset()); err != nil {
		t.Fatalf("final commit: %v", err)
	}

	// The reopened log must agree with the final in-memory state.
	before := l.Records(0)
	next := l.NextOffset()
	fs2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatalf("reopen store: %v", err)
	}
	r, err := Open(fs2, opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	after := r.Records(0)
	if len(after) != len(before) {
		t.Fatalf("reopen: %d records, want %d", len(after), len(before))
	}
	for i := range before {
		if before[i].Offset != after[i].Offset || string(before[i].Payload) != string(after[i].Payload) {
			t.Fatalf("record %d diverged across reopen: %d vs %d", i, before[i].Offset, after[i].Offset)
		}
	}
	if got := r.NextOffset(); got < next {
		t.Fatalf("reopened NextOffset = %d, want >= %d", got, next)
	}
	if cur, ok := r.Committed("tail"); !ok || cur != next {
		t.Fatalf("reopened cursor = (%d, %v), want (%d, true)", cur, ok, next)
	}
}
