package ffdl

import (
	"context"
	"testing"
	"time"
)

// TestPublicAPIEndToEnd exercises the facade exactly as the README
// quickstart does.
func TestPublicAPIEndToEnd(t *testing.T) {
	p, err := New(Config{Seed: 7, PollInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	p.AddNodes("k80", K80, 2, 4)
	if err := p.SeedDataset("datasets", "mnist/", 2<<20); err != nil {
		t.Fatal(err)
	}
	client := p.Client()
	ctx := context.Background()
	jobID, err := client.Submit(ctx, Manifest{
		Name: "train-vgg", User: "alice",
		Framework: Caffe, Model: VGG16,
		Learners: 2, GPUsPerLearner: 1, GPUType: K80,
		Iterations: 50, CheckpointEvery: 10,
		DataBucket: "datasets", DataPrefix: "mnist/",
	})
	if err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	status, err := client.WaitForStatus(wctx, jobID, StatusCompleted, 2*time.Millisecond)
	if err != nil || status != StatusCompleted {
		t.Fatalf("status = %v, err = %v", status, err)
	}
	logs, err := client.Logs(ctx, jobID)
	if err != nil || len(logs) == 0 {
		t.Fatalf("logs: %d lines, err %v", len(logs), err)
	}
	alloc, capacity := p.GPUUtilization()
	if alloc != 0 || capacity != 8 {
		t.Fatalf("utilization = %d/%d, want 0/8", alloc, capacity)
	}
}
