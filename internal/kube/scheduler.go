package kube

import (
	"fmt"
	"sort"
	"time"

	"github.com/ffdl/ffdl/internal/sched"
	"github.com/ffdl/ffdl/internal/sim"
)

// SchedStats counts scheduler work, for observability and for the
// scale experiments that pin "cost proportional to what changed, not
// cluster size".
type SchedStats struct {
	// Passes is the number of scheduling passes that evaluated pending
	// pods against the cluster view.
	Passes uint64
	// FullScans counts full-cluster view rebuilds: one at boot plus one
	// per resync tick (the safety net against dropped watch events).
	// Event-driven operation between ticks never re-lists the store.
	FullScans uint64
	// NodesExamined is the cumulative number of nodes placement queries
	// inspected across all passes. Dividing by Passes gives the
	// per-pass cost the capacity index keeps sublinear in cluster size.
	NodesExamined uint64
	// PodsBound counts successful bindings.
	PodsBound uint64
	// EventsSeen / EventsIgnored count store watch events observed and
	// the subset the dirty-set filter discarded without any work
	// (heartbeat-only node updates above all).
	EventsSeen    uint64
	EventsIgnored uint64
	// EventsDropped is the cumulative count of store watch events the
	// scheduler's watcher dropped under backpressure, harvested from
	// the store at each resync. A nonzero harvest is the only thing
	// that makes the resync tick rebuild the view.
	EventsDropped uint64
	// ResyncsSkipped counts resync ticks that found zero dropped events
	// and therefore skipped the full-store rebuild, running only the
	// cheap revision audit. On a healthy cluster every tick lands here.
	ResyncsSkipped uint64
	// AuditsClean counts skipped resyncs whose revision audit proved
	// the incremental view current (last folded event revision ==
	// store revision, nothing in flight).
	AuditsClean uint64
	// SpreadFullScans counts placement queries answered by the Spread
	// policy. Spread examines every feasible candidate: its score mixes
	// CPU and GPU equally, so the pack-ordered capacity index cannot
	// prune for it. The counter makes that cost visible at scale; see
	// the Spread godoc in internal/sched and docs/architecture.md.
	SpreadFullScans uint64
}

// schedulerLoop is the cluster scheduler. It is event-driven and
// incremental: a watch on the API-server store delivers every object
// change with its previous state (WatchEvent.Prev), and the loop folds
// each delta into a live sched.ClusterState plus a pending-pod set —
// the "dirty-set" view. A scheduling pass therefore never re-lists the
// store; it evaluates only the pending pods, against a capacity index
// whose per-placement cost scales with feasible candidates rather than
// cluster size.
//
// Wake filtering is capacity-aware: a pass runs only when a new pod
// appears, or when capacity that could help a waiting pod is freed
// (pod terminated/deleted, node added/uncordoned/grown — tracked per
// GPU type and matched against what the waiting pods actually demand).
// Node heartbeats, pod phase progress and other no-op churn are
// discarded at the event filter, so on a large cluster an idle or
// fully-waiting scheduler does zero work per heartbeat.
//
// The SchedulerInterval ticker survives as the slow resync safety net,
// but it is conditional: only dropped watch events can make the
// incremental view drift, so a tick first harvests the watcher's
// dropped-events counter (StoreWatch.TakeDropped) and rebuilds from a
// full listing (SchedStats.FullScans) only when it is nonzero. A tick
// with zero drops is reduced to a cheap revision audit — compare the
// last folded event revision against Store.Revision() — and counted in
// SchedStats.ResyncsSkipped. On a healthy cluster the safety net
// therefore costs O(1) per tick, not O(cluster).
//
// Without a GangPolicy the pass behaves like the stock Kubernetes
// scheduler — "it considers each of the learner pods individually"
// (§3.5) — binding whatever fits, which is what produces partial
// placements and temporarily deadlocked learners. With a GangPolicy,
// pods carrying gang information are bound all-or-nothing.
func (c *Cluster) schedulerLoop(watch *StoreWatch) {
	ticker := c.cfg.Clock.NewTicker(c.cfg.SchedulerInterval)
	defer ticker.Stop()
	s := &schedCore{c: c, watch: watch}
	s.resync()
	c.publishSchedStats(&s.stats)
	for {
		select {
		case <-c.stopCh:
			return
		case ev := <-watch.Events():
			s.observe(ev)
			// Coalesce the burst: drain whatever is queued so one pass
			// covers it all.
			sim.Coalesce(watch.Events(), s.observe)
			s.maybePass()
		case <-ticker.C:
			s.resyncTick()
		}
		c.publishSchedStats(&s.stats)
	}
}

// assignInfo remembers what the scheduler view charged for one bound
// pod incarnation, so the matching release is exact even after the
// node or pod object is gone.
type assignInfo struct {
	node    string
	gpuType string // the node's GPU type, for freed-capacity matching
	demand  sched.Resources
	jobID   string
	gang    bool
}

// schedCore is the scheduler's incremental view of the cluster plus
// the dirty-set bookkeeping. It is confined to the scheduler goroutine.
type schedCore struct {
	c     *Cluster
	watch *StoreWatch
	state *sched.ClusterState

	// lastRev is the highest store revision folded into the view, the
	// cursor the conditional resync's audit compares against
	// Store.Revision().
	lastRev uint64

	// pending holds unbound, non-terminated pods by name.
	pending map[string]*Pod
	// assigned maps bound pod UIDs to what their binding consumed. It
	// is the idempotence guard: an event (or our own bind echo) whose
	// effect is already reflected here is a no-op.
	assigned map[uint64]assignInfo
	// boundByGang counts bound, live members per gang job — the
	// incremental replacement for scanning all pods per pass.
	boundByGang map[string]int

	// Dirty-set wake state, reset after every maybePass.
	newPending bool
	freedTypes map[string]struct{}

	// What the still-pending pods are waiting for, recomputed after
	// each pass: GPU types (waitingAny covers type-agnostic pods).
	waitingAny   bool
	waitingTypes map[string]struct{}

	stats SchedStats
}

// observe folds one store event into the view.
func (s *schedCore) observe(ev WatchEvent) {
	s.stats.EventsSeen++
	if ev.Rev > s.lastRev {
		s.lastRev = ev.Rev
	}
	switch ev.Kind {
	case KindPod:
		s.observePod(ev)
	case KindNode:
		s.observeNode(ev)
	default:
		s.stats.EventsIgnored++
	}
}

func (s *schedCore) observePod(ev WatchEvent) {
	if ev.Type == WatchDeleted {
		prev, _ := ev.Prev.(*Pod)
		if prev == nil {
			s.stats.EventsIgnored++
			return
		}
		if cur, ok := s.pending[prev.Name]; ok && cur.UID == prev.UID {
			delete(s.pending, prev.Name)
		}
		s.release(prev.UID)
		return
	}
	p, _ := ev.Object.(*Pod)
	if p == nil {
		s.stats.EventsIgnored++
		return
	}
	switch {
	case p.Terminated():
		if cur, ok := s.pending[p.Name]; ok && cur.UID == p.UID {
			delete(s.pending, p.Name)
		}
		s.release(p.UID)
	case p.Status.Node == "":
		if _, ok := s.pending[p.Name]; !ok {
			s.newPending = true
		}
		s.pending[p.Name] = p
	default: // bound and live
		if cur, ok := s.pending[p.Name]; ok && cur.UID == p.UID {
			delete(s.pending, p.Name)
		}
		s.mirrorAssign(p)
	}
}

func (s *schedCore) observeNode(ev WatchEvent) {
	if ev.Type == WatchDeleted {
		s.state.RemoveNode(ev.Name)
		return
	}
	n, _ := ev.Object.(*Node)
	if n == nil {
		s.stats.EventsIgnored++
		return
	}
	sn := s.state.Node(n.Name)
	if sn == nil {
		// New machine: all capacity free. (A bound pod racing ahead of
		// the node's Add event is corrected by the next resync.)
		s.state.AddNode(&sched.Node{
			Name: n.Name, GPUType: n.GPUType, Capacity: n.Capacity,
			Free: n.Capacity, Unschedulable: !n.Schedulable(),
		})
		if n.Schedulable() {
			s.freed(n.GPUType)
		}
		return
	}
	schedulable := n.Schedulable()
	capChanged := sn.Capacity != n.Capacity
	if schedulable == !sn.Unschedulable && !capChanged {
		// Heartbeat-only update: nothing placement-relevant changed.
		// This is the filter that makes node churn free at scale.
		s.stats.EventsIgnored++
		return
	}
	if capChanged {
		delta := n.Capacity.Sub(sn.Capacity)
		s.state.SetCapacity(n.Name, n.Capacity)
		// Growth only frees usable capacity if the node is (or is in
		// this same event becoming) schedulable.
		if schedulable && (delta.GPUs > 0 || delta.MilliCPU > 0 || delta.MemoryMB > 0) {
			s.freed(n.GPUType)
		}
	}
	if schedulable == sn.Unschedulable {
		s.state.SetSchedulable(n.Name, schedulable)
		if schedulable {
			s.freed(n.GPUType)
		}
	}
}

// mirrorAssign charges a bound pod to the view (no-op when the view
// already reflects it — our own bind, or a pre-resync'd binding).
func (s *schedCore) mirrorAssign(p *Pod) {
	if _, ok := s.assigned[p.UID]; ok {
		return
	}
	s.charge(p, p.Status.Node)
}

// charge records one binding in the view: consume the node's capacity
// and remember exactly what to release when this incarnation ends.
func (s *schedCore) charge(p *Pod, nodeName string) {
	gpuType := p.Spec.GPUType
	if sn := s.state.Node(nodeName); sn != nil {
		gpuType = sn.GPUType
	}
	s.state.Assign(nodeName, p.Spec.Demand)
	gang := p.Spec.GangSize > 0 && p.Spec.JobID != ""
	s.assigned[p.UID] = assignInfo{
		node: nodeName, gpuType: gpuType, demand: p.Spec.Demand,
		jobID: p.Spec.JobID, gang: gang,
	}
	if gang {
		s.boundByGang[p.Spec.JobID]++
	}
}

// release returns a bound incarnation's resources to the view and
// marks its GPU type freed. Idempotent.
func (s *schedCore) release(uid uint64) {
	info, ok := s.assigned[uid]
	if !ok {
		return
	}
	delete(s.assigned, uid)
	s.state.Release(info.node, info.demand)
	s.freed(info.gpuType)
	if info.gang {
		if s.boundByGang[info.jobID]--; s.boundByGang[info.jobID] <= 0 {
			delete(s.boundByGang, info.jobID)
		}
	}
}

func (s *schedCore) freed(gpuType string) {
	if s.freedTypes == nil {
		s.freedTypes = make(map[string]struct{})
	}
	s.freedTypes[gpuType] = struct{}{}
}

// maybePass runs a scheduling pass if the coalesced event batch could
// make one productive: a new pod arrived, or capacity was freed on a
// GPU type some waiting pod can use.
func (s *schedCore) maybePass() {
	trigger := s.newPending || (len(s.pending) > 0 && s.freedHelps())
	s.newPending = false
	s.freedTypes = nil
	if len(s.pending) == 0 {
		s.waitingAny, s.waitingTypes = false, nil
		return
	}
	if trigger {
		s.runPass()
	}
}

// freedHelps reports whether any freed GPU type matches what the
// waiting pods demand (a type-agnostic waiter matches anything).
func (s *schedCore) freedHelps() bool {
	if len(s.freedTypes) == 0 {
		return false
	}
	if s.waitingAny {
		return true
	}
	for t := range s.freedTypes {
		if _, ok := s.waitingTypes[t]; ok {
			return true
		}
	}
	return false
}

// runPass evaluates every pending pod against the live view.
func (s *schedCore) runPass() {
	s.stats.Passes++
	var passStart time.Time
	if s.c.obsPass != nil {
		passStart = s.c.cfg.Clock.Now()
	}
	pending := make([]*Pod, 0, len(s.pending))
	for _, p := range s.pending {
		pending = append(pending, p)
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i].Name < pending[j].Name })
	if s.c.cfg.GangPolicy != nil {
		s.scheduleGangs(pending)
	} else {
		s.schedulePodAtATime(pending)
	}
	s.waitingAny, s.waitingTypes = false, nil
	for _, p := range s.pending {
		if p.Spec.GPUType == "" {
			s.waitingAny = true
			continue
		}
		if s.waitingTypes == nil {
			s.waitingTypes = make(map[string]struct{})
		}
		s.waitingTypes[p.Spec.GPUType] = struct{}{}
	}
	examined := s.state.TakeExamined()
	s.stats.NodesExamined += examined
	if s.c.obsPass != nil {
		s.c.obsPass.ObserveDuration(s.c.cfg.Clock.Now().Sub(passStart))
		s.c.obsPassNodes.Observe(float64(examined))
	}
}

// resyncTick is the conditional safety net: it rebuilds the view only
// when the watcher actually dropped events; otherwise it audits the
// incremental view's currency by revision and does no per-node work.
func (s *schedCore) resyncTick() {
	// Fold whatever is already queued first, so drops are judged against
	// a drained channel and the audit compares like with like.
	sim.Coalesce(s.watch.Events(), s.observe)
	if s.watch.Dropped() > 0 {
		s.resync()
		return
	}
	s.stats.ResyncsSkipped++
	// Audit: with zero drops the view is exactly the fold of delivered
	// events. A store revision ahead of the cursor only means events are
	// still in flight — they will arrive; nothing was lost.
	if s.c.store.Revision() == s.lastRev {
		s.stats.AuditsClean++
	}
	// The drain above may have consumed wake-worthy events (a select
	// race can route them to the tick instead of the event case), so
	// the skip path must still evaluate them — skipping the rebuild
	// must never skip scheduling.
	s.maybePass()
}

// resync rebuilds the whole view from a store listing — the safety net
// against watch events dropped under backpressure — and runs a full
// pass if anything is pending.
func (s *schedCore) resync() {
	s.stats.FullScans++
	// Harvest-and-clear the dropped counter before listing: the rebuild
	// subsumes those gaps, while a drop landing mid-rebuild stays
	// counted for the next tick.
	s.stats.EventsDropped += s.watch.TakeDropped()
	c := s.c
	// Conservative currency cursor: the listing below reflects at least
	// every mutation up to this revision.
	s.lastRev = c.store.Revision()
	state := sched.NewClusterState(nil)
	for _, n := range c.store.ListNodes() {
		state.AddNode(&sched.Node{
			Name: n.Name, GPUType: n.GPUType, Capacity: n.Capacity,
			Free: n.Capacity, Unschedulable: !n.Schedulable(),
		})
	}
	s.state = state
	s.pending = make(map[string]*Pod)
	s.assigned = make(map[uint64]assignInfo)
	s.boundByGang = make(map[string]int)
	s.newPending = false
	s.freedTypes = nil
	for _, p := range c.store.ListPods("") {
		switch {
		case p.Terminated():
		case p.Status.Node == "":
			if p.Status.Phase == PodPending {
				s.pending[p.Name] = p
			}
		default:
			s.mirrorAssign(p)
		}
	}
	state.TakeExamined() // rebuild accounting is FullScans, not examined
	if len(s.pending) > 0 {
		s.runPass()
	} else {
		s.waitingAny, s.waitingTypes = false, nil
	}
}

// schedulePodAtATime is the stock behaviour: bind each pod greedily, in
// the nondeterministic order the paper blames for partial gang
// placements ("the order in which learner pods are queued by K8S for
// scheduling is non deterministic", §5.3).
func (s *schedCore) schedulePodAtATime(pending []*Pod) {
	c := s.c
	_, isSpread := c.cfg.PodPolicy.(sched.Spread)
	c.cfg.RNG.Shuffle(len(pending), func(i, j int) { pending[i], pending[j] = pending[j], pending[i] })
	for _, p := range pending {
		if isSpread {
			// Spread cannot use the capacity index's pruning (see its
			// godoc); account its full-candidate scans explicitly.
			s.stats.SpreadFullScans++
		}
		spec := toSchedPod(p)
		nodeName, fail := c.cfg.PodPolicy.PlacePod(spec, s.state)
		if fail != nil {
			c.recordEvent(EventWarning, "FailedScheduling", KindPod, p.Name, p.Spec.Type,
				fmt.Sprintf("%s: %s", fail.Reason, fail.Message))
			continue
		}
		s.bind(p, nodeName)
	}
}

// scheduleGangs groups gang pods by JobID and binds complete gangs
// atomically; non-gang pods still bind one at a time.
func (s *schedCore) scheduleGangs(pending []*Pod) {
	c := s.c
	gangs := make(map[string][]*Pod)
	var loose []*Pod
	for _, p := range pending {
		if p.Spec.GangSize > 0 && p.Spec.JobID != "" {
			gangs[p.Spec.JobID] = append(gangs[p.Spec.JobID], p)
		} else {
			loose = append(loose, p)
		}
	}
	// Deterministic order: by job id. (FCFS arrival ordering is enforced
	// by the FfDL dispatcher above this layer; within one pass order
	// only affects which gang grabs contended space first.)
	jobIDs := make([]string, 0, len(gangs))
	for id := range gangs {
		jobIDs = append(jobIDs, id)
	}
	sort.Strings(jobIDs)
	for _, id := range jobIDs {
		members := gangs[id]
		gangSize := members[0].Spec.GangSize
		if len(members)+s.boundByGang[id] < gangSize {
			// Gang incomplete: pods still being instantiated; hold the
			// assignment (the paper's "reservation" corner case) by not
			// binding anyone yet.
			continue
		}
		g := &sched.Gang{JobID: id}
		for _, p := range members {
			g.Pods = append(g.Pods, *toSchedPod(p))
		}
		as, fail := c.cfg.GangPolicy.PlaceGang(g, s.state)
		if fail != nil {
			c.recordEvent(EventWarning, "FailedScheduling", KindPod, members[0].Name,
				members[0].Spec.Type, fmt.Sprintf("%s: %s", fail.Reason, fail.Message))
			continue
		}
		for i, a := range as {
			s.bind(members[i], a.Node)
		}
	}
	s.schedulePodAtATime(loose)
}

// bind commits one placement: store first (guarded by UID so a pod
// killed mid-pass is never charged), then the live view.
func (s *schedCore) bind(p *Pod, nodeName string) {
	if !s.c.bindPod(p.Name, p.UID, nodeName) {
		// Pod vanished or terminated mid-pass; the event stream (or
		// resync) reconciles whatever replaced it.
		delete(s.pending, p.Name)
		return
	}
	delete(s.pending, p.Name)
	s.charge(p, nodeName)
	s.stats.PodsBound++
	if s.c.cfg.Tracer != nil && p.Spec.JobID != "" {
		s.c.cfg.Tracer.Event(p.Spec.JobID, "sched.bind "+p.Name, s.c.cfg.Clock.Now())
	}
}

func toSchedPod(p *Pod) *sched.PodSpec {
	return &sched.PodSpec{
		Name:    p.Name,
		JobID:   p.Spec.JobID,
		Demand:  p.Spec.Demand,
		GPUType: p.Spec.GPUType,
	}
}
