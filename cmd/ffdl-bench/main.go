// Command ffdl-bench regenerates every table and figure from the
// paper's evaluation (§5).
//
// Usage:
//
//	ffdl-bench -all
//	ffdl-bench -table 1            # Table 1 only
//	ffdl-bench -fig 4 -runs 20     # Figure 4 with 20 runs per config
//	ffdl-bench -fig 3 -days 60     # Figure 3 over a 60-day trace
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/ffdl/ffdl/internal/expt"
	"github.com/ffdl/ffdl/internal/trace"
)

func main() {
	var (
		all    = flag.Bool("all", false, "regenerate every table and figure")
		table  = flag.Int("table", 0, "regenerate one table (1-8)")
		fig    = flag.Int("fig", 0, "regenerate one figure (3-8)")
		days   = flag.Int("days", 30, "trace length for Figure 3 / failure analyses")
		runs   = flag.Int("runs", 20, "runs per configuration for Figure 4")
		trials = flag.Int("trials", 5, "crash trials per component for Table 3")
		seed   = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	if !*all && *table == 0 && *fig == 0 {
		flag.Usage()
		os.Exit(2)
	}

	emit := func(t *expt.Table, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "ffdl-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(t.String())
	}
	want := func(kind string, n int) bool {
		if *all {
			return true
		}
		if kind == "table" {
			return *table == n
		}
		return *fig == n
	}

	if want("table", 1) {
		emit(expt.Table1Render(), nil)
	}
	if want("table", 2) {
		emit(expt.Table2Render(), nil)
	}
	if want("table", 3) {
		t, err := expt.Table3Render(*trials)
		emit(t, err)
	}
	if want("table", 4) {
		emit(expt.Table4Render(), nil)
	}
	if want("table", 5) {
		emit(expt.Table5Render(), nil)
	}
	if want("table", 6) {
		emit(expt.Table6Render(), nil)
	}
	if want("table", 7) {
		emit(expt.Table7Render(), nil)
	}
	if want("table", 8) {
		emit(expt.Table8Render(*days, *seed), nil)
	}
	if want("fig", 3) {
		emit(expt.Figure3Render(trace.Config{Days: *days, Seed: *seed}), nil)
	}
	if want("fig", 4) {
		emit(expt.Figure4Render(*runs, *seed), nil)
	}
	if want("fig", 5) {
		emit(expt.Figure5Render(), nil)
	}
	if want("fig", 6) {
		emit(expt.Figure6Render(*days, *seed), nil)
	}
	if want("fig", 7) {
		emit(expt.Figure7Render(30, *seed), nil)
	}
	if want("fig", 8) {
		emit(expt.Figure8Render(150, *seed), nil)
	}
}
