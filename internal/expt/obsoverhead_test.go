package expt

import "testing"

// TestObsOverheadGateShape runs the observability-overhead gate at
// reduced scale and pins its result shape: every requested pair runs
// both arms, the median ratio is a real number, and the instrumented
// arm's final snapshot actually recorded hot-path observations — the
// comparison would be vacuous otherwise. The 5%-budget verdict itself
// is pinned by `make obs-smoke` / `ffdl-bench -obs-overhead` at CI
// scale; an in-test throughput threshold would flake on a loaded
// machine.
func TestObsOverheadGateShape(t *testing.T) {
	if testing.Short() {
		t.Skip("boots full platforms repeatedly")
	}
	cfg := ObsOverheadConfig{Submitters: 8, Jobs: 16, Pairs: 2, Seed: 11}
	res, err := ObsOverhead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 2 {
		t.Fatalf("ran %d pairs, want 2", len(res.Pairs))
	}
	for i, p := range res.Pairs {
		if p.InstrumentedPerSec <= 0 || p.AblationPerSec <= 0 || p.Ratio <= 0 {
			t.Fatalf("pair %d has zero rates: %+v", i, p)
		}
	}
	if res.MedianRatio <= 0 {
		t.Fatalf("median ratio %v", res.MedianRatio)
	}
	if res.TolerancePct != 5 {
		t.Fatalf("default tolerance %v, want 5", res.TolerancePct)
	}
	if res.HistogramObservations == 0 {
		t.Fatal("instrumented arm recorded no histogram observations — the gate compares nothing")
	}
	if res.CounterNames == 0 {
		t.Fatal("instrumented arm snapshot has no counters")
	}
	// Rendering must not panic and must carry the verdict.
	tbl := RenderObsOverhead(res)
	if tbl == nil || len(tbl.Rows) != len(res.Pairs) || tbl.Caption == "" {
		t.Fatalf("render: %+v", tbl)
	}
}
