package core

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/ffdl/ffdl/internal/commitlog"
)

// LogLine is one collected learner log line. Offset is its position in
// the job's log — assigned by the Training Metrics Service at ingest,
// strictly increasing per job — and doubles as the resume token for
// followers: a client that reconnects (or outlives an API replica
// restart) asks for lines from its last offset + 1 and misses nothing.
type LogLine struct {
	JobID   string
	Learner int
	Offset  uint64
	Time    time.Time
	Text    string
}

// MetricsService is the Training Metrics Service (§3.2): it collects
// per-job training logs (streamed by the log-collector helpers) into a
// searchable index — the role ElasticSearch/Kibana plays in the paper's
// deployment — and counts platform health metrics ("number of times
// microservices fail and recover, and frequency of connectivity
// issues"). Each job's log rides the platform's commit log
// (internal/commitlog), which is what makes log streams offset-
// addressable and resumable rather than count-deduplicated.
type MetricsService struct {
	mu       sync.Mutex
	logs     map[string]*commitlog.Log // jobID -> line log
	counters map[string]int64
	subs     map[string][]chan LogLine
	// dataDir/storeWrap are injected by NewPlatform when Config.DataDir
	// is set: each job's log then lives in its own FileStore directory
	// (<DataDir>/learner-logs/<jobID>), lines are encoded into record
	// payloads, and a reopened service lazily reopens existing dirs —
	// so offsets and consumer cursors survive a process restart.
	dataDir   string
	storeWrap StoreWrapper
}

// NewMetricsService returns an empty service.
func NewMetricsService() *MetricsService {
	return &MetricsService{
		logs:     make(map[string]*commitlog.Log),
		counters: make(map[string]int64),
		subs:     make(map[string][]chan LogLine),
	}
}

// jobLogLocked returns (opening if needed) a job's line log. The error
// path is real only in durable mode (a FileStore that cannot recover);
// MemStore opens cannot fail.
func (m *MetricsService) jobLogLocked(jobID string) (*commitlog.Log, error) {
	if l, ok := m.logs[jobID]; ok {
		return l, nil
	}
	store, err := openLogStore(m.dataDir, dirLearnerLogs+"/"+jobID, m.storeWrap)
	if err != nil {
		return nil, err
	}
	l, err := commitlog.Open(store, commitlog.Options{SegmentRecords: 1024})
	if err != nil {
		return nil, fmt.Errorf("core: open job log %s: %w", jobID, err)
	}
	m.logs[jobID] = l
	return l, nil
}

// jobLogForReadLocked resolves a job's log for a read path: an already
// open log, or a lazy reopen when the job's directory exists on disk
// (a recovered platform serving pre-restart logs). Unknown jobs return
// nil without littering DataDir with empty directories.
func (m *MetricsService) jobLogForReadLocked(jobID string) *commitlog.Log {
	if l, ok := m.logs[jobID]; ok {
		return l
	}
	if !hasLogDir(m.dataDir, dirLearnerLogs+"/"+jobID) {
		return nil
	}
	l, err := m.jobLogLocked(jobID)
	if err != nil {
		return nil
	}
	return l
}

// AppendLog ingests one log line, assigns its offset, and fans it out
// to streamers.
func (m *MetricsService) AppendLog(line LogLine) {
	m.mu.Lock()
	l, err := m.jobLogLocked(line.JobID)
	if err != nil {
		m.counters["metrics.log_open_errors"]++
		m.mu.Unlock()
		return
	}
	// Mint the offset up front so the stored value carries it (m.mu
	// serializes appends per service, so NextOffset is exact).
	line.Offset = l.NextOffset()
	if m.dataDir != "" {
		_, err = l.Append("", encodeLogLine(nil, line))
	} else {
		_, err = l.AppendValue("", line)
	}
	if err != nil {
		m.mu.Unlock()
		return // never half-publish
	}
	subs := m.subs[line.JobID]
	m.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- line:
		default:
		}
	}
}

// CommitLogCursor durably records a consumer's cursor on a job's log:
// next is the offset of the first line the consumer has not yet
// processed. The cursor rides the commit log's consumer-offset map, so
// on a DataDir platform it survives a full process restart (LogCursor
// recovers it) and pins retention — unconsumed lines are never trimmed
// out from under a registered consumer.
func (m *MetricsService) CommitLogCursor(jobID, consumer string, next uint64) error {
	m.mu.Lock()
	l, err := m.jobLogLocked(jobID)
	m.mu.Unlock()
	if err != nil {
		return err
	}
	return l.Commit(consumer, next)
}

// LogCursor returns a consumer's recorded cursor on a job's log
// (ok=false when the consumer or job is unknown).
func (m *MetricsService) LogCursor(jobID, consumer string) (uint64, bool) {
	m.mu.Lock()
	l := m.jobLogForReadLocked(jobID)
	m.mu.Unlock()
	if l == nil {
		return 0, false
	}
	return l.Committed(consumer)
}

// linesFrom decodes a job's retained lines with Offset >= from.
func (m *MetricsService) linesFrom(jobID string, from uint64) []LogLine {
	m.mu.Lock()
	l := m.jobLogForReadLocked(jobID)
	m.mu.Unlock()
	if l == nil {
		return nil
	}
	recs := l.Records(from)
	out := make([]LogLine, 0, len(recs))
	for _, rec := range recs {
		if line, isLine := logLineRec(rec); isLine {
			out = append(out, line)
		}
	}
	return out
}

// logLineRec extracts the LogLine a log record carries: the in-memory
// Value on the MemStore path, decoded from the durable payload
// otherwise (records recovered from a reopened store carry no Value).
func logLineRec(rec commitlog.Record) (LogLine, bool) {
	if line, ok := rec.Value.(LogLine); ok {
		return line, true
	}
	if len(rec.Payload) == 0 {
		return LogLine{}, false
	}
	line, err := decodeLogLine(rec.Payload)
	return line, err == nil
}

// Logs returns all lines for a job (copy).
func (m *MetricsService) Logs(jobID string) []LogLine {
	return m.linesFrom(jobID, 0)
}

// LogsFrom returns a job's lines with Offset >= from — the resumable
// read path under API.Logs.
func (m *MetricsService) LogsFrom(jobID string, from uint64) []LogLine {
	return m.linesFrom(jobID, from)
}

// SearchLogs returns a job's lines containing the substring — the
// "indexed ... for easy debugging" query path.
func (m *MetricsService) SearchLogs(jobID, substr string) []LogLine {
	all := m.linesFrom(jobID, 0)
	var out []LogLine
	for _, l := range all {
		if strings.Contains(l.Text, substr) {
			out = append(out, l)
		}
	}
	return out
}

// StreamLogs subscribes to a job's live log stream.
func (m *MetricsService) StreamLogs(jobID string) (<-chan LogLine, func()) {
	ch := make(chan LogLine, 256)
	m.mu.Lock()
	m.subs[jobID] = append(m.subs[jobID], ch)
	m.mu.Unlock()
	return ch, func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		subs := m.subs[jobID]
		for i, c := range subs {
			if c == ch {
				m.subs[jobID] = append(subs[:i], subs[i+1:]...)
				close(ch)
				return
			}
		}
	}
}

// Inc bumps a named counter ("api.restarts", "guardian.rollbacks", ...).
func (m *MetricsService) Inc(counter string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.counters[counter]++
}

// Counter reads a named counter.
func (m *MetricsService) Counter(counter string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[counter]
}

// Counters returns a snapshot of all counters.
func (m *MetricsService) Counters() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.counters))
	for k, v := range m.counters {
		out[k] = v
	}
	return out
}
