// Package ffdl is the public API of the FfDL reproduction: a flexible
// multi-tenant deep learning platform (Jayaram et al., MIDDLEWARE '19)
// rebuilt as an in-process Go system over simulated substrates
// (Kubernetes-like orchestration, Raft-replicated etcd, a document
// store, object storage with an s3fs-style caching mount, and NFS
// volumes).
//
// Quickstart:
//
//	p, err := ffdl.New(ffdl.Config{})
//	if err != nil { ... }
//	defer p.Stop()
//	p.AddNodes("k80", ffdl.K80, 2, 4) // 2 nodes x 4 K80 GPUs
//	p.SeedDataset("datasets", "mnist/", 8<<20)
//
//	client := p.Client()
//	jobID, err := client.Submit(ctx, ffdl.Manifest{
//	    Name: "train-vgg", User: "alice",
//	    Framework: ffdl.Caffe, Model: ffdl.VGG16,
//	    Learners: 2, GPUsPerLearner: 1, GPUType: ffdl.K80,
//	    Iterations: 1000, CheckpointEvery: 100,
//	    DataBucket: "datasets", DataPrefix: "mnist/",
//	})
//	status, err := client.WaitForStatus(ctx, jobID, ffdl.StatusCompleted, 10*time.Millisecond)
//
// To observe every status transition rather than wait for one, stream
// them (Client.WaitForStatus itself rides this stream):
//
//	ch, cancel, err := client.WatchStatus(ctx, jobID)
//	if err != nil { ... }
//	defer cancel()
//	for e := range ch { // PENDING, DEPLOYING, DOWNLOADING, ... in order
//	    fmt.Println(e.Time, e.Status, e.Message)
//	}
//
// # Event-driven control plane
//
// The control plane is reactive, mirroring the production system's
// etcd-watch architecture (§3.3, §3.8): components record state and
// other components watch it, so reaction latency is bounded by event
// propagation, not by any poll interval, and an idle platform goes
// quiescent. Ticker loops remain only as slow resync safety nets. The
// watch chain end to end:
//
//   - learners write status/exit files to the job's shared NFS volume;
//     the helper's controller container wakes on volume writes and
//     mirrors them into etcd;
//   - the per-job Guardian subscribes to the job's etcd prefix
//     (learner statuses, control verbs, the done key) and aggregates
//     into MongoDB on every write;
//   - every MongoDB status transition is published on an in-process
//     status bus that wakes the LCM recovery loop and feeds the API's
//     streaming watch;
//   - the kube-like scheduler, controllers and kubelet host loops wake
//     on API-server watch events (pod added, capacity freed, owner
//     changed);
//   - Client.WatchStatus streams the transitions to users, resuming by
//     history sequence number across API replica crashes so every
//     transition is delivered exactly once, in order.
//
// The etcd watch primitive underneath (internal/etcd.Cluster.Watch)
// survives leader failover by revision-based resume, and bounds all
// buffers: a watcher that falls too far behind receives an explicit
// resync (current state) rather than a silent gap, so consumers can
// miss events safely.
//
// # Multi-tenancy
//
// With Config.Tenancy set, admission control is a queue, not a gate
// (§3.6): every user has a registry record (tier + GPU quota, managed
// via Client.SetQuota / Client.Tenants), submissions are persisted as
// QUEUED, and an event-driven dispatcher admits them in FCFS order —
// over-quota work opportunistically when entitlements are idle. A
// starved in-quota job preempts: free-tier and over-quota victims are
// checkpointed and halted through the normal HALT path, requeued at
// the head, and resumed from their checkpoints when capacity frees.
// Client.Status reports QUEUED jobs' queue position;
// ffdl-bench -tenant measures queue delays and preemptions under a
// mixed free/paid workload.
//
// # Durability
//
// With Config.DataDir set (ffdl-server -data-dir), the metadata oplog,
// the status-bus replay window and per-job learner logs live in
// file-backed commit logs under that directory, so watch resume
// tokens, WatchStatus replay and FollowLogsFrom offsets survive a
// full process restart: stop the platform, boot a new one with the
// same DataDir, and clients resume where they left off. Empty means
// in-memory (tests, benchmarks). See docs/architecture.md
// ("Durability") for the layout and recovery contract.
//
// The package re-exports the platform's user-facing types from
// internal/core and the performance-model vocabulary from internal/perf;
// everything else (scheduling policies, substrates, experiment
// harnesses) lives under internal/ and is exercised through this surface
// or cmd/ffdl-bench.
package ffdl

import (
	"fmt"

	"github.com/ffdl/ffdl/internal/core"
	"github.com/ffdl/ffdl/internal/perf"
	"github.com/ffdl/ffdl/internal/sched"
	"github.com/ffdl/ffdl/internal/tenant"
)

// Re-exported user-facing types.
type (
	// Manifest describes a training job (§3.1's "natural language" job
	// description: code, data location, learners, resources).
	Manifest = core.Manifest
	// Client is the load-balanced API client (what the CLI wraps).
	Client = core.Client
	// JobStatus is the DL-specific job state.
	JobStatus = core.JobStatus
	// StatusEntry is one timestamped history record (also the element
	// type streamed by Client.WatchStatus).
	StatusEntry = core.StatusEntry
	// JobRecord is a stored job with manifest, status and history.
	JobRecord = core.JobRecord
	// LogLine is one collected learner log line.
	LogLine = core.LogLine
	// Config configures the platform; the zero value is production-like
	// (gang scheduling + pack placement, 2 API / 2 LCM / 3 etcd
	// replicas).
	Config = core.Config
	// TenancyConfig enables the multi-tenant subsystem: queued
	// admission, fair-share dispatch and checkpoint-preemption (§3.6).
	// Set it on Config.Tenancy.
	TenancyConfig = core.TenancyConfig
	// Tenant is one user's registry record: tier plus GPU quota.
	Tenant = tenant.Record
)

// Job statuses.
const (
	StatusQueued      = core.StatusQueued
	StatusPending     = core.StatusPending
	StatusDeploying   = core.StatusDeploying
	StatusDownloading = core.StatusDownloading
	StatusProcessing  = core.StatusProcessing
	StatusStoring     = core.StatusStoring
	StatusCompleted   = core.StatusCompleted
	StatusFailed      = core.StatusFailed
	StatusHalted      = core.StatusHalted
	StatusResumed     = core.StatusResumed
	StatusCanceled    = core.StatusCanceled
)

// GPU types.
const (
	K80  = perf.K80
	P100 = perf.P100
	V100 = perf.V100
)

// Tenant tiers (free-tier jobs are preemptible; paid in-quota jobs can
// preempt).
const (
	TierFree = sched.TierFree
	TierPaid = sched.TierPaid
)

// TierName and ParseTier convert tenant tiers to and from their API
// names ("free", "paid").
var (
	TierName  = tenant.TierName
	ParseTier = tenant.ParseTier
)

// ErrDegraded is the retryable error submissions receive while the
// platform is in read-only degraded mode (metadata-store breaker open).
// Test with IsDegraded, which also matches the error after it has
// crossed the RPC boundary as message text; HTTP gateways map it to
// 503 + Retry-After.
var ErrDegraded = core.ErrDegraded

// IsDegraded reports whether err means "platform degraded, retry later".
func IsDegraded(err error) bool { return core.IsDegraded(err) }

// Frameworks.
const (
	Caffe      = perf.Caffe
	TensorFlow = perf.TensorFlow
)

// Benchmark models.
const (
	VGG16       = perf.VGG16
	ResNet50    = perf.ResNet50
	InceptionV3 = perf.InceptionV3
)

// Platform is a running FfDL instance. It wraps the core platform with
// convenience helpers; the embedded *core.Platform exposes the
// substrates (Kube, Etcd, Mongo, Store, NFS, Metrics) for advanced use
// and fault injection.
type Platform struct {
	*core.Platform
}

// New boots a platform with no worker nodes; add capacity with
// AddNodes.
func New(cfg Config) (*Platform, error) {
	p, err := core.NewPlatform(cfg)
	if err != nil {
		return nil, err
	}
	return &Platform{Platform: p}, nil
}

// AddNodes adds n identical worker machines named "<prefix>-<i>", each
// with the given GPUs and the matching t-shirt CPU/memory provisioning.
func (p *Platform) AddNodes(prefix string, gpuType perf.GPUType, n, gpusPerNode int) {
	size := perf.RecommendSize(1, gpuType)
	for i := 0; i < n; i++ {
		p.AddNode(fmt.Sprintf("%s-%d", prefix, i), string(gpuType), gpusPerNode,
			size.CPU*gpusPerNode+8, int64(size.MemoryGB*gpusPerNode+32)*1024)
	}
}

// SeedDataset creates a bucket holding one synthetic dataset shard of
// the given size under prefix, ready to reference from a Manifest.
func (p *Platform) SeedDataset(bucket, prefix string, bytes int) error {
	p.Store.EnsureBucket(bucket)
	return p.Store.Put(bucket, prefix+"shard-0000", make([]byte, bytes))
}

// GPUUtilization returns (allocated, capacity) GPUs.
func (p *Platform) GPUUtilization() (allocated, capacity int) {
	return p.Kube.GPUUtilization()
}

// Resources constructs a resource vector (exported for custom node
// shapes).
func Resources(milliCPU, memMB int64, gpus int) sched.Resources {
	return sched.Resources{MilliCPU: milliCPU, MemoryMB: memMB, GPUs: gpus}
}
