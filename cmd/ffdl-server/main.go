// Command ffdl-server boots a complete in-process FfDL platform (etcd
// cluster, metadata store, object storage, kube-like orchestrator, API
// and LCM replicas) plus a synthetic GPU cluster, and serves the
// training API over REST — the shape a self-hosted deployment of the
// paper's system exposes.
//
//	ffdl-server -listen :8080 -k80 4 -v100 2
//
// Endpoints:
//
//	POST /v1/jobs                submit a job (JSON manifest)
//	GET  /v1/jobs                list jobs (?user=)
//	GET  /v1/jobs/{id}           job status + history
//	GET  /v1/jobs/{id}/watch     stream status transitions (NDJSON, ends at terminal)
//	GET  /v1/jobs/{id}/logs      collected logs (?search=)
//	POST /v1/jobs/{id}/halt      HALT (checkpoint + release GPUs)
//	POST /v1/jobs/{id}/resume    RESUME from latest checkpoint
//	POST /v1/jobs/{id}/terminate cancel
//	GET  /v1/cluster             GPU utilization
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"github.com/ffdl/ffdl"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:8080", "HTTP listen address")
		k80     = flag.Int("k80", 4, "number of 4-GPU K80 nodes")
		p100    = flag.Int("p100", 0, "number of 4-GPU P100 nodes")
		v100    = flag.Int("v100", 0, "number of 4-GPU V100 nodes")
		speedup = flag.Float64("time-compression", 1e-3, "modeled-seconds to real-seconds factor for training")
	)
	flag.Parse()

	p, err := ffdl.New(ffdl.Config{TimeCompression: *speedup})
	if err != nil {
		log.Fatalf("ffdl-server: %v", err)
	}
	defer p.Stop()
	if *k80 > 0 {
		p.AddNodes("k80", ffdl.K80, *k80, 4)
	}
	if *p100 > 0 {
		p.AddNodes("p100", ffdl.P100, *p100, 4)
	}
	if *v100 > 0 {
		p.AddNodes("v100", ffdl.V100, *v100, 4)
	}
	if err := p.SeedDataset("datasets", "demo/", 8<<20); err != nil {
		log.Fatalf("ffdl-server: seed dataset: %v", err)
	}
	client := p.Client()

	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, code int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(v) //nolint:errcheck
	}
	fail := func(w http.ResponseWriter, code int, err error) {
		writeJSON(w, code, map[string]string{"error": err.Error()})
	}

	mux.HandleFunc("/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), 10*time.Second)
		defer cancel()
		switch r.Method {
		case http.MethodPost:
			var m ffdl.Manifest
			if err := json.NewDecoder(r.Body).Decode(&m); err != nil {
				fail(w, http.StatusBadRequest, err)
				return
			}
			id, err := client.Submit(ctx, m)
			if err != nil {
				fail(w, http.StatusUnprocessableEntity, err)
				return
			}
			writeJSON(w, http.StatusCreated, map[string]string{"jobId": id})
		case http.MethodGet:
			jobs, err := client.List(ctx, r.URL.Query().Get("user"))
			if err != nil {
				fail(w, http.StatusInternalServerError, err)
				return
			}
			writeJSON(w, http.StatusOK, jobs)
		default:
			w.WriteHeader(http.StatusMethodNotAllowed)
		}
	})

	mux.HandleFunc("/v1/jobs/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
		parts := strings.SplitN(rest, "/", 2)
		jobID := parts[0]
		action := ""
		if len(parts) == 2 {
			action = parts[1]
		}
		if action == "watch" && r.Method == http.MethodGet {
			// Event-driven follow: transitions are pushed as they
			// happen (no poll loop); the stream ends when the job
			// reaches a terminal status or the client disconnects.
			ch, cancel, err := client.WatchStatus(r.Context(), jobID)
			if err != nil {
				fail(w, http.StatusNotFound, err)
				return
			}
			defer cancel()
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			flusher, _ := w.(http.Flusher)
			enc := json.NewEncoder(w)
			for e := range ch {
				if err := enc.Encode(e); err != nil {
					return
				}
				if flusher != nil {
					flusher.Flush()
				}
			}
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), 10*time.Second)
		defer cancel()
		switch {
		case action == "" && r.Method == http.MethodGet:
			reply, err := client.Status(ctx, jobID)
			if err != nil {
				fail(w, http.StatusNotFound, err)
				return
			}
			writeJSON(w, http.StatusOK, reply)
		case action == "logs" && r.Method == http.MethodGet:
			var lines []ffdl.LogLine
			var err error
			if q := r.URL.Query().Get("search"); q != "" {
				lines, err = client.SearchLogs(ctx, jobID, q)
			} else {
				lines, err = client.Logs(ctx, jobID)
			}
			if err != nil {
				fail(w, http.StatusInternalServerError, err)
				return
			}
			writeJSON(w, http.StatusOK, lines)
		case r.Method == http.MethodPost:
			var err error
			switch action {
			case "halt":
				err = client.Halt(ctx, jobID)
			case "resume":
				err = client.Resume(ctx, jobID)
			case "terminate":
				err = client.Terminate(ctx, jobID)
			default:
				w.WriteHeader(http.StatusNotFound)
				return
			}
			if err != nil {
				fail(w, http.StatusConflict, err)
				return
			}
			writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
		default:
			w.WriteHeader(http.StatusMethodNotAllowed)
		}
	})

	mux.HandleFunc("/v1/cluster", func(w http.ResponseWriter, r *http.Request) {
		alloc, capacity := p.GPUUtilization()
		writeJSON(w, http.StatusOK, map[string]int{"allocatedGPUs": alloc, "capacityGPUs": capacity})
	})

	fmt.Printf("ffdl-server listening on http://%s (GPUs: %d K80-node, %d P100-node, %d V100-node; dataset bucket \"datasets\" prefix \"demo/\")\n",
		*listen, *k80, *p100, *v100)
	log.Fatal(http.ListenAndServe(*listen, mux))
}
