// Command ffdl-bench regenerates every table and figure from the
// paper's evaluation (§5), plus the repo's own scheduler scale
// experiment.
//
// Usage:
//
//	ffdl-bench -all
//	ffdl-bench -table 1            # Table 1 only
//	ffdl-bench -fig 4 -runs 20     # Figure 4 with 20 runs per config
//	ffdl-bench -fig 3 -days 60     # Figure 3 over a 60-day trace
//	ffdl-bench -sched-scale -sched-nodes 1000,5000 -json bench.json
//	ffdl-bench -watch-churn -churn-jobs 1000 -json bench-watch.json
//	ffdl-bench -tenant -json bench-tenant.json
//	ffdl-bench -throughput -tp-submitters 64 -json bench-throughput.json
//	ffdl-bench -commitlog -json bench-commitlog.json
//	ffdl-bench -recovery -rc-jobs 3 -json bench-recovery.json
//	ffdl-bench -obs-overhead -obs-submitters 16 -json bench-obs.json
//	ffdl-bench -chaos-soak -soak-jobs 3 -json bench-chaos.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/ffdl/ffdl/internal/expt"
	"github.com/ffdl/ffdl/internal/trace"
)

func main() {
	var (
		all        = flag.Bool("all", false, "regenerate every table and figure")
		table      = flag.Int("table", 0, "regenerate one table (1-8)")
		fig        = flag.Int("fig", 0, "regenerate one figure (3-8)")
		days       = flag.Int("days", 30, "trace length for Figure 3 / failure analyses")
		runs       = flag.Int("runs", 20, "runs per configuration for Figure 4")
		trials     = flag.Int("trials", 5, "crash trials per component for Table 3")
		seed       = flag.Int64("seed", 1, "random seed")
		schedScale = flag.Bool("sched-scale", false, "run the scheduler scale experiment")
		schedNodes = flag.String("sched-nodes", "1000,5000", "comma-separated cluster sizes for -sched-scale")
		schedGangs = flag.Int("sched-gangs", 0, "gangs per -sched-scale run (0 = size/2 of the smallest cluster)")
		watchChurn = flag.Bool("watch-churn", false, "run the watch-churn experiment (resyncs per snapshot restore, persisted log vs ablation)")
		churnJobs  = flag.Int("churn-jobs", 1000, "watched job prefixes for -watch-churn")
		churnCycle = flag.Int("churn-cycles", 3, "chaos cycles for -watch-churn")
		tenantExp  = flag.Bool("tenant", false, "run the multi-tenant experiment (queue delay + preemption, with vs without preemption)")
		tenantIter = flag.Int("tenant-iters", 0, "training iterations per job for -tenant (0 = default)")
		throughput = flag.Bool("throughput", false, "run the control-plane throughput experiment (batched vs unbatched-ablation etcd)")
		tpSubs     = flag.Int("tp-submitters", 0, "concurrent submitters for -throughput (0 = default 64)")
		tpJobs     = flag.Int("tp-jobs", 0, "total submissions for -throughput (0 = default 2x submitters)")
		clog       = flag.Bool("commitlog", false, "run the commit-log experiment (crash torture smoke + replay-vs-resync retention cost)")
		clCrash    = flag.Int("cl-crash", 0, "crash points for -commitlog's torture half (0 = default 40)")
		clEvents   = flag.Int("cl-events", 0, "published transitions for -commitlog's retention half (0 = default 4000)")
		recovery   = flag.Bool("recovery", false, "run the restart-the-world recovery experiment (FileStore DataDir vs the MemStore ablation)")
		rcJobs     = flag.Int("rc-jobs", 0, "jobs completed before the restart for -recovery (0 = default 3)")
		rcChurn    = flag.Int("rc-churn", 0, "floor-raising oplog churn for -recovery (0 = default 3000)")
		obsOver    = flag.Bool("obs-overhead", false, "run the observability-overhead gate (instrumented vs DisableObs ablation; nonzero exit when over budget)")
		obsSubs    = flag.Int("obs-submitters", 0, "concurrent submitters per arm for -obs-overhead (0 = default 16)")
		obsJobs    = flag.Int("obs-jobs", 0, "submissions per arm for -obs-overhead (0 = default 2x submitters)")
		obsPairs   = flag.Int("obs-pairs", 0, "interleaved instrumented/ablation pairs for -obs-overhead (0 = default 3)")
		obsTol     = flag.Float64("obs-tolerance", 0, "accepted throughput loss percent for -obs-overhead (0 = default 5)")
		chaosSoak  = flag.Bool("chaos-soak", false, "run the chaos soak (all fault injectors concurrent; nonzero exit on any invariant violation)")
		soakUsers  = flag.Int("soak-users", 0, "tenants for -chaos-soak (0 = default 3)")
		soakJobs   = flag.Int("soak-jobs", 0, "jobs per tenant for -chaos-soak (0 = default 3)")
		soakNodes  = flag.Int("soak-nodes", 0, "worker nodes for -chaos-soak (0 = default 4)")
		soakSLO    = flag.Float64("soak-slo", 0, "chaos/calm p99 SLO factor for -chaos-soak (0 = default 30)")
		soakV      = flag.Bool("soak-v", false, "stream -chaos-soak progress lines to stderr")
		jsonOut    = flag.String("json", "", "also write -sched-scale / -watch-churn / -tenant / -throughput / -commitlog / -recovery results as JSON to this file")
	)
	flag.Parse()

	// Experiments accumulate into one JSON payload so running several
	// with a shared -json path keeps every result.
	payload := map[string]any{}
	if *schedScale {
		payload["scheduler_scale"] = runSchedScale(*schedNodes, *schedGangs, *seed)
	}
	if *watchChurn {
		payload["watch_churn"] = runWatchChurn(*churnJobs, *churnCycle, *seed)
	}
	if *tenantExp {
		payload["multi_tenant"] = runTenant(*tenantIter, *seed)
	}
	if *throughput {
		payload["throughput"] = runThroughput(*tpSubs, *tpJobs, *seed)
	}
	if *clog {
		payload["commitlog"] = runCommitlog(*clCrash, *clEvents, *seed)
	}
	if *recovery {
		payload["recovery"] = runRecovery(*rcJobs, *rcChurn, *seed)
	}
	obsFailed := false
	if *obsOver {
		res := runObsOverhead(*obsSubs, *obsJobs, *obsPairs, *obsTol, *seed)
		payload["obs_overhead"] = res
		obsFailed = !res.WithinBudget
	}
	soakFailed := false
	if *chaosSoak {
		res := runChaosSoak(*soakUsers, *soakJobs, *soakNodes, *soakSLO, *seed, *soakV)
		payload["chaos_soak"] = res
		soakFailed = len(res.Violations) > 0
	}
	if len(payload) > 0 {
		writeJSON(*jsonOut, payload)
	}
	if obsFailed {
		fmt.Fprintln(os.Stderr, "ffdl-bench: obs-overhead gate FAILED: instrumented throughput over budget")
		os.Exit(1)
	}
	if soakFailed {
		fmt.Fprintln(os.Stderr, "ffdl-bench: chaos-soak gate FAILED: invariant violations under fault injection")
		os.Exit(1)
	}
	if !*all && *table == 0 && *fig == 0 {
		if len(payload) > 0 {
			return
		}
		flag.Usage()
		os.Exit(2)
	}

	emit := func(t *expt.Table, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "ffdl-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(t.String())
	}
	want := func(kind string, n int) bool {
		if *all {
			return true
		}
		if kind == "table" {
			return *table == n
		}
		return *fig == n
	}

	if want("table", 1) {
		emit(expt.Table1Render(), nil)
	}
	if want("table", 2) {
		emit(expt.Table2Render(), nil)
	}
	if want("table", 3) {
		t, err := expt.Table3Render(*trials)
		emit(t, err)
	}
	if want("table", 4) {
		emit(expt.Table4Render(), nil)
	}
	if want("table", 5) {
		emit(expt.Table5Render(), nil)
	}
	if want("table", 6) {
		emit(expt.Table6Render(), nil)
	}
	if want("table", 7) {
		emit(expt.Table7Render(), nil)
	}
	if want("table", 8) {
		emit(expt.Table8Render(*days, *seed), nil)
	}
	if want("fig", 3) {
		emit(expt.Figure3Render(trace.Config{Days: *days, Seed: *seed}), nil)
	}
	if want("fig", 4) {
		emit(expt.Figure4Render(*runs, *seed), nil)
	}
	if want("fig", 5) {
		emit(expt.Figure5Render(), nil)
	}
	if want("fig", 6) {
		emit(expt.Figure6Render(*days, *seed), nil)
	}
	if want("fig", 7) {
		emit(expt.Figure7Render(30, *seed), nil)
	}
	if want("fig", 8) {
		emit(expt.Figure8Render(150, *seed), nil)
	}
}

// runSchedScale runs the scheduler scale sweep, prints the table, and
// returns the raw results for the BENCH json artifact.
func runSchedScale(nodesCSV string, gangs int, seed int64) []expt.SchedScaleResult {
	var sizes []int
	for _, f := range strings.Split(nodesCSV, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "ffdl-bench: bad -sched-nodes entry %q\n", f)
			os.Exit(2)
		}
		sizes = append(sizes, n)
	}
	if len(sizes) == 0 {
		fmt.Fprintln(os.Stderr, "ffdl-bench: -sched-nodes is empty")
		os.Exit(2)
	}
	base := expt.SchedScaleConfig{Seed: seed, Gangs: gangs}
	if gangs <= 0 {
		// Hold the workload fixed across sizes — sized to the smallest
		// cluster — so the sweep isolates cluster-size scaling.
		smallest := sizes[0]
		for _, n := range sizes[1:] {
			smallest = min(smallest, n)
		}
		base.Gangs = smallest / 2
	}
	results := expt.SchedulerScaleSweep(sizes, base)
	fmt.Println(expt.RenderSchedScale(results).String())
	return results
}

// runWatchChurn runs the before/after watch-churn pair (persisted event
// log vs the ring-buffer-only ablation), prints the table, and returns
// the raw results for the BENCH json artifact.
func runWatchChurn(jobs, cycles int, seed int64) []expt.WatchChurnResult {
	with, without, err := expt.WatchChurnCompare(expt.WatchChurnConfig{
		Jobs: jobs, Cycles: cycles, Seed: seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ffdl-bench: watch-churn: %v\n", err)
		os.Exit(1)
	}
	results := []expt.WatchChurnResult{with, without}
	fmt.Println(expt.RenderWatchChurn(results).String())
	return results
}

// runTenant runs the multi-tenant pair (preemption vs the ablation),
// prints the table, and returns the raw results for the BENCH json
// artifact.
func runTenant(iters int, seed int64) []expt.MultiTenantResult {
	with, without, err := expt.MultiTenantCompare(expt.MultiTenantConfig{
		Iterations: iters, Seed: seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ffdl-bench: tenant: %v\n", err)
		os.Exit(1)
	}
	results := []expt.MultiTenantResult{with, without}
	fmt.Println(expt.RenderMultiTenant(results).String())
	return results
}

// runThroughput runs the three-arm control-plane throughput comparison
// (group commit + binary entry codec, the gob-codec ablation, and the
// seed's unbatched + gob arm), prints the table, and returns the raw
// results for the BENCH json artifact.
func runThroughput(submitters, jobs int, seed int64) []expt.ThroughputResult {
	results, err := expt.ThroughputArms(expt.ThroughputConfig{
		Submitters: submitters, Jobs: jobs, Seed: seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ffdl-bench: throughput: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(expt.RenderThroughput(results).String())
	return results
}

// runCommitlog runs the commit-log pair (crash torture smoke +
// replay-vs-resync retention cost), prints the table, and returns the
// raw results for the BENCH json artifact. Any torture violation is
// fatal: the event substrate's durability contract is broken.
func runCommitlog(crashPoints, events int, seed int64) expt.CommitlogResult {
	res, err := expt.CommitlogRun(expt.CommitlogConfig{
		TortureCrashPoints: crashPoints, Events: events, Seed: seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ffdl-bench: commitlog: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(expt.RenderCommitlog(res).String())
	if len(res.Torture.Violations) > 0 {
		for _, v := range res.Torture.Violations {
			fmt.Fprintf(os.Stderr, "ffdl-bench: commitlog torture violation: %s\n", v)
		}
		os.Exit(1)
	}
	return res
}

// runRecovery runs the restart-the-world recovery pair (FileStore
// DataDir vs the MemStore ablation), prints the table, and returns the
// raw result for the BENCH json artifact.
func runRecovery(jobs, churn int, seed int64) expt.RecoveryResult {
	res, err := expt.Recovery(expt.RecoveryConfig{Jobs: jobs, Churn: churn, Seed: seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ffdl-bench: recovery: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(expt.RenderRecovery(res).String())
	return res
}

// runObsOverhead runs the observability-overhead gate, prints the
// table, and returns the raw result for the BENCH json artifact. The
// caller exits nonzero when the gate fails (after the JSON artifact is
// written, so CI keeps the evidence).
func runObsOverhead(submitters, jobs, pairs int, tolerance float64, seed int64) expt.ObsOverheadResult {
	res, err := expt.ObsOverhead(expt.ObsOverheadConfig{
		Submitters: submitters, Jobs: jobs, Pairs: pairs,
		TolerancePct: tolerance, Seed: seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ffdl-bench: obs-overhead: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(expt.RenderObsOverhead(res).String())
	return res
}

// runChaosSoak runs the chaos soak (calm baseline arm + all-injector
// chaos arm), prints the table, and returns the raw result for the
// BENCH json artifact. The caller exits nonzero on violations — after
// the JSON artifact is written, so CI keeps the evidence.
func runChaosSoak(users, jobsPerUser, nodes int, sloFactor float64, seed int64, verbose bool) expt.ChaosSoakResult {
	cfg := expt.ChaosSoakConfig{
		Users: users, JobsPerUser: jobsPerUser, Nodes: nodes,
		SLOFactor: sloFactor, Seed: seed,
	}
	if verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "ffdl-bench: soak: "+format+"\n", args...)
		}
	}
	res, err := expt.ChaosSoak(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ffdl-bench: chaos-soak: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(expt.RenderChaosSoak(res).String())
	for _, v := range res.Violations {
		fmt.Fprintf(os.Stderr, "ffdl-bench: chaos-soak violation: %s\n", v)
	}
	return res
}

// writeJSON writes a result payload to jsonPath ("" = skip).
func writeJSON(jsonPath string, payload map[string]any) {
	if jsonPath == "" {
		return
	}
	buf, err := json.MarshalIndent(payload, "", "  ")
	if err == nil {
		err = os.WriteFile(jsonPath, append(buf, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ffdl-bench: write %s: %v\n", jsonPath, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", jsonPath)
}
