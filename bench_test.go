// Benchmark harness: one testing.B benchmark per table and figure in
// the paper's evaluation (§5), plus ablations of the design choices
// DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports the experiment's headline quantity through
// b.ReportMetric so `go test -bench` output is directly comparable with
// the paper (see EXPERIMENTS.md for the mapping).
package ffdl_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/ffdl/ffdl"
	"github.com/ffdl/ffdl/internal/expt"
	"github.com/ffdl/ffdl/internal/mongo"
	"github.com/ffdl/ffdl/internal/objstore"
	"github.com/ffdl/ffdl/internal/perf"
	"github.com/ffdl/ffdl/internal/sched"
	"github.com/ffdl/ffdl/internal/sim"
	"github.com/ffdl/ffdl/internal/trace"
)

// --- Tables ---

func BenchmarkTable1Overhead(b *testing.B) {
	var rows []expt.Table1Row
	for i := 0; i < b.N; i++ {
		rows = expt.Table1()
	}
	worst, sum := 0.0, 0.0
	for _, r := range rows {
		if r.Overhead > worst {
			worst = r.Overhead
		}
		sum += r.Overhead
	}
	b.ReportMetric(100*worst, "max-overhead-%")
	b.ReportMetric(100*sum/float64(len(rows)), "mean-overhead-%")
}

func BenchmarkTable2DGX(b *testing.B) {
	var rows []expt.Table2Row
	for i := 0; i < b.N; i++ {
		rows = expt.Table2()
	}
	worst := 0.0
	for _, r := range rows {
		if r.Gap > worst {
			worst = r.Gap
		}
	}
	b.ReportMetric(100*worst, "max-dgx-gap-%")
}

func BenchmarkTable3Recovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expt.Table3(3)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.Mean.Seconds(), r.Component+"-recovery-s")
		}
	}
}

func BenchmarkTable4CPUScaling(b *testing.B) {
	var rows []expt.Table4Row
	for i := 0; i < b.N; i++ {
		rows = expt.Table4()
	}
	b.ReportMetric(rows[len(rows)-1].V100Thpt, "v100-images/s")
}

func BenchmarkTable5Sizing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sizes := perf.StandardSizes()
		if len(sizes) != 7 {
			b.Fatal("catalog changed")
		}
	}
}

func BenchmarkTable6TFScaling(b *testing.B) {
	var rows []expt.Table6Row
	for i := 0; i < b.N; i++ {
		rows = expt.Table6()
	}
	b.ReportMetric(rows[len(rows)-1].Thpt, "vgg-v100-images/s")
}

func BenchmarkTable7Figure5ScaleTest(b *testing.B) {
	var rows []expt.Figure5Row
	for i := 0; i < b.N; i++ {
		rows = expt.Figure5()
	}
	for _, r := range rows {
		b.ReportMetric(r.DegradationPct(), r.Batch+"-degradation-%")
	}
}

func BenchmarkTable8FailureReasons(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fa := expt.SimulateFailures(10, int64(i+1))
		b.ReportMetric(fa.ReasonPct(expt.ReasonNoNodes), "no-nodes-%")
		b.ReportMetric(fa.ReasonPct(expt.ReasonBinding), "binding-rejected-%")
	}
}

// --- Figures ---

func BenchmarkFigure3SpreadPack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := expt.Figure3(trace.Config{Days: 10, Seed: int64(i + 1)})
		spread := expt.MeanQueuedPct(res.QueuedPctSpread)
		pack := expt.MeanQueuedPct(res.QueuedPctPack)
		b.ReportMetric(spread, "spread-queued-%")
		b.ReportMetric(pack, "pack-queued-%")
	}
}

func BenchmarkFigure4Gang(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := expt.Figure4(20, int64(i+1))
		maxIdle := 0.0
		for _, s := range res.Series {
			if !s.Gang && s.IdlePct.Max() > maxIdle {
				maxIdle = s.IdlePct.Max()
			}
		}
		b.ReportMetric(maxIdle, "max-idle-gpu-%-without-gang")
	}
}

func BenchmarkFigure6PodTypes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fa := expt.SimulateFailures(10, int64(i+1))
		b.ReportMetric(fa.PodTypePct("learner"), "learner-failure-share-%")
	}
}

func BenchmarkFigure7NodeFailureDeletions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := expt.SimulateNodeFailures(30, int64(i+1))
		maxPct := 0.0
		for _, v := range res.DailyPct {
			if v > maxPct {
				maxPct = v
			}
		}
		b.ReportMetric(maxPct, "max-daily-node-failure-deletion-%")
	}
}

func BenchmarkFigure8MonthlyLearnerDeletions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := expt.SimulateNodeFailures(150, int64(i+1))
		maxPct := 0.0
		for _, v := range res.MonthlyLearnerPct {
			if v > maxPct {
				maxPct = v
			}
		}
		b.ReportMetric(maxPct, "max-monthly-learner-deletion-%")
	}
}

// --- Ablations (design choices from DESIGN.md §5) ---

// BenchmarkAblationPlacement compares fragmentation across placement
// policies on the Fig. 3 workload.
func BenchmarkAblationPlacement(b *testing.B) {
	for _, pol := range []string{"spread", "pack"} {
		b.Run(pol, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := expt.Figure3(trace.Config{Days: 8, Seed: 42})
				if pol == "spread" {
					b.ReportMetric(expt.MeanQueuedPct(res.QueuedPctSpread), "queued>15min-%")
				} else {
					b.ReportMetric(expt.MeanQueuedPct(res.QueuedPctPack), "queued>15min-%")
				}
			}
		})
	}
}

// BenchmarkAblationBSASamples sweeps the BSA sample budget: placement
// quality (nodes used for a gang) vs scheduling latency.
func BenchmarkAblationBSASamples(b *testing.B) {
	for _, samples := range []int{1, 8, 32, 128} {
		b.Run(fmt.Sprintf("samples-%d", samples), func(b *testing.B) {
			rng := sim.NewRNG(9)
			bsa := &sched.BSA{Samples: samples, Theta: 4, RNG: rng}
			nodes := make([]*sched.Node, 16)
			for i := range nodes {
				cap := sched.Resources{MilliCPU: 64000, MemoryMB: 512000, GPUs: 4}
				nodes[i] = &sched.Node{Name: fmt.Sprintf("n%d", i), GPUType: "K80", Capacity: cap, Free: cap}
			}
			gang := &sched.Gang{JobID: "j"}
			for l := 0; l < 4; l++ {
				gang.Pods = append(gang.Pods, sched.PodSpec{
					Name:   fmt.Sprintf("j-l%d", l),
					Demand: sched.Resources{MilliCPU: 4000, MemoryMB: 24000, GPUs: 1},
				})
			}
			nodesUsed := 0.0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cs := sched.NewClusterState(nodes)
				as, fail := bsa.PlaceGang(gang, cs)
				if fail != nil {
					b.Fatal(fail)
				}
				used := map[string]bool{}
				for _, a := range as {
					used[a.Node] = true
				}
				nodesUsed += float64(len(used))
			}
			b.ReportMetric(nodesUsed/float64(b.N), "nodes-per-gang")
		})
	}
}

// BenchmarkAblationMountCache measures the object-store mount with and
// without its LRU chunk cache across training epochs.
func BenchmarkAblationMountCache(b *testing.B) {
	for _, cached := range []bool{true, false} {
		name := "cache-on"
		capacity := int64(256 << 20)
		if !cached {
			name = "cache-off"
			capacity = 0
		}
		b.Run(name, func(b *testing.B) {
			svc := objstore.New(objstore.Config{})
			svc.EnsureBucket("data")
			if err := svc.Put("data", "train.rec", make([]byte, 16<<20)); err != nil {
				b.Fatal(err)
			}
			m := svc.NewMount("data", capacity)
			b.SetBytes(16 << 20)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.ReadAll("train.rec"); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := m.Stats()
			b.ReportMetric(st.HitRate()*100, "cache-hit-%")
			b.ReportMetric(float64(st.BytesFetched)/float64(b.N), "backend-bytes/epoch")
		})
	}
}

// BenchmarkAblationCoordination compares etcd watch-based status
// propagation against MongoDB-style polling — the §3.2 design choice
// ("we preferred etcd over MongoDB for coordination because it is much
// faster and has ... streaming watches").
func BenchmarkAblationCoordination(b *testing.B) {
	b.Run("etcd-watch", func(b *testing.B) {
		p, err := ffdl.New(ffdl.Config{})
		if err != nil {
			b.Fatal(err)
		}
		defer p.Stop()
		ws, err := p.Etcd.Watch("bench/status", false, 0)
		if err != nil {
			b.Fatal(err)
		}
		defer ws.Cancel()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.Etcd.Put("bench/status", []byte("PROCESSING"), 0); err != nil {
				b.Fatal(err)
			}
			<-ws.Events() // latency from write to observed event
		}
	})
	b.Run("mongo-poll", func(b *testing.B) {
		db := mongo.NewDB()
		c := db.C("status")
		if _, err := c.Insert(mongo.Doc{"_id": "job", "n": 0}); err != nil {
			b.Fatal(err)
		}
		// A metadata-store reader has no watch primitive: it polls on an
		// interval. 1ms here is already generous — a real remote
		// MongoDB poll loop runs at tens/hundreds of ms — and it still
		// loses to push-based watches.
		const pollInterval = time.Millisecond
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := c.UpdateOne(mongo.Filter{"_id": "job"}, mongo.Update{Set: mongo.Doc{"n": i}}); err != nil {
				b.Fatal(err)
			}
			for {
				time.Sleep(pollInterval)
				d, err := c.FindOne(mongo.Filter{"_id": "job"})
				if err != nil {
					b.Fatal(err)
				}
				if v, _ := d["n"].(float64); int(v) == i || d["n"] == i {
					break
				}
			}
		}
	})
}

// BenchmarkAblationTieBreak compares largest-gang-first against plain
// FIFO for same-instant arrivals (§3.6's corner case).
func BenchmarkAblationTieBreak(b *testing.B) {
	mkGangs := func() []*sched.Gang {
		var gangs []*sched.Gang
		for i := 0; i < 8; i++ {
			g := &sched.Gang{JobID: fmt.Sprintf("g%d", i)}
			learners := 1
			if i%4 == 0 {
				learners = 4
			}
			for l := 0; l < learners; l++ {
				g.Pods = append(g.Pods, sched.PodSpec{
					Name:   fmt.Sprintf("g%d-l%d", i, l),
					Demand: sched.Resources{MilliCPU: 4000, MemoryMB: 24000, GPUs: 2},
				})
			}
			gangs = append(gangs, g)
		}
		return gangs
	}
	nodes := func() []*sched.Node {
		out := make([]*sched.Node, 4)
		for i := range out {
			cap := sched.Resources{MilliCPU: 64000, MemoryMB: 512000, GPUs: 4}
			out[i] = &sched.Node{Name: fmt.Sprintf("n%d", i), GPUType: "K80", Capacity: cap, Free: cap}
		}
		return out
	}
	b.Run("largest-gang-first", func(b *testing.B) {
		bigPlaced := 0.0
		for i := 0; i < b.N; i++ {
			var q sched.Queue
			t0 := time.Unix(0, 0)
			for _, g := range mkGangs() {
				q.Push(g, t0) // same instant: tie-break sorts largest first
			}
			cs := sched.NewClusterState(nodes())
			d := sched.Dispatcher{Policy: sched.GreedyGang{Pod: sched.Pack{}}, Backfill: true}
			placed, _ := d.Dispatch(&q, cs, t0)
			for _, pl := range placed {
				if len(pl.Gang.Pods) == 4 {
					bigPlaced++
				}
			}
		}
		b.ReportMetric(bigPlaced/float64(b.N), "large-gangs-placed")
	})
	b.Run("fifo", func(b *testing.B) {
		bigPlaced := 0.0
		for i := 0; i < b.N; i++ {
			var q sched.Queue
			t0 := time.Unix(0, 0)
			for k, g := range mkGangs() {
				q.Push(g, t0.Add(time.Duration(k))) // distinct instants: pure FIFO
			}
			cs := sched.NewClusterState(nodes())
			d := sched.Dispatcher{Policy: sched.GreedyGang{Pod: sched.Pack{}}, Backfill: true}
			placed, _ := d.Dispatch(&q, cs, t0)
			for _, pl := range placed {
				if len(pl.Gang.Pods) == 4 {
					bigPlaced++
				}
			}
		}
		b.ReportMetric(bigPlaced/float64(b.N), "large-gangs-placed")
	})
}

// BenchmarkSchedulerScale drives the live orchestrator at a large
// cluster size with mixed gang churn and reports the dirty-set
// scheduler's headline metrics: nodes examined per pass (must stay
// sublinear in cluster size — see expt.SchedulerScaleSweep for the
// 1k-vs-5k comparison), scheduling passes per second, and placement
// latency. This is the scheduler trajectory in the BENCH json.
func BenchmarkSchedulerScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := expt.SchedulerScale(expt.SchedScaleConfig{
			Nodes: 500, Gangs: 150, Seed: int64(i + 1),
		})
		if res.Placed != res.Pods {
			b.Fatalf("placed %d of %d pods", res.Placed, res.Pods)
		}
		b.ReportMetric(res.NodesExaminedPerPass, "nodes-examined/pass")
		b.ReportMetric(res.PassesPerSec, "passes/sec")
		b.ReportMetric(res.MeanPlacementMs, "placement-mean-ms")
		b.ReportMetric(res.P99PlacementMs, "placement-p99-ms")
	}
}

// BenchmarkPlatformJobThroughput measures end-to-end platform capacity:
// jobs submitted, trained and completed per second on a live platform
// (the "thousands of concurrent deployment requests" claim, §3.7).
func BenchmarkPlatformJobThroughput(b *testing.B) {
	p, err := ffdl.New(ffdl.Config{Seed: 5, PollInterval: 2 * time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Stop()
	p.AddNodes("k80", ffdl.K80, 4, 4)
	if err := p.SeedDataset("datasets", "d/", 1<<20); err != nil {
		b.Fatal(err)
	}
	client := p.Client()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := client.Submit(ctx, ffdl.Manifest{
			Name: fmt.Sprintf("bench-%d", i), User: "bench",
			Framework: ffdl.Caffe, Model: ffdl.VGG16,
			Learners: 1, GPUsPerLearner: 1, GPUType: ffdl.K80,
			Iterations: 10, DataBucket: "datasets", DataPrefix: "d/",
		})
		if err != nil {
			b.Fatal(err)
		}
		wctx, cancel := context.WithTimeout(ctx, 60*time.Second)
		status, err := client.WaitForStatus(wctx, id, ffdl.StatusCompleted, time.Millisecond)
		cancel()
		if err != nil || status != ffdl.StatusCompleted {
			b.Fatalf("job %s: %v %v", id, status, err)
		}
	}
}
