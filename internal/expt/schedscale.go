package expt

import (
	"fmt"
	"sort"
	"time"

	"github.com/ffdl/ffdl/internal/kube"
	"github.com/ffdl/ffdl/internal/sched"
	"github.com/ffdl/ffdl/internal/sim"
)

// The scheduler scale experiment: not a figure from the paper, but the
// repo's own scaling trajectory for the control plane. It drives the
// live kube orchestrator at cluster sizes well beyond the paper's
// 680-GPU deployment (§5.5) and measures what the dirty-set scheduler
// and the capacity index were built to bound: scheduling passes per
// second, nodes examined per pass (which must stay roughly flat as the
// cluster grows — the "cost proportional to what changed" property),
// and end-to-end placement latency under gang churn.

// SchedScaleConfig parameterizes one scale run.
type SchedScaleConfig struct {
	// Nodes is the number of worker machines.
	Nodes int
	// GPUsPerNode is each machine's GPU count. Default 4.
	GPUsPerNode int
	// GPUTypes is cycled across machines and gangs. Default the
	// paper's fleet: K80, P100, V100.
	GPUTypes []string
	// Gangs is the number of jobs submitted. Default Nodes/2 (≈94%
	// aggregate GPU demand with the default gang mix, so late gangs
	// queue and exercise the freed-capacity wake path).
	Gangs int
	// GangSizes is the learners-per-job mix, cycled. Default 1,2,4,8.
	GangSizes []int
	// GPUsPerPod is each learner's GPU demand. Default 1.
	GPUsPerPod int
	// JobDuration is how long each learner runs once started. Default
	// 30ms — short enough to generate churn within the run.
	JobDuration time.Duration
	// Waves splits submission into bursts JobDuration apart. Default 4.
	Waves int
	// Seed drives placement randomness.
	Seed int64
	// Timeout bounds the whole run. Default 60s.
	Timeout time.Duration
}

func (c *SchedScaleConfig) defaults() {
	if c.Nodes <= 0 {
		c.Nodes = 1000
	}
	if c.GPUsPerNode <= 0 {
		c.GPUsPerNode = 4
	}
	if len(c.GPUTypes) == 0 {
		c.GPUTypes = []string{"K80", "P100", "V100"}
	}
	if c.Gangs <= 0 {
		c.Gangs = c.Nodes / 2
	}
	if len(c.GangSizes) == 0 {
		c.GangSizes = []int{1, 2, 4, 8}
	}
	if c.GPUsPerPod <= 0 {
		c.GPUsPerPod = 1
	}
	if c.JobDuration <= 0 {
		c.JobDuration = 30 * time.Millisecond
	}
	if c.Waves <= 0 {
		c.Waves = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
}

// SchedScaleResult reports one scale run.
type SchedScaleResult struct {
	Nodes int `json:"nodes"`
	GPUs  int `json:"gpus"`
	Gangs int `json:"gangs"`
	Pods  int `json:"pods"`
	// Placed counts pods that were bound and ran to completion within
	// the timeout; a healthy run places every pod.
	Placed int `json:"placed"`

	Passes        uint64 `json:"passes"`
	FullScans     uint64 `json:"full_scans"`
	NodesExamined uint64 `json:"nodes_examined"`
	EventsSeen    uint64 `json:"events_seen"`
	EventsIgnored uint64 `json:"events_ignored"`

	// NodesExaminedPerPass is the scalability headline: with the
	// capacity index it tracks the feasible-candidate budget, not the
	// cluster size.
	NodesExaminedPerPass float64 `json:"nodes_examined_per_pass"`
	PassesPerSec         float64 `json:"passes_per_sec"`
	MeanPlacementMs      float64 `json:"mean_placement_ms"`
	P99PlacementMs       float64 `json:"p99_placement_ms"`
	WallSeconds          float64 `json:"wall_seconds"`
}

// SchedulerScale runs the experiment on a live kube cluster with the
// production scheduling stack: BSA gang placement (candidate-capped for
// constant per-step work) over Pack, driven entirely by store watch
// events.
func SchedulerScale(cfg SchedScaleConfig) SchedScaleResult {
	cfg.defaults()
	rng := sim.NewRNG(cfg.Seed)
	c := kube.NewCluster(kube.Config{
		RNG:        rng.Stream(1),
		PodPolicy:  sched.Pack{},
		GangPolicy: &sched.BSA{Samples: 8, Theta: 4, CandidateCap: 64, RNG: rng.Stream(2)},
		// Long resync intervals: the run must be carried by the
		// dirty-set event path, with the safety nets ticking at most a
		// handful of times.
		SchedulerInterval: 2 * time.Second,
		ResyncInterval:    time.Second,
		HeartbeatInterval: 250 * time.Millisecond,
		NodeGracePeriod:   time.Minute,
		StartDelay:        func(string) time.Duration { return 0 },
	})
	defer c.Stop()

	perGPU := func(gpus int) sched.Resources {
		return sched.Resources{MilliCPU: int64(4000 * gpus), MemoryMB: int64(24000 * gpus), GPUs: gpus}
	}
	for i := 0; i < cfg.Nodes; i++ {
		c.AddNode(fmt.Sprintf("node-%05d", i), cfg.GPUTypes[i%len(cfg.GPUTypes)], perGPU(cfg.GPUsPerNode))
	}
	c.RegisterRuntime("learner", func(ctx *kube.PodContext) int {
		select {
		case <-ctx.Clock.After(cfg.JobDuration):
			return 0
		case <-ctx.Stop:
			return 137
		}
	})

	// Submit gangs in waves; remember each pod's submission instant for
	// the placement-latency distribution.
	start := time.Now()
	submitted := make(map[string]time.Time)
	pods := 0
	perWave := (cfg.Gangs + cfg.Waves - 1) / cfg.Waves
	for g := 0; g < cfg.Gangs; g++ {
		if g > 0 && g%perWave == 0 {
			time.Sleep(cfg.JobDuration)
		}
		jobID := fmt.Sprintf("job-%05d", g)
		size := cfg.GangSizes[g%len(cfg.GangSizes)]
		gpuType := cfg.GPUTypes[g%len(cfg.GPUTypes)]
		for l := 0; l < size; l++ {
			name := fmt.Sprintf("%s-l%d", jobID, l)
			submitted[name] = time.Now()
			c.Store().PutPod(&kube.Pod{
				Name: name,
				Spec: kube.PodSpec{
					Demand: perGPU(cfg.GPUsPerPod), GPUType: gpuType,
					JobID: jobID, GangSize: size,
					Runtime: "learner", Type: "learner",
				},
			})
			pods++
		}
	}

	// Wait for the churn to drain: every pod placed and completed.
	deadline := start.Add(cfg.Timeout)
	done := 0
	for time.Now().Before(deadline) {
		done = 0
		for _, p := range c.Store().ListPods("job-") {
			if p.Status.Phase == kube.PodSucceeded {
				done++
			}
		}
		if done == pods {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	wall := time.Since(start)

	var latencies []float64
	for _, p := range c.Store().ListPods("job-") {
		sub, ok := submitted[p.Name]
		if !ok || p.Status.ScheduledAt.IsZero() {
			continue
		}
		latencies = append(latencies, float64(p.Status.ScheduledAt.Sub(sub).Microseconds())/1000)
	}
	sort.Float64s(latencies)

	stats := c.SchedStats()
	res := SchedScaleResult{
		Nodes: cfg.Nodes, GPUs: cfg.Nodes * cfg.GPUsPerNode,
		Gangs: cfg.Gangs, Pods: pods, Placed: done,
		Passes: stats.Passes, FullScans: stats.FullScans,
		NodesExamined: stats.NodesExamined,
		EventsSeen:    stats.EventsSeen, EventsIgnored: stats.EventsIgnored,
		WallSeconds: wall.Seconds(),
	}
	if stats.Passes > 0 {
		res.NodesExaminedPerPass = float64(stats.NodesExamined) / float64(stats.Passes)
	}
	if wall > 0 {
		res.PassesPerSec = float64(stats.Passes) / wall.Seconds()
	}
	if len(latencies) > 0 {
		sum := 0.0
		for _, l := range latencies {
			sum += l
		}
		res.MeanPlacementMs = sum / float64(len(latencies))
		res.P99PlacementMs = latencies[min(len(latencies)-1, len(latencies)*99/100)]
	}
	return res
}

// SchedulerScaleSweep runs the experiment at several cluster sizes with
// an otherwise identical workload, which is how sublinearity is
// demonstrated: same gangs, growing fleet, flat nodes-examined-per-pass.
func SchedulerScaleSweep(sizes []int, base SchedScaleConfig) []SchedScaleResult {
	out := make([]SchedScaleResult, 0, len(sizes))
	for _, n := range sizes {
		cfg := base
		cfg.Nodes = n
		out = append(out, SchedulerScale(cfg))
	}
	return out
}

// RenderSchedScale formats already-computed sweep results.
func RenderSchedScale(results []SchedScaleResult) *Table {
	t := &Table{
		Title: "Scheduler scale: dirty-set wakes + indexed placement",
		Header: []string{"Nodes", "GPUs", "Pods", "Placed", "Passes", "Full scans",
			"Examined/pass", "Passes/s", "Place mean (ms)", "Place p99 (ms)", "Events ignored"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Nodes), fmt.Sprintf("%d", r.GPUs),
			fmt.Sprintf("%d", r.Pods), fmt.Sprintf("%d", r.Placed),
			fmt.Sprintf("%d", r.Passes), fmt.Sprintf("%d", r.FullScans),
			fmt.Sprintf("%.0f", r.NodesExaminedPerPass),
			fmt.Sprintf("%.0f", r.PassesPerSec),
			fmt.Sprintf("%.2f", r.MeanPlacementMs),
			fmt.Sprintf("%.2f", r.P99PlacementMs),
			fmt.Sprintf("%d", r.EventsIgnored),
		})
	}
	if len(results) >= 2 {
		first, last := results[0], results[len(results)-1]
		if first.NodesExaminedPerPass > 0 && first.Nodes > 0 {
			t.Caption = fmt.Sprintf(
				"%dx more nodes -> %.1fx nodes-examined-per-pass (sublinear; heartbeats filtered: %d of %d events).",
				last.Nodes/first.Nodes, last.NodesExaminedPerPass/first.NodesExaminedPerPass,
				last.EventsIgnored, last.EventsSeen)
		}
	}
	return t
}
