package expt

import (
	"strings"
	"sync"
	"testing"

	"github.com/ffdl/ffdl/internal/perf"
	"github.com/ffdl/ffdl/internal/trace"
)

func TestTable1ShapeMatchesPaper(t *testing.T) {
	rows := Table1()
	if len(rows) != 16 {
		t.Fatalf("rows = %d, want 16 (8 configs x 2 benchmarks)", len(rows))
	}
	for _, r := range rows {
		if r.Overhead < 0.002 || r.Overhead > 0.055 {
			t.Errorf("%s %dLx%dG overhead %.2f%% outside paper band 0.3-5.4%%",
				r.Model, r.Learners, r.GPUsPerL, 100*r.Overhead)
		}
		if r.FfDLImagesPerSec >= r.BareImagesPerSec {
			t.Errorf("FfDL faster than bare metal for %+v", r)
		}
	}
}

func TestTable2ShapeMatchesPaper(t *testing.T) {
	rows := Table2()
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	oneGPU := map[perf.Model]float64{}
	for _, r := range rows {
		if r.Gap <= 0 || r.Gap > 0.15 {
			t.Errorf("%s x%d DGX gap %.1f%% outside (0, 15%%]", r.Model, r.GPUs, 100*r.Gap)
		}
		if r.GPUs == 1 {
			oneGPU[r.Model] = r.Gap
		} else if r.Gap <= oneGPU[r.Model] {
			t.Errorf("%s: 2-GPU gap not larger than 1-GPU gap", r.Model)
		}
	}
}

func TestTable4CaffeSaturation(t *testing.T) {
	rows := Table4()
	// P100 ~66, V100 ~107, flat across threads (Table 4 shape).
	var v100 []float64
	for _, r := range rows {
		if r.P100Thpt > 0 && (r.P100Thpt < 62 || r.P100Thpt > 70) {
			t.Errorf("P100 thpt %.1f at %d threads outside ~66 band", r.P100Thpt, r.Threads)
		}
		v100 = append(v100, r.V100Thpt)
	}
	if v100[0] < 100 || v100[len(v100)-1] > 112 {
		t.Errorf("V100 range [%f..%f] outside ~107 band", v100[0], v100[len(v100)-1])
	}
	if (v100[len(v100)-1]-v100[0])/v100[0] > 0.02 {
		t.Error("Caffe throughput not flat across threads")
	}
}

func TestTable6TFScaling(t *testing.T) {
	rows := Table6()
	byKey := map[string]Table6Row{}
	for _, r := range rows {
		byKey[string(r.Model)+string(rune(r.Threads))] = r
		if r.Util < 0.85 || r.Util > 1 {
			t.Errorf("%s@%d util %.2f outside band", r.Model, r.Threads, r.Util)
		}
	}
	// 28 threads strictly faster than 16 for every model (TF keeps
	// scaling, Table 6).
	for _, m := range []perf.Model{perf.InceptionV3, perf.ResNet50, perf.VGG16} {
		r16 := byKey[string(m)+string(rune(16))]
		r28 := byKey[string(m)+string(rune(28))]
		if r28.Thpt <= r16.Thpt {
			t.Errorf("%s: 28 threads (%.1f) not faster than 16 (%.1f)", m, r28.Thpt, r16.Thpt)
		}
	}
}

func TestTable3RecoveryBands(t *testing.T) {
	rows, err := Table3(3)
	if err != nil {
		t.Fatalf("Table3: %v", err)
	}
	want := map[string]struct{ lo, hi float64 }{
		// Paper bands, with slack for measurement/scheduling noise at
		// the 1000x compression.
		"API":      {2.0, 8.0},
		"LCM":      {2.5, 9.0},
		"Guardian": {0.5, 5.0},
		"Helper":   {1.5, 8.0},
		"Learner":  {7.0, 28.0},
	}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.Component] = true
		b, ok := want[r.Component]
		if !ok {
			t.Errorf("unexpected component %s", r.Component)
			continue
		}
		if r.Mean.Seconds() < b.lo || r.Mean.Seconds() > b.hi {
			t.Errorf("%s mean recovery %.1fs outside [%.1f, %.1f]",
				r.Component, r.Mean.Seconds(), b.lo, b.hi)
		}
		if r.Min > r.Max {
			t.Errorf("%s min > max", r.Component)
		}
	}
	for c := range want {
		if !seen[c] {
			t.Errorf("missing component %s", c)
		}
	}
	// Ordering: learners slowest to recover; guardians fastest pods.
	byName := map[string]Table3Row{}
	for _, r := range rows {
		byName[r.Component] = r
	}
	if byName["Learner"].Mean <= byName["Helper"].Mean {
		t.Error("learner recovery not slower than helper")
	}
	if byName["Guardian"].Mean >= byName["Helper"].Mean {
		t.Error("guardian recovery not faster than helper")
	}
}

func TestFigure3PackBeatsSpread(t *testing.T) {
	res := Figure3(trace.Config{Days: 20, Seed: 3, MeanJobsPerDay: 700})
	spread := MeanQueuedPct(res.QueuedPctSpread)
	pack := MeanQueuedPct(res.QueuedPctPack)
	if spread <= pack {
		t.Fatalf("Spread queued %.2f%% not worse than Pack %.2f%%", spread, pack)
	}
	if pack > 0 && spread/pack < 1.5 {
		t.Fatalf("Pack advantage only %.1fx, want >= 1.5x (paper: >3x)", spread/pack)
	}
	if len(res.ArrivalsByDay) != 20 {
		t.Fatalf("days = %d", len(res.ArrivalsByDay))
	}
}

func TestFigure4GangEliminatesDeadlock(t *testing.T) {
	res := Figure4(20, 11)
	if len(res.Series) != 6 {
		t.Fatalf("series = %d, want 6", len(res.Series))
	}
	for _, s := range res.Series {
		if s.Gang {
			if s.Deadlocked.Max() != 0 || s.IdlePct.Max() != 0 {
				t.Errorf("%s: gang scheduling produced deadlocks (max %v learners, %.1f%% idle)",
					s.Workload, s.Deadlocked.Max(), s.IdlePct.Max())
			}
			continue
		}
		// Without gang scheduling deadlocks must occur in a majority of
		// runs (paper: ~60% of the time) for at least the distributed
		// workloads, with idle GPUs reaching tens of percent on the
		// heaviest workload.
		vals, probs := s.Deadlocked.CDF()
		zeroProb := 0.0
		if len(vals) > 0 && vals[0] == 0 {
			zeroProb = probs[0]
		}
		if zeroProb > 0.8 {
			t.Errorf("%s: deadlocks almost never happen (P0=%.2f)", s.Workload, zeroProb)
		}
	}
	// Heaviest workload (4L x 1G) reaches substantial idle GPUs.
	heaviest := res.Series[4]
	if heaviest.Gang {
		t.Fatal("series order changed")
	}
	if heaviest.IdlePct.Max() < 15 {
		t.Errorf("4Lx1G max idle GPUs %.1f%%, want >= 15%% (paper: up to 46%%)", heaviest.IdlePct.Max())
	}
}

func TestFigure5DegradationOrdering(t *testing.T) {
	rows := Figure5()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byBatch := map[string]Figure5Row{}
	for _, r := range rows {
		byBatch[r.Batch] = r
		if r.HeavySeconds < r.LightSeconds {
			t.Errorf("%s: heavy load faster than light (%.0f < %.0f)", r.Batch, r.HeavySeconds, r.LightSeconds)
		}
	}
	// Light-load runtimes in the paper's ballpark (V100 ~2410s, P100
	// ~3207s, K80 ~4800s) — generous bands since our model is
	// calibrated, not fitted per-row.
	checks := []struct {
		batch  string
		lo, hi float64
	}{
		{"V100-batch4", 1600, 3400},
		{"P100-batch3", 2300, 4400},
		{"K80-batch1", 3500, 6500},
		{"K80-batch2", 3500, 6500},
	}
	for _, c := range checks {
		r := byBatch[c.batch]
		if r.LightSeconds < c.lo || r.LightSeconds > c.hi {
			t.Errorf("%s light runtime %.0fs outside [%.0f, %.0f]", c.batch, r.LightSeconds, c.lo, c.hi)
		}
	}
	// The headline shape: V100 degrades most, K80 least (staggered
	// starts put the fastest GPUs at peak contention).
	v100 := byBatch["V100-batch4"].DegradationPct()
	p100 := byBatch["P100-batch3"].DegradationPct()
	k80 := byBatch["K80-batch1"].DegradationPct()
	if !(v100 > p100 && p100 > k80) {
		t.Errorf("degradation ordering violated: V100 %.0f%%, P100 %.0f%%, K80 %.0f%%", v100, p100, k80)
	}
	if v100 < 25 {
		t.Errorf("V100 degradation %.0f%%, want >= 25%% (paper: 51%%)", v100)
	}
	if k80 > 20 {
		t.Errorf("K80 degradation %.0f%%, want <= 20%% (paper: 6-8%%)", k80)
	}
}

func TestAggregateHeavyThroughputBallpark(t *testing.T) {
	img, iters := AggregateHeavyThroughput()
	// Paper: ~54K images/sec, ~837 iters/sec.
	if img < 25_000 || img > 90_000 {
		t.Fatalf("aggregate throughput %.0f images/sec outside ballpark", img)
	}
	if iters < 400 || iters > 1400 {
		t.Fatalf("aggregate %.0f iters/sec outside ballpark", iters)
	}
}

// failureSim caches the shared 30-day failure simulation across tests.
var failureSim = sync.OnceValue(func() *FailureAnalysis {
	return SimulateFailures(30, 8)
})

func TestTable8ReasonDistribution(t *testing.T) {
	fa := failureSim()
	if fa.Total == 0 {
		t.Fatal("no failures simulated")
	}
	noNodes := fa.ReasonPct(ReasonNoNodes)
	binding := fa.ReasonPct(ReasonBinding)
	skip := fa.ReasonPct(ReasonSkipDelete)
	pvc := fa.ReasonPct(ReasonPVCNotFound)
	// Paper: 64.0 / 17.05 / 15.1 / 1.94.
	if noNodes < 45 || noNodes > 80 {
		t.Errorf("No-nodes share %.1f%%, want ~64%%", noNodes)
	}
	if binding < 8 || binding > 30 {
		t.Errorf("Binding share %.1f%%, want ~17%%", binding)
	}
	if skip < 6 || skip > 28 {
		t.Errorf("skip-deleting share %.1f%%, want ~15%%", skip)
	}
	if pvc <= 0 || pvc > 8 {
		t.Errorf("PVC share %.1f%%, want ~2%%", pvc)
	}
	if !(noNodes > binding && binding > pvc) {
		t.Error("reason ordering violated")
	}
}

func TestFigure6LearnersDominateFailures(t *testing.T) {
	fa := failureSim()
	learner := fa.PodTypePct("learner")
	helper := fa.PodTypePct("lhelper")
	if learner < 55 {
		t.Errorf("learner share %.1f%%, want > 55%% (paper: >60%%)", learner)
	}
	if helper < 5 || helper > 30 {
		t.Errorf("lhelper share %.1f%%, want ~15%%", helper)
	}
	if learner <= helper {
		t.Error("learner share not dominant")
	}
	// 14 pod types in the paper's Fig. 6.
	if len(fa.PodTypes) < 10 {
		t.Errorf("only %d pod types, want >= 10", len(fa.PodTypes))
	}
}

func TestFigure7WithinFivePercent(t *testing.T) {
	res := SimulateNodeFailures(30, 5)
	if len(res.DailyPct) != 30 {
		t.Fatalf("days = %d", len(res.DailyPct))
	}
	over := 0
	for _, v := range res.DailyPct {
		if v > 6 {
			over++
		}
		if v < 0 {
			t.Fatalf("negative percentage %f", v)
		}
	}
	if over > 3 {
		t.Fatalf("%d/30 days exceed ~5%% deletions from node failures", over)
	}
}

func TestFigure8SubPercentMonthly(t *testing.T) {
	res := SimulateNodeFailures(150, 5)
	if len(res.MonthlyLearnerPct) != 5 {
		t.Fatalf("months = %d, want 5", len(res.MonthlyLearnerPct))
	}
	for m, v := range res.MonthlyLearnerPct {
		if v <= 0 || v > 0.3 {
			t.Errorf("month %d learner-deletion share %.4f%% outside sub-percent band", m+1, v)
		}
	}
}

func TestRenderersProduceTables(t *testing.T) {
	tables := []*Table{
		Table1Render(), Table2Render(), Table4Render(), Table5Render(),
		Table6Render(), Table7Render(), Figure5Render(),
		Figure4Render(5, 1),
		Figure3Render(trace.Config{Days: 5, Seed: 2}),
		Table8Render(10, 3), Figure6Render(10, 3),
		Figure7Render(30, 3), Figure8Render(150, 3),
	}
	for _, tb := range tables {
		s := tb.String()
		if !strings.Contains(s, tb.Title) || len(tb.Rows) == 0 {
			t.Errorf("table %q rendered empty", tb.Title)
		}
	}
}
