package expt

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/ffdl/ffdl/internal/core"
	"github.com/ffdl/ffdl/internal/etcd"
	"github.com/ffdl/ffdl/internal/mongo"
	"github.com/ffdl/ffdl/internal/obs"
	"github.com/ffdl/ffdl/internal/perf"
	"github.com/ffdl/ffdl/internal/sim"
)

// The throughput experiment: the repo's own measurement of the
// metadata/coordination hot path under concurrency — the paths every
// other subsystem (scheduler, tenant dispatcher, status bus) sits on.
// It has three stages, each reported per wall-clock second (the sim
// clock absorbs all modeled delays, so wall time is pure control-plane
// software cost):
//
//  1. End-to-end: N concurrent submitters drive submissions through the
//     full platform (API → MongoDB → scheduler → guardian → learners →
//     etcd status mirror → status bus) until each job reaches
//     PROCESSING — the paper's "RUNNING". Headline metric:
//     submissions dispatched per second.
//  2. etcd microstage: the same concurrency hammering the coordination
//     store directly — proposals per second, plus the group-commit
//     ratio (commands per Raft entry) and append fan-out counters.
//  3. mongo microstage: concurrent job-document traffic (insert, status
//     append onto a growing history, read) — ops per second.
//
// Compare runs the batched configuration against the unbatched
// ablation (the seed's per-command Raft entries + full-suffix append
// fan-out), isolating what group commit + pipelined replication buy.

// ThroughputConfig parameterizes one run.
type ThroughputConfig struct {
	// Submitters is the number of concurrent submitters. Default 64.
	Submitters int
	// Jobs is the total number of submissions. Default 2×Submitters.
	Jobs int
	// LearnersPerJob sizes each job's gang (more learners = more etcd
	// coordination traffic per job — the distributed-training shape the
	// paper dwells on). Default 4.
	LearnersPerJob int
	// Iterations per job (TimeCompression 0 makes them instantaneous).
	// Default 2.
	Iterations int
	// EtcdOps is the per-submitter put count for the etcd microstage.
	// Default 128.
	EtcdOps int
	// MongoOps is the per-submitter op count for the mongo microstage.
	// Default 256.
	MongoOps int
	// Unbatched selects the batching ablation arm (seed proposal path).
	Unbatched bool
	// GobCodec selects the codec ablation arm: gob-encoded Raft entries
	// (the seed codec) instead of the hand-rolled binary codec. The two
	// ablations compose; the seed-faithful arm is Unbatched+GobCodec.
	GobCodec bool
	// DisableObs runs the platform with hot-path instrumentation and
	// per-job tracing stripped — the observability ablation arm the
	// ObsOverhead experiment compares against.
	DisableObs bool
	// snapshotSink, when set, receives the platform's metrics snapshot
	// after the end-to-end stage (the ObsOverhead experiment's sanity
	// check that instruments actually recorded work).
	snapshotSink func(obs.Snapshot)
	// Seed drives platform randomness.
	Seed int64
	// SettleWall is the FakeClock auto-advance quiescence window.
	// Default 2ms.
	SettleWall time.Duration
	// Timeout bounds the end-to-end stage in wall time. Default 120s.
	Timeout time.Duration
}

func (c *ThroughputConfig) defaults() {
	if c.Submitters <= 0 {
		c.Submitters = 64
	}
	if c.Jobs <= 0 {
		c.Jobs = 2 * c.Submitters
	}
	if c.LearnersPerJob <= 0 {
		c.LearnersPerJob = 4
	}
	if c.Iterations <= 0 {
		c.Iterations = 2
	}
	if c.EtcdOps <= 0 {
		c.EtcdOps = 128
	}
	if c.MongoOps <= 0 {
		c.MongoOps = 256
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.SettleWall <= 0 {
		c.SettleWall = 2 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 120 * time.Second
	}
}

// ThroughputResult reports one run.
type ThroughputResult struct {
	Submitters int    `json:"submitters"`
	Jobs       int    `json:"jobs"`
	Batched    bool   `json:"batched"`
	Codec      string `json:"codec"` // "binary" or "gob"

	// End-to-end stage.
	Dispatched       int     `json:"dispatched"`
	DispatchedPerSec float64 `json:"dispatched_per_sec"`
	E2EWallSeconds   float64 `json:"e2e_wall_seconds"`
	// Platform etcd traffic during the end-to-end stage.
	E2ECmdsPerEntry float64 `json:"e2e_cmds_per_entry"`

	// etcd microstage.
	EtcdProposals       uint64  `json:"etcd_proposals"`
	EtcdProposalsPerSec float64 `json:"etcd_proposals_per_sec"`
	EtcdCmdsPerEntry    float64 `json:"etcd_cmds_per_entry"`
	EtcdEntriesShipped  uint64  `json:"etcd_entries_shipped"`

	// mongo microstage.
	MongoOps       uint64  `json:"mongo_ops"`
	MongoOpsPerSec float64 `json:"mongo_ops_per_sec"`

	// Codec microstage: encode+decode round-trips of a representative
	// Put command through this arm's entry codec (no Raft, no disk —
	// pure serialization cost).
	CodecBench etcd.CodecStats `json:"codec_bench"`

	WallSeconds float64 `json:"wall_seconds"`
}

// Throughput runs the experiment once.
func Throughput(cfg ThroughputConfig) (ThroughputResult, error) {
	cfg.defaults()
	res := ThroughputResult{
		Submitters: cfg.Submitters, Jobs: cfg.Jobs, Batched: !cfg.Unbatched,
		Codec: "binary",
	}
	if cfg.GobCodec {
		res.Codec = "gob"
	}
	wallStart := time.Now()
	if err := throughputE2E(cfg, &res); err != nil {
		return res, err
	}
	if err := throughputEtcd(cfg, &res); err != nil {
		return res, err
	}
	throughputMongo(cfg, &res)
	res.CodecBench = etcd.BenchCodec(cfg.GobCodec, 0)
	res.WallSeconds = time.Since(wallStart).Seconds()
	return res, nil
}

// throughputE2E measures submissions→PROCESSING per wall second through
// the full platform.
func throughputE2E(cfg ThroughputConfig, res *ThroughputResult) error {
	fc := sim.NewFakeClock(time.Unix(0, 0))
	fc.StartAutoAdvance(cfg.SettleWall)
	defer fc.StopAutoAdvance()

	p, err := core.NewPlatform(core.Config{
		Clock: fc,
		Seed:  cfg.Seed,
		// Every ticker is a resync safety net; stretch them so the
		// measurement sees event-driven dispatch, not poll overhead.
		PollInterval:      30 * time.Second,
		SchedulerInterval: time.Minute,
		ResyncInterval:    time.Minute,
		HeartbeatInterval: 2 * time.Minute,
		NodeGracePeriod:   10 * time.Minute,
		RendezvousTimeout: time.Hour,
		TimeCompression:   0, // training is instantaneous; dispatch is the workload
		// Zero modeled container start latency: the experiment measures
		// control-plane software cost per dispatch. Every virtual delay
		// on the dispatch path needs a FakeClock auto-advance, and the
		// advancer only steps after a real-time window with no clock
		// activity — which 64-way proposal timer churn starves — so a
		// modeled delay would stall both arms identically and dilute
		// the comparison. (A zero-duration timer fires inline without
		// registering a clock waiter.)
		StartDelay:    func(string) time.Duration { return 0 },
		EtcdUnbatched: cfg.Unbatched,
		EtcdGobCodec:  cfg.GobCodec,
		DisableObs:    cfg.DisableObs,
	})
	if err != nil {
		return err
	}
	defer p.Stop()
	// Same reasoning: modeled NFS provisioning latency — and the §4
	// load-dependent failure model (>20 concurrent provisions start
	// failing, which a 64-wide submission burst trips constantly,
	// sending guardians into rollback/retry cycles) — is not the
	// workload under measurement; Table 3 and the failure figures
	// cover it.
	p.NFS.BaseLatency = 0
	p.NFS.FailureSlope = 0

	// Every submitter gets Jobs/Submitters submissions, with the
	// remainder spread over the first few — exactly Jobs submissions
	// total. Capacity covers every submitted gang at once, so the
	// measurement is bounded by the control plane, not by GPUs.
	total := cfg.Jobs
	if total < cfg.Submitters {
		total = cfg.Submitters
	}
	jobsFor := func(s int) int {
		n := total / cfg.Submitters
		if s < total%cfg.Submitters {
			n++
		}
		return n
	}
	gpusNeeded := total * cfg.LearnersPerJob
	nodes := (gpusNeeded+3)/4 + 1
	for i := 0; i < nodes; i++ {
		p.AddNode(fmt.Sprintf("node-%03d", i), "K80", 4, 64, 1<<20)
	}
	// A token dataset shard: transfer volume is not the workload under
	// measurement (the paper's §5.5 bandwidth study covers that).
	p.Store.EnsureBucket("datasets")
	if err := p.Store.Put("datasets", "data/shard-0", make([]byte, 1<<10)); err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.Timeout)
	defer cancel()
	client := p.Client()
	res.Jobs = total

	// Each submitter fires its whole backlog, then awaits dispatch of
	// every job — the bursty arrival shape a shared platform actually
	// sees, and the one that exercises the proposal path's concurrency.
	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, cfg.Submitters)
	for s := 0; s < cfg.Submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			mine := jobsFor(s)
			ids := make([]string, 0, mine)
			for j := 0; j < mine; j++ {
				id, err := client.Submit(ctx, core.Manifest{
					Name: fmt.Sprintf("tp-%d-%d", s, j), User: "bench",
					Framework: perf.Caffe, Model: perf.VGG16,
					Learners: cfg.LearnersPerJob, GPUsPerLearner: 1, GPUType: perf.K80,
					BatchSize: 64, Iterations: cfg.Iterations,
					DataBucket: "datasets", DataPrefix: "data/",
					Command: "caffe train -solver solver.prototxt",
				})
				if err != nil {
					errCh <- fmt.Errorf("submit %d/%d: %w", s, j, err)
					return
				}
				ids = append(ids, id)
			}
			for _, id := range ids {
				if _, err := client.WaitForStatus(ctx, id, core.StatusProcessing, time.Minute); err != nil {
					errCh <- fmt.Errorf("wait %s: %w", id, err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
	}
	res.Dispatched = total
	res.E2EWallSeconds = time.Since(start).Seconds()
	if res.E2EWallSeconds > 0 {
		res.DispatchedPerSec = float64(total) / res.E2EWallSeconds
	}
	if st := p.Etcd.Stats(); st.Entries > 0 {
		res.E2ECmdsPerEntry = float64(st.Commands) / float64(st.Entries)
	}
	if cfg.snapshotSink != nil {
		cfg.snapshotSink(p.Obs.Snapshot())
	}
	return nil
}

// throughputEtcd measures raw coordination-store proposals per second
// at the configured concurrency.
func throughputEtcd(cfg ThroughputConfig, res *ThroughputResult) error {
	c, err := etcd.NewCluster(etcd.Options{
		Seed:              cfg.Seed,
		UnbatchedAblation: cfg.Unbatched,
		GobCodec:          cfg.GobCodec,
	})
	if err != nil {
		return err
	}
	defer c.Stop()
	start := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < cfg.Submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			key := fmt.Sprintf("jobs/tp-%03d/status", s)
			for i := 0; i < cfg.EtcdOps; i++ {
				c.Put(key, []byte("PROCESSING"), 0) //nolint:errcheck
			}
		}(s)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	st := c.Stats()
	res.EtcdProposals = uint64(cfg.Submitters * cfg.EtcdOps)
	if wall > 0 {
		res.EtcdProposalsPerSec = float64(res.EtcdProposals) / wall
	}
	if st.Entries > 0 {
		res.EtcdCmdsPerEntry = float64(st.Commands) / float64(st.Entries)
	}
	res.EtcdEntriesShipped = st.EntriesSent
	return nil
}

// throughputMongo measures concurrent job-document traffic: insert,
// status appends onto a growing history, and reads — the setJobStatus
// shape.
func throughputMongo(cfg ThroughputConfig, res *ThroughputResult) {
	db := mongo.NewDB()
	coll := db.C("jobs")
	coll.EnsureIndex("user")
	start := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < cfg.Submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			id := fmt.Sprintf("tp-%03d", s)
			coll.Insert(mongo.Doc{ //nolint:errcheck
				"_id": id, "user": "bench", "status": "PENDING", "history": []any{},
			})
			for i := 1; i < cfg.MongoOps; i++ {
				switch i % 3 {
				case 0:
					coll.FindOne(mongo.Filter{"_id": id}) //nolint:errcheck
				default:
					coll.UpdateOne(mongo.Filter{"_id": id}, mongo.Update{ //nolint:errcheck
						Set: mongo.Doc{"status": "PROCESSING"},
						Push: map[string]any{"history": mongo.Doc{
							"status": "PROCESSING", "i": i,
						}},
					})
				}
			}
		}(s)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	res.MongoOps = uint64(cfg.Submitters * cfg.MongoOps)
	if wall > 0 {
		res.MongoOpsPerSec = float64(res.MongoOps) / wall
	}
}

// ThroughputCompare runs the batched configuration (binary codec)
// against the unbatched ablation over the identical workload. The
// ablation arm keeps the seed's gob entry codec, so the pair measures
// everything the proposal-path work bought end to end.
func ThroughputCompare(cfg ThroughputConfig) (batched, unbatched ThroughputResult, err error) {
	cfg.Unbatched, cfg.GobCodec = false, false
	batched, err = Throughput(cfg)
	if err != nil {
		return batched, unbatched, err
	}
	cfg.Unbatched, cfg.GobCodec = true, true
	unbatched, err = Throughput(cfg)
	return batched, unbatched, err
}

// ThroughputArms runs the full three-arm comparison over the identical
// workload: the shipping configuration (group commit + binary codec),
// the codec ablation (group commit + gob entries — isolates what the
// binary codec buys), and the seed arm (unbatched + gob).
func ThroughputArms(cfg ThroughputConfig) ([]ThroughputResult, error) {
	arms := []struct{ unbatched, gob bool }{
		{false, false}, // shipping: batched + binary
		{false, true},  // codec ablation: batched + gob
		{true, true},   // seed: unbatched + gob
	}
	results := make([]ThroughputResult, 0, len(arms))
	for _, a := range arms {
		cfg.Unbatched, cfg.GobCodec = a.unbatched, a.gob
		r, err := Throughput(cfg)
		if err != nil {
			return results, err
		}
		results = append(results, r)
	}
	return results, nil
}

// RenderThroughput formats results as a table.
func RenderThroughput(results []ThroughputResult) *Table {
	t := &Table{
		Title: "Control-plane throughput: group commit + binary entry codec vs the gob-codec and unbatched ablations",
		Header: []string{"Batched", "Codec", "Submitters", "Jobs", "Dispatched/s", "etcd props/s",
			"cmds/entry", "codec cmds/s", "codec allocs", "mongo ops/s", "E2E wall (s)"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%v", r.Batched), r.Codec, fmt.Sprintf("%d", r.Submitters),
			fmt.Sprintf("%d", r.Jobs), f2(r.DispatchedPerSec),
			fmt.Sprintf("%.0f", r.EtcdProposalsPerSec),
			f2(r.EtcdCmdsPerEntry),
			fmt.Sprintf("%.0f", r.CodecBench.CmdsPerSec),
			f2(r.CodecBench.AllocsPerOp),
			fmt.Sprintf("%.0f", r.MongoOpsPerSec),
			f2(r.E2EWallSeconds),
		})
	}
	// Caption ratios against whichever ablation arms are present,
	// measured from the shipping arm (batched + binary) when it leads.
	if len(results) < 2 || !results[0].Batched || results[0].Codec != "binary" {
		return t
	}
	ship := results[0]
	caption := ""
	ratio := func(num, den float64) float64 {
		if den > 0 {
			return num / den
		}
		return 0
	}
	for _, r := range results[1:] {
		switch {
		case r.Batched && r.Codec == "gob":
			caption += fmt.Sprintf(
				"Binary entry codec: %.1fx codec round-trips/sec (%.1f vs %.1f allocs/op), %.2fx raw etcd proposals/sec vs the gob-codec ablation. ",
				ratio(ship.CodecBench.CmdsPerSec, r.CodecBench.CmdsPerSec),
				ship.CodecBench.AllocsPerOp, r.CodecBench.AllocsPerOp,
				ratio(ship.EtcdProposalsPerSec, r.EtcdProposalsPerSec))
		case !r.Batched:
			caption += fmt.Sprintf(
				"Vs the seed arm (unbatched + gob) at %d concurrent submitters: %.1fx submissions dispatched/sec end to end, %.1fx raw etcd proposals/sec (group commit at %.1f cmds/entry). ",
				ship.Submitters,
				ratio(ship.DispatchedPerSec, r.DispatchedPerSec),
				ratio(ship.EtcdProposalsPerSec, r.EtcdProposalsPerSec),
				ship.EtcdCmdsPerEntry)
		}
	}
	t.Caption = strings.TrimSpace(caption)
	return t
}
