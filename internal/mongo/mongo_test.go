package mongo

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestInsertAssignsID(t *testing.T) {
	db := NewDB()
	jobs := db.C("jobs")
	id, err := jobs.Insert(Doc{"user": "alice"})
	if err != nil {
		t.Fatal(err)
	}
	if id == "" {
		t.Fatal("empty id")
	}
	d, err := jobs.FindOne(Filter{"_id": id})
	if err != nil {
		t.Fatal(err)
	}
	if d["user"] != "alice" {
		t.Fatalf("doc = %v", d)
	}
}

func TestInsertDuplicateIDFails(t *testing.T) {
	db := NewDB()
	c := db.C("jobs")
	if _, err := c.Insert(Doc{"_id": "j1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(Doc{"_id": "j1"}); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("err = %v, want ErrDuplicateID", err)
	}
}

func TestFilterOperators(t *testing.T) {
	db := NewDB()
	c := db.C("jobs")
	for i := 0; i < 10; i++ {
		if _, err := c.Insert(Doc{"_id": fmt.Sprintf("j%d", i), "gpus": i, "user": fmt.Sprintf("u%d", i%2)}); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		name string
		f    Filter
		want int
	}{
		{"eq", Filter{"gpus": 3}, 1},
		{"gt", Filter{"gpus": Gt(6)}, 3},
		{"gte", Filter{"gpus": Gte(6)}, 4},
		{"lt", Filter{"gpus": Lt(2)}, 2},
		{"lte", Filter{"gpus": Lte(2)}, 3},
		{"ne", Filter{"user": Ne("u0")}, 5},
		{"in", Filter{"gpus": In(1, 3, 5, 99)}, 3},
		{"combined", Filter{"user": "u0", "gpus": Gte(4)}, 3},
		{"exists-true", Filter{"gpus": Exists(true)}, 10},
		{"exists-false", Filter{"missing": Exists(false)}, 10},
		{"no-match", Filter{"gpus": 42}, 0},
	}
	for _, tc := range cases {
		if got := c.Count(tc.f); got != tc.want {
			t.Errorf("%s: count = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestNestedFieldPaths(t *testing.T) {
	db := NewDB()
	c := db.C("jobs")
	if _, err := c.Insert(Doc{"_id": "j1", "status": Doc{"phase": "RUNNING", "retries": 2}}); err != nil {
		t.Fatal(err)
	}
	if n := c.Count(Filter{"status.phase": "RUNNING"}); n != 1 {
		t.Fatalf("nested eq count = %d", n)
	}
	if err := c.UpdateOne(Filter{"_id": "j1"}, Update{Set: Doc{"status.phase": "FAILED"}}); err != nil {
		t.Fatal(err)
	}
	d, err := c.FindOne(Filter{"_id": "j1"})
	if err != nil {
		t.Fatal(err)
	}
	v, ok := lookupPath(d, "status.phase")
	if !ok || v != "FAILED" {
		t.Fatalf("status.phase = %v", v)
	}
}

func TestUpdateOperators(t *testing.T) {
	db := NewDB()
	c := db.C("jobs")
	if _, err := c.Insert(Doc{"_id": "j1", "retries": 0, "history": []any{}}); err != nil {
		t.Fatal(err)
	}
	if err := c.UpdateOne(Filter{"_id": "j1"}, Update{
		Inc:  map[string]float64{"retries": 1},
		Push: map[string]any{"history": "PENDING"},
		Set:  Doc{"user": "bob"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.UpdateOne(Filter{"_id": "j1"}, Update{
		Inc:  map[string]float64{"retries": 1},
		Push: map[string]any{"history": "RUNNING"},
	}); err != nil {
		t.Fatal(err)
	}
	d, err := c.FindOne(Filter{"_id": "j1"})
	if err != nil {
		t.Fatal(err)
	}
	if r, _ := toFloat(d["retries"]); r != 2 {
		t.Fatalf("retries = %v", d["retries"])
	}
	hist, _ := d["history"].([]any)
	if len(hist) != 2 || hist[0] != "PENDING" || hist[1] != "RUNNING" {
		t.Fatalf("history = %v", hist)
	}
	if d["user"] != "bob" {
		t.Fatalf("user = %v", d["user"])
	}
	if err := c.UpdateOne(Filter{"_id": "j1"}, Update{Unset: []string{"user"}}); err != nil {
		t.Fatal(err)
	}
	d, _ = c.FindOne(Filter{"_id": "j1"})
	if _, ok := d["user"]; ok {
		t.Fatal("unset did not remove field")
	}
}

func TestUpdateCannotChangeID(t *testing.T) {
	db := NewDB()
	c := db.C("jobs")
	if _, err := c.Insert(Doc{"_id": "j1"}); err != nil {
		t.Fatal(err)
	}
	if err := c.UpdateOne(Filter{"_id": "j1"}, Update{Set: Doc{"_id": "evil"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FindOne(Filter{"_id": "j1"}); err != nil {
		t.Fatal("document lost its _id")
	}
}

func TestUpsert(t *testing.T) {
	db := NewDB()
	c := db.C("quota")
	if err := c.Upsert(Filter{"user": "alice"}, Update{Set: Doc{"gpus": 4}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Upsert(Filter{"user": "alice"}, Update{Set: Doc{"gpus": 8}}); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
	d, _ := c.FindOne(Filter{"user": "alice"})
	if g, _ := toFloat(d["gpus"]); g != 8 {
		t.Fatalf("gpus = %v", d["gpus"])
	}
}

func TestFindSortLimit(t *testing.T) {
	db := NewDB()
	c := db.C("jobs")
	for i := 0; i < 5; i++ {
		if _, err := c.Insert(Doc{"_id": fmt.Sprintf("j%d", i), "submitted": 100 - i}); err != nil {
			t.Fatal(err)
		}
	}
	docs := c.Find(Filter{}, FindOpts{SortBy: "submitted", Limit: 3})
	if len(docs) != 3 {
		t.Fatalf("len = %d", len(docs))
	}
	if docs[0]["_id"] != "j4" {
		t.Fatalf("first = %v, want j4 (smallest submitted)", docs[0]["_id"])
	}
	docs = c.Find(Filter{}, FindOpts{SortBy: "submitted", Desc: true, Limit: 1})
	if docs[0]["_id"] != "j0" {
		t.Fatalf("desc first = %v, want j0", docs[0]["_id"])
	}
}

func TestDelete(t *testing.T) {
	db := NewDB()
	c := db.C("jobs")
	for i := 0; i < 6; i++ {
		if _, err := c.Insert(Doc{"_id": fmt.Sprintf("j%d", i), "user": fmt.Sprintf("u%d", i%2)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.DeleteOne(Filter{"_id": "j0"}); err != nil {
		t.Fatal(err)
	}
	if n := c.DeleteMany(Filter{"user": "u1"}); n != 3 {
		t.Fatalf("deleted %d, want 3", n)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if err := c.DeleteOne(Filter{"_id": "nope"}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestIndexEqualityMatchesScan(t *testing.T) {
	db := NewDB()
	c := db.C("jobs")
	c.EnsureIndex("user")
	for i := 0; i < 100; i++ {
		if _, err := c.Insert(Doc{"user": fmt.Sprintf("u%d", i%7), "n": i}); err != nil {
			t.Fatal(err)
		}
	}
	for u := 0; u < 7; u++ {
		f := Filter{"user": fmt.Sprintf("u%d", u)}
		want := 0
		for _, d := range c.Find(Filter{}, FindOpts{}) {
			if f.Matches(d) {
				want++
			}
		}
		if got := c.Count(f); got != want {
			t.Fatalf("indexed count(u%d) = %d, want %d", u, got, want)
		}
	}
	// Index must track updates and deletes.
	if _, err := c.UpdateMany(Filter{"user": "u0"}, Update{Set: Doc{"user": "u1"}}); err != nil {
		t.Fatal(err)
	}
	if got := c.Count(Filter{"user": "u0"}); got != 0 {
		t.Fatalf("count(u0) after reassign = %d", got)
	}
	c.DeleteMany(Filter{"user": "u1"})
	if got := c.Count(Filter{"user": "u1"}); got != 0 {
		t.Fatalf("count(u1) after delete = %d", got)
	}
}

func TestCloneIsolation(t *testing.T) {
	db := NewDB()
	c := db.C("jobs")
	if _, err := c.Insert(Doc{"_id": "j1", "cfg": Doc{"gpus": 2}}); err != nil {
		t.Fatal(err)
	}
	// Returned docs are copy-on-write views: top-level assignment is
	// free, nested mutation requires DeepClone (the documented rules).
	d, _ := c.FindOne(Filter{"_id": "j1"})
	d["status"] = "FAILED" // top-level: never visible to the store
	mine := d.DeepClone()
	cfg, _ := asDoc(mine["cfg"])
	cfg["gpus"] = 99 // nested mutation on the deep copy
	d2, _ := c.FindOne(Filter{"_id": "j1"})
	cfg2, _ := asDoc(d2["cfg"])
	if g, _ := toFloat(cfg2["gpus"]); g != 2 {
		t.Fatal("stored document mutated through DeepClone")
	}
	if _, ok := d2["status"]; ok {
		t.Fatal("stored document grew a field from a view's top-level write")
	}
}

// TestCOWViewImmuneToLaterUpdates pins the copy-on-write invariant: a
// view taken before an update never observes it, even though nested
// containers are shared — updates path-copy what they touch and
// history pushes append beyond every handed-out length.
func TestCOWViewImmuneToLaterUpdates(t *testing.T) {
	db := NewDB()
	c := db.C("jobs")
	if _, err := c.Insert(Doc{
		"_id": "j1", "status": "PENDING",
		"meta":    Doc{"user": "alice", "cfg": Doc{"gpus": 2}},
		"history": []any{Doc{"status": "PENDING"}},
	}); err != nil {
		t.Fatal(err)
	}
	before, _ := c.FindOne(Filter{"_id": "j1"})
	for i := 0; i < 32; i++ {
		if err := c.UpdateOne(Filter{"_id": "j1"}, Update{
			Set:  Doc{"status": "PROCESSING", "meta.cfg.gpus": 4 + i},
			Push: map[string]any{"history": Doc{"status": "PROCESSING", "i": i}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if s, _ := before["status"].(string); s != "PENDING" {
		t.Fatalf("view status = %q, want PENDING", s)
	}
	meta, _ := asDoc(before["meta"])
	cfg, _ := asDoc(meta["cfg"])
	if g, _ := toFloat(cfg["gpus"]); g != 2 {
		t.Fatalf("view nested gpus = %v, want 2", cfg["gpus"])
	}
	hist, _ := before["history"].([]any)
	if len(hist) != 1 {
		t.Fatalf("view history length = %d, want 1", len(hist))
	}
	after, _ := c.FindOne(Filter{"_id": "j1"})
	if hist2, _ := after["history"].([]any); len(hist2) != 33 {
		t.Fatalf("stored history length = %d, want 33", len(hist2))
	}
}

// TestCloneAllocBudgetWithLongHistory pins the tentpole read-path
// property: cloning a job document with a 1000-entry status history is
// O(top-level fields), not O(history). The deep-copy equivalent costs
// thousands of allocations.
func TestCloneAllocBudgetWithLongHistory(t *testing.T) {
	d := Doc{"_id": "j1", "status": "PROCESSING", "user": "alice"}
	hist := make([]any, 1000)
	for i := range hist {
		hist[i] = Doc{"status": "PROCESSING", "time": "t", "message": "m"}
	}
	d["history"] = hist
	var sink Doc
	allocs := testing.AllocsPerRun(100, func() {
		sink = d.Clone()
	})
	_ = sink
	if allocs > 4 {
		t.Fatalf("Clone allocations = %.1f, budget 4 (O(1)-ish); deep copy would be O(history)", allocs)
	}
	deep := testing.AllocsPerRun(10, func() {
		sink = d.DeepClone()
	})
	if deep < 1000 {
		t.Fatalf("DeepClone allocations = %.1f; expected O(history) — is the guard measuring the right thing?", deep)
	}
}

// TestStatusAppendAllocsFlat pins the write-path half: appending to a
// long status history (read + push + oplog) must not re-copy the
// history, so its cost stays flat as the history grows.
func TestStatusAppendAllocsFlat(t *testing.T) {
	db := NewDB()
	c := db.C("jobs")
	seed := func(id string, n int) {
		hist := make([]any, n)
		for i := range hist {
			hist[i] = Doc{"status": "S", "i": i}
		}
		if _, err := c.Insert(Doc{"_id": id, "status": "S", "history": hist}); err != nil {
			t.Fatal(err)
		}
	}
	seed("short", 4)
	seed("long", 4096)
	appendOnce := func(id string) func() {
		return func() {
			if err := c.UpdateOne(Filter{"_id": id}, Update{
				Push: map[string]any{"history": Doc{"status": "S"}},
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	short := testing.AllocsPerRun(200, appendOnce("short"))
	long := testing.AllocsPerRun(200, appendOnce("long"))
	if long > short*4+64 {
		t.Fatalf("status append allocs grew with history: short=%.0f long=%.0f", short, long)
	}
}

func TestSecondaryReplication(t *testing.T) {
	db := NewDB()
	c := db.C("jobs")
	if _, err := c.Insert(Doc{"_id": "pre", "n": 1}); err != nil {
		t.Fatal(err)
	}
	sec := db.StartSecondary()
	defer sec.Stop()
	// Backlog replicated.
	if sec.C("jobs").Len() != 1 {
		t.Fatalf("secondary missing backlog")
	}
	if _, err := c.Insert(Doc{"_id": "post", "n": 2}); err != nil {
		t.Fatal(err)
	}
	if err := c.UpdateOne(Filter{"_id": "pre"}, Update{Set: Doc{"n": 10}}); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteOne(Filter{"_id": "post"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if sec.Applied() == db.OplogLen() {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if sec.C("jobs").Len() != 1 {
		t.Fatalf("secondary len = %d, want 1", sec.C("jobs").Len())
	}
	d, err := sec.C("jobs").FindOne(Filter{"_id": "pre"})
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := toFloat(d["n"]); n != 10 {
		t.Fatalf("secondary n = %v, want 10", d["n"])
	}
}

// TestChangeStreamDeliversInOplogOrder pins the change-feed contract:
// backlog then live writes of the watched collection arrive with
// strictly increasing Seq, full post-images for inserts/updates, and
// other collections filtered out.
func TestChangeStreamDeliversInOplogOrder(t *testing.T) {
	db := NewDB()
	jobs := db.C("jobs")
	if _, err := jobs.Insert(Doc{"_id": "j1", "status": "PENDING"}); err != nil {
		t.Fatal(err)
	}
	cs := db.Watch("jobs", 0)
	defer cs.Cancel()
	if _, err := db.C("other").Insert(Doc{"_id": "x"}); err != nil {
		t.Fatal(err)
	}
	if err := jobs.UpdateOne(Filter{"_id": "j1"}, Update{Set: Doc{"status": "DEPLOYING"}}); err != nil {
		t.Fatal(err)
	}
	if err := jobs.DeleteOne(Filter{"_id": "j1"}); err != nil {
		t.Fatal(err)
	}
	want := []struct {
		kind   string
		status string
	}{
		{"insert", "PENDING"}, // backlog
		{"update", "DEPLOYING"},
		{"delete", ""},
	}
	var lastSeq uint64
	for i, w := range want {
		select {
		case ev := <-cs.Events():
			if ev.Kind != w.kind || ev.Coll != "jobs" || ev.ID != "j1" {
				t.Fatalf("event %d = %+v, want %s on jobs/j1", i, ev, w.kind)
			}
			if ev.Seq <= lastSeq {
				t.Fatalf("event %d Seq %d not increasing past %d", i, ev.Seq, lastSeq)
			}
			lastSeq = ev.Seq
			if w.status != "" {
				if got, _ := ev.Doc["status"].(string); got != w.status {
					t.Fatalf("event %d post-image status = %q, want %q", i, got, w.status)
				}
			} else if ev.Doc != nil {
				t.Fatalf("delete event carried a document: %+v", ev)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("change stream stalled before event %d", i)
		}
	}
	// The "other" collection's write must have been filtered, reflected
	// in a Seq jump the consumer can observe.
	if lastSeq != db.OplogLen() {
		t.Fatalf("lastSeq = %d, want oplog head %d", lastSeq, db.OplogLen())
	}
}

// TestChangeStreamResumesFromSeq: a stream opened at a prior resume
// token replays only the ops after it.
func TestChangeStreamResumesFromSeq(t *testing.T) {
	db := NewDB()
	jobs := db.C("jobs")
	if _, err := jobs.Insert(Doc{"_id": "a"}); err != nil {
		t.Fatal(err)
	}
	mark := db.OplogLen()
	if _, err := jobs.Insert(Doc{"_id": "b"}); err != nil {
		t.Fatal(err)
	}
	cs := db.Watch("jobs", mark)
	defer cs.Cancel()
	select {
	case ev := <-cs.Events():
		if ev.ID != "b" || ev.Seq != mark+1 {
			t.Fatalf("resumed event = %+v, want insert of b at seq %d", ev, mark+1)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("resumed stream delivered nothing")
	}
	select {
	case ev := <-cs.Events():
		t.Fatalf("resumed stream replayed pre-token op: %+v", ev)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestConcurrentAccess(t *testing.T) {
	db := NewDB()
	c := db.C("jobs")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := fmt.Sprintf("w%d-%d", w, i)
				if _, err := c.Insert(Doc{"_id": id, "w": w}); err != nil {
					t.Error(err)
					return
				}
				c.Find(Filter{"w": w}, FindOpts{})
				if err := c.UpdateOne(Filter{"_id": id}, Update{Inc: map[string]float64{"n": 1}}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() != 400 {
		t.Fatalf("len = %d, want 400", c.Len())
	}
}

// Property: Find with an equality filter returns exactly the documents a
// naive scan would.
func TestFindMatchesNaiveScanProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		db := NewDB()
		c := db.C("x")
		c.EnsureIndex("v")
		for i, v := range vals {
			if _, err := c.Insert(Doc{"_id": fmt.Sprintf("d%d", i), "v": int(v % 8)}); err != nil {
				return false
			}
		}
		for target := 0; target < 8; target++ {
			want := 0
			for _, v := range vals {
				if int(v%8) == target {
					want++
				}
			}
			if c.Count(Filter{"v": target}) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestCompiledFilterMatchesInterpreted pins that the compiled form the
// query engine runs (Filter.compile) agrees with the interpreted
// Filter.Matches for every operator, nested paths, and missing fields.
func TestCompiledFilterMatchesInterpreted(t *testing.T) {
	docs := []Doc{
		{"_id": "a", "gpus": 2, "user": "u0", "status": Doc{"phase": "RUNNING", "retries": 2}},
		{"_id": "b", "gpus": 7, "user": "u1", "status": Doc{"phase": "FAILED"}},
		{"_id": "c", "user": "u0"},
		{"_id": "d", "gpus": "not-a-number"},
	}
	filters := []Filter{
		{"gpus": 2},
		{"gpus": Gt(1)},
		{"gpus": Gte(7)},
		{"gpus": Lt(3)},
		{"gpus": Lte(2)},
		{"gpus": Ne(7)},
		{"gpus": In(1, 2, 3)},
		{"gpus": Exists(true)},
		{"gpus": Exists(false)},
		{"status.phase": "RUNNING"},
		{"status.phase": Ne("FAILED")},
		{"status.retries": Gt(1), "user": "u0"},
		{"missing.deep.path": Exists(false)},
		{"gpus": Op{Kind: OpKind(99), Value: 1}}, // unknown operator
	}
	for _, f := range filters {
		cf := f.compile()
		for _, d := range docs {
			if got, want := cf.matches(d), f.Matches(d); got != want {
				t.Errorf("filter %v on doc %v: compiled=%v interpreted=%v", f, d, got, want)
			}
		}
	}
}
