package objstore

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/ffdl/ffdl/internal/sim"
)

func newSvc() *Service {
	return New(Config{})
}

func TestPutGetRoundTrip(t *testing.T) {
	s := newSvc()
	if err := s.CreateBucket("training"); err != nil {
		t.Fatal(err)
	}
	data := []byte("imagenet-shard-0001")
	if err := s.Put("training", "data/shard1", data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("training", "data/shard1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
}

func TestBucketLifecycle(t *testing.T) {
	s := newSvc()
	if err := s.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateBucket("b"); !errors.Is(err, ErrBucketExists) {
		t.Fatalf("err = %v", err)
	}
	if err := s.Put("missing", "k", nil); !errors.Is(err, ErrNoBucket) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.Get("b", "nope"); !errors.Is(err, ErrNoObject) {
		t.Fatalf("err = %v", err)
	}
	if err := s.DeleteBucket("b"); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteBucket("b"); !errors.Is(err, ErrNoBucket) {
		t.Fatalf("err = %v", err)
	}
}

func TestGetRange(t *testing.T) {
	s := newSvc()
	s.EnsureBucket("b")
	if err := s.Put("b", "k", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetRange("b", "k", 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "234" {
		t.Fatalf("range = %q", got)
	}
	got, err = s.GetRange("b", "k", 7, -1)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "789" {
		t.Fatalf("open range = %q", got)
	}
	if _, err := s.GetRange("b", "k", 11, 1); err == nil {
		t.Fatal("out-of-range read succeeded")
	}
}

func TestListSortedByPrefix(t *testing.T) {
	s := newSvc()
	s.EnsureBucket("ckpt")
	for _, k := range []string{"job1/ckpt-3", "job1/ckpt-1", "job1/ckpt-2", "job2/ckpt-1"} {
		if err := s.Put("ckpt", k, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	objs, err := s.List("ckpt", "job1/")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 3 {
		t.Fatalf("len = %d", len(objs))
	}
	// Latest checkpoint discovery = last in sorted order.
	if objs[len(objs)-1].Key != "job1/ckpt-3" {
		t.Fatalf("latest = %s", objs[len(objs)-1].Key)
	}
}

func TestMultipartAssembly(t *testing.T) {
	s := newSvc()
	s.EnsureBucket("results")
	id, err := s.InitiateMultipart("results", "model.bin")
	if err != nil {
		t.Fatal(err)
	}
	// Upload out of order.
	if err := s.UploadPart(id, 2, []byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := s.UploadPart(id, 1, []byte("hello-")); err != nil {
		t.Fatal(err)
	}
	if err := s.CompleteMultipart(id); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("results", "model.bin")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello-world" {
		t.Fatalf("assembled = %q", got)
	}
	if err := s.CompleteMultipart(id); !errors.Is(err, ErrNoUpload) {
		t.Fatalf("double complete err = %v", err)
	}
}

func TestReaderStreams(t *testing.T) {
	s := newSvc()
	s.EnsureBucket("b")
	data := bytes.Repeat([]byte("abcdefgh"), 1024)
	if err := s.Put("b", "big", data); err != nil {
		t.Fatal(err)
	}
	r, err := s.NewReader("b", "big")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("streamed data mismatch")
	}
}

func TestBandwidthContention(t *testing.T) {
	clock := sim.NewFakeClock(time.Unix(0, 0))
	lim := NewBandwidthLimiter(clock, 100) // 100 B/s aggregate
	// Solo transfer of 100 bytes: 1s.
	if d := lim.Begin(100); d != time.Second {
		t.Fatalf("solo duration = %v, want 1s", d)
	}
	// Second concurrent transfer sees half bandwidth: 2s for 100 bytes.
	if d := lim.Begin(100); d != 2*time.Second {
		t.Fatalf("contended duration = %v, want 2s", d)
	}
	lim.End()
	lim.End()
	if lim.Peak() != 2 {
		t.Fatalf("peak = %d", lim.Peak())
	}
	if lim.Active() != 0 {
		t.Fatalf("active = %d", lim.Active())
	}
}

func TestMountCacheHitsAcrossEpochs(t *testing.T) {
	s := newSvc()
	s.EnsureBucket("data")
	dataset := bytes.Repeat([]byte{7}, 10<<20) // 10 MiB
	if err := s.Put("data", "train.rec", dataset); err != nil {
		t.Fatal(err)
	}
	m := s.NewMount("data", 64<<20)
	// Epoch 1: all misses.
	got, err := m.ReadAll("train.rec")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, dataset) {
		t.Fatal("epoch 1 data mismatch")
	}
	st1 := m.Stats()
	if st1.Misses == 0 {
		t.Fatalf("epoch1 stats = %+v, expected backend chunk fetches", st1)
	}
	if st1.BytesFetched != int64(len(dataset)) {
		t.Fatalf("epoch1 fetched %d bytes, want %d", st1.BytesFetched, len(dataset))
	}
	// Epoch 2: all hits, no new backend bytes.
	if _, err := m.ReadAll("train.rec"); err != nil {
		t.Fatal(err)
	}
	st2 := m.Stats()
	if st2.Misses != st1.Misses {
		t.Fatalf("epoch 2 fetched from backend: %+v", st2)
	}
	if st2.Hits == 0 {
		t.Fatal("epoch 2 recorded no hits")
	}
	if st2.BytesFetched != st1.BytesFetched {
		t.Fatal("epoch 2 refetched bytes")
	}
}

func TestMountCacheEviction(t *testing.T) {
	s := newSvc()
	s.EnsureBucket("data")
	if err := s.Put("data", "a", bytes.Repeat([]byte{1}, 8<<20)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("data", "b", bytes.Repeat([]byte{2}, 8<<20)); err != nil {
		t.Fatal(err)
	}
	m := s.NewMount("data", 8<<20) // holds only one file's chunks
	if _, err := m.ReadAll("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadAll("b"); err != nil {
		t.Fatal(err)
	}
	// Re-reading a must miss (evicted by b).
	pre := m.Stats()
	if _, err := m.ReadAll("a"); err != nil {
		t.Fatal(err)
	}
	post := m.Stats()
	if post.Misses == pre.Misses {
		t.Fatal("expected evictions to force re-fetch")
	}
}

func TestSharedCacheAcrossMounts(t *testing.T) {
	s := newSvc()
	s.EnsureBucket("data")
	if err := s.Put("data", "shared.rec", bytes.Repeat([]byte{3}, 6<<20)); err != nil {
		t.Fatal(err)
	}
	cache := NewChunkCache(64 << 20)
	m1 := s.NewMountWith("data", cache)
	m2 := s.NewMountWith("data", cache)
	if _, err := m1.ReadAll("shared.rec"); err != nil {
		t.Fatal(err)
	}
	// Second job's mount reads the same dataset: all hits.
	if _, err := m2.ReadAll("shared.rec"); err != nil {
		t.Fatal(err)
	}
	st := m2.Stats()
	if st.Hits == 0 {
		t.Fatal("shared cache produced no cross-job hits")
	}
	if st.BytesFetched > 6<<20 {
		t.Fatalf("fetched %d bytes, want <= one dataset", st.BytesFetched)
	}
}

func TestConcurrentPutsAndGets(t *testing.T) {
	s := newSvc()
	s.EnsureBucket("b")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := string(rune('a' + w))
			for i := 0; i < 30; i++ {
				if err := s.Put("b", key, []byte{byte(i)}); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Get("b", key); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// Property: ReadAt through the mount equals direct byte-slicing of the
// object for arbitrary offsets.
func TestMountReadAtMatchesSliceProperty(t *testing.T) {
	s := newSvc()
	s.EnsureBucket("b")
	data := make([]byte, 9<<20)
	for i := range data {
		data[i] = byte(i * 31)
	}
	if err := s.Put("b", "obj", data); err != nil {
		t.Fatal(err)
	}
	m := s.NewMount("b", 32<<20)
	f, err := m.Open("obj")
	if err != nil {
		t.Fatal(err)
	}
	check := func(off uint32, n uint16) bool {
		o := int64(off) % int64(len(data))
		buf := make([]byte, int(n)%8192+1)
		got, err := f.ReadAt(buf, o)
		if err != nil && !errors.Is(err, io.EOF) {
			return false
		}
		return bytes.Equal(buf[:got], data[o:o+int64(got)])
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
