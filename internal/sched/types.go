// Package sched implements FfDL's scheduling policies over an abstract
// cluster model so the same code drives both the live kube-like
// orchestrator (internal/kube) and the discrete-event experiments
// (internal/expt):
//
//   - Spread — the Kubernetes default placement the paper's first
//     prototype used (§3.4): prefer the least-allocated node.
//   - Pack — FfDL's replacement: cram a job's pods onto as few machines
//     as possible, minimizing GPU fragmentation.
//   - Gang scheduling with the Biased Sampling Algorithm (BSA, §3.5):
//     place all pods of a job atomically or queue the whole job.
//   - FCFS dispatch with largest-gang-first tie-break and no GPU
//     overcommitment (§3.6), plus quota-based admission control with
//     preemption of free-tier and over-quota jobs.
package sched

import (
	"fmt"
	"sort"
)

// Resources is a multi-dimensional resource vector.
type Resources struct {
	// MilliCPU is CPU in thousandths of a core.
	MilliCPU int64
	// MemoryMB is RAM in mebibytes.
	MemoryMB int64
	// GPUs is the number of whole GPUs (no space-sharing; §3.6).
	GPUs int
}

// Add returns r + o.
func (r Resources) Add(o Resources) Resources {
	return Resources{
		MilliCPU: r.MilliCPU + o.MilliCPU,
		MemoryMB: r.MemoryMB + o.MemoryMB,
		GPUs:     r.GPUs + o.GPUs,
	}
}

// Sub returns r - o.
func (r Resources) Sub(o Resources) Resources {
	return Resources{
		MilliCPU: r.MilliCPU - o.MilliCPU,
		MemoryMB: r.MemoryMB - o.MemoryMB,
		GPUs:     r.GPUs - o.GPUs,
	}
}

// Fits reports whether a demand of o fits within r.
func (r Resources) Fits(o Resources) bool {
	return o.MilliCPU <= r.MilliCPU && o.MemoryMB <= r.MemoryMB && o.GPUs <= r.GPUs
}

// IsZero reports an all-zero vector.
func (r Resources) IsZero() bool {
	return r.MilliCPU == 0 && r.MemoryMB == 0 && r.GPUs == 0
}

// String implements fmt.Stringer.
func (r Resources) String() string {
	return fmt.Sprintf("cpu=%dm mem=%dMB gpu=%d", r.MilliCPU, r.MemoryMB, r.GPUs)
}

// Node is the scheduler's view of one machine.
type Node struct {
	// Name identifies the node.
	Name string
	// GPUType is the accelerator model ("K80", "P100", "V100"); pods may
	// constrain placement to a type, as FfDL jobs request specific GPUs.
	GPUType string
	// Capacity is the node's total allocatable resources.
	Capacity Resources
	// Free is what remains after current assignments.
	Free Resources
	// Unschedulable marks cordoned or NotReady nodes.
	Unschedulable bool
	// Pods counts pods currently assigned, for spread scoring.
	Pods int
}

// Clone copies the node.
func (n *Node) Clone() *Node {
	c := *n
	return &c
}

// PodSpec is one schedulable unit (a learner, parameter server or helper
// pod).
type PodSpec struct {
	// Name identifies the pod.
	Name string
	// JobID ties the pod to its DL job (its gang).
	JobID string
	// Demand is the pod's resource request.
	Demand Resources
	// GPUType constrains placement to nodes with this accelerator; empty
	// means any.
	GPUType string
}

// Gang is the unit of atomic placement: all pods of one DL job.
type Gang struct {
	// JobID names the job.
	JobID string
	// Pods lists every pod that must be co-scheduled.
	Pods []PodSpec
	// Priority orders preemption; higher is more important.
	Priority int
	// User owns the job, for quota accounting.
	User string
}

// TotalDemand sums the gang's resource requests.
func (g *Gang) TotalDemand() Resources {
	var total Resources
	for _, p := range g.Pods {
		total = total.Add(p.Demand)
	}
	return total
}

// GPUDemand returns the gang's total GPU request.
func (g *Gang) GPUDemand() int { return g.TotalDemand().GPUs }

// Assignment binds one pod to one node.
type Assignment struct {
	Pod  string
	Node string
}

// FailureReason mirrors the Kubernetes scheduler failure messages the
// paper catalogs in Table 8.
type FailureReason string

// Scheduling failure reasons (Table 8 vocabulary).
const (
	ReasonNoNodesAvailable FailureReason = "No nodes available that match all of the predicates"
	ReasonInsufficientGPU  FailureReason = "Insufficient alpha.kubernetes.io/nvidia-gpu"
	ReasonNodeSelector     FailureReason = "MatchNodeSelector"
	ReasonUnschedulable    FailureReason = "NodeUnschedulable"
)

// Failure explains why placement did not happen.
type Failure struct {
	Reason  FailureReason
	Message string
}

// Error implements error.
func (f *Failure) Error() string {
	return fmt.Sprintf("sched: %s: %s", f.Reason, f.Message)
}

// ClusterState is a mutable view of the cluster the policies place
// against. Policies mutate Free/Pods on assignment (via Assign/Release)
// so multi-pod placements account for earlier pods of the same gang.
//
// The state carries a capacity index — per-GPU-type slices of the
// schedulable nodes sorted by free GPU count — kept incrementally up to
// date by every mutation. All placement queries (FeasibleNodes,
// Candidates, BestPacked) run against the index, so their cost scales
// with the number of GPU-feasible candidates rather than cluster size.
// ExaminedNodes counts the nodes those queries actually inspected,
// which is the scheduler's primary scalability metric.
//
// For speculative placement (gang all-or-nothing attempts, BSA
// samples), Checkpoint/Rollback undo-log a sequence of Assign/Release
// calls in place; this replaces whole-state cloning, which at thousands
// of nodes costs more than the placement itself.
type ClusterState struct {
	Nodes []*Node

	index     map[string]*Node
	types     map[string]*typeIndex
	typeNames []string // sorted keys of types, for deterministic iteration

	unschedulable int // nodes currently excluded from the index

	examined  uint64
	undo      []undoEntry
	specDepth int
}

// undoEntry records one Assign (or Release) made under a checkpoint.
type undoEntry struct {
	node     *Node
	demand   Resources
	assigned bool
}

// NewClusterState builds a state over cloned nodes.
func NewClusterState(nodes []*Node) *ClusterState {
	cs := &ClusterState{
		index: make(map[string]*Node, len(nodes)),
		types: make(map[string]*typeIndex),
	}
	for _, n := range nodes {
		cs.AddNode(n)
	}
	return cs
}

// Node returns a node by name, or nil.
func (cs *ClusterState) Node(name string) *Node { return cs.index[name] }

// AddNode clones the node into the state and indexes it. Adding a name
// that already exists is a no-op.
func (cs *ClusterState) AddNode(n *Node) {
	if _, ok := cs.index[n.Name]; ok {
		return
	}
	c := n.Clone()
	cs.Nodes = append(cs.Nodes, c)
	cs.index[c.Name] = c
	if c.Unschedulable {
		cs.unschedulable++
		// Still record the type so maxCapGPUs bounds stay valid if the
		// node is later uncordoned.
		cs.typeFor(c.GPUType)
		return
	}
	cs.typeFor(c.GPUType).insert(c)
}

// RemoveNode drops a node from the state entirely (machine
// decommissioned). Unknown names are ignored.
func (cs *ClusterState) RemoveNode(name string) {
	n, ok := cs.index[name]
	if !ok {
		return
	}
	delete(cs.index, name)
	if n.Unschedulable {
		cs.unschedulable--
	} else {
		cs.types[n.GPUType].remove(n)
	}
	for i, x := range cs.Nodes {
		if x == n {
			cs.Nodes = append(cs.Nodes[:i], cs.Nodes[i+1:]...)
			break
		}
	}
}

// SetSchedulable moves a node in or out of the placement index
// (cordon/uncordon, Ready/NotReady transitions).
func (cs *ClusterState) SetSchedulable(name string, schedulable bool) {
	n, ok := cs.index[name]
	if !ok || n.Unschedulable == !schedulable {
		return
	}
	if schedulable {
		n.Unschedulable = false
		cs.unschedulable--
		cs.typeFor(n.GPUType).insert(n)
	} else {
		cs.types[n.GPUType].remove(n)
		n.Unschedulable = true
		cs.unschedulable++
	}
}

// SetCapacity reconfigures a node's total resources, adjusting its free
// capacity by the same delta (allocations are preserved).
func (cs *ClusterState) SetCapacity(name string, capacity Resources) {
	n, ok := cs.index[name]
	if !ok || n.Capacity == capacity {
		return
	}
	delta := capacity.Sub(n.Capacity)
	if n.Unschedulable {
		n.Capacity = capacity
		n.Free = n.Free.Add(delta)
		return
	}
	ti := cs.typeFor(n.GPUType)
	ti.remove(n)
	n.Capacity = capacity
	n.Free = n.Free.Add(delta)
	ti.insert(n)
}

// typeFor returns (creating if needed) the index slice for a GPU type.
func (cs *ClusterState) typeFor(gpuType string) *typeIndex {
	ti, ok := cs.types[gpuType]
	if !ok {
		ti = &typeIndex{}
		cs.types[gpuType] = ti
		cs.typeNames = append(cs.typeNames, gpuType)
		sort.Strings(cs.typeNames)
	}
	return ti
}

// Assign consumes resources for a pod on a node. Unknown nodes are
// ignored (the live scheduler view may briefly lag node removal).
func (cs *ClusterState) Assign(nodeName string, demand Resources) {
	n, ok := cs.index[nodeName]
	if !ok {
		return
	}
	if cs.specDepth > 0 {
		cs.undo = append(cs.undo, undoEntry{node: n, demand: demand, assigned: true})
	}
	cs.applyAssign(n, demand)
}

// Release returns a pod's resources to a node.
func (cs *ClusterState) Release(nodeName string, demand Resources) {
	n, ok := cs.index[nodeName]
	if !ok {
		return
	}
	if cs.specDepth > 0 {
		cs.undo = append(cs.undo, undoEntry{node: n, demand: demand, assigned: false})
	}
	cs.applyRelease(n, demand)
}

func (cs *ClusterState) applyAssign(n *Node, demand Resources) {
	if !n.Unschedulable && !demand.IsZero() {
		ti := cs.types[n.GPUType]
		ti.remove(n)
		n.Free = n.Free.Sub(demand)
		n.Pods++
		ti.insert(n)
		return
	}
	n.Free = n.Free.Sub(demand)
	n.Pods++
}

func (cs *ClusterState) applyRelease(n *Node, demand Resources) {
	if !n.Unschedulable && !demand.IsZero() {
		ti := cs.types[n.GPUType]
		ti.remove(n)
		n.Free = n.Free.Add(demand)
		ti.insert(n)
	} else {
		n.Free = n.Free.Add(demand)
	}
	if n.Pods > 0 {
		n.Pods--
	}
}

// Checkpoint begins a speculative placement: subsequent Assign/Release
// calls are undo-logged until the matching Rollback. Checkpoints nest.
func (cs *ClusterState) Checkpoint() int {
	cs.specDepth++
	return len(cs.undo)
}

// Rollback reverts every Assign/Release made since the matching
// Checkpoint, restoring free capacity and index order exactly.
func (cs *ClusterState) Rollback(mark int) {
	for i := len(cs.undo) - 1; i >= mark; i-- {
		e := cs.undo[i]
		if e.assigned {
			cs.applyRelease(e.node, e.demand)
		} else {
			cs.applyAssign(e.node, e.demand)
		}
	}
	cs.undo = cs.undo[:mark]
	cs.specDepth--
}

// Clone deep-copies the state, for callers that need a long-lived
// scratch copy. Transient speculation should prefer
// Checkpoint/Rollback, which does not rebuild the index.
func (cs *ClusterState) Clone() *ClusterState {
	return NewClusterState(cs.Nodes)
}

// TotalGPUs returns (free, capacity) GPU counts over schedulable nodes.
func (cs *ClusterState) TotalGPUs() (free, capacity int) {
	for _, n := range cs.Nodes {
		if n.Unschedulable {
			continue
		}
		free += n.Free.GPUs
		capacity += n.Capacity.GPUs
	}
	return free, capacity
}

// ExaminedNodes returns the cumulative count of nodes inspected by
// placement queries since construction (or the last TakeExamined).
func (cs *ClusterState) ExaminedNodes() uint64 { return cs.examined }

// TakeExamined returns the examined-node count and resets it, for
// per-pass accounting.
func (cs *ClusterState) TakeExamined() uint64 {
	e := cs.examined
	cs.examined = 0
	return e
}

// eachRelevantType visits the type indexes a pod may place onto, in
// deterministic (sorted) order.
func (cs *ClusterState) eachRelevantType(p *PodSpec, fn func(*typeIndex) bool) {
	if p.GPUType != "" {
		if ti, ok := cs.types[p.GPUType]; ok {
			fn(ti)
		}
		return
	}
	for _, t := range cs.typeNames {
		if !fn(cs.types[t]) {
			return
		}
	}
}

// FeasibleNodes returns the nodes a pod could land on — fullest (fewest
// free GPUs) first within each GPU type — and, when empty, the dominant
// failure reason across nodes (the predicate breakdown the paper
// extracts from FailedScheduling logs).
func (cs *ClusterState) FeasibleNodes(p *PodSpec) ([]*Node, FailureReason) {
	return cs.Candidates(p, 0)
}

// Candidates is FeasibleNodes with an optional per-GPU-type limit:
// limit > 0 stops collecting after that many feasible nodes per type,
// without touching the (emptier) remainder of the index. Sampling
// schedulers use it to bound work per placement step on huge clusters.
func (cs *ClusterState) Candidates(p *PodSpec, limit int) ([]*Node, FailureReason) {
	var out []*Node
	matching, gpuOK := 0, 0
	cs.eachRelevantType(p, func(ti *typeIndex) bool {
		matching += len(ti.ordered)
		i := ti.lowerBound(p.Demand.GPUs)
		gpuOK += len(ti.ordered) - i
		taken := 0
		for ; i < len(ti.ordered); i++ {
			n := ti.ordered[i]
			cs.examined++
			if n.Free.Fits(p.Demand) {
				out = append(out, n)
				taken++
				if limit > 0 && taken >= limit {
					break
				}
			}
		}
		return true
	})
	if len(out) > 0 {
		return out, ""
	}
	return nil, cs.dominantReason(p, matching, gpuOK)
}

// BestPacked returns the pack-preferred feasible node. Each type index
// is ordered by packOrderLess — Pack's total preference — so the first
// feasible node in a type's GPU-feasible suffix is that type's
// optimum, and only the (usually tiny) prefix of CPU/memory-infeasible
// fuller nodes before it is ever examined. Type-agnostic pods compare
// the per-type winners under the same preference.
func (cs *ClusterState) BestPacked(p *PodSpec) (*Node, FailureReason) {
	var best *Node
	matching, gpuOK := 0, 0
	cs.eachRelevantType(p, func(ti *typeIndex) bool {
		matching += len(ti.ordered)
		i := ti.lowerBound(p.Demand.GPUs)
		gpuOK += len(ti.ordered) - i
		for ; i < len(ti.ordered); i++ {
			n := ti.ordered[i]
			cs.examined++
			if !n.Free.Fits(p.Demand) {
				continue
			}
			if best == nil || packOrderLess(n, best) {
				best = n
			}
			break // first feasible node is this type's optimum
		}
		return true
	})
	if best != nil {
		return best, ""
	}
	return nil, cs.dominantReason(p, matching, gpuOK)
}

// dominantReason reconstructs the most common first-failing predicate
// across all nodes from index aggregates, without scanning the cluster:
// per node the predicate order is unschedulable, then GPU-type
// mismatch, then insufficient free GPUs, then CPU/memory (the order the
// Kubernetes scheduler reports them in, Table 8). matching counts
// schedulable nodes of an acceptable GPU type, gpuOK those among them
// with enough free GPUs.
func (cs *ClusterState) dominantReason(p *PodSpec, matching, gpuOK int) FailureReason {
	counts := map[FailureReason]int{}
	if cs.unschedulable > 0 {
		counts[ReasonUnschedulable] = cs.unschedulable
	}
	schedulable := len(cs.Nodes) - cs.unschedulable
	if p.GPUType != "" && schedulable > matching {
		counts[ReasonNodeSelector] = schedulable - matching
	}
	if matching > gpuOK {
		counts[ReasonInsufficientGPU] = matching - gpuOK
	}
	if gpuOK > 0 {
		// Every GPU-feasible candidate was examined and failed Fits.
		counts[ReasonNoNodesAvailable] = gpuOK
	}
	best := ReasonNoNodesAvailable
	bestN := -1
	for r, c := range counts {
		if c > bestN || (c == bestN && r < best) {
			best, bestN = r, c
		}
	}
	return best
}
