package core

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"github.com/ffdl/ffdl/internal/commitlog"
	"github.com/ffdl/ffdl/internal/mongo"
	"github.com/ffdl/ffdl/internal/perf"
	"github.com/ffdl/ffdl/internal/sim"
)

// newTestPlatform boots a small FfDL with 2 nodes x 4 K80 GPUs and a
// seeded dataset.
func newTestPlatform(t *testing.T, mutate func(*Config)) *Platform {
	t.Helper()
	cfg := Config{
		Seed:              42,
		PollInterval:      2 * time.Millisecond,
		RendezvousTimeout: 10 * time.Second,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	p, err := NewPlatform(cfg)
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	t.Cleanup(p.Stop)
	for _, n := range []string{"node0", "node1"} {
		p.AddNode(n, "K80", 4, 32, 256<<10)
	}
	p.Store.EnsureBucket("datasets")
	if err := p.Store.Put("datasets", "mnist/shard-0", bytes.Repeat([]byte{1}, 1<<20)); err != nil {
		t.Fatal(err)
	}
	return p
}

func testManifest() Manifest {
	return Manifest{
		Name: "test-train", User: "alice",
		Framework: perf.Caffe, Model: perf.VGG16,
		Learners: 1, GPUsPerLearner: 1, GPUType: perf.K80,
		BatchSize: 64, Iterations: 30, CheckpointEvery: 10,
		DataBucket: "datasets", DataPrefix: "mnist/",
		Command: "caffe train -solver solver.prototxt",
	}
}

func waitStatus(t *testing.T, c *Client, jobID string, want JobStatus, timeout time.Duration) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	got, err := c.WaitForStatus(ctx, jobID, want, 2*time.Millisecond)
	if err != nil {
		t.Fatalf("waiting for %s: %v", want, err)
	}
	if got != want {
		reply, _ := c.Status(context.Background(), jobID)
		t.Fatalf("job %s reached %s, want %s (history: %+v)", jobID, got, want, reply.History)
	}
}

func TestSingleLearnerJobCompletes(t *testing.T) {
	p := newTestPlatform(t, nil)
	c := p.Client()
	jobID, err := c.Submit(context.Background(), testManifest())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitStatus(t, c, jobID, StatusCompleted, 20*time.Second)

	// Status history must walk the DL-specific states in order.
	reply, err := c.Status(context.Background(), jobID)
	if err != nil {
		t.Fatal(err)
	}
	var seen []JobStatus
	for _, h := range reply.History {
		seen = append(seen, h.Status)
	}
	wantOrder := []JobStatus{StatusPending, StatusDeploying, StatusCompleted}
	idx := 0
	progress := false
	for _, s := range seen {
		if idx < len(wantOrder) && s == wantOrder[idx] {
			idx++
		}
		if s == StatusDownloading || s == StatusProcessing || s == StatusStoring {
			progress = true
		}
	}
	if idx != len(wantOrder) {
		t.Fatalf("history %v missing expected order %v", seen, wantOrder)
	}
	if !progress {
		t.Fatalf("history %v shows no DL-specific progress status", seen)
	}
	// Timestamps are monotone.
	for i := 1; i < len(reply.History); i++ {
		if reply.History[i].Time.Before(reply.History[i-1].Time) {
			t.Fatal("history timestamps not monotone")
		}
	}
	// Model stored in the default results bucket.
	if _, err := p.Store.Get("ffdl-results", jobID+"/model/final.bin"); err != nil {
		t.Fatalf("trained model missing: %v", err)
	}
	// Training logs collected and stored.
	logs, err := c.Logs(context.Background(), jobID)
	if err != nil || len(logs) == 0 {
		t.Fatalf("logs = %d lines, err=%v", len(logs), err)
	}
	if _, err := p.Store.Get("ffdl-results", jobID+"/logs/training.log"); err != nil {
		t.Fatalf("stored logs missing: %v", err)
	}
	// Job's etcd subtree erased after termination (§3.2).
	kvs, _ := p.Etcd.List("jobs/" + jobID + "/")
	if len(kvs) != 0 {
		t.Fatalf("etcd not cleaned: %v", kvs)
	}
	// GPUs released.
	alloc, _ := p.Kube.GPUUtilization()
	if alloc != 0 {
		t.Fatalf("GPUs still allocated: %d", alloc)
	}
}

func TestDistributedJobCompletes(t *testing.T) {
	p := newTestPlatform(t, nil)
	c := p.Client()
	m := testManifest()
	m.Learners = 3
	jobID, err := c.Submit(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, c, jobID, StatusCompleted, 30*time.Second)
	// All three learners logged.
	logs, _ := c.Logs(context.Background(), jobID)
	learnersSeen := map[int]bool{}
	for _, l := range logs {
		learnersSeen[l.Learner] = true
	}
	for i := 0; i < 3; i++ {
		if !learnersSeen[i] {
			t.Fatalf("no logs from learner %d", i)
		}
	}
}

func TestJobQueuedWhenClusterFull(t *testing.T) {
	p := newTestPlatform(t, func(c *Config) {
		c.TimeCompression = 1e-4 // first job must actually hold the GPUs
	})
	c := p.Client()
	m := testManifest()
	m.Learners = 2
	m.GPUsPerLearner = 4 // consumes the whole cluster
	m.Iterations = 2000
	first, err := c.Submit(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, c, first, StatusProcessing, 20*time.Second)

	second, err := c.Submit(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	// Second job must sit in DEPLOYING with zero learners bound (fully
	// queued, not partially placed).
	time.Sleep(300 * time.Millisecond)
	reply, err := c.Status(context.Background(), second)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Status != StatusDeploying {
		t.Fatalf("second job status = %s, want DEPLOYING (queued)", reply.Status)
	}
	for _, pod := range p.Kube.Store().ListPods("learner-" + second + "-") {
		if pod.Status.Node != "" {
			t.Fatalf("queued job has bound learner %s", pod.Name)
		}
	}
	// Free the cluster; the queued job must start.
	if err := c.Terminate(context.Background(), first); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, c, second, StatusProcessing, 20*time.Second)
	if err := c.Terminate(context.Background(), second); err != nil {
		t.Fatal(err)
	}
}

func TestLearnerCrashRecoversFromCheckpoint(t *testing.T) {
	p := newTestPlatform(t, func(c *Config) {
		c.TimeCompression = 2e-5 // ~20µs per modeled second: job runs ~0.3s
	})
	c := p.Client()
	m := testManifest()
	m.Iterations = 400
	m.CheckpointEvery = 50
	jobID, err := c.Submit(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, c, jobID, StatusProcessing, 20*time.Second)
	// Wait for at least one checkpoint, then crash the learner pod.
	deadline := time.Now().Add(10 * time.Second)
	for {
		objs, _ := p.Store.List("ffdl-results", jobID+"/checkpoints/")
		if len(objs) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint appeared")
		}
		time.Sleep(2 * time.Millisecond)
	}
	podName := "learner-" + jobID + "-0"
	if !p.Kube.KillPod(podName, "chaos") {
		t.Fatalf("learner pod %s not found", podName)
	}
	// The stateful set restarts the learner; it must resume and finish.
	waitStatus(t, c, jobID, StatusCompleted, 30*time.Second)
	logs, _ := c.SearchLogs(context.Background(), jobID, "resuming from checkpoint")
	if len(logs) == 0 {
		t.Fatal("restarted learner did not resume from checkpoint")
	}
}

func TestGuardianCrashRollsBackAndRedeploys(t *testing.T) {
	p := newTestPlatform(t, func(c *Config) {
		c.TimeCompression = 5e-5
	})
	c := p.Client()
	m := testManifest()
	m.Iterations = 2000
	jobID, err := c.Submit(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, c, jobID, StatusProcessing, 20*time.Second)

	// Kill the Guardian pod mid-monitoring.
	pods := p.Kube.Store().ListPods("guardian-" + jobID + "-attempt-")
	if len(pods) == 0 {
		t.Fatal("no guardian pod")
	}
	if !p.Kube.KillPod(pods[0].Name, "chaos") {
		t.Fatal("KillPod failed")
	}
	p.Metrics.Inc("test.marker")
	// The kube Job restarts the Guardian, which rolls back and
	// redeploys; the job must still complete.
	waitStatus(t, c, jobID, StatusCompleted, 40*time.Second)
	if p.Metrics.Counter("guardian.rollbacks") == 0 {
		t.Fatal("restarted guardian did not roll back")
	}
}

func TestAPIReplicaCrashDoesNotInterruptService(t *testing.T) {
	p := newTestPlatform(t, nil)
	c := p.Client()
	jobID, err := c.Submit(context.Background(), testManifest())
	if err != nil {
		t.Fatal(err)
	}
	if !p.CrashAPI(0) {
		t.Fatal("CrashAPI failed")
	}
	// Queries keep working through the surviving replica.
	for i := 0; i < 5; i++ {
		if _, err := c.Status(context.Background(), jobID); err != nil {
			t.Fatalf("status during API crash: %v", err)
		}
	}
	waitStatus(t, c, jobID, StatusCompleted, 20*time.Second)
	// The crashed replica restarts.
	deadline := time.Now().Add(5 * time.Second)
	for p.Metrics.Counter("api.restarts") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("API replica never restarted")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSubmissionSurvivesLCMOutage(t *testing.T) {
	p := newTestPlatform(t, nil)
	c := p.Client()
	// Crash both LCM replicas, then submit: the job must persist as
	// PENDING and deploy once an LCM returns.
	p.CrashLCM(0)
	p.CrashLCM(1)
	jobID, err := c.Submit(context.Background(), testManifest())
	if err != nil {
		t.Fatalf("submit during LCM outage: %v", err)
	}
	reply, err := c.Status(context.Background(), jobID)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Status != StatusPending && !reply.Status.Terminal() {
		// It may already be past PENDING if an LCM restarted quickly;
		// either way it must eventually complete.
		t.Logf("status right after submit: %s", reply.Status)
	}
	waitStatus(t, c, jobID, StatusCompleted, 30*time.Second)
}

func TestHaltAndResume(t *testing.T) {
	p := newTestPlatform(t, func(c *Config) {
		c.TimeCompression = 2e-5
	})
	c := p.Client()
	m := testManifest()
	m.Iterations = 600
	m.CheckpointEvery = 50
	jobID, err := c.Submit(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, c, jobID, StatusProcessing, 20*time.Second)
	// Let it checkpoint, then halt.
	deadline := time.Now().Add(10 * time.Second)
	for {
		objs, _ := p.Store.List("ffdl-results", jobID+"/checkpoints/")
		if len(objs) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint before halt")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := c.Halt(context.Background(), jobID); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, c, jobID, StatusHalted, 20*time.Second)
	// GPUs released while halted.
	deadline = time.Now().Add(5 * time.Second)
	for {
		if alloc, _ := p.Kube.GPUUtilization(); alloc == 0 {
			break
		}
		if time.Now().After(deadline) {
			alloc, _ := p.Kube.GPUUtilization()
			t.Fatalf("halted job still holds %d GPUs", alloc)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := c.Resume(context.Background(), jobID); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, c, jobID, StatusCompleted, 30*time.Second)
	logs, _ := c.SearchLogs(context.Background(), jobID, "resuming from checkpoint")
	if len(logs) == 0 {
		t.Fatal("resumed job did not load its checkpoint")
	}
}

func TestTerminatePendingAndRunning(t *testing.T) {
	p := newTestPlatform(t, func(c *Config) {
		c.TimeCompression = 1e-4
	})
	c := p.Client()
	m := testManifest()
	m.Iterations = 5000
	running, err := c.Submit(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, c, running, StatusProcessing, 20*time.Second)
	if err := c.Terminate(context.Background(), running); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, c, running, StatusCanceled, 20*time.Second)
	alloc, _ := p.Kube.GPUUtilization()
	if alloc != 0 {
		t.Fatalf("terminated job still holds %d GPUs", alloc)
	}
}

func TestFollowLogsStreamsLive(t *testing.T) {
	p := newTestPlatform(t, func(c *Config) {
		c.TimeCompression = 5e-5
	})
	c := p.Client()
	m := testManifest()
	m.Iterations = 800
	jobID, err := c.Submit(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	lines := make(chan LogLine, 256)
	go func() {
		c.FollowLogs(ctx, jobID, func(l LogLine) { //nolint:errcheck
			select {
			case lines <- l:
			default:
			}
		})
	}()
	select {
	case l := <-lines:
		if !strings.Contains(l.Text, jobID) && !strings.Contains(l.Text, "iteration") && !strings.Contains(l.Text, "download") {
			t.Fatalf("unexpected log line: %q", l.Text)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("no live log lines")
	}
	cancel()
	c.Terminate(context.Background(), jobID) //nolint:errcheck
}

func TestListJobsByUser(t *testing.T) {
	p := newTestPlatform(t, nil)
	c := p.Client()
	m1 := testManifest()
	m2 := testManifest()
	m2.User = "bob"
	id1, err := c.Submit(context.Background(), m1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(context.Background(), m2); err != nil {
		t.Fatal(err)
	}
	jobs, err := c.List(context.Background(), "alice")
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != id1 {
		t.Fatalf("alice's jobs = %+v", jobs)
	}
	all, err := c.List(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("all jobs = %d", len(all))
	}
	waitStatus(t, c, id1, StatusCompleted, 20*time.Second)
}

func TestInvalidManifestRejected(t *testing.T) {
	p := newTestPlatform(t, nil)
	c := p.Client()
	m := testManifest()
	m.Iterations = 0
	if _, err := c.Submit(context.Background(), m); err == nil {
		t.Fatal("invalid manifest accepted")
	}
	m = testManifest()
	m.User = ""
	if _, err := c.Submit(context.Background(), m); err == nil {
		t.Fatal("manifest without user accepted")
	}
}

func TestJobWithMissingDatasetFails(t *testing.T) {
	p := newTestPlatform(t, nil)
	c := p.Client()
	m := testManifest()
	m.DataBucket = "no-such-bucket"
	jobID, err := c.Submit(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, c, jobID, StatusFailed, 20*time.Second)
}

func TestStatusTransitionGuards(t *testing.T) {
	p := newTestPlatform(t, nil)
	now := p.clock.Now()
	doc := manifestToDoc(testManifest())
	doc["_id"] = "j-guard"
	doc["status"] = string(StatusCompleted)
	doc["history"] = []any{map[string]any{"status": string(StatusCompleted), "time": now.Format(time.RFC3339Nano)}}
	if _, err := p.Jobs.Insert(doc); err != nil {
		t.Fatal(err)
	}
	if err := p.setJobStatus("j-guard", StatusProcessing, "illegal"); err == nil {
		t.Fatal("terminal status was overwritten")
	}
	if _, err := p.Jobs.FindOne(mongo.Filter{"_id": "j-guard", "status": string(StatusCompleted)}); err != nil {
		t.Fatal("status changed despite guard")
	}
}

func TestMongoDocRoundTrip(t *testing.T) {
	m := testManifest()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	back := docToManifest(manifestToDoc(m))
	if back != m {
		t.Fatalf("manifest round trip mismatch:\n got %+v\nwant %+v", back, m)
	}
}

func TestGuardianPodTypeUsedForStartDelay(t *testing.T) {
	// Verify the platform passes pod types through to kube's start-delay
	// hook (Table 3's measurement path).
	seen := make(chan string, 64)
	p := newTestPlatform(t, func(c *Config) {
		c.StartDelay = func(podType string) time.Duration {
			select {
			case seen <- podType:
			default:
			}
			return 0
		}
	})
	c := p.Client()
	jobID, err := c.Submit(context.Background(), testManifest())
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, c, jobID, StatusCompleted, 20*time.Second)
	types := map[string]bool{}
	for {
		select {
		case ty := <-seen:
			types[ty] = true
			continue
		default:
		}
		break
	}
	for _, want := range []string{PodTypeGuardian, PodTypeHelper, PodTypeLearner} {
		if !types[want] {
			t.Fatalf("start delay never saw pod type %s (saw %v)", want, types)
		}
	}
}

func TestNodeCrashJobRecovers(t *testing.T) {
	p := newTestPlatform(t, func(c *Config) {
		c.TimeCompression = 2e-5
	})
	c := p.Client()
	m := testManifest()
	m.Iterations = 400
	m.CheckpointEvery = 50
	jobID, err := c.Submit(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, c, jobID, StatusProcessing, 20*time.Second)
	// Find the learner's node and crash it.
	pod, ok := p.Kube.Store().GetPod("learner-" + jobID + "-0")
	if !ok || pod.Status.Node == "" {
		t.Fatal("learner pod not running")
	}
	p.Kube.CrashNode(pod.Status.Node)
	// Eviction + stateful set recreate on the surviving node; the job
	// must complete. (The whole job may also be redeployed by the
	// guardian if the helper died with the node.)
	waitStatus(t, c, jobID, StatusCompleted, 40*time.Second)
	nodeFail, _ := p.Kube.DeletionStats()
	if nodeFail == 0 {
		t.Fatal("no node-failure deletions recorded")
	}
}

// TestWatchStatusDeliversTransitionsInOrderUnderAPICrash verifies the
// streaming status watch: every transition the job records must reach
// the watcher exactly once and in history order, even while API
// replicas crash and restart under the stream (the client reconnects
// through the balancer and resumes by sequence number).
func TestWatchStatusDeliversTransitionsInOrderUnderAPICrash(t *testing.T) {
	p := newTestPlatform(t, nil)
	c := p.Client()
	m := testManifest()
	m.Learners = 2
	jobID, err := c.Submit(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ch, stop, err := c.WatchStatus(ctx, jobID)
	if err != nil {
		t.Fatalf("WatchStatus: %v", err)
	}
	defer stop()

	var got []StatusEntry
	crashAt := map[int]int{1: 0, 3: 1} // crash replica 0 after 1 entry, replica 1 after 3
	for e := range ch {
		got = append(got, e)
		if idx, ok := crashAt[len(got)]; ok {
			if !p.CrashAPI(idx) {
				t.Fatalf("CrashAPI(%d) failed", idx)
			}
		}
		if e.Status.Terminal() {
			break
		}
	}
	if len(got) == 0 || got[len(got)-1].Status != StatusCompleted {
		t.Fatalf("stream ended with %+v", got)
	}

	reply, err := c.Status(context.Background(), jobID)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reply.History) {
		t.Fatalf("streamed %d transitions, history has %d\nstream: %+v\nhistory: %+v",
			len(got), len(reply.History), got, reply.History)
	}
	for i := range got {
		if got[i].Status != reply.History[i].Status {
			t.Fatalf("transition %d = %s, history has %s", i, got[i].Status, reply.History[i].Status)
		}
	}
	if got[0].Status != StatusPending {
		t.Fatalf("first transition = %s, want PENDING", got[0].Status)
	}
}

// TestEventDrivenControlPlanePollIndependence is the acceptance test for
// the event-driven refactor: with every control-loop interval cranked to
// 100ms on a simulated clock, a 2-learner job must still complete with
// end-to-end virtual latency dominated by the modeled container start
// delays (~15ms), not by ticker periods. A poll-driven control plane at
// the same intervals cannot finish in under one PollInterval — the
// helper and guardian alone would each burn at least one 100ms tick —
// so completing in < 100ms virtual proves no control-plane hop waits
// for a ticker.
// TestStatusBusDedupsAcrossFeeders: the bus has two feeders (direct
// publish and the MongoDB change feed); per-job Seq dedup must drop the
// echo and stale replays while preserving order.
// newMemBus opens a status bus on a fresh MemStore for bus-only tests.
func newMemBus(t *testing.T) *statusBus {
	t.Helper()
	b, err := newStatusBus(commitlog.NewMemStore(), false, nil, nil)
	if err != nil {
		t.Fatalf("newStatusBus: %v", err)
	}
	return b
}

func TestStatusBusDedupsAcrossFeeders(t *testing.T) {
	b := newMemBus(t)
	ch, cancel := b.Subscribe("j", 16)
	defer cancel()
	b.Publish(StatusEvent{JobID: "j", Seq: 1, Status: StatusPending})
	b.Publish(StatusEvent{JobID: "j", Seq: 1, Status: StatusPending}) // change-feed echo
	b.Publish(StatusEvent{JobID: "j", Seq: 2, Status: StatusDeploying})
	b.Publish(StatusEvent{JobID: "j", Seq: 1, Status: StatusPending}) // stale replay
	if n := len(ch); n != 2 {
		t.Fatalf("subscriber got %d events, want 2 (dedup failed)", n)
	}
	if ev := <-ch; ev.Seq != 1 {
		t.Fatalf("first event Seq = %d, want 1", ev.Seq)
	}
	if ev := <-ch; ev.Seq != 2 {
		t.Fatalf("second event Seq = %d, want 2", ev.Seq)
	}
}

// TestWatchStatusSeesTransitionsFromOtherReplicas pins the bus's
// multi-replica fallback: transitions committed straight to MongoDB (as
// an API replica in another process would) must reach a local
// WatchStatus stream promptly via the change feed — not via the
// seconds-long MongoDB safety tick, which a long PollInterval pushes out
// of reach here.
func TestWatchStatusSeesTransitionsFromOtherReplicas(t *testing.T) {
	p := newTestPlatform(t, func(c *Config) { c.PollInterval = 500 * time.Millisecond })
	c := p.Client()
	const jobID = "training-remote"
	now := p.clock.Now().Format(time.RFC3339Nano)
	hist := func(s JobStatus) map[string]any {
		return map[string]any{"status": string(s), "time": now, "message": "from another replica"}
	}
	// The job appears fully formed in MongoDB, already past PENDING so
	// the local LCM recovery loop leaves it alone.
	if _, err := p.Jobs.Insert(mongo.Doc{
		"_id": jobID, "name": "remote-job", "user": "bob",
		"status":  string(StatusDeploying),
		"history": []any{hist(StatusPending), hist(StatusDeploying)},
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ch, stop, err := c.WatchStatus(ctx, jobID)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	expect := func(want JobStatus) {
		t.Helper()
		select {
		case e, ok := <-ch:
			if !ok {
				t.Fatalf("stream closed while waiting for %s", want)
			}
			if e.Status != want {
				t.Fatalf("got %s, want %s", e.Status, want)
			}
		case <-time.After(3 * time.Second):
			t.Fatalf("no %s transition (change feed not delivering?)", want)
		}
	}
	expect(StatusPending)
	expect(StatusDeploying)
	// "Another replica" commits transitions straight to MongoDB; this
	// process's bus can only learn of them through the change feed.
	push := func(s JobStatus) {
		t.Helper()
		if err := p.Jobs.UpdateOne(mongo.Filter{"_id": jobID}, mongo.Update{
			Set:  mongo.Doc{"status": string(s)},
			Push: map[string]any{"history": hist(s)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	push(StatusProcessing)
	expect(StatusProcessing)
	push(StatusCompleted)
	expect(StatusCompleted)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("transitions took %v, slower than the change feed should ever be", elapsed)
	}
	select {
	case _, ok := <-ch:
		if ok {
			t.Fatal("stream delivered past the terminal status")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("stream did not close after the terminal transition")
	}
}

func TestEventDrivenControlPlanePollIndependence(t *testing.T) {
	fc := sim.NewFakeClock(time.Unix(0, 0))
	// Generous settle: virtual time only advances after 15ms of wall
	// quiescence, so raft commits and goroutine handoffs (wall-time
	// work) never masquerade as virtual delay.
	fc.StartAutoAdvance(15 * time.Millisecond)
	t.Cleanup(fc.StopAutoAdvance)

	cfg := Config{
		Clock:             fc,
		Seed:              11,
		PollInterval:      100 * time.Millisecond,
		SchedulerInterval: 100 * time.Millisecond,
		ResyncInterval:    100 * time.Millisecond,
		RendezvousTimeout: 10 * time.Second,
	}
	p, err := NewPlatform(cfg)
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	t.Cleanup(p.Stop)
	for _, n := range []string{"node0", "node1"} {
		p.AddNode(n, "K80", 4, 32, 256<<10)
	}
	p.Store.EnsureBucket("datasets")
	if err := p.Store.Put("datasets", "mnist/shard-0", bytes.Repeat([]byte{1}, 1<<20)); err != nil {
		t.Fatal(err)
	}

	c := p.Client()
	m := testManifest()
	m.Learners = 2
	start := fc.Now()
	jobID, err := c.Submit(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	status, err := c.WaitForStatus(ctx, jobID, StatusCompleted, cfg.PollInterval)
	if err != nil || status != StatusCompleted {
		t.Fatalf("status = %v, err = %v", status, err)
	}
	elapsed := fc.Since(start)
	t.Logf("end-to-end virtual latency: %v (intervals all %v)", elapsed, cfg.PollInterval)
	if elapsed >= cfg.PollInterval {
		t.Fatalf("job took %v virtual — at least one control-plane hop waited for a %v ticker",
			elapsed, cfg.PollInterval)
	}
}

// TestStatusBusReplayJob pins the bus's commit-log replay contract:
// ReplayJob must return a provably complete suffix (led by exactly
// fromSeq, contiguous) or nothing — callers stream a replay as-is, so
// "almost complete" would silently gap a watcher.
func TestStatusBusReplayJob(t *testing.T) {
	b := newMemBus(t)
	for seq := 1; seq <= 5; seq++ {
		b.Publish(StatusEvent{JobID: "a", Seq: seq, Status: StatusDeploying})
	}
	b.Publish(StatusEvent{JobID: "other", Seq: 1, Status: StatusPending})

	evs, ok := b.ReplayJob("a", 2)
	if !ok || len(evs) != 4 {
		t.Fatalf("ReplayJob(a, 2) = %d events, ok=%v; want 4, true", len(evs), ok)
	}
	for i, ev := range evs {
		if ev.Seq != i+2 {
			t.Fatalf("replayed Seq[%d] = %d, want %d", i, ev.Seq, i+2)
		}
	}
	if _, ok := b.ReplayJob("a", 6); ok {
		t.Fatal("ReplayJob past the log's tail must not claim completeness")
	}
	if _, ok := b.ReplayJob("nosuchjob", 1); ok {
		t.Fatal("ReplayJob of an unknown job must fall back to refill")
	}
	// A hole in the retained sequence (as key-compaction leaves behind)
	// must disqualify the replay even though events >= fromSeq exist.
	b2 := newMemBus(t)
	b2.Publish(StatusEvent{JobID: "j", Seq: 1, Status: StatusPending})
	b2.Publish(StatusEvent{JobID: "j", Seq: 3, Status: StatusDeploying}) // 2 never published
	if _, ok := b2.ReplayJob("j", 1); ok {
		t.Fatal("ReplayJob across a Seq hole must not claim completeness")
	}
}

// TestWatchReplaysFromBusLog pins the watch fast path: a watcher whose
// resume point is still retained in the bus's commit log is served by
// replay (watch.replays) without touching MongoDB (watch.refills).
func TestWatchReplaysFromBusLog(t *testing.T) {
	p := newTestPlatform(t, nil)
	c := p.Client()
	jobID, err := c.Submit(context.Background(), testManifest())
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, c, jobID, StatusCompleted, 20*time.Second)

	// A fresh watch from Seq 1 on the completed job: every transition is
	// still in the bus log, so the whole history must come from replay.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ch, stop, err := c.WatchStatus(ctx, jobID)
	if err != nil {
		t.Fatalf("WatchStatus: %v", err)
	}
	defer stop()
	var got []StatusEntry
	for e := range ch {
		got = append(got, e)
	}
	reply, err := c.Status(context.Background(), jobID)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reply.History) {
		t.Fatalf("replayed %d transitions, history has %d", len(got), len(reply.History))
	}
	if n := p.Metrics.Counter("watch.replays"); n < 1 {
		t.Fatalf("watch.replays = %d, want >= 1 (watch did not use the bus log)", n)
	}
}

// TestWatchRefillsWhenLogCold pins the fallback: a job whose
// transitions never passed through this process's bus (committed by
// "another replica" straight to MongoDB) cannot be replayed and must be
// refilled from the durable history.
func TestWatchRefillsWhenLogCold(t *testing.T) {
	p := newTestPlatform(t, nil)
	c := p.Client()
	const jobID = "training-cold"
	now := p.clock.Now().Format(time.RFC3339Nano)
	if _, err := p.Jobs.Insert(mongo.Doc{
		"_id": jobID, "name": "cold", "user": "carol",
		"status": string(StatusCompleted),
		"history": []any{
			map[string]any{"status": string(StatusPending), "time": now, "message": "m"},
			map[string]any{"status": string(StatusCompleted), "time": now, "message": "m"},
		},
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ch, stop, err := c.WatchStatus(ctx, jobID)
	if err != nil {
		t.Fatalf("WatchStatus: %v", err)
	}
	defer stop()
	var got []StatusEntry
	for e := range ch {
		got = append(got, e)
	}
	if len(got) != 2 {
		t.Fatalf("refilled %d transitions, want 2", len(got))
	}
	if n := p.Metrics.Counter("watch.refills"); n < 1 {
		t.Fatalf("watch.refills = %d, want >= 1", n)
	}
}

// TestFollowLogsResumesAcrossAPICrash is the acceptance test for
// offset-addressed log streaming: FollowLogs must deliver every line
// exactly once, in order, while API replicas crash under it — the
// job's log lives in the platform's commit log, and the stream resumes
// by offset, not by re-counting.
func TestFollowLogsResumesAcrossAPICrash(t *testing.T) {
	p := newTestPlatform(t, func(c *Config) {
		c.TimeCompression = 5e-5
	})
	c := p.Client()
	m := testManifest()
	m.Iterations = 2000
	jobID, err := c.Submit(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	lines := make(chan LogLine, 4096)
	go func() {
		c.FollowLogs(ctx, jobID, func(l LogLine) { lines <- l }) //nolint:errcheck
		close(lines)
	}()

	var got []LogLine
	crashed := 0
	for l := range lines {
		got = append(got, l)
		// Crash each replica once, mid-stream.
		if (len(got) == 3 || len(got) == 8) && crashed < 2 {
			if !p.CrashAPI(crashed) {
				t.Fatalf("CrashAPI(%d) failed", crashed)
			}
			crashed++
		}
		if len(got) >= 40 {
			cancel()
			break
		}
	}
	if crashed < 2 {
		t.Fatalf("only crashed %d replicas (stream too short: %d lines)", crashed, len(got))
	}
	// Exactly-once, in-order: offsets are minted contiguously per job,
	// so the collected stream must be exactly 0,1,2,... with no gap or
	// duplicate across the crash/reconnect seams.
	for i, l := range got {
		if l.Offset != uint64(i) {
			t.Fatalf("line %d has offset %d (gap or duplicate across reconnect)", i, l.Offset)
		}
	}
	c.Terminate(context.Background(), jobID) //nolint:errcheck
}

// TestLogsFromOffset pins the resumable read path: LogsFrom returns
// only lines at or past the requested offset, and offsets are assigned
// contiguously at ingest.
func TestLogsFromOffset(t *testing.T) {
	m := NewMetricsService(nil)
	for i := 0; i < 10; i++ {
		m.AppendLog(LogLine{JobID: "j", Learner: 1, Text: "line"})
	}
	all := m.Logs("j")
	if len(all) != 10 {
		t.Fatalf("Logs = %d lines, want 10", len(all))
	}
	for i, l := range all {
		if l.Offset != uint64(i) {
			t.Fatalf("line %d offset = %d, want %d", i, l.Offset, i)
		}
	}
	tail := m.LogsFrom("j", 7)
	if len(tail) != 3 || tail[0].Offset != 7 {
		t.Fatalf("LogsFrom(7) = %d lines starting at %d, want 3 from 7", len(tail), tail[0].Offset)
	}
	if out := m.LogsFrom("j", 42); len(out) != 0 {
		t.Fatalf("LogsFrom past the tail = %d lines, want 0", len(out))
	}
}
