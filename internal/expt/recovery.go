package expt

import (
	"context"
	"fmt"
	"os"
	"time"

	"github.com/ffdl/ffdl/internal/chaos"
	"github.com/ffdl/ffdl/internal/core"
	"github.com/ffdl/ffdl/internal/mongo"
	"github.com/ffdl/ffdl/internal/perf"
	"github.com/ffdl/ffdl/internal/sim"
)

// The recovery experiment: what a restart-the-world actually costs, and
// what survives it. Each arm builds the same durable state — a batch of
// completed jobs with learner logs and saved follower cursors, plus
// enough single-key churn to seal and compact oplog segments — then
// tears the whole platform down with chaos.ProcessRestart and measures
// the reopened generation:
//
//   - reopen latency (NewPlatform + recovery replay, wall clock)
//   - how much state came back (jobs, oplog ops, learner-log lines)
//   - whether saved log cursors survived byte-exact
//   - replay vs resync on the read paths: WatchStatus reconnects served
//     from the recovered bus log (watch.replays) vs MongoDB refills
//     (watch.refills), and whether a pre-floor change-stream resume gets
//     its explicit resync marker
//
// The MemStore arm is the ablation: same workload, no DataDir, so the
// restart erases everything — the baseline that shows what the
// FileStore plumbing is buying.

// RecoveryConfig parameterizes one run.
type RecoveryConfig struct {
	// Jobs is the number of jobs driven to COMPLETED before the restart.
	// Default 3.
	Jobs int
	// Churn is the number of single-key updates used to roll and compact
	// oplog segments before the restart (the floor-raising workload).
	// Default 3000.
	Churn int
	// Seed drives platform randomness.
	Seed int64
	// SettleWall is the FakeClock auto-advance quiescence window.
	// Default 2ms.
	SettleWall time.Duration
	// Timeout bounds each arm's job-driving stage in wall time.
	// Default 120s.
	Timeout time.Duration
}

func (c *RecoveryConfig) defaults() {
	if c.Jobs <= 0 {
		c.Jobs = 3
	}
	if c.Churn <= 0 {
		c.Churn = 3000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.SettleWall <= 0 {
		c.SettleWall = 2 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 120 * time.Second
	}
}

// RecoveryArm reports one arm of the comparison.
type RecoveryArm struct {
	FileStore bool `json:"file_store"`

	// ReopenMillis is the post-restart boot wall time (NewPlatform +
	// recovery replay + world re-provisioning).
	ReopenMillis float64 `json:"reopen_millis"`

	// What the reopened generation recovered.
	RecoveredJobs     int    `json:"recovered_jobs"`
	RecoveredOps      uint64 `json:"recovered_ops"`
	RecoveredLogLines int    `json:"recovered_log_lines"`
	// CursorsPreserved counts saved follower cursors that came back
	// byte-exact (one was saved per job).
	CursorsPreserved int `json:"cursors_preserved"`

	// Replay vs resync on the reopened read paths.
	WatchReplays int64 `json:"watch_replays"`
	WatchRefills int64 `json:"watch_refills"`
	// ResyncEvents counts change streams (one probe per arm, resumed
	// from seq 1) whose first delivery was the explicit resync marker —
	// expected 1 on the FileStore arm, whose recovered floor rose past
	// the probe's token.
	ResyncEvents int    `json:"resync_events"`
	OplogFloor   uint64 `json:"oplog_floor"`

	WallSeconds float64 `json:"wall_seconds"`
}

// RecoveryResult reports the MemStore/FileStore pair.
type RecoveryResult struct {
	Jobs  int           `json:"jobs"`
	Churn int           `json:"churn"`
	Arms  []RecoveryArm `json:"arms"`
}

// Recovery runs both arms over the identical workload.
func Recovery(cfg RecoveryConfig) (RecoveryResult, error) {
	cfg.defaults()
	res := RecoveryResult{Jobs: cfg.Jobs, Churn: cfg.Churn}
	for _, fileStore := range []bool{false, true} {
		arm, err := recoveryArm(cfg, fileStore)
		if err != nil {
			return res, fmt.Errorf("recovery arm (filestore=%v): %w", fileStore, err)
		}
		res.Arms = append(res.Arms, arm)
	}
	return res, nil
}

func recoveryArm(cfg RecoveryConfig, fileStore bool) (RecoveryArm, error) {
	arm := RecoveryArm{FileStore: fileStore}
	wallStart := time.Now()

	dataDir := ""
	if fileStore {
		dir, err := os.MkdirTemp("", "ffdl-recovery-*")
		if err != nil {
			return arm, err
		}
		defer os.RemoveAll(dir) //nolint:errcheck
		dataDir = dir
	}

	fc := sim.NewFakeClock(time.Unix(0, 0))
	fc.StartAutoAdvance(cfg.SettleWall)
	defer fc.StopAutoAdvance()

	pcfg := core.Config{
		Clock:   fc,
		Seed:    cfg.Seed,
		DataDir: dataDir,
		// Stretch the resync safety nets so the measurement sees
		// event-driven recovery, not poll overhead (throughput.go's
		// reasoning), except PollInterval: the LCM recovery scan rides
		// it, and redeploy-after-restart is part of what recovery means.
		PollInterval:      50 * time.Millisecond,
		SchedulerInterval: time.Minute,
		ResyncInterval:    time.Minute,
		HeartbeatInterval: 2 * time.Minute,
		NodeGracePeriod:   10 * time.Minute,
		RendezvousTimeout: time.Hour,
		TimeCompression:   0, // training is instantaneous; durability is the workload
		StartDelay:        func(string) time.Duration { return 0 },
	}
	provision := func(p *core.Platform) error {
		nodes := (cfg.Jobs+3)/4 + 1
		for i := 0; i < nodes; i++ {
			p.AddNode(fmt.Sprintf("node-%03d", i), "K80", 4, 64, 1<<20)
		}
		p.Store.EnsureBucket("datasets")
		return p.Store.Put("datasets", "data/shard-0", make([]byte, 1<<10))
	}
	r, err := chaos.NewProcessRestart(pcfg, provision)
	if err != nil {
		return arm, err
	}
	defer r.Stop()
	p := r.Platform()
	client := p.Client()
	ctx, cancel := context.WithTimeout(context.Background(), cfg.Timeout)
	defer cancel()

	// Drive the workload: Jobs jobs to COMPLETED, a saved follower
	// cursor halfway into each job's log, then the floor-raising churn.
	jobIDs := make([]string, 0, cfg.Jobs)
	savedCursors := make(map[string]uint64, cfg.Jobs)
	for j := 0; j < cfg.Jobs; j++ {
		id, err := client.Submit(ctx, core.Manifest{
			Name: fmt.Sprintf("rc-%d", j), User: "bench",
			Framework: perf.Caffe, Model: perf.VGG16,
			Learners: 1, GPUsPerLearner: 1, GPUType: perf.K80,
			BatchSize: 64, Iterations: 4, CheckpointEvery: 2,
			DataBucket: "datasets", DataPrefix: "data/",
			Command: "caffe train -solver solver.prototxt",
		})
		if err != nil {
			return arm, err
		}
		jobIDs = append(jobIDs, id)
	}
	var logLines int
	for _, id := range jobIDs {
		if st, err := client.WaitForStatus(ctx, id, core.StatusCompleted, time.Minute); err != nil || st != core.StatusCompleted {
			return arm, fmt.Errorf("job %s ended %s, err=%v", id, st, err)
		}
		lines, err := client.Logs(ctx, id)
		if err != nil || len(lines) == 0 {
			return arm, fmt.Errorf("job %s logs: %d lines, err=%v", id, len(lines), err)
		}
		logLines += len(lines)
		next := lines[len(lines)/2].Offset
		if err := p.Metrics.CommitLogCursor(id, "bench-follower", next); err != nil {
			return arm, err
		}
		savedCursors[id] = next
	}
	scratch := p.Mongo.C("scratch")
	if _, err := scratch.Insert(mongo.Doc{"_id": "doc", "n": 0}); err != nil {
		return arm, err
	}
	for i := 1; i <= cfg.Churn; i++ {
		if err := scratch.UpdateOne(mongo.Filter{"_id": "doc"}, mongo.Update{Set: mongo.Doc{"n": i}}); err != nil {
			return arm, err
		}
	}
	preOps := p.Mongo.OplogLen()

	// Restart the world and measure what came back.
	p2, err := r.Restart()
	if err != nil {
		return arm, err
	}
	arm.ReopenMillis = float64(r.ReopenLatency().Nanoseconds()) / 1e6
	arm.RecoveredOps = p2.Mongo.OplogLen()
	arm.OplogFloor = p2.Mongo.OplogFloor()
	if fileStore && arm.RecoveredOps != preOps {
		return arm, fmt.Errorf("recovered %d oplog ops, want %d", arm.RecoveredOps, preOps)
	}
	arm.RecoveredJobs = p2.Jobs.Count(mongo.Filter{"status": string(core.StatusCompleted)})
	for _, id := range jobIDs {
		arm.RecoveredLogLines += len(p2.Metrics.Logs(id))
		if next, ok := p2.Metrics.LogCursor(id, "bench-follower"); ok && next == savedCursors[id] {
			arm.CursorsPreserved++
		}
	}

	// Replay-vs-resync probes. A change stream resumed from seq 1: on
	// the FileStore arm the recovered floor rose past it (churn sealed
	// and compacted segments), so the first delivery must be the
	// explicit resync marker; the fresh MemStore arm has no history and
	// delivers nothing.
	cs := p2.Mongo.Watch("scratch", 1)
	select {
	case ev := <-cs.Events():
		if ev.Kind == "resync" {
			arm.ResyncEvents++
		}
	case <-time.After(200 * time.Millisecond):
	}
	cs.Cancel()

	// One WatchStatus reconnect per recovered job: with the bus's replay
	// window recovered these are served from the log (watch.replays),
	// without it the jobs are gone and there is nothing to watch.
	client2 := p2.Client()
	for _, id := range jobIDs {
		ch, stop, err := client2.WatchStatus(ctx, id)
		if err != nil {
			continue // MemStore arm: the job did not survive
		}
		for range ch { // drains to the terminal entry, then closes
		}
		stop()
	}
	// One consistent registry snapshot instead of torn per-name reads:
	// both counters reflect the same instant.
	counters := p2.Metrics.Counters()
	arm.WatchReplays = counters["watch.replays"]
	arm.WatchRefills = counters["watch.refills"]

	arm.WallSeconds = time.Since(wallStart).Seconds()
	return arm, nil
}

// RenderRecovery formats the pair as a table.
func RenderRecovery(res RecoveryResult) *Table {
	t := &Table{
		Title: "Restart-the-world recovery: FileStore DataDir vs the MemStore ablation",
		Header: []string{"FileStore", "Reopen (ms)", "Jobs back", "Oplog ops", "Log lines",
			"Cursors", "Replays", "Refills", "Resyncs", "Floor"},
	}
	for _, a := range res.Arms {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%v", a.FileStore), f2(a.ReopenMillis),
			fmt.Sprintf("%d/%d", a.RecoveredJobs, res.Jobs),
			fmt.Sprintf("%d", a.RecoveredOps),
			fmt.Sprintf("%d", a.RecoveredLogLines),
			fmt.Sprintf("%d/%d", a.CursorsPreserved, res.Jobs),
			fmt.Sprintf("%d", a.WatchReplays), fmt.Sprintf("%d", a.WatchRefills),
			fmt.Sprintf("%d", a.ResyncEvents), fmt.Sprintf("%d", a.OplogFloor),
		})
	}
	if len(res.Arms) == 2 && res.Arms[1].FileStore {
		mem, file := res.Arms[0], res.Arms[1]
		t.Caption = fmt.Sprintf(
			"A full process restart erases the MemStore platform (%d jobs, %d oplog ops back); "+
				"the FileStore DataDir brings back %d/%d jobs, %d oplog ops and %d log lines in %.1fms, "+
				"with %d/%d follower cursors intact and stale change-stream resumes flagged by %d explicit resync marker(s).",
			mem.RecoveredJobs, mem.RecoveredOps,
			file.RecoveredJobs, res.Jobs, file.RecoveredOps, file.RecoveredLogLines,
			file.ReopenMillis, file.CursorsPreserved, res.Jobs, file.ResyncEvents)
	}
	return t
}
