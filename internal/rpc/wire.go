// Package rpc implements the lightweight RPC fabric the FfDL
// microservices communicate over. The paper's system uses gRPC; this
// stdlib-only equivalent provides the same coupling model: typed unary
// calls, server-streaming calls (used for watch/log streams), deadlines,
// and client-side load balancing across the replicas of a replicated
// microservice (the paper's Kubernetes "service" abstraction).
//
// Wire format: each connection carries gob-encoded frames in both
// directions. Requests are multiplexed by ID, so one connection supports
// many concurrent in-flight calls, like HTTP/2 under gRPC.
package rpc

import (
	"errors"
	"fmt"
)

// frameKind discriminates wire frames.
type frameKind uint8

const (
	frameCall   frameKind = iota + 1 // client -> server: start a call
	frameData                        // payload (either direction)
	frameEnd                         // server -> client: call finished OK
	frameError                       // server -> client: call failed
	frameCancel                      // client -> server: abandon call
)

// frame is the unit of transmission. Body holds a gob-encoded message
// produced by the caller-side codec so the transport itself never needs
// type registration.
type frame struct {
	Kind   frameKind
	ID     uint64
	Method string
	Body   []byte
	Err    string
}

// Error values surfaced to callers.
var (
	// ErrConnClosed reports that the underlying connection was closed
	// mid-call (e.g. the server crashed). Callers treat it as retryable.
	ErrConnClosed = errors.New("rpc: connection closed")
	// ErrNoEndpoints reports that a balanced client has no live replicas.
	ErrNoEndpoints = errors.New("rpc: no endpoints available")
	// ErrMethodNotFound reports a call to an unregistered method.
	ErrMethodNotFound = errors.New("rpc: method not found")
	// ErrCanceled reports that the call context was cancelled.
	ErrCanceled = errors.New("rpc: call canceled")
	// ErrStreamDone reports reading past the end of a server stream.
	ErrStreamDone = errors.New("rpc: stream done")
)

// RemoteError is an application error propagated from the server.
type RemoteError struct {
	Method  string
	Message string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("rpc: remote error from %s: %s", e.Method, e.Message)
}
