// Package ffdl is the public API of the FfDL reproduction: a flexible
// multi-tenant deep learning platform (Jayaram et al., MIDDLEWARE '19)
// rebuilt as an in-process Go system over simulated substrates
// (Kubernetes-like orchestration, Raft-replicated etcd, a document
// store, object storage with an s3fs-style caching mount, and NFS
// volumes).
//
// Quickstart:
//
//	p, err := ffdl.New(ffdl.Config{})
//	if err != nil { ... }
//	defer p.Stop()
//	p.AddNodes("k80", ffdl.K80, 2, 4) // 2 nodes x 4 K80 GPUs
//	p.SeedDataset("datasets", "mnist/", 8<<20)
//
//	client := p.Client()
//	jobID, err := client.Submit(ctx, ffdl.Manifest{
//	    Name: "train-vgg", User: "alice",
//	    Framework: ffdl.Caffe, Model: ffdl.VGG16,
//	    Learners: 2, GPUsPerLearner: 1, GPUType: ffdl.K80,
//	    Iterations: 1000, CheckpointEvery: 100,
//	    DataBucket: "datasets", DataPrefix: "mnist/",
//	})
//	status, err := client.WaitForStatus(ctx, jobID, ffdl.StatusCompleted, 10*time.Millisecond)
//
// The package re-exports the platform's user-facing types from
// internal/core and the performance-model vocabulary from internal/perf;
// everything else (scheduling policies, substrates, experiment
// harnesses) lives under internal/ and is exercised through this surface
// or cmd/ffdl-bench.
package ffdl

import (
	"fmt"

	"github.com/ffdl/ffdl/internal/core"
	"github.com/ffdl/ffdl/internal/perf"
	"github.com/ffdl/ffdl/internal/sched"
)

// Re-exported user-facing types.
type (
	// Manifest describes a training job (§3.1's "natural language" job
	// description: code, data location, learners, resources).
	Manifest = core.Manifest
	// Client is the load-balanced API client (what the CLI wraps).
	Client = core.Client
	// JobStatus is the DL-specific job state.
	JobStatus = core.JobStatus
	// StatusEntry is one timestamped history record.
	StatusEntry = core.StatusEntry
	// JobRecord is a stored job with manifest, status and history.
	JobRecord = core.JobRecord
	// LogLine is one collected learner log line.
	LogLine = core.LogLine
	// Config configures the platform; the zero value is production-like
	// (gang scheduling + pack placement, 2 API / 2 LCM / 3 etcd
	// replicas).
	Config = core.Config
)

// Job statuses.
const (
	StatusPending     = core.StatusPending
	StatusDeploying   = core.StatusDeploying
	StatusDownloading = core.StatusDownloading
	StatusProcessing  = core.StatusProcessing
	StatusStoring     = core.StatusStoring
	StatusCompleted   = core.StatusCompleted
	StatusFailed      = core.StatusFailed
	StatusHalted      = core.StatusHalted
	StatusResumed     = core.StatusResumed
	StatusCanceled    = core.StatusCanceled
)

// GPU types.
const (
	K80  = perf.K80
	P100 = perf.P100
	V100 = perf.V100
)

// Frameworks.
const (
	Caffe      = perf.Caffe
	TensorFlow = perf.TensorFlow
)

// Benchmark models.
const (
	VGG16       = perf.VGG16
	ResNet50    = perf.ResNet50
	InceptionV3 = perf.InceptionV3
)

// Platform is a running FfDL instance. It wraps the core platform with
// convenience helpers; the embedded *core.Platform exposes the
// substrates (Kube, Etcd, Mongo, Store, NFS, Metrics) for advanced use
// and fault injection.
type Platform struct {
	*core.Platform
}

// New boots a platform with no worker nodes; add capacity with
// AddNodes.
func New(cfg Config) (*Platform, error) {
	p, err := core.NewPlatform(cfg)
	if err != nil {
		return nil, err
	}
	return &Platform{Platform: p}, nil
}

// AddNodes adds n identical worker machines named "<prefix>-<i>", each
// with the given GPUs and the matching t-shirt CPU/memory provisioning.
func (p *Platform) AddNodes(prefix string, gpuType perf.GPUType, n, gpusPerNode int) {
	size := perf.RecommendSize(1, gpuType)
	for i := 0; i < n; i++ {
		p.AddNode(fmt.Sprintf("%s-%d", prefix, i), string(gpuType), gpusPerNode,
			size.CPU*gpusPerNode+8, int64(size.MemoryGB*gpusPerNode+32)*1024)
	}
}

// SeedDataset creates a bucket holding one synthetic dataset shard of
// the given size under prefix, ready to reference from a Manifest.
func (p *Platform) SeedDataset(bucket, prefix string, bytes int) error {
	p.Store.EnsureBucket(bucket)
	return p.Store.Put(bucket, prefix+"shard-0000", make([]byte, bytes))
}

// GPUUtilization returns (allocated, capacity) GPUs.
func (p *Platform) GPUUtilization() (allocated, capacity int) {
	return p.Kube.GPUUtilization()
}

// Resources constructs a resource vector (exported for custom node
// shapes).
func Resources(milliCPU, memMB int64, gpus int) sched.Resources {
	return sched.Resources{MilliCPU: milliCPU, MemoryMB: memMB, GPUs: gpus}
}
