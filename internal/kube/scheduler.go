package kube

import (
	"fmt"
	"sort"

	"github.com/ffdl/ffdl/internal/sched"
)

// schedulerLoop is the cluster scheduler: every interval it snapshots
// cluster state and tries to bind unscheduled pods.
//
// Without a GangPolicy it behaves like the stock Kubernetes scheduler —
// "it considers each of the learner pods individually" (§3.5) — binding
// whatever fits, which is what produces partial placements and
// temporarily deadlocked learners. With a GangPolicy, pods carrying gang
// information are bound all-or-nothing.
func (c *Cluster) schedulerLoop() {
	ticker := c.cfg.Clock.NewTicker(c.cfg.SchedulerInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stopCh:
			return
		case <-ticker.C:
			c.scheduleOnce()
		}
	}
}

// scheduleOnce runs one scheduling pass.
func (c *Cluster) scheduleOnce() {
	pods := c.store.ListPods("")
	var pending []*Pod
	for _, p := range pods {
		if p.Status.Phase == PodPending && p.Status.Node == "" {
			pending = append(pending, p)
		}
	}
	if len(pending) == 0 {
		return
	}
	cs := c.Snapshot()

	if c.cfg.GangPolicy != nil {
		c.scheduleGangs(pending, cs)
		return
	}
	c.schedulePodAtATime(pending, cs)
}

// schedulePodAtATime is the stock behaviour: bind each pod greedily, in
// the nondeterministic order the paper blames for partial gang
// placements ("the order in which learner pods are queued by K8S for
// scheduling is non deterministic", §5.3).
func (c *Cluster) schedulePodAtATime(pending []*Pod, cs *sched.ClusterState) {
	c.cfg.RNG.Shuffle(len(pending), func(i, j int) { pending[i], pending[j] = pending[j], pending[i] })
	for _, p := range pending {
		spec := toSchedPod(p)
		nodeName, fail := c.cfg.PodPolicy.PlacePod(spec, cs)
		if fail != nil {
			c.recordEvent(EventWarning, "FailedScheduling", KindPod, p.Name, p.Spec.Type,
				fmt.Sprintf("%s: %s", fail.Reason, fail.Message))
			continue
		}
		cs.Assign(nodeName, p.Spec.Demand)
		c.bindPod(p.Name, nodeName)
	}
}

// scheduleGangs groups gang pods by JobID and binds complete gangs
// atomically; non-gang pods still bind one at a time.
func (c *Cluster) scheduleGangs(pending []*Pod, cs *sched.ClusterState) {
	gangs := make(map[string][]*Pod)
	var loose []*Pod
	for _, p := range pending {
		if p.Spec.GangSize > 0 && p.Spec.JobID != "" {
			gangs[p.Spec.JobID] = append(gangs[p.Spec.JobID], p)
		} else {
			loose = append(loose, p)
		}
	}
	// Deterministic order: by job id. (FCFS arrival ordering is enforced
	// by the FfDL dispatcher above this layer; within one pass order
	// only affects which gang grabs contended space first.)
	jobIDs := make([]string, 0, len(gangs))
	for id := range gangs {
		jobIDs = append(jobIDs, id)
	}
	sort.Strings(jobIDs)
	for _, id := range jobIDs {
		members := gangs[id]
		gangSize := members[0].Spec.GangSize
		bound := c.boundGangMembers(id)
		if len(members)+bound < gangSize {
			// Gang incomplete: pods still being instantiated; hold the
			// assignment (the paper's "reservation" corner case) by not
			// binding anyone yet.
			continue
		}
		g := &sched.Gang{JobID: id}
		for _, p := range members {
			g.Pods = append(g.Pods, *toSchedPod(p))
		}
		as, fail := c.cfg.GangPolicy.PlaceGang(g, cs)
		if fail != nil {
			c.recordEvent(EventWarning, "FailedScheduling", KindPod, members[0].Name,
				members[0].Spec.Type, fmt.Sprintf("%s: %s", fail.Reason, fail.Message))
			continue
		}
		for i, a := range as {
			cs.Assign(a.Node, g.Pods[i].Demand)
			c.bindPod(a.Pod, a.Node)
		}
	}
	c.schedulePodAtATime(loose, cs)
}

// boundGangMembers counts already-bound members of a gang (e.g. after a
// single member was restarted).
func (c *Cluster) boundGangMembers(jobID string) int {
	n := 0
	for _, p := range c.store.ListPods("") {
		if p.Spec.JobID == jobID && p.Spec.GangSize > 0 && p.Status.Node != "" && !p.Terminated() {
			n++
		}
	}
	return n
}

func (c *Cluster) bindPod(name, nodeName string) {
	now := c.cfg.Clock.Now()
	c.store.UpdatePod(name, func(p *Pod) {
		p.Status.Node = nodeName
		p.Status.ScheduledAt = now
	})
	c.recordEvent(EventNormal, "Scheduled", KindPod, name, "", "bound to "+nodeName)
}

func toSchedPod(p *Pod) *sched.PodSpec {
	return &sched.PodSpec{
		Name:    p.Name,
		JobID:   p.Spec.JobID,
		Demand:  p.Spec.Demand,
		GPUType: p.Spec.GPUType,
	}
}
