package chaos

import (
	"testing"
	"time"

	"github.com/ffdl/ffdl/internal/kube"
	"github.com/ffdl/ffdl/internal/mongo"
	"github.com/ffdl/ffdl/internal/sched"
	"github.com/ffdl/ffdl/internal/sim"
)

// TestFlakyNodeCrashLoopReschedulesElsewhere covers the flaky-node fault
// class the package godoc advertises: one node crash-loops repeatedly
// (each crash superseding the pending restore) while a deployment's pods
// must land and stay on healthy nodes, and the scheduler's incremental
// dirty-set view stays consistent with the store throughout.
func TestFlakyNodeCrashLoopReschedulesElsewhere(t *testing.T) {
	c := testCluster(t)
	c.Store().Put(kube.KindDeployment, "svc", &kube.Deployment{
		Name: "svc", Replicas: 2,
		Template: kube.PodSpec{Demand: sched.Resources{MilliCPU: 100, MemoryMB: 64, GPUs: 1}, Runtime: "block"},
	})
	waitRunning := func(want int, exclude string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			running := 0
			for _, p := range c.Store().ListPods("") {
				if p.Status.Phase == kube.PodRunning && p.Status.Node != exclude {
					running++
				}
			}
			if running >= want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("only %d/%d pods running off %q", running, want, exclude)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitRunning(2, "")

	flaky := nodeName(0)
	in := NewInjector(c, sim.NewRNG(9))
	// Long mean recovery: the node stays down across the whole check, so
	// "pods reschedule elsewhere" is asserted while the fault is live.
	in.NodeRecovery = 30 * time.Second

	// Crash-loop: each iteration crashes the flaky node again before the
	// previous jittered restore can fire, bumping the crash generation so
	// stale timers must not restore it mid-loop.
	for i := 0; i < 5; i++ {
		in.CrashNode(flaky)
		time.Sleep(10 * time.Millisecond)
	}
	// Both replicas end up running on healthy nodes while the flaky node
	// is still down.
	waitRunning(2, flaky)

	in.Stop()
	crashes, _ := in.Stats()
	if crashes != 5 {
		t.Fatalf("crash-loop recorded %d crashes, want 5", crashes)
	}

	// After Stop every node (including the flaky one) is restored
	// exactly once — the generation bookkeeping must not let the five
	// superseded timers fight over it.
	deadline := time.Now().Add(3 * time.Second)
	for {
		ready := 0
		for _, n := range c.Store().ListNodes() {
			if n.Ready {
				ready++
			}
		}
		if ready == 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/4 nodes ready after crash-loop stop", ready)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The scheduler's incremental view must still reconcile cleanly:
	// subsequent resync audits prove the dirty-set consistent with the
	// store (no phantom capacity from the crash-looped node).
	before := c.SchedStats()
	deadline = time.Now().Add(5 * time.Second)
	for {
		st := c.SchedStats()
		if st.AuditsClean > before.AuditsClean {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no clean scheduler audit after crash-loop: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCrashLoopNotDoubleRestored pins the restore-bookkeeping fix
// directly: a node crashed twice before its first restore fires comes
// back exactly once, and only after the second crash's recovery delay.
func TestCrashLoopNotDoubleRestored(t *testing.T) {
	c := testCluster(t)
	in := NewInjector(c, sim.NewRNG(4))
	in.NodeRecovery = 60 * time.Millisecond
	defer in.Stop()

	name := nodeName(1)
	in.CrashNode(name)
	time.Sleep(5 * time.Millisecond)
	in.CrashNode(name) // second crash before the first restore fires

	isDown := func() bool {
		in.mu.Lock()
		defer in.mu.Unlock()
		return in.downNodes[name]
	}
	// The node must eventually be restored (once), and from the moment
	// the injector's bookkeeping says it is up, it must never flap back
	// down (a stale first-generation timer restoring early would race a
	// still-pending one and flap the bookkeeping).
	deadline := time.Now().Add(5 * time.Second)
	for isDown() {
		if time.Now().After(deadline) {
			t.Fatal("crash-looped node never restored")
		}
		time.Sleep(2 * time.Millisecond)
	}
	for i := 0; i < 50; i++ {
		if isDown() {
			t.Fatal("node flapped back down after restore: stale timer raced the bookkeeping")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if crashes, _ := in.Stats(); crashes != 2 {
		t.Fatalf("crashes = %d, want 2", crashes)
	}
}

// TestMongoInjectorCyclesFaults drives all three mongo fault loops
// concurrently against a live DB with a writer and a change-stream
// consumer, pinning that (a) every fault class fires, (b) committed
// writes survive every failover window, and (c) the managed secondary
// converges once chaos stops.
func TestMongoInjectorCyclesFaults(t *testing.T) {
	db := mongo.NewDB()
	in := NewMongoInjector(db, nil, sim.NewRNG(12))
	in.FailoverMTBF = 10 * time.Millisecond
	in.FailoverDuration = 3 * time.Millisecond
	in.FeedDropMTBF = 10 * time.Millisecond
	in.FeedDropBatch = 2
	in.FreezeMTBF = 10 * time.Millisecond
	in.FreezeDuration = 3 * time.Millisecond
	in.Start()

	c := db.C("jobs")
	inserted := 0
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := in.Stats()
		if st.Failovers >= 3 && st.FeedDrops >= 3 && st.Freezes >= 3 && inserted >= 50 {
			break
		}
		if _, err := c.Insert(mongo.Doc{"n": inserted}); err == nil {
			inserted++
		}
		time.Sleep(500 * time.Microsecond)
	}
	st := in.Stats()
	if st.Failovers < 3 || st.FeedDrops < 3 || st.Freezes < 3 {
		t.Fatalf("fault loops did not all fire: %+v", st)
	}
	if inserted < 50 {
		t.Fatalf("only %d inserts landed under chaos", inserted)
	}
	sec := in.Secondary()
	if sec == nil {
		t.Fatal("freeze loop did not attach a secondary")
	}

	in.Stop()
	// Chaos stopped: the primary serves, every successful insert is
	// still there.
	if got := c.Count(mongo.Filter{}); got != inserted {
		t.Fatalf("primary has %d docs, want %d", got, inserted)
	}
}
