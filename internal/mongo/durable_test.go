package mongo

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/ffdl/ffdl/internal/commitlog"
)

func openFileDB(t *testing.T, dir string) *DB {
	t.Helper()
	store, err := commitlog.OpenFileStore(dir)
	if err != nil {
		t.Fatalf("OpenFileStore: %v", err)
	}
	db, err := Open(store, Options{Persist: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return db
}

func TestOpCodecRoundtrip(t *testing.T) {
	ops := []op{
		{Seq: 1, Kind: "insert", Coll: "jobs", Doc: Doc{
			"_id": "training-000001", "user": "alice", "iterations": 30,
			"memory_mb": 4096, "lr": 0.125, "done": false,
			"nested":  Doc{"a": int64(7), "b": "x"},
			"history": []any{Doc{"status": "PENDING", "seq": 1}, Doc{"status": "COMPLETED"}},
			"tags":    []string{"p1", "p2"},
			"none":    nil,
		}},
		{Seq: 99, Kind: "update", Coll: "tenants", Doc: Doc{"_id": "t-1", "quota": float64(12)}},
		{Seq: 100, Kind: "delete", Coll: "jobs", ID: "training-000001"},
	}
	for _, want := range ops {
		buf, err := encodeOp(nil, want)
		if err != nil {
			t.Fatalf("encodeOp(%+v): %v", want, err)
		}
		got, err := decodeOp(buf)
		if err != nil {
			t.Fatalf("decodeOp: %v", err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("roundtrip mismatch:\n got %#v\nwant %#v", got, want)
		}
	}
}

func TestOpCodecPreservesDynamicTypes(t *testing.T) {
	in := Doc{"_id": "x", "i": 5, "i32": int32(6), "i64": int64(7), "u": uint64(8),
		"f32": float32(1.5), "f64": 2.5, "s": "str", "b": true}
	buf, err := encodeOp(nil, op{Kind: "insert", Coll: "c", Doc: in})
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeOp(buf)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range in {
		gv := got.Doc[k]
		if reflect.TypeOf(gv) != reflect.TypeOf(v) {
			t.Errorf("field %q: decoded type %T, want %T", k, gv, v)
		}
		if gv != v {
			t.Errorf("field %q: decoded %v, want %v", k, gv, v)
		}
	}
}

func TestOpCodecRejectsUnknownTypes(t *testing.T) {
	type weird struct{ X int }
	if _, err := encodeOp(nil, op{Kind: "insert", Coll: "c", Doc: Doc{"_id": "x", "w": weird{1}}}); err == nil {
		t.Fatal("encodeOp accepted a struct value")
	}
	if !errors.Is(mustErr(encodeOp(nil, op{Kind: "insert", Coll: "c", Doc: Doc{"w": weird{}}})), errOpEncType) {
		t.Fatal("want errOpEncType")
	}
}

func mustErr(_ []byte, err error) error { return err }

func TestOpCodecCorruptInputErrors(t *testing.T) {
	buf, err := encodeOp(nil, op{Seq: 3, Kind: "insert", Coll: "jobs", Doc: Doc{"_id": "a", "n": 1}})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(buf); cut++ {
		if _, err := decodeOp(buf[:cut]); err == nil {
			t.Fatalf("decodeOp accepted truncation at %d", cut)
		}
	}
}

// TestOpenRecoversCollections is the core durability contract: a
// reopened database serves the same documents, resumes the op sequence,
// and never re-mints a recovered auto-id.
func TestOpenRecoversCollections(t *testing.T) {
	dir := t.TempDir()
	db := openFileDB(t, dir)
	jobs := db.C("jobs")
	jobs.EnsureIndex("user")
	id1, err := jobs.Insert(Doc{"user": "alice", "status": "PENDING"})
	if err != nil {
		t.Fatal(err)
	}
	id2, err := jobs.Insert(Doc{"user": "bob", "status": "PENDING"})
	if err != nil {
		t.Fatal(err)
	}
	if err := jobs.UpdateOne(Filter{"_id": id1}, Update{Set: Doc{"status": "COMPLETED"}}); err != nil {
		t.Fatal(err)
	}
	if err := jobs.DeleteOne(Filter{"_id": id2}); err != nil {
		t.Fatal(err)
	}
	seqBefore := db.OplogLen()

	db2 := openFileDB(t, dir)
	jobs2 := db2.C("jobs")
	if got := jobs2.Len(); got != 1 {
		t.Fatalf("recovered %d docs, want 1", got)
	}
	d, err := jobs2.FindOne(Filter{"_id": id1})
	if err != nil {
		t.Fatalf("recovered doc missing: %v", err)
	}
	if d["status"] != "COMPLETED" {
		t.Fatalf("recovered status %v, want COMPLETED (update post-image lost)", d["status"])
	}
	if got := db2.OplogLen(); got != seqBefore {
		t.Fatalf("recovered OplogLen %d, want %d", got, seqBefore)
	}
	// Auto-id sequence must advance past recovered ids.
	id3, err := jobs2.Insert(Doc{"user": "carol"})
	if err != nil {
		t.Fatalf("post-recovery insert: %v", err)
	}
	if id3 == id1 || id3 == id2 {
		t.Fatalf("post-recovery insert re-minted id %s", id3)
	}
	// Indexes rebuilt over recovered docs.
	jobs2.EnsureIndex("user")
	if n := jobs2.Count(Filter{"user": "alice"}); n != 1 {
		t.Fatalf("indexed count = %d, want 1", n)
	}
}

// TestOpenTornOplogTail flips a byte in the newest segment file and
// reopens: recovery must keep a strict prefix (never fail, never
// resurrect the damaged suffix) and continue appending past it.
func TestOpenTornOplogTail(t *testing.T) {
	dir := t.TempDir()
	db := openFileDB(t, dir)
	c := db.C("items")
	for i := 0; i < 20; i++ {
		if _, err := c.Insert(Doc{"_id": fmt.Sprintf("it-%03d", i), "n": i}); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segment files: %v", err)
	}
	last := segs[len(segs)-1]
	data, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 8 {
		t.Fatalf("segment too small to corrupt: %d bytes", len(data))
	}
	data[len(data)-5] ^= 0xFF
	if err := os.WriteFile(last, data, 0o644); err != nil {
		t.Fatal(err)
	}

	db2 := openFileDB(t, dir)
	c2 := db2.C("items")
	n := c2.Len()
	if n == 0 || n > 20 {
		t.Fatalf("recovered %d docs, want a non-empty strict prefix of 20", n)
	}
	// Recovered docs must be exactly the first n inserted.
	for i := 0; i < n; i++ {
		if _, err := c2.FindOne(Filter{"_id": fmt.Sprintf("it-%03d", i)}); err != nil {
			t.Fatalf("prefix hole at %d (recovered %d): %v", i, n, err)
		}
	}
	// Appends continue with fresh offsets past the recovered tail.
	before := db2.OplogLen()
	if _, err := c2.Insert(Doc{"_id": "it-new"}); err != nil {
		t.Fatal(err)
	}
	if got := db2.OplogLen(); got != before+1 {
		t.Fatalf("OplogLen %d after append, want %d", got, before+1)
	}
}

// TestReopenedFloorYieldsResync drives enough churn that retention
// drops sealed segments, reopens, and checks a low resume token gets
// the explicit resync marker — the floor must rise across restart, not
// silently serve a gap.
func TestReopenedFloorYieldsResync(t *testing.T) {
	dir := t.TempDir()
	db := openFileDB(t, dir)
	c := db.C("churn")
	if _, err := c.Insert(Doc{"_id": "doc", "n": 0}); err != nil {
		t.Fatal(err)
	}
	// >2 segments of updates to the same key: compaction seals and merges,
	// and the reopened log's first retained record sits well above seq 1.
	for i := 1; i <= 5000; i++ {
		if err := c.UpdateOne(Filter{"_id": "doc"}, Update{Set: Doc{"n": i}}); err != nil {
			t.Fatal(err)
		}
	}

	db2 := openFileDB(t, dir)
	if floor := db2.OplogFloor(); floor <= 1 {
		t.Fatalf("reopened floor = %d, want > 1 after compaction", floor)
	}
	cs := db2.Watch("churn", 1)
	defer cs.Cancel()
	ev, ok := <-cs.Events()
	if !ok {
		t.Fatal("stream closed without events")
	}
	if ev.Kind != "resync" {
		t.Fatalf("first event Kind = %q, want explicit resync for a pre-floor token", ev.Kind)
	}
	// The latest state survived compaction.
	d, err := db2.C("churn").FindOne(Filter{"_id": "doc"})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := d["n"].(int); got != 5000 {
		t.Fatalf("recovered n = %v, want 5000", d["n"])
	}
}

// TestOpenEmptyStore: an empty FileStore directory is a valid empty
// database.
func TestOpenEmptyStore(t *testing.T) {
	db := openFileDB(t, t.TempDir())
	if db.OplogLen() != 0 {
		t.Fatalf("OplogLen = %d on empty store", db.OplogLen())
	}
	if db.C("x").Len() != 0 {
		t.Fatal("phantom docs in empty store")
	}
}

// TestDurableChangeStreamResumesBySeq: a change stream resumed from a
// retained token replays exactly the missed suffix.
func TestDurableChangeStreamResumesBySeq(t *testing.T) {
	dir := t.TempDir()
	db := openFileDB(t, dir)
	c := db.C("jobs")
	for i := 0; i < 10; i++ {
		if _, err := c.Insert(Doc{"_id": fmt.Sprintf("j-%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	db2 := openFileDB(t, dir)
	cs := db2.Watch("jobs", 4) // resume token: saw seqs 1..4
	defer cs.Cancel()
	for want := uint64(5); want <= 10; want++ {
		ev := <-cs.Events()
		if ev.Kind == "resync" {
			t.Fatalf("unexpected resync for retained token (floor %d)", db2.OplogFloor())
		}
		if ev.Seq != want {
			t.Fatalf("resumed Seq %d, want %d", ev.Seq, want)
		}
	}
}
