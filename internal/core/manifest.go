package core

import (
	"fmt"

	"github.com/ffdl/ffdl/internal/perf"
	"github.com/ffdl/ffdl/internal/sched"
)

// Manifest is the user-facing job description (§3.1): "FfDL simply
// requires data scientists to provide their existing code, command to
// execute said code, location of data, credentials ..., number of
// learners, and the resources needed per learner."
type Manifest struct {
	// Name is a human label; User owns the job.
	Name string
	User string

	// Framework and Command describe the user workload. Command is
	// opaque to the platform (user code is a black box).
	Framework perf.Framework
	Model     perf.Model
	Command   string

	// Learners is the number of learner processes; GPUsPerLearner and
	// GPUType pick the hardware. CPUs/MemoryMB default to the t-shirt
	// size for the GPU configuration when zero (§5.4).
	Learners       int
	GPUsPerLearner int
	GPUType        perf.GPUType
	CPUs           int
	MemoryMB       int64

	// Training shape (drives the simulated learner).
	BatchSize       int
	Iterations      int
	CheckpointEvery int

	// Data locations and (placeholder) credentials.
	DataBucket   string
	DataPrefix   string
	ResultBucket string
	DataCreds    string
}

// Validate checks the manifest and applies t-shirt defaults.
func (m *Manifest) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("core: manifest needs a name")
	}
	if m.User == "" {
		return fmt.Errorf("core: manifest needs a user")
	}
	if m.Learners <= 0 {
		m.Learners = 1
	}
	if m.GPUsPerLearner < 0 {
		return fmt.Errorf("core: negative GPUs per learner")
	}
	if m.Iterations <= 0 {
		return fmt.Errorf("core: job needs a positive iteration count")
	}
	if m.GPUType == "" {
		m.GPUType = perf.K80
	}
	if m.CPUs == 0 && m.GPUsPerLearner > 0 {
		size := perf.RecommendSize(m.GPUsPerLearner, m.GPUType)
		m.CPUs = size.CPU
		if m.MemoryMB == 0 {
			m.MemoryMB = int64(size.MemoryGB) * 1024
		}
	}
	if m.CPUs == 0 {
		m.CPUs = 4
	}
	if m.MemoryMB == 0 {
		m.MemoryMB = 9 * 1024
	}
	if m.BatchSize <= 0 {
		m.BatchSize = 64
	}
	return nil
}

// LearnerDemand is the per-learner resource request.
func (m *Manifest) LearnerDemand() sched.Resources {
	return sched.Resources{
		MilliCPU: int64(m.CPUs) * 1000,
		MemoryMB: m.MemoryMB,
		GPUs:     m.GPUsPerLearner,
	}
}

// TotalGPUs is the job's aggregate GPU demand.
func (m *Manifest) TotalGPUs() int { return m.Learners * m.GPUsPerLearner }
