// Package mongo implements the metadata store FfDL keeps job documents
// in: a MongoDB-like in-process document database with collections,
// filter/update operators, secondary indexes, and oplog-based
// primary→secondary replication. The paper stores job metadata,
// identifiers, resource requirements, user ids, status history and other
// long-lived business artifacts here (§3.2); the API surface below covers
// exactly that usage.
package mongo

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/ffdl/ffdl/internal/commitlog"
	"github.com/ffdl/ffdl/internal/obs"
	"github.com/ffdl/ffdl/internal/sim"
)

// Doc is a BSON-like document. Values should be gob-friendly primitives,
// nested Docs, or slices thereof.
//
// # Copy-on-write semantics
//
// Documents handed out by reads (Find, FindOne, change-stream events,
// oplog replication) are copy-on-write views: the top-level map is a
// private copy, but nested documents and slices are SHARED with the
// store. The mutation rules callers must follow:
//
//   - Top-level fields of a returned Doc may be freely assigned.
//   - Nested values (anything below the top level) are read-only; a
//     caller that needs to mutate them must DeepClone the Doc first.
//   - All store-side mutations go through Update, which path-copies
//     every nested container it touches, so a view taken before an
//     update never observes it.
//
// This is what makes reads O(top-level fields) instead of O(document):
// a job document dragging a 10k-entry status history clones in constant
// time. See docs/architecture.md ("Throughput & batching").
type Doc map[string]any

// Clone returns a copy-on-write view of the document: a fresh top-level
// map sharing nested values with the original. See the Doc mutation
// rules; use DeepClone before mutating nested state.
func (d Doc) Clone() Doc {
	out := make(Doc, len(d))
	for k, v := range d {
		out[k] = v
	}
	return out
}

// DeepClone fully copies the document, including nested documents and
// slices, yielding a view the caller may mutate arbitrarily.
func (d Doc) DeepClone() Doc {
	out := make(Doc, len(d))
	for k, v := range d {
		out[k] = cloneValue(v)
	}
	return out
}

func cloneValue(v any) any {
	switch x := v.(type) {
	case Doc:
		return x.DeepClone()
	case map[string]any:
		return Doc(x).DeepClone()
	case []any:
		out := make([]any, len(x))
		for i, e := range x {
			out[i] = cloneValue(e)
		}
		return out
	case []string:
		out := make([]string, len(x))
		copy(out, x)
		return out
	default:
		return v
	}
}

// lookupPath resolves a dotted field path ("status.phase").
func lookupPath(d Doc, path string) (any, bool) {
	return lookupParts(d, strings.Split(path, "."))
}

// lookupParts resolves a pre-split field path — the allocation-free
// form for hot loops (sort comparators call it O(n log n) times).
func lookupParts(d Doc, parts []string) (any, bool) {
	var cur any = d
	for _, p := range parts {
		m, ok := asDoc(cur)
		if !ok {
			return nil, false
		}
		cur, ok = m[p]
		if !ok {
			return nil, false
		}
	}
	return cur, true
}

func asDoc(v any) (Doc, bool) {
	switch x := v.(type) {
	case Doc:
		return x, true
	case map[string]any:
		return Doc(x), true
	default:
		return nil, false
	}
}

// setPath writes a dotted field path, creating intermediate documents.
func setPath(d Doc, path string, value any) {
	parts := strings.Split(path, ".")
	cur := d
	for _, p := range parts[:len(parts)-1] {
		next, ok := asDoc(cur[p])
		if !ok {
			next = Doc{}
			cur[p] = next
		}
		cur = next
	}
	cur[parts[len(parts)-1]] = value
}

// setPathCOW writes a dotted field path like setPath, but path-copies
// every intermediate document it descends through. Stored documents
// share nested containers with copy-on-write reader views, so an
// in-place write below the top level would leak into views taken
// before the update; copying the spine keeps those views immutable.
// Only the path is copied — siblings stay shared.
func setPathCOW(d Doc, path string, value any) {
	parts := strings.Split(path, ".")
	cur := d
	for _, p := range parts[:len(parts)-1] {
		next, ok := asDoc(cur[p])
		if !ok {
			next = Doc{}
		} else {
			next = next.Clone()
		}
		cur[p] = next
		cur = next
	}
	cur[parts[len(parts)-1]] = value
}

// compare orders two scalar values; ok=false when incomparable.
func compare(a, b any) (int, bool) {
	af, aok := toFloat(a)
	bf, bok := toFloat(b)
	if aok && bok {
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		default:
			return 0, true
		}
	}
	as, aok := a.(string)
	bs, bok := b.(string)
	if aok && bok {
		return strings.Compare(as, bs), true
	}
	ab, aok := a.(bool)
	bb, bok := b.(bool)
	if aok && bok {
		switch {
		case ab == bb:
			return 0, true
		case !ab:
			return -1, true
		default:
			return 1, true
		}
	}
	return 0, false
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case int:
		return float64(x), true
	case int32:
		return float64(x), true
	case int64:
		return float64(x), true
	case uint64:
		return float64(x), true
	case float32:
		return float64(x), true
	case float64:
		return x, true
	default:
		return 0, false
	}
}

// equal reports semantic equality across numeric widths.
func equal(a, b any) bool {
	if c, ok := compare(a, b); ok {
		return c == 0
	}
	return a == b
}

// Filter is a query: field path → condition. A condition is either a
// literal (equality) or an Op.
type Filter map[string]any

// Op is a comparison operator condition.
type Op struct {
	Kind  OpKind
	Value any
	List  []any // for OpIn
}

// OpKind enumerates filter operators.
type OpKind int

// Filter operators.
const (
	OpEq OpKind = iota + 1
	OpNe
	OpGt
	OpGte
	OpLt
	OpLte
	OpIn
	OpExists
)

// Gt builds a $gt condition.
func Gt(v any) Op { return Op{Kind: OpGt, Value: v} }

// Gte builds a $gte condition.
func Gte(v any) Op { return Op{Kind: OpGte, Value: v} }

// Lt builds a $lt condition.
func Lt(v any) Op { return Op{Kind: OpLt, Value: v} }

// Lte builds a $lte condition.
func Lte(v any) Op { return Op{Kind: OpLte, Value: v} }

// Ne builds a $ne condition.
func Ne(v any) Op { return Op{Kind: OpNe, Value: v} }

// In builds an $in condition.
func In(vs ...any) Op { return Op{Kind: OpIn, List: vs} }

// Exists builds an $exists condition.
func Exists(want bool) Op { return Op{Kind: OpExists, Value: want} }

// Matches reports whether doc satisfies the filter. This is the
// interpreted one-shot path: it re-splits every field path on each
// call, which is fine for matching a single document but quadratic-ish
// across a candidate scan — the query engine (Find, Count, update,
// delete) compiles the filter once instead (see Filter.compile).
func (f Filter) Matches(d Doc) bool {
	for path, cond := range f {
		got, present := lookupPath(d, path)
		op, isOp := cond.(Op)
		if !isOp {
			if !present || !equal(got, cond) {
				return false
			}
			continue
		}
		switch op.Kind {
		case OpExists:
			want, _ := op.Value.(bool)
			if present != want {
				return false
			}
		case OpEq:
			if !present || !equal(got, op.Value) {
				return false
			}
		case OpNe:
			if present && equal(got, op.Value) {
				return false
			}
		case OpIn:
			if !present {
				return false
			}
			found := false
			for _, v := range op.List {
				if equal(got, v) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		default:
			if !present {
				return false
			}
			c, ok := compare(got, op.Value)
			if !ok {
				return false
			}
			switch op.Kind {
			case OpGt:
				if c <= 0 {
					return false
				}
			case OpGte:
				if c < 0 {
					return false
				}
			case OpLt:
				if c >= 0 {
					return false
				}
			case OpLte:
				if c > 0 {
					return false
				}
			}
		}
	}
	return true
}

// compiledCond is one filter condition with its field path pre-split
// and its operator dispatch resolved to a closure, so evaluating a
// candidate document costs only the lookupParts walk plus one indirect
// call — no per-candidate strings.Split, no per-candidate type switch.
type compiledCond struct {
	parts []string
	match func(got any, present bool) bool
}

// compiledFilter is a Filter compiled for repeated evaluation. Find,
// Count, update and delete compile each query once and run the
// compiled form against every candidate; Filter.Matches remains the
// interpreted one-shot path for callers matching a single document.
type compiledFilter []compiledCond

// compile pre-splits every field path and resolves each condition's
// operator up front.
func (f Filter) compile() compiledFilter {
	cf := make(compiledFilter, 0, len(f))
	for path, cond := range f {
		cf = append(cf, compiledCond{
			parts: strings.Split(path, "."),
			match: compileCond(cond),
		})
	}
	return cf
}

// compileCond resolves one condition (literal equality or an Op) to a
// match closure. Behavior is identical to the corresponding branch of
// Filter.Matches.
func compileCond(cond any) func(got any, present bool) bool {
	op, isOp := cond.(Op)
	if !isOp {
		return func(got any, present bool) bool { return present && equal(got, cond) }
	}
	switch op.Kind {
	case OpExists:
		want, _ := op.Value.(bool)
		return func(_ any, present bool) bool { return present == want }
	case OpEq:
		v := op.Value
		return func(got any, present bool) bool { return present && equal(got, v) }
	case OpNe:
		v := op.Value
		return func(got any, present bool) bool { return !present || !equal(got, v) }
	case OpIn:
		list := op.List
		return func(got any, present bool) bool {
			if !present {
				return false
			}
			for _, v := range list {
				if equal(got, v) {
					return true
				}
			}
			return false
		}
	case OpGt, OpGte, OpLt, OpLte:
		kind, v := op.Kind, op.Value
		return func(got any, present bool) bool {
			if !present {
				return false
			}
			c, ok := compare(got, v)
			if !ok {
				return false
			}
			switch kind {
			case OpGt:
				return c > 0
			case OpGte:
				return c >= 0
			case OpLt:
				return c < 0
			default:
				return c <= 0
			}
		}
	default:
		// Unknown operator: mirror Matches, which requires the field to
		// be present and comparable and then matches vacuously.
		v := op.Value
		return func(got any, present bool) bool {
			if !present {
				return false
			}
			_, ok := compare(got, v)
			return ok
		}
	}
}

// matches reports whether doc satisfies the compiled filter.
func (cf compiledFilter) matches(d Doc) bool {
	for i := range cf {
		got, present := lookupParts(d, cf[i].parts)
		if !cf[i].match(got, present) {
			return false
		}
	}
	return true
}

// Update describes a mutation.
type Update struct {
	// Set assigns field paths.
	Set Doc
	// Inc increments numeric fields.
	Inc map[string]float64
	// Push appends to array fields.
	Push map[string]any
	// Unset removes field paths.
	Unset []string
}

// apply mutates d under the store's copy-on-write discipline: d's
// top-level map is private to the store, but nested containers may be
// shared with reader views, so every write below the top level goes
// through setPathCOW.
//
// Push deliberately appends WITHOUT copying the array: versions of a
// stored document form a linear history (writes are serialized per
// collection), so the append writes at an index beyond the length of
// every previously handed-out view — invisible to all of them. This is
// what makes a status-history append O(1) amortized instead of
// O(history).
func (u Update) apply(d Doc) {
	for k, v := range u.Set {
		setPathCOW(d, k, cloneValue(v))
	}
	for k, delta := range u.Inc {
		cur, _ := lookupPath(d, k)
		f, _ := toFloat(cur)
		setPathCOW(d, k, f+delta)
	}
	for k, v := range u.Push {
		cur, _ := lookupPath(d, k)
		arr, _ := cur.([]any)
		setPathCOW(d, k, append(arr, cloneValue(v)))
	}
	for _, k := range u.Unset {
		parts := strings.Split(k, ".")
		cur := d
		okPath := true
		for _, p := range parts[:len(parts)-1] {
			next, ok := asDoc(cur[p])
			if !ok {
				okPath = false
				break
			}
			next = next.Clone()
			cur[p] = next
			cur = next
		}
		if okPath {
			delete(cur, parts[len(parts)-1])
		}
	}
}

// Errors.
var (
	// ErrNotFound reports that no document matched.
	ErrNotFound = errors.New("mongo: document not found")
	// ErrDuplicateID reports an insert with an existing _id.
	ErrDuplicateID = errors.New("mongo: duplicate _id")
	// ErrUnavailable reports that the primary is (simulated) down — a
	// failover window injected by SetUnavailable. Erroring operations
	// (FindOne, Insert, Update*, Upsert, DeleteOne) surface it; Find and
	// Count, which have no error channel, return empty results, which is
	// safe for their level-triggered consumers (they re-read on the next
	// pass). Callers classify it as transient and retry under a
	// resilience policy.
	ErrUnavailable = errors.New("mongo: primary unavailable")
)

// Collection is a set of documents keyed by _id with optional secondary
// hash indexes.
type Collection struct {
	mu      sync.RWMutex
	name    string
	docs    map[string]Doc
	indexes map[string]map[string][]string // field -> value-string -> ids
	seq     uint64
	db      *DB
}

// Name returns the collection name.
func (c *Collection) Name() string { return c.name }

// EnsureIndex builds a hash index over a field path to accelerate
// equality queries (the paper indexes job history by user/org).
func (c *Collection) EnsureIndex(field string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.indexes[field]; ok {
		return
	}
	idx := make(map[string][]string)
	for id, d := range c.docs {
		if v, ok := lookupPath(d, field); ok {
			key := fmt.Sprint(v)
			idx[key] = append(idx[key], id)
		}
	}
	c.indexes[field] = idx
}

func (c *Collection) indexAddLocked(d Doc, id string) {
	for field, idx := range c.indexes {
		if v, ok := lookupPath(d, field); ok {
			key := fmt.Sprint(v)
			idx[key] = append(idx[key], id)
		}
	}
}

func (c *Collection) indexRemoveLocked(d Doc, id string) {
	for field, idx := range c.indexes {
		if v, ok := lookupPath(d, field); ok {
			key := fmt.Sprint(v)
			ids := idx[key]
			for i, x := range ids {
				if x == id {
					idx[key] = append(ids[:i], ids[i+1:]...)
					break
				}
			}
		}
	}
}

// Insert stores a document, assigning _id when absent. It returns the
// document id. The input is deep-copied: the store must never alias
// caller-owned memory, or later caller mutations would corrupt the
// copy-on-write views reads hand out.
func (c *Collection) Insert(d Doc) (string, error) {
	defer c.db.opEnd(c.db.opStart())
	if c.db.Unavailable() {
		return "", ErrUnavailable
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	stored := d.DeepClone()
	id, _ := stored["_id"].(string)
	if id == "" {
		c.seq++
		id = fmt.Sprintf("%s-%06d", c.name, c.seq)
		stored["_id"] = id
	}
	if _, exists := c.docs[id]; exists {
		return "", fmt.Errorf("%w: %s", ErrDuplicateID, id)
	}
	c.docs[id] = stored
	c.indexAddLocked(stored, id)
	// Oplog entries carry copy-on-write views: O(top-level fields), not
	// O(document) — the store's update discipline keeps the shared
	// nested values immutable.
	c.db.logOp(op{Kind: "insert", Coll: c.name, Doc: stored.Clone()})
	return id, nil
}

// candidatesLocked returns ids potentially matching the filter: the
// primary key directly for an _id equality (the hottest query shape —
// every status transition reads by _id), a hash index when an equality
// condition over an indexed field exists, and a full scan otherwise.
func (c *Collection) candidatesLocked(f Filter) []string {
	if id, ok := f["_id"].(string); ok {
		if _, exists := c.docs[id]; exists {
			return []string{id}
		}
		return nil
	}
	for field, cond := range f {
		if _, isOp := cond.(Op); isOp {
			continue
		}
		if idx, ok := c.indexes[field]; ok {
			ids := idx[fmt.Sprint(cond)]
			out := make([]string, len(ids))
			copy(out, ids)
			return out
		}
	}
	out := make([]string, 0, len(c.docs))
	for id := range c.docs {
		out = append(out, id)
	}
	return out
}

// FindOne returns the first matching document (in _id order for
// determinism).
func (c *Collection) FindOne(f Filter) (Doc, error) {
	if c.db.Unavailable() {
		return nil, ErrUnavailable
	}
	docs := c.Find(f, FindOpts{Limit: 1})
	if len(docs) == 0 {
		return nil, ErrNotFound
	}
	return docs[0], nil
}

// FindOpts shape Find results.
type FindOpts struct {
	// SortBy is a field path; empty sorts by _id.
	SortBy string
	// Desc reverses the sort.
	Desc bool
	// Limit bounds the result count; 0 = unlimited.
	Limit int
}

// Find returns copy-on-write views of all matching documents (see the
// Doc mutation rules). Matching and sorting run against the stored
// documents under the read lock — an indexed-equality query with a sort
// and a Limit never materializes the losers; only the surviving window
// is cloned.
func (c *Collection) Find(f Filter, opts FindOpts) []Doc {
	defer c.db.opEnd(c.db.opStart())
	if c.db.Unavailable() {
		return nil // level-triggered consumers re-read on their next pass
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	ids := c.candidatesLocked(f)
	cf := f.compile()
	matched := make([]Doc, 0, len(ids))
	for _, id := range ids {
		d, ok := c.docs[id]
		if ok && cf.matches(d) {
			matched = append(matched, d)
		}
	}
	sortBy := opts.SortBy
	if sortBy == "" {
		sortBy = "_id"
	}
	sortParts := strings.Split(sortBy, ".")
	sort.SliceStable(matched, func(i, j int) bool {
		vi, _ := lookupParts(matched[i], sortParts)
		vj, _ := lookupParts(matched[j], sortParts)
		cmp, ok := compare(vi, vj)
		if !ok {
			cmp = strings.Compare(fmt.Sprint(vi), fmt.Sprint(vj))
		}
		if opts.Desc {
			return cmp > 0
		}
		return cmp < 0
	})
	if opts.Limit > 0 && len(matched) > opts.Limit {
		matched = matched[:opts.Limit]
	}
	out := make([]Doc, len(matched))
	for i, d := range matched {
		out[i] = d.Clone()
	}
	return out
}

// Count returns the number of matching documents.
func (c *Collection) Count(f Filter) int {
	if c.db.Unavailable() {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	cf := f.compile()
	n := 0
	for _, id := range c.candidatesLocked(f) {
		if d, ok := c.docs[id]; ok && cf.matches(d) {
			n++
		}
	}
	return n
}

// UpdateOne applies an update to the first matching document.
func (c *Collection) UpdateOne(f Filter, u Update) error {
	n, err := c.update(f, u, 1)
	if err != nil {
		return err
	}
	if n == 0 {
		return ErrNotFound
	}
	return nil
}

// UpdateMany applies an update to all matching documents, returning the
// count updated.
func (c *Collection) UpdateMany(f Filter, u Update) (int, error) {
	return c.update(f, u, 0)
}

func (c *Collection) update(f Filter, u Update, limit int) (int, error) {
	defer c.db.opEnd(c.db.opStart())
	if c.db.Unavailable() {
		return 0, ErrUnavailable
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := c.candidatesLocked(f)
	sort.Strings(ids)
	cf := f.compile()
	n := 0
	for _, id := range ids {
		d, ok := c.docs[id]
		if !ok || !cf.matches(d) {
			continue
		}
		c.indexRemoveLocked(d, id)
		u.apply(d)
		d["_id"] = id // _id is immutable
		c.indexAddLocked(d, id)
		c.db.logOp(op{Kind: "update", Coll: c.name, Doc: d.Clone()})
		n++
		if limit > 0 && n >= limit {
			break
		}
	}
	return n, nil
}

// Upsert updates the first match or inserts a new document from the
// filter's equality fields plus the update's Set fields.
func (c *Collection) Upsert(f Filter, u Update) error {
	if err := c.UpdateOne(f, u); err == nil || !errors.Is(err, ErrNotFound) {
		return err
	}
	d := Doc{}
	for k, v := range f {
		if _, isOp := v.(Op); !isOp {
			setPath(d, k, v)
		}
	}
	u.apply(d)
	_, err := c.Insert(d)
	return err
}

// DeleteOne removes the first matching document.
func (c *Collection) DeleteOne(f Filter) error {
	if c.db.Unavailable() {
		return ErrUnavailable
	}
	n := c.delete(f, 1)
	if n == 0 {
		return ErrNotFound
	}
	return nil
}

// DeleteMany removes all matching documents, returning the count.
func (c *Collection) DeleteMany(f Filter) int {
	return c.delete(f, 0)
}

func (c *Collection) delete(f Filter, limit int) int {
	defer c.db.opEnd(c.db.opStart())
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := c.candidatesLocked(f)
	sort.Strings(ids)
	cf := f.compile()
	n := 0
	for _, id := range ids {
		d, ok := c.docs[id]
		if !ok || !cf.matches(d) {
			continue
		}
		c.indexRemoveLocked(d, id)
		delete(c.docs, id)
		c.db.logOp(op{Kind: "delete", Coll: c.name, ID: id})
		n++
		if limit > 0 && n >= limit {
			break
		}
	}
	return n
}

// Len returns the number of documents.
func (c *Collection) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.docs)
}

// op is an oplog entry replicated to secondaries.
type op struct {
	Seq  uint64
	Kind string
	Coll string
	Doc  Doc
	ID   string
}

// DB is a database: named collections plus an oplog that feeds both
// secondary replication and change streams (Watch). The oplog rides the
// platform's commit log (internal/commitlog): entries are records keyed
// by collection and _id, sequence numbers are log offsets, and
// retention drops whole sealed segments off the tail — so a slow
// ChangeStream either replays the contiguous retained history or is
// told explicitly (a "resync" event) that its token fell below the
// retained floor. The previous ring buffer instead discarded its older
// half in place once it passed 64k entries, and a stale resume silently
// started at the new floor.
type DB struct {
	mu      sync.Mutex
	colls   map[string]*Collection
	oplog   *commitlog.Log
	opSeq   uint64
	subs    map[int]chan op
	nextSub int
	closed  bool
	// persist encodes every oplog entry into its record payload (see
	// opcodec.go) so the log's durable bytes are self-contained; set for
	// FileStore-backed databases, off for the MemStore default where ops
	// ride the in-memory record Value.
	persist bool
	// obsOp/clock time every collection operation into the platform's
	// "mongo.op_latency" histogram; both nil on an uninstrumented DB.
	obsOp *obs.Histogram
	clock sim.Clock
	// unavailable simulates a primary failover window: erroring
	// operations return ErrUnavailable while set. Guarded by mu.
	unavailable bool
	// feedDrops suppresses change-feed fan-out for the next N committed
	// ops (the oplog itself still records them), modeling dropped
	// change-stream batches: consumers detect the Seq gap and refill
	// from the collections. Guarded by mu.
	feedDrops int
}

// SetUnavailable toggles a simulated primary outage: while on, erroring
// operations return ErrUnavailable and Find/Count return empty results.
// Committed state is untouched — this is a failover window, not a
// crash.
func (db *DB) SetUnavailable(on bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.unavailable = on
}

// Unavailable reports whether a simulated outage is active.
func (db *DB) Unavailable() bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.unavailable
}

// DropFeedNext suppresses change-feed fan-out for the next n committed
// writes: the ops commit to the oplog but are not delivered to live
// subscribers, modeling a dropped change-stream batch. Subscribers see
// a Seq gap and recover via replay or refill.
func (db *DB) DropFeedNext(n int) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.feedDrops += n
}

// Options configures Open.
type Options struct {
	// Persist makes the oplog's durable bytes self-contained: every
	// entry is encoded into its record payload, and key-compaction is
	// enabled so retention always keeps at least the newest op per
	// document — which is what makes collections rebuildable from the
	// retained log on reopen. Set it when the store outlives the
	// process (FileStore); leave it off for MemStore.
	Persist bool
	// Obs, when non-nil, times every collection operation into the
	// "mongo.op_latency" histogram and instruments the oplog's commit
	// log. Nil runs the database uninstrumented at zero cost.
	Obs *obs.Registry
	// Clock provides the timestamps for instrumented operations
	// (defaults to the real clock when Obs is set and Clock is nil).
	Clock sim.Clock
}

// opStart begins timing one instrumented collection operation; it
// returns the zero time on an uninstrumented DB so the paired opEnd
// no-ops. Use as `defer db.opEnd(db.opStart())`.
func (db *DB) opStart() time.Time {
	if db.obsOp == nil {
		return time.Time{}
	}
	return db.clock.Now()
}

func (db *DB) opEnd(start time.Time) {
	if start.IsZero() {
		return
	}
	db.obsOp.ObserveDuration(db.clock.Now().Sub(start))
}

// oplogOptions bounds the retained oplog at ~64k entries (64 sealed
// segments of 1024), matching the old ring's cap but trimming
// segment-at-a-time with an observable floor instead of halving in
// place.
func oplogOptions() commitlog.Options {
	return commitlog.Options{
		// Offsets coincide with the oplog's historical 1-based Seqs.
		FirstOffset:    1,
		SegmentRecords: 1024,
		MaxSegments:    64,
	}
}

// NewDB returns an empty database over a fresh in-memory oplog. It is
// the infallible constructor: an empty MemStore cannot fail to open.
// Durable databases use Open, which surfaces store errors instead of
// panicking.
func NewDB() *DB {
	db, err := Open(commitlog.NewMemStore(), Options{})
	if err != nil {
		panic(fmt.Sprintf("mongo: oplog open on empty store cannot fail: %v", err))
	}
	return db
}

// Open opens a database over the given oplog store, recovering whatever
// the store holds: collections are rebuilt by replaying the retained
// oplog (key-compaction keeps at least the newest op per document, and
// update entries carry full post-images, so the replay converges on the
// latest committed state), the op sequence resumes past the last
// persisted record, and per-collection auto-id sequences advance past
// every recovered id. An empty store yields an empty database. A torn
// oplog tail — a crash mid-append — is truncated to the last valid
// record by the commit log's own recovery; Open never fails on one.
func Open(store commitlog.SegmentStore, opts Options) (*DB, error) {
	lopts := oplogOptions()
	if opts.Persist {
		// Without compaction, MaxSegments retention would eventually drop
		// the only insert a long-lived document ever had; latest-per-key
		// retention keeps recovery complete at any log length.
		lopts.Compact = true
	}
	lopts.Obs = opts.Obs
	lopts.Clock = opts.Clock
	log, err := commitlog.Open(store, lopts)
	if err != nil {
		return nil, fmt.Errorf("mongo: open oplog: %w", err)
	}
	db := &DB{
		colls:   make(map[string]*Collection),
		oplog:   log,
		subs:    make(map[int]chan op),
		persist: opts.Persist,
	}
	if opts.Obs != nil {
		db.obsOp = opts.Obs.Histogram("mongo.op_latency")
		db.clock = opts.Clock
		if db.clock == nil {
			db.clock = sim.NewRealClock()
		}
	}
	if next := log.NextOffset(); next > lopts.FirstOffset {
		db.opSeq = next - 1
	}
	for _, rec := range log.Records(0) {
		if o, ok := recOp(rec); ok {
			db.applyRecovered(o)
		}
	}
	return db, nil
}

// applyRecovered replays one recovered oplog entry into the collections
// during Open — without re-logging it (it is already in the log).
func (db *DB) applyRecovered(o op) {
	c := db.C(o.Coll)
	switch o.Kind {
	case "insert", "update":
		id, _ := o.Doc["_id"].(string)
		if id == "" {
			return
		}
		c.mu.Lock()
		if old, ok := c.docs[id]; ok {
			c.indexRemoveLocked(old, id)
		}
		c.docs[id] = o.Doc
		c.indexAddLocked(o.Doc, id)
		c.bumpSeqLocked(id)
		c.mu.Unlock()
	case "delete":
		c.mu.Lock()
		if old, ok := c.docs[o.ID]; ok {
			c.indexRemoveLocked(old, o.ID)
			delete(c.docs, o.ID)
		}
		c.mu.Unlock()
	}
}

// bumpSeqLocked advances the auto-id sequence past a recovered id of
// the collection's own "<name>-%06d" form, so post-recovery inserts
// never collide with recovered documents.
func (c *Collection) bumpSeqLocked(id string) {
	rest, ok := strings.CutPrefix(id, c.name+"-")
	if !ok {
		return
	}
	if n, err := strconv.ParseUint(rest, 10, 64); err == nil && n > c.seq {
		c.seq = n
	}
}

// recOp extracts the op a log record carries: the in-memory Value on
// the MemStore hot path, decoded from the durable payload otherwise
// (records recovered from a reopened store carry no Value).
func recOp(rec commitlog.Record) (op, bool) {
	if o, ok := rec.Value.(op); ok {
		return o, true
	}
	if len(rec.Payload) == 0 {
		return op{}, false
	}
	o, err := decodeOp(rec.Payload)
	if err != nil {
		return op{}, false
	}
	return o, true
}

// C returns (creating if needed) the named collection.
func (db *DB) C(name string) *Collection {
	db.mu.Lock()
	defer db.mu.Unlock()
	if c, ok := db.colls[name]; ok {
		return c
	}
	c := &Collection{
		name:    name,
		docs:    make(map[string]Doc),
		indexes: make(map[string]map[string][]string),
		db:      db,
	}
	db.colls[name] = c
	return c
}

// logOp appends an oplog entry and fans it out to subscribers.
func (db *DB) logOp(o op) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return
	}
	id := o.ID
	if id == "" && o.Doc != nil {
		id, _ = o.Doc["_id"].(string)
	}
	// The op is keyed by collection+_id; its Seq is the record's offset,
	// minted up front so the stored value carries it — db.mu serializes
	// appends, so NextOffset is exact. On the MemStore hot path the op
	// rides the record's in-memory Value and nothing crosses a codec; a
	// durable oplog encodes it into the payload instead, so the bytes on
	// disk are self-contained.
	o.Seq = db.oplog.NextOffset()
	if db.persist {
		payload, err := encodeOp(nil, o)
		if err != nil {
			// A value outside the codec's tagged set is a type-contract
			// violation by the writer, not an I/O condition; dropping the
			// entry would silently lose the write at recovery.
			panic(fmt.Sprintf("mongo: durable oplog entry for %s/%s: %v", o.Coll, id, err))
		}
		if _, err := db.oplog.Append(o.Coll+"\x00"+id, payload); err != nil {
			return // store failed; never half-publish
		}
	} else if _, err := db.oplog.AppendValue(o.Coll+"\x00"+id, o); err != nil {
		return // unreachable on a MemStore; never half-publish
	}
	db.opSeq = o.Seq
	if db.feedDrops > 0 {
		// Injected change-feed batch drop: the op is committed (oplog and
		// collections agree) but live subscribers never hear about it —
		// they detect the Seq gap and refill, exactly as for a slow-
		// subscriber drop below.
		db.feedDrops--
		return
	}
	for _, ch := range db.subs {
		select {
		case ch <- o:
		default:
			// Slow subscriber: drop. Secondaries and change-stream
			// consumers detect the Seq gap and recover from the
			// collections, which remain the source of truth.
		}
	}
}

// OplogLen returns the current oplog sequence number.
func (db *DB) OplogLen() uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.opSeq
}

// OplogFloor returns the oldest retained oplog sequence number. A
// resume token below it cannot replay; Watch signals such consumers
// with an explicit "resync" event.
func (db *DB) OplogFloor() uint64 {
	return db.oplog.OldestOffset()
}

// addSub registers an oplog subscriber and returns its id plus the
// retained backlog with Seq > fromSeq (held-lock snapshot, so backlog
// and live feed are contiguous). truncated reports that fromSeq
// predates the retained floor, so the backlog is NOT a contiguous
// continuation of the consumer's history.
func (db *DB) addSub(ch chan op, fromSeq uint64) (id int, backlog []op, truncated bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.nextSub++
	db.subs[db.nextSub] = ch
	truncated = fromSeq > 0 && fromSeq+1 < db.oplog.OldestOffset()
	for _, rec := range db.oplog.Records(fromSeq + 1) {
		if o, ok := recOp(rec); ok {
			backlog = append(backlog, o)
		}
	}
	return db.nextSub, backlog, truncated
}

func (db *DB) removeSub(id int) {
	db.mu.Lock()
	defer db.mu.Unlock()
	delete(db.subs, id)
}

// ChangeEvent is one committed write delivered by a ChangeStream.
type ChangeEvent struct {
	// Seq is the oplog sequence number — a commit-log offset, the
	// stream's resume token. Strictly increasing within a stream. A
	// resume token that fell below the retained floor is announced with
	// an explicit Kind "resync" event (never a silent jump); a jump
	// without a marker means live-feed lag dropped writes, and either
	// way the consumer re-reads the collection, which remains the
	// source of truth.
	Seq  uint64
	Kind string // "insert", "update", "delete" or "resync"
	Coll string
	// Doc is the full post-image for inserts and updates (nil for
	// deletes). It is a copy-on-write view the consumer may retain;
	// nested values are read-only (DeepClone before mutating — see the
	// Doc mutation rules).
	Doc Doc
	// ID is the _id of the affected document.
	ID string
}

// ChangeStream tails one collection's committed writes in oplog order —
// the equivalent of a MongoDB change stream. Events carry strictly
// increasing Seq tokens; delivery is at-least-resumable, never silently
// reordered: a consumer that sees a Seq gap (oplog trimmed past its
// resume point, or lag drops) refills from the collection itself.
// See docs/watch-protocol.md ("core status bus" layer) for how the
// platform uses it to span API replicas.
type ChangeStream struct {
	db   *DB
	id   int
	ch   chan ChangeEvent
	stop chan struct{}
	once sync.Once
}

// Events returns the stream's delivery channel; it closes on Cancel.
func (cs *ChangeStream) Events() <-chan ChangeEvent { return cs.ch }

// Cancel detaches the stream and closes its channel.
func (cs *ChangeStream) Cancel() {
	cs.once.Do(func() {
		cs.db.removeSub(cs.id)
		close(cs.stop)
	})
}

// Watch opens a change stream over one collection ("" = all), starting
// after oplog sequence fromSeq (0 = from the beginning of the retained
// oplog). If fromSeq > 0 predates the retained oplog, the stream's
// first delivery is an explicit Kind "resync" event — the cue to
// re-read the collection — followed by the contiguous retained history
// from the floor; a stale resume is never a silent gap.
func (db *DB) Watch(coll string, fromSeq uint64) *ChangeStream {
	live := make(chan op, 1024)
	id, backlog, truncated := db.addSub(live, fromSeq)
	cs := &ChangeStream{
		db:   db,
		id:   id,
		ch:   make(chan ChangeEvent, 256),
		stop: make(chan struct{}),
	}
	go func() {
		defer close(cs.ch)
		last := fromSeq
		if truncated {
			// The marker's Seq sits just below the first replayed
			// record, keeping the stream's Seqs strictly increasing and
			// contiguous after the one announced discontinuity.
			marker := ChangeEvent{Kind: "resync", Coll: coll, Seq: fromSeq}
			if len(backlog) > 0 {
				marker.Seq = backlog[0].Seq - 1
			}
			select {
			case cs.ch <- marker:
				last = marker.Seq
			case <-cs.stop:
				return
			}
		}
		deliver := func(o op) bool {
			// Skip duplicates across the backlog/live seam and other
			// collections' writes.
			if o.Seq <= last {
				return true
			}
			last = o.Seq
			if coll != "" && o.Coll != coll {
				return true
			}
			ev := ChangeEvent{Seq: o.Seq, Kind: o.Kind, Coll: o.Coll, ID: o.ID}
			if o.Doc != nil {
				ev.Doc = o.Doc.Clone()
				if ev.ID == "" {
					ev.ID, _ = o.Doc["_id"].(string)
				}
			}
			select {
			case cs.ch <- ev:
				return true
			case <-cs.stop:
				return false
			}
		}
		for _, o := range backlog {
			if !deliver(o) {
				return
			}
		}
		for {
			select {
			case <-cs.stop:
				return
			case o := <-live:
				if !deliver(o) {
					return
				}
			}
		}
	}()
	return cs
}

// Secondary is a read-only replica fed by the primary's oplog, used by
// availability tests: when the primary "crashes", reads continue from a
// secondary (the paper replicates MongoDB for high availability, §3.2).
//
// Read-only is a hard contract, not a convention: replicated documents
// are copy-on-write views sharing nested containers (including array
// backing storage) with the primary, so a write issued through C()'s
// Collection — always a replication-divergence bug — would now mutate
// state the primary's live documents reference. Treat C() exactly like
// a Find result: nested values are read-only; DeepClone to mutate.
type Secondary struct {
	db      *DB
	src     *DB
	subID   int
	applied uint64
	mu      sync.Mutex
	frozen  bool
	pending []op
	stop    chan struct{}
	done    chan struct{}
}

// StartSecondary attaches a replica and begins streaming ops into it.
func (db *DB) StartSecondary() *Secondary {
	ch := make(chan op, 1024)
	id, backlog, _ := db.addSub(ch, 0)

	s := &Secondary{db: NewDB(), src: db, subID: id, stop: make(chan struct{}), done: make(chan struct{})}
	for _, o := range backlog {
		s.applyOp(o)
	}
	go func() {
		defer close(s.done)
		for {
			select {
			case <-s.stop:
				return
			case o := <-ch:
				s.applyOp(o)
			}
		}
	}()
	return s
}

func (s *Secondary) applyOp(o op) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frozen {
		// Frozen/laggy replica: buffer in arrival order; Freeze(false)
		// drains under this same lock, so a live op racing the thaw can
		// never apply ahead of the buffered backlog.
		s.pending = append(s.pending, o)
		return
	}
	s.applyLocked(o)
}

// Freeze halts (on=true) or resumes (on=false) replication. While
// frozen, incoming ops buffer in order; thawing drains them before any
// newer live op applies. Chaos uses it to model a frozen or lagging
// secondary.
func (s *Secondary) Freeze(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.frozen = on
	if !on {
		for _, o := range s.pending {
			s.applyLocked(o)
		}
		s.pending = nil
	}
}

func (s *Secondary) applyLocked(o op) {
	if o.Seq != 0 && o.Seq <= s.applied {
		return
	}
	c := s.db.C(o.Coll)
	switch o.Kind {
	case "insert", "update":
		id, _ := o.Doc["_id"].(string)
		c.mu.Lock()
		c.docs[id] = o.Doc.Clone()
		c.mu.Unlock()
	case "delete":
		c.mu.Lock()
		delete(c.docs, o.ID)
		c.mu.Unlock()
	}
	if o.Seq > s.applied {
		s.applied = o.Seq
	}
}

// C exposes read access to a replicated collection. Write methods on
// the returned Collection must not be used — see the Secondary
// read-only contract.
func (s *Secondary) C(name string) *Collection { return s.db.C(name) }

// Applied returns the highest oplog sequence applied.
func (s *Secondary) Applied() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied
}

// Stop detaches the replica.
func (s *Secondary) Stop() {
	s.src.removeSub(s.subID)
	close(s.stop)
	<-s.done
}
