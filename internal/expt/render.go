// Package expt regenerates every table and figure in the paper's
// evaluation (§5). Each experiment returns typed rows/series plus a
// formatted table so cmd/ffdl-bench and the bench harness print output
// directly comparable with the paper.
package expt

import (
	"fmt"
	"strings"
)

// Table is a printable result grid.
type Table struct {
	Title   string
	Header  []string
	Rows    [][]string
	Caption string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Caption != "" {
		fmt.Fprintf(&sb, "%s\n", t.Caption)
	}
	return sb.String()
}

func pct(f float64) string { return fmt.Sprintf("%.2f%%", 100*f) }

func f1(f float64) string { return fmt.Sprintf("%.1f", f) }

func f2(f float64) string { return fmt.Sprintf("%.2f", f) }
