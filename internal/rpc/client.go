package rpc

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// call tracks one in-flight request on a client connection.
type call struct {
	data chan []byte
	done chan error // buffered(1); receives terminal status
}

// Conn is a multiplexed client connection to one server replica.
type Conn struct {
	mu     sync.Mutex
	nc     net.Conn
	wbuf   []byte // reused frame-encode buffer, guarded by mu
	nextID uint64
	calls  map[uint64]*call
	closed bool

	// addr/faults are set by the Balancer that dialed this connection;
	// when the registry has a fault injector installed, each request
	// frame draws a drop/duplicate/delay outcome for this link.
	addr   string
	faults *atomic.Pointer[Faults]
}

// Dial connects to a server address with a short timeout appropriate for
// loopback transports.
func Dial(addr string) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	c := &Conn{nc: nc, calls: make(map[uint64]*call)}
	go c.readLoop()
	return c, nil
}

// writeFrame encodes f into the connection's reused buffer and writes
// it in one syscall. Callers must hold c.mu (which also serializes
// frames on the wire).
func (c *Conn) writeFrame(f *frame) error {
	c.wbuf = appendFrame(c.wbuf[:0], f)
	_, err := c.nc.Write(c.wbuf)
	return err
}

// Close tears down the connection; in-flight calls fail with
// ErrConnClosed.
func (c *Conn) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.nc.Close()
}

func (c *Conn) readLoop() {
	br := bufio.NewReader(c.nc)
	// One frame struct reused for the connection's lifetime; only the
	// fields a frame carries are (re)allocated per read.
	var f frame
	for {
		if err := readFrame(br, &f); err != nil {
			c.mu.Lock()
			c.closed = true
			calls := c.calls
			c.calls = make(map[uint64]*call)
			c.mu.Unlock()
			c.nc.Close()
			for _, cl := range calls {
				cl.done <- ErrConnClosed
			}
			return
		}
		c.mu.Lock()
		cl := c.calls[f.ID]
		c.mu.Unlock()
		if cl == nil {
			continue // late frame for a cancelled call
		}
		switch f.Kind {
		case frameData:
			cl.data <- f.Body
		case frameEnd:
			c.finish(f.ID, cl, nil)
		case frameError:
			c.finish(f.ID, cl, &RemoteError{Method: f.Method, Message: f.Err})
		}
	}
}

func (c *Conn) finish(id uint64, cl *call, err error) {
	c.mu.Lock()
	delete(c.calls, id)
	c.mu.Unlock()
	cl.done <- err
}

func (c *Conn) start(methodName string, arg any) (uint64, *call, error) {
	body, err := encode(arg)
	if err != nil {
		return 0, nil, fmt.Errorf("rpc: encode %s argument: %w", methodName, err)
	}
	var drop, dup bool
	if c.faults != nil {
		if f := c.faults.Load(); f != nil {
			var delay time.Duration
			drop, dup, delay = f.decide(c.addr)
			if delay > 0 {
				f.clock.Sleep(delay)
			}
		}
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, nil, ErrConnClosed
	}
	c.nextID++
	id := c.nextID
	cl := &call{data: make(chan []byte, 16), done: make(chan error, 1)}
	c.calls[id] = cl
	if drop {
		// Injected frame loss: the call is registered but never sent, so
		// it hangs exactly like a lost packet until the caller's context
		// (or a resilience deadline) rescues it.
		c.mu.Unlock()
		return id, cl, nil
	}
	f := frame{Kind: frameCall, ID: id, Method: methodName, Body: body}
	err = c.writeFrame(&f)
	if err == nil && dup {
		// Injected duplicate delivery: the server runs the method twice;
		// the client keeps the first response and drops the straggler.
		err = c.writeFrame(&f)
	}
	c.mu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.calls, id)
		c.mu.Unlock()
		return 0, nil, ErrConnClosed
	}
	return id, cl, nil
}

func (c *Conn) cancel(id uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	delete(c.calls, id)
	c.writeFrame(&frame{Kind: frameCancel, ID: id}) //nolint:errcheck
}

// Call performs a unary RPC, decoding the reply into the pointer reply
// (which may be nil to discard it).
func (c *Conn) Call(ctx context.Context, methodName string, arg, reply any) error {
	id, cl, err := c.start(methodName, arg)
	if err != nil {
		return err
	}
	var body []byte
	for {
		select {
		case <-ctx.Done():
			c.cancel(id)
			return ErrCanceled
		case b := <-cl.data:
			body = b
		case err := <-cl.done:
			if err != nil {
				return err
			}
			if reply != nil && len(body) > 0 {
				if err := decodeInto(reply, body); err != nil {
					return fmt.Errorf("rpc: decode %s reply: %w", methodName, err)
				}
			}
			return nil
		}
	}
}

// Stream starts a server-streaming RPC and returns a StreamReader.
func (c *Conn) Stream(ctx context.Context, methodName string, arg any) (*StreamReader, error) {
	id, cl, err := c.start(methodName, arg)
	if err != nil {
		return nil, err
	}
	return &StreamReader{conn: c, id: id, cl: cl, ctx: ctx, method: methodName}, nil
}

// StreamReader iterates a server stream.
type StreamReader struct {
	conn   *Conn
	id     uint64
	cl     *call
	ctx    context.Context
	method string
	err    error
	done   bool
}

// Recv decodes the next stream item into the pointer msg. It returns
// ErrStreamDone once the server finishes the stream cleanly.
func (r *StreamReader) Recv(msg any) error {
	if r.done {
		if r.err != nil {
			return r.err
		}
		return ErrStreamDone
	}
	select {
	case <-r.ctx.Done():
		r.Close()
		r.err = ErrCanceled
		return r.err
	case body := <-r.cl.data:
		if msg != nil && len(body) > 0 {
			if err := decodeInto(msg, body); err != nil {
				return fmt.Errorf("rpc: decode %s stream item: %w", r.method, err)
			}
		}
		return nil
	case err := <-r.cl.done:
		r.done = true
		// Drain any data that raced with completion.
		select {
		case body := <-r.cl.data:
			if msg != nil && len(body) > 0 {
				if derr := decodeInto(msg, body); derr == nil {
					// Re-arm terminal state for the next Recv.
					r.done = false
					go func() { r.cl.done <- err }()
					return nil
				}
			}
		default:
		}
		if err != nil {
			r.err = err
			return err
		}
		r.err = nil
		return ErrStreamDone
	}
}

// Close abandons the stream.
func (r *StreamReader) Close() {
	if !r.done {
		r.done = true
		r.conn.cancel(r.id)
	}
}
