package sched

import "sort"

// typeIndex is the per-GPU-type half of the capacity index: every
// schedulable node of one accelerator type, kept sorted in pack
// preference order (packOrderLess). Placement queries walk a
// binary-searched suffix of this slice instead of scanning the whole
// cluster, so the nodes a pass examines scale with the feasible
// candidate set, not with cluster size.
//
// Because the ordering IS Pack's total preference, the first feasible
// node in the suffix is the pack-optimal choice — no scoring sweep, no
// pruning heuristics, O(infeasible-prefix + 1) examinations.
type typeIndex struct {
	ordered []*Node
}

// packOrderLess is both the index ordering and Pack's total preference
// over nodes: fewest free GPUs first (best-fit on the scarce
// resource), then highest allocated-GPU fraction (most-allocated, the
// Kubernetes MostAllocated priority the paper's Pack policy enables),
// then highest allocated-CPU fraction, then name for determinism. On
// the homogeneous-capacity fleets of the paper's deployment this picks
// the same node the original weighted packScore did.
func packOrderLess(a, b *Node) bool {
	if a.Free.GPUs != b.Free.GPUs {
		return a.Free.GPUs < b.Free.GPUs
	}
	if ga, gb := gpuAllocFrac(a), gpuAllocFrac(b); ga != gb {
		return ga > gb
	}
	if ca, cb := cpuAllocFrac(a), cpuAllocFrac(b); ca != cb {
		return ca > cb
	}
	return a.Name < b.Name
}

func gpuAllocFrac(n *Node) float64 {
	if n.Capacity.GPUs == 0 {
		return 0
	}
	return 1 - float64(n.Free.GPUs)/float64(n.Capacity.GPUs)
}

func cpuAllocFrac(n *Node) float64 {
	if n.Capacity.MilliCPU == 0 {
		return 0
	}
	return 1 - float64(n.Free.MilliCPU)/float64(n.Capacity.MilliCPU)
}

// slot returns the insertion position for n under packOrderLess.
func (ti *typeIndex) slot(n *Node) int {
	return sort.Search(len(ti.ordered), func(i int) bool {
		return !packOrderLess(ti.ordered[i], n)
	})
}

// insert adds a node at its sorted position. The node's key fields
// (Free, Capacity, Name) must already hold their final values.
func (ti *typeIndex) insert(n *Node) {
	i := ti.slot(n)
	ti.ordered = append(ti.ordered, nil)
	copy(ti.ordered[i+1:], ti.ordered[i:])
	ti.ordered[i] = n
}

// remove deletes a node. It must be called BEFORE any of the node's
// key fields are mutated, so the binary search still lands on it.
func (ti *typeIndex) remove(n *Node) {
	i := ti.slot(n)
	// Names are unique, so the slot either holds n or n is absent.
	if i < len(ti.ordered) && ti.ordered[i] == n {
		ti.ordered = append(ti.ordered[:i], ti.ordered[i+1:]...)
	}
}

// lowerBound returns the first index whose node has at least minFree
// free GPUs; everything from there on is GPU-feasible for a demand of
// minFree (free GPU count is the ordering's primary key).
func (ti *typeIndex) lowerBound(minFree int) int {
	return sort.Search(len(ti.ordered), func(i int) bool {
		return ti.ordered[i].Free.GPUs >= minFree
	})
}
