package perf

import (
	"math"
)

// Platform overhead components (§5.1): "the source of this overhead is
// predominantly (1) Docker (very low but nonzero) (2) network
// virtualization and network security policies and (3) a driver to mount
// Cloud Object Storage buckets". Each component is modeled structurally;
// the total lands in the paper's observed 0.3-5.5% band and grows with
// distribution (more learners → more virtualized network traffic).
const (
	// dockerOverhead is the flat containerization tax.
	dockerOverhead = 0.004
	// netVirtPerLearnerPair is the virtualization + network-policy tax on
	// inter-learner synchronization traffic.
	netVirtBase = 0.006
	// driverOverheadBase is the object-store mount driver tax on the
	// input pipeline.
	driverOverheadBase = 0.008
)

// commIntensity scales network-sensitive overheads: models with bigger
// parameter tensors ship more bytes per step.
func commIntensity(m Model) float64 {
	switch m {
	case VGG16:
		return 1.5 // 138M parameters
	case InceptionV3:
		return 0.9 // 24M parameters
	case ResNet50:
		return 1.0 // 25M parameters, more steps/sec
	default:
		return 1.0
	}
}

// jitter returns a small deterministic per-config perturbation in
// [-1,1], standing in for run-to-run measurement noise so that overhead
// rows vary the way real measurements do while staying reproducible.
func jitter(c Config) float64 {
	h := uint64(14695981039346656037)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	mix(string(c.Model))
	mix(string(c.Framework))
	mix(string(c.GPUType))
	mix(c.String())
	return 2*float64(h%10007)/10006 - 1
}

// FfDLOverhead returns the fractional throughput decrease of running a
// configuration on FfDL versus bare metal (Table 1 rows). The paper
// observes ≈0.3% to ≈5.4%.
func FfDLOverhead(c Config) float64 {
	comm := commIntensity(c.Model)
	// Network virtualization scales with how much synchronization
	// crosses the (virtualized) pod network: grows with learners and
	// with GPUs per learner (more gradient volume per sync).
	syncVolume := math.Log2(float64(c.Learners*c.GPUsPerL)) + 1
	netVirt := netVirtBase * comm * syncVolume
	// Driver overhead grows mildly with per-learner input rate (more
	// GPUs per learner pull more data through the mount).
	driver := driverOverheadBase * (1 + 0.25*float64(c.GPUsPerL-1))
	total := dockerOverhead + netVirt + driver
	// Measurement noise: ±35% relative, as in the paper's scatter
	// (e.g. 1L×2G VGG at 0.34% vs 1L×1G at 3.29%).
	total *= 1 + 0.35*jitter(c)
	if total < 0.002 {
		total = 0.002
	}
	if total > 0.055 {
		total = 0.055
	}
	return total
}

// FfDLThroughput is bare-metal throughput minus the platform overhead.
func FfDLThroughput(c Config) float64 {
	return BareMetalThroughput(c) * (1 - FfDLOverhead(c))
}

// DGXGap returns the fractional throughput advantage of an NVIDIA DGX-1
// (NVLink + HBM, ≈2-3× cost) over FfDL on PCIe cloud hardware for the
// same configuration (Table 2 rows): ≈3-8% at 1 GPU (HBM + tuned
// software stack), ≈10-14% at 2 GPUs (NVLink vs PCIe peer traffic).
func DGXGap(c Config) float64 {
	// Single-GPU gap: memory bandwidth + DGX software stack.
	base := 0.033 * commIntensity(c.Model)
	if c.Model == ResNet50 {
		base = 0.065 // step-rate-bound: HBM helps most
	}
	if c.GPUsPerL >= 2 {
		// NVLink removes the PCIe peer-to-peer bottleneck.
		nvlink := 0.065 * commIntensity(c.Model) * float64(c.GPUsPerL-1)
		if c.Model == ResNet50 {
			nvlink = 0.04 * float64(c.GPUsPerL-1)
		}
		base += nvlink
	}
	base *= 1 + 0.08*jitter(c)
	if base > 0.15 {
		base = 0.15
	}
	return base
}

// SecondsPerEpoch returns the wall time for one pass over datasetImages
// at the config's FfDL throughput.
func SecondsPerEpoch(c Config, datasetImages int) float64 {
	thpt := FfDLThroughput(c)
	if thpt <= 0 {
		return math.Inf(1)
	}
	return float64(datasetImages) / thpt
}

// InputBytesPerImage is the storage traffic per training image
// (preprocessed ImageNet records average ≈110 KB).
const InputBytesPerImage = 110 * 1024

// StorageBoundThroughput caps compute throughput by the storage
// bandwidth share available to the job: images/sec cannot exceed
// share/bytes-per-image. This coupling is what degrades the late-starting
// V100 batch at heavy load in Fig. 5 — the fastest GPUs are the first to
// become input-bound when shared bandwidth shrinks.
func StorageBoundThroughput(computeImagesPerSec, bandwidthShareBytesPerSec float64) float64 {
	storageCap := bandwidthShareBytesPerSec / InputBytesPerImage
	if storageCap < computeImagesPerSec {
		return storageCap
	}
	return computeImagesPerSec
}
