package expt

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/ffdl/ffdl/internal/chaos"
	"github.com/ffdl/ffdl/internal/core"
	"github.com/ffdl/ffdl/internal/perf"
	"github.com/ffdl/ffdl/internal/rpc"
	"github.com/ffdl/ffdl/internal/sched"
	"github.com/ffdl/ffdl/internal/sim"
	"github.com/ffdl/ffdl/internal/tenant"
)

// The chaos soak: every fault injector the repo has, fired concurrently
// at one multi-tenant platform on a simulated clock, with hard
// correctness invariants checked at the end and a latency SLO judged
// against a calm-arm baseline. This is the resilience layer's
// integration gate — worker-node crash loops and pod kills
// (chaos.Injector), etcd replica outages with snapshot-restore rejoins
// (chaos.EtcdInjector), mongo primary failovers / dropped change-feed
// batches / frozen secondaries (chaos.MongoInjector) and per-link RPC
// drop/duplicate/delay faults (rpc.Faults) all overlap, while the
// policies of internal/resilience (and the core API's degraded mode)
// keep the platform's §2 dependability contract intact.
//
// Hard invariants (any failure is a reported violation):
//
//   - every submitted job reaches a terminal status;
//   - each job's WatchStatus stream delivers its history exactly once,
//     in order, matching the durable MongoDB record;
//   - admission accounting conserves: zero GPUs held once all jobs are
//     terminal;
//   - learner-log offsets are strictly increasing (no reuse across
//     guardian/learner restarts);
//   - after chaos stops, the platform exits degraded mode within a
//     bounded virtual recovery window.
//
// SLO: p99 submit→PROCESSING latency under chaos stays within
// SLOFactor × the calm baseline (floored, so a near-zero calm p99
// cannot make the gate vacuous).

// ChaosSoakConfig parameterizes one soak.
type ChaosSoakConfig struct {
	// Nodes is the number of 4-GPU K80 worker nodes. Default 4.
	Nodes int
	// Users is the number of tenants; JobsPerUser submissions each, in
	// staggered waves. Defaults 3 / 3.
	Users       int
	JobsPerUser int
	// Iterations per job (virtual training length). Default 4.
	Iterations int
	// EtcdCycles is how many etcd outage cycles run during the soak.
	// Default 2.
	EtcdCycles int
	// Seed drives every random stream.
	Seed int64
	// SLOFactor is the chaos/calm p99 budget; SLOFloor floors the calm
	// baseline so the ratio is meaningful. Defaults 30× / 1 min virtual.
	SLOFactor float64
	SLOFloor  time.Duration
	// RecoveryBound caps virtual time from "chaos stopped" to "degraded
	// mode exited and a submission completed". Default 30 min virtual.
	RecoveryBound time.Duration
	// SettleWall is the FakeClock auto-advance quiescence window (wall
	// time). Default 10ms.
	SettleWall time.Duration
	// Timeout bounds each arm in wall time. Default 300s.
	Timeout time.Duration
	// Logf, when set, receives progress lines (virtual timestamps
	// included) — wired to the bench harness's verbose flag.
	Logf func(format string, args ...any)
}

func (c *ChaosSoakConfig) logf(fc *sim.FakeClock, format string, args ...any) {
	if c.Logf == nil {
		return
	}
	c.Logf("[v=%s] "+format, append([]any{fc.Now().Sub(time.Unix(0, 0)).Round(time.Second)}, args...)...)
}

func (c *ChaosSoakConfig) defaults() {
	if c.Nodes <= 0 {
		c.Nodes = 4
	}
	if c.Users <= 0 {
		c.Users = 3
	}
	if c.JobsPerUser <= 0 {
		c.JobsPerUser = 3
	}
	if c.Iterations <= 0 {
		c.Iterations = 4
	}
	if c.EtcdCycles <= 0 {
		c.EtcdCycles = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.SLOFactor <= 0 {
		c.SLOFactor = 30
	}
	if c.SLOFloor <= 0 {
		c.SLOFloor = time.Minute
	}
	if c.RecoveryBound <= 0 {
		c.RecoveryBound = 30 * time.Minute
	}
	if c.SettleWall <= 0 {
		c.SettleWall = 10 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 300 * time.Second
	}
}

// ChaosSoakResult reports one soak (calm arm + chaos arm).
type ChaosSoakResult struct {
	Jobs      int `json:"jobs"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`

	NodeCrashes  int64            `json:"node_crashes"`
	PodKills     int64            `json:"pod_kills"`
	EtcdOutages  int64            `json:"etcd_outages"`
	EtcdRestores uint64           `json:"etcd_snapshot_restores"`
	Mongo        chaos.MongoStats `json:"mongo"`
	RPC          rpc.FaultStats   `json:"rpc"`

	Retries      int64 `json:"resilience_retries"`
	Sheds        int64 `json:"resilience_sheds"`
	DegradedShed int64 `json:"degraded_sheds"`
	DegradedRead int64 `json:"degraded_reads"`

	CalmP99Ms         float64 `json:"calm_p99_submit_to_processing_ms"`
	ChaosP99Ms        float64 `json:"chaos_p99_submit_to_processing_ms"`
	SLOFactor         float64 `json:"slo_factor"`
	SLOOK             bool    `json:"slo_ok"`
	RecoveryVirtualMs float64 `json:"breaker_recovery_virtual_ms"`

	Violations     []string `json:"violations"`
	VirtualMinutes float64  `json:"virtual_minutes"`
	WallSeconds    float64  `json:"wall_seconds"`
}

// soakArm is one platform run's raw outcome.
type soakArm struct {
	completed, failed int
	p99               time.Duration
	recovery          time.Duration
	degradedSheds     int64
	degradedReads     int64
	retries           int64
	sheds             int64
	nodeCrashes       int64
	podKills          int64
	etcdOutages       int64
	etcdRestores      uint64
	mongo             chaos.MongoStats
	rpcFaults         rpc.FaultStats
	violations        []string
	virtual           time.Duration
}

// watchCollector accumulates one job's WatchStatus stream end-to-end.
type watchCollector struct {
	mu      sync.Mutex
	entries []core.StatusEntry
	// violation records a broken stream contract (closed non-terminal).
	violation string
	done      chan struct{}
}

func (w *watchCollector) snapshot() ([]core.StatusEntry, string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]core.StatusEntry(nil), w.entries...), w.violation
}

// ChaosSoak runs the calm baseline arm, then the chaos arm, and folds
// both into one result. A non-empty Violations list (or a busted SLO)
// means the platform broke its contract under chaos.
func ChaosSoak(cfg ChaosSoakConfig) (ChaosSoakResult, error) {
	cfg.defaults()
	res := ChaosSoakResult{Jobs: cfg.Users * cfg.JobsPerUser}
	wallStart := time.Now()

	calm, err := chaosSoakArm(cfg, false)
	if err != nil {
		return res, fmt.Errorf("calm arm: %w", err)
	}
	storm, err := chaosSoakArm(cfg, true)
	if err != nil {
		return res, fmt.Errorf("chaos arm: %w", err)
	}

	res.Completed = storm.completed
	res.Failed = storm.failed
	res.NodeCrashes = storm.nodeCrashes
	res.PodKills = storm.podKills
	res.EtcdOutages = storm.etcdOutages
	res.EtcdRestores = storm.etcdRestores
	res.Mongo = storm.mongo
	res.RPC = storm.rpcFaults
	res.Retries = storm.retries
	res.Sheds = storm.sheds
	res.DegradedShed = storm.degradedSheds
	res.DegradedRead = storm.degradedReads
	res.CalmP99Ms = float64(calm.p99) / float64(time.Millisecond)
	res.ChaosP99Ms = float64(storm.p99) / float64(time.Millisecond)
	res.SLOFactor = cfg.SLOFactor
	res.RecoveryVirtualMs = float64(storm.recovery) / float64(time.Millisecond)
	res.Violations = append(res.Violations, calm.prefixed("calm")...)
	res.Violations = append(res.Violations, storm.prefixed("chaos")...)

	// SLO: chaos p99 within SLOFactor × the (floored) calm baseline.
	baseline := calm.p99
	if baseline < cfg.SLOFloor {
		baseline = cfg.SLOFloor
	}
	res.SLOOK = storm.p99 <= time.Duration(cfg.SLOFactor*float64(baseline))
	if !res.SLOOK {
		res.Violations = append(res.Violations, fmt.Sprintf(
			"SLO: chaos p99 submit→PROCESSING %v exceeds %.0fx calm baseline %v",
			storm.p99, cfg.SLOFactor, baseline))
	}
	if storm.recovery > cfg.RecoveryBound {
		res.Violations = append(res.Violations, fmt.Sprintf(
			"recovery: %v of virtual time to exit degraded mode, bound %v",
			storm.recovery, cfg.RecoveryBound))
	}
	res.VirtualMinutes = calm.virtual.Minutes() + storm.virtual.Minutes()
	res.WallSeconds = time.Since(wallStart).Seconds()
	return res, nil
}

func (a soakArm) prefixed(arm string) []string {
	out := make([]string, 0, len(a.violations))
	for _, v := range a.violations {
		out = append(out, arm+": "+v)
	}
	return out
}

// chaosSoakArm boots one platform and runs the workload, with or
// without the injectors. The result is a named return so deferred
// injector-stat collection (the etcd churn goroutine outlives the body's
// reads) lands in the returned value.
func chaosSoakArm(cfg ChaosSoakConfig, withChaos bool) (arm soakArm, err error) {
	fc := sim.NewFakeClock(time.Unix(0, 0))
	fc.StartAutoAdvance(cfg.SettleWall)
	defer fc.StopAutoAdvance()

	var quotas []tenant.Record
	users := make([]string, cfg.Users)
	for i := range users {
		users[i] = fmt.Sprintf("team-%d", i)
		// Generous paid quotas: admission ordering, not starvation, is
		// under test here.
		quotas = append(quotas, tenant.Record{User: users[i], Tier: sched.TierPaid, GPUs: cfg.Nodes * 4})
	}

	p, err := core.NewPlatform(core.Config{
		Clock: fc,
		Seed:  cfg.Seed,
		// Stretched safety-net intervals, as in the multi-tenant
		// experiment: the control plane is event-driven, so these only
		// bound recovery from dropped events, and stretching them keeps
		// the FakeClock event count (wall time) low over a multi-hour
		// virtual horizon. The resilience policies scale their backoff,
		// breaker and deadline windows off PollInterval, so chaos
		// recovery behavior stretches coherently with everything else.
		PollInterval:      30 * time.Second,
		SchedulerInterval: time.Minute,
		ResyncInterval:    time.Minute,
		HeartbeatInterval: 2 * time.Minute,
		NodeGracePeriod:   10 * time.Minute,
		RendezvousTimeout: time.Hour,
		// 60 keeps one job's training at ~15 virtual minutes — well
		// under the injectors' disruption intervals, so jobs make
		// progress between faults while still spending most of their
		// lifetime exposed to them.
		TimeCompression: 60,
		Tenancy:         &core.TenancyConfig{Quotas: quotas},
	})
	if err != nil {
		return arm, err
	}
	defer p.Stop()
	for i := 0; i < cfg.Nodes; i++ {
		p.AddNode(fmt.Sprintf("node-%02d", i), "K80", 4, 40, 512<<10)
	}
	p.Store.EnsureBucket("datasets")
	if err := p.Store.Put("datasets", "data/shard-0", make([]byte, 1<<20)); err != nil {
		return arm, err
	}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.Timeout)
	defer cancel()
	c := p.Client()
	virtualStart := fc.Now()
	cfg.logf(fc, "arm booted (chaos=%v)", withChaos)

	// --- Injectors (chaos arm only) ---------------------------------
	var kubeIn *chaos.Injector
	var mongoIn *chaos.MongoInjector
	var faults *rpc.Faults
	var chaosWG sync.WaitGroup
	chaosStop := make(chan struct{})
	if withChaos {
		kubeIn = chaos.NewInjector(p.Kube, sim.NewRNG(cfg.Seed+10))
		kubeIn.NodeMTBF = 20 * time.Minute // per node; /Nodes cluster-wide
		kubeIn.NodeRecovery = 90 * time.Second
		kubeIn.PodKillMTBF = 4 * time.Minute
		kubeIn.Start()

		mongoIn = chaos.NewMongoInjector(p.Mongo, fc, sim.NewRNG(cfg.Seed+11))
		mongoIn.FailoverMTBF = 7 * time.Minute
		mongoIn.FailoverDuration = 30 * time.Second
		mongoIn.FeedDropMTBF = 5 * time.Minute
		mongoIn.FeedDropBatch = 3
		mongoIn.FreezeMTBF = 6 * time.Minute
		mongoIn.FreezeDuration = time.Minute
		mongoIn.Start()

		faults = rpc.NewFaults(fc, cfg.Seed+12)
		p.Registry.SetFaults(faults)
		// Link-fault churn: windows of drop/duplicate/delay against the
		// LCM links (an idempotent, deadline-guarded edge) and delay
		// against the API links (Submit is not idempotent, so its frames
		// are never dropped or duplicated — only slowed).
		chaosWG.Add(1)
		go func() {
			defer chaosWG.Done()
			rng := sim.NewRNG(cfg.Seed + 13)
			for {
				select {
				case <-chaosStop:
					return
				case <-fc.After(time.Duration(rng.Exp(float64(150 * time.Second)))):
				}
				for _, addr := range p.Registry.Lookup(core.ServiceLCM) {
					faults.SetLink(addr, rpc.LinkFault{Drop: 0.3, Dup: 0.3, Delay: 20 * time.Millisecond})
				}
				for _, addr := range p.Registry.Lookup(core.ServiceAPI) {
					faults.SetLink(addr, rpc.LinkFault{Delay: 50 * time.Millisecond})
				}
				select {
				case <-chaosStop:
					faults.Heal()
					return
				case <-fc.After(45 * time.Second):
				}
				faults.Heal()
			}
		}()

		// Etcd outage cycles, with churn writes that force the rejoin
		// through a snapshot restore when compaction outpaces the victim.
		etcdIn := chaos.NewEtcdInjector(p.Etcd)
		chaosWG.Add(1)
		go func() {
			defer chaosWG.Done()
			for i := 0; i < cfg.EtcdCycles; i++ {
				select {
				case <-chaosStop:
					return
				case <-fc.After(3 * time.Minute):
				}
				n := i
				etcdIn.OutageCycle(func() {
					for j := 0; j < 300; j++ {
						p.Etcd.Put(fmt.Sprintf("soak/churn-%d-%d", n, j), []byte("x"), 0) //nolint:errcheck
					}
				})
			}
		}()
		defer func() {
			outages, _, restores := etcdIn.Stats()
			arm.etcdOutages = outages
			arm.etcdRestores = restores
		}()

		// Microservice replica crashes ride along too.
		chaosWG.Add(1)
		go func() {
			defer chaosWG.Done()
			rng := sim.NewRNG(cfg.Seed + 14)
			for {
				select {
				case <-chaosStop:
					return
				case <-fc.After(time.Duration(rng.Exp(float64(8 * time.Minute)))):
				}
				if rng.Bernoulli(0.5) {
					p.CrashAPI(rng.Intn(2))
				} else {
					p.CrashLCM(rng.Intn(2))
				}
			}
		}()
	}

	// --- Workload: staggered multi-tenant waves ---------------------
	manifest := func(user string, i int) core.Manifest {
		return core.Manifest{
			Name: fmt.Sprintf("%s-job-%d", user, i), User: user,
			Framework: perf.Caffe, Model: perf.VGG16,
			Learners: 1, GPUsPerLearner: 1, GPUType: perf.K80,
			BatchSize: 64, Iterations: cfg.Iterations, CheckpointEvery: 1,
			DataBucket: "datasets", DataPrefix: "data/",
			Command: "caffe train -solver solver.prototxt",
		}
	}
	submit := func(user string, i int) (string, error) {
		for {
			id, err := c.Submit(ctx, manifest(user, i))
			if err == nil {
				return id, nil
			}
			// Degraded sheds are the documented contract: back off in
			// virtual time and resubmit. Anything else is fatal.
			if !core.IsDegraded(err) {
				return "", err
			}
			arm.degradedSheds++
			select {
			case <-ctx.Done():
				return "", ctx.Err()
			case <-fc.After(time.Minute):
			}
		}
	}

	var jobIDs []string
	collectors := map[string]*watchCollector{}
	collect := func(jobID string) {
		w := &watchCollector{done: make(chan struct{})}
		collectors[jobID] = w
		go func() {
			defer close(w.done)
			for {
				ch, cancelWatch, err := c.WatchStatus(ctx, jobID)
				if err != nil {
					select {
					case <-ctx.Done():
						return
					case <-fc.After(30 * time.Second):
						continue
					}
				}
				terminal := false
				for e := range ch {
					w.mu.Lock()
					w.entries = append(w.entries, e)
					w.mu.Unlock()
					if e.Status.Terminal() {
						terminal = true
					}
				}
				cancelWatch()
				if terminal {
					return
				}
				if ctx.Err() != nil {
					return
				}
				// The stream contract says closure without a terminal
				// entry means cancellation — and nothing canceled it.
				w.mu.Lock()
				if len(w.entries) > 0 {
					w.violation = fmt.Sprintf("watch stream for %s closed without terminal after %d entries", jobID, len(w.entries))
					w.mu.Unlock()
					return
				}
				w.mu.Unlock()
				// No entries delivered yet: reconnect from scratch.
			}
		}()
	}

	for wave := 0; wave < cfg.JobsPerUser; wave++ {
		for _, u := range users {
			id, err := submit(u, wave)
			if err != nil {
				return arm, fmt.Errorf("submit %s wave %d: %w", u, wave, err)
			}
			jobIDs = append(jobIDs, id)
			collect(id)
		}
		cfg.logf(fc, "wave %d submitted (%d jobs so far)", wave, len(jobIDs))
		// Wide wave spacing keeps submissions landing throughout the
		// fault schedule, not just in its first quiet minutes.
		fc.Sleep(4 * time.Minute)
	}

	// --- Drain: every job must reach a terminal status --------------
	for _, id := range jobIDs {
		st, err := c.WaitForStatus(ctx, id, core.StatusCompleted, time.Minute)
		if err != nil {
			arm.violations = append(arm.violations, fmt.Sprintf("job %s never terminal: %v", id, err))
			continue
		}
		switch st {
		case core.StatusCompleted:
			arm.completed++
		default:
			arm.failed++
		}
		cfg.logf(fc, "job %s terminal: %s", id, st)
	}

	// --- Stop chaos; deterministic degraded window; recovery --------
	if withChaos {
		cfg.logf(fc, "drain done; stopping injectors")
		close(chaosStop)
		chaosWG.Wait()
		kubeIn.Stop()
		arm.nodeCrashes, arm.podKills = kubeIn.Stats()
		mongoIn.Stop()
		arm.mongo = mongoIn.Stats()
		faults.Heal()
		arm.rpcFaults = faults.Stats()

		// Forced mongo outage: the acceptance pin that status reads keep
		// working from the replay window while submissions shed with a
		// retryable error.
		p.Mongo.SetUnavailable(true)
		if _, err := c.Submit(ctx, manifest(users[0], 990)); err == nil {
			arm.violations = append(arm.violations, "submit acknowledged during forced mongo outage")
		} else if !core.IsDegraded(err) {
			arm.violations = append(arm.violations, fmt.Sprintf("forced-outage submit error not degraded-retryable: %v", err))
		} else {
			arm.degradedSheds++
		}
		if len(jobIDs) > 0 {
			reply, err := c.Status(ctx, jobIDs[len(jobIDs)-1])
			switch {
			case err != nil:
				arm.violations = append(arm.violations, fmt.Sprintf("degraded status read failed: %v", err))
			case !reply.Degraded:
				arm.violations = append(arm.violations, "status read during forced outage not flagged Degraded")
			default:
				arm.degradedReads++
			}
		}
		p.Mongo.SetUnavailable(false)
	}

	// Recovery: virtual time until a submission is accepted again and
	// completes (chaos arm exercises breaker reopening; calm arm is a
	// sanity pass-through).
	cfg.logf(fc, "degraded window done; probing recovery")
	recoverStart := fc.Now()
	probe, err := submit(users[0], 991)
	if err != nil {
		return arm, fmt.Errorf("recovery submit: %w", err)
	}
	// Recovery is measured to acceptance: an accepted submission means
	// the mongo breaker closed again (the insert went through).
	arm.recovery = fc.Since(recoverStart)
	collect(probe)
	jobIDs = append(jobIDs, probe)
	if st, err := c.WaitForStatus(ctx, probe, core.StatusCompleted, time.Minute); err != nil || st != core.StatusCompleted {
		arm.violations = append(arm.violations, fmt.Sprintf("recovery probe job %s ended %s err=%v", probe, st, err))
	}
	if p.Degraded() {
		arm.violations = append(arm.violations, "platform still degraded after recovery probe completed")
	}
	cfg.logf(fc, "recovery took %s virtual; sweeping invariants", arm.recovery)

	// --- Invariant sweep --------------------------------------------
	// Wait for every collector to finish its stream.
	for id, w := range collectors {
		select {
		case <-w.done:
		case <-ctx.Done():
			arm.violations = append(arm.violations, fmt.Sprintf("watch collector for %s did not finish", id))
		}
	}

	var latencies []time.Duration
	for _, id := range jobIDs {
		reply, err := c.Status(ctx, id)
		if err != nil {
			arm.violations = append(arm.violations, fmt.Sprintf("final status read %s: %v", id, err))
			continue
		}
		if !reply.Status.Terminal() {
			arm.violations = append(arm.violations, fmt.Sprintf("job %s final status %s is not terminal", id, reply.Status))
		}
		// WatchStatus exactly-once/in-order against the durable history.
		entries, brokenStream := collectors[id].snapshot()
		if brokenStream != "" {
			arm.violations = append(arm.violations, brokenStream)
		}
		if len(entries) != len(reply.History) {
			arm.violations = append(arm.violations, fmt.Sprintf(
				"job %s watch delivered %d transitions, history has %d", id, len(entries), len(reply.History)))
		} else {
			for i := range entries {
				if entries[i].Status != reply.History[i].Status || !entries[i].Time.Equal(reply.History[i].Time) {
					arm.violations = append(arm.violations, fmt.Sprintf(
						"job %s watch transition %d = %s@%v, history has %s@%v",
						id, i+1, entries[i].Status, entries[i].Time,
						reply.History[i].Status, reply.History[i].Time))
					break
				}
			}
		}
		// Learner-log offsets strictly increasing: no reuse across
		// learner restarts or replica crashes.
		logs := p.Metrics.Logs(id)
		for i := 1; i < len(logs); i++ {
			if logs[i].Offset <= logs[i-1].Offset {
				arm.violations = append(arm.violations, fmt.Sprintf(
					"job %s log offset %d at line %d not greater than %d", id, logs[i].Offset, i, logs[i-1].Offset))
				break
			}
		}
		// Admission conservation per job.
		if p.Admission.Holds(id) {
			arm.violations = append(arm.violations, fmt.Sprintf("admission still holds a footprint for terminal job %s", id))
		}
		if h := reply.History; len(h) > 0 {
			start := h[0].Time
			for _, e := range h {
				if e.Status == core.StatusProcessing {
					latencies = append(latencies, e.Time.Sub(start))
					break
				}
			}
		}
	}
	if got := p.Admission.AdmittedGPUs(); got != 0 {
		arm.violations = append(arm.violations, fmt.Sprintf("admission reports %d GPUs held after drain, want 0", got))
	}
	arm.p99 = quantileDuration(latencies, 0.99)

	snap := p.Obs.Snapshot()
	arm.retries = snap.Counter("resilience.retries")
	arm.sheds = snap.Counter("resilience.shed")
	arm.degradedSheds += p.Metrics.Counter("api.degraded_sheds") - arm.degradedSheds // absolute platform count wins
	arm.degradedReads = p.Metrics.Counter("api.degraded_reads")
	arm.virtual = fc.Since(virtualStart)
	return arm, nil
}

// quantileDuration returns the q-quantile (nearest-rank) of ds.
func quantileDuration(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	idx := int(q*float64(len(ds))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(ds) {
		idx = len(ds) - 1
	}
	return ds[idx]
}

// RenderChaosSoak formats a soak result as a table.
func RenderChaosSoak(r ChaosSoakResult) *Table {
	t := &Table{
		Title: "Chaos soak: all injectors concurrent, hard invariants + latency SLO vs calm baseline",
		Header: []string{"Jobs", "Completed", "Failed", "Node crashes", "Pod kills", "Etcd outages",
			"Mongo failovers", "RPC drops", "Retries", "Sheds", "Calm p99 (ms)", "Chaos p99 (ms)", "Recovery (ms)", "Violations"},
		Rows: [][]string{{
			fmt.Sprintf("%d", r.Jobs), fmt.Sprintf("%d", r.Completed), fmt.Sprintf("%d", r.Failed),
			fmt.Sprintf("%d", r.NodeCrashes), fmt.Sprintf("%d", r.PodKills), fmt.Sprintf("%d", r.EtcdOutages),
			fmt.Sprintf("%d", r.Mongo.Failovers), fmt.Sprintf("%d", r.RPC.Dropped),
			fmt.Sprintf("%d", r.Retries), fmt.Sprintf("%d", r.Sheds),
			f2(r.CalmP99Ms), f2(r.ChaosP99Ms), f2(r.RecoveryVirtualMs),
			fmt.Sprintf("%d", len(r.Violations)),
		}},
	}
	if len(r.Violations) == 0 {
		t.Caption = fmt.Sprintf(
			"Zero invariant violations: every job terminal, watch streams exactly-once/in-order, admission conserved, log offsets monotone; %d submissions shed + %d degraded reads served during mongo-breaker-open windows.",
			r.DegradedShed, r.DegradedRead)
	} else {
		t.Caption = fmt.Sprintf("%d INVARIANT VIOLATIONS — see JSON artifact for details.", len(r.Violations))
	}
	return t
}
