package commitlog

import (
	"bytes"
	"testing"
)

// FuzzSegmentRecordRoundtrip feeds arbitrary bytes through the segment
// decoder: it must never panic, and whatever it accepts must survive a
// re-encode/decode round trip unchanged (the recovery path re-writes
// truncated segments with exactly these bytes).
func FuzzSegmentRecordRoundtrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendRecordFrame(nil, 0, "", nil))
	f.Add(appendRecordFrame(nil, 7, "job-1", []byte("payload")))
	multi := appendRecordFrame(nil, 1, "a", []byte("x"))
	multi = appendRecordFrame(multi, 2, "b", bytes.Repeat([]byte{0xAB}, 100))
	f.Add(multi)
	torn := appendRecordFrame(nil, 3, "k", []byte("v"))
	f.Add(torn[:len(torn)-2])
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, validLen, tornErr := decodeSegment(data)
		if validLen > len(data) {
			t.Fatalf("validLen %d exceeds input %d", validLen, len(data))
		}
		if tornErr == nil && validLen != len(data) {
			t.Fatalf("clean decode but validLen %d != %d", validLen, len(data))
		}
		// The accepted prefix must re-decode identically after the
		// canonical re-encode compaction and recovery use.
		reenc := encodeRecords(recs)
		recs2, _, err := decodeSegment(reenc)
		if err != nil {
			t.Fatalf("re-encode of accepted records failed to decode: %v", err)
		}
		if len(recs2) != len(recs) {
			t.Fatalf("roundtrip: %d records became %d", len(recs), len(recs2))
		}
		for i := range recs {
			if recs[i].Offset != recs2[i].Offset || recs[i].Key != recs2[i].Key ||
				!bytes.Equal(recs[i].Payload, recs2[i].Payload) {
				t.Fatalf("roundtrip: record %d diverged: %+v vs %+v", i, recs[i], recs2[i])
			}
		}
	})
}

// FuzzOffsetMapDecode feeds arbitrary bytes through the consumer-offset
// log decoder: never a panic, and any recovered commit must survive a
// re-encode/decode round trip (this is the path every consumer's resume
// point takes across a restart).
func FuzzOffsetMapDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendOffsetsFrame(nil, 1, nil))
	f.Add(appendOffsetsFrame(nil, 3, []offsetEntry{{name: "watch", next: 42}}))
	multi := appendOffsetsFrame(nil, 1, []offsetEntry{{name: "a", next: 1}})
	multi = appendOffsetsFrame(multi, 2, []offsetEntry{{name: "a", next: 9}, {name: "b", next: 3}})
	f.Add(multi)
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, gen, found := decodeOffsetsLog(data)
		if !found {
			if len(entries) != 0 {
				t.Fatal("entries without found")
			}
			return
		}
		reenc := appendOffsetsFrame(nil, gen, entries)
		entries2, gen2, found2 := decodeOffsetsLog(reenc)
		if !found2 || gen2 != gen || len(entries2) != len(entries) {
			t.Fatalf("roundtrip: gen %d/%d, %d/%d entries, found=%v",
				gen, gen2, len(entries), len(entries2), found2)
		}
		for i := range entries {
			if entries[i] != entries2[i] {
				t.Fatalf("roundtrip: entry %d diverged: %+v vs %+v", i, entries[i], entries2[i])
			}
		}
	})
}
