package sched

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/ffdl/ffdl/internal/sim"
)

// gpuNode builds a node with the given GPUs plus ample CPU/memory.
func gpuNode(name, gpuType string, gpus int) *Node {
	cap := Resources{MilliCPU: 64000, MemoryMB: 256000, GPUs: gpus}
	return &Node{Name: name, GPUType: gpuType, Capacity: cap, Free: cap}
}

func cluster(machines, gpusPer int) *ClusterState {
	nodes := make([]*Node, machines)
	for i := range nodes {
		nodes[i] = gpuNode(fmt.Sprintf("node%02d", i), "K80", gpusPer)
	}
	return NewClusterState(nodes)
}

func gang(jobID string, learners, gpusPerLearner int) *Gang {
	g := &Gang{JobID: jobID, User: "u"}
	for i := 0; i < learners; i++ {
		g.Pods = append(g.Pods, PodSpec{
			Name:   fmt.Sprintf("%s-learner-%d", jobID, i),
			JobID:  jobID,
			Demand: Resources{MilliCPU: 4000, MemoryMB: 24000, GPUs: gpusPerLearner},
		})
	}
	return g
}

// TestSpreadFragmentationPaperExample reproduces §3.4's example: 4
// single-GPU jobs on a 4-machine × 4-GPU cluster. Spread strands one
// job on each machine so a subsequent 4-GPU job cannot fit; Pack leaves
// three machines empty.
func TestSpreadFragmentationPaperExample(t *testing.T) {
	for _, tc := range []struct {
		policy   PodPolicy
		bigFits  bool
		distinct int
	}{
		{Spread{}, false, 4},
		{Pack{}, true, 1},
	} {
		cs := cluster(4, 4)
		used := map[string]bool{}
		for j := 0; j < 4; j++ {
			p := &PodSpec{Name: fmt.Sprintf("job%d-l0", j), JobID: fmt.Sprintf("job%d", j),
				Demand: Resources{MilliCPU: 4000, MemoryMB: 24000, GPUs: 1}}
			node, fail := tc.policy.PlacePod(p, cs)
			if fail != nil {
				t.Fatalf("%s: placing job%d: %v", tc.policy.Name(), j, fail)
			}
			cs.Assign(node, p.Demand)
			used[node] = true
		}
		if len(used) != tc.distinct {
			t.Fatalf("%s used %d machines, want %d", tc.policy.Name(), len(used), tc.distinct)
		}
		big := &PodSpec{Name: "big-l0", JobID: "big", Demand: Resources{MilliCPU: 4000, MemoryMB: 24000, GPUs: 4}}
		_, fail := tc.policy.PlacePod(big, cs)
		fits := fail == nil
		if fits != tc.bigFits {
			t.Fatalf("%s: 4-GPU job fits=%v, want %v (fail=%v)", tc.policy.Name(), fits, tc.bigFits, fail)
		}
	}
}

func TestFeasibilityReasons(t *testing.T) {
	// GPU-type mismatch dominates when all nodes are the wrong type.
	cs := NewClusterState([]*Node{gpuNode("a", "K80", 2), gpuNode("b", "K80", 2)})
	p := &PodSpec{Name: "p", Demand: Resources{GPUs: 1}, GPUType: "P100"}
	_, reason := cs.FeasibleNodes(p)
	if reason != ReasonNodeSelector {
		t.Fatalf("reason = %v, want MatchNodeSelector", reason)
	}
	// GPU exhaustion.
	cs.Assign("a", Resources{GPUs: 2})
	cs.Assign("b", Resources{GPUs: 2})
	p2 := &PodSpec{Name: "p2", Demand: Resources{GPUs: 1}, GPUType: "K80"}
	_, reason = cs.FeasibleNodes(p2)
	if reason != ReasonInsufficientGPU {
		t.Fatalf("reason = %v, want Insufficient GPU", reason)
	}
	// Unschedulable dominates when every matching node is cordoned.
	v1, v2 := gpuNode("v1", "V100", 2), gpuNode("v2", "V100", 2)
	v1.Unschedulable, v2.Unschedulable = true, true
	cs2 := NewClusterState([]*Node{gpuNode("k", "K80", 2), v1, v2})
	p3 := &PodSpec{Name: "p3", Demand: Resources{GPUs: 1}, GPUType: "V100"}
	_, reason = cs2.FeasibleNodes(p3)
	if reason != ReasonUnschedulable {
		t.Fatalf("reason = %v, want NodeUnschedulable", reason)
	}
}

func TestGreedyGangAllOrNothing(t *testing.T) {
	cs := cluster(2, 2) // 4 GPUs total
	pol := GreedyGang{Pod: Pack{}}
	// 2 learners x 2 GPUs fits.
	as, fail := pol.PlaceGang(gang("j1", 2, 2), cs)
	if fail != nil {
		t.Fatalf("gang placement failed: %v", fail)
	}
	if len(as) != 2 {
		t.Fatalf("assignments = %v", as)
	}
	for _, a := range as {
		cs.Assign(a.Node, Resources{MilliCPU: 4000, MemoryMB: 24000, GPUs: 2})
	}
	// Next gang cannot fit at all; cluster must be untouched after the
	// failed attempt.
	free, _ := cs.TotalGPUs()
	_, fail = pol.PlaceGang(gang("j2", 2, 1), cs)
	if fail == nil {
		t.Fatal("oversubscribed gang placed")
	}
	free2, _ := cs.TotalGPUs()
	if free != free2 {
		t.Fatalf("failed gang placement leaked resources: %d -> %d", free, free2)
	}
}

func TestBSAPlacesAndPacks(t *testing.T) {
	rng := sim.NewRNG(7)
	bsa := NewBSA(rng)
	cs := cluster(4, 4)
	// A 2x2 gang should land on ONE machine (packing objective).
	as, fail := bsa.PlaceGang(gang("j1", 2, 2), cs)
	if fail != nil {
		t.Fatalf("BSA failed: %v", fail)
	}
	if as[0].Node != as[1].Node {
		t.Fatalf("BSA split a packable gang: %v", as)
	}
}

func TestBSARespectsGPUType(t *testing.T) {
	rng := sim.NewRNG(7)
	bsa := NewBSA(rng)
	nodes := []*Node{gpuNode("k", "K80", 4), gpuNode("v", "V100", 4)}
	cs := NewClusterState(nodes)
	g := gang("j1", 2, 2)
	for i := range g.Pods {
		g.Pods[i].GPUType = "V100"
	}
	as, fail := bsa.PlaceGang(g, cs)
	if fail != nil {
		t.Fatalf("BSA failed: %v", fail)
	}
	for _, a := range as {
		if a.Node != "v" {
			t.Fatalf("pod on wrong GPU type: %v", as)
		}
	}
}

func TestBSAFailsCleanlyWhenImpossible(t *testing.T) {
	bsa := NewBSA(sim.NewRNG(7))
	cs := cluster(2, 2)
	_, fail := bsa.PlaceGang(gang("big", 2, 3), cs)
	if fail == nil {
		t.Fatal("impossible gang placed")
	}
	if fail.Reason != ReasonInsufficientGPU {
		t.Fatalf("reason = %v", fail.Reason)
	}
}

func TestQueueFCFSLargestGangTieBreak(t *testing.T) {
	var q Queue
	t0 := time.Unix(1000, 0)
	q.Push(gang("small", 1, 1), t0)
	q.Push(gang("large", 4, 2), t0) // same instant, more GPUs
	q.Push(gang("later", 8, 4), t0.Add(time.Second))
	want := []string{"large", "small", "later"}
	for _, w := range want {
		got := q.Pop()
		if got.Gang.JobID != w {
			t.Fatalf("pop = %s, want %s", got.Gang.JobID, w)
		}
	}
}

func TestQueueRemove(t *testing.T) {
	var q Queue
	t0 := time.Unix(0, 0)
	q.Push(gang("a", 1, 1), t0)
	q.Push(gang("b", 1, 1), t0.Add(time.Second))
	if !q.Remove("a") {
		t.Fatal("remove existing failed")
	}
	if q.Remove("a") {
		t.Fatal("double remove succeeded")
	}
	if q.Len() != 1 || q.Peek().Gang.JobID != "b" {
		t.Fatalf("queue = %v", q.Items())
	}
}

func TestDispatcherStrictFCFSBlocksBehindHead(t *testing.T) {
	cs := cluster(1, 4)
	var q Queue
	t0 := time.Unix(0, 0)
	q.Push(gang("huge", 2, 4), t0)          // needs 8 GPUs: blocked
	q.Push(gang("tiny", 1, 1), t0.Add(1e9)) // would fit
	d := &Dispatcher{Policy: GreedyGang{Pod: Pack{}}}
	placed, fail := d.Dispatch(&q, cs, t0.Add(2e9))
	if len(placed) != 0 {
		t.Fatalf("strict FCFS dispatched %v behind blocked head", placed)
	}
	if fail == nil {
		t.Fatal("no failure reported for blocked head")
	}
	if q.Len() != 2 {
		t.Fatalf("queue len = %d", q.Len())
	}
}

func TestDispatcherBackfill(t *testing.T) {
	cs := cluster(1, 4)
	var q Queue
	t0 := time.Unix(0, 0)
	q.Push(gang("huge", 2, 4), t0)
	q.Push(gang("tiny", 1, 1), t0.Add(1e9))
	d := &Dispatcher{Policy: GreedyGang{Pod: Pack{}}, Backfill: true}
	placed, _ := d.Dispatch(&q, cs, t0.Add(2e9))
	if len(placed) != 1 || placed[0].Gang.JobID != "tiny" {
		t.Fatalf("backfill placed %v", placed)
	}
	if q.Len() != 1 {
		t.Fatalf("queue len = %d", q.Len())
	}
}

func TestDispatcherDrainsInOrder(t *testing.T) {
	cs := cluster(4, 4)
	var q Queue
	t0 := time.Unix(0, 0)
	for i := 0; i < 4; i++ {
		q.Push(gang(fmt.Sprintf("j%d", i), 2, 2), t0.Add(time.Duration(i)*time.Second))
	}
	d := &Dispatcher{Policy: GreedyGang{Pod: Pack{}}}
	placed, fail := d.Dispatch(&q, cs, t0.Add(time.Minute))
	if fail != nil {
		t.Fatalf("unexpected failure: %v", fail)
	}
	if len(placed) != 4 {
		t.Fatalf("placed %d, want 4", len(placed))
	}
	free, _ := cs.TotalGPUs()
	if free != 0 {
		t.Fatalf("free GPUs = %d, want 0", free)
	}
	if placed[0].QueuedFor <= placed[3].QueuedFor {
		t.Fatal("queue delays not FCFS-consistent")
	}
}

func TestAdmissionQuotaFlow(t *testing.T) {
	a := NewAdmission(16)
	a.SetQuota(UserQuota{User: "alice", Tier: TierPaid, GPUs: 8})
	a.SetQuota(UserQuota{User: "bob", Tier: TierPaid, GPUs: 8})

	g1 := gang("a1", 2, 2) // 4 GPUs
	g1.User = "alice"
	dec, err := a.Admit(g1)
	if err != nil || dec != AdmitInQuota {
		t.Fatalf("admit = %v %v", dec, err)
	}
	g2 := gang("a2", 4, 2) // 8 GPUs -> alice at 12 > 8 quota
	g2.User = "alice"
	dec, err = a.Admit(g2)
	if err != nil || dec != AdmitOverQuota {
		t.Fatalf("over-quota admit = %v %v", dec, err)
	}
	if a.Usage("alice") != 12 {
		t.Fatalf("usage = %d", a.Usage("alice"))
	}
	// Unknown user rejected.
	g3 := gang("x1", 1, 1)
	g3.User = "mallory"
	if dec, _ := a.Admit(g3); dec != Reject {
		t.Fatalf("unknown user admitted: %v", dec)
	}
	// Cluster limit rejected: bob asking 8 would exceed 16 total (12+8).
	g4 := gang("b1", 4, 2)
	g4.User = "bob"
	if dec, _ := a.Admit(g4); dec != Reject {
		t.Fatalf("cluster-limit violation admitted: %v", dec)
	}
	a.Release("a2")
	if a.Usage("alice") != 4 {
		t.Fatalf("usage after release = %d", a.Usage("alice"))
	}
}

// TestPreemptionScenarios covers the two §3.6 preemption cases: free
// users under load, and user A's over-quota job when user B reclaims.
func TestPreemptionScenarios(t *testing.T) {
	a := NewAdmission(0)
	a.SetQuota(UserQuota{User: "free1", Tier: TierFree, GPUs: 2})
	a.SetQuota(UserQuota{User: "payA", Tier: TierPaid, GPUs: 8})
	a.SetQuota(UserQuota{User: "payB", Tier: TierPaid, GPUs: 8})

	gf := gang("freejob", 1, 2)
	gf.User = "free1"
	if _, err := a.Admit(gf); err != nil {
		t.Fatal(err)
	}
	gA1 := gang("a-in", 2, 2) // in quota (4)
	gA1.User = "payA"
	if _, err := a.Admit(gA1); err != nil {
		t.Fatal(err)
	}
	gA2 := gang("a-over", 4, 2) // over quota (4+8 > 8)
	gA2.User = "payA"
	if dec, _ := a.Admit(gA2); dec != AdmitOverQuota {
		t.Fatalf("dec = %v", dec)
	}

	// B reclaims 8 GPUs: free job (2) + A's over-quota job (8) free 10.
	victims := a.PreemptFor("payB", 8)
	if len(victims) != 2 {
		t.Fatalf("victims = %v", victims)
	}
	if victims[0] != "freejob" {
		t.Fatalf("free-tier job not preempted first: %v", victims)
	}
	if victims[1] != "a-over" {
		t.Fatalf("over-quota job not second: %v", victims)
	}
	// A's in-quota job must survive.
	if a.Usage("payA") != 4 {
		t.Fatalf("payA usage = %d, want 4", a.Usage("payA"))
	}
	// Demand that cannot be met returns nil and preempts nothing.
	if v := a.PreemptFor("payB", 100); v != nil {
		t.Fatalf("impossible preemption returned %v", v)
	}
}

// Property: gang placement never overcommits any node, for arbitrary
// gang shapes.
func TestNoOvercommitProperty(t *testing.T) {
	rng := sim.NewRNG(11)
	policies := []GangPolicy{GreedyGang{Pod: Pack{}}, GreedyGang{Pod: Spread{}}, NewBSA(rng)}
	f := func(sizes []uint8) bool {
		for _, pol := range policies {
			cs := cluster(4, 4)
			for j, s := range sizes {
				learners := int(s%4) + 1
				gpus := int(s/4%4) + 1
				g := gang(fmt.Sprintf("g%d", j), learners, gpus)
				as, fail := pol.PlaceGang(g, cs)
				if fail != nil {
					continue
				}
				for i, a := range as {
					cs.Assign(a.Node, g.Pods[i].Demand)
				}
				for _, n := range cs.Nodes {
					if n.Free.GPUs < 0 || n.Free.MilliCPU < 0 || n.Free.MemoryMB < 0 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: BSA and greedy agree on feasibility for single-pod gangs.
func TestBSAFeasibilityAgreesWithGreedyProperty(t *testing.T) {
	rng := sim.NewRNG(13)
	f := func(gpus uint8, machines uint8) bool {
		m := int(machines%4) + 1
		cs := cluster(m, 4)
		g := gang("j", 1, int(gpus%6)+1)
		_, bsaFail := NewBSA(rng).PlaceGang(g, cs)
		_, greedyFail := (GreedyGang{Pod: Pack{}}).PlaceGang(g, cs)
		return (bsaFail == nil) == (greedyFail == nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestAdmitIdempotentPerJob: re-admitting a job that already holds a
// footprint returns the original decision without double-counting —
// the guard against API replica retries and dispatcher resyncs.
func TestAdmitIdempotentPerJob(t *testing.T) {
	a := NewAdmission(8)
	a.SetQuota(UserQuota{User: "u", Tier: TierPaid, GPUs: 4})
	g := gang("j1", 2, 2) // 4 GPUs, exactly in quota
	for i := 0; i < 3; i++ {
		dec, err := a.Admit(g)
		if err != nil || dec != AdmitInQuota {
			t.Fatalf("admit #%d = %v %v", i, dec, err)
		}
	}
	if got := a.Usage("u"); got != 4 {
		t.Fatalf("usage after repeated admits = %d, want 4", got)
	}
	if got := a.AdmittedGPUs(); got != 4 {
		t.Fatalf("admitted after repeated admits = %d, want 4", got)
	}
	// The replayed decision is the recorded one, even once the user is
	// over quota through another job.
	g2 := gang("j2", 2, 2)
	if dec, _ := a.Admit(g2); dec != AdmitOverQuota {
		t.Fatalf("j2 = %v, want over-quota", dec)
	}
	if dec, _ := a.Admit(g2); dec != AdmitOverQuota {
		t.Fatalf("replayed j2 decision changed")
	}
	if dec, _ := a.Admit(g); dec != AdmitInQuota {
		t.Fatalf("replayed j1 decision changed")
	}
}

// TestReleaseIdempotent: double release (and release of an unknown job)
// is a no-op — usage cannot go negative.
func TestReleaseIdempotent(t *testing.T) {
	a := NewAdmission(0)
	a.SetQuota(UserQuota{User: "u", Tier: TierPaid, GPUs: 8})
	g := gang("j1", 1, 2)
	if _, err := a.Admit(g); err != nil {
		t.Fatal(err)
	}
	a.Release("j1")
	a.Release("j1")
	a.Release("never-admitted")
	if got := a.Usage("u"); got != 0 {
		t.Fatalf("usage after double release = %d, want 0", got)
	}
	if got := a.AdmittedGPUs(); got != 0 {
		t.Fatalf("admitted after double release = %d, want 0", got)
	}
	if a.Holds("j1") {
		t.Fatal("released job still held")
	}
}

// TestClusterGPUSentinels: 0 keeps the legacy "unlimited" meaning,
// negative means known-zero capacity and admits nothing.
func TestClusterGPUSentinels(t *testing.T) {
	a := NewAdmission(0)
	a.SetQuota(UserQuota{User: "u", Tier: TierPaid, GPUs: 4})
	if dec, err := a.Admit(gang("unltd", 1, 2)); dec == Reject {
		t.Fatalf("unlimited budget rejected: %v", err)
	}
	a.SetClusterGPUs(-1)
	if dec, _ := a.Admit(gang("none", 1, 1)); dec != Reject {
		t.Fatalf("known-zero capacity admitted: %v", dec)
	}
	a.SetClusterGPUs(4)
	if dec, _ := a.Admit(gang("fits", 1, 2)); dec == Reject {
		t.Fatal("positive budget rejected a fitting job")
	}
}

// TestAdmitUnknownUserLeavesNoFootprint: a rejected unknown-user Admit
// must not register anything — a later Release of that job is a no-op
// and the cluster budget is untouched.
func TestAdmitUnknownUserLeavesNoFootprint(t *testing.T) {
	a := NewAdmission(4)
	g := gang("ghost", 1, 2)
	g.User = "nobody"
	dec, err := a.Admit(g)
	if dec != Reject || err == nil {
		t.Fatalf("unknown user: dec=%v err=%v", dec, err)
	}
	if a.Holds("ghost") || a.AdmittedGPUs() != 0 {
		t.Fatal("rejected admit left a footprint")
	}
	a.Release("ghost") // must be harmless
	if a.Usage("nobody") != 0 {
		t.Fatalf("usage for unknown user = %d", a.Usage("nobody"))
	}
}

// TestPreemptForVictimOrderingAndSufficiency: victims are free-tier
// jobs first, then over-quota jobs newest-first, and the selected set
// always frees at least the requested GPUs.
func TestPreemptForVictimOrderingAndSufficiency(t *testing.T) {
	a := NewAdmission(0)
	a.SetQuota(UserQuota{User: "free1", Tier: TierFree, GPUs: 2})
	a.SetQuota(UserQuota{User: "free2", Tier: TierFree, GPUs: 2})
	a.SetQuota(UserQuota{User: "payA", Tier: TierPaid, GPUs: 4})
	a.SetQuota(UserQuota{User: "payB", Tier: TierPaid, GPUs: 16})

	admit := func(id, user string, learners, gpus int) {
		t.Helper()
		g := gang(id, learners, gpus)
		g.User = user
		if _, err := a.Admit(g); err != nil {
			t.Fatalf("admit %s: %v", id, err)
		}
	}
	admit("f1", "free1", 1, 2)     // free tier
	admit("f2", "free2", 1, 2)     // free tier
	admit("a-in", "payA", 2, 2)    // in quota, must survive
	admit("a-over1", "payA", 1, 2) // over quota, older
	admit("a-over2", "payA", 1, 2) // over quota, newer

	need := 9 // forces free tier (4) + both over-quota jobs (4) = 8 < 9? no: 4+2+2=8 <9 -> nil
	if v := a.PreemptFor("payB", need); v != nil {
		t.Fatalf("unsatisfiable demand returned victims %v", v)
	}
	// All footprints must be intact after the failed attempt.
	if a.Usage("free1") != 2 || a.Usage("payA") != 8 {
		t.Fatalf("failed preemption mutated usage: free1=%d payA=%d",
			a.Usage("free1"), a.Usage("payA"))
	}

	victims := a.PreemptFor("payB", 7)
	if victims == nil {
		t.Fatal("satisfiable preemption returned nil")
	}
	// Ordering: both free-tier jobs before any over-quota job, then the
	// newest over-quota job first.
	if len(victims) != 4 {
		t.Fatalf("victims = %v, want 4 entries", victims)
	}
	freeFirst := map[string]bool{"f1": true, "f2": true}
	if !freeFirst[victims[0]] || !freeFirst[victims[1]] {
		t.Fatalf("free-tier jobs not preempted first: %v", victims)
	}
	if victims[2] != "a-over2" || victims[3] != "a-over1" {
		t.Fatalf("over-quota jobs not newest-first: %v", victims)
	}
	// Sufficiency invariant, from the controller's own accounting:
	// after preemption only a-in (4 GPUs) remains, so 8 ≥ 7 were freed.
	if a.AdmittedGPUs() != 4 {
		t.Fatalf("admitted after preemption = %d, want 4 (a-in only)", a.AdmittedGPUs())
	}
	if a.Usage("payA") != 4 {
		t.Fatalf("in-quota job did not survive: payA usage = %d", a.Usage("payA"))
	}
	if got := a.Preemptions(); got != 4 {
		t.Fatalf("preemption counter = %d, want 4", got)
	}
}

// TestPreemptForFreesEnoughProperty: for arbitrary mixes of free-tier,
// in-quota and over-quota jobs, a non-nil PreemptFor result always
// frees at least the requested demand and never touches the
// requester's own jobs.
func TestPreemptForFreesEnoughProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		a := NewAdmission(0)
		users := []string{"freeA", "freeB", "paidA", "paidB"}
		a.SetQuota(UserQuota{User: "freeA", Tier: TierFree, GPUs: 2})
		a.SetQuota(UserQuota{User: "freeB", Tier: TierFree, GPUs: 2})
		a.SetQuota(UserQuota{User: "paidA", Tier: TierPaid, GPUs: 6})
		a.SetQuota(UserQuota{User: "paidB", Tier: TierPaid, GPUs: 6})
		a.SetQuota(UserQuota{User: "claimant", Tier: TierPaid, GPUs: 64})
		mine := map[string]int{}
		jobs := 1 + rng.Intn(10)
		for j := 0; j < jobs; j++ {
			u := users[rng.Intn(len(users))]
			id := fmt.Sprintf("t%d-j%d", trial, j)
			g := gang(id, 1, 1+rng.Intn(4))
			g.User = u
			if _, err := a.Admit(g); err != nil {
				t.Fatal(err)
			}
			mine[id] = g.GPUDemand()
		}
		before := a.AdmittedGPUs()
		need := 1 + rng.Intn(12)
		victims := a.PreemptFor("claimant", need)
		if victims == nil {
			continue // demand not satisfiable from preemptible jobs
		}
		freed := before - a.AdmittedGPUs()
		if freed < need {
			t.Fatalf("trial %d: freed %d < need %d (victims %v)", trial, freed, need, victims)
		}
		for _, id := range victims {
			if _, ok := mine[id]; !ok {
				t.Fatalf("trial %d: unknown victim %s", trial, id)
			}
		}
	}
}
