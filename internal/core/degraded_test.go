package core

import (
	"context"
	"testing"
	"time"
)

// TestDegradedModeServesReadsShedsSubmits is the end-to-end pin for
// graceful degradation (ISSUE acceptance): with the metadata store's
// breaker open, status and watch reads serve from the status bus's
// replay window (flagged Degraded) and submissions are shed with a
// retryable ErrDegraded — then everything recovers once the store heals
// and the breaker's open window elapses.
func TestDegradedModeServesReadsShedsSubmits(t *testing.T) {
	p := newTestPlatform(t, nil)
	c := p.Client()
	ctx := context.Background()

	// A job completes while the store is healthy, seeding the bus's
	// replay window with its full history.
	jobID, err := c.Submit(ctx, testManifest())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitStatus(t, c, jobID, StatusCompleted, 20*time.Second)

	// Outage: the primary stops answering. The first failing submit's
	// retries trip the breaker (threshold 3 <= the policy's 3 attempts),
	// so degradation is immediate and subsequent submits shed fast.
	p.Mongo.SetUnavailable(true)
	if _, err := c.Submit(ctx, testManifest()); err == nil {
		t.Fatal("submit succeeded while the metadata store is down")
	} else if !IsDegraded(err) {
		t.Fatalf("submit error not degraded-retryable: %v", err)
	}
	if !p.Degraded() {
		t.Fatal("platform not degraded after breaker tripped")
	}
	// Shed path: breaker open, the submit is rejected up front.
	if _, err := c.Submit(ctx, testManifest()); !IsDegraded(err) {
		t.Fatalf("shed submit error = %v, want degraded", err)
	}

	// Status reads serve the retained history, flagged Degraded.
	reply, err := c.Status(ctx, jobID)
	if err != nil {
		t.Fatalf("degraded status read failed: %v", err)
	}
	if !reply.Degraded {
		t.Fatal("status reply not flagged Degraded")
	}
	if reply.Status != StatusCompleted {
		t.Fatalf("degraded status = %s, want %s", reply.Status, StatusCompleted)
	}
	if len(reply.History) == 0 {
		t.Fatal("degraded status reply carries no history")
	}

	// Watch reads work too: the stream replays the bus's commit-log
	// window (no MongoDB read) in order through the terminal entry.
	wch, wcancel, err := c.WatchStatus(ctx, jobID)
	if err != nil {
		t.Fatalf("degraded WatchStatus: %v", err)
	}
	defer wcancel()
	var last JobStatus
	n := 0
	for e := range wch {
		last = e.Status
		n++
	}
	if last != StatusCompleted || n < 3 {
		t.Fatalf("degraded watch delivered %d entries ending %s, want full history ending %s", n, last, StatusCompleted)
	}

	// Heal. Once the breaker's open window elapses, a half-open probe
	// succeeds and submissions flow again.
	p.Mongo.SetUnavailable(false)
	deadline := time.Now().Add(5 * time.Second)
	var job2 string
	for {
		job2, err = c.Submit(ctx, testManifest())
		if err == nil {
			break
		}
		if !IsDegraded(err) {
			t.Fatalf("post-heal submit failed non-degraded: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never recovered after heal: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitStatus(t, c, job2, StatusCompleted, 20*time.Second)

	// Healed replies are no longer flagged.
	reply, err = c.Status(ctx, job2)
	if err != nil || reply.Degraded {
		t.Fatalf("post-heal status degraded=%v err=%v, want clean read", reply.Degraded, err)
	}

	// The degraded window was observable on the platform counters.
	if got := p.Metrics.Counter("api.degraded_sheds"); got < 2 {
		t.Fatalf("api.degraded_sheds = %d, want >= 2", got)
	}
	if got := p.Metrics.Counter("api.degraded_reads"); got < 1 {
		t.Fatalf("api.degraded_reads = %d, want >= 1", got)
	}
}
