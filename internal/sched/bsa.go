package sched

import (
	"fmt"
	"math"

	"github.com/ffdl/ffdl/internal/sim"
)

// BSA is the Biased Sampling Algorithm gang scheduler (§3.5, citing
// Tantawi [43,44]). The placement of a gang of logical entities (pods)
// onto physical entities (nodes) is an NP-hard assignment problem; at
// cluster scale the solution space is combinatorially explosive, so BSA
// draws whole assignment vectors by importance sampling: each pod samples
// a node from a distribution biased toward nodes that (a) satisfy its
// constraints and (b) improve the objective — here GPU packing, since
// GPUs are the scarce resource. The best-scoring feasible sample wins.
type BSA struct {
	// Samples is the number of assignment vectors drawn per gang.
	// Larger values approach the optimum at higher scheduling latency
	// (ablated in BenchmarkAblationBSASamples).
	Samples int
	// Theta sharpens the bias distribution: weight ∝ exp(Theta·score).
	// Theta = 0 degenerates to uniform sampling over feasible nodes.
	Theta float64
	// CandidateCap, when > 0, bounds the nodes each sampling step
	// draws from to the CandidateCap fullest feasible nodes per GPU
	// type (the capacity index walks fullest-first). Since the bias
	// already concentrates weight on near-full machines, capping the
	// long empty tail barely changes the sampled distribution but
	// keeps per-placement work constant as the cluster grows. 0 means
	// consider every feasible node.
	CandidateCap int
	// RNG drives sampling; required.
	RNG *sim.RNG
}

var _ GangPolicy = (*BSA)(nil)

// NewBSA returns a BSA scheduler with the defaults used in production:
// 32 samples, bias sharpness 4.
func NewBSA(rng *sim.RNG) *BSA {
	return &BSA{Samples: 32, Theta: 4, RNG: rng}
}

// Name implements GangPolicy.
func (b *BSA) Name() string { return "gang-bsa" }

// PlaceGang implements GangPolicy.
func (b *BSA) PlaceGang(g *Gang, cs *ClusterState) ([]Assignment, *Failure) {
	samples := b.Samples
	if samples <= 0 {
		samples = 32
	}
	var (
		best      []Assignment
		bestScore = math.Inf(-1)
		lastFail  *Failure
	)
	order := podOrder(g)
	for s := 0; s < samples; s++ {
		as, fail := b.sampleOnce(g, order, cs)
		if fail != nil {
			lastFail = fail
			continue
		}
		if score := b.objective(g, as, cs); score > bestScore {
			best, bestScore = as, score
		}
	}
	if best == nil {
		if lastFail == nil {
			lastFail = &Failure{Reason: ReasonNoNodesAvailable, Message: fmt.Sprintf("gang %s: no feasible sample", g.JobID)}
		}
		return nil, lastFail
	}
	sortAssignments(g, best)
	return best, nil
}

// sampleOnce draws one assignment vector: pods (largest first) sample
// nodes proportionally to exp(Theta * packScore) over currently
// feasible nodes. The speculative assignments run under a checkpoint
// that is rolled back before returning, so the caller scores the
// vector against the untouched pre-sample state — and a 5000-node
// cluster is never cloned 32 times per gang.
func (b *BSA) sampleOnce(g *Gang, order []int, cs *ClusterState) ([]Assignment, *Failure) {
	mark := cs.Checkpoint()
	defer cs.Rollback(mark)
	out := make([]Assignment, 0, len(g.Pods))
	for _, i := range order {
		p := &g.Pods[i]
		nodes, reason := cs.Candidates(p, b.CandidateCap)
		if len(nodes) == 0 {
			return nil, &Failure{
				Reason:  reason,
				Message: fmt.Sprintf("gang %s pod %s: no feasible node", g.JobID, p.Name),
			}
		}
		weights := make([]float64, len(nodes))
		for j, n := range nodes {
			weights[j] = math.Exp(b.Theta * packScore(n))
		}
		chosen := nodes[b.RNG.WeightedChoice(weights)]
		cs.Assign(chosen.Name, p.Demand)
		out = append(out, Assignment{Pod: p.Name, Node: chosen.Name})
	}
	return out, nil
}

// objective scores a complete assignment: fewer distinct nodes is better
// (packing), with a small bonus for landing on already-loaded nodes so
// empty machines stay free for future large gangs.
func (b *BSA) objective(g *Gang, as []Assignment, cs *ClusterState) float64 {
	used := make(map[string]int)
	for _, a := range as {
		used[a.Node]++
	}
	score := -float64(len(used))
	for name := range used {
		n := cs.Node(name)
		if n != nil && n.Capacity.GPUs > 0 {
			score += 0.1 * (1 - float64(n.Free.GPUs)/float64(n.Capacity.GPUs))
		}
	}
	return score
}
