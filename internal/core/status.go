// Package core implements FfDL's core services layer (§3): the API
// microservice, the Lifecycle Manager (LCM), the per-job Guardian
// delegate, the helper pod containers (controller, load-data,
// store-results, log-collector) and the Training Metrics Service —
// wired over internal/rpc and running on the internal/kube orchestrator
// with internal/etcd coordination and internal/mongo metadata.
package core

import (
	"time"
)

// JobStatus is a DL-specific job state — the statuses the paper says
// generic cluster managers cannot provide (§1: "DOWNLOADING, PROCESSING,
// STORING, HALTED, RESUMED etc.").
type JobStatus string

// Job statuses.
const (
	// StatusQueued marks a submission accepted and persisted but not yet
	// admitted: under the tenant subsystem (§3.6), over-capacity work
	// waits in the dispatch queue instead of being rejected. The tenant
	// dispatcher moves it to PENDING when its footprint is admitted.
	StatusQueued      JobStatus = "QUEUED"
	StatusPending     JobStatus = "PENDING"
	StatusDeploying   JobStatus = "DEPLOYING"
	StatusDownloading JobStatus = "DOWNLOADING"
	StatusProcessing  JobStatus = "PROCESSING"
	StatusStoring     JobStatus = "STORING"
	StatusCompleted   JobStatus = "COMPLETED"
	StatusFailed      JobStatus = "FAILED"
	StatusHalted      JobStatus = "HALTED"
	StatusResumed     JobStatus = "RESUMED"
	StatusCanceled    JobStatus = "CANCELED"
)

// Terminal reports whether a job status is final.
func (s JobStatus) Terminal() bool {
	return s == StatusCompleted || s == StatusFailed || s == StatusCanceled
}

// statusRank orders the in-flight statuses for aggregation across
// learners: the job is only as far along as its slowest learner.
func statusRank(s JobStatus) int {
	switch s {
	case StatusQueued:
		return 1
	case StatusPending:
		return 2
	case StatusDeploying:
		return 3
	case StatusDownloading:
		return 4
	case StatusProcessing:
		return 5
	case StatusStoring:
		return 6
	case StatusCompleted:
		return 7
	default:
		return 0
	}
}

// StatusEntry is one record in a job's status history. "users use
// associated timestamps for job profiling and debugging" (§2), so every
// transition is timestamped and persisted to MongoDB.
type StatusEntry struct {
	Status  JobStatus
	Time    time.Time
	Message string
}

// CanTransition reports whether from → to is a legal status move. The
// machine enforces monotone forward progress: a job may skip observation
// points (a fast job can go DOWNLOADING → COMPLETED if the controller's
// sampling missed PROCESSING — the underlying process still went through
// it) but may never move backwards, and terminal states are sticky.
// HALT is allowed from any in-flight state; RESUME only from HALTED and
// re-enters the pipeline at deployment rank.
func CanTransition(from, to JobStatus) bool {
	if from == to {
		return true
	}
	if from.Terminal() {
		return false
	}
	switch to {
	case StatusFailed, StatusCanceled:
		return true
	case StatusHalted:
		return statusRank(from) >= statusRank(StatusDeploying) || from == StatusResumed
	case StatusResumed:
		return from == StatusHalted
	}
	if from == StatusHalted {
		return false // only RESUMED/FAILED/CANCELED leave HALTED
	}
	fromRank := statusRank(from)
	if from == StatusResumed {
		fromRank = statusRank(StatusDeploying)
	}
	// DEPLOYING is re-entrant from any *admitted* state: a restarted
	// Guardian rolls the job back and redeploys it from scratch (§3.3),
	// which legitimately moves a PROCESSING job back to DEPLOYING. A
	// QUEUED job, by contrast, has no admitted footprint and must pass
	// through PENDING (dispatch) first.
	if to == StatusDeploying {
		return fromRank >= statusRank(StatusPending)
	}
	return statusRank(to) > fromRank
}
