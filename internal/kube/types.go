// Package kube implements the container-orchestration substrate FfDL
// runs on: a Kubernetes-like system with a watchable object store, pod
// scheduling, ReplicaSet/StatefulSet/Job/Deployment controllers, per-node
// kubelets that execute pod processes, node heartbeating with
// NotReady-eviction, and a FailedScheduling event stream.
//
// It reproduces the Kubernetes behaviours the paper depends on:
//
//   - pod-at-a-time default scheduling (the cause of §3.5's gang
//     deadlocks) with pluggable placement policies and a gang-scheduler
//     extension point,
//   - automatic restart of crashed pods (stateful sets restart learners,
//     K8s Jobs restart Guardians, §3.3/§3.8),
//   - NodeControllerEviction deleting pods on NotReady workers (§5.6),
//   - events with the exact failure-reason vocabulary of Table 8.
package kube

import (
	"time"

	"github.com/ffdl/ffdl/internal/sched"
)

// PodPhase is the pod lifecycle phase.
type PodPhase string

// Pod phases (Kubernetes vocabulary).
const (
	PodPending   PodPhase = "Pending"
	PodRunning   PodPhase = "Running"
	PodSucceeded PodPhase = "Succeeded"
	PodFailed    PodPhase = "Failed"
)

// OwnerRef links a pod to its managing controller object.
type OwnerRef struct {
	Kind string // "StatefulSet", "Deployment", "Job", "ReplicaSet"
	Name string
}

// PodSpec describes what to run and what it needs.
type PodSpec struct {
	// Demand is the resource request.
	Demand sched.Resources
	// GPUType constrains node selection.
	GPUType string
	// JobID is the gang name (the paper: "gang information, namely gang
	// name and gang size ... readily available from the pod owner").
	JobID string
	// GangSize is the number of pods in the gang; 0 disables gang
	// handling for this pod.
	GangSize int
	// Runtime selects the registered process to execute; empty runs a
	// no-op that blocks until killed.
	Runtime string
	// RuntimeArgs is passed to the runtime entrypoint.
	RuntimeArgs map[string]string
	// Type labels the pod for failure analytics (Table 8 / Fig. 6):
	// "learner", "lhelper", "jobmonitor", ...
	Type string
}

// PodStatus is the observed state.
type PodStatus struct {
	Phase PodPhase
	// Node is the bound node; empty while unscheduled.
	Node string
	// ExitCode is the process exit code once terminated.
	ExitCode int
	// Reason carries a machine-readable cause ("NodeFailure", "Killed",
	// "Evicted").
	Reason string
	// Restarts counts kubelet-local container restarts.
	Restarts int
	// ScheduledAt/StartedAt/FinishedAt timestamp the lifecycle.
	ScheduledAt time.Time
	StartedAt   time.Time
	FinishedAt  time.Time
}

// Pod is the schedulable unit.
type Pod struct {
	Name   string
	Labels map[string]string
	Owner  OwnerRef
	Spec   PodSpec
	Status PodStatus
	// UID distinguishes incarnations of recreated pods that share a
	// name (StatefulSet/Deployment restarts). Assigned by the store.
	UID uint64
}

// Clone deep-copies the pod.
func (p *Pod) Clone() *Pod {
	c := *p
	c.Labels = cloneMap(p.Labels)
	c.Spec.RuntimeArgs = cloneMap(p.Spec.RuntimeArgs)
	return &c
}

func cloneMap(m map[string]string) map[string]string {
	if m == nil {
		return nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Terminated reports whether the pod reached a terminal phase.
func (p *Pod) Terminated() bool {
	return p.Status.Phase == PodSucceeded || p.Status.Phase == PodFailed
}

// Node is a cluster machine.
type Node struct {
	Name     string
	GPUType  string
	Capacity sched.Resources
	// Ready mirrors the kubelet heartbeat; NotReady nodes get their pods
	// evicted after a grace period.
	Ready bool
	// Cordoned marks administratively unschedulable nodes (§5.5: nodes
	// with hardware failures "were later cordoned").
	Cordoned bool
	// LastHeartbeat is the most recent kubelet health report.
	LastHeartbeat time.Time
}

// Clone copies the node.
func (n *Node) Clone() *Node {
	c := *n
	return &c
}

// Schedulable reports whether new pods may bind to the node.
func (n *Node) Schedulable() bool { return n.Ready && !n.Cordoned }

// StatefulSet manages a fixed set of ordinally-named pods that are
// recreated on failure — how the Guardian deploys learners (§3.8).
type StatefulSet struct {
	Name     string
	Replicas int
	Template PodSpec
	Labels   map[string]string
	// Paused suspends reconciliation (used during teardown).
	Paused bool
}

// Clone copies the set.
func (s *StatefulSet) Clone() *StatefulSet {
	c := *s
	c.Labels = cloneMap(s.Labels)
	c.Template.RuntimeArgs = cloneMap(s.Template.RuntimeArgs)
	return &c
}

// Deployment manages stateless replicas — how FfDL core microservices
// and the per-job helper pod are deployed.
type Deployment struct {
	Name     string
	Replicas int
	Template PodSpec
	Labels   map[string]string
	Paused   bool
}

// Clone copies the deployment.
func (d *Deployment) Clone() *Deployment {
	c := *d
	c.Labels = cloneMap(d.Labels)
	c.Template.RuntimeArgs = cloneMap(d.Template.RuntimeArgs)
	return &c
}

// Job runs a pod to completion, restarting on failure up to
// BackoffLimit — how the LCM launches Guardians ("If the Guardian
// crashes ... K8S is guaranteed to restart it", §3.3).
type Job struct {
	Name         string
	Template     PodSpec
	BackoffLimit int
	Labels       map[string]string

	// Status fields maintained by the controller.
	Attempts  int
	Succeeded bool
	Failed    bool
}

// Clone copies the job.
func (j *Job) Clone() *Job {
	c := *j
	c.Labels = cloneMap(j.Labels)
	c.Template.RuntimeArgs = cloneMap(j.Template.RuntimeArgs)
	return &c
}

// NetworkPolicy models the per-job isolation policies the Guardian
// applies (§3.3): pods of a job may talk only within the job.
type NetworkPolicy struct {
	Name string
	// JobID scopes the policy.
	JobID string
	// AllowWithinJob permits intra-job traffic (always true in FfDL).
	AllowWithinJob bool
}

// EventType classifies events.
type EventType string

// Event types.
const (
	EventNormal  EventType = "Normal"
	EventWarning EventType = "Warning"
)

// Event mirrors a Kubernetes event; FailedScheduling events carry the
// Table 8 reason messages.
type Event struct {
	Time    time.Time
	Type    EventType
	Reason  string
	Kind    string
	Object  string
	PodType string
	Message string
}

// WatchEventType classifies store watch notifications.
type WatchEventType int

// Watch event types.
const (
	WatchAdded WatchEventType = iota + 1
	WatchModified
	WatchDeleted
)

// WatchEvent notifies a watcher of an object change. Delivery is
// best-effort per watcher: a full buffer drops the event and increments
// the watcher's dropped counter (StoreWatch.Dropped), so consumers are
// level-triggered — any event may be missing, and every consumer must
// be able to converge from a resync listing alone. The normative
// statement of this contract is docs/watch-protocol.md.
type WatchEvent struct {
	Type WatchEventType
	Kind string
	Name string
	// Rev is the store revision of the mutation this event reports
	// (monotonically increasing, one per mutation). Consumers folding
	// events into incremental views use it to audit currency against
	// Store.Revision().
	Rev uint64
	// Object is a deep copy of the object after the change (nil for
	// deletes).
	Object any
	// Prev is a deep copy of the object before the change (nil for
	// adds). Consumers that maintain incremental views — the
	// scheduler's dirty-set above all — diff Prev against Object to
	// apply exactly the delta an event represents, instead of
	// re-listing the store.
	Prev any
}
