package chaos

import (
	"fmt"
	"testing"
	"time"

	"github.com/ffdl/ffdl/internal/etcd"
	"github.com/ffdl/ffdl/internal/kube"
	"github.com/ffdl/ffdl/internal/sched"
	"github.com/ffdl/ffdl/internal/sim"
)

func testCluster(t *testing.T) *kube.Cluster {
	t.Helper()
	c := kube.NewCluster(kube.Config{
		SchedulerInterval: time.Millisecond,
		ResyncInterval:    2 * time.Millisecond,
		HeartbeatInterval: 3 * time.Millisecond,
		NodeGracePeriod:   20 * time.Millisecond,
	})
	t.Cleanup(c.Stop)
	c.RegisterRuntime("block", func(ctx *kube.PodContext) int {
		<-ctx.Stop
		return 137
	})
	for i := 0; i < 4; i++ {
		c.AddNode(nodeName(i), "K80", sched.Resources{MilliCPU: 16000, MemoryMB: 96000, GPUs: 4})
	}
	return c
}

func nodeName(i int) string { return string(rune('a'+i)) + "-node" }

// TestEtcdInjectorOutageForcesSnapshotRestoreAndFailover exercises the
// coordination-layer injector: an outage with enough churn makes the
// victim rejoin via snapshot, and ForceLeader lands leadership on it.
func TestEtcdInjectorOutageForcesSnapshotRestoreAndFailover(t *testing.T) {
	c, err := etcd.NewCluster(etcd.Options{
		Replicas: 3, Seed: 11, SnapshotThreshold: 16, TickInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	in := NewEtcdInjector(c)
	write := func(n int) func() {
		return func() {
			for i := 0; i < n; i++ {
				if _, err := c.Put(fmt.Sprintf("k%03d", i), []byte("v"), 0); err != nil {
					t.Errorf("churn put: %v", err)
				}
			}
		}
	}
	victim, restored := in.OutageCycle(write(80))
	if victim < 0 {
		t.Fatal("no leader to pick a victim around")
	}
	if !restored {
		t.Fatal("outage churn past the snapshot threshold did not force a restore")
	}
	if !in.ForceLeader(victim, write(1)) {
		t.Fatalf("leadership never landed on the restored replica %d", victim)
	}
	if l := c.Leader(); l != victim {
		t.Fatalf("leader = %d, want restored replica %d", l, victim)
	}
	outages, failovers, restores := in.Stats()
	if outages != 1 || restores < 1 || failovers < 1 {
		t.Fatalf("stats = %d outages / %d failovers / %d restores", outages, failovers, restores)
	}
}

func TestNodeCrashLoopInjectsAndRecovers(t *testing.T) {
	c := testCluster(t)
	in := NewInjector(c, sim.NewRNG(3))
	in.NodeMTBF = 80 * time.Millisecond // aggressive for test speed
	in.NodeRecovery = 10 * time.Millisecond
	in.Start()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if crashes, _ := in.Stats(); crashes >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("injector produced no node crashes")
		}
		time.Sleep(time.Millisecond)
	}
	in.Stop()
	// After Stop, every node must be restored (heartbeating resumes).
	deadline = time.Now().Add(3 * time.Second)
	for {
		ready := 0
		for _, n := range c.Store().ListNodes() {
			if n.Ready {
				ready++
			}
		}
		if ready == 4 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/4 nodes ready after injector stop", ready)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestPodKillLoopTargetsRunningPods(t *testing.T) {
	c := testCluster(t)
	// A deployment keeps one pod alive; the injector keeps killing it.
	c.Store().Put(kube.KindDeployment, "victim", &kube.Deployment{
		Name: "victim", Replicas: 1,
		Template: kube.PodSpec{Demand: sched.Resources{MilliCPU: 100, MemoryMB: 64}, Runtime: "block"},
	})
	in := NewInjector(c, sim.NewRNG(5))
	in.PodKillMTBF = 15 * time.Millisecond
	in.Start()
	defer in.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, kills := in.Stats(); kills >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("injector killed no pods")
		}
		time.Sleep(time.Millisecond)
	}
	// The deployment keeps resurrecting its pod despite the chaos.
	deadline = time.Now().Add(3 * time.Second)
	for {
		p, ok := c.Store().GetPod("victim-0")
		if ok && p.Status.Phase == kube.PodRunning {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("pod never recovered under kill loop")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestInjectorIdempotentStartStop(t *testing.T) {
	c := testCluster(t)
	in := NewInjector(c, sim.NewRNG(1))
	in.NodeMTBF = 50 * time.Millisecond
	in.Start()
	in.Start() // second start is a no-op
	in.Stop()
	in.Stop() // second stop is a no-op
}

func TestInjectorWithoutRatesDoesNothing(t *testing.T) {
	c := testCluster(t)
	in := NewInjector(c, sim.NewRNG(1))
	in.Start()
	time.Sleep(30 * time.Millisecond)
	crashes, kills := in.Stats()
	if crashes != 0 || kills != 0 {
		t.Fatalf("injector acted without configured rates: %d/%d", crashes, kills)
	}
	in.Stop()
}
