package expt

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ffdl/ffdl/internal/chaos"
	"github.com/ffdl/ffdl/internal/etcd"
)

// The watch-churn experiment: the repo's own measurement of the durable
// watch layer. It drives chaos-injected failover against the etcd
// coordination store while a fleet of per-job watchers — one prefix
// watch per job, the shape the Guardians and the status machinery use —
// crash and resume by revision, exactly like an API replica resuming
// its status cursor after a restart. The headline metric is
// resyncs-per-restore: with the persisted event log
// (Options.CompactRevisions >= 0) a watcher resuming against a
// freshly snapshot-restored replica replays its gap and the metric is
// ~0; with persistence disabled (the pre-durability ablation,
// CompactRevisions < 0) every resumed watcher is forced through an
// EventResync and the metric is >= 1.

// WatchChurnConfig parameterizes one watch-churn run.
type WatchChurnConfig struct {
	// Jobs is the number of watched job prefixes (and watchers).
	// Default 1000.
	Jobs int
	// Cycles is the number of chaos cycles; each cycle crashes the
	// watcher fleet, forces a snapshot-restore rejoin under write
	// churn, lands leadership on the restored replica, and resumes
	// every watcher from its pre-cycle revision. Default 3.
	Cycles int
	// Replicas is the etcd cluster size. Default 3.
	Replicas int
	// SnapshotThreshold forces log compaction (and therefore snapshot
	// rejoins) quickly. Default 64.
	SnapshotThreshold int
	// PersistHistory selects the durable event log (true, the default
	// configuration) or the CompactRevisions<0 ablation (false).
	PersistHistory bool
	// Seed drives election randomness.
	Seed int64
	// Timeout bounds the whole run. Default 60s.
	Timeout time.Duration
}

func (c *WatchChurnConfig) defaults() {
	if c.Jobs <= 0 {
		c.Jobs = 1000
	}
	if c.Cycles <= 0 {
		c.Cycles = 3
	}
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.SnapshotThreshold <= 0 {
		c.SnapshotThreshold = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
}

// WatchChurnResult reports one run.
type WatchChurnResult struct {
	Jobs             int  `json:"jobs"`
	Cycles           int  `json:"cycles"`
	PersistedHistory bool `json:"persisted_history"`

	Writes    uint64 `json:"writes"`
	Delivered uint64 `json:"delivered"`
	// Resumes counts watcher restarts that resumed by revision.
	Resumes          uint64 `json:"resumes"`
	SnapshotRestores uint64 `json:"snapshot_restores"`
	Failovers        int64  `json:"failovers"`
	// Resyncs counts EventResync markers across all watchers — each one
	// a watcher that lost replayability and fell back to synthesized
	// current state.
	Resyncs           uint64  `json:"resyncs"`
	ResyncsPerRestore float64 `json:"resyncs_per_restore"`
	WallSeconds       float64 `json:"wall_seconds"`
}

// churnWatcher is one job's prefix watch plus its draining goroutine.
type churnWatcher struct {
	prefix    string
	ws        *etcd.WatchStream
	done      chan struct{}
	harvested bool
}

// WatchChurn runs the experiment once.
func WatchChurn(cfg WatchChurnConfig) (WatchChurnResult, error) {
	cfg.defaults()
	// Retain comfortably more than one cycle's churn so the persisted
	// arm can always replay; the ablation arm keeps the same in-memory
	// retention and differs only in losing it at snapshot restore.
	window := 4 * cfg.Jobs
	if window < 4096 {
		window = 4096
	}
	compact := window
	if !cfg.PersistHistory {
		compact = -1
	}
	c, err := etcd.NewCluster(etcd.Options{
		Replicas:          cfg.Replicas,
		Seed:              cfg.Seed,
		SnapshotThreshold: cfg.SnapshotThreshold,
		WatchHistory:      window,
		CompactRevisions:  compact,
	})
	if err != nil {
		return WatchChurnResult{}, err
	}
	defer c.Stop()

	res := WatchChurnResult{Jobs: cfg.Jobs, Cycles: cfg.Cycles, PersistedHistory: cfg.PersistHistory}
	start := time.Now()
	deadline := start.Add(cfg.Timeout)
	var delivered atomic.Uint64
	var wg sync.WaitGroup

	watch := func(prefix string, fromRev uint64) (*churnWatcher, error) {
		ws, err := c.Watch(prefix, true, fromRev)
		if err != nil {
			return nil, err
		}
		w := &churnWatcher{prefix: prefix, ws: ws, done: make(chan struct{})}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(w.done)
			for range ws.Events() {
				delivered.Add(1)
			}
		}()
		return w, nil
	}

	watchers := make([]*churnWatcher, cfg.Jobs)
	for i := range watchers {
		w, err := watch(fmt.Sprintf("jobs/job-%05d/", i), 0)
		if err != nil {
			return res, err
		}
		watchers[i] = w
	}
	// crash stops a watcher and returns its resume cursor, harvesting
	// its resync count once delivery has fully drained. Idempotent: the
	// final cleanup sweep must not re-harvest a watcher already crashed
	// by an aborted cycle.
	crash := func(w *churnWatcher) uint64 {
		w.ws.Cancel()
		<-w.done
		if !w.harvested {
			w.harvested = true
			res.Resyncs += w.ws.Resyncs()
		}
		return w.ws.LastRevision()
	}

	in := chaos.NewEtcdInjector(c)
	round := 0
	writeRound := func() {
		for i := 0; i < cfg.Jobs; i++ {
			if _, err := c.Put(fmt.Sprintf("jobs/job-%05d/status", i), []byte(fmt.Sprintf("S%d", round)), 0); err == nil {
				res.Writes++
			}
		}
		round++
	}
	stale := func() {
		if _, err := c.Put("churn/stale", []byte("x"), 0); err == nil {
			res.Writes++
		}
	}
	settle := func() {
		// Delivery quiesce: wait until the fleet's counter stops moving.
		last := delivered.Load()
		for time.Now().Before(deadline) {
			time.Sleep(20 * time.Millisecond)
			cur := delivered.Load()
			if cur == last {
				return
			}
			last = cur
		}
	}

	writeRound()
	settle()
	for cycle := 0; cycle < cfg.Cycles && time.Now().Before(deadline); cycle++ {
		// The watcher fleet "crashes" first (an API replica going down),
		// remembering each job's resume revision from before the churn.
		cursors := make([]uint64, cfg.Jobs)
		for i, w := range watchers {
			cursors[i] = crash(w)
		}
		// Outage under churn: the victim replica misses a full round of
		// writes, compaction passes it by, and it rejoins via snapshot.
		victim, _ := in.OutageCycle(writeRound)
		if victim < 0 {
			break
		}
		// Land leadership on the freshly-restored replica, then resume
		// the fleet: every watcher re-attaches to it from a revision
		// that predates the churn it missed.
		in.ForceLeader(victim, stale)
		for i := range watchers {
			w, err := watch(watchers[i].prefix, cursors[i]+1)
			if err != nil {
				return res, err
			}
			watchers[i] = w
			res.Resumes++
		}
		writeRound()
		settle()
	}
	for _, w := range watchers {
		crash(w)
	}
	wg.Wait()

	res.Delivered = delivered.Load()
	_, res.Failovers, res.SnapshotRestores = in.Stats()
	if res.SnapshotRestores > 0 {
		res.ResyncsPerRestore = float64(res.Resyncs) / float64(res.SnapshotRestores)
	} else {
		res.ResyncsPerRestore = float64(res.Resyncs)
	}
	res.WallSeconds = time.Since(start).Seconds()
	return res, nil
}

// WatchChurnCompare runs the before/after pair: the persisted event log
// versus the ring-buffer-only ablation, identical otherwise.
func WatchChurnCompare(cfg WatchChurnConfig) (with, without WatchChurnResult, err error) {
	cfg.PersistHistory = true
	with, err = WatchChurn(cfg)
	if err != nil {
		return with, without, err
	}
	cfg.PersistHistory = false
	without, err = WatchChurn(cfg)
	return with, without, err
}

// RenderWatchChurn formats already-computed results.
func RenderWatchChurn(results []WatchChurnResult) *Table {
	t := &Table{
		Title: "Watch churn: resyncs per snapshot restore, persisted log vs ablation",
		Header: []string{"Persisted log", "Jobs", "Cycles", "Writes", "Delivered",
			"Resumes", "Restores", "Failovers", "Resyncs", "Resyncs/restore"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%v", r.PersistedHistory), fmt.Sprintf("%d", r.Jobs),
			fmt.Sprintf("%d", r.Cycles), fmt.Sprintf("%d", r.Writes),
			fmt.Sprintf("%d", r.Delivered), fmt.Sprintf("%d", r.Resumes),
			fmt.Sprintf("%d", r.SnapshotRestores), fmt.Sprintf("%d", r.Failovers),
			fmt.Sprintf("%d", r.Resyncs), fmt.Sprintf("%.2f", r.ResyncsPerRestore),
		})
	}
	if len(results) == 2 {
		t.Caption = fmt.Sprintf(
			"Persisting the compacted event log in snapshots: %.2f resyncs/restore vs %.2f without.",
			results[0].ResyncsPerRestore, results[1].ResyncsPerRestore)
	}
	return t
}
