package rpc

import (
	"bufio"
	"bytes"
	"context"
	"encoding/gob"
	"io"
	"runtime"
	"testing"
)

func frameCases() []frame {
	return []frame{
		{Kind: frameCall, ID: 1, Method: "Scheduler.Assign", Body: []byte("payload")},
		{Kind: frameData, ID: 1<<64 - 1, Body: bytes.Repeat([]byte{0xAB}, 300)},
		{Kind: frameEnd, ID: 7},
		{Kind: frameError, ID: 9, Method: "LCM.Halt", Err: "job not found"},
		{Kind: frameCancel, ID: 12},
		{Kind: frameData, ID: 3}, // empty body
	}
}

func frameEqual(a, b *frame) bool {
	return a.Kind == b.Kind && a.ID == b.ID && a.Method == b.Method &&
		a.Err == b.Err && bytes.Equal(a.Body, b.Body)
}

// TestFrameCodecRoundtrip pins readFrame(appendFrame(f)) == f for every
// frame shape, including several frames back to back on one stream.
func TestFrameCodecRoundtrip(t *testing.T) {
	var wire []byte
	for i := range frameCases() {
		f := frameCases()[i]
		wire = appendFrame(wire, &f)
	}
	br := bufio.NewReader(bytes.NewReader(wire))
	var got frame
	for _, want := range frameCases() {
		if err := readFrame(br, &got); err != nil {
			t.Fatalf("readFrame: %v", err)
		}
		if !frameEqual(&want, &got) {
			t.Fatalf("roundtrip: got %+v, want %+v", got, want)
		}
	}
	if err := readFrame(br, &got); err != io.EOF {
		t.Fatalf("read past end: err = %v, want io.EOF", err)
	}
}

// TestFrameCodecTruncatedErrors pins that every proper prefix of an
// encoded frame errors instead of panicking or decoding silently.
func TestFrameCodecTruncatedErrors(t *testing.T) {
	for _, want := range frameCases() {
		data := appendFrame(nil, &want)
		var got frame
		for cut := 0; cut < len(data); cut++ {
			br := bufio.NewReader(bytes.NewReader(data[:cut]))
			if err := readFrame(br, &got); err == nil {
				t.Fatalf("decode of %d/%d-byte prefix of %+v succeeded", cut, len(data), want)
			}
		}
	}
}

// TestFrameCodecRejectsCorruptLengths pins the allocation bound: a
// frame whose length prefix exceeds the field cap errors before any
// oversized allocation.
func TestFrameCodecRejectsCorruptLengths(t *testing.T) {
	good := appendFrame(nil, &frame{Kind: frameCall, ID: 1, Method: "M"})
	// Corrupt the magic byte.
	bad := append([]byte(nil), good...)
	bad[0] = 0x00
	var f frame
	if err := readFrame(bufio.NewReader(bytes.NewReader(bad)), &f); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Corrupt the version byte.
	bad = append(bad[:0], good...)
	bad[1] = 0xEE
	if err := readFrame(bufio.NewReader(bytes.NewReader(bad)), &f); err == nil {
		t.Fatal("bad version accepted")
	}
	// Absurd body length: magic, version, kind, id=1, no method/err,
	// then a body length far past maxBodyLen with no actual body.
	bad = []byte{frameMagic, frameVersion, byte(frameData), 1, 0, 0,
		0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}
	if err := readFrame(bufio.NewReader(bytes.NewReader(bad)), &f); err == nil {
		t.Fatal("absurd body length accepted")
	}
}

// TestFrameCodecAllocBudget is the per-frame allocation guard next to
// BenchmarkRPCRoundtrip: encoding into a reused buffer allocates
// nothing, and decoding a data frame allocates only the Body copy.
func TestFrameCodecAllocBudget(t *testing.T) {
	f := frame{Kind: frameData, ID: 42, Body: bytes.Repeat([]byte{0x01}, 256)}
	buf := appendFrame(nil, &f)
	encAllocs := testing.AllocsPerRun(100, func() {
		buf = appendFrame(buf[:0], &f)
	})
	if encAllocs > 0 {
		t.Fatalf("appendFrame allocations = %.1f, want 0", encAllocs)
	}
	wire := append([]byte(nil), buf...)
	rd := bytes.NewReader(wire)
	br := bufio.NewReader(rd)
	var got frame
	decAllocs := testing.AllocsPerRun(100, func() {
		rd.Reset(wire)
		br.Reset(rd)
		if err := readFrame(br, &got); err != nil {
			t.Fatal(err)
		}
	})
	// The Body copy is the single permitted steady-state allocation.
	if decAllocs > 1 {
		t.Fatalf("readFrame allocations = %.1f, want <= 1 (the Body copy)", decAllocs)
	}
}

// TestRPCRoundtripAllocBudget guards the whole-process per-call
// allocation count of a unary echo call (all goroutines: client body
// encode + frame write, server read/dispatch/reply, client
// read/decode). Most of the budget is the per-message gob BODY codec
// (a fresh encoder/decoder per message rebuilds its engine) plus
// goroutine and channel machinery — measured ~360 on an idle machine.
// The frame layer itself contributes almost nothing (see
// TestFrameCodecAllocBudget for the strict per-frame guard); with the
// old per-frame gob framing this path measured noticeably higher.
func TestRPCRoundtripAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting is load-sensitive")
	}
	s := NewServer()
	s.Register("Echo", echoReq{}, func(_ context.Context, arg any) (any, error) {
		r := arg.(echoReq)
		return echoResp{Msg: r.Msg, N: r.N + 1}, nil
	})
	addr, err := s.Listen()
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer s.Close()
	conn, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	ctx := context.Background()
	req := echoReq{Msg: "alloc-budget", N: 1}
	var resp echoResp
	if err := conn.Call(ctx, "Echo", req, &resp); err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	allocs := testing.AllocsPerRun(50, func() {
		if err := conn.Call(ctx, "Echo", req, &resp); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 450 {
		t.Fatalf("unary call allocations = %.0f, budget 450", allocs)
	}
}

// FuzzFrameCodecRoundtrip fuzzes three properties at once:
//
//  1. readFrame(appendFrame(f)) == f for a frame built from the fuzz
//     inputs;
//  2. decoding any proper prefix of the encoding errors — truncated
//     frames never decode silently;
//  3. decoding arbitrary bytes (the raw body payload) never panics.
func FuzzFrameCodecRoundtrip(f *testing.F) {
	f.Add(uint8(frameCall), uint64(1), "Echo", []byte("body"), "", uint(0))
	f.Add(uint8(frameError), uint64(9), "LCM.Halt", []byte(nil), "job not found", uint(3))
	f.Add(uint8(frameData), uint64(1<<40), "", bytes.Repeat([]byte{0xFC}, 64), "", uint(10))
	f.Fuzz(func(t *testing.T, kind uint8, id uint64, method string, body []byte, errStr string, cut uint) {
		if len(method) > maxMethodLen || len(errStr) > maxErrLen {
			t.Skip("over field caps by construction")
		}
		want := frame{Kind: frameKind(kind), ID: id, Method: method, Body: body, Err: errStr}
		data := appendFrame(nil, &want)
		var got frame
		if err := readFrame(bufio.NewReader(bytes.NewReader(data)), &got); err != nil {
			t.Fatalf("readFrame(appendFrame(f)): %v", err)
		}
		if !frameEqual(&want, &got) {
			t.Fatalf("roundtrip mismatch: got %+v, want %+v", got, want)
		}
		// Truncation at a fuzz-chosen point must error, never panic.
		if int(cut) < len(data) {
			if err := readFrame(bufio.NewReader(bytes.NewReader(data[:cut])), &got); err == nil {
				t.Fatalf("decode of truncated frame (%d/%d bytes) succeeded", cut, len(data))
			}
		}
		// Arbitrary bytes must never panic (error or io.EOF is fine).
		readFrame(bufio.NewReader(bytes.NewReader(body)), &got) //nolint:errcheck
	})
}

// BenchmarkFrameRoundtrip compares per-frame transport cost — encode
// into a (reused) buffer plus decode back out — for the hand-rolled
// binary layout vs the gob framing it replaced.
func BenchmarkFrameRoundtrip(b *testing.B) {
	f := frame{Kind: frameCall, ID: 42, Method: "Scheduler.Assign",
		Body: bytes.Repeat([]byte{0x01}, 256)}
	b.Run("Binary", func(b *testing.B) {
		var buf []byte
		var got frame
		rd := bytes.NewReader(nil)
		br := bufio.NewReader(rd)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = appendFrame(buf[:0], &f)
			rd.Reset(buf)
			br.Reset(rd)
			if err := readFrame(br, &got); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Gob", func(b *testing.B) {
		// The pre-codec shape: long-lived encoder/decoder per direction,
		// reflective per-frame encode/decode (type descriptors ship only
		// once, matching the old connection-lifetime gob streams).
		var wire bytes.Buffer
		enc := gob.NewEncoder(&wire)
		dec := gob.NewDecoder(&wire)
		var got frame
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := enc.Encode(&f); err != nil {
				b.Fatal(err)
			}
			if err := dec.Decode(&got); err != nil {
				b.Fatal(err)
			}
		}
	})
}
