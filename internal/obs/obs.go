// Package obs is the platform's unified observability layer: one
// registry of typed instruments (counters, gauges, fixed-bucket latency
// histograms) shared by every subsystem, plus per-job trace spans (see
// trace.go) and a Prometheus text exposition of everything (prom.go).
//
// # Naming convention
//
// Every instrument name is dotted "subsystem.name": the segment before
// the first dot is the owning subsystem (etcd, sched, kube, tenant,
// mongo, commitlog, rpc, api, lcm, guardian, watch, metrics, ...), the
// remainder is the measurement, with underscores separating words
// WITHIN the measurement ("etcd.propose_apply", "metrics.log_open_errors",
// "guardian.deploy_retries"). Dots never appear inside the measurement
// part. The Prometheus exposition mangles names mechanically
// ("etcd.propose_apply" -> "ffdl_etcd_propose_apply"), so the convention
// keeps scraped names collision-free.
//
// # Cost model
//
// Instrument handles are resolved once, at subsystem construction; hot
// paths touch only the returned pointers. Every instrument method is
// nil-receiver safe and a nil receiver does nothing — a subsystem built
// without a registry (observability disabled) carries nil handles and
// its hot paths run instrumentation-free, allocation-free (pinned by
// TestObsAllocBudget). Enabled instruments are single atomic updates.
//
// Histograms observe plain float64 values (seconds for latencies,
// raw counts for sizes). Callers measure durations with their own
// sim.Clock, so under sim.FakeClock a histogram of queue delays or
// scheduling passes records virtual time exactly.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer instrument.
type Counter struct {
	name string
	v    atomic.Int64
}

// Inc adds one. No-op on a nil counter.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reads the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a set-to-current-value integer instrument.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Value reads the gauge (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// LatencyBuckets is the default fixed bucket layout for latency
// histograms, in seconds: 10µs to 1h, roughly 1-2.5-5 per decade, with
// coarse tail buckets for queue delays measured in virtual minutes.
var LatencyBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10, 30, 60, 120, 300, 900, 3600,
}

// CountBuckets is the default layout for size/count histograms
// (batch sizes, nodes examined per pass): powers of two up to 4096.
var CountBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

// Histogram is a fixed-bucket histogram. Observations are float64
// values in the unit the bucket bounds are expressed in; the last
// implicit bucket is +Inf. Updates are lock-free atomics.
type Histogram struct {
	name   string
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds. No-op on nil.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h != nil {
		h.Observe(d.Seconds())
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Collector is a snapshot-time callback mirroring externally owned
// state (a subsystem's Stats() struct) into gauges. Collectors run only
// when Snapshot is taken, so they add zero hot-path cost.
type Collector func(set func(name string, v int64))

// Registry is the get-or-create home of all instruments. The zero of
// *Registry (nil) is a valid "observability off" registry: every lookup
// returns a nil instrument.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	collectors []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named latency histogram (LatencyBuckets),
// creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramWith(name, LatencyBuckets)
}

// HistogramWith returns the named histogram with the given bucket upper
// bounds (which must be sorted ascending), creating it on first use.
// An existing histogram keeps its original bounds.
func (r *Registry) HistogramWith(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{name: name, bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
		r.hists[name] = h
	}
	return h
}

// RegisterCollector adds a snapshot-time gauge collector.
func (r *Registry) RegisterCollector(c Collector) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, c)
}

// CounterValue reads a counter without creating it (0 when absent).
func (r *Registry) CounterValue(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	c := r.counters[name]
	r.mu.Unlock()
	return c.Value()
}

// CounterValues returns all counters as one consistent-enough map: each
// value is read atomically; the set of names is a single locked
// snapshot. This is the one-registry-snapshot read path experiments use
// instead of per-call CounterValue reads.
func (r *Registry) CounterValues() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		names = append(names, c)
	}
	r.mu.Unlock()
	out := make(map[string]int64, len(names))
	for _, c := range names {
		out[c.name] = c.Value()
	}
	return out
}

// CounterPoint / GaugePoint / HistogramPoint are the exported, codec-
// friendly snapshot shapes (they cross the RPC wire in API.Metrics).
type CounterPoint struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugePoint is one gauge sample.
type GaugePoint struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramPoint is one histogram's full state: per-bucket cumulative-
// free counts (Counts[i] observations fell in (Bounds[i-1], Bounds[i]];
// the final entry is the +Inf overflow), total count and value sum.
type HistogramPoint struct {
	Name   string    `json:"name"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation within the winning bucket, the standard fixed-bucket
// estimator. Returns 0 on an empty histogram; observations in the +Inf
// bucket clamp to the largest finite bound.
func (h HistogramPoint) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	rank := q * float64(h.Count)
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if float64(cum) >= rank && c > 0 {
			if i >= len(h.Bounds) {
				return h.Bounds[len(h.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.Bounds[i-1]
			}
			hi := h.Bounds[i]
			// Position of the rank within this bucket's count.
			inBucket := rank - float64(cum-c)
			frac := inBucket / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Merge combines two snapshots of histograms with identical bucket
// layouts (e.g. the same instrument scraped from several replicas).
// ok is false when the layouts differ.
func (h HistogramPoint) Merge(o HistogramPoint) (HistogramPoint, bool) {
	if len(h.Bounds) != len(o.Bounds) {
		return h, false
	}
	for i := range h.Bounds {
		if h.Bounds[i] != o.Bounds[i] {
			return h, false
		}
	}
	out := HistogramPoint{
		Name:   h.Name,
		Bounds: append([]float64(nil), h.Bounds...),
		Counts: make([]uint64, len(h.Counts)),
		Count:  h.Count + o.Count,
		Sum:    h.Sum + o.Sum,
	}
	for i := range h.Counts {
		out.Counts[i] = h.Counts[i] + o.Counts[i]
	}
	return out, true
}

// Snapshot is a point-in-time view of every instrument, sorted by name
// — the payload behind GET /v1/metrics and ffdl-cli metrics.
type Snapshot struct {
	Counters   []CounterPoint   `json:"counters"`
	Gauges     []GaugePoint     `json:"gauges"`
	Histograms []HistogramPoint `json:"histograms"`
}

// Counter finds a counter value by name (0 when absent).
func (s Snapshot) Counter(name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Gauge finds a gauge value by name (0 when absent).
func (s Snapshot) Gauge(name string) int64 {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// Histogram finds a histogram point by name.
func (s Snapshot) Histogram(name string) (HistogramPoint, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramPoint{}, false
}

// Snapshot captures every instrument plus all collector-mirrored
// gauges. A nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	collectors := append([]Collector(nil), r.collectors...)
	r.mu.Unlock()

	var snap Snapshot
	for _, c := range counters {
		snap.Counters = append(snap.Counters, CounterPoint{Name: c.name, Value: c.Value()})
	}
	for _, g := range gauges {
		snap.Gauges = append(snap.Gauges, GaugePoint{Name: g.name, Value: g.Value()})
	}
	for _, h := range hists {
		p := HistogramPoint{
			Name:   h.name,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]uint64, len(h.counts)),
			Count:  h.count.Load(),
			Sum:    math.Float64frombits(h.sum.Load()),
		}
		for i := range h.counts {
			p.Counts[i] = h.counts[i].Load()
		}
		snap.Histograms = append(snap.Histograms, p)
	}
	// Collector gauges: transient, snapshot-time only.
	for _, collect := range collectors {
		collect(func(name string, v int64) {
			snap.Gauges = append(snap.Gauges, GaugePoint{Name: name, Value: v})
		})
	}
	sort.Slice(snap.Counters, func(i, j int) bool { return snap.Counters[i].Name < snap.Counters[j].Name })
	sort.Slice(snap.Gauges, func(i, j int) bool { return snap.Gauges[i].Name < snap.Gauges[j].Name })
	sort.Slice(snap.Histograms, func(i, j int) bool { return snap.Histograms[i].Name < snap.Histograms[j].Name })
	return snap
}
