package kube

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/ffdl/ffdl/internal/sim"
)

// controllerLoop reconciles StatefulSets, Deployments and Jobs
// level-triggered: watch events mark exactly the owner objects they
// touch dirty and only those are reconciled (an owner-change event
// dirties the owner itself; a pod termination/deletion dirties the
// pod's owner), so reconcile work scales with churn, not with the
// number of objects in the cluster. The resync tick — and any wake
// whose watcher dropped events, which may have dirtied owners never
// seen — falls back to a full reconcileAll pass (which also
// garbage-collects orphans), the same conditional-rebuild treatment
// the scheduler got in PR 3. This is what restarts crashed learners
// (stateful sets), helper pods (deployments) and Guardians (jobs)
// automatically — the recovery machinery Table 3 measures.
func (c *Cluster) controllerLoop(watch *StoreWatch) {
	events := watch.Events()
	ticker := c.cfg.Clock.NewTicker(c.cfg.ResyncInterval)
	defer ticker.Stop()
	for {
		dirty := make(map[ownerKey]struct{})
		full := false
		select {
		case <-c.stopCh:
			return
		case ev := <-events:
			controllerMark(ev, dirty)
			sim.Coalesce(events, func(ev WatchEvent) { // coalesce event bursts
				controllerMark(ev, dirty)
			})
		case <-ticker.C:
			full = true // resync safety net (also garbage-collects)
		}
		if watch.TakeDropped() > 0 {
			full = true
		}
		var recStart time.Time
		if c.obsReconcile != nil && (full || len(dirty) > 0) {
			recStart = c.cfg.Clock.Now()
		}
		if full {
			c.reconcileAll()
		} else if len(dirty) > 0 {
			c.reconcileDirty(dirty)
		}
		if !recStart.IsZero() {
			c.obsReconcile.ObserveDuration(c.cfg.Clock.Now().Sub(recStart))
		}
	}
}

// ownerKey identifies one controller-owned object to reconcile.
type ownerKey struct {
	kind string
	name string
}

// controllerMark folds one watch event into the dirty-owner set:
// owner-object changes dirty that owner, pod terminations/deletions
// dirty the pod's owner. Node heartbeats and pod phase progress mark
// nothing — they would otherwise make the loop reconcile at the
// heartbeat rate.
func controllerMark(ev WatchEvent, dirty map[ownerKey]struct{}) {
	switch ev.Kind {
	case KindStatefulSet, KindDeployment, KindJob:
		dirty[ownerKey{ev.Kind, ev.Name}] = struct{}{}
	case KindPod:
		obj := ev.Object
		if obj == nil {
			obj = ev.Prev // deletes carry only the pre-image
		}
		p, ok := obj.(*Pod)
		if !ok {
			return
		}
		if ev.Type != WatchDeleted && !p.Terminated() {
			return
		}
		switch p.Owner.Kind {
		case KindStatefulSet, KindDeployment, KindJob:
			dirty[ownerKey{p.Owner.Kind, p.Owner.Name}] = struct{}{}
		}
	}
}

// reconcileDirty reconciles exactly the dirtied owners. A dirty owner
// that no longer exists gets the event-path form of orphan collection:
// cascade-delete its pods (pod names are owner-prefixed, so the
// listing is per-owner, not cluster-wide).
func (c *Cluster) reconcileDirty(dirty map[ownerKey]struct{}) {
	for k := range dirty {
		obj, ok := c.store.Get(k.kind, k.name)
		if !ok {
			for _, p := range c.store.ListPods(k.name + "-") {
				if p.Owner.Kind == k.kind && p.Owner.Name == k.name {
					c.DeletePod(p.Name, "OwnerDeleted")
				}
			}
			continue
		}
		switch o := obj.(type) {
		case *StatefulSet:
			c.reconcileStatefulSet(o)
		case *Deployment:
			c.reconcileDeployment(o)
		case *Job:
			c.reconcileJob(o)
		}
	}
}

func (c *Cluster) reconcileAll() {
	for _, obj := range c.store.List(KindStatefulSet, "") {
		c.reconcileStatefulSet(obj.(*StatefulSet))
	}
	for _, obj := range c.store.List(KindDeployment, "") {
		c.reconcileDeployment(obj.(*Deployment))
	}
	for _, obj := range c.store.List(KindJob, "") {
		c.reconcileJob(obj.(*Job))
	}
	c.garbageCollectOrphans()
}

// reconcileStatefulSet ensures pods <name>-0 … <name>-(replicas-1) exist
// and replaces terminated ones ("Crashed learners will be restarted
// automatically by K8S, because learners are deployed as stateful sets",
// §3.8).
func (c *Cluster) reconcileStatefulSet(s *StatefulSet) {
	if s.Paused {
		return
	}
	for i := 0; i < s.Replicas; i++ {
		name := fmtPodName(s.Name, i)
		existing, ok := c.store.GetPod(name)
		if ok && !existing.Terminated() {
			continue
		}
		restarts := 0
		if ok {
			restarts = existing.Status.Restarts + 1
			c.DeletePod(name, "Restart")
			c.recordEvent(EventNormal, "Recreating", KindPod, name, s.Template.Type,
				fmt.Sprintf("stateful set %s replacing terminated pod (restart #%d)", s.Name, restarts))
		}
		pod := &Pod{
			Name:   name,
			Labels: cloneMap(s.Labels),
			Owner:  OwnerRef{Kind: KindStatefulSet, Name: s.Name},
			Spec:   s.Template,
			Status: PodStatus{Phase: PodPending, Restarts: restarts},
		}
		pod.Spec.RuntimeArgs = cloneMap(s.Template.RuntimeArgs)
		if pod.Spec.RuntimeArgs == nil {
			pod.Spec.RuntimeArgs = map[string]string{}
		}
		pod.Spec.RuntimeArgs["ordinal"] = strconv.Itoa(i)
		c.store.PutPod(pod)
	}
	// Scale down: remove excess ordinals.
	for _, p := range c.store.ListPods(s.Name + "-") {
		if p.Owner.Kind != KindStatefulSet || p.Owner.Name != s.Name {
			continue
		}
		if ord, ok := ordinalOf(p.Name, s.Name); ok && ord >= s.Replicas {
			c.DeletePod(p.Name, "ScaleDown")
		}
	}
}

// reconcileDeployment keeps Replicas non-terminated pods alive.
func (c *Cluster) reconcileDeployment(d *Deployment) {
	if d.Paused {
		return
	}
	// Deployments use ordinal names too; recreation gives a fresh pod.
	for i := 0; i < d.Replicas; i++ {
		name := fmtPodName(d.Name, i)
		existing, ok := c.store.GetPod(name)
		if ok && !existing.Terminated() {
			continue
		}
		restarts := 0
		if ok {
			restarts = existing.Status.Restarts + 1
			c.DeletePod(name, "Restart")
		}
		pod := &Pod{
			Name:   name,
			Labels: cloneMap(d.Labels),
			Owner:  OwnerRef{Kind: KindDeployment, Name: d.Name},
			Spec:   d.Template,
			Status: PodStatus{Phase: PodPending, Restarts: restarts},
		}
		c.store.PutPod(pod)
	}
	for _, p := range c.store.ListPods(d.Name + "-") {
		if p.Owner.Kind != KindDeployment || p.Owner.Name != d.Name {
			continue
		}
		if ord, ok := ordinalOf(p.Name, d.Name); ok && ord >= d.Replicas {
			c.DeletePod(p.Name, "ScaleDown")
		}
	}
}

// reconcileJob drives a run-to-completion pod with restart backoff.
func (c *Cluster) reconcileJob(j *Job) {
	if j.Succeeded || j.Failed {
		return
	}
	podName := fmt.Sprintf("%s-attempt-%d", j.Name, j.Attempts)
	p, ok := c.store.GetPod(podName)
	if !ok {
		pod := &Pod{
			Name:   podName,
			Labels: cloneMap(j.Labels),
			Owner:  OwnerRef{Kind: KindJob, Name: j.Name},
			Spec:   j.Template,
			Status: PodStatus{Phase: PodPending},
		}
		c.store.PutPod(pod)
		return
	}
	switch p.Status.Phase {
	case PodSucceeded:
		c.store.UpdateJob(j.Name, func(job *Job) { job.Succeeded = true })
	case PodFailed:
		if j.Attempts >= j.BackoffLimit {
			c.store.UpdateJob(j.Name, func(job *Job) { job.Failed = true })
			c.recordEvent(EventWarning, "BackoffLimitExceeded", KindJob, j.Name, j.Template.Type,
				fmt.Sprintf("job failed after %d attempts", j.Attempts+1))
			return
		}
		c.DeletePod(podName, "Restart")
		c.store.UpdateJob(j.Name, func(job *Job) { job.Attempts++ })
	}
}

// garbageCollectOrphans deletes pods whose owner object is gone
// (cascade deletion).
func (c *Cluster) garbageCollectOrphans() {
	for _, p := range c.store.ListPods("") {
		var exists bool
		switch p.Owner.Kind {
		case KindStatefulSet, KindDeployment, KindJob:
			_, exists = c.store.Get(p.Owner.Kind, p.Owner.Name)
		default:
			exists = true // unowned pods are managed by their creator
		}
		if !exists {
			c.DeletePod(p.Name, "OwnerDeleted")
		}
	}
}

// nodeControllerLoop watches node heartbeats: nodes silent past the
// grace period become NotReady and their pods are deleted by the
// eviction logic — the paper's NodeControllerEviction behaviour: "when
// worker nodes became NotReady, [Kubernetes] would delete all pods
// running on the worker" (§5.6).
func (c *Cluster) nodeControllerLoop() {
	ticker := c.cfg.Clock.NewTicker(c.cfg.NodeGracePeriod / 2)
	defer ticker.Stop()
	for {
		select {
		case <-c.stopCh:
			return
		case <-ticker.C:
			c.checkNodes()
		}
	}
}

func (c *Cluster) checkNodes() {
	now := c.cfg.Clock.Now()
	for _, n := range c.store.ListNodes() {
		stale := now.Sub(n.LastHeartbeat) > c.cfg.NodeGracePeriod
		if n.Ready && stale {
			c.store.UpdateNode(n.Name, func(node *Node) { node.Ready = false })
			c.recordEvent(EventWarning, "NodeNotReady", KindNode, n.Name, "",
				"node stopped heartbeating")
		}
		if !n.Ready || stale {
			c.evictNodePods(n.Name)
		}
	}
}

func (c *Cluster) evictNodePods(nodeName string) {
	for _, p := range c.store.ListPods("") {
		if p.Status.Node != nodeName || p.Terminated() {
			continue
		}
		c.recordEvent(EventWarning, "NodeControllerEviction", KindPod, p.Name, p.Spec.Type,
			fmt.Sprintf("deleting pod: node %s is NotReady", nodeName))
		c.DeletePod(p.Name, "NodeFailure")
	}
}

// ordinalOf extracts i from "<owner>-<i>".
func ordinalOf(podName, owner string) (int, bool) {
	suffix, ok := strings.CutPrefix(podName, owner+"-")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(suffix)
	if err != nil {
		return 0, false
	}
	return n, true
}
