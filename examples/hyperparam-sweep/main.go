// Hyperparameter sweep with HALT/RESUME: launch one training job per
// learning rate, watch early progress, HALT the stragglers to free
// their GPUs (checkpoints retained), let the leaders finish, then
// RESUME one halted candidate — the checkpoint-driven tuning workflow
// §3.8 says HALT/RESUME exists for.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/ffdl/ffdl"
)

func main() {
	platform, err := ffdl.New(ffdl.Config{
		TimeCompression: 2e-4,
	})
	if err != nil {
		log.Fatalf("boot: %v", err)
	}
	defer platform.Stop()
	platform.AddNodes("p100", ffdl.P100, 2, 4)
	if err := platform.SeedDataset("datasets", "cifar/", 4<<20); err != nil {
		log.Fatalf("seed: %v", err)
	}
	client := platform.Client()
	ctx := context.Background()

	lrs := []string{"0.1", "0.01", "0.001", "0.0001"}
	jobs := make(map[string]string, len(lrs)) // lr -> jobID
	for _, lr := range lrs {
		id, err := client.Submit(ctx, ffdl.Manifest{
			Name: "sweep-lr-" + lr, User: "tuner",
			Framework: ffdl.TensorFlow, Model: ffdl.InceptionV3,
			Command:  "python train.py --lr=" + lr,
			Learners: 1, GPUsPerLearner: 2, GPUType: ffdl.P100,
			Iterations: 4000, CheckpointEvery: 200,
			DataBucket: "datasets", DataPrefix: "cifar/",
		})
		if err != nil {
			log.Fatalf("submit lr=%s: %v", lr, err)
		}
		jobs[lr] = id
		fmt.Printf("submitted lr=%s as %s\n", lr, id)
	}

	// Wait until everything trains and has checkpointed.
	for _, id := range jobs {
		wctx, cancel := context.WithTimeout(ctx, 60*time.Second)
		if _, err := client.WaitForStatus(wctx, id, ffdl.StatusProcessing, 5*time.Millisecond); err != nil {
			log.Fatalf("job %s never started: %v", id, err)
		}
		cancel()
		for {
			objs, err := platform.Store.List("ffdl-results", id+"/checkpoints/")
			if err == nil && len(objs) > 0 {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	alloc, capacity := platform.GPUUtilization()
	fmt.Printf("sweep running: %d/%d GPUs busy\n", alloc, capacity)

	// "Early stopping": halt the two worst candidates, freeing GPUs but
	// keeping their checkpoints.
	for _, lr := range []string{"0.1", "0.0001"} {
		if err := client.Halt(ctx, jobs[lr]); err != nil {
			log.Fatalf("halt lr=%s: %v", lr, err)
		}
		wctx, cancel := context.WithTimeout(ctx, 60*time.Second)
		if _, err := client.WaitForStatus(wctx, jobs[lr], ffdl.StatusHalted, 5*time.Millisecond); err != nil {
			log.Fatalf("lr=%s never halted: %v", lr, err)
		}
		cancel()
		fmt.Printf("halted lr=%s (checkpoint retained)\n", lr)
	}
	alloc, _ = platform.GPUUtilization()
	fmt.Printf("after halting stragglers: %d GPUs busy\n", alloc)

	// Let the leaders run to completion.
	for _, lr := range []string{"0.01", "0.001"} {
		wctx, cancel := context.WithTimeout(ctx, 120*time.Second)
		status, err := client.WaitForStatus(wctx, jobs[lr], ffdl.StatusCompleted, 5*time.Millisecond)
		cancel()
		if err != nil || status != ffdl.StatusCompleted {
			log.Fatalf("lr=%s ended %s (%v)", lr, status, err)
		}
		fmt.Printf("lr=%s completed\n", lr)
	}

	// Second thoughts: resume lr=0.1 from its checkpoint.
	if err := client.Resume(ctx, jobs["0.1"]); err != nil {
		log.Fatalf("resume: %v", err)
	}
	wctx, cancel := context.WithTimeout(ctx, 120*time.Second)
	status, err := client.WaitForStatus(wctx, jobs["0.1"], ffdl.StatusCompleted, 5*time.Millisecond)
	cancel()
	if err != nil {
		log.Fatalf("resumed job: %v", err)
	}
	fmt.Printf("resumed lr=0.1 finished with status %s\n", status)
	resumed, _ := client.SearchLogs(ctx, jobs["0.1"], "resuming from checkpoint")
	fmt.Printf("it resumed from its checkpoint (%d log line(s) confirm)\n", len(resumed))

	// Tidy up the remaining halted candidate.
	client.Terminate(ctx, jobs["0.0001"]) //nolint:errcheck
	fmt.Println("sweep done")
}
