package core

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"github.com/ffdl/ffdl/internal/mongo"
	"github.com/ffdl/ffdl/internal/obs"
	"github.com/ffdl/ffdl/internal/resilience"
	"github.com/ffdl/ffdl/internal/rpc"
)

// This file wires internal/resilience into the platform: one Policy per
// cross-subsystem dependency edge, shared by every caller of that edge
// so each dependency has exactly one breaker. The edges:
//
//   mongo        core → metadata store (reads/writes that can see a
//                primary failover; the breaker drives degraded mode)
//   etcd         core → coordination store (guardian/LCM control keys)
//   api_lcm      API replica → LCM (deploy hand-off, control verbs)
//   dispatch_lcm tenant dispatcher → LCM (preempt/resume signals)
//   client       external client → API replicas
//
// All policies run on the platform clock, so retry schedules, breaker
// open windows and deadlines are exact virtual time under FakeClock.

// ErrDegraded reports that the platform is running in read-only degraded
// mode: the metadata store's breaker is open, so submissions are shed
// instead of queued behind a dead dependency. The error is retryable —
// clients should back off and resubmit (the HTTP gateway maps it to
// 503 + Retry-After). Status and watch reads keep working from the
// status bus's replay window while degraded.
var ErrDegraded = errors.New("core: degraded mode: metadata store unavailable, retry later")

// IsDegraded reports whether err is (or wraps) ErrDegraded. Application
// errors cross the RPC boundary as message text (*rpc.RemoteError), so
// the check matches by message too — this is what clients and the HTTP
// gateway use to decide "retry later" vs "hard failure".
func IsDegraded(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrDegraded) {
		return true
	}
	return strings.Contains(err.Error(), ErrDegraded.Error())
}

// resilienceHub holds the platform's per-edge policies.
type resilienceHub struct {
	mongo       *resilience.Policy
	etcd        *resilience.Policy
	apiLCM      *resilience.Policy
	dispatchLCM *resilience.Policy
	client      *resilience.Policy
}

// classifyMongo buckets metadata-store errors: ErrUnavailable is the
// failover window (transient, counts against the breaker); anything
// else — not found, duplicate key — is an answer from a healthy store.
func classifyMongo(err error) resilience.Class {
	switch {
	case err == nil:
		return resilience.Terminal
	case errors.Is(err, mongo.ErrUnavailable):
		return resilience.Transient
	default:
		return resilience.Terminal
	}
}

// newResilienceHub builds the per-edge policies. Every duration scales
// with PollInterval so long-virtual-horizon experiments that stretch the
// platform's control loops stretch its recovery behavior with them.
func newResilienceHub(cfg *Config, instruments *obs.Registry) *resilienceHub {
	pi := cfg.PollInterval
	backoff := resilience.Backoff{Base: pi / 2, Cap: pi * 8, Jitter: 0.2}
	return &resilienceHub{
		mongo: resilience.NewPolicy(resilience.Options{
			Name:     "mongo",
			Clock:    cfg.Clock,
			Attempts: 3,
			Backoff:  backoff,
			Classify: classifyMongo,
			// A short failover blip is absorbed by the retries above; a
			// real outage trips the breaker and the API degrades instead
			// of queueing every request behind a dead store. The open
			// window stays modest (a few safety-net ticks) so recovery
			// after a heal is prompt even on stretched-clock runs.
			Breaker: &resilience.BreakerConfig{Threshold: 3, OpenFor: pi * 8},
			Obs:     instruments,
			Seed:    cfg.Seed + 101,
		}),
		etcd: resilience.NewPolicy(resilience.Options{
			Name:     "etcd",
			Clock:    cfg.Clock,
			Attempts: 3,
			Backoff:  backoff,
			// Control-key puts are level-triggered signals (HALT/RESUME/
			// TERMINATE, learner status): re-putting the same value is
			// harmless, so ambiguous outcomes retry.
			RetryAmbiguous: true,
			Breaker:        &resilience.BreakerConfig{Threshold: 5, OpenFor: pi * 8},
			Obs:            instruments,
			Seed:           cfg.Seed + 102,
		}),
		apiLCM: resilience.NewPolicy(resilience.Options{
			Name:     "api_lcm",
			Clock:    cfg.Clock,
			Attempts: 4,
			Backoff:  backoff,
			Classify: rpc.ClassifyRPC,
			// Deploy/control verbs are idempotent (guardian creation
			// no-ops if it exists; control keys are level-triggered), so
			// a maybe-executed call is safe to re-issue — and the
			// deadline rescues calls wedged on a dropped request frame.
			RetryAmbiguous: true,
			Deadline:       pi * 10,
			Breaker:        &resilience.BreakerConfig{Threshold: 5, OpenFor: pi * 8},
			Obs:            instruments,
			Seed:           cfg.Seed + 103,
		}),
		dispatchLCM: resilience.NewPolicy(resilience.Options{
			Name:           "dispatch_lcm",
			Clock:          cfg.Clock,
			Attempts:       4,
			Backoff:        backoff,
			Classify:       rpc.ClassifyRPC,
			RetryAmbiguous: true, // halt/resume are level-triggered; resync re-issues
			Deadline:       pi * 10,
			Breaker:        &resilience.BreakerConfig{Threshold: 5, OpenFor: pi * 8},
			Obs:            instruments,
			Seed:           cfg.Seed + 104,
		}),
		client: resilience.NewPolicy(resilience.Options{
			Name:     "client_api",
			Clock:    cfg.Clock,
			Attempts: 4,
			Backoff:  backoff,
			Classify: rpc.ClassifyRPC,
			// Submit is not idempotent across the wire (a retried
			// maybe-executed submit could mint two jobs), so ambiguous
			// outcomes surface to the caller. No breaker either: the
			// client is outside the platform's fault domain and its
			// watch/status loops have their own reconnect logic.
			Obs:  instruments,
			Seed: cfg.Seed + 105,
		}),
	}
}

// mongoDo runs one metadata-store operation under the mongo edge policy:
// transient unavailability is retried with backoff, sustained outage
// trips the breaker and sheds callers fast.
func (p *Platform) mongoDo(op func() error) error {
	return p.res.mongo.Do(context.Background(), func(context.Context) error { return op() })
}

// findJob reads one job document through the mongo edge policy.
func (p *Platform) findJob(jobID string) (mongo.Doc, error) {
	var doc mongo.Doc
	err := p.mongoDo(func() error {
		var err error
		doc, err = p.Jobs.FindOne(mongo.Filter{"_id": jobID})
		return err
	})
	return doc, err
}

// Degraded reports whether the platform is in degraded mode (the
// metadata store's breaker is open): submissions are shed, status and
// watch reads serve from the status bus's replay window.
func (p *Platform) Degraded() bool { return !p.res.mongo.Ready() }

// mongoOutageErr reports whether err means "the metadata store did not
// answer" — a transient unavailability or a breaker shed — as opposed to
// an answer like not-found. These are the errors degraded mode absorbs.
func mongoOutageErr(err error) bool {
	return errors.Is(err, mongo.ErrUnavailable) || resilience.IsShed(err)
}

// degradedStatus serves a job's status from the status bus's retained
// replay window while the metadata store is unavailable. The window
// holds the job's recent transitions in order (possibly truncated at the
// front by compaction); ok=false means the bus retains nothing for the
// job and the caller must surface the store error.
func (p *Platform) degradedStatus(jobID string) (StatusReply, bool) {
	evs := p.bus.LatestJob(jobID)
	if len(evs) == 0 {
		return StatusReply{}, false
	}
	reply := StatusReply{JobID: jobID, Degraded: true}
	for _, ev := range evs {
		reply.History = append(reply.History, ev.Entry)
	}
	reply.Status = evs[len(evs)-1].Status
	return reply, true
}

// degradedSubmitErr wraps a metadata-store outage into the retryable
// degraded-mode submission error.
func degradedSubmitErr(err error) error {
	return fmt.Errorf("%w (%v)", ErrDegraded, err)
}
