package core

import (
	"fmt"
	"strconv"

	"github.com/ffdl/ffdl/internal/etcd"
	"github.com/ffdl/ffdl/internal/kube"
	"github.com/ffdl/ffdl/internal/sched"
	"github.com/ffdl/ffdl/internal/sim"
)

// The Guardian is FfDL's per-job delegate (§3.3): a Kubernetes Job the
// LCM creates for every DL job. It executes the multi-step deployment
// atomically (rolling back partial deployments, including those left by
// a crashed previous incarnation), then monitors the job to completion.
// Because it runs as a K8s Job, kube restarts it automatically on any
// crash, and FfDL's dependability story reduces to "the Guardian's
// steps are idempotent and roll back".

// runGuardian is the Guardian pod's process.
func (p *Platform) runGuardian(ctx *kube.PodContext) int {
	jobID := ctx.Pod.Spec.RuntimeArgs["job"]
	if jobID == "" {
		return 1
	}
	doc, err := p.findJob(jobID)
	if err != nil {
		return 1 // metadata gone or store unavailable; let the Job back off
	}
	rec := docToRecord(doc)
	if rec.Status.Terminal() {
		// Restarted after the job finished: just make sure nothing
		// lingers.
		p.teardownJob(jobID)
		return 0
	}

	// Roll back whatever a crashed predecessor half-deployed: "The
	// restarted Guardian will roll back the previous partially deployed
	// DL job and start a fresh deployment process" (§3.3).
	if ctx.Pod.Status.Restarts > 0 || p.hasDeployedObjects(jobID) {
		p.rollbackJob(jobID)
		p.Metrics.Inc("guardian.rollbacks")
	}

	// Deploy with bounded retries.
	var deployErr error
	for attempt := 1; attempt <= p.cfg.DeployAttempts; attempt++ {
		select {
		case <-ctx.Stop:
			return 137
		default:
		}
		deployErr = p.deployJob(jobID, rec.Manifest)
		if deployErr == nil {
			break
		}
		p.rollbackJob(jobID)
		p.Metrics.Inc("guardian.deploy_retries")
	}
	if deployErr != nil {
		if err := p.setJobStatus(jobID, StatusFailed, fmt.Sprintf("deployment failed after %d attempts: %v", p.cfg.DeployAttempts, deployErr)); err != nil && mongoOutageErr(err) {
			// The store did not answer, so the failure cannot be
			// recorded — and a deploy that failed *because* of the
			// outage (the DEPLOYING transition errors too) deserves a
			// retry, not a verdict. Roll back and let kube restart the
			// guardian with backoff.
			p.rollbackJob(jobID)
			return 1
		}
		p.teardownJob(jobID)
		return 0
	}
	return p.monitorJob(ctx, jobID, rec.Manifest)
}

// hasDeployedObjects reports whether any of the job's kube objects
// exist (evidence of a partial prior deployment).
func (p *Platform) hasDeployedObjects(jobID string) bool {
	st := p.Kube.Store()
	if _, ok := st.Get(kube.KindStatefulSet, learnerSetName(jobID)); ok {
		return true
	}
	if _, ok := st.Get(kube.KindDeployment, helperDeployName(jobID)); ok {
		return true
	}
	if _, ok := st.Get(kube.KindNetworkPolicy, netpolName(jobID)); ok {
		return true
	}
	return false
}

// deployJob performs the multi-step provisioning (§3.3): shared volume,
// network policy, helper pod, then the learner stateful set with gang
// information. Any error leaves rollback to the caller.
func (p *Platform) deployJob(jobID string, m Manifest) error {
	if err := p.setJobStatus(jobID, StatusDeploying, "guardian deploying job"); err != nil {
		return err
	}
	// Step 1: shared NFS volume (the helper<->learner channel).
	vol, err := p.NFS.Provision(jobID)
	if err != nil {
		return fmt.Errorf("provision volume: %w", err)
	}
	// Step 2: data-plane handles.
	if m.ResultBucket == "" {
		m.ResultBucket = "ffdl-results"
	}
	p.Store.EnsureBucket(m.ResultBucket)
	var mount *jobMount
	if m.DataBucket != "" {
		mount = &jobMount{bucket: m.DataBucket}
	}
	res := &jobResources{manifest: m, volume: vol}
	if mount != nil {
		res.mount = p.Store.NewMount(m.DataBucket, 256<<20)
	}
	p.putResources(jobID, res)

	st := p.Kube.Store()
	// Step 3: network isolation (§3.3: "applying K8S policies to
	// restrict network access from the learner in a multi-tenant
	// environment").
	st.Put(kube.KindNetworkPolicy, netpolName(jobID), &kube.NetworkPolicy{
		Name: netpolName(jobID), JobID: jobID, AllowWithinJob: true,
	})
	// Step 4: helper pod (controller, load-data, store-results,
	// log-collector), deployed separately from the learners (§3.8).
	st.Put(kube.KindDeployment, helperDeployName(jobID), &kube.Deployment{
		Name: helperDeployName(jobID), Replicas: 1,
		Template: kube.PodSpec{
			Demand:      sched.Resources{MilliCPU: 500, MemoryMB: 512},
			Runtime:     runtimeHelper,
			RuntimeArgs: map[string]string{"job": jobID},
			Type:        PodTypeHelper,
			JobID:       jobID,
		},
	})
	// Step 5: learners as a stateful set carrying gang name + size.
	st.Put(kube.KindStatefulSet, learnerSetName(jobID), &kube.StatefulSet{
		Name: learnerSetName(jobID), Replicas: m.Learners,
		Template: kube.PodSpec{
			Demand:      m.LearnerDemand(),
			GPUType:     string(m.GPUType),
			JobID:       jobID,
			GangSize:    m.Learners,
			Runtime:     runtimeLearner,
			RuntimeArgs: map[string]string{"job": jobID},
			Type:        PodTypeLearner,
		},
	})
	return nil
}

// jobMount is a small holder used during deployment.
type jobMount struct{ bucket string }

// rollbackJob deletes every deployed object of a job, releasing
// resources so a fresh deployment (or nothing) remains — "there should
// not be an inactive job component with allocated resources (i.e. a
// zombie)" (§3.3).
func (p *Platform) rollbackJob(jobID string) {
	st := p.Kube.Store()
	st.Delete(kube.KindStatefulSet, learnerSetName(jobID))
	st.Delete(kube.KindDeployment, helperDeployName(jobID))
	st.Delete(kube.KindNetworkPolicy, netpolName(jobID))
	if res, ok := p.getResources(jobID); ok {
		p.NFS.Release(res.volume)
		p.dropResources(jobID)
	}
	// Clear any stale coordination state so the next deployment starts
	// clean (but keep the control key: HALT/TERMINATE must survive).
	p.Etcd.DeletePrefix(keyJobPrefix(jobID) + "learners/") //nolint:errcheck
	p.Etcd.Delete(keyDone(jobID))                          //nolint:errcheck
}

// teardownJob removes all traces of a finished job: kube objects, the
// NFS volume and its etcd subtree ("a DL job's data is erased after it
// terminates", §3.2). MongoDB keeps the status history.
func (p *Platform) teardownJob(jobID string) {
	p.rollbackJob(jobID)
	p.Etcd.DeletePrefix(keyJobPrefix(jobID)) //nolint:errcheck
}

// monitorJob is the Guardian's steady-state loop. It subscribes to the
// job's etcd prefix — learner statuses, the control key, the done key —
// and re-evaluates the job on every write, the reactive posture the
// paper describes ("controllers record learner state in etcd and other
// components watch those keys", §3.3/§3.8). The check itself is
// level-triggered (it re-reads state rather than trusting event
// payloads), so the watch stream's resync contract and a slow safety
// tick both just mean "look again", and no event ordering subtlety can
// wedge a job.
func (p *Platform) monitorJob(ctx *kube.PodContext, jobID string, m Manifest) int {
	var ws *etcd.WatchStream
	var events <-chan etcd.Event
	// attach (re)establishes the prefix subscription; a failure (e.g. a
	// guardian starting mid leader-election) degrades to the safety
	// ticker until the next tick retries, never for the pod's lifetime.
	attach := func() {
		if ws != nil {
			return
		}
		if w, err := p.Etcd.Watch(keyJobPrefix(jobID), true, 0); err == nil {
			ws = w
			events = w.Events()
		}
	}
	attach()
	defer func() {
		if ws != nil {
			ws.Cancel()
		}
	}()
	// Safety net only: with the watch healthy this ticker does not bound
	// reaction latency, so it runs an order of magnitude slower than the
	// old poll.
	ticker := p.clock.NewTicker(p.cfg.PollInterval * 10)
	defer ticker.Stop()
	halted := false
	for {
		if code, done := p.checkJob(jobID, m, &halted); done {
			return code
		}
		select {
		case <-ctx.Stop:
			return 137 // guardian killed; kube restarts it
		case _, ok := <-events:
			// Coalesce the burst: one re-check covers all queued writes.
			if !ok || sim.Coalesce(events, nil) {
				events = nil // stream ended; ticker carries on
			}
		case <-ticker.C:
			attach()
		}
	}
}

// checkJob runs one level-triggered evaluation of the job's etcd state:
// control verbs, completion, learner-status aggregation. done=true means
// the guardian's work is over and the pod should exit with code.
func (p *Platform) checkJob(jobID string, m Manifest, halted *bool) (code int, done bool) {
	// Control verbs.
	if kv, ok, _ := p.Etcd.Get(keyControl(jobID)); ok {
		switch string(kv.Value) {
		case controlTerminate:
			if err := p.setJobStatus(jobID, StatusCanceled, "terminated by user"); err != nil && mongoOutageErr(err) {
				// The terminal transition could not be recorded (store
				// outage): keep the guardian alive so the next check
				// retries. Tearing down now would strand the job
				// non-terminal forever.
				return 0, false
			}
			p.teardownJob(jobID)
			return 0, true
		case controlHalt:
			if !*halted {
				p.Kube.Store().Delete(kube.KindStatefulSet, learnerSetName(jobID))
				p.Etcd.DeletePrefix(keyJobPrefix(jobID) + "learners/") //nolint:errcheck
				if err := p.setJobStatus(jobID, StatusHalted, "halted by user; checkpoint retained"); err != nil && mongoOutageErr(err) {
					// Not recorded: leave *halted false so the next check
					// re-runs this (idempotent) branch once the store
					// answers — the dispatcher needs the HALTED event to
					// requeue the victim.
					return 0, false
				}
				*halted = true
			}
		case controlResume:
			if *halted {
				if err := p.setJobStatus(jobID, StatusResumed, "resumed from latest checkpoint"); err != nil && mongoOutageErr(err) {
					return 0, false // retry once the store answers
				}
				*halted = false
				st := p.Kube.Store()
				st.Put(kube.KindStatefulSet, learnerSetName(jobID), &kube.StatefulSet{
					Name: learnerSetName(jobID), Replicas: m.Learners,
					Template: kube.PodSpec{
						Demand:      m.LearnerDemand(),
						GPUType:     string(m.GPUType),
						JobID:       jobID,
						GangSize:    m.Learners,
						Runtime:     runtimeLearner,
						RuntimeArgs: map[string]string{"job": jobID},
						Type:        PodTypeLearner,
					},
				})
			}
		}
	}
	if *halted {
		return 0, false
	}

	// Completion. The terminal transition must be durably recorded
	// before teardown: if the metadata store does not answer, the done
	// key stays in place and the next evaluation retries — otherwise a
	// store outage at exactly the wrong moment would strand the job
	// non-terminal with its guardian gone.
	if kv, ok, _ := p.Etcd.Get(keyDone(jobID)); ok {
		code, _ := strconv.Atoi(string(kv.Value))
		var err error
		if code == 0 {
			p.setJobStatus(jobID, StatusStoring, "storing trained model and logs") //nolint:errcheck
			err = p.setJobStatus(jobID, StatusCompleted, "training completed")
		} else {
			err = p.setJobStatus(jobID, StatusFailed, fmt.Sprintf("learner failed with exit code %d", code))
		}
		if err != nil && mongoOutageErr(err) {
			return 0, false
		}
		p.teardownJob(jobID)
		return 0, true
	}

	// Aggregate learner statuses: the job is as far along as its
	// slowest learner ("The Guardian aggregates the statuses of
	// each learner to record the overall status of the job in
	// MongoDB", §3.8).
	if agg, ok := p.aggregateLearnerStatus(jobID, m.Learners); ok {
		p.setJobStatus(jobID, agg, "aggregated from learner statuses") //nolint:errcheck
	}
	return 0, false
}

// aggregateLearnerStatus folds per-learner etcd statuses into one job
// status.
func (p *Platform) aggregateLearnerStatus(jobID string, learners int) (JobStatus, bool) {
	kvs, err := p.Etcd.List(keyJobPrefix(jobID) + "learners/")
	if err != nil || len(kvs) == 0 {
		return "", false
	}
	worst := statusRank(StatusCompleted) + 1
	seen := 0
	for _, kv := range kvs {
		var st JobStatus
		switch string(kv.Value) {
		case "DOWNLOADING", "WAITING_FOR_PEERS":
			st = StatusDownloading
		case "PROCESSING":
			st = StatusProcessing
		case "STORING", "COMPLETED":
			st = StatusStoring
		case "FAILED":
			// Failure is surfaced through the done key with its exit
			// code; ignore here.
			continue
		default:
			continue
		}
		seen++
		if r := statusRank(st); r < worst {
			worst = r
		}
	}
	if seen < learners {
		// Not all learners reporting yet: stay in DEPLOYING.
		return "", false
	}
	switch worst {
	case statusRank(StatusDownloading):
		return StatusDownloading, true
	case statusRank(StatusProcessing):
		return StatusProcessing, true
	case statusRank(StatusStoring):
		return StatusStoring, true
	default:
		return "", false
	}
}
