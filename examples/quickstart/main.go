// Quickstart: boot an in-process FfDL platform, submit one training
// job, follow its DL-specific status transitions and print its logs.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/ffdl/ffdl"
)

func main() {
	// Boot the platform: 3-way replicated etcd, metadata store, object
	// storage, kube-like orchestrator, 2 API + 2 LCM replicas.
	platform, err := ffdl.New(ffdl.Config{
		TimeCompression: 1e-4, // replay hours of training in ~100ms
	})
	if err != nil {
		log.Fatalf("boot platform: %v", err)
	}
	defer platform.Stop()

	// Add a small GPU cluster and a synthetic dataset.
	platform.AddNodes("k80", ffdl.K80, 2, 4)
	if err := platform.SeedDataset("datasets", "mnist/", 8<<20); err != nil {
		log.Fatalf("seed dataset: %v", err)
	}

	client := platform.Client()
	ctx := context.Background()

	// A manifest is all FfDL needs (§3.1): code/command, data location,
	// learners and per-learner resources. CPU/memory default to the
	// t-shirt size for the GPU type.
	jobID, err := client.Submit(ctx, ffdl.Manifest{
		Name: "quickstart-vgg", User: "alice",
		Framework: ffdl.Caffe, Model: ffdl.VGG16,
		Command:  "caffe train -solver solver.prototxt",
		Learners: 1, GPUsPerLearner: 1, GPUType: ffdl.K80,
		Iterations: 300, CheckpointEvery: 50,
		DataBucket: "datasets", DataPrefix: "mnist/",
	})
	if err != nil {
		log.Fatalf("submit: %v", err)
	}
	fmt.Printf("submitted job %s\n", jobID)

	// Poll status until terminal, printing each DL-specific transition.
	last := ffdl.JobStatus("")
	for {
		reply, err := client.Status(ctx, jobID)
		if err != nil {
			log.Fatalf("status: %v", err)
		}
		if reply.Status != last {
			last = reply.Status
			fmt.Printf("  status -> %s\n", last)
		}
		if last.Terminal() {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Full status history with timestamps (what users bill/debug from).
	reply, _ := client.Status(ctx, jobID)
	fmt.Println("history:")
	for _, h := range reply.History {
		fmt.Printf("  %s  %-12s %s\n", h.Time.Format("15:04:05.000"), h.Status, h.Message)
	}

	// Training logs, collected by the helper pod's log-collector.
	logs, err := client.Logs(ctx, jobID)
	if err != nil {
		log.Fatalf("logs: %v", err)
	}
	fmt.Printf("collected %d log lines; last 3:\n", len(logs))
	for i := maxInt(0, len(logs)-3); i < len(logs); i++ {
		fmt.Printf("  %s\n", logs[i].Text)
	}

	// The trained model landed in the results bucket.
	if _, err := platform.Store.Get("ffdl-results", jobID+"/model/final.bin"); err == nil {
		fmt.Printf("trained model stored at ffdl-results/%s/model/final.bin\n", jobID)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
