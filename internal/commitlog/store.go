package commitlog

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// SegmentStore is the durability layer under a Log: a set of segment
// byte streams named by base offset, plus an append-only offsets log
// for consumer-cursor commits. The Log keeps the decoded record index
// in memory and calls the store write-through, so a store is only read
// back at Open (recovery).
//
// Write-ordering contract: the Log issues writes in commit order and a
// store must make them durable in that order (the FaultStore crash
// model — "every byte before the crash point is durable, the write
// containing it is torn, everything after is lost" — depends on it).
//
// Append may perform a partial write: it returns the bytes actually
// written along with the error. Rewrite and RewriteOffsets are
// atomic: they either fully replace the target or leave it untouched
// (the file store stages into a temp file and renames).
type SegmentStore interface {
	// Segments lists existing segment base offsets, ascending.
	Segments() ([]uint64, error)
	// Create adds an empty segment.
	Create(base uint64) error
	// Append appends data to segment base, returning bytes written.
	Append(base uint64, data []byte) (int, error)
	// Load returns segment base's full contents.
	Load(base uint64) ([]byte, error)
	// Rewrite atomically replaces segment base's contents (compaction).
	Rewrite(base uint64, data []byte) error
	// Remove deletes segment base (retention).
	Remove(base uint64) error
	// AppendOffsets appends one offset-map commit frame.
	AppendOffsets(data []byte) (int, error)
	// LoadOffsets returns the offsets log's full contents.
	LoadOffsets() ([]byte, error)
	// RewriteOffsets atomically replaces the offsets log (shrinking it
	// to a single frame once it accumulates dead commits).
	RewriteOffsets(data []byte) error
}

// ErrNoSegment reports access to a segment the store does not hold.
var ErrNoSegment = errors.New("commitlog: no such segment")

// MemStore is the in-memory SegmentStore the simulation runs on: the
// etcd watch history, status bus and mongo oplog logs all ride it.
// It is safe for concurrent use, though the owning Log serializes
// writes anyway.
type MemStore struct {
	mu       sync.Mutex
	segments map[uint64][]byte
	offsets  []byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{segments: make(map[uint64][]byte)}
}

// Segments implements SegmentStore.
func (m *MemStore) Segments() ([]uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]uint64, 0, len(m.segments))
	for b := range m.segments {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Create implements SegmentStore.
func (m *MemStore) Create(base uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.segments[base]; !ok {
		m.segments[base] = nil
	}
	return nil
}

// Append implements SegmentStore.
func (m *MemStore) Append(base uint64, data []byte) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.segments[base]; !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoSegment, base)
	}
	m.segments[base] = append(m.segments[base], data...)
	return len(data), nil
}

// Load implements SegmentStore.
func (m *MemStore) Load(base uint64) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.segments[base]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoSegment, base)
	}
	return append([]byte(nil), data...), nil
}

// Rewrite implements SegmentStore.
func (m *MemStore) Rewrite(base uint64, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.segments[base]; !ok {
		return fmt.Errorf("%w: %d", ErrNoSegment, base)
	}
	m.segments[base] = append([]byte(nil), data...)
	return nil
}

// Remove implements SegmentStore.
func (m *MemStore) Remove(base uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.segments, base)
	return nil
}

// AppendOffsets implements SegmentStore.
func (m *MemStore) AppendOffsets(data []byte) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.offsets = append(m.offsets, data...)
	return len(data), nil
}

// LoadOffsets implements SegmentStore.
func (m *MemStore) LoadOffsets() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]byte(nil), m.offsets...), nil
}

// RewriteOffsets implements SegmentStore.
func (m *MemStore) RewriteOffsets(data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.offsets = append([]byte(nil), data...)
	return nil
}

// FileStore is the file-backed SegmentStore: one "<base>.seg" file per
// segment plus an "offsets.log" of commit frames, all in one
// directory. It is the durability arm the crash torture suite drives
// (wrapped in a FaultStore); recovery semantics — torn-tail
// truncation, last-valid-commit offset recovery — live in Open, which
// reads the store back.
type FileStore struct {
	dir string
}

const (
	segSuffix   = ".seg"
	tmpSuffix   = ".tmp"
	offsetsName = "offsets.log"
)

// OpenFileStore opens (creating if needed) a file store rooted at dir.
// Stale temp files from a crashed compaction rewrite are discarded.
func OpenFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("commitlog: open file store: %w", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("commitlog: open file store: %w", err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), tmpSuffix) {
			os.Remove(filepath.Join(dir, e.Name())) //nolint:errcheck // best-effort cleanup
		}
	}
	return &FileStore{dir: dir}, nil
}

func (f *FileStore) segPath(base uint64) string {
	return filepath.Join(f.dir, fmt.Sprintf("%020d%s", base, segSuffix))
}

// Segments implements SegmentStore.
func (f *FileStore) Segments() ([]uint64, error) {
	ents, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasSuffix(name, segSuffix) {
			continue
		}
		base, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 10, 64)
		if err != nil {
			continue // foreign file; not ours to manage
		}
		out = append(out, base)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Create implements SegmentStore.
func (f *FileStore) Create(base uint64) error {
	file, err := os.OpenFile(f.segPath(base), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	return file.Close()
}

// appendFile appends data to path, returning bytes written.
func appendFile(path string, data []byte) (int, error) {
	file, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return 0, err
	}
	n, err := file.Write(data)
	if cerr := file.Close(); err == nil {
		err = cerr
	}
	return n, err
}

// Append implements SegmentStore.
func (f *FileStore) Append(base uint64, data []byte) (int, error) {
	if _, err := os.Stat(f.segPath(base)); err != nil {
		return 0, fmt.Errorf("%w: %d", ErrNoSegment, base)
	}
	return appendFile(f.segPath(base), data)
}

// Load implements SegmentStore.
func (f *FileStore) Load(base uint64) ([]byte, error) {
	data, err := os.ReadFile(f.segPath(base))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %d", ErrNoSegment, base)
	}
	return data, err
}

// rewriteFile atomically replaces path via a temp file + rename.
func rewriteFile(path string, data []byte) error {
	tmp := path + tmpSuffix
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Rewrite implements SegmentStore.
func (f *FileStore) Rewrite(base uint64, data []byte) error {
	if _, err := os.Stat(f.segPath(base)); err != nil {
		return fmt.Errorf("%w: %d", ErrNoSegment, base)
	}
	return rewriteFile(f.segPath(base), data)
}

// Remove implements SegmentStore.
func (f *FileStore) Remove(base uint64) error {
	err := os.Remove(f.segPath(base))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}

// AppendOffsets implements SegmentStore.
func (f *FileStore) AppendOffsets(data []byte) (int, error) {
	return appendFile(filepath.Join(f.dir, offsetsName), data)
}

// LoadOffsets implements SegmentStore.
func (f *FileStore) LoadOffsets() ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(f.dir, offsetsName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	return data, err
}

// RewriteOffsets implements SegmentStore.
func (f *FileStore) RewriteOffsets(data []byte) error {
	return rewriteFile(filepath.Join(f.dir, offsetsName), data)
}
