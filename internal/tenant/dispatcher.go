package tenant

import (
	"fmt"
	"sync"
	"time"

	"github.com/ffdl/ffdl/internal/obs"
	"github.com/ffdl/ffdl/internal/sched"
	"github.com/ffdl/ffdl/internal/sim"
)

// Job is the dispatcher's view of one submitted job: identity, owner,
// the gang shape admission and preemption account in, and the original
// submission time that anchors its FCFS position (queue delay is always
// measured from Submitted, and a preempted victim re-enters the queue
// under its original arrival — which is what puts it back at the head).
type Job struct {
	ID        string
	User      string
	Gang      *sched.Gang
	Submitted time.Time
}

// Phase is where a job currently is in its lifecycle, as far as the
// dispatcher cares: the platform maps its richer status machine down to
// these four.
type Phase int

// Dispatcher-visible job phases.
const (
	// PhaseQueued: persisted, awaiting admission.
	PhaseQueued Phase = iota + 1
	// PhaseRunning: handed to the LCM and neither halted nor terminal.
	PhaseRunning
	// PhaseHalted: checkpointed and stopped; GPUs are free. Preempted
	// victims wait here until the dispatcher resumes them.
	PhaseHalted
	// PhaseTerminal: completed, failed or canceled.
	PhaseTerminal
)

// Backend is what the dispatcher drives — implemented by the core
// platform. All methods must be safe to call repeatedly for the same
// job: the dispatcher is level-triggered and will re-issue an action it
// cannot prove happened.
type Backend interface {
	// Dispatch hands an admitted queued job to the LCM (QUEUED →
	// PENDING). An error means the job is no longer dispatchable
	// (vanished or already moved on) and it is dropped from the queue.
	Dispatch(jobID string) error
	// Preempt checkpoints and halts a running job through the
	// platform's existing halt path (checkpoint signal to learners).
	Preempt(jobID string) error
	// Resume restarts a halted victim from its latest checkpoint.
	Resume(jobID string) error
	// Fail permanently rejects a queued job (e.g. its quota record was
	// deleted between submit and dispatch).
	Fail(jobID, reason string) error
	// Lookup fetches a job's dispatcher view from the durable store.
	Lookup(jobID string) (Job, error)
	// Phase reports where a job currently is.
	Phase(jobID string) (Phase, error)
	// PendingWork lists, from the durable store, jobs awaiting the
	// dispatcher: QUEUED submissions and preempted-but-halted victims.
	// This is the resync source of truth.
	PendingWork() (queued []Job, preempted []Job)
}

// Stats counts dispatcher activity.
type Stats struct {
	// Wakes is the number of times the loop woke for any reason;
	// Passes counts dispatch passes actually run.
	Wakes  uint64
	Passes uint64
	// Dispatched counts jobs handed to the LCM (first dispatch only);
	// Resumed counts preemption victims restarted from checkpoint.
	Dispatched uint64
	Resumed    uint64
	// Preempted counts victims halted; Requeued counts victims that
	// re-entered the queue after their checkpoint landed.
	Preempted uint64
	Requeued  uint64
	// QuotaEvents counts registry change-feed deliveries; Resyncs
	// counts safety-net ticks.
	QuotaEvents uint64
	Resyncs     uint64
	// Failed counts queued jobs permanently rejected at dispatch.
	Failed uint64
}

// Delay records one dispatch's queue-delay accounting (Fig. 3 counts
// jobs queued beyond 15 minutes).
type Delay struct {
	JobID string
	User  string
	// Queued is how long the job waited between submission (or
	// preemption requeue) and this dispatch.
	Queued time.Duration
	// Resumed marks a preemption victim's re-dispatch.
	Resumed bool
}

// Config parameterizes a Dispatcher.
type Config struct {
	Clock     sim.Clock
	Backend   Backend
	Registry  *Registry
	Admission *sched.Admission
	// ResyncInterval is the safety-net tick re-reading queued jobs,
	// quotas and victim phases from their durable stores. It bounds
	// recovery from dropped events, never dispatch latency. Default
	// 250ms.
	ResyncInterval time.Duration
	// DisablePreemption keeps starved in-quota requests waiting instead
	// of checkpointing victims (ablation; production FfDL preempts).
	DisablePreemption bool
	// Obs, when non-nil, records each dispatch's queue delay into the
	// "tenant.queue_delay" histogram. Nil leaves dispatch accounting
	// uninstrumented at zero cost.
	Obs *obs.Registry
}

// queuedEntry is the dispatcher's per-job queue state.
type queuedEntry struct {
	job Job
	// victim marks a preempted job waiting to resume from checkpoint
	// rather than a fresh submission: it dispatches through Resume and
	// never triggers further preemption (no preemption cycles).
	victim bool
	// enqueued is when the entry (re-)entered the queue, for delay
	// accounting; FCFS position still keys off job.Submitted.
	enqueued time.Time
}

// Dispatcher is the event-driven admission queue. One instance runs per
// platform; all state it cannot rebuild from the durable stores is
// advisory. See the package comment for the wake/resync contract.
type Dispatcher struct {
	cfg   Config
	clock sim.Clock
	adm   *sched.Admission

	wake chan struct{}
	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once

	mu      sync.Mutex
	queue   sched.Queue
	entries map[string]*queuedEntry
	// victims maps preempted jobs awaiting their HALTED transition to
	// their durable view, so the requeue needs no store read.
	victims map[string]Job
	delays  []Delay
	stats   Stats

	// obsDelay is the registry queue-delay histogram; nil without
	// Config.Obs.
	obsDelay *obs.Histogram
}

// NewDispatcher builds a dispatcher; call Start to run it.
func NewDispatcher(cfg Config) *Dispatcher {
	if cfg.Clock == nil {
		cfg.Clock = sim.NewRealClock()
	}
	if cfg.ResyncInterval <= 0 {
		cfg.ResyncInterval = 250 * time.Millisecond
	}
	d := &Dispatcher{
		cfg:     cfg,
		clock:   cfg.Clock,
		adm:     cfg.Admission,
		wake:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		entries: make(map[string]*queuedEntry),
		victims: make(map[string]Job),
	}
	if cfg.Obs != nil {
		d.obsDelay = cfg.Obs.Histogram("tenant.queue_delay")
	}
	return d
}

// Start seeds quotas from the registry, recovers queued work from the
// durable store, and runs the dispatch loop until Stop.
func (d *Dispatcher) Start() {
	var feed <-chan struct{}
	var cancelFeed func()
	if d.cfg.Registry != nil {
		// Subscribe at the current oplog position before the seed read
		// so no quota write falls between — a write racing the seam is
		// delivered by the feed and read by Seed, and the overwrite is
		// harmless (last write wins either way). Starting at Seq()
		// rather than 0 avoids replaying the whole historical oplog.
		cs := d.cfg.Registry.Watch(d.cfg.Registry.Seq())
		cancelFeed = cs.Cancel
		quotaCh := make(chan struct{}, 1)
		feed = quotaCh
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			for ev := range cs.Events() {
				if ev.Doc == nil {
					continue
				}
				if rec, ok := docToRecord(ev.Doc); ok {
					d.adm.SetQuota(rec.Quota())
					d.mu.Lock()
					d.stats.QuotaEvents++
					d.mu.Unlock()
					select {
					case quotaCh <- struct{}{}:
					default:
					}
				}
			}
		}()
		d.cfg.Registry.Seed(d.adm)
	}
	d.resync()

	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		if cancelFeed != nil {
			defer cancelFeed()
		}
		ticker := d.clock.NewTicker(d.cfg.ResyncInterval)
		defer ticker.Stop()
		for {
			select {
			case <-d.stop:
				return
			case <-d.wake:
				d.noteWake()
				d.dispatch()
			case <-feed:
				d.noteWake()
				d.dispatch()
			case <-ticker.C:
				d.resync()
			}
		}
	}()
}

// Stop shuts the dispatcher down.
func (d *Dispatcher) Stop() {
	d.once.Do(func() { close(d.stop) })
	d.wg.Wait()
}

func (d *Dispatcher) noteWake() {
	d.mu.Lock()
	d.stats.Wakes++
	d.mu.Unlock()
}

// Wake nudges the dispatch loop without carrying an event.
func (d *Dispatcher) Wake() {
	select {
	case d.wake <- struct{}{}:
	default:
	}
}

// NoteQueued records a freshly persisted QUEUED submission and wakes
// the loop. Duplicate notes for a known job are no-ops.
func (d *Dispatcher) NoteQueued(j Job) {
	d.mu.Lock()
	d.enqueueLocked(j, false)
	d.mu.Unlock()
	d.Wake()
}

// NoteTerminal releases a finished job's admission footprint (satisfying
// the release-on-every-terminal-transition contract for all writers the
// status bus observes), drops it from the queue if it was still waiting,
// and wakes the loop — a completion is exactly when capacity frees.
func (d *Dispatcher) NoteTerminal(jobID string) {
	d.adm.Release(jobID)
	d.mu.Lock()
	d.dropLocked(jobID)
	delete(d.victims, jobID)
	d.mu.Unlock()
	d.Wake()
}

// NoteHalted releases a halted job's footprint (its GPUs are free while
// it sits on its checkpoint) and, if the halt was a preemption the
// dispatcher initiated, requeues the victim under its original arrival
// time — the FCFS order restores it to the head of the queue.
func (d *Dispatcher) NoteHalted(jobID string) {
	d.adm.Release(jobID)
	d.mu.Lock()
	if j, ok := d.victims[jobID]; ok {
		delete(d.victims, jobID)
		d.enqueueLocked(j, true)
		d.stats.Requeued++
	}
	d.mu.Unlock()
	d.Wake()
}

// NoteResumed restores the admission footprint of a job that resumed
// from its checkpoint. Admit is idempotent per job, so a resume the
// dispatcher itself admitted is not double-counted; a user-initiated
// resume (which bypassed the queue) gets its footprint re-registered
// here.
func (d *Dispatcher) NoteResumed(j Job) {
	if j.Gang != nil {
		d.adm.Admit(j.Gang) //nolint:errcheck // accounting restore; rejection leaves it unaccounted, matching pre-tenancy resume semantics
	}
}

// SetClusterGPUs updates the admission budget to the cluster's current
// capacity (wired to kube node watch events) and wakes the loop —
// added capacity may admit the head of the queue.
func (d *Dispatcher) SetClusterGPUs(n int) {
	d.adm.SetClusterGPUs(n)
	d.Wake()
}

// enqueueLocked adds a job to the queue unless it is already there.
func (d *Dispatcher) enqueueLocked(j Job, victim bool) {
	if j.Gang == nil || j.ID == "" {
		return
	}
	if _, ok := d.entries[j.ID]; ok {
		return
	}
	d.entries[j.ID] = &queuedEntry{job: j, victim: victim, enqueued: d.clock.Now()}
	d.queue.Push(j.Gang, j.Submitted)
}

// dropLocked removes a job from the queue.
func (d *Dispatcher) dropLocked(jobID string) {
	if _, ok := d.entries[jobID]; !ok {
		return
	}
	delete(d.entries, jobID)
	d.queue.Remove(jobID)
}

// Position returns a queued job's 1-based dispatch position.
func (d *Dispatcher) Position(jobID string) (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, it := range d.queue.Items() {
		if it.Gang.JobID == jobID {
			return i + 1, true
		}
	}
	return 0, false
}

// QueueDepth returns how many jobs await dispatch.
func (d *Dispatcher) QueueDepth() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.queue.Len()
}

// Stats returns a copy of the activity counters.
func (d *Dispatcher) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// QueueDelays returns the per-dispatch queue-delay records accumulated
// so far (copy).
func (d *Dispatcher) QueueDelays() []Delay {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Delay, len(d.delays))
	copy(out, d.delays)
	return out
}

// resync is the level-triggered safety net: re-read quotas, recover
// queued work and victim state from the durable stores, then run a
// pass. With the event paths healthy it finds nothing to fix.
func (d *Dispatcher) resync() {
	if d.cfg.Registry != nil {
		d.cfg.Registry.Seed(d.adm)
	}
	queued, preempted := d.cfg.Backend.PendingWork()
	d.mu.Lock()
	d.stats.Resyncs++
	for _, j := range queued {
		d.enqueueLocked(j, false)
	}
	for _, j := range preempted {
		// A preempted job already halted: its HALTED event may have
		// been dropped, so requeue it directly.
		if _, waiting := d.victims[j.ID]; waiting {
			delete(d.victims, j.ID)
			d.stats.Requeued++
		}
		d.enqueueLocked(j, true)
	}
	// Victims whose halt never landed (terminal raced the preemption)
	// must not leak; victims still running may have lost the halt
	// signal (e.g. an LCM outage mid-call), so re-issue it — the halt
	// path is idempotent.
	for id := range d.victims {
		ph, err := d.cfg.Backend.Phase(id)
		switch {
		case err != nil || ph == PhaseTerminal:
			delete(d.victims, id)
		case ph == PhaseRunning:
			d.cfg.Backend.Preempt(id) //nolint:errcheck // retried next resync
		}
	}
	d.mu.Unlock()
	d.dispatch()
}

// dispatch runs one pass: admit and hand off jobs from the head of the
// queue, in strict FCFS order, preempting for starved in-quota heads.
// It stops at the first head it can neither admit nor unblock.
func (d *Dispatcher) dispatch() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.Passes++
	for {
		head := d.queue.Peek()
		if head == nil {
			return
		}
		id := head.Gang.JobID
		entry := d.entries[id]
		if entry == nil {
			// Queue/entry maps drifted (should not happen); heal.
			d.queue.Remove(id)
			continue
		}
		if entry.victim {
			if !d.dispatchVictimLocked(entry) {
				return
			}
			continue
		}
		if !d.dispatchQueuedLocked(entry) {
			return
		}
	}
}

// dispatchQueuedLocked tries to admit and dispatch a fresh submission
// at the head of the queue; it reports whether the pass should
// continue to the next head.
func (d *Dispatcher) dispatchQueuedLocked(e *queuedEntry) bool {
	id := e.job.ID
	dec, _ := d.adm.Admit(e.job.Gang)
	if dec != sched.Reject {
		if err := d.cfg.Backend.Dispatch(id); err != nil {
			// No longer dispatchable (vanished, terminal, or another
			// process dispatched it): footprint stays if the job runs —
			// the bus events reconcile — but the queue must move on.
			ph, perr := d.cfg.Backend.Phase(id)
			if perr == nil && (ph == PhaseTerminal || ph == PhaseQueued) {
				d.adm.Release(id)
			}
			d.dropLocked(id)
			return true
		}
		d.recordDispatchLocked(e, false)
		d.dropLocked(id)
		d.stats.Dispatched++
		return true
	}
	// Rejected. Unknown user: the quota record disappeared between
	// submit-time validation and dispatch — fail the job visibly.
	if _, ok := d.adm.Quota(e.job.User); !ok {
		d.cfg.Backend.Fail(id, "no quota for user "+e.job.User) //nolint:errcheck // resync retries
		d.dropLocked(id)
		d.stats.Failed++
		return true
	}
	// Permanently infeasible: a gang bigger than the whole cluster can
	// never be admitted, and in strict FCFS it would wedge the queue
	// for every tenant behind it. Fail it visibly instead (the legacy
	// gate rejected it at submit time).
	if d.failIfInfeasibleLocked(e) {
		return true
	}
	// Cluster budget exhausted. A starved in-quota head preempts
	// (§3.6: free users under load, over-quota jobs when the quota
	// owner returns); over-quota heads wait for capacity.
	if d.cfg.DisablePreemption || !d.inQuotaLocked(e.job) {
		return false
	}
	if !d.preemptForLocked(e.job) {
		return false
	}
	// Footprints were released; re-admit on the next loop iteration.
	return true
}

// dispatchVictimLocked tries to resume a preempted victim at the head
// of the queue; it reports whether the pass should continue.
func (d *Dispatcher) dispatchVictimLocked(e *queuedEntry) bool {
	id := e.job.ID
	ph, err := d.cfg.Backend.Phase(id)
	if err != nil || ph == PhaseTerminal {
		d.dropLocked(id)
		return true
	}
	if ph == PhaseRunning {
		// Resumed by the user directly; nothing left to dispatch.
		d.dropLocked(id)
		return true
	}
	dec, _ := d.adm.Admit(e.job.Gang)
	if dec == sched.Reject {
		// A victim that no longer fits the cluster at all (capacity
		// shrank while it sat on its checkpoint) must not wedge the
		// queue either.
		if d.failIfInfeasibleLocked(e) {
			return true
		}
		// Victims never preempt (no cycles); the head waits for
		// capacity in strict FCFS order.
		return false
	}
	if err := d.cfg.Backend.Resume(id); err != nil {
		d.adm.Release(id)
		return false // halt may still be propagating; next wake retries
	}
	d.recordDispatchLocked(e, true)
	d.dropLocked(id)
	d.stats.Resumed++
	return true
}

// failIfInfeasibleLocked fails and drops a head whose GPU demand
// exceeds total cluster capacity — no amount of completion or
// preemption can ever admit it, and leaving it at the head would block
// the strict-FCFS queue forever. Reports whether the entry was failed.
// A capacity of "unlimited" (ClusterCap 0) or known-zero (< 0, e.g. no
// nodes registered yet) never fails a job: capacity may still appear.
func (d *Dispatcher) failIfInfeasibleLocked(e *queuedEntry) bool {
	budget := d.adm.ClusterCap()
	need := e.job.Gang.GPUDemand()
	if budget <= 0 || need <= budget {
		return false
	}
	d.cfg.Backend.Fail(e.job.ID, //nolint:errcheck // resync retries
		fmt.Sprintf("job needs %d GPUs but the cluster has %d", need, budget))
	d.dropLocked(e.job.ID)
	d.stats.Failed++
	return true
}

// inQuotaLocked reports whether the gang fits inside its user's
// entitlement given current usage — the §3.6 test for who may preempt.
func (d *Dispatcher) inQuotaLocked(j Job) bool {
	q, ok := d.adm.Quota(j.User)
	if !ok {
		return false
	}
	return d.adm.Usage(j.User)+j.Gang.GPUDemand() <= q.GPUs
}

// preemptForLocked checkpoints enough victims to admit j, marking each
// so its HALTED transition requeues it. Reports whether victims were
// selected.
func (d *Dispatcher) preemptForLocked(j Job) bool {
	need := j.Gang.GPUDemand()
	shortfall := need
	if budget := d.adm.ClusterCap(); budget > 0 {
		if free := budget - d.adm.AdmittedGPUs(); free > 0 {
			shortfall = need - free
		}
	}
	if shortfall <= 0 {
		return false
	}
	victims := d.adm.PreemptFor(j.User, shortfall)
	if len(victims) == 0 {
		return false
	}
	for _, v := range victims {
		vj, err := d.cfg.Backend.Lookup(v)
		if err == nil {
			d.victims[v] = vj
		}
		d.stats.Preempted++
		d.cfg.Backend.Preempt(v) //nolint:errcheck // resync reconciles victims that cannot halt
	}
	return true
}

// recordDispatchLocked appends queue-delay accounting for one dispatch.
func (d *Dispatcher) recordDispatchLocked(e *queuedEntry, resumed bool) {
	queued := d.clock.Now().Sub(e.job.Submitted)
	if resumed {
		queued = d.clock.Now().Sub(e.enqueued)
	}
	d.delays = append(d.delays, Delay{
		JobID:   e.job.ID,
		User:    e.job.User,
		Queued:  queued,
		Resumed: resumed,
	})
	d.obsDelay.ObserveDuration(queued)
}
