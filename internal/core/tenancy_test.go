package core

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"github.com/ffdl/ffdl/internal/sched"
	"github.com/ffdl/ffdl/internal/sim"
	"github.com/ffdl/ffdl/internal/tenant"
)

// waitUntil polls cond on the wall clock (RPC reads work regardless of
// the platform clock) until it holds or the deadline passes.
func waitUntil(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func historyHas(history []StatusEntry, s JobStatus) bool {
	for _, h := range history {
		if h.Status == s {
			return true
		}
	}
	return false
}

// TestOverQuotaSubmissionQueuesAndDispatchesEventDriven is the tentpole
// acceptance test, on a simulated clock: an over-capacity submission is
// not rejected — it reaches QUEUED with a queue position, and when
// capacity frees it is dispatched event-driven, orders of magnitude
// faster than the dispatcher's resync interval.
func TestOverQuotaSubmissionQueuesAndDispatchesEventDriven(t *testing.T) {
	fc := sim.NewFakeClock(time.Unix(0, 0))
	fc.StartAutoAdvance(15 * time.Millisecond)
	t.Cleanup(fc.StopAutoAdvance)

	resync := 300 * time.Second // dispatch must never wait for this
	cfg := Config{
		Clock:             fc,
		Seed:              7,
		PollInterval:      100 * time.Millisecond,
		SchedulerInterval: 100 * time.Millisecond,
		ResyncInterval:    100 * time.Millisecond,
		RendezvousTimeout: 10 * time.Second,
		Tenancy: &TenancyConfig{
			Quotas: []tenant.Record{
				{User: "alice", Tier: sched.TierPaid, GPUs: 4},
			},
			ResyncInterval: resync,
		},
	}
	p, err := NewPlatform(cfg)
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	t.Cleanup(p.Stop)
	p.AddNode("node0", "K80", 4, 32, 256<<10)
	p.Store.EnsureBucket("datasets")
	if err := p.Store.Put("datasets", "mnist/shard-0", bytes.Repeat([]byte{1}, 1<<20)); err != nil {
		t.Fatal(err)
	}

	c := p.Client()
	ctx := context.Background()
	m := testManifest()
	m.GPUsPerLearner = 4 // one job owns the whole 4-GPU budget

	j1, err := c.Submit(ctx, m)
	if err != nil {
		t.Fatalf("submit j1: %v", err)
	}
	// j1 is in quota: it must dispatch and start running.
	waitUntil(t, "j1 leaves the queue", 10*time.Second, func() bool {
		r, err := c.Status(ctx, j1)
		return err == nil && r.Status != StatusQueued
	})

	// j2 exceeds alice's quota with the budget consumed: it queues at
	// position 1 instead of being rejected.
	j2, err := c.Submit(ctx, m)
	if err != nil {
		t.Fatalf("over-quota submit was rejected: %v", err)
	}
	waitUntil(t, "j2 queued with a position", 10*time.Second, func() bool {
		r, err := c.Status(ctx, j2)
		return err == nil && r.Status == StatusQueued && r.QueuePos == 1
	})

	// Both jobs complete; j2 rides the capacity freed by j1.
	ctxWait, cancel := context.WithTimeout(ctx, 120*time.Second)
	defer cancel()
	if st, err := c.WaitForStatus(ctxWait, j1, StatusCompleted, cfg.PollInterval); err != nil || st != StatusCompleted {
		t.Fatalf("j1 = %v, err %v", st, err)
	}
	if st, err := c.WaitForStatus(ctxWait, j2, StatusCompleted, cfg.PollInterval); err != nil || st != StatusCompleted {
		t.Fatalf("j2 = %v, err %v", st, err)
	}

	// Event-driven dispatch: j2's PENDING transition must land within a
	// sliver of j1's terminal transition in *virtual* time — not after a
	// resync tick.
	r1, _ := c.Status(ctx, j1)
	r2, _ := c.Status(ctx, j2)
	var j1Done, j2Pending time.Time
	for _, h := range r1.History {
		if h.Status == StatusCompleted {
			j1Done = h.Time
		}
	}
	for _, h := range r2.History {
		if h.Status == StatusPending {
			j2Pending = h.Time
		}
	}
	if j1Done.IsZero() || j2Pending.IsZero() {
		t.Fatalf("missing transitions: j1=%+v j2=%+v", r1.History, r2.History)
	}
	lat := j2Pending.Sub(j1Done)
	t.Logf("dispatch latency after capacity freed: %v virtual (resync interval %v)", lat, resync)
	if lat >= resync/100 {
		t.Fatalf("dispatch took %v virtual — waited for something slower than events (resync %v)", lat, resync)
	}
	if st := p.Dispatcher.Stats(); st.Dispatched != 2 {
		t.Fatalf("dispatcher stats = %+v, want 2 dispatches", st)
	}
}

// TestPreemptionCheckpointsRequeuesAndResumes drives the §3.6 story end
// to end: a free-tier job holding the cluster is checkpointed and
// halted when the quota owner's in-quota job arrives, requeued at the
// head, resumed from its checkpoint once capacity frees, and completes.
func TestPreemptionCheckpointsRequeuesAndResumes(t *testing.T) {
	p := newTestPlatform(t, func(c *Config) {
		c.TimeCompression = 2e-3 // the free job must actually hold GPUs a while
		c.Tenancy = &TenancyConfig{
			Quotas: []tenant.Record{
				{User: "freeloader", Tier: sched.TierFree, GPUs: 1},
				{User: "payer", Tier: sched.TierPaid, GPUs: 8},
			},
		}
	})
	c := p.Client()
	ctx := context.Background()

	mf := testManifest()
	mf.User = "freeloader"
	mf.Learners = 2
	mf.GPUsPerLearner = 4 // the whole 8-GPU cluster, far over quota
	mf.Iterations = 200
	mf.CheckpointEvery = 10
	free, err := c.Submit(ctx, mf)
	if err != nil {
		t.Fatalf("submit free job: %v", err)
	}
	// Wait until the free job has real progress behind a checkpoint, so
	// the preemption provably resumes from it.
	waitUntil(t, "free job checkpointed", 20*time.Second, func() bool {
		objs, err := p.Store.List("ffdl-results", free+"/checkpoints/")
		return err == nil && len(objs) > 0
	})

	mp := testManifest()
	mp.User = "payer"
	mp.Learners = 2
	mp.GPUsPerLearner = 4 // in quota for payer
	paid, err := c.Submit(ctx, mp)
	if err != nil {
		t.Fatalf("submit paid job: %v", err)
	}

	// The free job is checkpoint-halted to make room.
	waitUntil(t, "free job halted by preemption", 20*time.Second, func() bool {
		r, err := c.Status(ctx, free)
		return err == nil && (r.Status == StatusHalted || historyHas(r.History, StatusHalted))
	})
	waitStatus(t, c, paid, StatusCompleted, 60*time.Second)

	// The victim resumes from its checkpoint and completes.
	waitStatus(t, c, free, StatusCompleted, 60*time.Second)
	r, err := c.Status(ctx, free)
	if err != nil {
		t.Fatal(err)
	}
	if !historyHas(r.History, StatusHalted) || !historyHas(r.History, StatusResumed) {
		t.Fatalf("victim history missing HALTED/RESUMED: %+v", r.History)
	}
	logs, _ := c.Logs(ctx, free)
	resumed := false
	for _, l := range logs {
		if strings.Contains(l.Text, "resuming from checkpoint") {
			resumed = true
			break
		}
	}
	if !resumed {
		t.Fatal("victim did not resume from a checkpoint")
	}
	st := p.Dispatcher.Stats()
	if st.Preempted == 0 || st.Requeued == 0 || st.Resumed == 0 {
		t.Fatalf("dispatcher stats = %+v, want preempt/requeue/resume all nonzero", st)
	}
	if p.Admission.Preemptions() == 0 {
		t.Fatal("admission controller counted no preemptions")
	}
	// All footprints released at the end.
	waitUntil(t, "admission drained", 10*time.Second, func() bool {
		return p.Admission.AdmittedGPUs() == 0
	})
}

// TestQuotaAPIRoundTrip exercises Client.Quota/SetQuota/Tenants and the
// dispatcher picking up a runtime quota write.
func TestQuotaAPIRoundTrip(t *testing.T) {
	p := newTestPlatform(t, func(c *Config) {
		c.Tenancy = &TenancyConfig{
			Quotas: []tenant.Record{{User: "alice", Tier: sched.TierPaid, GPUs: 4}},
		}
	})
	c := p.Client()
	ctx := context.Background()

	rec, inUse, err := c.Quota(ctx, "alice")
	if err != nil || rec.GPUs != 4 || rec.Tier != sched.TierPaid || inUse != 0 {
		t.Fatalf("Quota(alice) = %+v inUse=%d err=%v", rec, inUse, err)
	}
	if _, _, err := c.Quota(ctx, "nobody"); err == nil {
		t.Fatal("Quota for unknown tenant succeeded")
	}
	// A user without a tenant record cannot submit.
	m := testManifest()
	m.User = "bob"
	if _, err := c.Submit(ctx, m); err == nil {
		t.Fatal("submit without tenant record accepted")
	}
	if err := c.SetQuota(ctx, tenant.Record{User: "bob", Tier: sched.TierFree, GPUs: 2}); err != nil {
		t.Fatal(err)
	}
	list, err := c.Tenants(ctx)
	if err != nil || len(list) != 2 {
		t.Fatalf("Tenants = %+v err=%v", list, err)
	}
	// The quota reaches the admission controller via the change feed.
	waitUntil(t, "quota propagated", 5*time.Second, func() bool {
		q, ok := p.Admission.Quota("bob")
		return ok && q.GPUs == 2
	})
	// And bob can now run a job end to end through the queue.
	jobID, err := c.Submit(ctx, m)
	if err != nil {
		t.Fatalf("submit after quota: %v", err)
	}
	waitStatus(t, c, jobID, StatusCompleted, 30*time.Second)
}

// TestLegacyAdmissionReleasesOnTerminal pins the accounting-leak fix in
// the pre-tenancy mode: footprints admitted at submit time are released
// on every terminal transition, driven from the status bus.
func TestLegacyAdmissionReleasesOnTerminal(t *testing.T) {
	adm := sched.NewAdmission(8)
	adm.SetQuota(sched.UserQuota{User: "alice", Tier: sched.TierPaid, GPUs: 8})
	p := newTestPlatform(t, func(c *Config) {
		c.Admission = adm
	})
	c := p.Client()
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		m := testManifest()
		m.GPUsPerLearner = 4
		jobID, err := c.Submit(ctx, m)
		if err != nil {
			t.Fatalf("submit %d: %v (admission leaked?)", i, err)
		}
		waitStatus(t, c, jobID, StatusCompleted, 30*time.Second)
		waitUntil(t, "footprint released", 10*time.Second, func() bool {
			return adm.Usage("alice") == 0
		})
	}
	if adm.AdmittedGPUs() != 0 {
		t.Fatalf("admitted after all jobs done = %d", adm.AdmittedGPUs())
	}
}
