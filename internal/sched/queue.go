package sched

import (
	"sort"
	"time"
)

// QueuedGang is a gang waiting for dispatch.
type QueuedGang struct {
	Gang *Gang
	// Arrived is the submission time, for FCFS ordering and queue-delay
	// accounting (Fig. 3 counts jobs queued > 15 min).
	Arrived time.Time
	seq     uint64
}

// Queue implements FfDL's dispatch order (§3.6): strict FCFS; when
// multiple jobs arrive at the same instant the largest gang goes first.
type Queue struct {
	items []*QueuedGang
	seq   uint64
}

// Push enqueues a gang.
func (q *Queue) Push(g *Gang, arrived time.Time) {
	q.seq++
	q.items = append(q.items, &QueuedGang{Gang: g, Arrived: arrived, seq: q.seq})
	q.reorder()
}

// reorder maintains FCFS order with largest-gang-first among
// same-instant arrivals.
func (q *Queue) reorder() {
	sort.SliceStable(q.items, func(i, j int) bool {
		a, b := q.items[i], q.items[j]
		if !a.Arrived.Equal(b.Arrived) {
			return a.Arrived.Before(b.Arrived)
		}
		ga, gb := a.Gang.GPUDemand(), b.Gang.GPUDemand()
		if ga != gb {
			return ga > gb // largest gang first
		}
		return a.seq < b.seq
	})
}

// Len returns the queue depth.
func (q *Queue) Len() int { return len(q.items) }

// Peek returns the head without removing it, or nil.
func (q *Queue) Peek() *QueuedGang {
	if len(q.items) == 0 {
		return nil
	}
	return q.items[0]
}

// Pop removes and returns the head, or nil.
func (q *Queue) Pop() *QueuedGang {
	if len(q.items) == 0 {
		return nil
	}
	head := q.items[0]
	q.items = q.items[1:]
	return head
}

// Remove deletes a queued gang by job id; it reports whether it was
// present (user-initiated termination of a queued job).
func (q *Queue) Remove(jobID string) bool {
	for i, it := range q.items {
		if it.Gang.JobID == jobID {
			q.items = append(q.items[:i], q.items[i+1:]...)
			return true
		}
	}
	return false
}

// Items returns the queue contents in dispatch order (copy).
func (q *Queue) Items() []*QueuedGang {
	out := make([]*QueuedGang, len(q.items))
	copy(out, q.items)
	return out
}

// Dispatcher drains a Queue against cluster state using a gang policy.
type Dispatcher struct {
	// Policy places gangs.
	Policy GangPolicy
	// Backfill, when true, lets jobs behind a blocked head start if they
	// fit (not FfDL's production default; kept for ablation).
	Backfill bool
}

// DispatchResult records one placement decision.
type DispatchResult struct {
	Gang        *Gang
	Assignments []Assignment
	QueuedFor   time.Duration
}

// Dispatch pops as many gangs as currently fit, in FCFS order, applying
// assignments to cs. It stops at the first gang that does not fit
// (unless Backfill). It returns the placements made and, for a blocked
// head, the failure.
func (d *Dispatcher) Dispatch(q *Queue, cs *ClusterState, now time.Time) ([]DispatchResult, *Failure) {
	var out []DispatchResult
	var headFail *Failure
	i := 0
	for i < len(q.items) {
		item := q.items[i]
		as, fail := d.Policy.PlaceGang(item.Gang, cs)
		if fail != nil {
			if headFail == nil {
				headFail = fail
			}
			if !d.Backfill {
				break
			}
			i++
			continue
		}
		for j, a := range as {
			cs.Assign(a.Node, item.Gang.Pods[j].Demand)
		}
		out = append(out, DispatchResult{
			Gang:        item.Gang,
			Assignments: as,
			QueuedFor:   now.Sub(item.Arrived),
		})
		q.items = append(q.items[:i], q.items[i+1:]...)
	}
	return out, headFail
}
