package kube

import (
	"sync"
)

// kubelet runs the pods bound to one node: it transitions them
// Pending→Running after the container start delay, executes their
// Runtime, and reports heartbeats. Crashing the kubelet models a worker
// failure: heartbeats stop and every process on the node dies.
type kubelet struct {
	cluster *Cluster
	node    string

	mu      sync.Mutex
	crashed bool
	// running tracks stop channels for node-crash kill, keyed by pod
	// UID so overlapping incarnations of one pod name cannot shadow
	// each other.
	running map[uint64]*podStop

	quit chan struct{}
	wg   sync.WaitGroup
}

func newKubelet(c *Cluster, node string) *kubelet {
	return &kubelet{
		cluster: c,
		node:    node,
		running: make(map[uint64]*podStop),
		quit:    make(chan struct{}),
	}
}

func (k *kubelet) start() {
	k.wg.Add(1)
	go func() {
		defer k.wg.Done()
		k.heartbeatLoop()
	}()
}

// heartbeatLoop reports node health; a crashed kubelet stays silent.
func (k *kubelet) heartbeatLoop() {
	ticker := k.cluster.cfg.Clock.NewTicker(k.cluster.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-k.quit:
			return
		case <-k.cluster.stopCh:
			return
		case <-ticker.C:
			k.mu.Lock()
			crashed := k.crashed
			k.mu.Unlock()
			if crashed {
				continue
			}
			now := k.cluster.cfg.Clock.Now()
			k.cluster.store.UpdateNode(k.node, func(n *Node) {
				n.LastHeartbeat = now
				n.Ready = true
			})
		}
	}
}

// crash kills everything on the node and silences heartbeats.
func (k *kubelet) crash() {
	k.mu.Lock()
	k.crashed = true
	stops := make([]*podStop, 0, len(k.running))
	for uid, stop := range k.running {
		stops = append(stops, stop)
		delete(k.running, uid)
		k.cluster.unregisterPodStop(uid)
	}
	k.mu.Unlock()
	for _, stop := range stops {
		stop.close()
	}
}

func (k *kubelet) restore() {
	k.mu.Lock()
	k.crashed = false
	k.mu.Unlock()
}

func (k *kubelet) isCrashed() bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.crashed
}

func (k *kubelet) stop() {
	select {
	case <-k.quit:
	default:
		close(k.quit)
	}
	k.crash()
	k.wg.Wait()
}

// kubeletStartLoop (on the cluster) watches for pods that are bound but
// not yet started and hands them to their node's kubelet. A single loop
// keeps goroutine count low at cluster sizes of hundreds of nodes.
func (c *Cluster) kubeletStartLoop(events <-chan WatchEvent) {
	ticker := c.cfg.Clock.NewTicker(c.cfg.ResyncInterval)
	defer ticker.Stop()
	// started maps pod name -> UID of the incarnation already handed to
	// a kubelet, so a recreated pod (same name, fresh UID) starts again
	// while duplicate watch events for one incarnation are ignored.
	// Entries are pruned only on the resync tick, never on WatchDeleted:
	// a queued Deleted event for the previous incarnation can arrive
	// after its replacement was already started, and re-arming the name
	// then would double-start the replacement.
	started := make(map[string]uint64)
	for {
		select {
		case <-c.stopCh:
			return
		case ev := <-events:
			if p, ok := ev.Object.(*Pod); ok && ev.Type != WatchDeleted {
				c.maybeStartPod(p, started)
			}
		case <-ticker.C:
			pods := c.store.ListPods("")
			live := make(map[string]bool, len(pods))
			for _, p := range pods {
				live[p.Name] = true
				c.maybeStartPod(p, started)
			}
			// Prune names with no pod object. Safe against recreation
			// races because this loop is the only writer of started:
			// any entry present here was recorded before the List above,
			// so its pod (if still wanted) is in the snapshot.
			for name := range started {
				if !live[name] {
					delete(started, name)
				}
			}
		}
	}
}

func (c *Cluster) maybeStartPod(p *Pod, started map[string]uint64) {
	if p.Status.Node == "" || p.Status.Phase != PodPending || started[p.Name] == p.UID {
		return
	}
	c.mu.Lock()
	kl := c.kubelets[p.Status.Node]
	c.mu.Unlock()
	if kl == nil || kl.isCrashed() {
		return
	}
	started[p.Name] = p.UID
	kl.wg.Add(1)
	go func(p *Pod) {
		defer kl.wg.Done()
		kl.runPod(p)
	}(p.Clone())
}

// runPod executes one pod's lifecycle on the node.
func (k *kubelet) runPod(p *Pod) {
	c := k.cluster
	// Container start: image pull, volume binds, container create. This
	// is the component Table 3 measures (learners take 10-20s because
	// "binding to the Object Storage Service and persistent NFS volumes
	// takes longer").
	c.cfg.Clock.Sleep(c.cfg.StartDelay(p.Spec.Type))

	stop := newPodStop()
	k.mu.Lock()
	if k.crashed {
		k.mu.Unlock()
		return
	}
	if _, dup := k.running[p.UID]; dup {
		// Another goroutine already runs this incarnation (defense in
		// depth against double dispatch); a second registration would
		// shadow its stop channel and make it unkillable.
		k.mu.Unlock()
		return
	}
	k.running[p.UID] = stop
	k.mu.Unlock()
	if !c.registerPodStop(p.UID, stop) {
		return
	}

	now := c.cfg.Clock.Now()
	updated := false
	alive := c.store.UpdatePod(p.Name, func(sp *Pod) {
		if sp.UID != p.UID || sp.Terminated() {
			return // replaced by a newer incarnation, or killed mid-start
		}
		updated = true
		sp.Status.Phase = PodRunning
		sp.Status.StartedAt = now
	})
	if !alive || !updated {
		// Pod deleted, replaced or killed while starting.
		k.forget(p.UID, stop)
		c.unregisterPodStop(p.UID)
		return
	}
	c.recordEvent(EventNormal, "Started", KindPod, p.Name, p.Spec.Type, "container started on "+k.node)

	exit := 0
	rt := c.runtime(p.Spec.Runtime)
	if rt != nil {
		exit = rt(&PodContext{Pod: p, Node: k.node, Stop: stop.ch, Cluster: c, Clock: c.cfg.Clock})
	} else {
		// Default process: block until killed.
		<-stop.ch
		exit = 137
	}
	k.forget(p.UID, stop)

	select {
	case <-stop.ch:
		// Killed (node crash, eviction, or KillPod): pod is Failed
		// unless it already finished. Guarded by UID so a dying
		// incarnation never clobbers its same-named replacement.
		finished := c.cfg.Clock.Now()
		c.store.UpdatePod(p.Name, func(sp *Pod) {
			if sp.UID != p.UID || sp.Terminated() {
				return
			}
			sp.Status.Phase = PodFailed
			sp.Status.ExitCode = 137
			sp.Status.Reason = "Killed"
			sp.Status.FinishedAt = finished
		})
		return
	default:
	}
	phase := PodSucceeded
	if exit != 0 {
		phase = PodFailed
	}
	finished := c.cfg.Clock.Now()
	c.store.UpdatePod(p.Name, func(sp *Pod) {
		if sp.UID != p.UID {
			return
		}
		sp.Status.Phase = phase
		sp.Status.ExitCode = exit
		sp.Status.FinishedAt = finished
	})
	c.unregisterPodStop(p.UID)
}

// forget removes this incarnation's stop entry.
func (k *kubelet) forget(uid uint64, stop *podStop) {
	k.mu.Lock()
	if k.running[uid] == stop {
		delete(k.running, uid)
	}
	k.mu.Unlock()
}
