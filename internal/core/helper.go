package core

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/ffdl/ffdl/internal/kube"
	"github.com/ffdl/ffdl/internal/sim"
)

// The helper pod (§3.8) contains four logical containers sharing the
// job's NFS volume with the learners:
//
//   - load-data: validates access to the training data,
//   - controller: reads learner status/exit files from the volume and
//     records them in etcd, detecting completion and failure,
//   - log-collector: tails learner stdout into the Training Metrics
//     Service,
//   - store-results: copies collected logs/results to the user's
//     result bucket when the job finishes.
//
// It is deployed separately from the learners so it survives learner
// crashes, and all its observations flow through (NFS, etcd) making
// status updates resilient to both controller and Guardian crashes.

// runHelper is the helper pod's process.
func (p *Platform) runHelper(ctx *kube.PodContext) int {
	jobID := ctx.Pod.Spec.RuntimeArgs["job"]
	res, ok := p.getResources(jobID)
	if !ok {
		return 1 // torn down before we started
	}
	m := res.manifest

	// load-data: verify the dataset is reachable with the job's
	// credentials, so data problems surface before GPUs are wasted.
	if m.DataBucket != "" {
		if _, err := p.Store.List(m.DataBucket, m.DataPrefix); err != nil {
			p.Metrics.AppendLog(LogLine{
				JobID: jobID, Learner: -1, Time: p.clock.Now(),
				Text: fmt.Sprintf("[load-data] dataset inaccessible: %v", err),
			})
			p.tracedPut(jobID, keyDone(jobID), []byte("3")) //nolint:errcheck
			<-ctx.Stop
			return 137
		}
		res.volume.WriteFile("helper/data-ready", []byte("1")) //nolint:errcheck
	}

	lastStatus := make(map[int]string)
	exitSeen := make(map[int]int)
	logOffsets := make(map[int]int)
	doneWritten := false

	// The controller wakes on volume writes — learners publish status,
	// exit and log files there — so observations reach etcd at event
	// latency. The slow ticker is a safety net (the volume watch buffer
	// is bounded and drops under burst; a scan is level-triggered and
	// always converges). The watch channel closes when the volume is
	// released at teardown; by then the pod is being killed via Stop.
	writes := res.volume.Watch()
	ticker := p.clock.NewTicker(p.cfg.PollInterval * 10)
	defer ticker.Stop()
	for {
		// controller: mirror learner volume files into etcd.
		for ord := 0; ord < m.Learners; ord++ {
			statusPath := fmt.Sprintf("learners/%d/status", ord)
			if data, err := res.volume.ReadFile(statusPath); err == nil {
				if s := string(data); s != lastStatus[ord] {
					lastStatus[ord] = s
					p.tracedPut(jobID, keyLearnerStatus(jobID, ord), data) //nolint:errcheck
				}
			}
			exitPath := fmt.Sprintf("learners/%d/exit", ord)
			if _, seen := exitSeen[ord]; !seen {
				if data, err := res.volume.ReadFile(exitPath); err == nil {
					code, convErr := strconv.Atoi(strings.TrimSpace(string(data)))
					if convErr == nil {
						exitSeen[ord] = code
						p.tracedPut(jobID, keyLearnerExit(jobID, ord), data) //nolint:errcheck
					}
				}
			}
			// log-collector: ship new stdout lines to the metrics
			// service.
			p.collectLogs(jobID, ord, res, logOffsets)
		}

		if !doneWritten {
			// Failure fast-path: any graceful nonzero exit fails the job.
			for _, code := range exitSeen {
				if code != 0 {
					p.storeResults(jobID, m)
					p.tracedPut(jobID, keyDone(jobID), []byte(strconv.Itoa(code))) //nolint:errcheck
					doneWritten = true
					break
				}
			}
			if !doneWritten && len(exitSeen) == m.Learners {
				// store-results, then signal completion.
				p.storeResults(jobID, m)
				p.tracedPut(jobID, keyDone(jobID), []byte("0")) //nolint:errcheck
				doneWritten = true
			}
		}

		select {
		case <-ctx.Stop:
			return 137
		case _, ok := <-writes:
			// Coalesce write bursts into one scan.
			if !ok || sim.Coalesce(writes, nil) {
				writes = nil // volume released; ticker + Stop remain
			}
		case <-ticker.C:
		}
	}
}

// collectLogs tails one learner's stdout from the shared volume.
func (p *Platform) collectLogs(jobID string, ord int, res *jobResources, offsets map[int]int) {
	logPath := fmt.Sprintf("learners/%d/stdout.log", ord)
	data, err := res.volume.ReadFile(logPath)
	if err != nil {
		return
	}
	off := offsets[ord]
	if len(data) <= off {
		return
	}
	chunk := string(data[off:])
	consumed := strings.LastIndexByte(chunk, '\n') + 1
	if consumed == 0 {
		return // partial line; wait for more
	}
	offsets[ord] = off + consumed
	for _, line := range strings.Split(strings.TrimRight(chunk[:consumed], "\n"), "\n") {
		p.Metrics.AppendLog(LogLine{JobID: jobID, Learner: ord, Time: p.clock.Now(), Text: line})
	}
}

// storeResults copies the job's collected logs to the result bucket —
// the store-results container's final act.
func (p *Platform) storeResults(jobID string, m Manifest) {
	bucket := m.ResultBucket
	if bucket == "" {
		bucket = "ffdl-results"
	}
	var sb strings.Builder
	for _, line := range p.Metrics.Logs(jobID) {
		sb.WriteString(line.Text)
		sb.WriteByte('\n')
	}
	p.Store.EnsureBucket(bucket)
	p.Store.Put(bucket, jobID+"/logs/training.log", []byte(sb.String())) //nolint:errcheck
}
