package obs

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Prom renders the snapshot in the Prometheus text exposition format
// (version 0.0.4): counters as ffdl_<name>_total, gauges as
// ffdl_<name>, histograms as the standard _bucket{le=...}/_sum/_count
// triple with cumulative bucket counts. Dotted instrument names are
// mangled mechanically (dots -> underscores) under the ffdl_ prefix,
// and output is sorted by name, so the format is golden-testable.
func (s Snapshot) Prom() string {
	var b strings.Builder
	for _, c := range s.Counters {
		n := promName(c.Name) + "_total"
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", n, n, c.Value)
	}
	for _, g := range s.Gauges {
		n := promName(g.Name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", n, n, g.Value)
	}
	for _, h := range s.Histograms {
		n := promName(h.Name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", n)
		var cum uint64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", n, promFloat(bound), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", n, h.Count)
		fmt.Fprintf(&b, "%s_sum %s\n", n, promFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", n, h.Count)
	}
	return b.String()
}

// promName mangles a dotted instrument name into a legal Prometheus
// metric name under the ffdl_ namespace.
func promName(name string) string {
	return "ffdl_" + strings.ReplaceAll(name, ".", "_")
}

// promFloat formats a float the way Prometheus clients do: shortest
// round-trip representation, no exponent for common magnitudes.
func promFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatFloat(f, 'f', 1, 64)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}
