package sched

import (
	"fmt"
	"testing"
	"testing/quick"

	"github.com/ffdl/ffdl/internal/sim"
)

// bruteFeasible is the pre-index reference implementation: scan every
// node, first-failing-predicate reason accounting.
func bruteFeasible(p *PodSpec, cs *ClusterState) (map[string]bool, FailureReason) {
	out := map[string]bool{}
	counts := map[FailureReason]int{}
	for _, n := range cs.Nodes {
		switch {
		case n.Unschedulable:
			counts[ReasonUnschedulable]++
		case p.GPUType != "" && n.GPUType != p.GPUType:
			counts[ReasonNodeSelector]++
		case p.Demand.GPUs > n.Free.GPUs:
			counts[ReasonInsufficientGPU]++
		case !n.Free.Fits(p.Demand):
			counts[ReasonNoNodesAvailable]++
		default:
			out[n.Name] = true
		}
	}
	if len(out) > 0 {
		return out, ""
	}
	best := ReasonNoNodesAvailable
	bestN := -1
	for r, c := range counts {
		if c > bestN || (c == bestN && r < best) {
			best, bestN = r, c
		}
	}
	return nil, best
}

// churnState builds a cluster and applies a deterministic churn of
// assigns, releases and cordons derived from ops.
func churnState(ops []uint8) *ClusterState {
	types := []string{"K80", "P100", "V100"}
	nodes := make([]*Node, 12)
	for i := range nodes {
		cap := Resources{MilliCPU: 16000, MemoryMB: 96000, GPUs: 4}
		nodes[i] = &Node{Name: fmt.Sprintf("n%02d", i), GPUType: types[i%3], Capacity: cap, Free: cap}
	}
	cs := NewClusterState(nodes)
	for k, op := range ops {
		name := fmt.Sprintf("n%02d", int(op)%12)
		demand := Resources{MilliCPU: 1000, MemoryMB: 4000, GPUs: int(op) / 12 % 3}
		switch k % 4 {
		case 0, 1:
			if n := cs.Node(name); n != nil && n.Free.Fits(demand) {
				cs.Assign(name, demand)
			}
		case 2:
			if n := cs.Node(name); n != nil && n.Pods > 0 && n.Capacity.Sub(n.Free).Fits(demand) {
				cs.Release(name, demand)
			}
		case 3:
			cs.SetSchedulable(name, op%2 == 0)
		}
	}
	return cs
}

// TestIndexMatchesBruteForceProperty: after arbitrary churn, the
// indexed FeasibleNodes must return exactly the brute-force feasible
// set, and the same dominant failure reason when empty.
func TestIndexMatchesBruteForceProperty(t *testing.T) {
	f := func(ops []uint8, gpus, typePick uint8) bool {
		cs := churnState(ops)
		gpuType := ""
		if typePick%4 != 0 {
			gpuType = []string{"K80", "P100", "V100"}[typePick%3]
		}
		p := &PodSpec{Name: "p", GPUType: gpuType,
			Demand: Resources{MilliCPU: 2000, MemoryMB: 8000, GPUs: int(gpus % 6)}}
		wantSet, wantReason := bruteFeasible(p, cs)
		got, gotReason := cs.FeasibleNodes(p)
		if len(got) != len(wantSet) {
			return false
		}
		for _, n := range got {
			if !wantSet[n.Name] {
				return false
			}
		}
		return len(got) > 0 || gotReason == wantReason
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestBestPackedIsOptimalProperty: BestPacked must return a feasible
// node that no other feasible node beats under Pack's total
// preference (packOrderLess), despite examining only index prefixes.
func TestBestPackedIsOptimalProperty(t *testing.T) {
	f := func(ops []uint8, gpus uint8) bool {
		cs := churnState(ops)
		p := &PodSpec{Name: "p", Demand: Resources{MilliCPU: 2000, MemoryMB: 8000, GPUs: int(gpus % 5)}}
		wantSet, _ := bruteFeasible(p, cs)
		got, _ := cs.BestPacked(p)
		if got == nil {
			return len(wantSet) == 0
		}
		if !wantSet[got.Name] {
			return false
		}
		for name := range wantSet {
			if n := cs.Node(name); n != got && packOrderLess(n, got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointRollbackRestoresState: speculation under a checkpoint
// must leave free capacity, pod counts and index order untouched.
func TestCheckpointRollbackRestoresState(t *testing.T) {
	cs := churnState([]uint8{3, 17, 40, 99, 128, 7, 54})
	snapshot := func() map[string]Node {
		out := map[string]Node{}
		for _, n := range cs.Nodes {
			out[n.Name] = *n
		}
		return out
	}
	before := snapshot()
	mark := cs.Checkpoint()
	cs.Assign("n00", Resources{MilliCPU: 1000, GPUs: 2})
	cs.Assign("n04", Resources{MilliCPU: 500, MemoryMB: 100, GPUs: 1})
	nested := cs.Checkpoint()
	cs.Release("n04", Resources{GPUs: 1})
	cs.Rollback(nested)
	cs.Assign("n07", Resources{GPUs: 3})
	cs.Rollback(mark)
	after := snapshot()
	for name, want := range before {
		if after[name] != want {
			t.Fatalf("node %s not restored: %+v != %+v", name, after[name], want)
		}
	}
	// Index order intact: a Pack query still sees the right fullest
	// node and the examined counter keeps counting.
	cs.TakeExamined()
	if _, reason := cs.BestPacked(&PodSpec{Name: "p", Demand: Resources{GPUs: 1}}); reason != "" {
		t.Fatalf("post-rollback query failed: %v", reason)
	}
	if cs.ExaminedNodes() == 0 {
		t.Fatal("examined counter not counting after rollback")
	}
}

// TestCandidatesLimitIsFullestFirst: the candidate cap must keep the
// fullest feasible machines, not an arbitrary subset.
func TestCandidatesLimitIsFullestFirst(t *testing.T) {
	nodes := make([]*Node, 8)
	for i := range nodes {
		cap := Resources{MilliCPU: 16000, MemoryMB: 96000, GPUs: 8}
		nodes[i] = &Node{Name: fmt.Sprintf("n%d", i), GPUType: "K80", Capacity: cap, Free: cap}
	}
	cs := NewClusterState(nodes)
	for i := 0; i < 8; i++ { // n0 fullest ... n7 empty
		for g := 0; g < 7-i; g++ {
			cs.Assign(fmt.Sprintf("n%d", i), Resources{GPUs: 1})
		}
	}
	got, _ := cs.Candidates(&PodSpec{Name: "p", Demand: Resources{GPUs: 1}}, 3)
	if len(got) != 3 {
		t.Fatalf("candidates = %d, want 3", len(got))
	}
	for i, n := range got {
		want := fmt.Sprintf("n%d", i)
		if n.Name != want {
			t.Fatalf("candidate %d = %s (free %d), want %s", i, n.Name, n.Free.GPUs, want)
		}
	}
}

// TestPackExaminesFewNodesOnLargeCluster pins the scalability property
// directly: placing on a 2000-node homogeneous cluster must examine a
// handful of nodes, not thousands.
func TestPackExaminesFewNodesOnLargeCluster(t *testing.T) {
	nodes := make([]*Node, 2000)
	for i := range nodes {
		cap := Resources{MilliCPU: 16000, MemoryMB: 96000, GPUs: 4}
		nodes[i] = &Node{Name: fmt.Sprintf("n%04d", i), GPUType: "K80", Capacity: cap, Free: cap}
	}
	cs := NewClusterState(nodes)
	cs.TakeExamined()
	for i := 0; i < 100; i++ {
		p := &PodSpec{Name: fmt.Sprintf("p%d", i), Demand: Resources{MilliCPU: 1000, MemoryMB: 4000, GPUs: 1}}
		node, fail := (Pack{}).PlacePod(p, cs)
		if fail != nil {
			t.Fatal(fail)
		}
		cs.Assign(node, p.Demand)
	}
	examined := cs.ExaminedNodes()
	if examined > 1000 {
		t.Fatalf("100 pack placements on 2000 nodes examined %d nodes; index not pruning", examined)
	}
	t.Logf("100 placements examined %d nodes (%.1f per placement)", examined, float64(examined)/100)
}

// TestReleaseUnknownNodeIsSafe: the live scheduler view may release
// against a node that was just removed.
func TestReleaseUnknownNodeIsSafe(t *testing.T) {
	cs := NewClusterState([]*Node{gpuNode("a", "K80", 4)})
	cs.RemoveNode("a")
	cs.Release("a", Resources{GPUs: 1}) // must not panic
	cs.Assign("ghost", Resources{GPUs: 1})
	if len(cs.Nodes) != 0 {
		t.Fatalf("nodes = %d", len(cs.Nodes))
	}
}

// TestBSACandidateCapStillPlaces: a capped BSA must keep placing and
// packing correctly.
func TestBSACandidateCapStillPlaces(t *testing.T) {
	rng := sim.NewRNG(7)
	bsa := &BSA{Samples: 16, Theta: 4, CandidateCap: 4, RNG: rng}
	cs := cluster(64, 4)
	as, fail := bsa.PlaceGang(gang("j1", 2, 2), cs)
	if fail != nil {
		t.Fatalf("capped BSA failed: %v", fail)
	}
	if as[0].Node != as[1].Node {
		t.Fatalf("capped BSA split a packable gang: %v", as)
	}
}
