package expt

import (
	"fmt"
	"sort"
	"time"

	"github.com/ffdl/ffdl/internal/perf"
)

// The §5.5 scale test: a 680-GPU cluster running ResNet-50/TensorFlow
// jobs over ImageNet1K (~1.3M images) streamed from the object storage
// service. Jobs start staggered in four batches; under heavy load (700
// concurrent jobs) the shared storage/network bandwidth becomes the
// bottleneck, degrading late-starting fast GPUs the most (Fig. 5).

// ScaleBatch describes one start batch (Table 7 rows).
type ScaleBatch struct {
	Name    string
	GPUType perf.GPUType
	// JobsLight / JobsHeavy are the light-load and heavy-load job
	// counts.
	JobsLight int
	JobsHeavy int
	// StartOffset is when the batch begins.
	StartOffset time.Duration
	// WorkImages is each job's training volume. Users size runs to
	// their hardware, so faster GPUs carry proportionally larger
	// workloads; values are calibrated to the paper's light-load
	// runtimes (K80 ≈ 4.8Ks, P100 ≈ 3.2Ks, V100 ≈ 2.4Ks).
	WorkImages float64
}

// Table7 returns the paper's job-mix table.
func Table7() []ScaleBatch {
	return []ScaleBatch{
		{"K80-batch1", perf.K80, 30, 300, 0, 300_000},
		{"K80-batch2", perf.K80, 24, 240, 15 * time.Minute, 305_000},
		{"P100-batch3", perf.P100, 11, 110, 30 * time.Minute, 660_000},
		{"V100-batch4", perf.V100, 5, 50, 32 * time.Minute, 790_000},
	}
}

// Table7Render formats Table 7.
func Table7Render() *Table {
	t := &Table{
		Title:  "Table 7: Light-load (LL) and heavy-load (HL) job mix",
		Header: []string{"GPU-type-batch#", "jobs-LL", "jobs-HL", "start time"},
	}
	for _, b := range Table7() {
		t.Rows = append(t.Rows, []string{
			b.Name, fmt.Sprintf("%d", b.JobsLight), fmt.Sprintf("%d", b.JobsHeavy),
			fmt.Sprintf("after %d min", int(b.StartOffset.Minutes())),
		})
	}
	return t
}

// Figure5Row is one bar pair of Fig. 5.
type Figure5Row struct {
	Batch string
	// LightSeconds / HeavySeconds are mean end-to-end job runtimes.
	LightSeconds float64
	HeavySeconds float64
}

// DegradationPct is the heavy-load slowdown.
func (r Figure5Row) DegradationPct() float64 {
	if r.LightSeconds == 0 {
		return 0
	}
	return 100 * (r.HeavySeconds - r.LightSeconds) / r.LightSeconds
}

// scaleParams calibrate the fluid model.
const (
	// scaleBandwidth is the aggregate storage/network bandwidth shared
	// by all running jobs' input pipelines. Sized so the light load
	// (70 jobs) is compute-bound while the heavy load (700 jobs) is
	// input-bound at its peak — the §5.5 observation that degradation
	// "was mainly due to network capacity and storage throughput
	// limits, and not an inherent limit of FfDL itself".
	scaleBandwidth = 4.5e9 // bytes/sec
	// scaleGPUs caps concurrency: 680 GPUs; heavy load queues the rest.
	scaleGPUs = 680
)

// scaleJob is one simulated job in the fluid model.
type scaleJob struct {
	batch     int
	start     time.Duration
	remaining float64 // images left
	compute   float64 // images/sec when input-unconstrained
	running   bool
	done      bool
	finish    time.Duration
}

// Figure5 runs the scale test under a load scenario ("light" or
// "heavy") and returns per-batch mean runtimes. The fluid model steps
// between events (job start/finish), splitting storage bandwidth
// equally among running jobs and capping each job's throughput at
// min(compute, share/bytes-per-image).
func Figure5() []Figure5Row {
	batches := Table7()
	light := runScale(batches, false)
	heavy := runScale(batches, true)
	rows := make([]Figure5Row, len(batches))
	for i, b := range batches {
		rows[i] = Figure5Row{Batch: b.Name, LightSeconds: light[i], HeavySeconds: heavy[i]}
	}
	return rows
}

// runScale returns the mean end-to-end runtime (seconds) per batch.
func runScale(batches []ScaleBatch, heavy bool) []float64 {
	var jobs []*scaleJob
	for bi, b := range batches {
		n := b.JobsLight
		if heavy {
			n = b.JobsHeavy
		}
		compute := perf.BareMetalThroughput(perf.Config{
			Model: perf.ResNet50, Framework: perf.TensorFlow, GPUType: b.GPUType,
			Learners: 1, GPUsPerL: 1, CPUThreads: 16, BatchSize: 64,
		})
		for k := 0; k < n; k++ {
			jobs = append(jobs, &scaleJob{
				batch: bi, start: b.StartOffset,
				remaining: b.WorkImages, compute: compute,
			})
		}
	}
	// Event-driven fluid simulation.
	now := time.Duration(0)
	const tick = 10 * time.Second
	gpusInUse := 0
	// Start queue in batch order (FCFS).
	pending := append([]*scaleJob(nil), jobs...)
	sort.SliceStable(pending, func(i, j int) bool { return pending[i].start < pending[j].start })

	for {
		// Admit runnable jobs up to GPU capacity.
		for _, j := range pending {
			if j.done || j.running || j.start > now {
				continue
			}
			if gpusInUse >= scaleGPUs {
				break
			}
			j.running = true
			gpusInUse++
		}
		// Count running and integrate progress over one tick.
		running := 0
		for _, j := range jobs {
			if j.running {
				running++
			}
		}
		if running == 0 {
			allDone := true
			for _, j := range jobs {
				if !j.done {
					allDone = false
					break
				}
			}
			if allDone {
				break
			}
			now += tick
			continue
		}
		share := scaleBandwidth / float64(running)
		for _, j := range jobs {
			if !j.running {
				continue
			}
			rate := perf.StorageBoundThroughput(j.compute, share)
			j.remaining -= rate * tick.Seconds()
			if j.remaining <= 0 {
				j.running = false
				j.done = true
				j.finish = now + tick
				gpusInUse--
			}
		}
		now += tick
		if now > 48*time.Hour {
			break // safety bound
		}
	}

	sums := make([]float64, len(batches))
	counts := make([]float64, len(batches))
	for _, j := range jobs {
		if j.done {
			sums[j.batch] += (j.finish - j.start).Seconds()
			counts[j.batch]++
		}
	}
	out := make([]float64, len(batches))
	for i := range out {
		if counts[i] > 0 {
			out[i] = sums[i] / counts[i]
		}
	}
	return out
}

// AggregateHeavyThroughput reports the cluster-wide images/sec at the
// heavy-load steady state (paper: ~54K images/sec, ~837 iterations/sec).
func AggregateHeavyThroughput() (imagesPerSec, itersPerSec float64) {
	// 680 concurrent single-GPU jobs sharing the bandwidth.
	share := scaleBandwidth / 680
	k80 := perf.StorageBoundThroughput(perf.BareMetalThroughput(perf.Config{
		Model: perf.ResNet50, Framework: perf.TensorFlow, GPUType: perf.K80,
		Learners: 1, GPUsPerL: 1, CPUThreads: 16, BatchSize: 64}), share)
	p100 := perf.StorageBoundThroughput(perf.BareMetalThroughput(perf.Config{
		Model: perf.ResNet50, Framework: perf.TensorFlow, GPUType: perf.P100,
		Learners: 1, GPUsPerL: 1, CPUThreads: 16, BatchSize: 64}), share)
	v100 := perf.StorageBoundThroughput(perf.BareMetalThroughput(perf.Config{
		Model: perf.ResNet50, Framework: perf.TensorFlow, GPUType: perf.V100,
		Learners: 1, GPUsPerL: 1, CPUThreads: 16, BatchSize: 64}), share)
	// Table 7 heavy mix: 540 K80, 110 P100, 50 V100 (680 running).
	imagesPerSec = 540*k80 + 110*p100 + 50*v100
	return imagesPerSec, imagesPerSec / 64
}

// Figure5Render formats Fig. 5.
func Figure5Render() *Table {
	rows := Figure5()
	t := &Table{
		Title:  "Figure 5: E2E job runtime by GPU-type, light-load vs heavy-load",
		Header: []string{"Batch", "Light-load (s)", "Heavy-load (s)", "Degradation"},
	}
	for i := len(rows) - 1; i >= 0; i-- { // paper plots V100 first
		r := rows[i]
		t.Rows = append(t.Rows, []string{
			r.Batch, fmt.Sprintf("%.0f", r.LightSeconds), fmt.Sprintf("%.0f", r.HeavySeconds),
			fmt.Sprintf("%.0f%%", r.DegradationPct()),
		})
	}
	img, iters := AggregateHeavyThroughput()
	t.Caption = fmt.Sprintf(
		"Paper: K80 +6-8%%, P100 +24%%, V100 +51%% (staggered starts put V100s at peak load); "+
			"aggregate heavy-load throughput here ~%.0fK images/sec (~%.0f iters/sec; paper ~54K / ~837).",
		img/1000, iters)
	return t
}
