package core

import (
	"fmt"
	"time"

	"github.com/ffdl/ffdl/internal/mongo"
	"github.com/ffdl/ffdl/internal/perf"
)

// Job document layout in MongoDB: "job metadata (identifiers, resource
// requirements, user ids, etc.), as well as job history" (§3.2).

func manifestToDoc(m Manifest) mongo.Doc {
	return mongo.Doc{
		"name":            m.Name,
		"user":            m.User,
		"framework":       string(m.Framework),
		"model":           string(m.Model),
		"command":         m.Command,
		"learners":        m.Learners,
		"gpusPerLearner":  m.GPUsPerLearner,
		"gpuType":         string(m.GPUType),
		"cpus":            m.CPUs,
		"memoryMB":        int(m.MemoryMB),
		"batchSize":       m.BatchSize,
		"iterations":      m.Iterations,
		"checkpointEvery": m.CheckpointEvery,
		"dataBucket":      m.DataBucket,
		"dataPrefix":      m.DataPrefix,
		"resultBucket":    m.ResultBucket,
	}
}

func docToManifest(d mongo.Doc) Manifest {
	getS := func(k string) string {
		s, _ := d[k].(string)
		return s
	}
	getI := func(k string) int {
		switch v := d[k].(type) {
		case int:
			return v
		case int64:
			return int(v)
		case float64:
			return int(v)
		default:
			return 0
		}
	}
	return Manifest{
		Name:            getS("name"),
		User:            getS("user"),
		Framework:       perf.Framework(getS("framework")),
		Model:           perf.Model(getS("model")),
		Command:         getS("command"),
		Learners:        getI("learners"),
		GPUsPerLearner:  getI("gpusPerLearner"),
		GPUType:         perf.GPUType(getS("gpuType")),
		CPUs:            getI("cpus"),
		MemoryMB:        int64(getI("memoryMB")),
		BatchSize:       getI("batchSize"),
		Iterations:      getI("iterations"),
		CheckpointEvery: getI("checkpointEvery"),
		DataBucket:      getS("dataBucket"),
		DataPrefix:      getS("dataPrefix"),
		ResultBucket:    getS("resultBucket"),
	}
}

// JobRecord is the API-facing view of a stored job.
type JobRecord struct {
	ID       string
	Manifest Manifest
	Status   JobStatus
	History  []StatusEntry
}

func docToRecord(d mongo.Doc) JobRecord {
	rec := JobRecord{Manifest: docToManifest(d)}
	rec.ID, _ = d["_id"].(string)
	if s, ok := d["status"].(string); ok {
		rec.Status = JobStatus(s)
	}
	if hist, ok := d["history"].([]any); ok {
		for _, h := range hist {
			var hd map[string]any
			switch v := h.(type) {
			case mongo.Doc:
				hd = v
			case map[string]any:
				hd = v
			default:
				continue
			}
			entry := StatusEntry{}
			if s, ok := hd["status"].(string); ok {
				entry.Status = JobStatus(s)
			}
			if msg, ok := hd["message"].(string); ok {
				entry.Message = msg
			}
			if ts, ok := hd["time"].(string); ok {
				entry.Time, _ = time.Parse(time.RFC3339Nano, ts)
			}
			rec.History = append(rec.History, entry)
		}
	}
	return rec
}

// setJobStatus transitions a job's status in MongoDB, appending to its
// status history, then publishes the transition on the status bus so
// watchers react without polling. Illegal transitions are rejected
// (keeping status updates "dependable", §2) — except that terminal
// states are sticky. Writes are serialized per platform so the bus
// sequence numbers match the MongoDB history exactly.
func (p *Platform) setJobStatus(jobID string, to JobStatus, msg string) error {
	p.statusMu.Lock()
	defer p.statusMu.Unlock()
	doc, err := p.findJob(jobID)
	if err != nil {
		return fmt.Errorf("core: job %s not found: %w", jobID, err)
	}
	from := JobStatus(doc["status"].(string))
	if from == to {
		return nil
	}
	if from.Terminal() {
		return fmt.Errorf("core: job %s already terminal (%s)", jobID, from)
	}
	if !CanTransition(from, to) {
		return fmt.Errorf("core: illegal status transition %s -> %s for %s", from, to, jobID)
	}
	now := p.clock.Now()
	err = p.mongoDo(func() error {
		return p.Jobs.UpdateOne(mongo.Filter{"_id": jobID}, mongo.Update{
			Set: mongo.Doc{"status": string(to), "updated": now.Format(time.RFC3339Nano)},
			Push: map[string]any{"history": map[string]any{
				"status": string(to), "time": now.Format(time.RFC3339Nano), "message": msg,
			}},
		})
	})
	if err != nil {
		return err
	}
	seq := 1
	if hist, ok := doc["history"].([]any); ok {
		seq = len(hist) + 1
	}
	p.bus.Publish(StatusEvent{
		JobID:  jobID,
		Seq:    seq,
		Status: to,
		Entry:  StatusEntry{Status: to, Time: now, Message: msg},
	})
	// Trace the transition with the same clock read the history entry
	// was written with, so the root span's duration equals the job's
	// submit→terminal wall time exactly.
	if to.Terminal() {
		p.Tracer.Finish(jobID, string(to), now)
	} else {
		p.Tracer.Phase(jobID, string(to), now)
	}
	return nil
}

// jobStatus reads a job's current status through the mongo edge policy.
func (p *Platform) jobStatus(jobID string) (JobStatus, error) {
	doc, err := p.findJob(jobID)
	if err != nil {
		return "", err
	}
	s, _ := doc["status"].(string)
	return JobStatus(s), nil
}
