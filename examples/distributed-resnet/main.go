// Distributed training with failure injection: a 4-learner ResNet-50
// job trains across two nodes; mid-run we kill a learner pod and crash
// a worker node, and the platform recovers both times from the latest
// checkpoint (§3.8's robustness story, live).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/ffdl/ffdl"
)

func main() {
	platform, err := ffdl.New(ffdl.Config{
		TimeCompression: 5e-5,
	})
	if err != nil {
		log.Fatalf("boot platform: %v", err)
	}
	defer platform.Stop()
	platform.AddNodes("v100", ffdl.V100, 3, 4)
	if err := platform.SeedDataset("datasets", "imagenet/", 16<<20); err != nil {
		log.Fatalf("seed dataset: %v", err)
	}

	client := platform.Client()
	ctx := context.Background()
	jobID, err := client.Submit(ctx, ffdl.Manifest{
		Name: "resnet50-dist", User: "bob",
		Framework: ffdl.TensorFlow, Model: ffdl.ResNet50,
		Command:  "python train_dist.py --sync",
		Learners: 4, GPUsPerLearner: 2, GPUType: ffdl.V100,
		Iterations: 2000, CheckpointEvery: 100, BatchSize: 128,
		DataBucket: "datasets", DataPrefix: "imagenet/",
	})
	if err != nil {
		log.Fatalf("submit: %v", err)
	}
	fmt.Printf("submitted 4-learner x 2-GPU job %s (gang-scheduled)\n", jobID)

	waitFor := func(want ffdl.JobStatus) {
		wctx, cancel := context.WithTimeout(ctx, 60*time.Second)
		defer cancel()
		got, err := client.WaitForStatus(wctx, jobID, want, 5*time.Millisecond)
		if err != nil {
			log.Fatalf("waiting for %s: %v", want, err)
		}
		fmt.Printf("  job is %s\n", got)
		if got != want && got.Terminal() {
			log.Fatalf("job ended %s while waiting for %s", got, want)
		}
	}
	waitFor(ffdl.StatusProcessing)

	// Wait until the job has checkpointed at least once.
	for {
		objs, err := platform.Store.List("ffdl-results", jobID+"/checkpoints/")
		if err == nil && len(objs) > 0 {
			fmt.Printf("  checkpoint available: %s\n", objs[len(objs)-1].Key)
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Fault 1: kill a learner pod (container crash). The stateful set
	// restarts it; it rejoins and resumes from the checkpoint.
	fmt.Println("injecting fault: killing learner-2's container")
	platform.Kube.KillPod("learner-"+jobID+"-2", "example-chaos")
	waitFor(ffdl.StatusProcessing)

	// Fault 2: crash a whole worker node. Eviction + rescheduling move
	// the affected pods to surviving nodes.
	pod, ok := platform.Kube.Store().GetPod("learner-" + jobID + "-0")
	if ok && pod.Status.Node != "" {
		fmt.Printf("injecting fault: crashing node %s\n", pod.Status.Node)
		platform.Kube.CrashNode(pod.Status.Node)
	}
	waitFor(ffdl.StatusCompleted)

	// Show the recovery in the logs.
	resumes, _ := client.SearchLogs(ctx, jobID, "resuming from checkpoint")
	fmt.Printf("learners resumed from checkpoints %d time(s)\n", len(resumes))
	nodeFailures, total := platform.Kube.DeletionStats()
	fmt.Printf("pod deletions: %d total, %d due to node failure\n", total, nodeFailures)
}
